bin/cqlrepl.mli:
