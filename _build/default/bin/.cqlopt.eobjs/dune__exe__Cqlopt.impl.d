bin/cqlopt.ml: Arg Cmd Cmdliner Cql_constr Cql_core Cql_datalog Cql_eval Cql_num Decidable Gmt List Magic Parser Pred_constraints Printf Program Qrp Rewrite Simplify String Term
