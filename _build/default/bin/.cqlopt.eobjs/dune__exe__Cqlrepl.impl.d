bin/cqlrepl.ml: Array Buffer Cql_constr Cql_core Cql_datalog Cql_eval List Option Parser Pred_constraints Printf Program Qrp Rewrite Rule String Sys
