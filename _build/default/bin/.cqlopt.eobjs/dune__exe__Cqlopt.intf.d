bin/cqlopt.mli:
