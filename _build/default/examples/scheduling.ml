(* Scheduling with constraint facts: infinite relations represented
   finitely.

   CQLs were motivated by exactly this kind of data (the paper cites
   temporal query languages [2, 4]): an availability calendar is an
   *infinite* set of time points, finitely represented as constraint facts
   like  available(alice, T; 9 <= T, T <= 12).

   The program finds meeting slots for pairs of people, with a minimum
   duration pushed through the rewrite: slots shorter than the requested
   duration are never materialized after pushing constraint selections.

   Run with:  dune exec examples/scheduling.exe *)

open Cql_datalog
open Cql_eval
open Cql_core

let program_src =
  {|
% A meeting of persons P1 and P2 can start at S and end at E when both are
% available over [S, E]; longenough selects slots of >= 2 hours starting in
% the morning (S <= 12).
r1: slot(P1, P2, S, E) :- avail(P1, S, E), avail(P2, S, E).
r2: avail(P, S, E) :- calendar(P, LO, HI), S >= LO, E <= HI, S < E.
r3: longenough(P1, P2, S, E) :- slot(P1, P2, S, E), E - S >= 2, S <= 12.
#query longenough.
|}

let calendar_edb =
  {|
% availability windows (start/end hours, 24h clock): constraint facts
calendar(alice, 9, 12).
calendar(alice, 14, 18).
calendar(bob, 10, 16).
calendar(carol, 8, 10).
|}

let () =
  let p = Parser.program_of_string program_src in
  let edb = List.map Fact.of_fact_rule (Parser.facts_of_string calendar_edb) in

  (* the original program builds every slot, then filters *)
  let before = Engine.run p ~edb in

  (* push the >= 2 hours & morning selections into slot and avail *)
  let p', report = Rewrite.constraint_rewrite p in
  (match report.Rewrite.qrp_constraints with
  | Some q ->
      Printf.printf "minimum QRP constraint for slot:\n  %s\n\n"
        (Cql_constr.Cset.to_string (Qrp.find q "slot"))
  | None -> ());
  print_endline "rewritten program:";
  print_endline (Program.to_string (Program.prettify p'));

  let after = Engine.run p' ~edb in
  Printf.printf "\navail facts:  %d -> %d    slot facts: %d -> %d\n"
    (List.length (Engine.facts_of before "avail"))
    (List.length (Engine.facts_of after "avail'"))
    (List.length (Engine.facts_of before "slot"))
    (List.length (Engine.facts_of after "slot'"));
  Printf.printf "answers agree: %b\n\n"
    (List.length (Engine.facts_of before "longenough")
    = List.length (Engine.facts_of after "longenough"));

  (* answers are constraint facts: each finitely represents infinitely many
     (start, end) pairs *)
  print_endline "long-enough morning slots (constraint facts):";
  List.iter
    (fun f -> Printf.printf "  %s\n" (Fact.to_string f))
    (Engine.facts_of after "longenough");

  (* none of them is a ground fact *)
  Printf.printf "\nall answers are genuinely infinite relations: %b\n"
    (List.for_all (fun f -> not (Fact.is_ground f)) (Engine.facts_of after "longenough"))
