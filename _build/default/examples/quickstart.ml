(* Quickstart: push constraint selections through a small program.

   This walks the public API end to end on the paper's Example 4.1:
   parse a program, infer QRP constraints, propagate them with fold/unfold,
   and evaluate before/after to see the saved work.

   Run with:  dune exec examples/quickstart.exe *)

open Cql_datalog
open Cql_core

let program_src =
  {|
% q selects pairs with X + Y <= 6 and X >= 2; only such b1/b2 tuples matter.
r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
r2: p1(X, Y) :- b1(X, Y).
r3: p2(X) :- b2(X).
#query q.
|}

let () =
  (* 1. parse *)
  let p = Parser.program_of_string program_src in
  print_endline "Original program:";
  print_endline (Program.to_string p);

  (* 2. infer QRP constraints (Gen_QRP_constraints, Section 4.2) *)
  let res = Qrp.gen p in
  Printf.printf "\nQRP constraints (converged in %d iterations):\n" res.Qrp.iterations;
  List.iter
    (fun (pred, cset) -> Printf.printf "  %-4s %s\n" pred (Cql_constr.Cset.to_string cset))
    res.Qrp.constraints;
  (* note p2's constraint $1 <= 4: it is implied by X + Y <= 6 & X >= 2,
     a semantic inference no syntactic technique makes *)

  (* 3. propagate them by definition/unfold/fold (Section 4.3) *)
  let p' = Qrp.propagate res p in
  print_endline "\nRewritten program (constraints pushed into p1/p2 access):";
  print_endline (Program.to_string p');

  (* 4. evaluate both on the same EDB and compare the work done *)
  let edb =
    List.map Cql_eval.Fact.of_fact_rule
      (Parser.facts_of_string
         (String.concat "\n"
            (List.init 20 (fun i ->
                 Printf.sprintf "b1(%d, %d). b2(%d)." (i mod 10) (i / 2) i))))
  in
  let before = Cql_eval.Engine.run p ~edb in
  let after = Cql_eval.Engine.run p' ~edb in
  let count res pred = List.length (Cql_eval.Engine.facts_of res pred) in
  Printf.printf "\nfacts computed:   p1: %d -> %d    p2: %d -> %d\n"
    (count before "p1") (count after "p1'") (count before "p2") (count after "p2'");
  Printf.printf "answers are identical: %b\n"
    (List.length (Cql_eval.Engine.facts_of before "q")
    = List.length (Cql_eval.Engine.facts_of after "q"))
