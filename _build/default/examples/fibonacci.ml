(* Backward Fibonacci (Examples 1.2 and 4.4, Tables 1 and 2): ask for
   which N the Fibonacci number is 5.

   Magic Templates alone produces an evaluation that finds the answer but
   never terminates (Table 1); propagating the predicate constraint
   $2 >= 1 first makes the same evaluation terminate (Table 2).

   Run with:  dune exec examples/fibonacci.exe *)

open Cql_constr
open Cql_datalog
open Cql_eval
open Cql_core

let fib_src query_value =
  Printf.sprintf
    {|
r1: fib(0, 1).
r2: fib(1, 1).
r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
?- fib(N, %d).
|}
    query_value

let print_trace res =
  List.iter
    (fun (t : Engine.trace_entry) ->
      Printf.printf "  iteration %-2d %-10s %s%s\n" t.Engine.iteration t.Engine.rule_label
        (Fact.to_string t.Engine.fact)
        (if t.Engine.subsumed then "   [subsumed, discarded]" else ""))
    (Engine.trace res)

let magic_of p = Magic.inline_seed (Magic.templates_complete p)

(* $2 >= 1 is a predicate constraint for fib (not the minimum, Example 4.4) *)
let push_fib_constraint p =
  let cset = Cset.of_conj (Conj.of_list [ Atom.ge (Linexpr.var (Var.arg 2)) (Linexpr.of_int 1) ]) in
  let res : Pred_constraints.result =
    { Pred_constraints.constraints = [ ("fib", cset) ]; iterations = 1; converged = true }
  in
  Pred_constraints.propagate res p

let () =
  (* Table 1: Pfib^mg diverges *)
  let p = Parser.program_of_string (fib_src 5) in
  let pmg = magic_of p in
  print_endline "P_fib^mg (Magic Templates with complete sips):";
  print_endline (Program.to_string pmg);
  print_endline "\nTable 1 -- derivations in a bottom-up evaluation of P_fib^mg";
  print_endline "(capped at 8 iterations; the evaluation would not terminate):";
  let res = Engine.run ~max_iterations:8 ~traced:true pmg ~edb:[] in
  print_trace res;
  Printf.printf "reached fixpoint: %b  (the answer fib(4,5) appears at iteration 7)\n"
    (Engine.stats res).Engine.reached_fixpoint;

  (* Table 2: propagate $2 >= 1 first, then magic; terminates *)
  let pmg1 = magic_of (push_fib_constraint (Parser.program_of_string (fib_src 5))) in
  print_endline "\nP_fib^mg_1 (predicate constraint $2 >= 1 pushed first):";
  print_endline (Program.to_string pmg1);
  print_endline "\nTable 2 -- derivations in a bottom-up evaluation of P_fib^mg_1:";
  let res1 = Engine.run ~max_iterations:30 ~traced:true pmg1 ~edb:[] in
  print_trace res1;
  Printf.printf "reached fixpoint: %b after %d iterations, %d derivations\n"
    (Engine.stats res1).Engine.reached_fixpoint (Engine.stats res1).Engine.iterations
    (Engine.stats res1).Engine.derivations;

  (* Example 4.4's second query: fib(N, 6) has no answer; the constrained
     program terminates and says "no" *)
  let pmg6 = magic_of (push_fib_constraint (Parser.program_of_string (fib_src 6))) in
  let res6 = Engine.run ~max_iterations:40 pmg6 ~edb:[] in
  let p6 = Parser.program_of_string (fib_src 6) in
  Printf.printf "\n?- fib(N, 6): terminated=%b, answers=%d (no N has Fibonacci number 6)\n"
    (Engine.stats res6).Engine.reached_fixpoint
    (List.length (Engine.answers res6 p6))
