(* The flights example (Examples 1.1 and 4.3): the paper's motivating
   workload.  cheaporshort wants flights that are short (<= 240 min) or
   cheap (<= $150); composite flights add a 30-minute connection.

   The rewrite pushes the disjunctive selection into the recursive flight
   definition, so no flight that is both long AND expensive is ever built.

   Run with:  dune exec examples/flights.exe [n_cities] *)

open Cql_num
open Cql_datalog
open Cql_eval
open Cql_core

let flights_src =
  {|
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
#query cheaporshort.
|}

(* seeded synthetic network: a cycle of cities plus chords, with leg times
   and costs straddling the 240-minute / $150 thresholds *)
let singleleg_edb seed m =
  let rng = ref seed in
  let next () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng
  in
  List.concat
    (List.init m (fun i ->
         let leg j time cost =
           Fact.ground "singleleg"
             [ Term.Sym (Printf.sprintf "c%d" i); Term.Sym (Printf.sprintf "c%d" j);
               Term.Num (Rat.of_int time); Term.Num (Rat.of_int cost) ]
         in
         let t1 = 30 + (next () mod 300) and c1 = 20 + (next () mod 250) in
         [ leg ((i + 1) mod m) t1 c1 ]))

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8 in
  let p = Parser.program_of_string flights_src in
  let p', report = Rewrite.constraint_rewrite p in

  (match report.Rewrite.qrp_constraints with
  | Some qres ->
      Printf.printf "Minimum QRP constraint for flight:\n  %s\n\n"
        (Cql_constr.Cset.to_string (Qrp.find qres "flight"))
  | None -> ());
  print_endline "Rewritten program (the paper's P' of Example 4.3):";
  print_endline (Program.to_string p');

  let edb = singleleg_edb 42 n in
  let budget = 50_000 in
  let before = Engine.run ~max_iterations:10 ~max_derivations:budget p ~edb in
  let after = Engine.run ~max_iterations:10 ~max_derivations:budget p' ~edb in
  let irrelevant facts =
    List.length
      (List.filter
         (fun f ->
           match (Fact.ground_value f 3, Fact.ground_value f 4) with
           | Some t, Some c ->
               Rat.compare t (Rat.of_int 240) > 0 && Rat.compare c (Rat.of_int 150) > 0
           | _ -> false)
         facts)
  in
  Printf.printf "\n%d-city network:\n" n;
  Printf.printf "  original P : %4d flight facts (%d not constraint-relevant), %5d derivations\n"
    (List.length (Engine.facts_of before "flight"))
    (irrelevant (Engine.facts_of before "flight"))
    (Engine.stats before).Engine.derivations;
  Printf.printf "  rewritten P': %4d flight' facts (%d not constraint-relevant), %5d derivations\n"
    (List.length (Engine.facts_of after "flight'"))
    (irrelevant (Engine.facts_of after "flight'"))
    (Engine.stats after).Engine.derivations;
  Printf.printf "  answers: %d vs %d (must match)\n"
    (List.length (Engine.facts_of before "cheaporshort"))
    (List.length (Engine.facts_of after "cheaporshort"));
  Printf.printf "  ground facts only: %b / %b\n" (Engine.all_ground before)
    (Engine.all_ground after);

  (* with a concrete query, magic templates compose on top (Section 7) *)
  let adorned = Adorn.program ~query_adornment:"ffff" p' in
  let pmg = Magic.templates_bf adorned in
  let magic = Engine.run ~max_iterations:10 ~max_derivations:budget pmg ~edb in
  Printf.printf "  after constraint magic (P^{pred,qrp,mg}): %d total facts vs %d (P') vs %d (P)\n"
    (Engine.total_idb_facts magic ~edb)
    (Engine.total_idb_facts after ~edb)
    (Engine.total_idb_facts before ~edb)
