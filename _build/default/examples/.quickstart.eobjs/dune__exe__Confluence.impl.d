examples/confluence.ml: Cql_core Cql_datalog Cql_eval Engine Fact List Magic Parser Printf Program Rewrite String
