examples/quickstart.ml: Cql_constr Cql_core Cql_datalog Cql_eval List Parser Printf Program Qrp String
