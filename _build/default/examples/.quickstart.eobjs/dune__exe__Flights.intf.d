examples/flights.mli:
