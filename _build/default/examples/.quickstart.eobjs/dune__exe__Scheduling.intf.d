examples/scheduling.mli:
