examples/scheduling.ml: Cql_constr Cql_core Cql_datalog Cql_eval Engine Fact List Parser Printf Program Qrp Rewrite
