examples/flights.ml: Adorn Array Cql_constr Cql_core Cql_datalog Cql_eval Cql_num Engine Fact List Magic Parser Printf Program Qrp Rat Rewrite Sys Term
