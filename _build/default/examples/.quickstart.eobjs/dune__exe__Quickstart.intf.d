examples/quickstart.mli:
