examples/fibonacci.ml: Atom Conj Cql_constr Cql_core Cql_datalog Cql_eval Cset Engine Fact Linexpr List Magic Parser Pred_constraints Printf Program Var
