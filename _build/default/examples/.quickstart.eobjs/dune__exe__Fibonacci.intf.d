examples/fibonacci.mli:
