examples/confluence.mli:
