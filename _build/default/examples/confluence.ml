(* Non-confluence of QRP propagation and magic rewriting (Section 7.3,
   Examples 7.1/7.2, Appendix D): neither order is always better, but
   pred,qrp,mg is optimal (Theorem 7.10).

   Run with:  dune exec examples/confluence.exe *)

open Cql_datalog
open Cql_eval
open Cql_core

let edb_of s = List.map Fact.of_fact_rule (Parser.facts_of_string s)

(* b1 links source i to the head of its own disjoint b2 segment *)
let segments_edb n seg =
  String.concat "\n"
    (List.concat
       (List.init n (fun i ->
            Printf.sprintf "b1(%d, %d)." i (100 * i)
            :: List.init seg (fun j ->
                   Printf.sprintf "b2(%d, %d)." ((100 * i) + j) ((100 * i) + j + 1)))))
  |> edb_of

let counts prog edb =
  let res = Engine.run ~max_iterations:30 prog ~edb in
  Engine.total_idb_facts res ~edb

let magic ad = Rewrite.Magic { adornment = ad; constraint_magic = true }

let () =
  (* ----- Example 7.1 / D.1: qrp-then-magic wins ----- *)
  let d1 =
    Parser.program_of_string
      {|
r1: q(X, Y) :- a1(X, Y), X <= 4.
r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).
r3: a2(X, Y) :- b2(X, Y).
r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).
#query q.
|}
  in
  let qrp_mg, _ = Rewrite.sequence [ Rewrite.Qrp; magic "ff" ] d1 in
  let mg_qrp, _ = Rewrite.sequence [ magic "ff"; Rewrite.Qrp ] d1 in
  print_endline "Example 7.1 (D.1) -- P^{qrp,mg}:";
  print_endline (Program.to_string (Magic.inline_seed qrp_mg));
  print_endline "\nExample 7.1 (D.1) -- P^{mg,qrp} (note: the magic rule for a2 lost X <= 4):";
  print_endline (Program.to_string (Magic.inline_seed mg_qrp));
  let edb = segments_edb 12 5 in
  Printf.printf "\nfacts on a 12-source segmented EDB:  qrp,mg: %d   mg,qrp: %d\n"
    (counts qrp_mg edb) (counts mg_qrp edb);

  (* ----- Example 7.2 / D.2: magic-then-qrp wins ----- *)
  let d2 =
    Parser.program_of_string
      {|
r1: q(X, Y) :- a1(X, Y).
r2: a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).
r3: a2(X, Y) :- b2(X, Y).
r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).
#query q.
|}
  in
  let qrp_mg2, _ = Rewrite.sequence [ Rewrite.Qrp; magic "bf" ] d2 in
  let mg_qrp2, _ = Rewrite.sequence [ magic "bf"; Rewrite.Qrp ] d2 in
  print_endline "\nExample 7.2 (D.2) -- P^{qrp,mg} (QRP finds nothing to push):";
  print_endline (Program.to_string (Magic.inline_seed qrp_mg2));
  print_endline "\nExample 7.2 (D.2) -- P^{mg,qrp} (the magic rule for a1 gained X <= 4):";
  print_endline (Program.to_string (Magic.inline_seed mg_qrp2));

  (* ----- Theorem 7.10: pred,qrp,mg is optimal ----- *)
  let optimal, _ = Rewrite.optimal ~adornment:"ff" d1 in
  Printf.printf "\nTheorem 7.10 -- P^{pred,qrp,mg} on the same EDB: %d facts (<= both orders above)\n"
    (counts optimal edb)
