open Cql_num

type t = Atom.t list (* sorted by Atom.compare, no duplicates *)

let tt : t = []
let ff : t = [ Atom.ff ]

let is_ff_syntactic c = match c with [ a ] -> Atom.equal a Atom.ff | _ -> false

(* Normalize a raw atom list: evaluate variable-free atoms, sort, dedup;
   any false atom collapses the whole conjunction to [ff]. *)
let of_list atoms =
  let exception False in
  try
    let kept =
      List.filter
        (fun a ->
          match Atom.truth a with
          | Some true -> false
          | Some false -> raise False
          | None -> true)
        atoms
    in
    List.sort_uniq Atom.compare kept
  with False -> ff

let singleton a = of_list [ a ]
let add a c = of_list (a :: c)
let and_ a b = of_list (List.rev_append a b)
let to_list c = c
let is_tt c = c = []
let size c = List.length c
let vars c = List.fold_left (fun acc a -> Var.Set.union acc (Atom.vars a)) Var.Set.empty c

(* ----- variable elimination ----- *)

(* Eliminate [x] from a normalized conjunction.  If an equality mentions
   [x], solve it for [x] and substitute; otherwise Fourier-Motzkin. *)
let eliminate x (c : t) : t =
  if is_ff_syntactic c then c
  else
    let mentions, rest = List.partition (Atom.mem x) c in
    if mentions = [] then c
    else
      let eq_opt = List.find_opt (fun (a : Atom.t) -> a.Atom.op = Atom.Eq) mentions in
      match eq_opt with
      | Some eqa ->
          (* expr = a*x + r = 0  =>  x = -r/a *)
          let a = Linexpr.coeff x eqa.Atom.expr in
          let r = Linexpr.sub eqa.Atom.expr (Linexpr.term a x) in
          let repl = Linexpr.scale (Rat.neg (Rat.inv a)) r in
          let others = List.filter (fun a' -> not (Atom.equal a' eqa)) mentions in
          of_list (rest @ List.map (Atom.subst x repl) others)
      | None ->
          (* all atoms mentioning x are inequalities e op 0 with op in {Le,Lt} *)
          let uppers, lowers =
            List.partition
              (fun (a : Atom.t) -> Rat.sign (Linexpr.coeff x a.Atom.expr) > 0)
              mentions
          in
          (* upper: a*x + r op 0, a>0  =>  x op -r/a ; bound expr = -r/a
             lower: a*x + r op 0, a<0  =>  x op' -r/a with op' flipped to >=/>,
             i.e. -r/a op x. *)
          let bound (a : Atom.t) =
            let k = Linexpr.coeff x a.Atom.expr in
            let r = Linexpr.sub a.Atom.expr (Linexpr.term k x) in
            (Linexpr.scale (Rat.neg (Rat.inv k)) r, a.Atom.op)
          in
          let combined =
            List.concat_map
              (fun lo ->
                let lo_e, lo_op = bound lo in
                List.map
                  (fun up ->
                    let up_e, up_op = bound up in
                    let op = if lo_op = Atom.Lt || up_op = Atom.Lt then Atom.Lt else Atom.Le in
                    (* lower bound <= upper bound *)
                    Atom.make (Linexpr.sub lo_e up_e) op)
                  uppers)
              lowers
          in
          of_list (rest @ combined)

let project ~keep (c : t) : t =
  let rec go c =
    if is_ff_syntactic c then c
    else
      let to_elim = Var.Set.diff (vars c) keep in
      if Var.Set.is_empty to_elim then c
      else begin
        (* heuristics: prefer a variable constrained by an equality (cheap
           substitution), else the one minimizing the Fourier-Motzkin blowup *)
        let with_eq =
          Var.Set.filter
            (fun x ->
              List.exists (fun (a : Atom.t) -> a.Atom.op = Atom.Eq && Atom.mem x a) c)
            to_elim
        in
        let x =
          if not (Var.Set.is_empty with_eq) then Var.Set.min_elt with_eq
          else
            let cost x =
              let pos, neg =
                List.fold_left
                  (fun (p, n) (a : Atom.t) ->
                    let s = Rat.sign (Linexpr.coeff x a.Atom.expr) in
                    if s > 0 then (p + 1, n) else if s < 0 then (p, n + 1) else (p, n))
                  (0, 0) c
              in
              (pos * neg) - (pos + neg)
            in
            fst
              (Var.Set.fold
                 (fun x (best, bc) ->
                   let cx = cost x in
                   if cx < bc then (x, cx) else (best, bc))
                 to_elim
                 (Var.Set.min_elt to_elim, max_int))
        in
        go (eliminate x c)
      end
  in
  go c

(* satisfiability via the simplex backend (cross-checked against full
   Fourier-Motzkin elimination by the property tests); projection remains
   the eliminator's job *)
let is_sat c = if is_ff_syntactic c then false else Simplex.is_sat c

let eval_at env c =
  let rec go = function
    | [] -> Some true
    | a :: rest -> (
        match Atom.eval_at env a with
        | Some true -> go rest
        | Some false -> Some false
        | None -> None)
  in
  go c

let implies_atom c a =
  List.for_all (fun na -> not (is_sat (add na c))) (Atom.negate a)

let implies c d = List.for_all (implies_atom c) d
let equiv c d = implies c d && implies d c

let simplify c =
  if not (is_sat c) then ff
  else
    (* drop atoms implied by the remaining ones; iterate front to back *)
    let rec go acc = function
      | [] -> List.rev acc
      | a :: rest ->
          let others = List.rev_append acc rest in
          if implies_atom others a then go acc rest else go (a :: acc) rest
    in
    of_list (go [] c)

let subst x repl c = of_list (List.map (Atom.subst x repl) c)
let rename f c = of_list (List.map (Atom.rename f) c)

let compare = List.compare Atom.compare
let equal a b = compare a b = 0

let pp fmt c =
  match c with
  | [] -> Format.pp_print_string fmt "true"
  | atoms ->
      if is_ff_syntactic c then Format.pp_print_string fmt "false"
      else
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
          Atom.pp fmt atoms

let to_string c = Format.asprintf "%a" pp c
