(** Constraint sets: disjunctions of conjunctions of linear arithmetic
    constraints (Definition 2.3 of the paper).

    Predicate constraints and QRP constraints are values of this type over
    the canonical argument-position variables [$1 … $n].  The empty
    disjunction is [false]; the disjunction containing the empty conjunction
    is [true].  Unsatisfiable disjuncts are pruned on construction, and
    disjuncts implied by another disjunct are removed ("eliminating
    redundant disjuncts", Section 4.2). *)

type t

(** {1 Construction} *)

val tt : t
val ff : t
val of_conj : Conj.t -> t
val of_disjuncts : Conj.t list -> t
val disjuncts : t -> Conj.t list
(** The satisfiable disjuncts, in canonical order. *)

(** {1 Classification} *)

val is_ff : t -> bool
(** No satisfiable disjunct — the set denotes the empty set of ground
    instances. *)

val is_tt : t -> bool
(** Contains a disjunct that is the empty conjunction.  (Sufficient, not
    necessary, for denoting everything.) *)

val num_disjuncts : t -> int
val vars : t -> Var.Set.t

(** {1 Logic} *)

val or_ : t -> t -> t
val and_ : t -> t -> t
(** DNF conjunction: the pairwise conjunctions of disjuncts, pruned. *)

val and_conj : Conj.t -> t -> t

val conj_implies : Conj.t -> t -> bool
(** [conj_implies d cs] decides [d ⊨ cs] by refutation: [d ∧ ¬cs] is
    reduced to DNF (negating each disjunct) and checked unsatisfiable.
    This is the implication test of [13] that the paper relies on. *)

val implies : t -> t -> bool
(** [implies c1 c2] decides [c1 ⊨ c2] (written [c1 ⊐ c2] in the paper,
    Definition 2.3). *)

val equiv : t -> t -> bool

val negate_conj : Conj.t -> t
(** [¬d] as a constraint set. *)

(** {1 Transformations} *)

val project : keep:Var.Set.t -> t -> t
(** Disjunct-wise projection (exact for DNF). *)

val rename : (Var.t -> Var.t) -> t -> t
val simplify : t -> t
(** Simplify each disjunct and prune subsumed disjuncts. *)

val disjointify : t -> t
(** An equivalent constraint set in which no two disjuncts intersect
    (Section 4.6, first solution; may grow exponentially). *)

val weaken_to_one : t -> Conj.t
(** The strongest conjunction (over the atoms appearing in the set) implied
    by every disjunct — the paper's second solution in Section 4.6:
    "bound the number of disjuncts to one by simplification", producing a
    sound but in general non-minimum constraint.  Returns {!Conj.ff} for
    the empty set and {!Conj.tt} when nothing is shared. *)

(** {1 Comparison and printing} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
