lib/constr/simplex.ml: Array Atom Cql_num Format Hashtbl Int Linexpr List Map Option Rat Var
