lib/constr/conj.mli: Atom Cql_num Format Linexpr Var
