lib/constr/atom.ml: Cql_num Format Linexpr List Rat Stdlib
