lib/constr/var.mli: Format Map Set
