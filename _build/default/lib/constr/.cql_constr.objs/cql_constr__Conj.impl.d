lib/constr/conj.ml: Atom Cql_num Format Linexpr List Rat Simplex Var
