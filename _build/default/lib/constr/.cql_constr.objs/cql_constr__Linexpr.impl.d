lib/constr/linexpr.ml: Bigint Cql_num Format List Rat Var
