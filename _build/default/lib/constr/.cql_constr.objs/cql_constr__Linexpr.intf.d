lib/constr/linexpr.mli: Cql_num Format Rat Var
