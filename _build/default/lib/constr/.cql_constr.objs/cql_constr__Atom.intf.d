lib/constr/atom.mli: Cql_num Format Linexpr Var
