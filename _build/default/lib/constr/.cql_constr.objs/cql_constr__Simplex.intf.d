lib/constr/simplex.mli: Atom Cql_num Format Var
