lib/constr/cset.mli: Conj Format Var
