lib/constr/var.ml: Format Hashtbl Map Printf Set Stdlib String
