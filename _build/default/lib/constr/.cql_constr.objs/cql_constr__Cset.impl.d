lib/constr/cset.ml: Atom Conj Format List Var
