(** Interned constraint variables.

    Variables are identified by name: [mk "X"] always returns the same
    variable.  {!fresh} generates globally-unique names (used when renaming
    rules apart or when normalizing argument expressions), and {!arg} makes
    the canonical argument-position variables [$1], [$2], … that predicate
    constraints and QRP constraints are expressed over (Section 2 of the
    paper). *)

type t

val mk : string -> t
(** Intern a variable by name. *)

val fresh : string -> t
(** [fresh base] is a new variable whose name starts with [base] and is
    distinct from every variable interned so far. *)

val arg : int -> t
(** [arg i] is the canonical variable [$i] for argument position [i]
    (1-based).
    @raise Invalid_argument when [i < 1]. *)

val arg_index : t -> int option
(** [arg_index v] is [Some i] when [v] is the canonical variable [$i]. *)

val name : t -> string
val id : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
