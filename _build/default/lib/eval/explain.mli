(** Derivation trees (Definition 2.2 of the paper).

    A derivation tree for a ground/constraint fact has the fact at the root
    labelled with the rule that derived it, and one subtree per body fact
    used.  Database facts are leaves.  The engine records the *first*
    derivation of every stored fact, so each fact gets one canonical tree
    (the paper's notion associates the set of all trees; one witness is what
    query answering needs). *)

type t = { fact : Fact.t; rule : string; children : t list }

val tree : ?max_depth:int -> Engine.result -> Fact.t -> t option
(** [tree res f] reconstructs the recorded derivation tree of [f].
    [None] when [f] was never stored.  [max_depth] (default 64) guards
    against pathological depth; deeper subtrees are truncated into leaves
    labelled ["..."]. *)

val depth : t -> int
val size : t -> int
(** Number of nodes. *)

val facts : t -> Fact.t list
(** All facts occurring in the tree, preorder. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering:
    {v
    cheaporshort(madison, newyork, 190, 260)   [r2]
      flight(madison, newyork, 190, 260)   [r4]
        flight(madison, chicago, 50, 100)   [r3]
          singleleg(madison, chicago, 50, 100)   [edb]
        ...
    v} *)

val to_string : t -> string
