type t = { fact : Fact.t; rule : string; children : t list }

let tree ?(max_depth = 64) res root =
  let rec build depth f =
    match Engine.provenance res f with
    | None -> { fact = f; rule = "?"; children = [] }
    | Some (rule, used) ->
        if depth >= max_depth then { fact = f; rule = "..."; children = [] }
        else { fact = f; rule; children = List.map (build (depth + 1)) used }
  in
  match Engine.provenance res root with
  | None -> None
  | Some _ -> Some (build 0 root)

let rec depth t =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let rec size t = 1 + List.fold_left (fun acc c -> acc + size c) 0 t.children

let rec facts t = t.fact :: List.concat_map facts t.children

let pp fmt t =
  let rec go indent t =
    Format.fprintf fmt "%s%a   [%s]@." (String.make indent ' ') Fact.pp t.fact t.rule;
    List.iter (go (indent + 2)) t.children
  in
  go 0 t

let to_string t = Format.asprintf "%a" pp t
