(** Differential testing of program transformations.

    The paper's correctness theorems (4.3, 4.4, 6.2, 7.x) are statements
    about query equivalence and fact-set containment between a program and
    its rewriting.  This module decides those relations on a concrete EDB by
    evaluating both programs, up to fact subsumption and predicate renaming
    (rewritten programs rename predicates, e.g. [flight] → [flight'] or
    [flight_bbff]). *)

open Cql_datalog

type outcome = {
  equal_answers : bool;  (** same query-predicate facts up to subsumption *)
  facts_subset : bool;
      (** the second program's facts are a subset of the first's (per
          renamed predicate), Theorem 4.4 part 2 *)
  both_fixpoint : bool;  (** neither run was stopped by a budget *)
}

val rename_base : string -> string
(** Strip the decorations rewriting adds to a predicate name: primes and
    adornment suffixes ([flight'_bbff] → [flight]). *)

val compare_runs :
  ?max_iterations:int ->
  ?max_derivations:int ->
  original:Program.t ->
  rewritten:Program.t ->
  edb:Fact.t list ->
  unit ->
  outcome
(** Evaluate both programs on the EDB and compare.  Both must have query
    predicates; the rewritten program's predicates are mapped back to the
    original's through {!rename_base}.  Magic predicates ([m_*]) and
    supplementary predicates ([s_*]) in the rewritten program are ignored
    for the subset check. *)

val same_fact_sets : Fact.t list -> Fact.t list -> bool
(** Mutual subsumption: every fact of each list is subsumed by some fact of
    the other (predicate names must already agree). *)
