type t = Fact.t list (* newest first; no fact subsumed by another stored one *)

let empty = []
let size = List.length
let facts r = r

let mem_subsumed r f = List.exists (fun g -> Fact.subsumes g f) r

let insert r f = if mem_subsumed r f then `Subsumed else `Added (f :: r)

let of_list fs =
  List.fold_left (fun r f -> match insert r f with `Added r' -> r' | `Subsumed -> r) empty fs

let fold f r acc = List.fold_left (fun acc x -> f x acc) acc r
let iter = List.iter

let pp fmt r =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline Fact.pp fmt (List.rev r)
