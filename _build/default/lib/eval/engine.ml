open Cql_constr
open Cql_datalog

module StringMap = Map.Make (String)

type trace_entry = { iteration : int; rule_label : string; fact : Fact.t; subsumed : bool }

type stats = {
  iterations : int;
  derivations : int;
  facts_added : int;
  reached_fixpoint : bool;
}

(* facts are stored with the iteration that added them, enabling the
   old/delta/full split of semi-naive evaluation *)
module FactMap = Map.Make (Fact)

type result = {
  store : (Fact.t * int) list StringMap.t;
  stats : stats;
  trace_rev : trace_entry list;
  provenance : (string * Fact.t list) FactMap.t;
      (* first derivation of each fact: rule label + the facts it used *)
}

let stats r = r.stats
let trace r = List.rev r.trace_rev

let facts_of r pred =
  match StringMap.find_opt pred r.store with
  | None -> []
  | Some l -> List.rev_map fst l

let all_facts r = StringMap.fold (fun p l acc -> (p, List.rev_map fst l) :: acc) r.store []
let total_facts r = StringMap.fold (fun _ l acc -> acc + List.length l) r.store 0
let total_idb_facts r ~edb = total_facts r - List.length edb

let answers r (p : Program.t) =
  match p.Program.query with None -> [] | Some q -> facts_of r q

let provenance r f = FactMap.find_opt f r.provenance

let all_ground r =
  StringMap.for_all (fun _ l -> List.for_all (fun (f, _) -> Fact.is_ground f) l) r.store

(* ----- rule application ----- *)

(* instantiate a stored fact as a literal: pinned numeric positions become
   constants (so ground workloads never touch the solver), the rest become
   fresh variables carrying the renamed residual constraints *)
let fact_literal (f : Fact.t) : Literal.t * Conj.t =
  let n = Fact.arity f in
  let fresh = Array.make n None in
  let args =
    List.init n (fun i ->
        match f.Fact.args.(i) with
        | Fact.Psym s -> Term.sym s
        | Fact.Pvar -> (
            match f.Fact.pinned.(i) with
            | Some q -> Term.num q
            | None ->
                let v = Var.fresh "F" in
                fresh.(i) <- Some v;
                Term.var v))
  in
  let residual =
    if Array.for_all (fun o -> o = None) fresh then Conj.tt
    else begin
      (* substitute pinned values, rename the remaining canonical vars *)
      let c =
        Array.to_list f.Fact.pinned
        |> List.mapi (fun i q -> (i, q))
        |> List.fold_left
             (fun c (i, q) ->
               match q with
               | Some q when f.Fact.args.(i) = Fact.Pvar ->
                   Conj.subst (Var.arg (i + 1)) (Linexpr.const q) c
               | _ -> c)
             (Fact.cstr f)
      in
      let ren v =
        match Var.arg_index v with
        | Some i when i >= 1 && i <= n -> (
            match fresh.(i - 1) with Some fv -> fv | None -> v)
        | _ -> v
      in
      Conj.rename ren c
    end
  in
  (Literal.make (Fact.pred f) args, residual)

(* finish one candidate derivation: apply the substitution, check
   satisfiability, project onto the head fact *)
let derive_head (rule : Rule.t) theta body_cstr : Fact.t option =
  try
    let combined = Subst.apply_conj theta (Conj.and_ rule.Rule.cstr body_cstr) in
    if not (Conj.is_sat combined) then None
    else begin
      (* build the head fact over canonical $i variables *)
      let head = Subst.apply_literal theta rule.Rule.head in
      let n = Literal.arity head in
      let args = Array.make n Fact.Pvar in
      let atoms = ref (Conj.to_list combined) in
      List.iteri
        (fun i t ->
          let ai = Var.arg (i + 1) in
          match t with
          | Term.C (Term.Sym s) -> args.(i) <- Fact.Psym s
          | Term.C (Term.Num q) ->
              atoms := Atom.eq (Linexpr.var ai) (Linexpr.const q) :: !atoms
          | Term.V v -> atoms := Atom.eq (Linexpr.var ai) (Linexpr.var v) :: !atoms)
        head.Literal.args;
      match Fact.make head.Literal.pred args (Conj.of_list !atoms) with
      | f -> Some f
      | exception Fact.Unsat -> None
    end
  with Subst.Type_error _ -> None (* symbolic constant met an arithmetic constraint *)

(* one candidate derivation from explicitly chosen facts (used for fact
   rules and by tests) *)
let try_derive (rule : Rule.t) (choices : Fact.t list) : Fact.t option =
  let rec go theta cstr body choices =
    match (body, choices) with
    | [], [] -> derive_head rule theta cstr
    | lit :: brest, fact :: frest -> (
        let flit, fcstr = fact_literal fact in
        match Subst.unify_under theta lit flit with
        | None -> None
        | Some theta' -> go theta' (Conj.and_ cstr fcstr) brest frest)
    | _ -> invalid_arg "try_derive: body/choices length mismatch"
  in
  go Subst.empty Conj.tt rule.Rule.body choices

(* ----- evaluation loops ----- *)

type budget = { mutable deriv_left : int }

exception Budget_exhausted

let store_find store pred = match StringMap.find_opt pred store with Some l -> l | None -> []

let known_subsumes store f =
  List.exists (fun (g, _) -> Fact.subsumes g f) (store_find store (Fact.pred f))

(* facts of [pred] filtered by when they were added *)
let candidates store pred ~min_iter ~max_iter =
  List.filter_map
    (fun (f, it) -> if it >= min_iter && it <= max_iter then Some f else None)
    (store_find store pred)

(* enumerate combinations with incremental unification: failed joins are
   pruned before the cross-product expands *)
let rec choose_combos store iter pivot idx body theta cstr used k =
  match body with
  | [] -> k theta cstr (List.rev used)
  | (lit : Literal.t) :: rest ->
      let min_iter, max_iter =
        if pivot < 0 then (0, max_int) (* naive: everything *)
        else if idx < pivot then (0, iter - 2)
        else if idx = pivot then (iter - 1, iter - 1)
        else (0, iter - 1)
      in
      let cands = candidates store lit.Literal.pred ~min_iter ~max_iter in
      List.iter
        (fun f ->
          if Fact.matches_literal lit f then begin
            let flit, fcstr = fact_literal f in
            match Subst.unify_under theta lit flit with
            | None -> ()
            | Some theta' ->
                choose_combos store iter pivot (idx + 1) rest theta' (Conj.and_ cstr fcstr)
                  (f :: used) k
          end)
        cands

let run_loop ~seminaive ?max_iterations ?max_derivations ?(traced = false) (p : Program.t)
    ~(edb : Fact.t list) =
  let budget = { deriv_left = (match max_derivations with Some n -> n | None -> max_int) } in
  let store = ref StringMap.empty in
  let provenance = ref FactMap.empty in
  let trace_rev = ref [] in
  let derivations = ref 0 in
  let facts_added = ref 0 in
  let add_fact iter f =
    (* back-subsumption: drop stored facts the new fact subsumes; safe for
       semi-naive completeness because the new fact enters the delta *)
    let l =
      List.filter (fun (g, _) -> not (Fact.subsumes f g)) (store_find !store (Fact.pred f))
    in
    store := StringMap.add (Fact.pred f) ((f, iter) :: l) !store;
    incr facts_added
  in
  let record iter label f subsumed =
    incr derivations;
    if traced then trace_rev := { iteration = iter; rule_label = label; fact = f; subsumed } :: !trace_rev;
    budget.deriv_left <- budget.deriv_left - 1;
    if budget.deriv_left <= 0 then raise Budget_exhausted
  in
  let remember label f used =
    if not (FactMap.mem f !provenance) then
      provenance := FactMap.add f (label, used) !provenance
  in
  (* iteration 0: EDB facts (untraced) + fact rules *)
  List.iter
    (fun f ->
      if not (known_subsumes !store f) then begin
        add_fact 0 f;
        remember "edb" f []
      end)
    edb;
  let fact_rules, body_rules = List.partition Rule.is_fact p.Program.rules in
  List.iter
    (fun (r : Rule.t) ->
      match try_derive r [] with
      | None -> ()
      | Some f ->
          let subsumed = known_subsumes !store f in
          record 0 r.Rule.label f subsumed;
          if not subsumed then begin
            add_fact 0 f;
            remember r.Rule.label f []
          end)
    fact_rules;
  let iterations = ref 0 in
  let fixpoint = ref false in
  let result () =
    {
      store = !store;
      provenance = !provenance;
      stats =
        {
          iterations = !iterations;
          derivations = !derivations;
          facts_added = !facts_added;
          reached_fixpoint = !fixpoint;
        };
      trace_rev = !trace_rev;
    }
  in
  try
    let continue_ = ref true in
    while !continue_ do
      let iter = !iterations + 1 in
      (match max_iterations with
      | Some cap when iter > cap ->
          continue_ := false;
          raise Exit
      | _ -> ());
      iterations := iter;
      let produced = ref [] in
      List.iter
        (fun (r : Rule.t) ->
          let nbody = List.length r.Rule.body in
          let pivots = if seminaive then List.init nbody (fun j -> j) else [ -1 ] in
          List.iter
            (fun pivot ->
              choose_combos !store iter pivot 0 r.Rule.body Subst.empty Conj.tt []
                (fun theta cstr used ->
                  match derive_head r theta cstr with
                  | None -> ()
                  | Some f -> produced := (r.Rule.label, f, used) :: !produced))
            pivots)
        body_rules;
      let any_added = ref false in
      List.iter
        (fun (label, f, used) ->
          let subsumed = known_subsumes !store f in
          record iter label f subsumed;
          if not subsumed then begin
            add_fact iter f;
            remember label f used;
            any_added := true
          end)
        (List.rev !produced);
      if not !any_added then begin
        fixpoint := true;
        continue_ := false
      end
    done;
    result ()
  with
  | Exit -> result ()
  | Budget_exhausted -> result ()

let run ?max_iterations ?max_derivations ?traced p ~edb =
  run_loop ~seminaive:true ?max_iterations ?max_derivations ?traced p ~edb

let run_naive ?max_iterations ?max_derivations p ~edb =
  run_loop ~seminaive:false ?max_iterations ?max_derivations ~traced:false p ~edb

(* SCC-stratified evaluation: process the predicate dependency graph
   callees-first, running the semi-naive loop once per stratum with all
   earlier facts as input.  Same fixpoint; each stratum's rules only ever
   see fully-computed lower strata, so no wasted re-derivation across strata. *)
let run_stratified ?max_iterations ?max_derivations (p : Program.t) ~edb =
  let g = Depgraph.of_program p in
  let derived = Program.derived p in
  let sccs =
    List.filter (fun scc -> List.exists (fun x -> List.mem x derived) scc) (Depgraph.sccs g)
  in
  let deriv_budget = ref (match max_derivations with Some n -> n | None -> max_int) in
  let facts = ref edb in
  let derivations = ref 0 and facts_added = ref 0 and iterations = ref 0 in
  let fixpoint = ref true in
  let provs = ref [] in
  let last = ref None in
  List.iter
    (fun scc ->
      if !deriv_budget > 0 then begin
        let rules =
          List.filter
            (fun (r : Rule.t) -> List.mem r.Rule.head.Literal.pred scc)
            p.Program.rules
        in
        let sub = { p with Program.rules } in
        let res =
          run_loop ~seminaive:true ?max_iterations ~max_derivations:!deriv_budget
            ~traced:false sub ~edb:!facts
        in
        deriv_budget := !deriv_budget - res.stats.derivations;
        derivations := !derivations + res.stats.derivations;
        facts_added := !facts_added + res.stats.facts_added - List.length !facts;
        iterations := max !iterations res.stats.iterations;
        if not res.stats.reached_fixpoint then fixpoint := false;
        provs := res.provenance :: !provs;
        facts := List.concat_map snd (all_facts res);
        last := Some res
      end
      else fixpoint := false)
    sccs;
  match !last with
  | None -> run ?max_iterations ?max_derivations p ~edb
  | Some res ->
      (* merge provenance, preferring the stratum that really derived a
         fact over a later stratum seeing it as input *)
      let provenance =
        List.fold_left
          (fun acc m ->
            FactMap.union (fun _ a b -> if fst a = "edb" then Some b else Some a) acc m)
          FactMap.empty (List.rev !provs)
      in
      {
        res with
        provenance;
        stats =
          {
            iterations = !iterations;
            derivations = !derivations;
            facts_added = !facts_added + List.length edb;
            reached_fixpoint = !fixpoint;
          };
      }
