open Cql_datalog

type outcome = { equal_answers : bool; facts_subset : bool; both_fixpoint : bool }

(* flight'_bbff -> flight: strip one prime cluster and one trailing
   b/c/f-adornment chunk, repeatedly *)
let rename_base name =
  let strip_adornment s =
    match String.rindex_opt s '_' with
    | Some i
      when i > 0
           && i < String.length s - 1
           && String.for_all
                (fun c -> c = 'b' || c = 'c' || c = 'f')
                (String.sub s (i + 1) (String.length s - i - 1)) ->
        String.sub s 0 i
    | _ -> s
  in
  let strip_primes s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = '\'' do
      decr n
    done;
    String.sub s 0 !n
  in
  let rec fix s =
    let s' = strip_primes (strip_adornment s) in
    if s' = s then s else fix s'
  in
  fix name

let with_base_pred f =
  let base = rename_base (Fact.pred f) in
  if base = Fact.pred f then f else Fact.make base f.Fact.args (Fact.cstr f)

let same_fact_sets a b =
  List.for_all (fun f -> List.exists (fun g -> Fact.subsumes g f) b) a
  && List.for_all (fun f -> List.exists (fun g -> Fact.subsumes g f) a) b

let auxiliary pred =
  let is_prefix p = String.length pred >= String.length p && String.sub pred 0 (String.length p) = p in
  is_prefix "m_" || is_prefix "s_" || is_prefix "q_"

let compare_runs ?max_iterations ?max_derivations ~(original : Program.t)
    ~(rewritten : Program.t) ~edb () =
  let r1 = Engine.run ?max_iterations ?max_derivations original ~edb in
  let r2 = Engine.run ?max_iterations ?max_derivations rewritten ~edb in
  let q1 =
    match original.Program.query with
    | Some q -> q
    | None -> invalid_arg "Differential.compare_runs: original has no query"
  in
  let q2 =
    match rewritten.Program.query with
    | Some q -> q
    | None -> invalid_arg "Differential.compare_runs: rewritten has no query"
  in
  let a1 = List.map with_base_pred (Engine.facts_of r1 q1) in
  let a2 = List.map with_base_pred (Engine.facts_of r2 q2) in
  let equal_answers = same_fact_sets a1 a2 in
  (* subset: every non-auxiliary fact of the rewritten run is subsumed by a
     fact of the original run under the base predicate name *)
  let originals =
    List.concat_map (fun (_, fs) -> List.map with_base_pred fs) (Engine.all_facts r1)
  in
  let facts_subset =
    List.for_all
      (fun (pred, fs) ->
        auxiliary pred
        || List.for_all
             (fun f ->
               let f = with_base_pred f in
               List.exists (fun g -> Fact.pred g = Fact.pred f && Fact.subsumes g f) originals)
             fs)
      (Engine.all_facts r2)
  in
  let both_fixpoint =
    (Engine.stats r1).Engine.reached_fixpoint && (Engine.stats r2).Engine.reached_fixpoint
  in
  { equal_answers; facts_subset; both_fixpoint }
