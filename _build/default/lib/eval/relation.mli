(** Relations: finite sets of constraint facts per predicate, with
    subsumption-based insertion.

    Bottom-up evaluation compares each newly derived fact against the
    previously derived ones; facts subsumed by an existing fact are
    discarded and make no further derivations (the boldfaced rows of the
    paper's Tables 1 and 2). *)

type t

val empty : t
val size : t -> int
val facts : t -> Fact.t list
val mem_subsumed : t -> Fact.t -> bool
(** Is the fact subsumed by (or equal to) a stored fact? *)

val insert : t -> Fact.t -> [ `Added of t | `Subsumed ]

val of_list : Fact.t list -> t
(** Insert all, keeping only non-subsumed facts (order-dependent pruning). *)

val fold : (Fact.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
