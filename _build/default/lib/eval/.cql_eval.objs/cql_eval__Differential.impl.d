lib/eval/differential.ml: Cql_datalog Engine Fact List Program String
