lib/eval/fact.mli: Conj Cql_constr Cql_datalog Cql_num Format Literal Rat Rule Term
