lib/eval/engine.ml: Array Atom Conj Cql_constr Cql_datalog Depgraph Fact Linexpr List Literal Map Program Rule String Subst Term Var
