lib/eval/relation.ml: Fact Format List
