lib/eval/explain.ml: Engine Fact Format List String
