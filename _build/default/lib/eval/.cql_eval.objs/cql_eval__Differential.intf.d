lib/eval/differential.mli: Cql_datalog Fact Program
