lib/eval/relation.mli: Fact Format
