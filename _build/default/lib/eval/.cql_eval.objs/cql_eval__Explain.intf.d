lib/eval/explain.mli: Engine Fact Format
