lib/eval/fact.ml: Array Atom Conj Cql_constr Cql_datalog Cql_num Format Linexpr List Literal Rat Rule Stdlib String Term Var
