lib/eval/engine.mli: Cql_datalog Fact Program
