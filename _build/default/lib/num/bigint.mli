(** Arbitrary-precision signed integers.

    Fourier–Motzkin elimination multiplies constraint coefficients together,
    so intermediate coefficients can exceed the native 63-bit range even when
    the program's constants are tiny.  This module provides the exact integer
    arithmetic the constraint solver is built on.  The representation is a
    sign plus a little-endian array of base-2{^30} limbs with no leading zero
    limb. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optionally-signed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation, e.g. ["-123"]. *)

val pp : Format.formatter -> t -> unit

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool

val min : t -> t -> t
val max : t -> t -> t

val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated towards zero, so
    [r] has the sign of [a] and [|r| < |b|].
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative; [gcd 0 0 = 0]. *)

val lcm : t -> t -> t
(** Least common multiple; always non-negative. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0].
    @raise Invalid_argument on negative exponent. *)

(** {1 Infix operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
