lib/num/bigint.mli: Format
