lib/num/rat.mli: Bigint Format
