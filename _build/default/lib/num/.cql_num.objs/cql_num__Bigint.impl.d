lib/num/bigint.ml: Array Buffer Char Format List Printf Stdlib String
