lib/num/rat.ml: Bigint Format String
