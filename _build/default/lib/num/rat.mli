(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is strictly positive
    and numerator/denominator are coprime, so structural operations such as
    {!equal} and {!hash} agree with numeric equality. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val minus_one : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized fraction [num/den].
    @raise Division_by_zero when [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. @raise Division_by_zero when [b = 0]. *)

val of_string : string -> t
(** Accepts ["42"], ["-3/4"] and decimal notation ["2.5"].
    @raise Invalid_argument on malformed input. *)

(** {1 Accessors} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Always strictly positive. *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Comparisons} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val inv : t -> t
(** @raise Division_by_zero when the argument is zero. *)

(** {1 Infix operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
