lib/datalog/rule.ml: Atom Conj Cql_constr Format Hashtbl List Literal Printf String Subst Term Var
