lib/datalog/parser.mli: Program Rule
