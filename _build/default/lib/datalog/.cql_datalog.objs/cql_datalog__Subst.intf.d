lib/datalog/subst.mli: Conj Cql_constr Format Linexpr Literal Term Var
