lib/datalog/literal.ml: Cql_constr Format List String Term Var
