lib/datalog/term.mli: Cql_constr Cql_num Format Linexpr Rat Var
