lib/datalog/parser.ml: Atom Conj Cql_constr Cql_num Linexpr List Literal Printf Program Rat Rule String Term Var
