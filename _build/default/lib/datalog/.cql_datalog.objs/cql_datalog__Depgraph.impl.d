lib/datalog/depgraph.ml: Hashtbl List Literal Map Program Rule Set String
