lib/datalog/literal.mli: Cql_constr Format Term Var
