lib/datalog/depgraph.mli: Program
