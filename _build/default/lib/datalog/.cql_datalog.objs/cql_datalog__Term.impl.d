lib/datalog/term.ml: Cql_constr Cql_num Format Linexpr Rat String Var
