lib/datalog/program.mli: Conj Cql_constr Format Literal Rule
