lib/datalog/program.ml: Conj Cql_constr Format Hashtbl List Literal Map Printf Rule Set String Var
