lib/datalog/subst.ml: Atom Conj Cql_constr Format Linexpr List Literal Printf Term Var
