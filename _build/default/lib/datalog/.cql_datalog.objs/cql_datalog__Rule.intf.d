lib/datalog/rule.mli: Conj Cql_constr Format Literal Subst Var
