open Cql_num
open Cql_constr

type const = Num of Rat.t | Sym of string

type t = V of Var.t | C of const

let var v = V v
let num q = C (Num q)
let int n = C (Num (Rat.of_int n))
let sym s = C (Sym s)

let is_var = function V _ -> true | C _ -> false
let is_ground = function V _ -> false | C _ -> true
let vars = function V v -> Var.Set.singleton v | C _ -> Var.Set.empty

let to_linexpr = function
  | V v -> Some (Linexpr.var v)
  | C (Num q) -> Some (Linexpr.const q)
  | C (Sym _) -> None

let compare_const a b =
  match (a, b) with
  | Num x, Num y -> Rat.compare x y
  | Num _, Sym _ -> -1
  | Sym _, Num _ -> 1
  | Sym x, Sym y -> String.compare x y

let equal_const a b = compare_const a b = 0

let compare a b =
  match (a, b) with
  | V x, V y -> Var.compare x y
  | V _, C _ -> -1
  | C _, V _ -> 1
  | C x, C y -> compare_const x y

let equal a b = compare a b = 0

let pp_const fmt = function
  | Num q -> Rat.pp fmt q
  | Sym s -> Format.pp_print_string fmt s

let pp fmt = function V v -> Var.pp fmt v | C c -> pp_const fmt c

let to_string t = Format.asprintf "%a" pp t
