open Cql_constr

type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }
let arity l = List.length l.args

let vars l =
  List.fold_left (fun acc t -> Var.Set.union acc (Term.vars t)) Var.Set.empty l.args

let of_vars pred vs = { pred; args = List.map Term.var vs }

let fresh_args pred n =
  { pred; args = List.init n (fun _ -> Term.var (Var.fresh "A")) }

let canonical pred n = { pred; args = List.init n (fun i -> Term.var (Var.arg (i + 1))) }

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else List.compare Term.compare a.args b.args

let equal a b = compare a b = 0

let pp fmt l =
  if l.args = [] then Format.pp_print_string fmt l.pred
  else
    Format.fprintf fmt "%s(%a)" l.pred
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") Term.pp)
      l.args

let to_string l = Format.asprintf "%a" pp l
