open Cql_constr

type t = { label : string; head : Literal.t; body : Literal.t list; cstr : Conj.t }

let make ?(label = "") head body cstr = { label; head; body; cstr }
let fact ?(label = "") head cstr = { label; head; body = []; cstr }
let is_fact r = r.body = []

let head_vars r = Literal.vars r.head

let body_vars r =
  List.fold_left (fun acc l -> Var.Set.union acc (Literal.vars l)) Var.Set.empty r.body

let vars r = Var.Set.union (head_vars r) (Var.Set.union (body_vars r) (Conj.vars r.cstr))

let apply s r =
  {
    r with
    head = Subst.apply_literal s r.head;
    body = List.map (Subst.apply_literal s) r.body;
    cstr = Subst.apply_conj s r.cstr;
  }

let rename_apart r = apply (Subst.renaming_of (vars r) ~suffix:"") r

let add_constraint c r = { r with cstr = Conj.and_ r.cstr c }
let relabel label r = { r with label }

(* Head variables may also be grounded through equality constraints, e.g.
   T = T1 + T2 + 30 grounds T once T1 and T2 are bound by body literals;
   close the grounded set under single-unknown equalities. *)
let grounded_vars r =
  let rec close grounded =
    let grow =
      List.fold_left
        (fun acc (a : Atom.t) ->
          if a.Atom.op <> Atom.Eq then acc
          else
            let vs = Atom.vars a in
            let unknown = Var.Set.diff vs grounded in
            if Var.Set.cardinal unknown = 1 then Var.Set.union acc unknown else acc)
        Var.Set.empty (Conj.to_list r.cstr)
    in
    if Var.Set.subset grow grounded then grounded else close (Var.Set.union grounded grow)
  in
  close (body_vars r)

let is_range_restricted r = Var.Set.subset (head_vars r) (grounded_vars r)

let compare a b =
  let c = Literal.compare a.head b.head in
  if c <> 0 then c
  else
    let c = List.compare Literal.compare a.body b.body in
    if c <> 0 then c else Conj.compare a.cstr b.cstr

let equal a b = compare a b = 0

(* ----- equality modulo variable renaming and body reordering ----- *)

(* try to extend the variable bijection [m] (a -> b vars) by matching terms *)
let match_term m (t1 : Term.t) (t2 : Term.t) =
  match (t1, t2) with
  | Term.C c1, Term.C c2 -> if Term.equal_const c1 c2 then Some m else None
  | Term.V v1, Term.V v2 -> (
      match Var.Map.find_opt v1 m with
      | Some v -> if Var.equal v v2 then Some m else None
      | None ->
          (* enforce injectivity *)
          if Var.Map.exists (fun _ v -> Var.equal v v2) m then None
          else Some (Var.Map.add v1 v2 m))
  | _ -> None

let match_literal m (l1 : Literal.t) (l2 : Literal.t) =
  if l1.Literal.pred <> l2.Literal.pred then None
  else if List.length l1.Literal.args <> List.length l2.Literal.args then None
  else
    List.fold_left2
      (fun acc t1 t2 -> match acc with None -> None | Some m -> match_term m t1 t2)
      (Some m) l1.Literal.args l2.Literal.args

let equal_mod_renaming a b =
  if List.length a.body <> List.length b.body then false
  else
    (* backtracking match of a.body against a permutation of b.body *)
    let rec go m abody bbody =
      match abody with
      | [] -> check_constraints m
      | l1 :: arest ->
          List.exists
            (fun l2 ->
              match match_literal m l1 l2 with
              | None -> false
              | Some m' -> go m' arest (List.filter (fun l -> not (l == l2)) bbody))
            bbody
    and check_constraints m =
      (* variables occurring only in constraints are existential within the
         rule body: project them away on both sides before comparing *)
      let dom = Var.Map.fold (fun k _ acc -> Var.Set.add k acc) m Var.Set.empty in
      let rng = Var.Map.fold (fun _ v acc -> Var.Set.add v acc) m Var.Set.empty in
      let f v = match Var.Map.find_opt v m with Some v' -> v' | None -> v in
      let ca = Conj.rename f (Conj.project ~keep:dom a.cstr) in
      let cb = Conj.project ~keep:rng b.cstr in
      Conj.equiv ca cb
    in
    match match_literal Var.Map.empty a.head b.head with
    | None -> false
    | Some m -> go m a.body b.body

(* rename variables to short readable names (rules are variable-local, so
   each rule can be renamed independently) *)
let prettify r =
  let base_of v =
    let name = Var.name v in
    match String.index_opt name '\'' with
    | Some i when i > 0 -> String.sub name 0 i
    | _ -> name
  in
  let order = ref [] in
  let see v = if not (List.memq v !order) then order := v :: !order in
  let see_term = function Term.V v -> see v | Term.C _ -> () in
  List.iter see_term r.head.Literal.args;
  List.iter (fun (l : Literal.t) -> List.iter see_term l.Literal.args) r.body;
  List.iter (fun a -> Var.Set.iter see (Atom.vars a)) (Conj.to_list r.cstr);
  let taken = Hashtbl.create 8 in
  (* two-phase rename via fresh temporaries so a target name that coincides
     with another source variable cannot chain *)
  let to_tmp, tmp_to_final =
    List.fold_left
      (fun (t1, t2) v ->
        let base = base_of v in
        let rec pick i =
          let cand = if i = 0 then base else Printf.sprintf "%s%d" base i in
          if Hashtbl.mem taken cand then pick (i + 1) else cand
        in
        let name = pick 0 in
        Hashtbl.add taken name ();
        let tmp = Var.fresh "PRETTY" in
        ((v, Term.var tmp) :: t1, (tmp, Term.var (Var.mk name)) :: t2))
      ([], []) (List.rev !order)
  in
  apply (Subst.of_bindings tmp_to_final) (apply (Subst.of_bindings to_tmp) r)

let pp fmt r =
  let pp_body fmt () =
    let items =
      List.map (fun l -> `L l) r.body @ List.map (fun a -> `A a) (Conj.to_list r.cstr)
    in
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
      (fun fmt -> function `L l -> Literal.pp fmt l | `A a -> Atom.pp fmt a)
      fmt items
  in
  if r.label <> "" then Format.fprintf fmt "%s: " r.label;
  if is_fact r && Conj.is_tt r.cstr then Format.fprintf fmt "%a." Literal.pp r.head
  else Format.fprintf fmt "%a :- %a." Literal.pp r.head pp_body ()

let to_string r = Format.asprintf "%a" pp r
