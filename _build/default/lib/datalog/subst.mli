(** Substitutions over flat terms, and most-general unifiers.

    Because rules are normalized (arguments are variables or constants),
    unification is the simple flat case: a most general unifier binds
    variables to variables or constants.  Substituting a numeric constant
    into an arithmetic constraint is meaningful; substituting a *symbolic*
    constant into one raises {!Type_error} (such resolvents only arise from
    ill-typed programs). *)

open Cql_constr

type t
(** A finite map from variables to terms, idempotent on its domain. *)

exception Type_error of string

val empty : t
val is_empty : t -> bool
val bindings : t -> (Var.t * Term.t) list
val of_bindings : (Var.t * Term.t) list -> t
(** Unchecked construction; callers must ensure idempotence. *)

val find : Var.t -> t -> Term.t option

val apply_term : t -> Term.t -> Term.t
val apply_literal : t -> Literal.t -> Literal.t

val apply_linexpr : t -> Linexpr.t -> Linexpr.t
(** @raise Type_error when a variable is bound to a symbolic constant. *)

val apply_conj : t -> Conj.t -> Conj.t
(** @raise Type_error when a variable is bound to a symbolic constant. *)

val unify : Literal.t -> Literal.t -> t option
(** Most general unifier of two literals, or [None] when they do not unify
    (different predicate, arity, or clashing constants). *)

val unify_under : t -> Literal.t -> Literal.t -> t option
(** Extend an existing substitution. *)

val renaming_of : Var.Set.t -> suffix:string -> t
(** A substitution renaming each variable in the set to a fresh variable
    (used to rename rules apart). *)

val pp : Format.formatter -> t -> unit
