(** Parser for the concrete CQL syntax used by the CLI, examples and tests.

    The syntax follows the paper's notation:

    {v
    % comments run to end of line
    r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
    r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                              T = T1 + T2 + 30, C = C1 + C2.
    ?- cheaporshort(madison, seattle, T, C).
    v}

    - Variables start with an uppercase letter or [_]; lowercase identifiers
      are predicate names or symbolic constants; numeric literals may be
      decimals ([2.5]) or fractions are written with [/] in constraints.
    - Body items are literals or linear constraints ([<=], [<], [>=], [>],
      [=]) over arithmetic expressions ([+], [-], [*] by a constant).
    - Literal arguments may be arithmetic expressions; they are normalized to
      fresh variables plus equality constraints (Section 2 normal form).
    - [?- body.] turns the query into a rule for a fresh query predicate, as
      Section 2 prescribes.
    - [#query p.] designates an existing predicate as the query predicate
      without adding a rule.
    - Constraint facts are written [p(X, Y; X <= Y).] with the constraints
      after a semicolon. *)

exception Error of string
(** Parse error, with a line/column-annotated message. *)

val program_of_string : string -> Program.t
(** @raise Error on syntax errors. *)

val program_of_file : string -> Program.t

val rule_of_string : string -> Rule.t
(** Parse a single clause (must not be a query).
    @raise Error on syntax errors. *)

val facts_of_string : string -> Rule.t list
(** Parse an EDB file: a list of (constraint) facts.
    @raise Error if any clause has body literals. *)
