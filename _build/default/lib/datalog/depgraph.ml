module StringMap = Map.Make (String)
module StringSet = Set.Make (String)

type t = {
  edges : StringSet.t StringMap.t; (* p -> body predicates of rules defining p *)
  scc_id : int StringMap.t;
  scc_list : string list list; (* reverse topological: callees first *)
}

let build_edges (p : Program.t) =
  List.fold_left
    (fun acc (r : Rule.t) ->
      let hd = r.Rule.head.Literal.pred in
      let deps =
        List.fold_left
          (fun s (l : Literal.t) -> StringSet.add l.Literal.pred s)
          (match StringMap.find_opt hd acc with Some s -> s | None -> StringSet.empty)
          r.Rule.body
      in
      StringMap.add hd deps acc)
    StringMap.empty p.Program.rules

(* Tarjan's strongly-connected-components algorithm.  The natural emission
   order of Tarjan is reverse topological (an SCC is emitted only after all
   SCCs it depends on). *)
let tarjan nodes succs =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.add index v !counter;
    Hashtbl.add lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.add on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  List.rev !sccs

let of_program p =
  let edges = build_edges p in
  let nodes = Program.predicates p in
  let succs v =
    match StringMap.find_opt v edges with Some s -> StringSet.elements s | None -> []
  in
  let scc_list = tarjan nodes succs in
  let scc_id =
    List.fold_left
      (fun (i, acc) scc ->
        (i + 1, List.fold_left (fun acc v -> StringMap.add v i acc) acc scc))
      (0, StringMap.empty) scc_list
    |> snd
  in
  { edges; scc_id; scc_list }

let depends g v =
  match StringMap.find_opt v g.edges with Some s -> StringSet.elements s | None -> []

let sccs g = g.scc_list
let sccs_top_down g = List.rev g.scc_list

let same_scc g a b =
  match (StringMap.find_opt a g.scc_id, StringMap.find_opt b g.scc_id) with
  | Some i, Some j -> i = j
  | _ -> false

let recursive_with = same_scc

let scc_of g v =
  match StringMap.find_opt v g.scc_id with
  | None -> [ v ]
  | Some i -> List.nth g.scc_list i
