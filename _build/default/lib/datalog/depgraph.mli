(** Predicate dependency graph and strongly connected components.

    The GMT grounding procedure (Section 6.2) processes SCCs of the adorned
    program in topological order, highest (query) SCC first; recursion
    checks ("[q] is not recursive with [p]", Definition 6.1) are SCC
    membership tests. *)

type t

val of_program : Program.t -> t
(** Graph with an edge [p -> q] whenever [q] occurs in the body of a rule
    defining [p]. *)

val depends : t -> string -> string list
(** Direct dependencies of a predicate (body predicates of its rules). *)

val sccs : t -> string list list
(** Strongly connected components in *reverse* topological order: callees
    before callers, so the query predicate's SCC comes last. *)

val sccs_top_down : t -> string list list
(** SCCs with the query SCC first — the order [Ground_Fold_Unfold]
    iterates in. *)

val same_scc : t -> string -> string -> bool
(** Mutual recursion test. *)

val recursive_with : t -> string -> string -> bool
(** [recursive_with g p q] iff [p] and [q] are in the same SCC. *)

val scc_of : t -> string -> string list
