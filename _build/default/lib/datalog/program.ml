open Cql_constr

module StringSet = Set.Make (String)
module StringMap = Map.Make (String)

type t = { rules : Rule.t list; query : string option }

let make ?query rules = { rules; query }
let add_rule r p = { p with rules = p.rules @ [ r ] }
let set_query q p = { p with query = Some q }

let head_preds p =
  List.fold_left (fun acc (r : Rule.t) -> StringSet.add r.Rule.head.Literal.pred acc)
    StringSet.empty p.rules

let all_preds p =
  List.fold_left
    (fun acc (r : Rule.t) ->
      List.fold_left
        (fun acc (l : Literal.t) -> StringSet.add l.Literal.pred acc)
        (StringSet.add r.Rule.head.Literal.pred acc)
        r.Rule.body)
    StringSet.empty p.rules

let predicates p = StringSet.elements (all_preds p)
let derived p = StringSet.elements (head_preds p)
let edb p = StringSet.elements (StringSet.diff (all_preds p) (head_preds p))
let is_derived p name = StringSet.mem name (head_preds p)

let rules_defining p name =
  List.filter (fun (r : Rule.t) -> r.Rule.head.Literal.pred = name) p.rules

let arity p name =
  let find_in (l : Literal.t) = if l.Literal.pred = name then Some (Literal.arity l) else None in
  let rec go = function
    | [] -> raise Not_found
    | (r : Rule.t) :: rest -> (
        match find_in r.Rule.head with
        | Some a -> a
        | None -> (
            match List.find_map find_in r.Rule.body with Some a -> a | None -> go rest))
  in
  go p.rules

let body_occurrences p name =
  List.concat_map
    (fun (r : Rule.t) ->
      List.filter_map
        (fun (l : Literal.t) -> if l.Literal.pred = name then Some (r, l) else None)
        r.Rule.body)
    p.rules

let rename_predicate ~old_name ~new_name p =
  let ren (l : Literal.t) =
    if l.Literal.pred = old_name then { l with Literal.pred = new_name } else l
  in
  let rules =
    List.map
      (fun (r : Rule.t) ->
        { r with Rule.head = ren r.Rule.head; Rule.body = List.map ren r.Rule.body })
      p.rules
  in
  let query = match p.query with Some q when q = old_name -> Some new_name | q -> q in
  { rules; query }

let map_rules f p = { p with rules = List.map f p.rules }

let restrict_reachable p =
  match p.query with
  | None -> p
  | Some q ->
      let defs = head_preds p in
      let rec reach seen frontier =
        if StringSet.is_empty frontier then seen
        else
          let next =
            List.fold_left
              (fun acc (r : Rule.t) ->
                if StringSet.mem r.Rule.head.Literal.pred frontier then
                  List.fold_left
                    (fun acc (l : Literal.t) -> StringSet.add l.Literal.pred acc)
                    acc r.Rule.body
                else acc)
              StringSet.empty p.rules
          in
          let fresh = StringSet.diff (StringSet.inter next defs) seen in
          reach (StringSet.union seen fresh) fresh
      in
      let reachable = reach (StringSet.singleton q) (StringSet.singleton q) in
      {
        p with
        rules =
          List.filter (fun (r : Rule.t) -> StringSet.mem r.Rule.head.Literal.pred reachable) p.rules;
      }

let fresh_query_name p =
  let preds = all_preds p in
  let rec go i =
    let name = if i = 0 then "q_" else Printf.sprintf "q_%d" i in
    if StringSet.mem name preds then go (i + 1) else name
  in
  go 0

let with_query_rule p body cstr =
  let qname = fresh_query_name p in
  let vars =
    Var.Set.union
      (List.fold_left (fun acc l -> Var.Set.union acc (Literal.vars l)) Var.Set.empty body)
      (Conj.vars cstr)
  in
  let head = Literal.of_vars qname (Var.Set.elements vars) in
  let rule = Rule.make ~label:"query" head body cstr in
  (set_query qname (add_rule rule p), qname)

let check p =
  let arities = Hashtbl.create 16 in
  let exception Bad of string in
  try
    let see (l : Literal.t) =
      let a = Literal.arity l in
      match Hashtbl.find_opt arities l.Literal.pred with
      | None -> Hashtbl.add arities l.Literal.pred a
      | Some a' ->
          if a <> a' then
            raise (Bad (Printf.sprintf "predicate %s used with arities %d and %d" l.Literal.pred a' a))
    in
    List.iter
      (fun (r : Rule.t) ->
        see r.Rule.head;
        List.iter see r.Rule.body)
      p.rules;
    (match p.query with
    | Some q when not (StringSet.mem q (all_preds p)) ->
        raise (Bad (Printf.sprintf "query predicate %s does not occur in the program" q))
    | _ -> ());
    Ok ()
  with Bad msg -> Error msg

let is_range_restricted p = List.for_all Rule.is_range_restricted p.rules

let prettify p = { p with rules = List.map Rule.prettify p.rules }

let dedup_rules p =
  let rec go kept = function
    | [] -> List.rev kept
    | r :: rest ->
        if List.exists (Rule.equal_mod_renaming r) kept then go kept rest
        else go (r :: kept) rest
  in
  { p with rules = go [] p.rules }

let equal_mod_renaming a b =
  (* multiset matching of rules by equal_mod_renaming, with backtracking *)
  let rec go arules brules =
    match arules with
    | [] -> brules = []
    | r :: rest ->
        let rec pick seen = function
          | [] -> false
          | r' :: rest' ->
              if Rule.equal_mod_renaming r r' && go rest (List.rev_append seen rest') then true
              else pick (r' :: seen) rest'
        in
        pick [] brules
  in
  List.length a.rules = List.length b.rules && go a.rules b.rules

let pp fmt p =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
    Rule.pp fmt p.rules;
  match p.query with
  | Some q ->
      Format.pp_print_newline fmt ();
      Format.fprintf fmt "#query %s." q
  | None -> ()

let to_string p = Format.asprintf "%a" pp p
