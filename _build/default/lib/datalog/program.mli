(** CQL programs: a finite set of rules plus a designated query predicate.

    Following Section 2 of the paper, a query [?- q(t̄)] is folded into the
    program as a rule defining a fresh query predicate, so transformations
    treat it like any other rule. *)

open Cql_constr

type t = { rules : Rule.t list; query : string option }

val make : ?query:string -> Rule.t list -> t

val add_rule : Rule.t -> t -> t
val set_query : string -> t -> t

(** {1 Predicate structure} *)

val predicates : t -> string list
(** All predicates occurring in the program, sorted. *)

val derived : t -> string list
(** Predicates defined by at least one rule (IDB), sorted. *)

val edb : t -> string list
(** Predicates occurring only in rule bodies (database predicates). *)

val is_derived : t -> string -> bool

val rules_defining : t -> string -> Rule.t list

val arity : t -> string -> int
(** Arity of a predicate occurring in the program.
    @raise Not_found if the predicate does not occur. *)

val body_occurrences : t -> string -> (Rule.t * Literal.t) list
(** All body occurrences of a predicate, with their rule. *)

val rename_predicate : old_name:string -> new_name:string -> t -> t
(** Rename a predicate everywhere (heads and bodies). *)

val map_rules : (Rule.t -> Rule.t) -> t -> t

val restrict_reachable : t -> t
(** Delete rules not reachable from the query predicate (the cleanup step
    after fold/unfold transformations, cf. Example 4.1). Programs without a
    query predicate are returned unchanged. *)

val with_query_rule : t -> Literal.t list -> Conj.t -> t * string
(** [with_query_rule p body cstr] adds a rule [q(ȳ) :- cstr, body] for a
    fresh query predicate [q] whose arguments are the variables of the query
    body (Section 2), sets it as the program's query predicate, and returns
    the new program along with [q]. *)

(** {1 Validation} *)

val check : t -> (unit, string) result
(** Structural well-formedness: consistent predicate arities, and every rule
    head is a derived predicate occurrence. *)

val is_range_restricted : t -> bool

(** {1 Comparison and printing} *)

val prettify : t -> t
(** Rename every rule's variables to short readable names (cosmetic). *)

val dedup_rules : t -> t
(** Remove rules that duplicate an earlier rule up to variable renaming and
    body reordering (overlapping constraint-set disjuncts can make the
    propagation procedures emit duplicates; cf. Example 4.3 where the paper
    merges them). *)

val equal_mod_renaming : t -> t -> bool
(** Same rule multiset up to variable renaming, body reordering and rule
    order (labels ignored). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
