(** Predicate literals [p(t1, …, tn)]. *)

open Cql_constr

type t = { pred : string; args : Term.t list }

val make : string -> Term.t list -> t
val arity : t -> int
val vars : t -> Var.Set.t

val of_vars : string -> Var.t list -> t
(** Literal whose arguments are the given variables. *)

val fresh_args : string -> int -> t
(** [fresh_args p n] is [p(X1,…,Xn)] over globally fresh, distinct
    variables. *)

val canonical : string -> int -> t
(** [canonical p n] is [p($1,…,$n)] over the canonical argument-position
    variables (used to express predicate and QRP constraints). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
