(** Rules [p(X̄) :- C, p1(X̄1), …, pn(X̄n)] in normal form (Section 2).

    [C] is a conjunction of linear arithmetic constraints; body literals are
    ordinary predicate literals.  A rule with an empty body is a (constraint)
    fact. *)

open Cql_constr

type t = {
  label : string;  (** e.g. ["r1"]; informational, used in traces *)
  head : Literal.t;
  body : Literal.t list;
  cstr : Conj.t;
}

val make : ?label:string -> Literal.t -> Literal.t list -> Conj.t -> t
val fact : ?label:string -> Literal.t -> Conj.t -> t
val is_fact : t -> bool

val vars : t -> Var.Set.t
val head_vars : t -> Var.Set.t
val body_vars : t -> Var.Set.t

val apply : Subst.t -> t -> t
(** Apply a substitution to head, body and constraints.
    @raise Subst.Type_error on symbolic constants in constraints. *)

val rename_apart : t -> t
(** Rename all variables of the rule to globally fresh ones. *)

val add_constraint : Conj.t -> t -> t

val relabel : string -> t -> t

val grounded_vars : t -> Var.Set.t
(** Variables bound to ground terms once the body literals are: body literal
    variables, closed under equality constraints with a single unknown
    (e.g. [T = T1 + T2 + 30] grounds [T]). *)

val is_range_restricted : t -> bool
(** Every head variable is in {!grounded_vars} (the sufficient condition of
    footnote 8 for computing only ground facts, given ground EDB facts). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val equal_mod_renaming : t -> t -> bool
(** Equality up to consistent variable renaming and reordering of body
    literals/constraint atoms (used to compare mechanically-derived programs
    against the paper's). *)

val prettify : t -> t
(** Rename the rule's variables to short readable names ([X], [Y1], ...)
    based on their original base names; purely cosmetic, used before
    printing transformation outputs. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
