(** Terms of the constraint query language.

    Rules are kept in a normal form where every literal argument is a plain
    variable or a constant; source-level arithmetic arguments such as
    [fib(N, X1+X2)] are flattened by the parser into a fresh variable plus an
    equality constraint.  Constants are either numeric (participating in
    arithmetic constraints) or symbolic (uninterpreted, e.g. [madison]). *)

open Cql_num
open Cql_constr

type const = Num of Rat.t | Sym of string

type t = V of Var.t | C of const

val var : Var.t -> t
val num : Rat.t -> t
val int : int -> t
val sym : string -> t

val is_var : t -> bool
val is_ground : t -> bool

val vars : t -> Var.Set.t

val to_linexpr : t -> Linexpr.t option
(** [Some e] for variables and numeric constants; [None] for symbolic
    constants, which cannot appear in arithmetic constraints. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val compare_const : const -> const -> int
val equal_const : const -> const -> bool

val pp : Format.formatter -> t -> unit
val pp_const : Format.formatter -> const -> unit
val to_string : t -> string
