lib/core/simplify.ml: Conj Cql_constr Cql_datalog List Literal Program Rule Subst Term Var
