lib/core/adorn.mli: Cql_constr Cql_datalog Literal Program
