lib/core/ptol_ltop.mli: Conj Cql_constr Cql_datalog Cset Literal
