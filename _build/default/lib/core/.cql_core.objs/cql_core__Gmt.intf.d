lib/core/gmt.mli: Conj Cql_constr Cql_datalog Depgraph Literal Program Rule Var
