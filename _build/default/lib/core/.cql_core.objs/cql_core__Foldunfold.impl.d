lib/core/foldunfold.ml: Conj Cql_constr Cql_datalog Cset List Literal Printf Ptol_ltop Rule Subst
