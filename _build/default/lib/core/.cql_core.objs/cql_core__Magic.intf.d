lib/core/magic.mli: Cql_datalog Literal Program
