lib/core/foldunfold.mli: Cql_constr Cql_datalog Cset Literal Rule
