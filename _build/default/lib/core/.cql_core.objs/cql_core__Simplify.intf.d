lib/core/simplify.mli: Cql_datalog Program Rule
