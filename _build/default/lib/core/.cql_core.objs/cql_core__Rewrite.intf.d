lib/core/rewrite.mli: Cql_constr Cql_datalog Cset Pred_constraints Program Qrp
