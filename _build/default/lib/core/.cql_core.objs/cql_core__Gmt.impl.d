lib/core/gmt.ml: Atom Conj Cql_constr Cql_datalog Depgraph Foldunfold Hashtbl List Literal Magic Printf Program Rule String Subst Term Var
