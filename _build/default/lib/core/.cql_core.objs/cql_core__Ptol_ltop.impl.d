lib/core/ptol_ltop.ml: Atom Conj Cql_constr Cql_datalog Cset Linexpr List Literal Term Var
