lib/core/qrp.mli: Conj Cql_constr Cql_datalog Cset Literal Program
