lib/core/rewrite.ml: Adorn Cql_constr Cql_datalog List Literal Magic Pred_constraints Program Qrp Rule
