lib/core/qrp.ml: Adorn Atom Conj Cql_constr Cql_datalog Cset Foldunfold List Literal Map Printf Program Ptol_ltop Rule String Var
