lib/core/magic.ml: Adorn Conj Cql_constr Cql_datalog List Literal Printf Program Rule String Var
