lib/core/decidable.mli: Bigint Cql_constr Cql_datalog Cql_num Program
