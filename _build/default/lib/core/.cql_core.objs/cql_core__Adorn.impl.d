lib/core/adorn.ml: Atom Conj Cql_constr Cql_datalog Hashtbl List Literal Program Rule String Term Var
