lib/core/pred_constraints.ml: Conj Cql_constr Cql_datalog Cset List Literal Map Printf Program Ptol_ltop Rule String
