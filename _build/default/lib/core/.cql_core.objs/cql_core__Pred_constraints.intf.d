lib/core/pred_constraints.mli: Cql_constr Cql_datalog Cset Program
