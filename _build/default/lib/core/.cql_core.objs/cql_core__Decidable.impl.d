lib/core/decidable.ml: Atom Bigint Conj Cql_constr Cql_datalog Cql_num Linexpr List Program Rat Rule
