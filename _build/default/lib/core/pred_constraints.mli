(** Generation and propagation of minimum predicate constraints
    (Section 4.4, procedures [Gen_predicate_constraints] and
    [Gen_Prop_predicate_constraints]; Theorems 4.5 and 4.6).

    A predicate constraint on [p] is a constraint set over [$1 … $n]
    satisfied by every [p] fact derivable bottom-up, independent of the EDB
    contents (Definition 2.4).  Generation iterates an exact
    immediate-consequence step over constraint sets starting from [false]
    for derived predicates; it produces the *minimum* predicate constraints
    when it converges.  In general it need not terminate, so an iteration
    budget is taken; on exhaustion the procedure falls back to [true]
    (sound, not minimum) as Section 4.2 prescribes. *)

open Cql_constr
open Cql_datalog

type result = {
  constraints : (string * Cset.t) list;  (** per predicate (derived and EDB) *)
  iterations : int;
  converged : bool;  (** false when the iteration budget was exhausted *)
}

val find : result -> string -> Cset.t
(** The constraint for a predicate ([true] when absent). *)

val gen :
  ?max_iters:int ->
  ?edb_constraints:(string * Cset.t) list ->
  Program.t ->
  result
(** [gen p] runs [Gen_predicate_constraints].  [edb_constraints] supplies
    the (minimum) predicate constraints of database predicates — the
    procedure's input in Appendix C; unlisted EDB predicates get [true].
    Default [max_iters] is 50. *)

val single_step : Program.t -> (string -> Cset.t) -> (string * Cset.t) list
(** One application of the inferred-head-constraint step ([Single_step] of
    Appendix C): for each rule and each choice of disjuncts for its body
    literals, the LTOP of the projection of the combined constraints onto
    the head. *)

val propagate : result -> Program.t -> Program.t
(** [Gen_Prop_predicate_constraints]: associate the PTOL of each
    predicate's constraint with every body occurrence of that predicate,
    one rule copy per choice of disjuncts (Appendix C).  Unsatisfiable
    copies are dropped. *)

val gen_prop :
  ?max_iters:int -> ?edb_constraints:(string * Cset.t) list -> Program.t -> Program.t * result
(** Generation followed by propagation. *)
