open Cql_constr
open Cql_datalog

(* positions of the literal holding symbolic constants cannot be converted;
   project their $i away before substituting *)
let sym_positions (l : Literal.t) =
  List.concat
    (List.mapi
       (fun i t -> match t with Term.C (Term.Sym _) -> [ Var.arg (i + 1) ] | _ -> [])
       l.Literal.args)

let ptol_conj (l : Literal.t) (c : Conj.t) : Conj.t =
  let keep = Var.Set.diff (Conj.vars c) (Var.Set.of_list (sym_positions l)) in
  let c = Conj.project ~keep c in
  (* substitute $i := t_i; repeated variables merge, which is exactly
     substitution semantics *)
  List.fold_left
    (fun acc (i, t) ->
      let ai = Var.arg i in
      match t with
      | Term.V v -> Conj.subst ai (Linexpr.var v) acc
      | Term.C (Term.Num q) -> Conj.subst ai (Linexpr.const q) acc
      | Term.C (Term.Sym _) -> acc)
    c
    (List.mapi (fun i t -> (i + 1, t)) l.Literal.args)

let ptol l cs = Cset.of_disjuncts (List.map (ptol_conj l) (Cset.disjuncts cs))

let ltop_conj (l : Literal.t) (c : Conj.t) : Conj.t =
  let eqs =
    List.concat
      (List.mapi
         (fun i t ->
           let ai = Var.arg (i + 1) in
           match t with
           | Term.V v -> [ Atom.eq (Linexpr.var ai) (Linexpr.var v) ]
           | Term.C (Term.Num q) -> [ Atom.eq (Linexpr.var ai) (Linexpr.const q) ]
           | Term.C (Term.Sym _) -> [])
         l.Literal.args)
  in
  let keep =
    List.mapi (fun i _ -> Var.arg (i + 1)) l.Literal.args |> Var.Set.of_list
  in
  Conj.simplify (Conj.project ~keep (Conj.and_ c (Conj.of_list eqs)))

let ltop l cs = Cset.of_disjuncts (List.map (ltop_conj l) (Cset.disjuncts cs))
