(** The GMT (Ground Magic Templates) transformation of Mumick et al.,
    reconstructed as Magic Templates plus a fold/unfold grounding step —
    the paper's Section 6.2 contribution ([Ground_Fold_Unfold],
    Theorem 6.2, Figure 2).

    The class of [bcf] adornments adds a condition ([c]) adornment for
    argument positions that are not bound to ground terms but are
    independently constrained.  Magic predicates keep both bound and
    conditioned positions, so the Magic Templates output [P^{ad,mg}] may
    contain non-range-restricted magic rules; for {e groundable} programs
    (Definition 6.1) the grounding step replaces each conditioned magic
    predicate by supplementary predicates ([s_k_p]) whose rules are
    range-restricted, via a definition/unfold/fold sequence per SCC of the
    adorned program. *)

open Cql_constr
open Cql_datalog

val split_bcf : string -> (string * string) option
(** Recognize a [_<adornment>] suffix over [b]/[c]/[f]. *)

val adorn_bcf : query_adornment:string -> Program.t -> Program.t
(** bcf-adorn the program for its query predicate (left-to-right sips; a
    variable is conditioned when a constraint links it to ground or
    conditioned variables and constants).
    @raise Invalid_argument without a query predicate. *)

val conditioned_head_vars : Rule.t -> Var.Set.t
(** Variables in conditioned ([c]) head positions of an adorned rule. *)

val grounding_subgoals : Depgraph.t -> Rule.t -> Literal.t list * Conj.t
(** The grounding subgoals of an adorned rule — ordinary body literals not
    recursive with the head that contain conditioned head variables — and
    their associated constraints (atoms over the subgoals' variables). *)

val groundable : Program.t -> bool
(** Definition 6.1 on a bcf-adorned program. *)

val magic : Program.t -> Program.t
(** Magic Templates with grounding sips on a bcf-adorned program: magic
    predicates keep bound and conditioned positions, grounding subgoals are
    moved before non-grounding ones, and magic rules carry the projection of
    the rule's constraints (constraint magic). *)

val ground_fold_unfold : adorned:Program.t -> Program.t -> Program.t
(** [ground_fold_unfold ~adorned pmg] applies the grounding fold/unfold
    sequence SCC by SCC (procedure [Ground_Fold_Unfold]); on groundable
    programs the result is range-restricted and query-equivalent
    (Theorem 6.2). *)

val pipeline : query_adornment:string -> Program.t -> Program.t
(** Figure 2: adorn (bcf) → Magic Templates → grounding.  The result's
    magic seed is inlined ({!Magic.inline_seed}) so it matches the paper's
    presentation.
    @raise Invalid_argument when the adorned program is not groundable. *)
