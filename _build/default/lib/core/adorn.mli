(** Adornments and sideways information passing (Appendix B).

    An adornment is a string over ['b']/['f'] (bound/free), one character
    per argument position.  We implement full left-to-right sips with the
    bound-if-ground rule: an argument of a body literal is bound iff it is a
    constant or its variable is ground given the head's bound arguments, the
    literals to its left, and the rule's equality constraints (the closure
    of {!Cql_datalog.Rule.grounded_vars}).  Derived predicates are renamed
    [p_<adornment>]; database predicates are left alone. *)

open Cql_datalog

type adornment = string

val adorned_name : string -> adornment -> string
(** [adorned_name "p" "bf"] is ["p_bf"]. *)

val split_adorned : string -> (string * adornment) option
(** Inverse of {!adorned_name} (recognizes a trailing [_b*f*] chunk). *)

val all_free : int -> adornment
val all_bound : int -> adornment

val bound_args : adornment -> 'a list -> 'a list
(** Keep the arguments at bound positions.
    @raise Invalid_argument on length mismatch. *)

val literal_adornment : bound:Cql_constr.Var.Set.t -> Literal.t -> adornment
(** Adornment of a body literal given the currently-ground variables. *)

val program : query_adornment:adornment -> Program.t -> Program.t
(** Adorn a program for its query predicate queried with the given
    adornment, producing only the (pred, adornment) versions reachable from
    the query (Definition B.2).  The result's query predicate is the
    adorned query name.
    @raise Invalid_argument when no query predicate is set or the adornment
    length does not match the query predicate's arity. *)
