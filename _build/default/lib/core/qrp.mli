(** Generation and propagation of query-relevant predicate (QRP)
    constraints (Sections 4.2–4.3; procedures [Gen_QRP_constraints] and
    [Gen_Prop_QRP_constraints] of Appendix C).

    A QRP constraint on [p] is satisfied by every [p] fact that is both
    derivable and *constraint-relevant* to the query predicate (Definitions
    2.5/2.6).  Generation seeds the query predicate with [true] and every
    other defined predicate with [false], then repeatedly infers literal
    constraints (Proposition 4.1): the constraint a body literal's facts
    must satisfy to contribute to a head fact satisfying the head's current
    approximation.  Theorem 4.2: on convergence the result is a QRP
    constraint; after minimum *predicate* constraints have been propagated
    (module {!Pred_constraints}), it is the *minimum* QRP constraint
    (Theorem 4.7).

    Propagation pushes each predicate's QRP constraint into its defining
    rules by a definition/unfold/fold sequence, renaming [p] to [p'] as in
    the paper's Example 4.3 ([flight'], …). *)

open Cql_constr
open Cql_datalog

type result = {
  constraints : (string * Cset.t) list;  (** per derived predicate *)
  iterations : int;
  converged : bool;
}

val find : result -> string -> Cset.t

val literal_constraint : head_ptol:Conj.t -> rule_cstr:Conj.t -> Literal.t -> Conj.t
(** Proposition 4.1: the literal constraint on a body literal, i.e. the
    projection of the head constraint (already converted by PTOL) and the
    rule's constraints onto the literal's variables, converted by LTOP. *)

val gen : ?max_iters:int -> Program.t -> result
(** [Gen_QRP_constraints].  The program must have a query predicate.
    Default [max_iters] is 50; on exhaustion every predicate falls back to
    [true] (sound, not minimum — Section 4.2).
    @raise Invalid_argument when no query predicate is set. *)

val gen_syntactic : ?max_iters:int -> Program.t -> result
(** A deliberately weakened variant that treats constraints "as any other
    literal" the way Balbin et al.'s C transformation does (Section 6.1):
    the literal constraint keeps only the rule's constraint atoms whose
    variables all occur in the literal, with no semantic projection.  Used
    as the Figure 1 baseline; cannot derive [Y <= 4] in Example 4.1. *)

val primed_name : suffix:string -> string -> string
(** Primed name of a predicate; adorned names keep the adornment parseable
    ([flight_bbff] primes to [flight'_bbff]). *)

val propagate : ?primed_suffix:string -> result -> Program.t -> Program.t
(** [Gen_Prop_QRP_constraints]: for each derived non-query predicate whose
    QRP constraint is neither [true] nor [false], perform the
    definition/unfold/fold sequence, then delete rules unreachable from the
    query predicate.  Predicates are renamed with [primed_suffix]
    (default ["'"]). *)

val gen_prop : ?max_iters:int -> Program.t -> Program.t * result
