(** Post-transformation program cleanup.

    The propagation procedures produce correct but sometimes redundant
    programs: constraint parts with implied atoms, rules whose constraints
    are unsatisfiable, duplicate rules from overlapping disjuncts, and rules
    subsumed by more general ones.  This pass removes all four without
    changing the program's meaning. *)

open Cql_datalog

val rule : Rule.t -> Rule.t option
(** Simplify the constraint part; [None] when it is unsatisfiable (the rule
    can never fire). *)

val rule_subsumed_by : general:Rule.t -> Rule.t -> bool
(** [rule_subsumed_by ~general r]: every fact [r] derives, [general]
    derives too — same head predicate, an instance of [general]'s body
    literals occurs among [r]'s body literals, and [r]'s constraints imply
    the corresponding instance of [general]'s.  (Sound syntactic check, not
    complete.) *)

val program : Program.t -> Program.t
(** Simplify every rule, drop never-firing and duplicate rules, drop rules
    subsumed by another rule, and restrict to the predicates reachable from
    the query (when one is set). *)
