(** The decidable class of Section 5 (Theorem 5.1).

    When every constraint in the program has the form [X op Y] or [X op c]
    with [op ∈ {≤, ≥, <, >}] — no arithmetic function symbols — only
    finitely many "simple" constraints exist over a predicate's argument
    positions, so [Gen_predicate_constraints] and [Gen_QRP_constraints]
    terminate: a predicate of arity [k] admits at most [2k² + 4k] simple
    constraints, hence at most [2^(2k²+4k)] disjuncts, and the procedures
    iterate at most [n · 2^(2k²+4k)] times. *)

open Cql_num
open Cql_datalog

val atom_in_class : Cql_constr.Atom.t -> bool
(** [X op Y] or [X op c] with a strict or non-strict inequality (no
    equalities, no multi-variable sums, no scaled variables). *)

val in_class : Program.t -> bool
(** Every constraint atom of every rule is in the class. *)

val simple_constraints_bound : int -> int
(** [2k² + 4k] for arity [k]. *)

val disjunct_bound : int -> Bigint.t
(** [2^(2k²+4k)]. *)

val iteration_bound : Program.t -> Bigint.t
(** [n · 2^(2k²+4k)] with [n] the number of predicates and [k] the maximum
    arity — the combinatorial bound of Theorem 5.1 on the iterations of the
    constraint-generation procedures. *)
