(** The Magic Templates transformation (Appendix B) and its constraint
    magic refinement (Section 7.2).

    Two variants are provided:

    - {!templates_bf}: for a bf-adorned program ({!Adorn.program}), the
      magic predicate of [p_a] keeps only the bound argument positions.
      With [~constraint_magic:true] each magic rule also carries the
      projection of the source rule's constraints onto the magic rule's
      variables — the defining property of constraint magic rewriting
      ([Π_Ȳ(C_r) = Π_Ȳ(C_mr)]).  With ground EDB facts and bound-if-ground
      sips, the rewritten program computes only ground facts
      (Proposition 7.1).

    - {!templates_complete}: full Magic Templates with complete
      left-to-right sips — magic predicates keep *all* argument positions,
      so non-ground bindings (e.g. [m_fib(N, X1+X2)]) are passed and the
      evaluation may compute constraint facts.  This is the rewriting of
      the paper's Example 1.2 whose evaluation Table 1 traces. *)

open Cql_datalog

val magic_name : string -> string
(** ["m_" ^ pred]. *)

val is_magic : string -> bool

val inline_seed : Program.t -> Program.t
(** Remove the query's seed guard: when the seed fact is an all-free magic
    fact over distinct variables (always the case for a query predicate
    queried with its arguments free, Section 2), every body occurrence of
    that magic predicate matches it without binding anything, so the
    occurrences and the seed rule can be deleted.  This presents magic
    programs the way the paper writes them (e.g. rule [r6: m_fib(N, 5)] of
    Example 1.2 instead of a seed for the auxiliary query predicate). *)

val templates_bf : ?constraint_magic:bool -> Program.t -> Program.t
(** Input must be an adorned program (every derived predicate named
    [p_<ad>]); [constraint_magic] defaults to [true].  The seed is a magic
    fact for the query predicate over fresh free variables.
    @raise Invalid_argument when a derived predicate is not adorned or no
    query predicate is set. *)

val templates_with_head :
  magic_head:(Literal.t -> Literal.t) -> Program.t -> Program.t
(** The generic template engine: supply the magic-literal construction (how
    a literal's magic version keeps/encodes its arguments).  Used by the
    GMT transformation, whose magic predicates keep bound and conditioned
    positions. *)

val templates_complete : Program.t -> Program.t
(** No adornment needed; magic predicates have the predicates' full arity
    and magic rules carry the projection of the source rule's constraints
    (complete sips pass constraints and non-ground terms sideways).
    @raise Invalid_argument when no query predicate is set. *)
