open Cql_constr
open Cql_datalog

let rule (r : Rule.t) =
  let c = Conj.simplify r.Rule.cstr in
  if Conj.equal c Conj.ff then None else Some { r with Rule.cstr = c }

(* one-way matching of [pat] terms against [tgt] terms: only pat-side
   variables bind, injectively *)
let match_term m (pat : Term.t) (tgt : Term.t) =
  match (pat, tgt) with
  | Term.C c1, Term.C c2 -> if Term.equal_const c1 c2 then Some m else None
  | Term.V v, t -> (
      match Var.Map.find_opt v m with
      | Some bound -> if Term.equal bound t then Some m else None
      | None -> Some (Var.Map.add v t m))
  | Term.C _, Term.V _ -> None

let match_literal m (pat : Literal.t) (tgt : Literal.t) =
  if pat.Literal.pred <> tgt.Literal.pred then None
  else if List.length pat.Literal.args <> List.length tgt.Literal.args then None
  else
    List.fold_left2
      (fun acc p t -> match acc with None -> None | Some m -> match_term m p t)
      (Some m) pat.Literal.args tgt.Literal.args

let rule_subsumed_by ~general (r : Rule.t) =
  (* rename the general rule apart so its variables are free to bind *)
  let general = Rule.rename_apart general in
  let rec cover m pats available =
    match pats with
    | [] -> Some m
    | pat :: rest ->
        let rec try_cands seen = function
          | [] -> None
          | cand :: cands -> (
              match match_literal m pat cand with
              | Some m' -> (
                  match cover m' rest (List.rev_append seen cands) with
                  | Some res -> Some res
                  | None -> try_cands (cand :: seen) cands)
              | None -> try_cands (cand :: seen) cands)
        in
        try_cands [] available
  in
  match match_literal Var.Map.empty general.Rule.head r.Rule.head with
  | None -> false
  | Some m -> (
      match cover m general.Rule.body r.Rule.body with
      | None -> false
      | Some m -> (
          (* leftover general-side variables (body-only vars not matched
             because the general body is smaller) stay free: that is fine,
             their constraints are existential *)
          let subst = Subst.of_bindings (Var.Map.bindings m) in
          match Subst.apply_conj subst general.Rule.cstr with
          | gc ->
              (* project general's constraints onto what got instantiated *)
              let keep = Var.Set.union (Rule.vars r) (Conj.vars gc) in
              let gc = Conj.project ~keep:(Var.Set.inter keep (Rule.vars r)) gc in
              Conj.implies r.Rule.cstr gc
          | exception Subst.Type_error _ -> false))

let program (p : Program.t) =
  let rules = List.filter_map rule p.Program.rules in
  (* drop rules subsumed by another (keep the first of mutually-subsuming
     pairs) *)
  let rec prune kept = function
    | [] -> List.rev kept
    | r :: rest ->
        let subsumed =
          List.exists (fun g -> g != r && rule_subsumed_by ~general:g r) kept
          || List.exists (fun g -> rule_subsumed_by ~general:g r) rest
        in
        if subsumed then prune kept rest else prune (r :: kept) rest
  in
  let rules = prune [] rules in
  Program.restrict_reachable (Program.dedup_rules { p with Program.rules })
