(** The Tamaki–Sato fold/unfold steps, restricted to the forms the paper
    needs (Appendix A).

    The definition step introduces [m] rules
    [p'(X̄) :- Cᵢ(X̄), p(X̄)] over distinct variables; the unfold step
    resolves a body literal against all rules defining its predicate; the
    fold step replaces a body occurrence [p(t̄)] by [p'(t̄)] when the rule's
    constraints imply the defining constraint set of [p'] instantiated at
    [t̄].  Both QRP-constraint propagation (Section 4.3) and the GMT
    grounding step (Section 6.2) are sequences of these. *)

open Cql_constr
open Cql_datalog

val definition : primed:string -> orig:string -> arity:int -> Cset.t -> Rule.t list
(** One rule [primed(X̄) :- Cᵢ(X̄), orig(X̄)] per disjunct [Cᵢ] of the
    constraint set (Definition Step). *)

val unfold_literal : defs:Rule.t list -> Rule.t -> Literal.t -> Rule.t list
(** [unfold_literal ~defs r lit] resolves the body occurrence [lit] of [r]
    (which must be a member of [r.body]) against every rule in [defs] (the
    rules whose heads may unify with [lit]).  Definition rules are renamed
    apart; unsatisfiable resolvents are dropped (Unfolding Step). *)

val unfold_pred : defs:Rule.t list -> pred:string -> Rule.t -> Rule.t list
(** Unfold every body occurrence of [pred] in the rule (left to right,
    cascading through all occurrences). *)

val fold_occurrences :
  ?check:bool -> primed:string -> orig:string -> Cset.t -> Rule.t -> Rule.t option
(** Replace each body occurrence [orig(t̄)] by [primed(t̄)] (Folding Step
    with the definition rules of {!definition}).  With [~check:true]
    (default), verifies the foldability condition — the rule's constraints
    imply [PTOL(orig(t̄), cset)] — and returns [None] if any occurrence
    fails it. *)
