open Cql_num
open Cql_constr
open Cql_datalog

let atom_in_class (a : Atom.t) =
  match a.Atom.op with
  | Atom.Eq -> false
  | Atom.Le | Atom.Lt -> (
      (* normalized atoms: X op c is (±1)·X + c' op 0; X op Y is X - Y op 0 *)
      match Linexpr.terms a.Atom.expr with
      | [ (_, k) ] -> Rat.equal (Rat.abs k) Rat.one
      | [ (_, k1); (_, k2) ] ->
          Rat.is_zero (Linexpr.constant a.Atom.expr)
          && Rat.equal (Rat.abs k1) Rat.one
          && Rat.equal (Rat.abs k2) Rat.one
          && Rat.sign k1 <> Rat.sign k2
      | _ -> false)

let in_class (p : Program.t) =
  List.for_all
    (fun (r : Rule.t) -> List.for_all atom_in_class (Conj.to_list r.Rule.cstr))
    p.Program.rules

let simple_constraints_bound k = (2 * k * k) + (4 * k)

let disjunct_bound k = Bigint.pow (Bigint.of_int 2) (simple_constraints_bound k)

let iteration_bound (p : Program.t) =
  let preds = Program.predicates p in
  let n = List.length preds in
  let k = List.fold_left (fun acc pred -> max acc (Program.arity p pred)) 0 preds in
  Bigint.mul (Bigint.of_int n) (disjunct_bound k)
