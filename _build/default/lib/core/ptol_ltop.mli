(** The PTOL and LTOP conversions (Definitions 2.7 and 2.8).

    Predicate constraints and QRP constraints are expressed over the
    canonical argument positions [$1 … $n]; constraints in rules are over
    the rule's variables.  [PTOL(p(X̄), C)] converts a constraint set over
    argument positions to one over the literal's variables; [LTOP(p(X̄), C)]
    converts a constraint set over the literal's variables back to argument
    positions, projecting out everything else (which also handles repeated
    variables and constants in [X̄], per Definition 2.8). *)

open Cql_constr
open Cql_datalog

val ptol_conj : Literal.t -> Conj.t -> Conj.t
(** [ptol_conj l c]: substitute, in [c], each [$i] by the i-th argument of
    [l].  Numeric constants substitute their value; argument positions
    holding symbolic constants are projected away first (no arithmetic
    constraint can bind them). *)

val ptol : Literal.t -> Cset.t -> Cset.t

val ltop_conj : Literal.t -> Conj.t -> Conj.t
(** [ltop_conj l c]: the strongest constraint over [$1 … $n] implied by
    [c ∧ ⋀ $i = tᵢ] (equations only for numeric arguments). *)

val ltop : Literal.t -> Cset.t -> Cset.t
