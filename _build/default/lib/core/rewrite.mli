(** Top-level rewriting pipelines (Sections 4.5 and 7).

    [constraint_rewrite] is the paper's procedure [Constraint_rewrite]:
    add an auxiliary query rule, generate and propagate minimum predicate
    constraints, then generate and propagate QRP constraints — producing
    minimum QRP constraints when it terminates (Theorem 4.8).
    [optimal] appends constraint magic rewriting, the ordering Theorem 7.10
    proves optimal: [pred, qrp, mg]. *)

open Cql_constr
open Cql_datalog

type step =
  | Pred  (** [Gen_Prop_predicate_constraints] *)
  | Qrp  (** [Gen_Prop_QRP_constraints] *)
  | Magic of { adornment : string; constraint_magic : bool }
      (** adorn for the query predicate with this adornment, then
          constraint magic rewriting (Section 7.2) *)
  | Magic_complete  (** full Magic Templates with complete sips *)

type report = {
  pred_constraints : Pred_constraints.result option;
  qrp_constraints : Qrp.result option;
}

val sequence :
  ?max_iters:int ->
  ?edb_constraints:(string * Cset.t) list ->
  step list ->
  Program.t ->
  Program.t * report
(** Apply the steps left to right.  The report keeps the last generated
    constraint sets of each kind. *)

val constraint_rewrite :
  ?max_iters:int ->
  ?edb_constraints:(string * Cset.t) list ->
  Program.t ->
  Program.t * report
(** Procedure [Constraint_rewrite] (Section 4.5): wrap the query predicate
    in an auxiliary rule [q1(X̄) :- q(X̄)], run [pred] then [qrp], delete the
    auxiliary rules, and make the propagated (primed) query predicate the
    program's query — renamed back to the original name, as in the paper's
    Example 4.3 where [cheaporshort] keeps its name while [flight] becomes
    [flight']. *)

val optimal :
  ?max_iters:int ->
  ?edb_constraints:(string * Cset.t) list ->
  adornment:string ->
  Program.t ->
  Program.t * report
(** The optimal order of Theorem 7.10: [pred, qrp] (via
    {!constraint_rewrite}) followed by constraint magic rewriting. *)

val balbin :
  ?max_iters:int -> adornment:string -> Program.t -> Program.t * report
(** The Figure 1 pipeline of Balbin et al. (Section 6.1): adorn, C-transform
    (syntactic constraint propagation, {!Qrp.gen_syntactic} — constraints
    treated as ordinary literals, no semantic inference), then magic. *)
