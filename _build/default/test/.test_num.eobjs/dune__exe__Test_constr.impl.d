test/test_constr.ml: Alcotest Array Atom Conj Cql_constr Cql_num Cset Linexpr List QCheck QCheck_alcotest Rat Simplex Var
