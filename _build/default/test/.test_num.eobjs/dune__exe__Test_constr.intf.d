test/test_constr.mli:
