test/test_eval.ml: Alcotest Atom Conj Cql_constr Cql_datalog Cql_eval Cql_num Engine Explain Fact Linexpr List Literal Parser Program Rat Relation Term Var
