test/test_num.ml: Alcotest Bigint Cql_num List Printf QCheck QCheck_alcotest Rat String
