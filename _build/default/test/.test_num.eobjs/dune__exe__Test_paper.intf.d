test/test_paper.mli:
