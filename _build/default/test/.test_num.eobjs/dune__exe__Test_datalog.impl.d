test/test_datalog.ml: Alcotest Atom Conj Cql_constr Cql_datalog Cql_num Depgraph Linexpr List Literal Parser Program Rat Rule String Subst Term Var
