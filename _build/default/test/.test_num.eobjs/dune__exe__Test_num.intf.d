test/test_num.mli:
