(* End-to-end reproduction tests for the paper's worked examples and tables:
   Magic Templates (Appendix B), Tables 1 and 2 (Examples 1.2/4.4), the GMT
   grounding step (Example 6.1), the non-confluence examples (7.1/7.2, D.1/
   D.2) and the optimal ordering (Theorems 7.8/7.10). *)

open Cql_num
open Cql_constr
open Cql_datalog
open Cql_eval
open Cql_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let parse = Parser.program_of_string
let edb_of s = List.map Fact.of_fact_rule (Parser.facts_of_string s)

(* ----- adornment and magic templates ----- *)

let test_adorn_bf () =
  let p = parse {|
q(X, Y) :- a1(X, Y).
a1(X, Y) :- b1(X, Z), a2(Z, Y).
a2(X, Y) :- b2(X, Y).
a2(X, Y) :- b2(X, Z), a2(Z, Y).
#query q.
|} in
  let adorned = Adorn.program ~query_adornment:"bf" p in
  let derived = Program.derived adorned in
  check_bool "q_bf" true (List.mem "q_bf" derived);
  check_bool "a1_bf" true (List.mem "a1_bf" derived);
  (* a2's first argument is grounded by b1/b2 to its left *)
  check_bool "a2_bf" true (List.mem "a2_bf" derived);
  check_bool "no a2_ff" true (not (List.mem "a2_ff" derived))

let test_adorn_equality_grounding () =
  (* T = T1 + T2 grounds T once T1, T2 are bound *)
  let p = parse {|
q(T) :- e(T1, T2), sum(T1, T2, T).
sum(X, Y, Z) :- Z = X + Y, ok(X, Y).
#query q.
|} in
  let adorned = Adorn.program ~query_adornment:"f" p in
  check_bool "sum adorned bbf" true (List.mem "sum_bbf" (Program.derived adorned))

let test_magic_flights_bound_query () =
  (* the motivating query: cheaporshort(madison, seattle, T, C) *)
  let p = parse {|
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
?- cheaporshort(madison, seattle, T, C).
|} in
  let adorned = Adorn.program ~query_adornment:"ff" p in
  (* cheaporshort is called with its two city arguments bound *)
  check_bool "cheaporshort_bbff" true (List.mem "cheaporshort_bbff" (Program.derived adorned));
  let pmg = Magic.templates_bf adorned in
  (* the magic predicate for flight_bbff has arity 2 (bound args only):
     mrl': m_flight(S, D) :- m_cheaporshort(S, D) *)
  check_int "m_flight arity" 2 (Program.arity pmg "m_flight_bbff");
  (* evaluation computes only ground facts and only madison-reachable ones *)
  let edb =
    edb_of
      {|
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 100, 80).
singleleg(paris, rome, 90, 120).
|}
  in
  let res = Engine.run pmg ~edb in
  check_bool "ground" true (Engine.all_ground res);
  check_bool "answer found" true (Engine.facts_of res "cheaporshort_bbff" <> []);
  (* the paris-rome flight is never explored *)
  check_bool "irrelevant city pruned" true
    (List.for_all
       (fun f -> f.Fact.args.(0) <> Fact.Psym "paris")
       (Engine.facts_of res "flight_bbff"))

let test_magic_vs_plain_fact_counts () =
  (* magic restricts computation to facts reachable from the query constant *)
  let p = parse {|
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
?- path(a, Y).
|} in
  let edb = edb_of "edge(a, b). edge(b, c). edge(x, y). edge(y, z). edge(z, x)." in
  let plain = Engine.run p ~edb in
  let adorned = Adorn.program ~query_adornment:"f" p in
  let pmg = Magic.templates_bf adorned in
  let magic = Engine.run pmg ~edb in
  let plain_paths = List.length (Engine.facts_of plain "path") in
  let magic_paths = List.length (Engine.facts_of magic "path_bf") in
  check_bool "magic computes fewer paths" true (magic_paths < plain_paths);
  (* only paths whose source is reachable from a: a->b, a->c, b->c *)
  check_int "only a-reachable paths" 3 magic_paths

(* ----- Tables 1 and 2 (Examples 1.2 / 4.4) ----- *)

let fib_src =
  {|
r1: fib(0, 1).
r2: fib(1, 1).
r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
?- fib(N, 5).
|}

let fib_magic () = Magic.inline_seed (Magic.templates_complete (parse fib_src))

let fib_magic_constrained query_value =
  let src = Printf.sprintf {|
r1: fib(0, 1).
r2: fib(1, 1).
r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
?- fib(N, %d).
|} query_value in
  let p = parse src in
  let cset = Cset.of_conj (Conj.of_list [ Atom.ge (Linexpr.var (Var.arg 2)) (Linexpr.of_int 1) ]) in
  let res : Pred_constraints.result =
    { Pred_constraints.constraints = [ ("fib", cset) ]; iterations = 1; converged = true }
  in
  Magic.inline_seed (Magic.templates_complete (Pred_constraints.propagate res p))

let fib_value res n =
  List.exists
    (fun f ->
      Fact.ground_value f 1 = Some (Rat.of_int n)
      && Fact.pred f = "fib")
    (Engine.facts_of res "fib")

let test_table1 () =
  (* Pfib^mg: the evaluation does NOT terminate; the answer appears by
     iteration 7 and constraint facts are computed for m_fib *)
  let pmg = fib_magic () in
  let res = Engine.run ~max_iterations:8 ~traced:true pmg ~edb:[] in
  check_bool "does not terminate" false (Engine.stats res).Engine.reached_fixpoint;
  (* the answer fib(4, 5) is computed at iteration 7 *)
  let t47 =
    List.find_opt
      (fun (t : Engine.trace_entry) ->
        (not t.Engine.subsumed)
        && Fact.pred t.Engine.fact = "fib"
        && Fact.ground_value t.Engine.fact 1 = Some (Rat.of_int 4))
      (Engine.trace res)
  in
  (match t47 with
  | Some t -> check_int "fib(4,5) at iteration 7" 7 t.Engine.iteration
  | None -> Alcotest.fail "fib(4,5) not derived");
  (* constraint facts are generated for the magic predicate (m_fib(N1,V1;
     N1 > 0) at iteration 1) *)
  let m1 =
    List.find_opt
      (fun (t : Engine.trace_entry) ->
        t.Engine.iteration = 1 && Fact.pred t.Engine.fact = "m_fib")
      (Engine.trace res)
  in
  (match m1 with
  | Some t -> check_bool "m_fib constraint fact" false (Fact.is_ground t.Engine.fact)
  | None -> Alcotest.fail "no m_fib fact at iteration 1");
  (* iteration 8 continues producing fib(5, 8) -- the divergence *)
  check_bool "fib(5,8) derived at 8" true (fib_value res 5)

let test_table2 () =
  (* Pfib^mg_1 (predicate constraint $2 >= 1 propagated): terminates *)
  let pmg = fib_magic_constrained 5 in
  let res = Engine.run ~max_iterations:30 ~traced:true pmg ~edb:[] in
  check_bool "terminates" true (Engine.stats res).Engine.reached_fixpoint;
  check_bool "answer fib(4,5)" true (fib_value res 4);
  check_bool "no fib(5,_) computed" false (fib_value res 5);
  (* answer at iteration 7, same as Table 2 *)
  let t47 =
    List.find
      (fun (t : Engine.trace_entry) ->
        (not t.Engine.subsumed)
        && Fact.pred t.Engine.fact = "fib"
        && Fact.ground_value t.Engine.fact 1 = Some (Rat.of_int 4))
      (Engine.trace res)
  in
  check_int "fib(4,5) at iteration 7" 7 t47.Engine.iteration

let test_fib_no_answer_terminates () =
  (* Example 4.4: ?- fib(N, 6) answers "no" and terminates *)
  let pmg = fib_magic_constrained 6 in
  let res = Engine.run ~max_iterations:40 pmg ~edb:[] in
  check_bool "terminates" true (Engine.stats res).Engine.reached_fixpoint;
  check_bool "no answers" true (Engine.answers res (parse fib_src) = [])

(* ----- Example 6.1: GMT ----- *)

let ex61_src =
  {|
r1: p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).
r2: p(X, Y) :- u(X, Y).
r3: q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).
?- X > 10, p(X, Y).
|}

let test_gmt_adorn () =
  let adorned = Gmt.adorn_bcf ~query_adornment:"ff" (parse ex61_src) in
  let derived = Program.derived adorned in
  check_bool "p_cf" true (List.mem "p_cf" derived);
  check_bool "q_ccf" true (List.mem "q_ccf" derived);
  check_bool "groundable" true (Gmt.groundable adorned)

let test_gmt_magic_shape () =
  let adorned = Gmt.adorn_bcf ~query_adornment:"ff" (parse ex61_src) in
  let pmg = Gmt.magic adorned in
  (* magic predicates keep conditioned positions: m_p_cf has arity 1,
     m_q_ccf arity 2 *)
  check_int "m_p_cf arity" 1 (Program.arity pmg "m_p_cf");
  check_int "m_q_ccf arity" 2 (Program.arity pmg "m_q_ccf");
  (* Pmg is NOT range-restricted (rule mr2 binds W only via W > V) *)
  check_bool "pmg not range-restricted" false (Program.is_range_restricted pmg)

let test_gmt_grounding () =
  let adorned = Gmt.adorn_bcf ~query_adornment:"ff" (parse ex61_src) in
  let pmg = Gmt.magic adorned in
  let final = Magic.inline_seed (Gmt.ground_fold_unfold ~adorned pmg) in
  (* Theorem 6.2 (1): the result is range-restricted *)
  check_bool "range-restricted" true (Program.is_range_restricted final);
  (* no conditioned magic predicate survives *)
  check_bool "no conditioned magic rules" true
    (List.for_all
       (fun (r : Rule.t) ->
         let check (l : Literal.t) =
           not (l.Literal.pred = "m_p_cf" || l.Literal.pred = "m_q_ccf")
         in
         check r.Rule.head && List.for_all check r.Rule.body)
       final.Program.rules);
  (* paper's final program: 9 rules + the query rule *)
  check_int "rule count" 10 (List.length final.Program.rules);
  (* Theorem 6.2 (2): query equivalence on a concrete EDB *)
  let edb =
    edb_of
      {|
u(20, 1). u(5, 2).
q1(20, 3). q2(4, 30). q3(3, 4, 7).
|}
  in
  (* p(20,1) holds (u), p via recursion: q(20,30,7) needs W > V ... *)
  let plain = Engine.run (parse ex61_src) ~edb in
  let ground = Engine.run final ~edb in
  let pq = match (parse ex61_src).Program.query with Some q -> q | None -> assert false in
  let gq = match final.Program.query with Some q -> q | None -> assert false in
  let answers_plain = Engine.facts_of plain pq in
  let answers_ground = Engine.facts_of ground gq in
  check_bool "ground run computes ground facts only" true (Engine.all_ground ground);
  check_int "same number of answers" (List.length answers_plain) (List.length answers_ground);
  check_bool "same answers" true
    (List.for_all
       (fun f ->
         List.exists
           (fun g -> Fact.equal f (Fact.make (Fact.pred f) g.Fact.args (Fact.cstr g)))
           answers_ground)
       answers_plain)

(* ----- Examples 7.1 / 7.2 (Appendix D): non-confluence ----- *)

let d1_src =
  {|
r1: q(X, Y) :- a1(X, Y), X <= 4.
r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).
r3: a2(X, Y) :- b2(X, Y).
r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).
#query q.
|}

let segments_edb n seg =
  (* b1 maps source i to the head of a disjoint b2 segment; pruning the
     magic seeds for a2 then prunes whole segments (a chain would let the
     recursive magic rule re-derive every node anyway) *)
  String.concat "\n"
    (List.concat
       (List.init n (fun i ->
            Printf.sprintf "b1(%d, %d)." i (100 * i)
            :: List.init seg (fun j ->
                   Printf.sprintf "b2(%d, %d)." ((100 * i) + j) ((100 * i) + j + 1)))))
  |> edb_of

let magic_ff = Rewrite.Magic { adornment = "ff"; constraint_magic = true }

let test_d1 () =
  let p = parse d1_src in
  let qrp_mg, _ = Rewrite.sequence [ Rewrite.Qrp; magic_ff ] p in
  let mg_qrp, _ = Rewrite.sequence [ magic_ff; Rewrite.Qrp ] p in
  (* the magic rule for a2 carries X <= 4 only in P^{qrp,mg} *)
  let m_a2_rule_has_constraint prog =
    List.exists
      (fun (r : Rule.t) ->
        String.length r.Rule.head.Literal.pred >= 4
        && String.sub r.Rule.head.Literal.pred 0 4 = "m_a2"
        && List.exists
             (fun (l : Literal.t) -> l.Literal.pred = "b1")
             r.Rule.body
        && not (Conj.is_tt r.Rule.cstr))
      prog.Program.rules
  in
  check_bool "qrp,mg restricts m_a2" true (m_a2_rule_has_constraint qrp_mg);
  check_bool "mg,qrp does not" false (m_a2_rule_has_constraint mg_qrp);
  (* on data where the constraint prunes, qrp,mg computes fewer facts *)
  let edb = segments_edb 10 4 in
  let r1 = Engine.run qrp_mg ~edb in
  let r2 = Engine.run mg_qrp ~edb in
  check_bool "both ground" true (Engine.all_ground r1 && Engine.all_ground r2);
  check_bool "qrp,mg computes fewer facts" true
    (Engine.total_idb_facts r1 ~edb < Engine.total_idb_facts r2 ~edb)

let d2_src =
  {|
r1: q(X, Y) :- a1(X, Y).
r2: a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).
r3: a2(X, Y) :- b2(X, Y).
r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).
#query q.
|}

let test_d2 () =
  let p = parse d2_src in
  let magic_bf = Rewrite.Magic { adornment = "bf"; constraint_magic = true } in
  let qrp_mg, _ = Rewrite.sequence [ Rewrite.Qrp; magic_bf ] p in
  let mg_qrp, _ = Rewrite.sequence [ magic_bf; Rewrite.Qrp ] p in
  (* here QRP propagation on P finds nothing (the constraint is local to
     r2), so P^{qrp} = P; but on P^{mg} it restricts the magic rule for a1:
     mrl: m_a1bf(X) :- m_qbf(X), X <= 4 *)
  let m_a1_rule_constrained prog =
    List.exists
      (fun (r : Rule.t) ->
        String.length r.Rule.head.Literal.pred >= 4
        && String.sub r.Rule.head.Literal.pred 0 4 = "m_a1"
        && not (Conj.is_tt r.Rule.cstr))
      prog.Program.rules
  in
  check_bool "mg,qrp restricts m_a1" true (m_a1_rule_constrained mg_qrp);
  check_bool "qrp,mg does not" false (m_a1_rule_constrained qrp_mg);
  (* querying with a bound constant that violates X <= 4 lets mg,qrp prune
     everything *)
  let edb =
    edb_of "b1(9, 0). b2(0, 1). b2(1, 2). b2(2, 3). q_seed(9)."
  in
  ignore edb;
  (* evaluate with the query constant 9 via a query rule *)
  let with_query src =
    parse (src ^ "\n") |> fun p0 ->
    let p1, _ = Program.with_query_rule p0 [ Literal.make "q" [ Term.int 9; Term.var (Var.fresh "Y") ] ] Conj.tt in
    p1
  in
  let pq = with_query d2_src in
  let qrp_mg2, _ = Rewrite.sequence [ Rewrite.Qrp; Rewrite.Magic { adornment = "f"; constraint_magic = true } ] pq in
  let mg_qrp2, _ = Rewrite.sequence [ Rewrite.Magic { adornment = "f"; constraint_magic = true }; Rewrite.Qrp ] pq in
  let edb2 = edb_of "b1(9, 0). b2(0, 1). b2(1, 2). b2(2, 3)." in
  let r1 = Engine.run qrp_mg2 ~edb:edb2 in
  let r2 = Engine.run mg_qrp2 ~edb:edb2 in
  check_bool "mg,qrp computes no more facts" true
    (Engine.total_idb_facts r2 ~edb:edb2 <= Engine.total_idb_facts r1 ~edb:edb2)

(* ----- Theorems 7.8 / 7.10: optimal ordering ----- *)

let flights_src =
  {|
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
#query cheaporshort.
|}

let singleleg_edb seed m =
  let rng = ref seed in
  let next () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng
  in
  List.init m (fun i ->
      let src = Printf.sprintf "c%d" i and dst = Printf.sprintf "c%d" ((i + 1) mod m) in
      let time = 30 + (next () mod 300) in
      let cost = 20 + (next () mod 250) in
      Fact.ground "singleleg"
        [ Term.Sym src; Term.Sym dst; Term.Num (Rat.of_int time); Term.Num (Rat.of_int cost) ])

let test_optimal_ordering () =
  let p = parse flights_src in
  let edb = singleleg_edb 11 6 in
  let run prog =
    let res = Engine.run ~max_iterations:10 ~max_derivations:4000 prog ~edb in
    Engine.total_idb_facts res ~edb
  in
  let optimal_prog, _ = Rewrite.optimal ~adornment:"ffff" p in
  let n_opt = run optimal_prog in
  (* mg alone *)
  let mg_only, _ = Rewrite.sequence [ Rewrite.Magic { adornment = "ffff"; constraint_magic = true } ] p in
  let n_mg = run mg_only in
  (* mg then pred,qrp *)
  let mg_first, _ =
    Rewrite.sequence
      [ Rewrite.Magic { adornment = "ffff"; constraint_magic = true }; Rewrite.Pred; Rewrite.Qrp ]
      p
  in
  let n_mg_first = run mg_first in
  check_bool "optimal <= magic-only" true (n_opt <= n_mg);
  check_bool "optimal <= mg,pred,qrp" true (n_opt <= n_mg_first);
  check_bool "optimal strictly better than magic-only" true (n_opt < n_mg)


(* ----- differential property: magic preserves answers on random data ----- *)

let random_tc_edb seed n =
  let rng = ref (seed + 3) in
  let next m =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng mod m
  in
  List.init n (fun _ ->
      let a = next 8 and b = next 8 in
      Fact.ground "edge" [ Term.Sym (Printf.sprintf "n%d" a); Term.Sym (Printf.sprintf "n%d" b) ])

let prop_magic_preserves_answers =
  QCheck.Test.make ~name:"magic templates preserve query answers (random graphs)" ~count:25
    (QCheck.pair (QCheck.int_range 0 5000) (QCheck.int_range 2 10)) (fun (seed, n) ->
      let p = parse {|
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
?- path(n0, Y).
|} in
      let adorned = Adorn.program ~query_adornment:"f" p in
      let pmg = Magic.templates_bf adorned in
      let edb = random_tc_edb seed n in
      let out =
        Differential.compare_runs ~max_iterations:20 ~max_derivations:20_000 ~original:p
          ~rewritten:pmg ~edb ()
      in
      out.Differential.equal_answers && out.Differential.facts_subset)

let prop_optimal_preserves_answers =
  QCheck.Test.make ~name:"pred,qrp,mg preserves flights answers (random networks)" ~count:10
    (QCheck.pair (QCheck.int_range 0 5000) (QCheck.int_range 3 6)) (fun (seed, m) ->
      let p = parse flights_src in
      let popt, _ = Rewrite.optimal ~adornment:"ffff" p in
      let edb = singleleg_edb seed m in
      let out =
        Differential.compare_runs ~max_iterations:8 ~max_derivations:10_000 ~original:p
          ~rewritten:popt ~edb ()
      in
      (* the original may hit the budget on cyclic nets; only require answer
         agreement when both runs completed *)
      (not out.Differential.both_fixpoint) || (out.Differential.equal_answers && out.Differential.facts_subset))

let test_rename_base () =
  Alcotest.(check string) "prime" "flight" (Differential.rename_base "flight'");
  Alcotest.(check string) "adorned" "flight" (Differential.rename_base "flight_bbff");
  Alcotest.(check string) "both" "flight" (Differential.rename_base "flight'_bbff");
  Alcotest.(check string) "nested" "a1" (Differential.rename_base "a1'_ff");
  Alcotest.(check string) "untouched" "cheap_seats" (Differential.rename_base "cheap_seats");
  Alcotest.(check string) "bcf" "q" (Differential.rename_base "q_ccf")

let () =
  Alcotest.run "paper"
    [
      ( "magic",
        [
          Alcotest.test_case "bf adornment" `Quick test_adorn_bf;
          Alcotest.test_case "equality grounding in adornment" `Quick test_adorn_equality_grounding;
          Alcotest.test_case "flights with bound query" `Quick test_magic_flights_bound_query;
          Alcotest.test_case "magic prunes by reachability" `Quick test_magic_vs_plain_fact_counts;
        ] );
      ( "tables",
        [
          Alcotest.test_case "Table 1 (diverging fib)" `Quick test_table1;
          Alcotest.test_case "Table 2 (terminating fib)" `Quick test_table2;
          Alcotest.test_case "fib(N,6) answers no (Example 4.4)" `Quick test_fib_no_answer_terminates;
        ] );
      ( "gmt",
        [
          Alcotest.test_case "bcf adornment (Example 6.1)" `Quick test_gmt_adorn;
          Alcotest.test_case "magic shape (Example 6.1)" `Quick test_gmt_magic_shape;
          Alcotest.test_case "grounding step (Example 6.1, Theorem 6.2)" `Quick test_gmt_grounding;
        ] );
      ( "confluence",
        [
          Alcotest.test_case "Example 7.1 / D.1" `Quick test_d1;
          Alcotest.test_case "Example 7.2 / D.2" `Quick test_d2;
        ] );
      ( "ordering", [ Alcotest.test_case "Theorem 7.10 optimal order" `Slow test_optimal_ordering ] );
      ( "differential",
        Alcotest.test_case "rename_base" `Quick test_rename_base
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_magic_preserves_answers; prop_optimal_preserves_answers ] );
    ]
