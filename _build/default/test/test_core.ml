(* Tests for the paper's core transformations: PTOL/LTOP, fold/unfold,
   predicate-constraint generation/propagation, QRP-constraint
   generation/propagation, and the decidable class of Section 5. *)

open Cql_num
open Cql_constr
open Cql_datalog
open Cql_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let parse = Parser.program_of_string
let conj = Conj.of_list
let n i = Linexpr.of_int i
let v name = Linexpr.var (Var.mk name)
let arg i = Linexpr.var (Var.arg i)

(* ----- PTOL / LTOP (Definitions 2.7 / 2.8) ----- *)

let test_ptol () =
  (* paper: PTOL(flight(S,D,T,C), ($3<=240) v ($4<=150)) = (T<=240) v (C<=150) *)
  let lit =
    Literal.make "flight" [ Term.var (Var.mk "S"); Term.var (Var.mk "D");
                            Term.var (Var.mk "T"); Term.var (Var.mk "C") ]
  in
  let cs = Cset.of_disjuncts [ conj [ Atom.le (arg 3) (n 240) ]; conj [ Atom.le (arg 4) (n 150) ] ] in
  let out = Ptol_ltop.ptol lit cs in
  let expected =
    Cset.of_disjuncts [ conj [ Atom.le (v "T") (n 240) ]; conj [ Atom.le (v "C") (n 150) ] ]
  in
  check_bool "flight example" true (Cset.equiv out expected)

let test_ptol_constants_and_repeats () =
  (* constants: PTOL(p(3, X), $1 <= $2) = (3 <= X) *)
  let lit = Literal.make "p" [ Term.int 3; Term.var (Var.mk "X") ] in
  let out = Ptol_ltop.ptol_conj lit (conj [ Atom.le (arg 1) (arg 2) ]) in
  check_bool "constant substituted" true (Conj.equiv out (conj [ Atom.ge (v "X") (n 3) ]));
  (* repeated vars: PTOL(p(X, X), $1 <= $2) = true *)
  let lit2 = Literal.make "p" [ Term.var (Var.mk "X"); Term.var (Var.mk "X") ] in
  let out2 = Ptol_ltop.ptol_conj lit2 (conj [ Atom.le (arg 1) (arg 2) ]) in
  check_bool "repeat trivializes" true (Conj.is_tt (Conj.simplify out2));
  (* repeated vars, strict: PTOL(p(X, X), $1 < $2) = false *)
  let out3 = Ptol_ltop.ptol_conj lit2 (conj [ Atom.lt (arg 1) (arg 2) ]) in
  check_bool "strict repeat unsat" false (Conj.is_sat out3);
  (* symbolic constants: constraints on their positions are dropped *)
  let lit4 = Literal.make "p" [ Term.sym "a"; Term.var (Var.mk "X") ] in
  let out4 = Ptol_ltop.ptol_conj lit4 (conj [ Atom.le (arg 1) (n 5); Atom.le (arg 2) (n 7) ]) in
  check_bool "sym position dropped" true (Conj.equiv out4 (conj [ Atom.le (v "X") (n 7) ]))

let test_ltop () =
  (* paper: LTOP(flight(S,D,T,C), (T<=240) v (C<=150)) = ($3<=240) v ($4<=150) *)
  let lit =
    Literal.make "flight" [ Term.var (Var.mk "S"); Term.var (Var.mk "D");
                            Term.var (Var.mk "T"); Term.var (Var.mk "C") ]
  in
  let cs = Cset.of_disjuncts [ conj [ Atom.le (v "T") (n 240) ]; conj [ Atom.le (v "C") (n 150) ] ] in
  let out = Ptol_ltop.ltop lit cs in
  let expected = Cset.of_disjuncts [ conj [ Atom.le (arg 3) (n 240) ]; conj [ Atom.le (arg 4) (n 150) ] ] in
  check_bool "flight example" true (Cset.equiv out expected)

let test_ltop_projection () =
  (* LTOP projects away non-argument variables: p(X) with X <= Y & Y <= 3
     gives $1 <= 3 *)
  let lit = Literal.make "p" [ Term.var (Var.mk "X") ] in
  let out = Ptol_ltop.ltop_conj lit (conj [ Atom.le (v "X") (v "Y"); Atom.le (v "Y") (n 3) ]) in
  check_bool "projected" true (Conj.equiv out (conj [ Atom.le (arg 1) (n 3) ]));
  (* repeated variables (Definition 2.8's non-distinct case):
     LTOP(p(X, X), X <= 3) = ($1 <= 3 & $1 = $2) *)
  let lit2 = Literal.make "p" [ Term.var (Var.mk "X"); Term.var (Var.mk "X") ] in
  let out2 = Ptol_ltop.ltop_conj lit2 (conj [ Atom.le (v "X") (n 3) ]) in
  check_bool "repeat gives equality" true
    (Conj.equiv out2 (conj [ Atom.le (arg 1) (n 3); Atom.eq (arg 1) (arg 2) ]));
  (* constants: LTOP(p(5, X), X <= 3) pins $1 = 5 *)
  let lit3 = Literal.make "p" [ Term.int 5; Term.var (Var.mk "X") ] in
  let out3 = Ptol_ltop.ltop_conj lit3 (conj [ Atom.le (v "X") (n 3) ]) in
  check_bool "constant pinned" true
    (Conj.equiv out3 (conj [ Atom.eq (arg 1) (n 5); Atom.le (arg 2) (n 3) ]))

let test_ptol_ltop_roundtrip () =
  (* for a literal over distinct variables, ltop . ptol = id *)
  let lit = Literal.fresh_args "p" 3 in
  let cs =
    Cset.of_disjuncts
      [ conj [ Atom.le (arg 1) (arg 2); Atom.lt (arg 3) (n 7) ]; conj [ Atom.ge (arg 2) (n 0) ] ]
  in
  let back = Ptol_ltop.ltop lit (Ptol_ltop.ptol lit cs) in
  check_bool "roundtrip" true (Cset.equiv back cs)

(* ----- fold/unfold (Appendix A) ----- *)

let test_definition_step () =
  let cset = Cset.of_disjuncts [ conj [ Atom.le (arg 1) (n 4) ]; conj [ Atom.ge (arg 1) (n 10) ] ] in
  let defs = Foldunfold.definition ~primed:"p'" ~orig:"p" ~arity:2 cset in
  check_int "one rule per disjunct" 2 (List.length defs);
  List.iter
    (fun (r : Rule.t) ->
      check_bool "head is primed" true (r.Rule.head.Literal.pred = "p'");
      check_int "single body literal" 1 (List.length r.Rule.body);
      check_bool "body is orig" true ((List.hd r.Rule.body).Literal.pred = "p"))
    defs

let test_unfold () =
  let r = Parser.rule_of_string "q(X) :- p(X, Y), Y <= 2." in
  let defs =
    [ Parser.rule_of_string "p(A, B) :- b1(A, B), A >= B.";
      Parser.rule_of_string "p(A, A) :- b2(A)." ]
  in
  let lit = List.hd r.Rule.body in
  let out = Foldunfold.unfold_literal ~defs r lit in
  check_int "two resolvents" 2 (List.length out);
  let expected1 = Parser.rule_of_string "q(X) :- b1(X, Y), Y <= 2, X >= Y." in
  let expected2 = Parser.rule_of_string "q(X) :- b2(X), X <= 2." in
  check_bool "resolvent 1" true
    (List.exists (Rule.equal_mod_renaming expected1) out);
  check_bool "resolvent 2" true (List.exists (Rule.equal_mod_renaming expected2) out);
  (* unsatisfiable resolvents are dropped *)
  let r2 = Parser.rule_of_string "q(X) :- p(X, Y), Y >= 5, X <= 1." in
  let out2 = Foldunfold.unfold_literal ~defs r2 (List.hd r2.Rule.body) in
  (* b1 branch needs X >= Y >= 5 and X <= 1: unsat; b2 branch needs X = Y: unsat *)
  check_int "both dropped" 0 (List.length out2)

let test_fold () =
  let cset = Cset.of_conj (conj [ Atom.le (arg 1) (n 4) ]) in
  let r = Parser.rule_of_string "q(X) :- p(X), X <= 3." in
  (match Foldunfold.fold_occurrences ~primed:"p'" ~orig:"p" cset r with
  | Some r' -> check_bool "folded" true ((List.hd r'.Rule.body).Literal.pred = "p'")
  | None -> Alcotest.fail "fold should succeed: X <= 3 implies X <= 4");
  let r2 = Parser.rule_of_string "q(X) :- p(X), X <= 5." in
  check_bool "fold fails when not implied" true
    (Foldunfold.fold_occurrences ~primed:"p'" ~orig:"p" cset r2 = None);
  (* disjunctive fold condition: X between 0 and 10 implies (x<=4 | x>=2) *)
  let cset2 = Cset.of_disjuncts [ conj [ Atom.le (arg 1) (n 4) ]; conj [ Atom.ge (arg 1) (n 2) ] ] in
  let r3 = Parser.rule_of_string "q(X) :- p(X), X >= 0, X <= 10." in
  check_bool "disjunctive fold" true
    (Foldunfold.fold_occurrences ~primed:"p'" ~orig:"p" cset2 r3 <> None)

(* ----- Example 4.1 ----- *)

let ex41_src =
  {|
r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
r2: p1(X, Y) :- b1(X, Y).
r3: p2(X) :- b2(X).
#query q.
|}

let test_example_4_1 () =
  let p = parse ex41_src in
  let res = Qrp.gen p in
  check_bool "converged" true res.Qrp.converged;
  check_bool "p1 QRP" true
    (Cset.equiv (Qrp.find res "p1")
       (Cset.of_conj
          (conj [ Atom.le (Linexpr.add (arg 1) (arg 2)) (n 6); Atom.ge (arg 1) (n 2) ])));
  (* the semantic step: Y <= 4 is implied, not syntactically present *)
  check_bool "p2 QRP" true
    (Cset.equiv (Qrp.find res "p2") (Cset.of_conj (conj [ Atom.le (arg 1) (n 4) ])));
  (* the rewritten program is the paper's P' *)
  let p' = Qrp.propagate res p in
  let expected =
    parse
      {|
q(X) :- p1x(X, Y), p2x(Y), X + Y <= 6, X >= 2.
p1x(X, Y) :- X + Y <= 6, X >= 2, b1(X, Y).
p2x(Y) :- Y <= 4, b2(Y).
#query q.
|}
  in
  let renamed =
    Program.rename_predicate ~old_name:"p1'" ~new_name:"p1x"
      (Program.rename_predicate ~old_name:"p2'" ~new_name:"p2x" p')
  in
  check_bool "matches paper's P'" true (Program.equal_mod_renaming renamed expected)

let test_example_4_1_syntactic_baseline () =
  (* the C-transformation-style inference cannot derive Y <= 4 for p2 *)
  let p = parse ex41_src in
  let res = Qrp.gen_syntactic p in
  check_bool "p2 unconstrained syntactically" true (Cset.is_tt (Qrp.find res "p2"));
  (* but it still picks up constraints fully local to a literal *)
  let p2 = parse "q(X) :- p1(X), X <= 3.\np1(X) :- b(X).\n#query q." in
  let res2 = Qrp.gen_syntactic p2 in
  check_bool "local constraint found" true
    (Cset.equiv (Qrp.find res2 "p1") (Cset.of_conj (conj [ Atom.le (arg 1) (n 3) ])))

(* ----- Example 4.2 / 5.1 ----- *)

let ex42_src =
  {|
r1: q(X, Y) :- a(X, Y), X <= 10.
r2: a(X, Y) :- p(X, Y), Y <= X.
r3: a(X, Y) :- a(X, Z), a(Z, Y).
#query q.
|}

let test_example_4_2 () =
  let p = parse ex42_src in
  (* plain QRP generation infers nothing for a (the paper's point) *)
  let qres = Qrp.gen p in
  check_bool "QRP alone trivial" true (Cset.is_tt (Qrp.find qres "a"));
  (* predicate constraints find $2 <= $1 *)
  let pres = Pred_constraints.gen p in
  check_bool "pred converged" true pres.Pred_constraints.converged;
  check_bool "a pred constraint" true
    (Cset.equiv (Pred_constraints.find pres "a") (Cset.of_conj (conj [ Atom.le (arg 2) (arg 1) ])));
  check_bool "q pred constraint" true
    (Cset.equiv (Pred_constraints.find pres "q")
       (Cset.of_conj (conj [ Atom.le (arg 1) (n 10); Atom.le (arg 2) (arg 1) ])));
  (* after propagating them, QRP generation reaches the minimum *)
  let p1 = Pred_constraints.propagate pres p in
  let qres1 = Qrp.gen p1 in
  check_bool "minimum QRP for a" true
    (Cset.equiv (Qrp.find qres1 "a")
       (Cset.of_conj (conj [ Atom.le (arg 1) (n 10); Atom.le (arg 2) (arg 1) ])))

let test_example_5_1_decidable () =
  let p1 =
    parse
      {|
r1: q(X, Y) :- a(X, Y), X <= 10, Y <= X.
r2: a(X, Y) :- p(X, Y), Y <= X.
r3: a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.
#query q.
|}
  in
  check_bool "in decidable class" true (Decidable.in_class p1);
  (* k = 2: at most 2*4+8 = 16 simple constraints, 2^16 disjuncts *)
  check_int "simple constraint bound" 16 (Decidable.simple_constraints_bound 2);
  check_bool "disjunct bound" true
    (Bigint.equal (Decidable.disjunct_bound 2) (Bigint.of_int 65536));
  let qres = Qrp.gen p1 in
  check_bool "terminates" true qres.Qrp.converged;
  (* the paper: terminates in just two iterations *)
  check_bool "fast convergence" true (qres.Qrp.iterations <= 3);
  check_bool "bound respected" true
    (Bigint.compare (Bigint.of_int qres.Qrp.iterations) (Decidable.iteration_bound p1) < 0);
  (* programs with arithmetic are outside the class *)
  let flights = parse "f(T) :- g(T1, T2), T = T1 + T2.\n#query f." in
  check_bool "arith not in class" false (Decidable.in_class flights);
  let scaled = parse "f(T) :- g(T), 2 * T <= 3.\n#query f." in
  check_bool "scaled var not in class" false (Decidable.in_class scaled)

(* ----- Example 4.3 (flights) ----- *)

let flights_src =
  {|
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
#query cheaporshort.
|}

let flight_qrp_expected =
  Cset.of_disjuncts
    [
      conj [ Atom.gt (arg 3) (n 0); Atom.le (arg 3) (n 240); Atom.gt (arg 4) (n 0) ];
      conj [ Atom.gt (arg 3) (n 0); Atom.gt (arg 4) (n 0); Atom.le (arg 4) (n 150) ];
    ]

let test_example_4_3_constraints () =
  let p = parse flights_src in
  let _, report = Rewrite.constraint_rewrite p in
  let pres = Option.get report.Rewrite.pred_constraints in
  let qres = Option.get report.Rewrite.qrp_constraints in
  check_bool "flight pred constraint ($3>0 & $4>0)" true
    (Cset.equiv (Pred_constraints.find pres "flight")
       (Cset.of_conj (conj [ Atom.gt (arg 3) (n 0); Atom.gt (arg 4) (n 0) ])));
  check_bool "cheaporshort pred constraint" true
    (Cset.equiv (Pred_constraints.find pres "cheaporshort") flight_qrp_expected);
  check_bool "flight minimum QRP" true (Cset.equiv (Qrp.find qres "flight") flight_qrp_expected)

let test_example_4_3_program () =
  let p = parse flights_src in
  let p', _ = Rewrite.constraint_rewrite p in
  (* the paper's P' of Example 4.3 *)
  let expected =
    parse
      {|
cheaporshort(S, D, T, C) :- flightx(S, D, T, C), T > 0, T <= 240, C > 0.
cheaporshort(S, D, T, C) :- flightx(S, D, T, C), T > 0, C > 0, C <= 150.
cheaporshort(S, D, T, C) :- flightx(S, D, T, C), T > 0, T <= 240, C > 0, C <= 150.
flightx(Src, Dst, Time, Cost) :- Time > 0, Time <= 240, singleleg(Src, Dst, Time, Cost), Cost > 0.
flightx(S, D, T, C) :- T > 0, T <= 240, C > 0, flightx(S, D1, T1, C1), flightx(D1, D, T2, C2),
                       T1 > 0, T2 > 0, T = T1 + T2 + 30, C1 > 0, C2 > 0, C = C1 + C2.
flightx(Src, Dst, Time, Cost) :- Time > 0, Cost <= 150, singleleg(Src, Dst, Time, Cost), Cost > 0.
flightx(S, D, T, C) :- T > 0, C > 0, C <= 150, flightx(S, D1, T1, C1), flightx(D1, D, T2, C2),
                       T1 > 0, T2 > 0, T = T1 + T2 + 30, C1 > 0, C2 > 0, C = C1 + C2.
#query cheaporshort.
|}
  in
  let renamed = Program.rename_predicate ~old_name:"flight'" ~new_name:"flightx" p' in
  check_bool "matches paper's Example 4.3 P'" true (Program.equal_mod_renaming renamed expected)

let singleleg_edb seed m =
  (* deterministic synthetic singleleg EDB over m cities in a cycle plus
     chords; times/costs straddle the 240/150 thresholds *)
  let rng = ref seed in
  let next () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng
  in
  List.init m (fun i ->
      let src = Printf.sprintf "c%d" i and dst = Printf.sprintf "c%d" ((i + 1) mod m) in
      let time = 30 + (next () mod 300) in
      let cost = 20 + (next () mod 250) in
      Cql_eval.Fact.ground "singleleg"
        [ Term.Sym src; Term.Sym dst; Term.Num (Rat.of_int time); Term.Num (Rat.of_int cost) ])

let test_example_4_3_evaluation () =
  let p = parse flights_src in
  let p', _ = Rewrite.constraint_rewrite p in
  let edb = singleleg_edb 7 6 in
  let budget = 2000 in
  let res = Cql_eval.Engine.run ~max_derivations:budget ~max_iterations:12 p ~edb in
  let res' = Cql_eval.Engine.run ~max_derivations:budget ~max_iterations:12 p' ~edb in
  (* both compute only ground facts (Theorem 4.4 part 1) *)
  check_bool "P ground" true (Cql_eval.Engine.all_ground res);
  check_bool "P' ground" true (Cql_eval.Engine.all_ground res');
  (* no flight' fact violates the QRP constraint *)
  List.iter
    (fun f ->
      let t = Option.get (Cql_eval.Fact.ground_value f 3) in
      let c = Option.get (Cql_eval.Fact.ground_value f 4) in
      check_bool "flight' fact is constraint-relevant" false
        (Rat.compare t (Rat.of_int 240) > 0 && Rat.compare c (Rat.of_int 150) > 0))
    (Cql_eval.Engine.facts_of res' "flight'");
  (* P computes flight facts outside the QRP constraint on this EDB *)
  check_bool "P computes irrelevant flights" true
    (List.exists
       (fun f ->
         let t = Option.get (Cql_eval.Fact.ground_value f 3) in
         let c = Option.get (Cql_eval.Fact.ground_value f 4) in
         Rat.compare t (Rat.of_int 240) > 0 && Rat.compare c (Rat.of_int 150) > 0)
       (Cql_eval.Engine.facts_of res "flight"));
  (* same answers (Theorem 4.3) *)
  let ans = Cql_eval.Engine.facts_of res "cheaporshort" in
  let ans' = Cql_eval.Engine.facts_of res' "cheaporshort" in
  check_bool "same answers" true
    (List.for_all (fun f -> List.exists (Cql_eval.Fact.equal f) ans') ans
    && List.for_all (fun f -> List.exists (Cql_eval.Fact.equal f) ans) ans');
  (* P' computes a subset of the facts of P (Theorem 4.4 part 2) *)
  let flights' = Cql_eval.Engine.facts_of res' "flight'" in
  let flights = Cql_eval.Engine.facts_of res "flight" in
  check_bool "subset of facts" true
    (List.for_all
       (fun f' ->
         let as_flight =
           Cql_eval.Fact.make "flight" f'.Cql_eval.Fact.args (Cql_eval.Fact.cstr f')
         in
         List.exists (Cql_eval.Fact.equal as_flight) flights)
       flights')

(* property: rewritten program is query-equivalent on random chain EDBs *)
let prop_rewrite_equivalent =
  QCheck.Test.make ~name:"constraint_rewrite preserves answers (flights)" ~count:20
    (QCheck.pair (QCheck.int_range 1 1000) (QCheck.int_range 2 5)) (fun (seed, m) ->
      let p = parse flights_src in
      let p', _ = Rewrite.constraint_rewrite p in
      let edb = singleleg_edb seed m in
      let res = Cql_eval.Engine.run ~max_iterations:8 ~max_derivations:1500 p ~edb in
      let res' = Cql_eval.Engine.run ~max_iterations:8 ~max_derivations:1500 p' ~edb in
      let ans = Cql_eval.Engine.facts_of res "cheaporshort" in
      let ans' = Cql_eval.Engine.facts_of res' "cheaporshort" in
      List.for_all (fun f -> List.exists (Cql_eval.Fact.equal f) ans') ans
      && List.for_all (fun f -> List.exists (Cql_eval.Fact.equal f) ans) ans')

(* ----- consecutive application redundancy (Theorems 7.4 / 7.5) ----- *)

let test_consecutive_redundant () =
  let p = parse flights_src in
  (* pred twice: second application infers equivalent constraints *)
  let p1, r1 = Pred_constraints.gen_prop p in
  let r2 = Pred_constraints.gen p1 in
  List.iter
    (fun (pred, c) ->
      check_bool (Printf.sprintf "pred constraint stable for %s" pred) true
        (Cset.equiv c (Pred_constraints.find r2 pred)))
    r1.Pred_constraints.constraints;
  (* qrp twice: the constraints inferred on the rewritten program are
     equivalent for the (renamed) predicates *)
  let q1 = Qrp.gen p in
  let prog2 = Qrp.propagate q1 p in
  let q2 = Qrp.gen prog2 in
  check_bool "flight' keeps its QRP constraint" true
    (Cset.equiv (Qrp.find q1 "flight") (Qrp.find q2 "flight'"))


let d2_like_src =
  "q(X, Y) :- a1(X, Y).\na1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).\na2(X, Y) :- b2(X, Y).\n#query q."

(* ----- additional transformation coverage ----- *)

let test_unreachable_pred_dropped () =
  (* a derived predicate unreachable from the query gets QRP false and its
     rules disappear from the rewritten program *)
  let p = parse "q(X) :- a(X), X <= 3.\na(X) :- b(X).\norphan(X) :- b(X), X >= 100.\n#query q." in
  let res = Qrp.gen p in
  check_bool "orphan has ff QRP" true (Cset.is_ff (Qrp.find res "orphan"));
  let p2 = Qrp.propagate res p in
  check_bool "orphan dropped" false (Program.is_derived p2 "orphan")

let test_edb_constraints_input () =
  (* supplying minimum predicate constraints for database predicates
     (the Appendix C input) strengthens derived constraints *)
  let p = parse "q(X) :- a(X).\na(X) :- b(X).\n#query q." in
  let edb_c = [ ("b", Cset.of_conj (conj [ Atom.ge (arg 1) (n 0) ])) ] in
  let res = Pred_constraints.gen ~edb_constraints:edb_c p in
  check_bool "a inherits b's constraint" true
    (Cset.equiv (Pred_constraints.find res "a") (Cset.of_conj (conj [ Atom.ge (arg 1) (n 0) ])));
  (* without the input, nothing is known *)
  let res0 = Pred_constraints.gen p in
  check_bool "without input trivial" true (Cset.is_tt (Pred_constraints.find res0 "a"))

let test_inline_seed () =
  let p = parse "q(X) :- a(X).\na(X) :- b(X).\n?- q(X)." in
  let adorned = Adorn.program ~query_adornment:"f" p in
  let pmg = Magic.templates_bf adorned in
  let seeds =
    List.filter (fun (r : Rule.t) -> r.Rule.label = "seed") pmg.Program.rules
  in
  check_int "one seed" 1 (List.length seeds);
  let inlined = Magic.inline_seed pmg in
  check_bool "seed gone" true
    (List.for_all (fun (r : Rule.t) -> r.Rule.label <> "seed") inlined.Program.rules);
  (* evaluation agrees with the guarded version *)
  let edb = List.map Cql_eval.Fact.of_fact_rule (Parser.facts_of_string "b(1). b(2).") in
  let r1 = Cql_eval.Engine.run pmg ~edb in
  let r2 = Cql_eval.Engine.run inlined ~edb in
  let q = Option.get pmg.Program.query in
  check_int "same answers" (List.length (Cql_eval.Engine.facts_of r1 q))
    (List.length (Cql_eval.Engine.facts_of r2 q))

let test_theorem_7_9_redundancy () =
  (* pred,qrp,pred,mg computes the same facts as pred,qrp,mg *)
  let p = parse flights_src in
  let mg = Rewrite.Magic { adornment = "ffff"; constraint_magic = true } in
  let a, _ = Rewrite.sequence [ Rewrite.Pred; Rewrite.Qrp; Rewrite.Pred; mg ] p in
  let b, _ = Rewrite.sequence [ Rewrite.Pred; Rewrite.Qrp; mg ] p in
  let edb = singleleg_edb 31 5 in
  let run prog = Cql_eval.Engine.run ~max_iterations:10 ~max_derivations:20_000 prog ~edb in
  let ra = run a and rb = run b in
  check_int "same fact totals (Theorem 7.9)"
    (Cql_eval.Engine.total_idb_facts rb ~edb)
    (Cql_eval.Engine.total_idb_facts ra ~edb)

let test_magic_no_constraint_magic () =
  (* plain magic drops the constraints from magic rules (rule mr1' style) *)
  let p = parse d2_like_src in
  let adorned = Adorn.program ~query_adornment:"bf" p in
  let cm = Magic.templates_bf ~constraint_magic:true adorned in
  let plain = Magic.templates_bf ~constraint_magic:false adorned in
  let magic_rule_cstrs prog =
    List.filter
      (fun (r : Rule.t) ->
        Magic.is_magic r.Rule.head.Literal.pred
        && (not (Rule.is_fact r))
        && not (Conj.is_tt r.Rule.cstr))
      prog.Program.rules
  in
  check_bool "constraint magic keeps constraints" true (magic_rule_cstrs cm <> []);
  check_int "plain magic drops them" 0 (List.length (magic_rule_cstrs plain))

(* random program equivalence: constraint_rewrite preserves query answers on
   randomly generated layered programs *)
let random_program_and_edb seed =
  let rng = ref (seed + 17) in
  let next m =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng mod m
  in
  let bound1 = 2 + next 6 and bound2 = 2 + next 6 in
  let op1 = if next 2 = 0 then "<=" else "<" in
  let recursive = next 2 = 0 in
  let src =
    Printf.sprintf
      "q(X) :- a(X), X %s %d.\na(X) :- b(X, Y), Y <= %d, c(Y).\n%sc(X) :- d(X).\n#query q."
      op1 bound1 bound2
      (if recursive then "c(X) :- c(Y), X = Y, X <= 1.\n" else "")
  in
  let edb =
    String.concat "\n"
      (List.init 8 (fun i ->
           Printf.sprintf "b(%d, %d). d(%d)." (next 12) (next 12) i))
  in
  (parse src, List.map Cql_eval.Fact.of_fact_rule (Parser.facts_of_string edb))

let prop_random_rewrite_equivalent =
  QCheck.Test.make ~name:"constraint_rewrite preserves answers (random programs)" ~count:25
    (QCheck.int_range 0 10_000) (fun seed ->
      let p, edb = random_program_and_edb seed in
      let p', _ = Rewrite.constraint_rewrite ~max_iters:10 p in
      let r1 = Cql_eval.Engine.run ~max_iterations:8 ~max_derivations:3000 p ~edb in
      let r2 = Cql_eval.Engine.run ~max_iterations:8 ~max_derivations:3000 p' ~edb in
      let ans r = List.sort compare (List.map Cql_eval.Fact.to_string (Cql_eval.Engine.facts_of r "q")) in
      ans r1 = ans r2)

let prop_random_rewrite_fewer_facts =
  QCheck.Test.make ~name:"rewritten program computes no more facts" ~count:25
    (QCheck.int_range 0 10_000) (fun seed ->
      let p, edb = random_program_and_edb seed in
      let p', _ = Rewrite.constraint_rewrite ~max_iters:10 p in
      let r1 = Cql_eval.Engine.run ~max_iterations:8 ~max_derivations:3000 p ~edb in
      let r2 = Cql_eval.Engine.run ~max_iterations:8 ~max_derivations:3000 p' ~edb in
      QCheck.assume
        ((Cql_eval.Engine.stats r1).Cql_eval.Engine.reached_fixpoint
        && (Cql_eval.Engine.stats r2).Cql_eval.Engine.reached_fixpoint);
      Cql_eval.Engine.total_idb_facts r2 ~edb <= Cql_eval.Engine.total_idb_facts r1 ~edb)


(* ----- Simplify ----- *)

let test_simplify_rule () =
  (* redundant atom dropped *)
  let r = Parser.rule_of_string "q(X) :- p(X), X <= 3, X <= 5." in
  (match Simplify.rule r with
  | Some r' -> check_int "one atom left" 1 (Conj.size r'.Rule.cstr)
  | None -> Alcotest.fail "rule should survive");
  (* unsatisfiable rule dropped *)
  let dead = Parser.rule_of_string "q(X) :- p(X), X <= 1, X >= 2." in
  check_bool "dead rule dropped" true (Simplify.rule dead = None)

let test_rule_subsumption () =
  let general = Parser.rule_of_string "q(X) :- p(X), X <= 5." in
  let narrow = Parser.rule_of_string "q(X) :- p(X), r(X), X <= 3." in
  check_bool "narrow subsumed by general" true (Simplify.rule_subsumed_by ~general narrow);
  check_bool "general not subsumed by narrow" false
    (Simplify.rule_subsumed_by ~general:narrow general);
  (* different head wiring is not subsumed *)
  let other = Parser.rule_of_string "q(Y) :- p(X), r(X, Y), X <= 3." in
  check_bool "different wiring" false (Simplify.rule_subsumed_by ~general other);
  (* general with an existential body var: q(X) :- p(X, Z) subsumes
     q(X) :- p(X, W), W <= 2 *)
  let g2 = Parser.rule_of_string "q(X) :- p(X, Z)." in
  let n2 = Parser.rule_of_string "q(X) :- p(X, W), W <= 2." in
  check_bool "existential body var" true (Simplify.rule_subsumed_by ~general:g2 n2)

let test_simplify_program () =
  let p =
    parse
      {|
q(X) :- p(X), X <= 5.
q(X) :- p(X), X <= 3.
q(X) :- p(X), X <= 1, X >= 2.
p(X) :- b(X).
#query q.
|}
  in
  let p' = Simplify.program p in
  (* the X<=3 rule is subsumed by the X<=5 one; the dead rule disappears *)
  check_int "two rules left" 2 (List.length p'.Program.rules);
  (* semantics preserved *)
  let edb = List.map Cql_eval.Fact.of_fact_rule (Parser.facts_of_string "b(0). b(2). b(4). b(9).") in
  let r1 = Cql_eval.Engine.run p ~edb in
  let r2 = Cql_eval.Engine.run p' ~edb in
  check_int "same answers" (List.length (Cql_eval.Engine.facts_of r1 "q"))
    (List.length (Cql_eval.Engine.facts_of r2 "q"))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "ptol-ltop",
        [
          Alcotest.test_case "ptol flight example" `Quick test_ptol;
          Alcotest.test_case "ptol constants/repeats/syms" `Quick test_ptol_constants_and_repeats;
          Alcotest.test_case "ltop flight example" `Quick test_ltop;
          Alcotest.test_case "ltop projection" `Quick test_ltop_projection;
          Alcotest.test_case "roundtrip" `Quick test_ptol_ltop_roundtrip;
        ] );
      ( "foldunfold",
        [
          Alcotest.test_case "definition" `Quick test_definition_step;
          Alcotest.test_case "unfold" `Quick test_unfold;
          Alcotest.test_case "fold" `Quick test_fold;
        ] );
      ( "examples",
        [
          Alcotest.test_case "Example 4.1" `Quick test_example_4_1;
          Alcotest.test_case "Example 4.1 syntactic baseline" `Quick test_example_4_1_syntactic_baseline;
          Alcotest.test_case "Example 4.2" `Quick test_example_4_2;
          Alcotest.test_case "Example 5.1 decidable class" `Quick test_example_5_1_decidable;
          Alcotest.test_case "Example 4.3 constraints" `Quick test_example_4_3_constraints;
          Alcotest.test_case "Example 4.3 program" `Quick test_example_4_3_program;
          Alcotest.test_case "Example 4.3 evaluation" `Slow test_example_4_3_evaluation;
          Alcotest.test_case "consecutive applications redundant" `Quick test_consecutive_redundant;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "rule simplification" `Quick test_simplify_rule;
          Alcotest.test_case "rule subsumption" `Quick test_rule_subsumption;
          Alcotest.test_case "program simplification" `Quick test_simplify_program;
        ] );
      ( "extra",
        [
          Alcotest.test_case "unreachable pred dropped" `Quick test_unreachable_pred_dropped;
          Alcotest.test_case "EDB constraints input" `Quick test_edb_constraints_input;
          Alcotest.test_case "inline_seed" `Quick test_inline_seed;
          Alcotest.test_case "Theorem 7.9 redundancy" `Slow test_theorem_7_9_redundancy;
          Alcotest.test_case "plain vs constraint magic" `Quick test_magic_no_constraint_magic;
        ] );
      ( "properties",
        qt
          [
            prop_rewrite_equivalent;
            prop_random_rewrite_equivalent;
            prop_random_rewrite_fewer_facts;
          ] );
    ]
