(* Tests for incremental view maintenance: Engine.materialize / insert /
   retract against from-scratch re-evaluation, the retraction edge cases
   (subsumption covers, cyclic support, retract-then-reinsert), jobs
   invariance and budget accounting. *)

open Cql_datalog
open Cql_eval

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Parser.program_of_string
let edb_of s = List.map Fact.of_fact_rule (Parser.facts_of_string s)

let sorted_answers r p = List.sort Fact.compare (Engine.answers r p)

let show_facts fs = String.concat ", " (List.map Fact.to_string fs)

(* all live facts of a view / result, sorted, for state comparison *)
let result_state r =
  List.sort compare
    (List.filter_map
       (fun (p, fs) ->
         match List.sort Fact.compare fs with [] -> None | fs -> Some (p, fs))
       (Engine.all_facts r))

let view_state vw =
  List.filter (fun (_, fs) -> fs <> []) (Engine.view_all_facts vw)

(* compare a view against a fresh materialization of its current EDB:
   answers, full fact state, support counts and completeness *)
let check_against_scratch ?(msg = "view") vw =
  let p = Engine.view_program vw in
  let edb = Engine.view_edb vw in
  let scratch, st = Engine.materialize p ~edb in
  check_bool (msg ^ ": scratch complete") true st.Engine.m_complete;
  check_bool (msg ^ ": view complete") true (Engine.view_complete vw);
  Alcotest.(check (list string))
    (msg ^ ": answers")
    (List.map Fact.to_string (Engine.view_answers scratch))
    (List.map Fact.to_string (Engine.view_answers vw));
  check_bool (msg ^ ": state") true (view_state scratch = view_state vw);
  check_bool (msg ^ ": counts") true
    (Engine.view_counts scratch = Engine.view_counts vw);
  (* and the plain engine agrees on the answers *)
  let r = Engine.run p ~edb in
  Alcotest.(check (list string))
    (msg ^ ": run answers")
    (List.map Fact.to_string (sorted_answers r p))
    (List.map Fact.to_string (Engine.view_answers vw));
  Engine.close_view scratch

let tc_program =
  parse
    {|
      path(X, Y) :- edge(X, Y).
      path(X, Z) :- edge(X, Y), path(Y, Z).
      #query path.
    |}

let chain_edb = edb_of "edge(a, b). edge(b, c). edge(c, d)."

(* ----- basics ----- *)

let test_materialize_matches_run () =
  let vw, st = Engine.materialize tc_program ~edb:chain_edb in
  check_bool "complete" true st.Engine.m_complete;
  check_int "edb inserted" 3 st.Engine.m_inserted;
  let r = Engine.run tc_program ~edb:chain_edb in
  check_bool "answers" true
    (Engine.view_answers vw = sorted_answers r tc_program);
  check_bool "state" true (view_state vw = result_state r);
  (* every live fact carries a positive support count *)
  List.iter
    (fun (_, counts) ->
      List.iter (fun (f, c) -> check_bool (Fact.to_string f) true (c > 0)) counts)
    (Engine.view_counts vw);
  Engine.close_view vw

let test_insert_maintains () =
  let vw, _ = Engine.materialize tc_program ~edb:chain_edb in
  let st = Engine.insert vw (edb_of "edge(d, e).") in
  check_bool "complete" true st.Engine.m_complete;
  check_int "inserted" 1 st.Engine.m_inserted;
  check_bool "derived something" true (st.Engine.m_derivations > 0);
  check_against_scratch ~msg:"after insert" vw;
  (* disconnected fact *)
  ignore (Engine.insert vw (edb_of "edge(x, y)."));
  check_against_scratch ~msg:"after second insert" vw;
  Engine.close_view vw

let test_retract_maintains () =
  let vw, _ = Engine.materialize tc_program ~edb:chain_edb in
  let st = Engine.retract vw (edb_of "edge(b, c).") in
  check_bool "complete" true st.Engine.m_complete;
  check_int "retracted" 1 st.Engine.m_retracted;
  check_bool "over-deleted the cone" true (st.Engine.m_over_deleted > 0);
  check_against_scratch ~msg:"after retract" vw;
  (* retracting an absent fact is a counted no-op *)
  let st = Engine.retract vw (edb_of "edge(nope, nada).") in
  check_int "noop" 1 st.Engine.m_noops;
  check_int "not retracted" 0 st.Engine.m_retracted;
  check_against_scratch ~msg:"after noop retract" vw;
  Engine.close_view vw

let test_duplicate_edb_multiset () =
  let vw, _ = Engine.materialize tc_program ~edb:chain_edb in
  (* inserting a duplicate bumps support; one retraction keeps the fact *)
  let st = Engine.insert vw (edb_of "edge(a, b).") in
  check_int "dup insert is a noop" 1 st.Engine.m_noops;
  let st = Engine.retract vw (edb_of "edge(a, b).") in
  check_int "first retraction" 1 st.Engine.m_retracted;
  check_int "nothing deleted" 0 st.Engine.m_deleted;
  check_against_scratch ~msg:"after first retraction" vw;
  let st = Engine.retract vw (edb_of "edge(a, b).") in
  check_bool "second retraction deletes" true (st.Engine.m_deleted > 0);
  check_against_scratch ~msg:"after second retraction" vw;
  Engine.close_view vw

(* ----- retraction edge cases (satellite) ----- *)

(* retracting a fact subsumed by a surviving constraint fact: the store
   never stored the narrow fact, so nothing changes *)
let test_retract_subsumed_by_survivor () =
  let p = parse "q(X) :- p(X), X <= 5. #query q." in
  let wide = Fact.of_fact_rule (Parser.rule_of_string "p(X; X >= 0, X <= 10).") in
  let narrow = Fact.of_fact_rule (Parser.rule_of_string "p(X; X >= 1, X <= 3).") in
  let vw, _ = Engine.materialize p ~edb:[ wide; narrow ] in
  let before = view_state vw in
  let st = Engine.retract vw [ narrow ] in
  check_int "retracted" 1 st.Engine.m_retracted;
  check_int "nothing over-deleted" 0 st.Engine.m_over_deleted;
  check_bool "state unchanged" true (view_state vw = before);
  check_against_scratch ~msg:"subsumed retract" vw;
  Engine.close_view vw

(* retracting the last cover resurrects the covered fact *)
let test_retract_cover_resurrects () =
  let p = parse "q(X) :- p(X), X <= 5. #query q." in
  let wide = Fact.of_fact_rule (Parser.rule_of_string "p(X; X >= 0, X <= 10).") in
  let narrow = Fact.of_fact_rule (Parser.rule_of_string "p(X; X >= 1, X <= 3).") in
  let vw, _ = Engine.materialize p ~edb:[ wide; narrow ] in
  let st = Engine.retract vw [ wide ] in
  check_int "retracted" 1 st.Engine.m_retracted;
  check_int "resurrected" 1 st.Engine.m_resurrected;
  check_against_scratch ~msg:"cover retract" vw;
  check_bool "narrow fact live" true
    (List.exists (fun f -> Fact.compare f narrow = 0) (Engine.view_facts_of vw "p"));
  Engine.close_view vw

(* retracting the last external support of a cyclically-derived fact must
   delete the whole cycle: p and q support each other, so counts alone
   would keep them alive *)
let test_retract_cyclic_last_support () =
  let p =
    parse
      {|
        p(X) :- q(X).
        q(X) :- p(X).
        p(X) :- b(X).
        #query p.
      |}
  in
  let vw, _ = Engine.materialize p ~edb:(edb_of "b(1).") in
  check_int "p derived" 1 (List.length (Engine.view_facts_of vw "p"));
  check_int "q derived" 1 (List.length (Engine.view_facts_of vw "q"));
  let st = Engine.retract vw (edb_of "b(1).") in
  check_bool "cycle over-deleted" true (st.Engine.m_over_deleted >= 3);
  check_int "nothing rederived" 0 st.Engine.m_rederived;
  check_int "p gone" 0 (List.length (Engine.view_facts_of vw "p"));
  check_int "q gone" 0 (List.length (Engine.view_facts_of vw "q"));
  check_against_scratch ~msg:"cyclic retract" vw;
  Engine.close_view vw

(* ... but a cycle with a second external support survives, untouched *)
let test_retract_cyclic_second_support () =
  let p =
    parse
      {|
        p(X) :- q(X).
        q(X) :- p(X).
        p(X) :- b(X).
        p(X) :- c(X).
        #query p.
      |}
  in
  let vw, _ = Engine.materialize p ~edb:(edb_of "b(1). c(1).") in
  let st = Engine.retract vw (edb_of "b(1).") in
  check_bool "rederived" true (st.Engine.m_rederived > 0);
  check_int "p survives" 1 (List.length (Engine.view_facts_of vw "p"));
  check_against_scratch ~msg:"cyclic second support" vw;
  Engine.close_view vw

(* retract-then-reinsert returns the store to a state bit-identical (same
   facts, same counts, same answers) to never having retracted *)
let test_retract_reinsert_identity () =
  let vw, _ = Engine.materialize tc_program ~edb:chain_edb in
  let state0 = view_state vw in
  let counts0 = Engine.view_counts vw in
  let answers0 = Engine.view_answers vw in
  ignore (Engine.retract vw (edb_of "edge(b, c)."));
  check_bool "state changed" true (view_state vw <> state0);
  ignore (Engine.insert vw (edb_of "edge(b, c)."));
  check_bool "state restored" true (view_state vw = state0);
  check_bool "counts restored" true (Engine.view_counts vw = counts0);
  check_bool "answers restored" true (Engine.view_answers vw = answers0);
  check_against_scratch ~msg:"retract-reinsert" vw;
  Engine.close_view vw

(* ----- jobs invariance (satellite) ----- *)

let test_jobs_invariant () =
  let ops vw =
    ignore (Engine.insert vw (edb_of "edge(d, e). edge(e, f)."));
    ignore (Engine.retract vw (edb_of "edge(b, c)."));
    ignore (Engine.insert vw (edb_of "edge(b, c)."));
    ignore (Engine.retract vw (edb_of "edge(a, b). edge(c, d)."))
  in
  let v1, _ = Engine.materialize ~jobs:1 tc_program ~edb:chain_edb in
  let v4, _ = Engine.materialize ~jobs:4 tc_program ~edb:chain_edb in
  ops v1;
  ops v4;
  check_bool "answers equal" true (Engine.view_answers v1 = Engine.view_answers v4);
  check_bool "state equal" true (view_state v1 = view_state v4);
  check_bool "counts equal" true (Engine.view_counts v1 = Engine.view_counts v4);
  Alcotest.(check string)
    "answers"
    (show_facts (Engine.view_answers v1))
    (show_facts (Engine.view_answers v4));
  Engine.close_view v1;
  Engine.close_view v4

(* ----- budgets ----- *)

let test_budget_truncates () =
  let vw, st = Engine.materialize ~max_derivations:2 tc_program ~edb:chain_edb in
  check_bool "truncated" false st.Engine.m_complete;
  check_bool "view incomplete" false (Engine.view_complete vw);
  Engine.close_view vw;
  (* per-operation override *)
  let vw, st = Engine.materialize tc_program ~edb:chain_edb in
  check_bool "complete" true st.Engine.m_complete;
  let st = Engine.insert ~max_derivations:1 vw (edb_of "edge(d, e). edge(e, f).") in
  check_bool "insert truncated" false st.Engine.m_complete;
  check_bool "sticky" false (Engine.view_complete vw);
  Engine.close_view vw

let test_closed_view_raises () =
  let vw, _ = Engine.materialize tc_program ~edb:chain_edb in
  Engine.close_view vw;
  check_bool "insert raises" true
    (match Engine.insert vw (edb_of "edge(d, e).") with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* accessors still work *)
  check_bool "answers accessible" true (Engine.view_answers vw <> [])

(* ----- flights (constraint arithmetic) ----- *)

let flights_program () =
  match Parser.program_of_file "../examples/programs/flights.cql" with
  | p -> p
  | exception _ -> parse "q(X) :- p(X). #query q."

let test_flights_updates () =
  let p = flights_program () in
  let edb =
    edb_of
      {|
        singleleg(madison, chicago, 50, 100).
        singleleg(chicago, seattle, 230, 90).
        singleleg(chicago, newyork, 110, 160).
        singleleg(newyork, boston, 45, 60).
        singleleg(seattle, anchorage, 200, 210).
      |}
  in
  let vw, st = Engine.materialize p ~edb in
  check_bool "complete" true st.Engine.m_complete;
  ignore (Engine.insert vw (edb_of "singleleg(boston, portland, 100, 40)."));
  check_against_scratch ~msg:"flights insert" vw;
  ignore (Engine.retract vw (edb_of "singleleg(chicago, newyork, 110, 160)."));
  check_against_scratch ~msg:"flights retract" vw;
  ignore (Engine.insert vw (edb_of "singleleg(chicago, newyork, 110, 160)."));
  check_against_scratch ~msg:"flights reinsert" vw;
  Engine.close_view vw

let () =
  Alcotest.run "incremental"
    [
      ( "basics",
        [
          Alcotest.test_case "materialize matches run" `Quick test_materialize_matches_run;
          Alcotest.test_case "insert maintains fixpoint" `Quick test_insert_maintains;
          Alcotest.test_case "retract maintains fixpoint" `Quick test_retract_maintains;
          Alcotest.test_case "duplicate EDB facts are a multiset" `Quick
            test_duplicate_edb_multiset;
        ] );
      ( "retraction edge cases",
        [
          Alcotest.test_case "retract fact subsumed by survivor" `Quick
            test_retract_subsumed_by_survivor;
          Alcotest.test_case "retracting the cover resurrects" `Quick
            test_retract_cover_resurrects;
          Alcotest.test_case "cyclic last support" `Quick test_retract_cyclic_last_support;
          Alcotest.test_case "cyclic with second support" `Quick
            test_retract_cyclic_second_support;
          Alcotest.test_case "retract-then-reinsert is identity" `Quick
            test_retract_reinsert_identity;
        ] );
      ( "jobs & budgets",
        [
          Alcotest.test_case "jobs-invariant maintenance" `Quick test_jobs_invariant;
          Alcotest.test_case "budgets truncate maintenance" `Quick test_budget_truncates;
          Alcotest.test_case "closed view raises" `Quick test_closed_view_raises;
        ] );
      ( "flights",
        [ Alcotest.test_case "flights update stream" `Quick test_flights_updates ] );
    ]
