(* Unit and property tests for the arbitrary-precision arithmetic substrate. *)

open Cql_num
module B = Bigint
module Q = Rat

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Bigint unit tests ----- *)

let test_of_to_int () =
  List.iter
    (fun n ->
      match B.to_int_opt (B.of_int n) with
      | Some m -> check_int (Printf.sprintf "roundtrip %d" n) n m
      | None -> Alcotest.failf "roundtrip lost %d" n)
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 30; 1 lsl 31 ]

let test_to_string () =
  check "zero" "0" (B.to_string B.zero);
  check "one" "1" (B.to_string B.one);
  check "neg" "-123456789" (B.to_string (B.of_int (-123456789)));
  check "max_int" (string_of_int max_int) (B.to_string (B.of_int max_int));
  check "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int))

let test_of_string () =
  check "roundtrip small" "12345" (B.to_string (B.of_string "12345"));
  check "plus sign" "7" (B.to_string (B.of_string "+7"));
  check "neg" "-987654321012345678901234567890"
    (B.to_string (B.of_string "-987654321012345678901234567890"));
  check "leading zeros" "42" (B.to_string (B.of_string "00042"));
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string") (fun () ->
      ignore (B.of_string ""));
  Alcotest.check_raises "bad char" (Invalid_argument "Bigint.of_string: bad character 'x'")
    (fun () -> ignore (B.of_string "1x2"))

let test_pow_and_big_values () =
  let two_100 = B.pow (B.of_int 2) 100 in
  check "2^100" "1267650600228229401496703205376" (B.to_string two_100);
  let prod = B.mul two_100 two_100 in
  check_bool "2^100 * 2^100 = 2^200" true (B.equal prod (B.pow (B.of_int 2) 200));
  (* 100! has a known decimal form; spot-check its length and trailing zeros *)
  let fact100 =
    let rec go acc i = if i > 100 then acc else go (B.mul acc (B.of_int i)) (i + 1) in
    go B.one 1
  in
  let s = B.to_string fact100 in
  check_int "100! digit count" 158 (String.length s);
  check "100! tail" "000000000000000000000000" (String.sub s (String.length s - 24) 24)

let test_divmod_signs () =
  (* truncation towards zero: r has sign of a *)
  let dm a b =
    let q, r = B.divmod (B.of_int a) (B.of_int b) in
    (B.to_int_exn q, B.to_int_exn r)
  in
  Alcotest.(check (pair int int)) "7/2" (3, 1) (dm 7 2);
  Alcotest.(check (pair int int)) "-7/2" (-3, -1) (dm (-7) 2);
  Alcotest.(check (pair int int)) "7/-2" (-3, 1) (dm 7 (-2));
  Alcotest.(check (pair int int)) "-7/-2" (3, -1) (dm (-7) (-2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_gcd_lcm () =
  let g a b = B.to_int_exn (B.gcd (B.of_int a) (B.of_int b)) in
  check_int "gcd 12 18" 6 (g 12 18);
  check_int "gcd -12 18" 6 (g (-12) 18);
  check_int "gcd 0 5" 5 (g 0 5);
  check_int "gcd 0 0" 0 (g 0 0);
  let l a b = B.to_int_exn (B.lcm (B.of_int a) (B.of_int b)) in
  check_int "lcm 4 6" 12 (l 4 6);
  check_int "lcm 0 6" 0 (l 0 6);
  check_int "lcm -4 6" 12 (l (-4) 6)

let test_compare () =
  let cmp a b = B.compare (B.of_string a) (B.of_string b) in
  check_bool "big > small" true (cmp "10000000000000000000000" "9999" > 0);
  check_bool "neg < pos" true (cmp "-1" "1" < 0);
  check_bool "neg magnitudes" true (cmp "-10000000000000000000000" "-9999" < 0);
  check_bool "equal" true (cmp "123" "0123" = 0);
  check_bool "min" true B.(equal (min (of_int 3) (of_int 5)) (of_int 3));
  check_bool "max" true B.(equal (max (of_int 3) (of_int 5)) (of_int 5))

(* ----- Bigint properties against native ints ----- *)

let small_int = QCheck.int_range (-1_000_000) 1_000_000

let prop_add =
  QCheck.Test.make ~name:"bigint add agrees with int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_exn (B.add (B.of_int a) (B.of_int b)) = a + b)

let prop_mul =
  QCheck.Test.make ~name:"bigint mul agrees with int" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      B.to_int_exn (B.mul (B.of_int a) (B.of_int b)) = a * b)

let prop_divmod =
  QCheck.Test.make ~name:"bigint divmod identity" ~count:500
    (QCheck.pair small_int small_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      B.equal (B.add (B.mul q (B.of_int b)) r) (B.of_int a)
      && B.compare (B.abs r) (B.abs (B.of_int b)) < 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) small_int) (fun parts ->
      (* combine parts into one big number *)
      let x =
        List.fold_left
          (fun acc p -> B.add (B.mul acc (B.of_string "1000000000000")) (B.of_int p))
          B.zero parts
      in
      B.equal x (B.of_string (B.to_string x)))

let prop_gcd_divides =
  QCheck.Test.make ~name:"gcd divides both" ~count:300 (QCheck.pair small_int small_int)
    (fun (a, b) ->
      QCheck.assume (a <> 0 || b <> 0);
      let g = B.gcd (B.of_int a) (B.of_int b) in
      B.sign g > 0
      && B.is_zero (B.rem (B.of_int a) g)
      && B.is_zero (B.rem (B.of_int b) g))

(* ----- Bigint word-boundary properties -----

   The add/mul fast paths trigger below one limb (2^30) and divmod/gcd
   below two limbs (2^60); [of_int min_int] has its own branch.  Draw
   operands clustered on those boundaries and cross-check every result
   against the same computation routed through the multi-limb code by
   offsetting with 2^70 first. *)

let boundary_values =
  let b30 = 1 lsl 30 and b60 = 1 lsl 60 and b62 = 1 lsl 62 in
  [
    0; 1; -1; b30 - 1; b30; b30 + 1; -b30; -(b30 + 1); b60 - 1; b60; b60 + 1;
    -b60; -(b60 + 1); b62; -b62; max_int; min_int; min_int + 1;
  ]

let boundary_int =
  let n = List.length boundary_values in
  QCheck.make
    ~print:string_of_int
    QCheck.Gen.(
      frequency
        [ (4, map (List.nth boundary_values) (int_bound (n - 1))); (1, int) ])

(* the same value built without touching the native fast paths *)
let big_offset = B.pow (B.of_int 2) 70
let via_multilimb a = B.sub (B.add big_offset (B.of_int a)) big_offset

let prop_boundary_roundtrip =
  QCheck.Test.make ~name:"bigint of_int/to_int at word boundaries" ~count:300
    boundary_int (fun a ->
      let x = B.of_int a in
      B.equal x (via_multilimb a) && B.to_int_opt x = Some a)

let prop_boundary_add_sub =
  QCheck.Test.make ~name:"bigint add/sub at word boundaries" ~count:500
    (QCheck.pair boundary_int boundary_int) (fun (a, b) ->
      let fast = B.add (B.of_int a) (B.of_int b) in
      let slow = B.sub (B.add (B.add big_offset (B.of_int a)) (B.of_int b)) big_offset in
      B.equal fast slow && B.equal (B.sub fast (B.of_int b)) (B.of_int a))

let prop_boundary_mul =
  QCheck.Test.make ~name:"bigint mul at word boundaries" ~count:500
    (QCheck.pair boundary_int boundary_int) (fun (a, b) ->
      (* (big + a) * b is computed by the general schoolbook product;
         subtracting big * b must land exactly on the fast-path result *)
      let fast = B.mul (B.of_int a) (B.of_int b) in
      let slow =
        B.sub
          (B.mul (B.add big_offset (B.of_int a)) (B.of_int b))
          (B.mul big_offset (B.of_int b))
      in
      B.equal fast slow)

let prop_boundary_divmod =
  QCheck.Test.make ~name:"bigint divmod at word boundaries" ~count:500
    (QCheck.pair boundary_int boundary_int) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      (* scaling both operands by 2^70 forces binary long division and
         must preserve the quotient while scaling the remainder *)
      let q', r' =
        B.divmod (B.mul (B.of_int a) big_offset) (B.mul (B.of_int b) big_offset)
      in
      B.equal q q'
      && B.equal r' (B.mul r big_offset)
      && B.equal (B.add (B.mul q (B.of_int b)) r) (B.of_int a)
      && B.compare (B.abs r) (B.abs (B.of_int b)) < 0)

let prop_boundary_gcd =
  QCheck.Test.make ~name:"bigint gcd at word boundaries" ~count:500
    (QCheck.pair boundary_int boundary_int) (fun (a, b) ->
      QCheck.assume (a <> 0 || b <> 0);
      let g = B.gcd (B.of_int a) (B.of_int b) in
      (* gcd(a*m, b*m) = gcd(a, b) * m with multi-limb operands *)
      B.equal
        (B.gcd (B.mul (B.of_int a) big_offset) (B.mul (B.of_int b) big_offset))
        (B.mul g big_offset)
      && B.sign g > 0
      && B.is_zero (B.rem (B.of_int a) g)
      && B.is_zero (B.rem (B.of_int b) g))

(* ----- Rat unit tests ----- *)

let q = Q.of_ints

let test_rat_normalization () =
  check_bool "2/4 = 1/2" true (Q.equal (q 2 4) (q 1 2));
  check_bool "-2/-4 = 1/2" true (Q.equal (q (-2) (-4)) (q 1 2));
  check_bool "den positive" true (Bigint.sign (Q.den (q 3 (-7))) > 0);
  check "print" "-3/7" (Q.to_string (q 3 (-7)));
  check "print int" "5" (Q.to_string (q 10 2));
  Alcotest.check_raises "zero den" Division_by_zero (fun () -> ignore (q 1 0))

let test_rat_arith () =
  check_bool "1/2 + 1/3 = 5/6" true (Q.equal (Q.add (q 1 2) (q 1 3)) (q 5 6));
  check_bool "1/2 * 2/3 = 1/3" true (Q.equal (Q.mul (q 1 2) (q 2 3)) (q 1 3));
  check_bool "(1/2) / (3/4) = 2/3" true (Q.equal (Q.div (q 1 2) (q 3 4)) (q 2 3));
  check_bool "inv" true (Q.equal (Q.inv (q (-2) 3)) (q (-3) 2));
  check_bool "sub" true (Q.equal (Q.sub (q 1 2) (q 1 3)) (q 1 6));
  Alcotest.check_raises "div by zero rat" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_rat_compare () =
  check_bool "1/3 < 1/2" true Q.(q 1 3 < q 1 2);
  check_bool "-1/2 < 1/3" true Q.(q (-1) 2 < q 1 3);
  check_bool "equal classes" true (Q.compare (q 4 6) (q 2 3) = 0);
  check_int "sign neg" (-1) (Q.sign (q (-1) 5));
  check_int "sign zero" 0 (Q.sign Q.zero);
  check_bool "is_integer" true (Q.is_integer (q 8 4));
  check_bool "not integer" false (Q.is_integer (q 8 3))

let test_rat_of_string () =
  check_bool "42" true (Q.equal (Q.of_string "42") (Q.of_int 42));
  check_bool "-3/4" true (Q.equal (Q.of_string "-3/4") (q (-3) 4));
  check_bool "2.5" true (Q.equal (Q.of_string "2.5") (q 5 2));
  check_bool "-0.25" true (Q.equal (Q.of_string "-0.25") (q (-1) 4));
  check_bool "0.125" true (Q.equal (Q.of_string "0.125") (q 1 8))

(* ----- Rat properties ----- *)

let rat_gen =
  QCheck.map
    (fun (n, d) -> q n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range (-50) 50))

let prop_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:500 (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c))
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && Q.equal (Q.sub (Q.add a b) b) a)

let prop_rat_compare_antisym =
  QCheck.Test.make ~name:"rat compare antisymmetric" ~count:500 (QCheck.pair rat_gen rat_gen)
    (fun (a, b) -> Q.compare a b = -Q.compare b a)

let prop_rat_string_roundtrip =
  QCheck.Test.make ~name:"rat string roundtrip" ~count:500 rat_gen (fun a ->
      Q.equal a (Q.of_string (Q.to_string a)))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "num"
    [
      ( "bigint",
        [
          Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "pow and big values" `Quick test_pow_and_big_values;
          Alcotest.test_case "divmod signs" `Quick test_divmod_signs;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "compare" `Quick test_compare;
        ] );
      ( "bigint-properties",
        qt [ prop_add; prop_mul; prop_divmod; prop_string_roundtrip; prop_gcd_divides ] );
      ( "bigint-boundaries",
        qt
          [
            prop_boundary_roundtrip; prop_boundary_add_sub; prop_boundary_mul;
            prop_boundary_divmod; prop_boundary_gcd;
          ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "of_string" `Quick test_rat_of_string;
        ] );
      ( "rat-properties",
        qt [ prop_rat_field; prop_rat_compare_antisym; prop_rat_string_roundtrip ] );
    ]
