(* Unit and property tests for the linear-arithmetic constraint solver:
   linear expressions, atoms, conjunctions (Gauss + Fourier-Motzkin) and
   DNF constraint sets. *)

open Cql_num
open Cql_constr
module Q = Rat

let x = Var.mk "X"
let y = Var.mk "Y"
let z = Var.mk "Z"
let w = Var.mk "W"
let vx = Linexpr.var x
let vy = Linexpr.var y
let vz = Linexpr.var z
let n i = Linexpr.of_int i
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* evaluate expressions/atoms/conjunctions/csets at a point *)
let eval_expr (env : Q.t Var.Map.t) e =
  List.fold_left
    (fun acc (v, c) -> Q.add acc (Q.mul c (Var.Map.find v env)))
    (Linexpr.constant e) (Linexpr.terms e)

let eval_atom env (a : Atom.t) =
  let v = eval_expr env a.Atom.expr in
  match a.Atom.op with
  | Atom.Le -> Q.sign v <= 0
  | Atom.Lt -> Q.sign v < 0
  | Atom.Eq -> Q.sign v = 0

let eval_conj env c = List.for_all (eval_atom env) (Conj.to_list c)
let eval_cset env cs = List.exists (eval_conj env) (Cset.disjuncts cs)

(* ----- Linexpr ----- *)

let test_linexpr_basics () =
  let e = Linexpr.of_terms [ (Q.of_int 2, x); (Q.of_int 3, y) ] (Q.of_int 5) in
  check_bool "coeff x" true (Q.equal (Linexpr.coeff x e) (Q.of_int 2));
  check_bool "coeff z" true (Q.is_zero (Linexpr.coeff z e));
  check_bool "const" true (Q.equal (Linexpr.constant e) (Q.of_int 5));
  let e2 = Linexpr.add e (Linexpr.term (Q.of_int (-2)) x) in
  check_bool "x canceled" true (Q.is_zero (Linexpr.coeff x e2));
  check_int "vars after cancel" 1 (Var.Set.cardinal (Linexpr.vars e2));
  check_bool "sub self is zero" true (Linexpr.equal (Linexpr.sub e e) Linexpr.zero)

let test_linexpr_subst () =
  (* substitute X := Y + 1 in  2X + Z  ->  2Y + Z + 2 *)
  let e = Linexpr.add (Linexpr.scale (Q.of_int 2) vx) vz in
  let e' = Linexpr.subst x (Linexpr.add vy (n 1)) e in
  check_bool "subst result" true
    (Linexpr.equal e' (Linexpr.of_terms [ (Q.of_int 2, y); (Q.one, z) ] (Q.of_int 2)))

let test_linexpr_integerize () =
  (* (1/2)X + (1/3)Y - 1/6  scales to  3X + 2Y - 1 *)
  let e = Linexpr.of_terms [ (Q.of_ints 1 2, x); (Q.of_ints 1 3, y) ] (Q.of_ints (-1) 6) in
  let e' = Linexpr.integerize e in
  check_bool "integerized" true
    (Linexpr.equal e' (Linexpr.of_terms [ (Q.of_int 3, x); (Q.of_int 2, y) ] Q.minus_one));
  (* common factors are divided out: 4X + 6Y -> 2X + 3Y *)
  let f = Linexpr.of_terms [ (Q.of_int 4, x); (Q.of_int 6, y) ] Q.zero in
  check_bool "gcd reduced" true
    (Linexpr.equal (Linexpr.integerize f)
       (Linexpr.of_terms [ (Q.of_int 2, x); (Q.of_int 3, y) ] Q.zero))

let test_linexpr_rename () =
  let e = Linexpr.add vx vy in
  let renamed = Linexpr.rename (fun v -> if Var.equal v x then z else v) e in
  check_bool "renamed" true (Linexpr.equal renamed (Linexpr.add vz vy));
  (* non-injective renaming merges coefficients *)
  let merged = Linexpr.rename (fun _ -> z) e in
  check_bool "merged" true (Linexpr.equal merged (Linexpr.scale (Q.of_int 2) vz))

(* ----- Atom ----- *)

let test_atom_normalization () =
  (* X >= 2 and -X <= -2 are the same atom *)
  check_bool "ge as le" true (Atom.equal (Atom.ge vx (n 2)) (Atom.le (n 2) vx));
  (* equalities have canonical sign: X = Y equals Y = X *)
  check_bool "eq symmetric" true (Atom.equal (Atom.eq vx vy) (Atom.eq vy vx));
  check_bool "tt" true (Atom.truth Atom.tt = Some true);
  check_bool "ff" true (Atom.truth Atom.ff = Some false);
  check_bool "const true atom" true (Atom.truth (Atom.le (n 1) (n 2)) = Some true);
  check_bool "const false atom" true (Atom.truth (Atom.lt (n 2) (n 2)) = Some false);
  check_bool "nonconst" true (Atom.truth (Atom.le vx (n 2)) = None)

let test_atom_negate () =
  let env = Var.Map.(add x (Q.of_int 3) empty) in
  let a = Atom.le vx (n 3) in
  (* X <= 3 is true at 3; its negation X > 3 must be false there *)
  check_bool "le at boundary" true (eval_atom env a);
  check_bool "negation at boundary" false
    (List.exists (eval_atom env) (Atom.negate a));
  let e = Atom.eq vx (n 5) in
  check_int "eq negates to two atoms" 2 (List.length (Atom.negate e))

(* ----- Conj: satisfiability ----- *)

let conj atoms = Conj.of_list atoms

let test_sat_basic () =
  check_bool "tt sat" true (Conj.is_sat Conj.tt);
  check_bool "ff unsat" false (Conj.is_sat Conj.ff);
  check_bool "x<=0 & x>=1 unsat" false
    (Conj.is_sat (conj [ Atom.le vx (n 0); Atom.ge vx (n 1) ]));
  check_bool "x<=1 & x>=1 sat" true
    (Conj.is_sat (conj [ Atom.le vx (n 1); Atom.ge vx (n 1) ]));
  check_bool "x<1 & x>1 unsat" false
    (Conj.is_sat (conj [ Atom.lt vx (n 1); Atom.gt vx (n 1) ]));
  check_bool "x<=1 & x>1 unsat" false
    (Conj.is_sat (conj [ Atom.le vx (n 1); Atom.gt vx (n 1) ]));
  check_bool "strict cycle unsat" false
    (Conj.is_sat (conj [ Atom.lt vx vy; Atom.lt vy vz; Atom.lt vz vx ]));
  check_bool "nonstrict cycle sat" true
    (Conj.is_sat (conj [ Atom.le vx vy; Atom.le vy vz; Atom.le vz vx ]));
  check_bool "eq and lt conflict" false
    (Conj.is_sat (conj [ Atom.eq vx vy; Atom.lt vx vy ]))

let test_sat_arithmetic_chain () =
  (* x + y <= 4, x >= 2, y >= 3 is unsat *)
  check_bool "sum bound unsat" false
    (Conj.is_sat (conj [ Atom.le (Linexpr.add vx vy) (n 4); Atom.ge vx (n 2); Atom.ge vy (n 3) ]));
  (* x + y <= 4, x >= 2, y >= 2 is sat (exactly the corner) *)
  check_bool "sum bound corner sat" true
    (Conj.is_sat (conj [ Atom.le (Linexpr.add vx vy) (n 4); Atom.ge vx (n 2); Atom.ge vy (n 2) ]));
  (* equalities chain: x = y+1, y = z+1, z = 5, x = 7 sat; x = 8 unsat *)
  let base = [ Atom.eq vx (Linexpr.add vy (n 1)); Atom.eq vy (Linexpr.add vz (n 1)); Atom.eq vz (n 5) ] in
  check_bool "eq chain sat" true (Conj.is_sat (conj (Atom.eq vx (n 7) :: base)));
  check_bool "eq chain unsat" false (Conj.is_sat (conj (Atom.eq vx (n 8) :: base)))

(* ----- Conj: projection ----- *)

let test_project () =
  (* exists Y. X + Y <= 6 & X >= 2 & Y >= 0  ->  2 <= X <= 6 *)
  let c = conj [ Atom.le (Linexpr.add vx vy) (n 6); Atom.ge vx (n 2); Atom.ge vy (n 0) ] in
  let p = Conj.project ~keep:(Var.Set.singleton x) c in
  check_bool "projection keeps x bounds" true
    (Conj.equiv p (conj [ Atom.ge vx (n 2); Atom.le vx (n 6) ]));
  (* paper, Example 4.1: X + Y <= 6 & X >= 2 projected onto Y gives Y <= 4 *)
  let c41 = conj [ Atom.le (Linexpr.add vx vy) (n 6); Atom.ge vx (n 2) ] in
  let p41 = Conj.project ~keep:(Var.Set.singleton y) c41 in
  check_bool "Y <= 4 (Example 4.1)" true (Conj.equiv p41 (conj [ Atom.le vy (n 4) ]));
  (* projecting an unsatisfiable conjunction stays unsatisfiable *)
  let bad = conj [ Atom.le vx (n 0); Atom.ge vx (n 1) ] in
  check_bool "unsat projects to unsat" false
    (Conj.is_sat (Conj.project ~keep:(Var.Set.singleton y) bad));
  (* strictness is preserved through elimination: X < Y & Y <= 3 -> X < 3 *)
  let s = conj [ Atom.lt vx vy; Atom.le vy (n 3) ] in
  let ps = Conj.project ~keep:(Var.Set.singleton x) s in
  check_bool "strict preserved" true (Conj.equiv ps (conj [ Atom.lt vx (n 3) ]));
  check_bool "not weaker" false (Conj.implies (conj [ Atom.le vx (n 3) ]) ps)

let test_project_equalities () =
  (* exists Y. X = Y + 1 & Y = Z + 2  ->  X = Z + 3 *)
  let c = conj [ Atom.eq vx (Linexpr.add vy (n 1)); Atom.eq vy (Linexpr.add vz (n 2)) ] in
  let p = Conj.project ~keep:(Var.Set.of_list [ x; z ]) c in
  check_bool "eq composition" true
    (Conj.equiv p (conj [ Atom.eq vx (Linexpr.add vz (n 3)) ]))

(* ----- Conj: implication & simplification ----- *)

let test_implies () =
  (* paper, after Definition 2.3: (X + Y <= 4) & (X >= 2) implies Y <= 2 *)
  let c = conj [ Atom.le (Linexpr.add vx vy) (n 4); Atom.ge vx (n 2) ] in
  check_bool "paper implication" true (Conj.implies_atom c (Atom.le vy (n 2)));
  check_bool "not stronger" false (Conj.implies_atom c (Atom.lt vy (n 2)));
  check_bool "self implication" true (Conj.implies c c);
  check_bool "ff implies anything" true (Conj.implies Conj.ff (conj [ Atom.eq vx (n 99) ]));
  check_bool "tt implies only trivial" false (Conj.implies Conj.tt (conj [ Atom.le vx (n 0) ]));
  (* scaling invariance: 2X <= 4 implies X <= 2 and vice versa *)
  let a = conj [ Atom.le (Linexpr.scale (Q.of_int 2) vx) (n 4) ] in
  let b = conj [ Atom.le vx (n 2) ] in
  check_bool "scaled equiv" true (Conj.equiv a b)

let test_simplify () =
  (* X <= 3 makes X <= 5 redundant *)
  let c = conj [ Atom.le vx (n 3); Atom.le vx (n 5) ] in
  let s = Conj.simplify c in
  check_int "redundant dropped" 1 (Conj.size s);
  check_bool "still equiv" true (Conj.equiv s c);
  (* unsat simplifies to ff *)
  check_bool "unsat to ff" true
    (Conj.equal (Conj.simplify (conj [ Atom.le vx (n 0); Atom.ge vx (n 1) ])) Conj.ff);
  (* implied sum: X <= 2 & Y <= 2 makes X + Y <= 4 redundant *)
  let c2 = conj [ Atom.le vx (n 2); Atom.le vy (n 2); Atom.le (Linexpr.add vx vy) (n 4) ] in
  check_int "sum dropped" 2 (Conj.size (Conj.simplify c2))

(* ----- Cset ----- *)

let test_cset_basics () =
  check_bool "ff is ff" true (Cset.is_ff Cset.ff);
  check_bool "tt is tt" true (Cset.is_tt Cset.tt);
  (* unsat disjuncts are pruned *)
  let cs = Cset.of_disjuncts [ conj [ Atom.le vx (n 0); Atom.ge vx (n 1) ] ] in
  check_bool "pruned to ff" true (Cset.is_ff cs);
  (* subsumed disjuncts are pruned: (X<=3) | (X<=5)  ->  X<=5 *)
  let cs2 = Cset.or_ (Cset.of_conj (conj [ Atom.le vx (n 3) ])) (Cset.of_conj (conj [ Atom.le vx (n 5) ])) in
  check_int "subsumption pruning" 1 (Cset.num_disjuncts cs2);
  check_bool "kept the weaker" true
    (Cset.equiv cs2 (Cset.of_conj (conj [ Atom.le vx (n 5) ])))

let test_cset_implies () =
  (* (X<=1) | (X>=5)  ⊨  (X<=2) | (X>=4) *)
  let small = Cset.of_disjuncts [ conj [ Atom.le vx (n 1) ]; conj [ Atom.ge vx (n 5) ] ] in
  let big = Cset.of_disjuncts [ conj [ Atom.le vx (n 2) ]; conj [ Atom.ge vx (n 4) ] ] in
  check_bool "dnf implication holds" true (Cset.implies small big);
  check_bool "dnf implication converse fails" false (Cset.implies big small);
  (* a conjunction implying a *disjunction* without implying either disjunct:
     0<=X<=10  ⊨  (X<=5) | (X>=5) *)
  let mid = conj [ Atom.ge vx (n 0); Atom.le vx (n 10) ] in
  let split = Cset.of_disjuncts [ conj [ Atom.le vx (n 5) ]; conj [ Atom.ge vx (n 5) ] ] in
  check_bool "case split implication" true (Cset.conj_implies mid split);
  check_bool "not via single disjunct (a)" false (Conj.implies mid (conj [ Atom.le vx (n 5) ]));
  check_bool "strict gap fails" false
    (Cset.conj_implies mid
       (Cset.of_disjuncts [ conj [ Atom.lt vx (n 5) ]; conj [ Atom.gt vx (n 5) ] ]))

let test_cset_and () =
  let a = Cset.of_disjuncts [ conj [ Atom.le vx (n 1) ]; conj [ Atom.ge vx (n 5) ] ] in
  let b = Cset.of_conj (conj [ Atom.ge vx (n 0) ]) in
  let r = Cset.and_ a b in
  (* (X<=1 | X>=5) & X>=0  =  (0<=X<=1) | (X>=5) *)
  check_int "two disjuncts" 2 (Cset.num_disjuncts r);
  check_bool "equiv" true
    (Cset.equiv r
       (Cset.of_disjuncts
          [ conj [ Atom.ge vx (n 0); Atom.le vx (n 1) ]; conj [ Atom.ge vx (n 5) ] ]))

let test_cset_disjointify () =
  (* flight example shape: overlapping (T<=240) | (C<=150) with T,C > 0 *)
  let t = Var.mk "T" and c = Var.mk "C" in
  let vt = Linexpr.var t and vc = Linexpr.var c in
  let d1 = conj [ Atom.gt vt (n 0); Atom.le vt (n 240); Atom.gt vc (n 0) ] in
  let d2 = conj [ Atom.gt vt (n 0); Atom.gt vc (n 0); Atom.le vc (n 150) ] in
  let cs = Cset.of_disjuncts [ d1; d2 ] in
  let dj = Cset.disjointify cs in
  check_bool "equivalent" true (Cset.equiv cs dj);
  (* pairwise disjoint *)
  let ds = Cset.disjuncts dj in
  List.iteri
    (fun i di ->
      List.iteri
        (fun j djj -> if i < j then check_bool "disjoint" false (Conj.is_sat (Conj.and_ di djj)))
        ds)
    ds

let test_cset_weaken_to_one () =
  let t = Var.mk "T" and c = Var.mk "C" in
  let vt = Linexpr.var t and vc = Linexpr.var c in
  let d1 = conj [ Atom.gt vt (n 0); Atom.le vt (n 240); Atom.gt vc (n 0) ] in
  let d2 = conj [ Atom.gt vt (n 0); Atom.gt vc (n 0); Atom.le vc (n 150) ] in
  let weak = Cset.weaken_to_one (Cset.of_disjuncts [ d1; d2 ]) in
  (* Section 4.6: bounding to one disjunct yields ($3 > 0)&($4 > 0) *)
  check_bool "weakened hull" true (Conj.equiv weak (conj [ Atom.gt vt (n 0); Atom.gt vc (n 0) ]));
  check_bool "ff weakens to ff" true (Conj.equal (Cset.weaken_to_one Cset.ff) Conj.ff)

(* every operation on the [tt] / [ff] boundary values: the fuzzing harness
   feeds these degenerate sets to the rewrites constantly (QRP seeds every
   non-query predicate with [false]), so their algebra must be exact *)
let test_cset_edge_cases () =
  let c_le4 = conj [ Atom.le vx (n 4) ] in
  let cs = Cset.of_conj c_le4 in
  (* construction *)
  check_bool "of_disjuncts [] is ff" true (Cset.is_ff (Cset.of_disjuncts []));
  check_bool "of_conj Conj.ff is ff" true (Cset.is_ff (Cset.of_conj Conj.ff));
  check_bool "of_conj Conj.tt is tt" true (Cset.is_tt (Cset.of_conj Conj.tt));
  check_bool "unsat disjunct pruned" true
    (Cset.num_disjuncts (Cset.of_disjuncts [ c_le4; Conj.ff ]) = 1);
  check_bool "tt disjunct absorbs the rest" true
    (Cset.is_tt (Cset.of_disjuncts [ c_le4; Conj.tt ]));
  check_int "num_disjuncts ff" 0 (Cset.num_disjuncts Cset.ff);
  check_int "num_disjuncts tt" 1 (Cset.num_disjuncts Cset.tt);
  (* lattice identities *)
  check_bool "ff and cs" true (Cset.is_ff (Cset.and_ Cset.ff cs));
  check_bool "tt and cs" true (Cset.equiv (Cset.and_ Cset.tt cs) cs);
  check_bool "ff or cs" true (Cset.equiv (Cset.or_ Cset.ff cs) cs);
  check_bool "tt or cs" true (Cset.is_tt (Cset.or_ Cset.tt cs));
  check_bool "and_conj Conj.ff" true (Cset.is_ff (Cset.and_conj Conj.ff cs));
  check_bool "and_conj Conj.tt" true (Cset.equiv (Cset.and_conj Conj.tt cs) cs);
  (* implication: ff is bottom, tt is top *)
  check_bool "ff implies anything" true (Cset.implies Cset.ff cs && Cset.implies Cset.ff Cset.ff);
  check_bool "anything implies tt" true (Cset.implies cs Cset.tt && Cset.implies Cset.tt Cset.tt);
  check_bool "tt does not imply ff" false (Cset.implies Cset.tt Cset.ff);
  check_bool "sat set does not imply ff" false (Cset.implies cs Cset.ff);
  check_bool "conj_implies from Conj.ff" true (Cset.conj_implies Conj.ff Cset.ff);
  check_bool "conj_implies unsat conj to ff" true
    (Cset.conj_implies (conj [ Atom.le (n 1) (n 0) ]) Cset.ff);
  check_bool "conj_implies Conj.tt to ff" false (Cset.conj_implies Conj.tt Cset.ff);
  (* complement: cs /\ ~cs = ff, cs \/ ~cs = tt *)
  check_bool "cs and its negation" true (Cset.is_ff (Cset.and_ cs (Cset.negate_conj c_le4)));
  check_bool "cs or its negation" true (Cset.equiv (Cset.or_ cs (Cset.negate_conj c_le4)) Cset.tt);
  check_bool "negate_conj tt" true (Cset.is_ff (Cset.negate_conj Conj.tt));
  check_bool "negate_conj ff" true (Cset.is_tt (Cset.negate_conj Conj.ff));
  (* transformations preserve the boundary values *)
  check_bool "disjointify ff" true (Cset.is_ff (Cset.disjointify Cset.ff));
  check_bool "disjointify tt" true (Cset.is_tt (Cset.disjointify Cset.tt));
  check_bool "simplify ff" true (Cset.is_ff (Cset.simplify Cset.ff));
  check_bool "simplify tt" true (Cset.is_tt (Cset.simplify Cset.tt));
  check_bool "project ff" true (Cset.is_ff (Cset.project ~keep:Var.Set.empty Cset.ff));
  check_bool "project tt" true (Cset.is_tt (Cset.project ~keep:Var.Set.empty Cset.tt));
  check_bool "project everything away is tt" true
    (Cset.is_tt (Cset.project ~keep:Var.Set.empty cs));
  check_bool "weaken_to_one tt" true (Conj.is_tt (Cset.weaken_to_one Cset.tt));
  check_bool "weaken_to_one with tt disjunct" true
    (Conj.is_tt (Cset.weaken_to_one (Cset.of_disjuncts [ c_le4; Conj.tt ])));
  (* pairwise-unsatisfiable conjunction collapses to ff *)
  let low_or_high = Cset.of_disjuncts [ conj [ Atom.le vx (n 0) ]; conj [ Atom.le (n 10) vx ] ] in
  let middle = Cset.of_conj (conj [ Atom.le (n 2) vx; Atom.le vx (n 5) ]) in
  check_bool "disjoint bands conjoin to ff" true (Cset.is_ff (Cset.and_ low_or_high middle));
  (* comparison treats semantically-false sets alike *)
  check_bool "equal ff ff" true (Cset.equal Cset.ff Cset.ff);
  check_bool "tt distinct from ff" false (Cset.equal Cset.tt Cset.ff);
  check_bool "unsat conj equiv ff" true
    (Cset.equiv Cset.ff (Cset.of_conj (conj [ Atom.le (n 1) (n 0) ])))

(* ----- properties ----- *)

let vars_pool = [| x; y; z; w |]

let expr_gen =
  QCheck.Gen.(
    let coeff = map Q.of_int (int_range (-3) 3) in
    let term = map2 (fun c i -> (c, vars_pool.(i))) coeff (int_range 0 3) in
    map2 (fun ts k -> Linexpr.of_terms ts (Q.of_int k)) (list_size (int_range 1 3) term)
      (int_range (-5) 5))

let atom_gen =
  QCheck.Gen.(
    map2
      (fun e op -> Atom.make e (match op with 0 -> Atom.Le | 1 -> Atom.Lt | _ -> Atom.Eq))
      expr_gen (int_range 0 2))

let conj_gen = QCheck.Gen.(map Conj.of_list (list_size (int_range 0 4) atom_gen))

let point_gen =
  QCheck.Gen.(
    map
      (fun l ->
        List.fold_left2
          (fun acc v q -> Var.Map.add v (Q.of_ints q 2) acc)
          Var.Map.empty
          (Array.to_list vars_pool) l)
      (list_repeat 4 (int_range (-8) 8)))

let conj_point = QCheck.make QCheck.Gen.(pair conj_gen point_gen)

let prop_sat_sound =
  QCheck.Test.make ~name:"point satisfying conj => is_sat" ~count:500 conj_point
    (fun (c, env) ->
      QCheck.assume (eval_conj env c);
      Conj.is_sat c)

let prop_project_sound =
  QCheck.Test.make ~name:"projection preserves satisfying points" ~count:500 conj_point
    (fun (c, env) ->
      QCheck.assume (eval_conj env c);
      let keep = Var.Set.of_list [ x; y ] in
      eval_conj env (Conj.project ~keep c))

let prop_implies_sound =
  QCheck.Test.make ~name:"implication respected by points" ~count:300
    (QCheck.make QCheck.Gen.(triple conj_gen conj_gen point_gen)) (fun (c, d, env) ->
      QCheck.assume (Conj.implies c d);
      QCheck.assume (eval_conj env c);
      eval_conj env d)

let prop_negate_complement =
  QCheck.Test.make ~name:"atom negation is complement at points" ~count:500
    (QCheck.make QCheck.Gen.(pair atom_gen point_gen)) (fun (a, env) ->
      let na = List.exists (eval_atom env) (Atom.negate a) in
      eval_atom env a = not na)

let prop_simplify_equiv =
  QCheck.Test.make ~name:"simplify preserves point semantics" ~count:300 conj_point
    (fun (c, env) -> eval_conj env c = eval_conj env (Conj.simplify c))

let prop_disjointify_equiv =
  QCheck.Test.make ~name:"disjointify preserves point semantics" ~count:150
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 3) conj_gen) point_gen))
    (fun (ds, env) ->
      let cs = Cset.of_disjuncts ds in
      eval_cset env cs = eval_cset env (Cset.disjointify cs))

let prop_weaken_sound =
  QCheck.Test.make ~name:"weaken_to_one is implied by the set" ~count:150
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 1 3) conj_gen) point_gen))
    (fun (ds, env) ->
      let cs = Cset.of_disjuncts ds in
      QCheck.assume (eval_cset env cs);
      eval_conj env (Cset.weaken_to_one cs))


(* ----- additional coverage ----- *)

let test_cset_negate_conj () =
  (* ¬(1<=X<=3) = (X<1) | (X>3) *)
  let c = conj [ Atom.ge vx (n 1); Atom.le vx (n 3) ] in
  let neg = Cset.negate_conj c in
  check_int "two disjuncts" 2 (Cset.num_disjuncts neg);
  check_bool "covers below" true (Cset.conj_implies (conj [ Atom.lt vx (n 1) ]) neg);
  check_bool "covers above" true (Cset.conj_implies (conj [ Atom.gt vx (n 3) ]) neg);
  check_bool "excludes inside" false (Cset.conj_implies (conj [ Atom.eq vx (n 2) ]) neg);
  (* ¬(X = 2) has two strict branches *)
  let neq = Cset.negate_conj (conj [ Atom.eq vx (n 2) ]) in
  check_int "eq negation" 2 (Cset.num_disjuncts neq);
  (* negating true is false and vice versa *)
  check_bool "neg tt is ff" true (Cset.is_ff (Cset.negate_conj Conj.tt))

let test_cset_project () =
  (* exists Y. (X <= Y & Y <= 2) | (X >= Y & Y >= 9)  =  (X <= 2) | (X >= 9) *)
  let cs =
    Cset.of_disjuncts
      [ conj [ Atom.le vx vy; Atom.le vy (n 2) ]; conj [ Atom.ge vx vy; Atom.ge vy (n 9) ] ]
  in
  let p = Cset.project ~keep:(Var.Set.singleton x) cs in
  check_bool "disjunctwise projection" true
    (Cset.equiv p
       (Cset.of_disjuncts [ conj [ Atom.le vx (n 2) ]; conj [ Atom.ge vx (n 9) ] ]))

let test_equalities_everywhere () =
  (* a system of equalities solved by substitution: X = 2Y, Y = Z + 1, Z = 3
     implies X = 8 *)
  let c =
    conj
      [ Atom.eq vx (Linexpr.scale (Q.of_int 2) vy);
        Atom.eq vy (Linexpr.add vz (n 1));
        Atom.eq vz (n 3) ]
  in
  check_bool "chain solved" true (Conj.implies_atom c (Atom.eq vx (n 8)));
  check_bool "chain not over-solved" false (Conj.implies_atom c (Atom.eq vx (n 9)));
  (* inconsistent equalities *)
  let bad = Conj.add (Atom.eq vx (n 7)) c in
  check_bool "inconsistent" false (Conj.is_sat bad)

let test_scaled_atom_normalization () =
  check_bool "2X <= 4 is X <= 2" true
    (Atom.equal (Atom.le (Linexpr.scale (Q.of_int 2) vx) (n 4)) (Atom.le vx (n 2)));
  check_bool "fractions normalize" true
    (Atom.equal
       (Atom.le (Linexpr.scale (Q.of_ints 1 3) vx) (Linexpr.const (Q.of_ints 2 3)))
       (Atom.le vx (n 2)));
  (* equalities: -X + Y = 0 same as X - Y = 0 *)
  check_bool "eq sign canonical" true
    (Atom.equal (Atom.eq (Linexpr.sub vy vx) (n 0)) (Atom.eq (Linexpr.sub vx vy) (n 0)))

let test_unbounded_directions () =
  (* only upper bounds: satisfiable (goes to -inf) *)
  check_bool "upper only" true (Conj.is_sat (conj [ Atom.le vx (n 0); Atom.le vx vy ]));
  (* x appears with same sign everywhere: eliminating drops all *)
  let c = conj [ Atom.le vx vy; Atom.le vx vz ] in
  let p = Conj.project ~keep:(Var.Set.of_list [ y; z ]) c in
  check_bool "no residual constraint" true (Conj.is_tt (Conj.simplify p))


(* ----- Simplex: the independent decision procedure ----- *)

let test_simplex_units () =
  let sat atoms = Simplex.is_sat atoms in
  check_bool "empty sat" true (sat []);
  check_bool "x<=0 & x>=1" false (sat [ Atom.le vx (n 0); Atom.ge vx (n 1) ]);
  check_bool "x<=1 & x>=1" true (sat [ Atom.le vx (n 1); Atom.ge vx (n 1) ]);
  check_bool "x<1 & x>=1" false (sat [ Atom.lt vx (n 1); Atom.ge vx (n 1) ]);
  check_bool "strict cycle" false (sat [ Atom.lt vx vy; Atom.lt vy vz; Atom.lt vz vx ]);
  check_bool "nonstrict cycle" true (sat [ Atom.le vx vy; Atom.le vy vz; Atom.le vz vx ]);
  check_bool "eq chain" false
    (sat
       [ Atom.eq vx (Linexpr.add vy (n 1)); Atom.eq vy (Linexpr.add vz (n 1));
         Atom.eq vz (n 5); Atom.eq vx (n 8) ]);
  check_bool "sum corner" true
    (sat [ Atom.le (Linexpr.add vx vy) (n 4); Atom.ge vx (n 2); Atom.ge vy (n 2) ]);
  check_bool "sum over" false
    (sat [ Atom.le (Linexpr.add vx vy) (n 4); Atom.ge vx (n 2); Atom.ge vy (n 3) ]);
  check_bool "const false" false (sat [ Atom.ff ]);
  (* a model is produced and satisfies the constraints up to epsilon *)
  match Simplex.solve [ Atom.lt vx vy; Atom.le vy (n 3) ] with
  | None -> Alcotest.fail "should be sat"
  | Some asst ->
      let value v = try List.assoc v asst with Not_found -> Simplex.Qeps.zero in
      check_bool "x < y in the model" true
        (Simplex.Qeps.compare (value x) (value y) < 0)

let test_pivot_limit () =
  (* needs one pivot per lower-bounded variable: 2 pivots total, so a
     budget of 1 must trip *)
  let atoms = [ Atom.ge vx (n 1); Atom.ge vy (n 1); Atom.le (Linexpr.add vx vy) (n 10) ] in
  check_bool "fits under the default budget" true (Simplex.is_sat atoms);
  (match Simplex.with_pivot_limit 1 (fun () -> Simplex.is_sat atoms) with
  | exception Simplex.Pivot_limit { pivots } ->
      check_int "budget spent when raising" 1 pivots
  | _ -> Alcotest.fail "expected Pivot_limit");
  (* the limit is restored on the way out *)
  check_bool "limit restored after with_pivot_limit" true (Simplex.is_sat atoms);
  (* single-pivot systems still decide under budget 1 *)
  check_bool "one pivot fits in budget 1" true
    (Simplex.with_pivot_limit 1 (fun () -> Simplex.is_sat [ Atom.ge vx (n 1) ]))

let test_pivot_limit_fm_fallback () =
  (* pin the exact tier: the interval box decides unsat_c outright and
     would keep the second solve from ever tripping the pivot budget *)
  Interval.with_tier false @@ fun () ->
  Memo.clear_all ();
  Solver_stats.reset ();
  (* fresh conjunctions (constants unused elsewhere) so the sat memo can't
     already hold an answer computed without the tiny budget *)
  let sat_c =
    conj [ Atom.ge vx (n 101); Atom.ge vy (n 102); Atom.le (Linexpr.add vx vy) (n 1000) ]
  in
  let unsat_c =
    conj [ Atom.ge vx (n 103); Atom.ge vy (n 104); Atom.le (Linexpr.add vx vy) (n 5) ]
  in
  let r_sat, r_unsat =
    Simplex.with_pivot_limit 1 (fun () -> (Conj.is_sat sat_c, Conj.is_sat unsat_c))
  in
  check_bool "FM fallback: sat" true r_sat;
  check_bool "FM fallback: unsat" false r_unsat;
  let s = Solver_stats.snapshot () in
  check_int "both limit hits counted" 2 s.Solver_stats.pivot_limit_hits;
  (* the fallback answers were memoized like any other *)
  check_bool "memoized sat answer" true (Conj.is_sat sat_c);
  check_bool "memoized unsat answer" false (Conj.is_sat unsat_c);
  check_int "memo hits add no further limit hits" 2
    (Solver_stats.snapshot ()).Solver_stats.pivot_limit_hits

let test_qeps_order () =
  let open Simplex.Qeps in
  let one = of_rat Q.one in
  let one_minus_eps = { re = Q.one; eps = Q.minus_one } in
  check_bool "1 - eps < 1" true (compare one_minus_eps one < 0);
  check_bool "1 - eps > 0.999" true
    (compare one_minus_eps (of_rat (Q.of_ints 999 1000)) > 0);
  check_bool "scale flips sign" true
    (compare (scale Q.minus_one one_minus_eps) zero < 0)

(* the key property: simplex and Fourier-Motzkin agree on satisfiability *)
let bigger_conj_gen =
  QCheck.Gen.(map (fun l -> l) (list_size (int_range 0 8) atom_gen))

let prop_simplex_agrees_fm =
  QCheck.Test.make ~name:"simplex agrees with Fourier-Motzkin" ~count:2000
    (QCheck.make bigger_conj_gen) (fun atoms ->
      (* Conj.is_sat now uses simplex itself; compare against the
         Fourier-Motzkin eliminator directly: projecting onto no variables
         yields the empty (true) conjunction iff satisfiable *)
      let fm_sat = Conj.is_tt (Conj.project ~keep:Var.Set.empty (Conj.of_list atoms)) in
      Simplex.is_sat atoms = fm_sat)

let prop_simplex_model_satisfies =
  QCheck.Test.make ~name:"simplex models satisfy non-strict atoms" ~count:500
    (QCheck.make bigger_conj_gen) (fun atoms ->
      match Simplex.solve atoms with
      | None -> QCheck.assume_fail ()
      | Some asst ->
          (* at eps = 0 all non-strict constraints must hold exactly *)
          let env v =
            match List.assoc_opt v asst with
            | Some q -> Q.add q.Simplex.Qeps.re (Q.mul (Q.of_ints 1 1000000) q.Simplex.Qeps.eps)
            | None -> Q.zero
          in
          List.for_all
            (fun (a : Atom.t) ->
              match a.Atom.op with
              | Atom.Le | Atom.Eq ->
                  (* evaluate with tiny epsilon; non-strict atoms must hold
                     for every sufficiently small eps, in particular this one
                     if coefficients are moderate *)
                  eval_atom (List.fold_left (fun m v -> Var.Map.add v (env v) m) Var.Map.empty
                               (Var.Set.elements (Atom.vars a))) a
              | Atom.Lt -> true)
            atoms)

let prop_cset_or_is_union =
  QCheck.Test.make ~name:"cset or is pointwise union" ~count:200
    (QCheck.make QCheck.Gen.(triple conj_gen conj_gen point_gen)) (fun (a, b, env) ->
      let u = Cset.or_ (Cset.of_conj a) (Cset.of_conj b) in
      eval_cset env u = (eval_conj env a || eval_conj env b))

let prop_cset_and_is_intersection =
  QCheck.Test.make ~name:"cset and is pointwise intersection" ~count:200
    (QCheck.make QCheck.Gen.(triple conj_gen conj_gen point_gen)) (fun (a, b, env) ->
      let u = Cset.and_ (Cset.of_conj a) (Cset.of_conj b) in
      eval_cset env u = (eval_conj env a && eval_conj env b))

let prop_negate_conj_complement =
  QCheck.Test.make ~name:"negate_conj is pointwise complement" ~count:200
    (QCheck.make QCheck.Gen.(pair conj_gen point_gen)) (fun (c, env) ->
      eval_cset env (Cset.negate_conj c) = not (eval_conj env c))

let prop_interval_transparent =
  (* the interval fast tier never changes a decision-procedure result or a
     pruned cset, only how it is computed (fresh caches on both sides) *)
  QCheck.Test.make ~name:"interval tier is result-transparent" ~count:300
    (QCheck.make QCheck.Gen.(triple conj_gen conj_gen conj_gen)) (fun (a, b, c) ->
      let run on =
        Interval.with_tier on (fun () ->
            Memo.with_caches true (fun () ->
                let sat = Conj.is_sat a in
                let imp = Conj.implies a b in
                let cs = Cset.or_ (Cset.of_disjuncts [ a; b ]) (Cset.of_conj c) in
                let ci = Cset.conj_implies a (Cset.of_disjuncts [ b; c ]) in
                (sat, imp, Cset.to_string cs, ci)))
      in
      run true = run false)

(* ----- hash-consing and memoization ----- *)

let test_hashcons_interning () =
  (* equal atoms are the same node *)
  check_bool "atoms interned" true (Atom.le vx (n 4) == Atom.le vx (n 4));
  check_bool "atom ids equal" true (Atom.id (Atom.le vx (n 4)) = Atom.id (Atom.le vx (n 4)));
  (* conjunctions canonicalize (sort + dedup) before interning, so atom
     order and duplicates don't matter *)
  let a = Atom.le vx (n 4) and b = Atom.lt vy vx in
  let c1 = Conj.of_list [ a; b ] and c2 = Conj.of_list [ b; a; b ] in
  check_bool "conjs interned" true (c1 == c2);
  check_int "conj ids equal" (Conj.id c1) (Conj.id c2);
  check_bool "distinct conjs distinct" false (c1 == Conj.of_list [ a ]);
  (* interning makes structural equality physical *)
  check_bool "equal is physical" true (Conj.equal c1 c2)

let total_entries () =
  List.fold_left (fun acc (s : Memo.table_stats) -> acc + s.Memo.entries) 0 (Memo.stats ())

let test_memo_hit_counting () =
  (* pin the exact tier so the hits/misses counted here are the memoized
     decision procedures', not the interval env cache's *)
  Interval.with_tier false @@ fun () ->
  Memo.clear_all ();
  Solver_stats.reset ();
  let c = Conj.of_list [ Atom.le vx (n 2); Atom.le vy vx ] in
  let d = Conj.of_list [ Atom.le vx (n 5) ] in
  check_bool "implies holds" true (Conj.implies c d);
  let s1 = Solver_stats.snapshot () in
  check_bool "first query misses" true (Solver_stats.total_misses s1 > 0);
  check_bool "implies holds again" true (Conj.implies c d);
  let s2 = Solver_stats.snapshot () in
  check_bool "repeat is a cache hit" true
    (Solver_stats.total_hits s2 > Solver_stats.total_hits s1);
  check_int "repeat adds no misses" (Solver_stats.total_misses s1)
    (Solver_stats.total_misses s2);
  check_int "raw counter sees both entries" 2 s2.Solver_stats.implies_checks;
  check_bool "hit rate nonzero" true (Solver_stats.hit_rate s2 > 0.0)

let test_memo_clear_all () =
  Interval.with_tier false @@ fun () ->
  Memo.clear_all ();
  Solver_stats.reset ();
  let c = Conj.of_list [ Atom.le vx (n 2); Atom.le vy vx ] in
  let d = Conj.of_list [ Atom.le vx (n 5) ] in
  ignore (Conj.implies c d);
  check_bool "entries cached" true (total_entries () > 0);
  Memo.clear_all ();
  check_int "clear_all drops every entry" 0 (total_entries ());
  let misses_before = Solver_stats.total_misses (Solver_stats.snapshot ()) in
  ignore (Conj.implies c d);
  check_bool "recompute after clear is a miss" true
    (Solver_stats.total_misses (Solver_stats.snapshot ()) > misses_before)

let test_memo_with_caches_off () =
  Interval.with_tier false @@ fun () ->
  let c = Conj.of_list [ Atom.le vx (n 2); Atom.le vy vx ] in
  let d = Conj.of_list [ Atom.le vx (n 5) ] in
  let unsat = Conj.of_list [ Atom.le vx (n 0); Atom.le (n 1) vx ] in
  let cached = (Conj.implies c d, Conj.is_sat unsat, Conj.is_sat c) in
  let uncached =
    Memo.with_caches false (fun () ->
        check_int "fresh state on entry" 0 (total_entries ());
        let r = (Conj.implies c d, Conj.is_sat unsat, Conj.is_sat c) in
        check_int "disabled caches stay empty" 0 (total_entries ());
        r)
  in
  check_bool "caches change nothing but speed" true (cached = uncached);
  check_bool "enabled restored" true !Memo.enabled;
  check_int "fresh state on exit" 0 (total_entries ())

(* ----- the interval fast tier ----- *)

let itv_sat atoms =
  let c = conj atoms in
  Interval.sat ~id:(Conj.id c) (Conj.to_list c)

let itv_implies_atom atoms a =
  let c = conj atoms in
  Interval.implies_atom ~id:(Conj.id c) (Conj.to_list c) a

let itv_disjoint atoms atoms' =
  let c = conj atoms and c' = conj atoms' in
  Interval.disjoint ~id1:(Conj.id c) (Conj.to_list c) ~id2:(Conj.id c') (Conj.to_list c')

let test_interval_verdicts () =
  (* satisfiability: box verdicts agree with the exact answers above *)
  check_bool "bounded sat box" true (itv_sat [ Atom.ge vx (n 0); Atom.le vx (n 4) ] = Interval.True);
  check_bool "empty box" true (itv_sat [ Atom.le vx (n 0); Atom.ge vx (n 1) ] = Interval.False);
  check_bool "strictly empty box" true
    (itv_sat [ Atom.lt vx (n 1); Atom.ge vx (n 1) ] = Interval.False);
  check_bool "point box with equality" true (itv_sat [ Atom.eq vx (n 5) ] = Interval.True);
  (* one-unknown propagation through a two-variable atom *)
  check_bool "propagated empty box" true
    (itv_sat [ Atom.le (Linexpr.add vx vy) (n 4); Atom.ge vx (n 2); Atom.ge vy (n 3) ]
    = Interval.False);
  check_bool "propagated sat box" true
    (itv_sat [ Atom.le (Linexpr.add vx vy) (n 4); Atom.ge vx (n 2); Atom.ge vy (n 2) ]
    = Interval.True);
  (* purely relational conjunctions are beyond the box: fall through *)
  check_bool "relational cycle is Unknown" true
    (itv_sat [ Atom.le vx vy; Atom.le vy vz; Atom.le vz vx ] = Interval.Unknown);
  (* entailment and refutation *)
  check_bool "box entails the weaker bound" true
    (itv_implies_atom [ Atom.le vx (n 2); Atom.le vy vx ] (Atom.le vx (n 5)) = Interval.True);
  check_bool "box refutes the contradicted bound" true
    (itv_implies_atom [ Atom.le vx (n 2) ] (Atom.ge vx (n 3)) = Interval.False);
  check_bool "relational goal is Unknown" true
    (itv_implies_atom [ Atom.le vx (n 2) ] (Atom.le vx vy) = Interval.Unknown);
  (* pairwise box disjointness *)
  check_bool "separated intervals" true (itv_disjoint [ Atom.le vx (n 1) ] [ Atom.ge vx (n 5) ]);
  check_bool "touching closed intervals meet" false
    (itv_disjoint [ Atom.le vx (n 2) ] [ Atom.ge vx (n 2) ]);
  check_bool "touching open intervals are disjoint" true
    (itv_disjoint [ Atom.lt vx (n 2) ] [ Atom.ge vx (n 2) ]);
  check_bool "different variables never separate" false
    (itv_disjoint [ Atom.le vx (n 1) ] [ Atom.ge vy (n 5) ])

let cache_entries (s : Solver_stats.t) name =
  List.fold_left
    (fun acc (t : Memo.table_stats) -> if t.Memo.name = name then acc + t.Memo.entries else acc)
    0 s.Solver_stats.caches

let test_interval_fast_paths () =
  Interval.with_tier true @@ fun () ->
  Memo.clear_all ();
  Solver_stats.reset ();
  let c = conj [ Atom.ge vx (n 0); Atom.le vx (n 4) ] in
  let u = conj [ Atom.le vx (n 0); Atom.ge vx (n 1) ] in
  check_bool "tier decides sat" true (Conj.is_sat c);
  check_bool "tier decides unsat" false (Conj.is_sat u);
  let s = Solver_stats.snapshot () in
  check_int "both decided by the tier" 2 s.Solver_stats.interval_sat_hits;
  check_int "no simplex run" 0 s.Solver_stats.simplex_runs;
  check_int "tier booleans land in the memo" 2 (cache_entries s "conj_is_sat");
  check_bool "envs were built" true (s.Solver_stats.interval_env_builds > 0);
  (* warm repeat: a memo lookup, no further tier work *)
  check_bool "memoized repeat" true (Conj.is_sat c);
  check_int "no extra tier hit on the repeat" 2
    (Solver_stats.snapshot ()).Solver_stats.interval_sat_hits;
  (* a relational conjunction bails to the exact tier *)
  let r = conj [ Atom.le vx vy; Atom.le vy vz; Atom.le vz vx ] in
  check_bool "exact tier decides the bail" true (Conj.is_sat r);
  let s2 = Solver_stats.snapshot () in
  check_bool "bail counted" true (s2.Solver_stats.interval_bails > 0);
  check_bool "simplex ran on the bail" true (s2.Solver_stats.simplex_runs > 0)

(* interval-tier hits and memo hits never double-count: the cold query a
   box decides is one interval hit (the boolean is stored as a fresh memo
   entry), the warm repeat is one memo hit and no further tier work — one
   counter per query, and the exact procedures never run *)
let test_interval_memo_hygiene () =
  Interval.with_tier true @@ fun () ->
  Memo.clear_all ();
  Solver_stats.reset ();
  let c = conj [ Atom.le vx (n 2); Atom.le vy (n 1) ] in
  let d = conj [ Atom.le vx (n 5) ] in
  check_bool "implies holds" true (Conj.implies c d);
  check_bool "implies holds on repeat" true (Conj.implies c d);
  let s = Solver_stats.snapshot () in
  check_int "one tier hit (the cold query)" 1 s.Solver_stats.interval_implies_hits;
  check_int "raw counter still sees both entries" 2 s.Solver_stats.implies_checks;
  check_int "tier boolean became one memo entry" 1 (cache_entries s "conj_implies");
  check_int "no per-atom entries (tier decided first)" 0 (cache_entries s "conj_implies_atom");
  check_int "no conj_is_sat entries" 0 (cache_entries s "conj_is_sat");
  check_bool "env cache populated" true (cache_entries s "interval_env" > 0);
  let memo_hits name =
    List.fold_left
      (fun acc (t : Memo.table_stats) -> if t.Memo.name = name then acc + t.Memo.hits else acc)
      0 s.Solver_stats.caches
  in
  check_int "warm repeat was one memo hit" 1 (memo_hits "conj_implies");
  (* exactly one counter fired per query: 1 interval hit + 1 memo hit = 2 checks *)
  check_int "no double counting" s.Solver_stats.implies_checks
    (s.Solver_stats.interval_implies_hits + memo_hits "conj_implies");
  check_int "simplex never ran" 0 s.Solver_stats.simplex_runs

let test_cset_prune_multi () =
  (* three disjuncts: (0<=X<=1) | (0<=X<=3) | (5<=X<=6); the first is
     subsumed by the second, the third is box-disjoint from both *)
  let d1 = conj [ Atom.ge vx (n 0); Atom.le vx (n 1) ] in
  let d2 = conj [ Atom.ge vx (n 0); Atom.le vx (n 3) ] in
  let d3 = conj [ Atom.ge vx (n 5); Atom.le vx (n 6) ] in
  let check_pruned label cs =
    check_int (label ^ ": two disjuncts survive") 2 (Cset.num_disjuncts cs);
    check_bool (label ^ ": subsumed disjunct gone") false
      (List.exists (Conj.equal d1) (Cset.disjuncts cs));
    check_bool (label ^ ": incomparable pair kept") true
      (List.exists (Conj.equal d2) (Cset.disjuncts cs)
      && List.exists (Conj.equal d3) (Cset.disjuncts cs))
  in
  Memo.clear_all ();
  Solver_stats.reset ();
  let pruned on =
    Interval.with_tier on (fun () ->
        Cset.or_ (Cset.of_disjuncts [ d1; d2 ]) (Cset.of_conj d3))
  in
  let with_on = pruned true in
  check_bool "disjoint prefilter fired" true
    ((Solver_stats.snapshot ()).Solver_stats.interval_disjoint_hits > 0);
  let with_off = pruned false in
  check_pruned "tier on" with_on;
  check_pruned "tier off" with_off;
  check_bool "tier changes nothing" true (Cset.equal with_on with_off);
  (* a 2-disjunct set of incomparable disjuncts survives prune intact *)
  check_int "incomparable pair intact" 2
    (Cset.num_disjuncts (Cset.or_ (Cset.of_conj d2) (Cset.of_conj d3)));
  (* conj_implies bails early when the left side is box-disjoint from every
     disjunct: no DNF residue is built *)
  Solver_stats.reset ();
  let far = conj [ Atom.ge vx (n 10); Atom.le vx (n 11) ] in
  Interval.with_tier true (fun () ->
      check_bool "disjoint conj_implies is false" false
        (Cset.conj_implies far (Cset.of_disjuncts [ d1; d3 ])));
  check_bool "early bail counted" true
    ((Solver_stats.snapshot ()).Solver_stats.interval_disjoint_hits > 0);
  Interval.with_tier false (fun () ->
      check_bool "exact tier agrees" false
        (Cset.conj_implies far (Cset.of_disjuncts [ d1; d3 ])))

(* ----- the integer domain: tightening, Omega elimination, B&B ----- *)

let scale2 e = Linexpr.scale (Q.of_int 2) e
let scale3 e = Linexpr.scale (Q.of_int 3) e
let parity_atom = Atom.eq (scale2 vx) (Linexpr.add (scale2 vy) (n 1))

let test_ztighten_rules () =
  (* strict bounds close: X < 3 ↦ X ≤ 2 *)
  check_bool "strict closes" true
    (Atom.equal (Zsolve.tighten_atom (Atom.lt vx (n 3))) (Atom.le vx (n 2)));
  (* constants round through the coefficient gcd: 2X ≤ 5 ↦ X ≤ 2 *)
  check_bool "gcd rounding" true
    (Atom.equal (Zsolve.tighten_atom (Atom.le (scale2 vx) (n 5))) (Atom.le vx (n 2)));
  (* fractional inputs integerize first: (1/2)X ≤ 3/4 ↦ X ≤ 1 *)
  check_bool "fractional rounding" true
    (Atom.equal
       (Zsolve.tighten_atom
          (Atom.le
             (Linexpr.of_terms [ (Q.of_ints 1 2, x) ] Q.zero)
             (Linexpr.of_terms [] (Q.of_ints 3 4))))
       (Atom.le vx (n 1)));
  (* an equality whose coefficient gcd does not divide the constant refutes *)
  check_bool "parity equality refutes" true
    (Atom.equal (Zsolve.tighten_atom parity_atom) Atom.ff);
  (* dividing equalities stay: 2X = 2Y + 4 keeps its solutions *)
  let even = Atom.eq (scale2 vx) (Linexpr.add (scale2 vy) (n 4)) in
  check_bool "dividing equality kept" false (Atom.equal (Zsolve.tighten_atom even) Atom.ff);
  (* ground atoms come back physically unchanged *)
  let ground = Atom.lt (n 0) (n 1) in
  check_bool "ground untouched" true (Zsolve.tighten_atom ground == ground);
  (* and the Conj-level sweep refutes the whole conjunction *)
  check_bool "ztighten to ff" true (Conj.equal (Conj.ztighten (conj [ parity_atom ])) Conj.ff)

let test_zsat_basics () =
  (* 2X = 2Y + 1: rationally satisfiable, no integer solution *)
  check_bool "parity sat over Q" true (Simplex.is_sat [ parity_atom ]);
  check_bool "parity unsat via Omega" false (Zsolve.is_sat [ parity_atom ]);
  check_bool "parity unsat via B&B" false (Zsolve.is_sat_bb [ parity_atom ]);
  (* the point X = 1/2: nonempty over Q, empty over ℤ *)
  let half = [ Atom.ge (scale2 vx) (n 1); Atom.le (scale2 vx) (n 1) ] in
  check_bool "half-point sat over Q" true (Simplex.is_sat half);
  check_bool "half-point unsat over Z" false (Zsolve.is_sat half);
  (* [2/3, 4/3] contains the integer 1; [2/3, 5/6] contains none *)
  check_bool "unit-width interval sat" true
    (Zsolve.is_sat [ Atom.ge (scale3 vx) (n 2); Atom.le (scale3 vx) (n 4) ]);
  let thin = [ Atom.ge (Linexpr.scale (Q.of_int 6) vx) (n 4); Atom.le (Linexpr.scale (Q.of_int 6) vx) (n 5) ] in
  check_bool "thin interval sat over Q" true (Simplex.is_sat thin);
  check_bool "thin interval unsat over Z" false (Zsolve.is_sat thin);
  check_bool "thin interval unsat via B&B" false (Zsolve.is_sat_bb thin);
  (* a two-variable equality with a Bézout solution: 3X + 5Y = 1 *)
  check_bool "bezout sat" true
    (Zsolve.is_sat [ Atom.eq (Linexpr.add (scale3 vx) (Linexpr.scale (Q.of_int 5) vy)) (n 1) ]);
  (* Conj.is_sat routes through Zsolve exactly when the domain is Z *)
  Memo.with_caches true @@ fun () ->
  let c = conj half in
  check_bool "Conj.is_sat over Q" true (Conj.is_sat c);
  check_bool "Conj.is_sat over Z" false
    (Cdomain.with_domain Cdomain.Z (fun () -> Conj.is_sat c))

let test_int_counters () =
  Memo.with_caches true @@ fun () ->
  Solver_stats.reset ();
  let half = conj [ Atom.ge (scale2 vx) (n 1); Atom.le (scale2 vx) (n 1) ] in
  check_bool "half-point unsat, tier off" false
    (Cdomain.with_domain Cdomain.Z (fun () ->
         Interval.with_tier false (fun () -> Conj.is_sat half)));
  let st = Solver_stats.snapshot () in
  check_bool "sat checks counted" true (st.Solver_stats.int_sat_checks >= 1);
  check_bool "tightened atoms counted" true (st.Solver_stats.int_tightened_atoms >= 2)

(* satellite: interval-tier verdicts on integer-tightened atoms must agree
   with the exact integer procedures — endpoint-touching cases where the
   rational box verdict and the ℤ verdict genuinely differ *)

let test_interval_z_verdicts () =
  let zsat atoms = Cdomain.with_domain Cdomain.Z (fun () -> itv_sat atoms) in
  let half = [ Atom.ge (scale2 vx) (n 1); Atom.le (scale2 vx) (n 1) ] in
  check_bool "half-point box over Q" true (itv_sat half = Interval.True);
  check_bool "half-point box rounds empty over Z" true (zsat half = Interval.False);
  (* the open interval (2, 3): sat over Q, no integer inside *)
  let gap = [ Atom.gt vx (n 2); Atom.lt vx (n 3) ] in
  check_bool "open unit gap over Q" true (itv_sat gap = Interval.True);
  check_bool "open unit gap empty over Z" true (zsat gap = Interval.False);
  (* touching an integer endpoint survives the rounding *)
  check_bool "integer endpoint survives" true
    (zsat [ Atom.ge (scale2 vx) (n 4); Atom.le vx (n 2) ] = Interval.True);
  check_bool "interval containing an integer survives" true
    (zsat [ Atom.ge (scale3 vx) (n 2); Atom.le (scale3 vx) (n 4) ] = Interval.True);
  (* every definite verdict above matches the exact integer answer *)
  List.iter
    (fun (label, atoms) ->
      match zsat atoms with
      | Interval.Unknown -> ()
      | v ->
          check_bool (label ^ ": box verdict matches exact Z") true
            ((v = Interval.True) = Zsolve.is_sat atoms))
    [
      ("half", half);
      ("gap", gap);
      ("endpoint", [ Atom.ge (scale2 vx) (n 4); Atom.le vx (n 2) ]);
      ("unit-width", [ Atom.ge (scale3 vx) (n 2); Atom.le (scale3 vx) (n 4) ]);
    ]

let test_z_tier_endpoints () =
  (* tier on and tier off agree with Zsolve through Conj.is_sat under Z *)
  let cases =
    [
      ("half-point", [ Atom.ge (scale2 vx) (n 1); Atom.le (scale2 vx) (n 1) ], false);
      ("open gap", [ Atom.gt vx (n 2); Atom.lt vx (n 3) ], false);
      ("endpoint", [ Atom.ge (scale2 vx) (n 4); Atom.le vx (n 2) ], true);
      ("unit-width", [ Atom.ge (scale3 vx) (n 2); Atom.le (scale3 vx) (n 4) ], true);
      ("parity", [ parity_atom ], false);
    ]
  in
  List.iter
    (fun (label, atoms, expected) ->
      check_bool (label ^ ": exact") expected
        (Cdomain.with_domain Cdomain.Z (fun () -> Zsolve.is_sat atoms));
      let via tier =
        Cdomain.with_domain Cdomain.Z (fun () ->
            Interval.with_tier tier (fun () ->
                Memo.with_caches true (fun () -> Conj.is_sat (conj atoms))))
      in
      check_bool (label ^ ": tier on") expected (via true);
      check_bool (label ^ ": tier off") expected (via false))
    cases

(* ----- integer-domain properties ----- *)

let int_point_gen =
  QCheck.Gen.(
    map
      (fun l ->
        List.fold_left2
          (fun acc v q -> Var.Map.add v (Q.of_int q) acc)
          Var.Map.empty (Array.to_list vars_pool) l)
      (list_repeat 4 (int_range (-8) 8)))

let prop_ztighten_preserves_z_points =
  QCheck.Test.make ~name:"tighten_atom preserves integer solutions" ~count:500
    (QCheck.make QCheck.Gen.(pair atom_gen int_point_gen)) (fun (a, env) ->
      eval_atom env a = eval_atom env (Zsolve.tighten_atom a))

let prop_z_sound =
  QCheck.Test.make ~name:"integer point satisfying conj => Z-sat" ~count:500
    (QCheck.make QCheck.Gen.(pair conj_gen int_point_gen)) (fun (c, env) ->
      QCheck.assume (eval_conj env c);
      Zsolve.is_sat (Conj.to_list c))

(* pure branch-and-bound explores the whole von zur Gathen box when the
   system is unbounded, so the cross-check generator pins every variable
   inside an explicit box; the fuzz harness's solver-pool oracle covers
   the unbounded space through the budgeted path *)
let boxed_z_gen =
  QCheck.Gen.(
    let coeff = map Q.of_int (int_range (-3) 3) in
    let term = map2 (fun c i -> (c, vars_pool.(i))) coeff (int_range 0 1) in
    let expr =
      map2
        (fun ts k -> Linexpr.of_terms ts (Q.of_int k))
        (list_size (int_range 1 2) term) (int_range (-5) 5)
    in
    let atom =
      map2
        (fun e op -> Atom.make e (match op with 0 -> Atom.Le | 1 -> Atom.Lt | _ -> Atom.Eq))
        expr (int_range 0 2)
    in
    map
      (fun atoms ->
        Atom.ge vx (n (-6)) :: Atom.le vx (n 6) :: Atom.ge vy (n (-6)) :: Atom.le vy (n 6)
        :: atoms)
      (list_size (int_range 0 4) atom))

let prop_omega_bb_agree =
  QCheck.Test.make ~name:"Omega elimination agrees with branch-and-bound" ~count:500
    (QCheck.make boxed_z_gen) (fun atoms ->
      Zsolve.is_sat atoms = Zsolve.is_sat_bb atoms)

let prop_z_relaxation =
  QCheck.Test.make ~name:"Z-sat implies Q-sat (relaxation soundness)" ~count:500
    (QCheck.make bigger_conj_gen) (fun atoms ->
      (not (Zsolve.is_sat atoms)) || Simplex.is_sat atoms)

let prop_z_tier_transparent =
  QCheck.Test.make ~name:"interval tier is result-transparent over Z" ~count:300
    (QCheck.make bigger_conj_gen) (fun atoms ->
      Cdomain.with_domain Cdomain.Z (fun () ->
          let run tier =
            Interval.with_tier tier (fun () ->
                Memo.with_caches true (fun () -> Conj.is_sat (Conj.of_list atoms)))
          in
          run true = run false))

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "constr"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basics" `Quick test_linexpr_basics;
          Alcotest.test_case "subst" `Quick test_linexpr_subst;
          Alcotest.test_case "integerize" `Quick test_linexpr_integerize;
          Alcotest.test_case "rename" `Quick test_linexpr_rename;
        ] );
      ( "atom",
        [
          Alcotest.test_case "normalization" `Quick test_atom_normalization;
          Alcotest.test_case "negate" `Quick test_atom_negate;
        ] );
      ( "conj",
        [
          Alcotest.test_case "sat basics" `Quick test_sat_basic;
          Alcotest.test_case "sat arithmetic chains" `Quick test_sat_arithmetic_chain;
          Alcotest.test_case "projection" `Quick test_project;
          Alcotest.test_case "projection equalities" `Quick test_project_equalities;
          Alcotest.test_case "implication" `Quick test_implies;
          Alcotest.test_case "simplify" `Quick test_simplify;
        ] );
      ( "cset",
        [
          Alcotest.test_case "basics" `Quick test_cset_basics;
          Alcotest.test_case "implication" `Quick test_cset_implies;
          Alcotest.test_case "conjunction" `Quick test_cset_and;
          Alcotest.test_case "disjointify" `Quick test_cset_disjointify;
          Alcotest.test_case "weaken_to_one" `Quick test_cset_weaken_to_one;
          Alcotest.test_case "tt/ff edge cases" `Quick test_cset_edge_cases;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "units" `Quick test_simplex_units;
          Alcotest.test_case "pivot limit" `Quick test_pivot_limit;
          Alcotest.test_case "pivot limit FM fallback" `Quick
            test_pivot_limit_fm_fallback;
          Alcotest.test_case "qeps ordering" `Quick test_qeps_order;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hash-consing interns" `Quick test_hashcons_interning;
          Alcotest.test_case "hit counting" `Quick test_memo_hit_counting;
          Alcotest.test_case "clear_all" `Quick test_memo_clear_all;
          Alcotest.test_case "with_caches off" `Quick test_memo_with_caches_off;
        ] );
      ( "interval",
        [
          Alcotest.test_case "verdicts" `Quick test_interval_verdicts;
          Alcotest.test_case "fast paths and counters" `Quick test_interval_fast_paths;
          Alcotest.test_case "memo hygiene" `Quick test_interval_memo_hygiene;
          Alcotest.test_case "cset prune multi-disjunct" `Quick test_cset_prune_multi;
        ] );
      ( "extra",
        [
          Alcotest.test_case "negate_conj" `Quick test_cset_negate_conj;
          Alcotest.test_case "cset projection" `Quick test_cset_project;
          Alcotest.test_case "equalities" `Quick test_equalities_everywhere;
          Alcotest.test_case "atom scaling" `Quick test_scaled_atom_normalization;
          Alcotest.test_case "unbounded directions" `Quick test_unbounded_directions;
        ] );
      ( "properties",
        qt
          [
            prop_simplex_agrees_fm;
            prop_simplex_model_satisfies;
            prop_cset_or_is_union;
            prop_cset_and_is_intersection;
            prop_negate_conj_complement;
            prop_interval_transparent;
            prop_sat_sound;
            prop_project_sound;
            prop_implies_sound;
            prop_negate_complement;
            prop_simplify_equiv;
            prop_disjointify_equiv;
            prop_weaken_sound;
          ] );
      ( "integer-domain",
        [
          Alcotest.test_case "tightening rules" `Quick test_ztighten_rules;
          Alcotest.test_case "Z satisfiability" `Quick test_zsat_basics;
          Alcotest.test_case "solver.int counters" `Quick test_int_counters;
          Alcotest.test_case "interval Z verdicts" `Quick test_interval_z_verdicts;
          Alcotest.test_case "tier endpoints over Z" `Quick test_z_tier_endpoints;
        ] );
      ( "integer-properties",
        qt
          [
            prop_ztighten_preserves_z_points;
            prop_z_sound;
            prop_omega_bb_agree;
            prop_z_relaxation;
            prop_z_tier_transparent;
          ] );
    ]
