(* Tests for the CQL program representation: terms, literals, rules,
   programs, substitution/unification, dependency graph and the parser. *)

open Cql_num
open Cql_constr
open Cql_datalog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ----- terms & literals ----- *)

let test_terms () =
  check_bool "var not ground" false (Term.is_ground (Term.var (Var.mk "X")));
  check_bool "sym ground" true (Term.is_ground (Term.sym "madison"));
  check_bool "num ground" true (Term.is_ground (Term.int 5));
  check_bool "num to_linexpr" true (Term.to_linexpr (Term.int 5) <> None);
  check_bool "sym no linexpr" true (Term.to_linexpr (Term.sym "a") = None);
  check_bool "const ordering" true (Term.compare (Term.int 1) (Term.sym "a") < 0)

let test_literals () =
  let l = Literal.canonical "p" 3 in
  check_int "canonical arity" 3 (Literal.arity l);
  check_str "canonical print" "p($1, $2, $3)" (Literal.to_string l);
  let f = Literal.fresh_args "p" 2 in
  check_int "fresh distinct" 2 (Var.Set.cardinal (Literal.vars f))

(* ----- unification ----- *)

let test_unify () =
  let x = Var.fresh "X" and y = Var.fresh "Y" in
  let l1 = Literal.make "p" [ Term.var x; Term.int 3 ] in
  let l2 = Literal.make "p" [ Term.sym "a"; Term.var y ] in
  (match Subst.unify l1 l2 with
  | None -> Alcotest.fail "should unify"
  | Some s ->
      check_bool "x bound to a" true (Term.equal (Subst.apply_term s (Term.var x)) (Term.sym "a"));
      check_bool "y bound to 3" true (Term.equal (Subst.apply_term s (Term.var y)) (Term.int 3)));
  (* clash *)
  check_bool "clash" true
    (Subst.unify (Literal.make "p" [ Term.int 1 ]) (Literal.make "p" [ Term.int 2 ]) = None);
  check_bool "pred mismatch" true
    (Subst.unify (Literal.make "p" [ Term.int 1 ]) (Literal.make "q" [ Term.int 1 ]) = None);
  check_bool "arity mismatch" true
    (Subst.unify (Literal.make "p" [ Term.int 1 ]) (Literal.make "p" [ Term.int 1; Term.int 2 ]) = None);
  (* chained variables: p(X, X) with p(Y, 5) binds both to 5 *)
  let l3 = Literal.make "p" [ Term.var x; Term.var x ] in
  let l4 = Literal.make "p" [ Term.var y; Term.int 5 ] in
  (match Subst.unify l3 l4 with
  | None -> Alcotest.fail "should unify"
  | Some s -> check_bool "x = 5 via y" true (Term.equal (Subst.apply_term s (Term.var x)) (Term.int 5)))

let test_subst_conj () =
  let x = Var.fresh "X" and y = Var.fresh "Y" in
  let c = Conj.of_list [ Atom.le (Linexpr.var x) (Linexpr.var y) ] in
  let s = Subst.of_bindings [ (y, Term.int 3) ] in
  let c' = Subst.apply_conj s c in
  check_bool "X <= 3" true (Conj.equiv c' (Conj.of_list [ Atom.le (Linexpr.var x) (Linexpr.of_int 3) ]));
  (* a symbol meeting arithmetic is unsatisfiable, not an exception *)
  let s_bad = Subst.of_bindings [ (y, Term.sym "a") ] in
  check_bool "symbol vs order atom is unsat" false (Conj.is_sat (Subst.apply_conj s_bad c));
  (* a pure equality between two symbol-bound variables is decided by
     symbol identity *)
  let eq = Conj.of_list [ Atom.eq (Linexpr.var x) (Linexpr.var y) ] in
  let s_same = Subst.of_bindings [ (x, Term.sym "a"); (y, Term.sym "a") ] in
  check_bool "same symbols: equality holds" true
    (Conj.is_tt (Subst.apply_conj s_same eq));
  let s_diff = Subst.of_bindings [ (x, Term.sym "a"); (y, Term.sym "b") ] in
  check_bool "distinct symbols: equality fails" false
    (Conj.is_sat (Subst.apply_conj s_diff eq));
  (* symbol = number is unsatisfiable *)
  let s_mixed = Subst.of_bindings [ (x, Term.sym "a"); (y, Term.int 3) ] in
  check_bool "symbol vs number is unsat" false (Conj.is_sat (Subst.apply_conj s_mixed eq))

(* ----- parser ----- *)

let flights_src =
  {|
% Example 1.1 of the paper
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
#query cheaporshort.
|}

let test_parse_flights () =
  let p = Parser.program_of_string flights_src in
  check_int "4 rules" 4 (List.length p.Program.rules);
  check_bool "query set" true (p.Program.query = Some "cheaporshort");
  check_bool "well-formed" true (Program.check p = Ok ());
  check_bool "range restricted" true (Program.is_range_restricted p);
  Alcotest.(check (list string)) "derived" [ "cheaporshort"; "flight" ] (Program.derived p);
  Alcotest.(check (list string)) "edb" [ "singleleg" ] (Program.edb p);
  check_int "flight arity" 4 (Program.arity p "flight");
  check_int "flight body occurrences" 4 (List.length (Program.body_occurrences p "flight"));
  (* r4's constraint part has the two equations *)
  let r4 = List.nth p.Program.rules 3 in
  check_int "r4 constraint atoms" 2 (Conj.size r4.Rule.cstr);
  check_str "r4 label" "r4" r4.Rule.label

let test_parse_expr_args () =
  (* head expression args are flattened: fib(N, X1+X2) *)
  let r = Parser.rule_of_string "fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2)." in
  check_bool "head args are vars" true (List.for_all Term.is_var r.Rule.head.Literal.args);
  (* three equations (head sum, N-1, N-2) plus N > 1 *)
  check_int "constraints" 4 (Conj.size r.Rule.cstr);
  check_int "body literals" 2 (List.length r.Rule.body)

let test_parse_query () =
  let p = Parser.program_of_string "p(X) :- b(X), X <= 3.\n?- p(X)." in
  (match p.Program.query with
  | Some q ->
      let rules = Program.rules_defining p q in
      check_int "one query rule" 1 (List.length rules)
  | None -> Alcotest.fail "no query");
  check_bool "well-formed" true (Program.check p = Ok ())

let test_parse_constraint_fact () =
  let facts = Parser.facts_of_string "p(X, 5; X <= 3).\nedge(a, b)." in
  check_int "two facts" 2 (List.length facts);
  let f = List.hd facts in
  check_bool "constraint captured" true
    (Conj.implies f.Rule.cstr
       (Conj.of_list [ Atom.le (Linexpr.var (List.hd (Var.Set.elements (Rule.head_vars f)))) (Linexpr.of_int 3) ])
     || Conj.size f.Rule.cstr >= 1)

let test_parse_numbers () =
  let r = Parser.rule_of_string "p(X) :- b(X), X <= 2.5, X >= 0." in
  check_int "two atoms" 2 (Conj.size r.Rule.cstr);
  (* decimal parsed exactly *)
  let c = Conj.of_list [ Atom.le (Linexpr.var (Var.mk "dummy")) (Linexpr.const (Rat.of_ints 5 2)) ] in
  ignore c;
  let r2 = Parser.rule_of_string "p(2.5)." in
  (match r2.Rule.head.Literal.args with
  | [ Term.C (Term.Num q) ] -> check_bool "2.5 exact" true (Rat.equal q (Rat.of_ints 5 2))
  | _ -> Alcotest.fail "expected numeric constant")

let test_parse_errors () =
  let fails s = match Parser.program_of_string s with exception Parser.Error _ -> true | _ -> false in
  check_bool "missing period" true (fails "p(X) :- b(X)");
  check_bool "unbalanced paren" true (fails "p(X :- b(X).");
  check_bool "sym in arith" true (fails "p(X) :- b(X), X <= a.");
  check_bool "nonlinear" true (fails "p(X) :- b(X), X * X <= 4.");
  check_bool "bad char" true (fails "p(X) @ b(X).")

(* error messages name the offending token and carry a position; these are
   regression tests for the old [assert false] paths *)
let test_parse_error_messages () =
  let msg_of s =
    match Parser.program_of_string s with
    | exception Parser.Error m -> m
    | _ -> Alcotest.fail ("expected a parse error for: " ^ s)
  in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  let check_msg label src needles =
    let m = msg_of src in
    check_bool (label ^ ": positioned") true (contains m "line 1, column");
    List.iter
      (fun needle ->
        check_bool
          (Printf.sprintf "%s: %S mentions %S" label m needle)
          true (contains m needle))
      needles
  in
  (* a number where a comparison operator belongs: names both sides *)
  check_msg "missing operator" "p(X) :- q(X), X + 1 5."
    [ "expected a comparison operator"; "number 5" ];
  (* bare variable as a body literal ends at '.' *)
  check_msg "bare variable" "p(X) :- q(X), X." [ "expected"; "'.'" ];
  (* EOF is described in words, not as a token dump *)
  check_msg "eof" "p(X) :- q(X)" [ "end of input" ];
  (* the offending identifier is quoted *)
  check_msg "ident in arithmetic" "p(X) :- q(X), X <= abc."
    [ "symbolic constant abc" ];
  (* directives check their argument shape *)
  check_msg "bad #query" "#query 5." [ "predicate name"; "number 5" ]

let test_pp_roundtrip () =
  let p = Parser.program_of_string flights_src in
  let p2 = Parser.program_of_string (Program.to_string p) in
  check_bool "pretty-print parses back equal" true (Program.equal_mod_renaming p p2)

(* the same round trip over every shipped example program, including the
   EDB files (facts parse as body-less rules), and once more through
   [Program.prettify] since that is what [cqlopt rewrite] prints *)
let test_pp_roundtrip_examples () =
  let dir =
    List.find Sys.file_exists [ "../examples/programs"; "examples/programs" ]
  in
  let read path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let files = Sys.readdir dir in
  Array.sort compare files;
  let checked = ref 0 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".cql" then begin
        let src = read (Filename.concat dir file) in
        if Filename.check_suffix file "_edb.cql" then begin
          let facts = Parser.facts_of_string src in
          let printed = String.concat "\n" (List.map Rule.to_string facts) in
          let facts2 = Parser.facts_of_string printed in
          check_bool (file ^ ": facts survive the round trip") true
            (List.for_all2 Rule.equal_mod_renaming facts facts2)
        end
        else begin
          let p = Parser.program_of_string src in
          let p2 = Parser.program_of_string (Program.to_string p) in
          check_bool (file ^ ": parses back equal") true (Program.equal_mod_renaming p p2);
          check_bool (file ^ ": query preserved") true (p.Program.query = p2.Program.query);
          let p3 = Parser.program_of_string (Program.to_string (Program.prettify p)) in
          check_bool (file ^ ": prettified parses back equal") true
            (Program.equal_mod_renaming p p3)
        end;
        incr checked
      end)
    files;
  check_bool "checked every example file" true (!checked >= 7)

(* ----- rule equality modulo renaming ----- *)

let test_equal_mod_renaming () =
  let r1 = Parser.rule_of_string "p(X, Y) :- q(X, Z), r(Z, Y), X <= 4." in
  let r2 = Parser.rule_of_string "p(A, B) :- r(C, B), q(A, C), A <= 4." in
  check_bool "same modulo names and order" true (Rule.equal_mod_renaming r1 r2);
  let r3 = Parser.rule_of_string "p(A, B) :- r(C, B), q(A, C), A <= 5." in
  check_bool "different constant" false (Rule.equal_mod_renaming r1 r3);
  let r4 = Parser.rule_of_string "p(A, B) :- r(C, B), q(C, A), A <= 4." in
  check_bool "different wiring" false (Rule.equal_mod_renaming r1 r4);
  (* constraints that are equivalent but written differently *)
  let r5 = Parser.rule_of_string "p(X) :- q(X), 2 * X <= 8." in
  let r6 = Parser.rule_of_string "p(Y) :- q(Y), Y <= 4." in
  check_bool "equivalent constraints" true (Rule.equal_mod_renaming r5 r6)

(* ----- dependency graph ----- *)

let test_depgraph () =
  let p =
    Parser.program_of_string
      {|
q(X, Y) :- a1(X, Y), X <= 4.
a1(X, Y) :- b1(X, Z), a2(Z, Y).
a2(X, Y) :- b2(X, Y).
a2(X, Y) :- b2(X, Z), a2(Z, Y).
#query q.
|}
  in
  let g = Depgraph.of_program p in
  check_bool "a2 self-recursive" true (Depgraph.same_scc g "a2" "a2");
  check_bool "a1 not recursive with a2" false (Depgraph.same_scc g "a1" "a2");
  let order = Depgraph.sccs_top_down g in
  let pos name =
    let rec go i = function
      | [] -> -1
      | scc :: rest -> if List.mem name scc then i else go (i + 1) rest
    in
    go 0 order
  in
  check_bool "query first" true (pos "q" < pos "a1");
  check_bool "a1 before a2" true (pos "a1" < pos "a2");
  check_bool "a2 before b2" true (pos "a2" < pos "b2")

let test_restrict_reachable () =
  let p =
    Parser.program_of_string
      {|
q(X) :- p(X).
p(X) :- b(X).
orphan(X) :- b(X).
#query q.
|}
  in
  let p' = Program.restrict_reachable p in
  check_int "orphan dropped" 2 (List.length p'.Program.rules);
  check_bool "orphan gone" true (not (Program.is_derived p' "orphan"))

let test_program_equal_mod_renaming () =
  let a = Parser.program_of_string "p(X) :- q(X).\nq(X) :- b(X), X <= 3." in
  let b = Parser.program_of_string "q(Y) :- b(Y), Y <= 3.\np(Z) :- q(Z)." in
  check_bool "rule order irrelevant" true (Program.equal_mod_renaming a b);
  let c = Parser.program_of_string "q(Y) :- b(Y), Y <= 3.\np(Z) :- b(Z)." in
  check_bool "different program" false (Program.equal_mod_renaming a c)


(* ----- additional parser/structure coverage ----- *)

let test_parse_negative_and_zero_arity () =
  let r = Parser.rule_of_string "p(-3, 0)." in
  (match r.Rule.head.Literal.args with
  | [ Term.C (Term.Num a); Term.C (Term.Num b) ] ->
      check_bool "-3" true (Rat.equal a (Rat.of_int (-3)));
      check_bool "0" true (Rat.equal b Rat.zero)
  | _ -> Alcotest.fail "expected numeric constants");
  let p = Parser.program_of_string "go :- e(X).\ndone :- go.\n#query done." in
  check_int "zero-arity preds" 2 (List.length (Program.derived p))

let test_parse_parenthesized_expr () =
  let r = Parser.rule_of_string "p(X) :- b(X, Y), X <= 2 * (Y + 1)." in
  check_int "one constraint" 1 (Conj.size r.Rule.cstr);
  (* X <= 2Y + 2 *)
  let x = List.hd (List.filter_map (function Term.V v -> Some v | _ -> None) r.Rule.head.Literal.args) in
  ignore x;
  check_bool "parses" true (List.length r.Rule.body = 1)

let test_parse_primed_predicates () =
  (* primed names produced by the rewriter parse back *)
  let p = Parser.program_of_string "flight'(X) :- b(X).\nq(X) :- flight'(X).\n#query q." in
  check_bool "flight' derived" true (Program.is_derived p "flight'")

let test_check_errors () =
  let p = Parser.program_of_string "p(X) :- e(X).\np(X, Y) :- e(X), e(Y)." in
  check_bool "arity clash detected" true (Program.check p <> Ok ());
  let p2 = Program.set_query "nosuch" (Parser.program_of_string "p(X) :- e(X).") in
  check_bool "missing query detected" true (Program.check p2 <> Ok ())

let test_prettify () =
  let r = Parser.rule_of_string "q(X) :- p1(X, Y), p2(Y), X + Y <= 6." in
  (* simulate ugly renaming *)
  let ugly = Rule.rename_apart (Rule.rename_apart r) in
  let pretty = Rule.prettify ugly in
  check_bool "semantics preserved" true (Rule.equal_mod_renaming r pretty);
  (* names are short again *)
  let ok_name v =
    let name = Cql_constr.Var.name v in
    not (String.contains name '\'')
  in
  check_bool "no primes left" true (Cql_constr.Var.Set.for_all ok_name (Rule.vars pretty))

let test_rename_predicate () =
  let p = Parser.program_of_string "q(X) :- a(X).\na(X) :- b(X).\n#query q." in
  let p' = Program.rename_predicate ~old_name:"a" ~new_name:"alpha" p in
  check_bool "head renamed" true (Program.is_derived p' "alpha");
  check_bool "body renamed" true (Program.body_occurrences p' "alpha" <> []);
  check_bool "old gone" false (Program.is_derived p' "a");
  (* renaming the query predicate follows it *)
  let p2 = Program.rename_predicate ~old_name:"q" ~new_name:"query0" p in
  check_bool "query follows" true (p2.Program.query = Some "query0")

let test_grounded_vars () =
  let r = Parser.rule_of_string "p(T, U) :- e(T1, T2), T = T1 + T2 + 30, U = T + V." in
  let g = Rule.grounded_vars r in
  (* the parser freshens clause variables (T becomes T'1): compare base names *)
  let base v =
    let s = Var.name v in
    match String.index_opt s '\'' with Some i -> String.sub s 0 i | None -> s
  in
  let has name = Cql_constr.Var.Set.exists (fun v -> base v = name) g in
  check_bool "T grounded via equality" true (has "T");
  check_bool "U not grounded (V free)" false (has "U");
  check_bool "not range restricted" false (Rule.is_range_restricted r)

let () =
  Alcotest.run "datalog"
    [
      ( "terms",
        [
          Alcotest.test_case "terms" `Quick test_terms;
          Alcotest.test_case "literals" `Quick test_literals;
        ] );
      ( "subst",
        [
          Alcotest.test_case "unify" `Quick test_unify;
          Alcotest.test_case "subst on constraints" `Quick test_subst_conj;
        ] );
      ( "parser",
        [
          Alcotest.test_case "flights program" `Quick test_parse_flights;
          Alcotest.test_case "expression arguments" `Quick test_parse_expr_args;
          Alcotest.test_case "query clause" `Quick test_parse_query;
          Alcotest.test_case "constraint facts" `Quick test_parse_constraint_fact;
          Alcotest.test_case "numbers" `Quick test_parse_numbers;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "error messages" `Quick test_parse_error_messages;
          Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
          Alcotest.test_case "pp roundtrip examples" `Quick test_pp_roundtrip_examples;
        ] );
      ( "rules",
        [
          Alcotest.test_case "equal mod renaming" `Quick test_equal_mod_renaming;
          Alcotest.test_case "program equal mod renaming" `Quick test_program_equal_mod_renaming;
        ] );
      ( "extra",
        [
          Alcotest.test_case "negatives and zero arity" `Quick test_parse_negative_and_zero_arity;
          Alcotest.test_case "parenthesized expressions" `Quick test_parse_parenthesized_expr;
          Alcotest.test_case "primed predicate names" `Quick test_parse_primed_predicates;
          Alcotest.test_case "check errors" `Quick test_check_errors;
          Alcotest.test_case "prettify" `Quick test_prettify;
          Alcotest.test_case "rename predicate" `Quick test_rename_predicate;
          Alcotest.test_case "grounded vars" `Quick test_grounded_vars;
        ] );
      ( "structure",
        [
          Alcotest.test_case "depgraph" `Quick test_depgraph;
          Alcotest.test_case "restrict reachable" `Quick test_restrict_reachable;
        ] );
    ]
