(* Tests for the indexed relation store (Cql_store): hash-index insert and
   probe, old/delta/full partition promotion, indexed subsumption, the join
   planner's bound-ness ordering, and cross-checks asserting the indexed
   engine computes exactly the same fact sets as the seed list-based path. *)

open Cql_num
open Cql_constr
open Cql_datalog
open Cql_eval
module Store = Cql_store.Store
module Planner = Cql_store.Planner

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Parser.program_of_string
let edb_of s = List.map Fact.of_fact_rule (Parser.facts_of_string s)
let fact_of s = Fact.of_fact_rule (Parser.rule_of_string s)
let ground2 p a b = Fact.ground p [ Term.Sym a; Term.Num (Rat.of_int b) ]

let lit pred args = Literal.make pred args

(* ----- index insert / probe ----- *)

let test_probe_indexed () =
  let s = Store.create () in
  Store.add s (ground2 "p" "a" 1);
  Store.add s (ground2 "p" "a" 2);
  Store.add s (ground2 "p" "b" 1);
  Store.advance s;
  (* bound first column *)
  let x = Term.var (Var.fresh "X") in
  check_int "p(a, X)" 2 (List.length (Store.probe s Store.Full (lit "p" [ Term.sym "a"; x ])));
  check_int "p(b, X)" 1 (List.length (Store.probe s Store.Full (lit "p" [ Term.sym "b"; x ])));
  (* bound second column *)
  check_int "p(X, 1)" 2 (List.length (Store.probe s Store.Full (lit "p" [ x; Term.int 1 ])));
  (* both columns bound: exact lookup *)
  check_int "p(a, 1)" 1
    (List.length (Store.probe s Store.Full (lit "p" [ Term.sym "a"; Term.int 1 ])));
  check_int "p(a, 9)" 0
    (List.length (Store.probe s Store.Full (lit "p" [ Term.sym "a"; Term.int 9 ])));
  (* no bound column: full scan *)
  check_int "p(X, Y)" 3
    (List.length (Store.probe s Store.Full (lit "p" [ x; Term.var (Var.fresh "Y") ])));
  (* unknown predicate *)
  check_int "q(X)" 0 (List.length (Store.probe s Store.Full (lit "q" [ x ])));
  let st = Store.stats s in
  check_bool "indexed probes counted" true (st.Store.indexed_probes >= 5);
  check_bool "scans counted" true (st.Store.scans >= 1);
  check_bool "facts skipped by indexing" true (st.Store.facts_skipped > 0)

let test_probe_wildcard_constraint_fact () =
  let s = Store.create () in
  Store.add s (fact_of "p(a, X; X <= 5).");
  Store.add s (ground2 "p" "a" 7);
  Store.advance s;
  (* a numeric probe cannot rule the unpinned fact out: the index returns it
     from the wildcard list and matches_literal keeps it *)
  let cands = Store.probe s Store.Full (lit "p" [ Term.sym "a"; Term.int 3 ]) in
  let rlit = lit "p" [ Term.sym "a"; Term.int 3 ] in
  let matching = List.filter (fun f -> Fact.matches_literal rlit f) cands in
  check_int "wildcard returned" 1 (List.length matching);
  check_bool "it is the constraint fact" true (not (Fact.is_ground (List.hd matching)))

let test_partition_promotion () =
  let s = Store.create () in
  let x = Term.var (Var.fresh "X") in
  let probe part = List.length (Store.probe s part (lit "e" [ Term.sym "a"; x ])) in
  Store.add s (ground2 "e" "a" 1);
  check_int "pending invisible" 0 (probe Store.Full);
  Store.advance s;
  check_int "delta after advance" 1 (probe Store.Delta);
  check_int "old empty" 0 (probe Store.Old);
  Store.add s (ground2 "e" "a" 2);
  Store.advance s;
  check_int "promoted to old" 1 (probe Store.Old);
  check_int "new delta" 1 (probe Store.Delta);
  check_int "full is both" 2 (probe Store.Full);
  Store.advance s;
  check_int "delta drained" 0 (probe Store.Delta);
  check_int "all old" 2 (probe Store.Old)

(* ----- subsumption via the store ----- *)

let test_ground_duplicate_hash () =
  let s = Store.create () in
  Store.add s (ground2 "p" "a" 1);
  let before = (Store.stats s).Store.subsumption_compared in
  check_bool "duplicate detected" true (Store.known_subsumes s (ground2 "p" "a" 1));
  check_int "without any comparison" before (Store.stats s).Store.subsumption_compared;
  check_bool "different value not subsumed" false (Store.known_subsumes s (ground2 "p" "a" 2));
  check_bool "different pattern not subsumed" false
    (Store.known_subsumes s (ground2 "p" "b" 1))

let test_back_subsumption () =
  let s = Store.create () in
  Store.add s (fact_of "p(X; X <= 3).");
  Store.advance s;
  check_int "narrower stored" 1 (List.length (Store.facts s "p"));
  (* the wider fact subsumes the stored narrower one *)
  check_bool "wider not subsumed" false (Store.known_subsumes s (fact_of "p(X; X <= 5)."));
  Store.add s (fact_of "p(X; X <= 5).");
  check_int "narrower dropped" 1 (List.length (Store.facts s "p"));
  check_bool "narrower now subsumed" true (Store.known_subsumes s (fact_of "p(X; X <= 3)."));
  check_bool "ground instance subsumed" true
    (Store.known_subsumes s (Fact.ground "p" [ Term.Num (Rat.of_int 4) ]));
  check_int "one live fact" 1 (Store.total s)

let test_subsumption_avoided_stat () =
  let s = Store.create () in
  for i = 1 to 20 do
    Store.add s (ground2 "p" "a" i)
  done;
  Store.advance s;
  let before = (Store.stats s).Store.subsumption_avoided in
  (* a ground duplicate is answered by the hash: all 20 comparisons avoided *)
  ignore (Store.known_subsumes s (ground2 "p" "a" 10));
  let after = (Store.stats s).Store.subsumption_avoided in
  check_int "all comparisons avoided" 20 (after - before)

(* ----- maintenance primitives: counts, structural lookup, deletion ----- *)

let test_counts () =
  let s = Store.create () in
  let f1 = ground2 "p" "a" 1 and f2 = ground2 "p" "a" 2 in
  Store.add s f1;
  Store.add s f2;
  Store.advance s;
  check_int "facts start uncounted" 0 (Store.count s f1);
  Store.set_count s f1 2;
  Store.bump_count s f1;
  check_int "set + bump" 3 (Store.count s f1);
  Store.bump_count s ~by:4 f2;
  check_int "bump from zero with a step" 4 (Store.count s f2);
  (match Store.counted_facts s with
  | [ ("p", [ (a, na); (b, nb) ]) ] ->
      check_bool "counted facts in Fact.compare order" true (Fact.compare a b < 0);
      check_bool "counts attached to the right facts" true
        ((Fact.compare a f1 = 0 && na = 3 && nb = 4)
        || (Fact.compare a f2 = 0 && na = 4 && nb = 3))
  | _ -> Alcotest.fail "counted_facts shape");
  Store.set_count s f2 0;
  check_int "n <= 0 drops the entry" 0 (Store.count s f2);
  Store.drop_count s f1;
  check_bool "all counts dropped" true
    (List.for_all (fun (_, cs) -> cs = []) (Store.counted_facts s))

let test_find_equal_and_delete () =
  let s = Store.create () in
  let f1 = ground2 "p" "a" 1 and f2 = ground2 "p" "a" 2 in
  let cf = fact_of "q(X; X <= 3)." in
  Store.add s f1;
  Store.add s cf;
  Store.advance s;
  Store.add s f2;
  (* structural lookup sees every partition, including pending *)
  check_bool "ground fact found" true (Store.mem_equal s f1);
  check_bool "pending fact found" true (Store.mem_equal s f2);
  check_bool "constraint fact found structurally" true (Store.mem_equal s cf);
  check_bool "absent fact" false (Store.mem_equal s (ground2 "p" "b" 1));
  (* find_equal is equality, not subsumption: a narrower variant is a miss *)
  check_bool "narrower variant not equal" false (Store.mem_equal s (fact_of "q(X; X <= 2)."));
  (match Store.find_equal s f1 with
  | Some f -> check_int "the stored cell's fact" 0 (Fact.compare f f1)
  | None -> Alcotest.fail "find_equal missed a live fact");
  Store.set_count s f1 5;
  check_bool "delete removes a live fact" true (Store.delete s f1);
  check_bool "deleted fact gone" false (Store.mem_equal s f1);
  check_int "its count is dropped too" 0 (Store.count s f1);
  check_bool "double delete is a no-op" false (Store.delete s f1);
  (* a deleted ground fact is no longer a known duplicate, so it can come
     back (retract-then-reinsert) *)
  check_bool "no longer subsumed" false (Store.known_subsumes s f1);
  Store.add s f1;
  Store.advance s;
  check_bool "reinsert after delete" true (Store.mem_equal s f1);
  check_int "other facts untouched" 3 (Store.total s)

let test_seed_delta () =
  let s = Store.create () in
  Store.add s (ground2 "e" "a" 1);
  Store.advance s;
  Store.advance s;
  (* fixpoint state: everything old, delta empty *)
  let x = Term.var (Var.fresh "X") in
  let probe part = List.length (Store.probe s part (lit "e" [ Term.sym "a"; x ])) in
  check_int "delta empty at fixpoint" 0 (probe Store.Delta);
  Store.seed_delta s [ ground2 "e" "a" 2; ground2 "e" "a" 3 ];
  (* the seeded facts are the delta; the old facts stay old *)
  check_int "seeds in delta" 2 (probe Store.Delta);
  check_int "existing facts stay old" 1 (probe Store.Old);
  check_int "full sees everything" 3 (probe Store.Full)

(* ----- join planner ----- *)

let rule_of s = Parser.rule_of_string s

let preds plan = List.map (fun (st : Planner.step) -> st.Planner.lit.Literal.pred) plan
let origs plan = List.map (fun (st : Planner.step) -> st.Planner.orig) plan
let parts plan = List.map (fun (st : Planner.step) -> st.Planner.part) plan

let test_planner_pivot_first () =
  let r = rule_of "q(X, Z) :- e(X, Y), f(Y, Z), g(c, Z)." in
  (* pivot 2: the delta literal g leads, then f (shares Z), then e *)
  let plan = Planner.order ~pivot:2 r.Rule.body in
  Alcotest.(check (list string)) "order" [ "g"; "f"; "e" ] (preds plan);
  Alcotest.(check (list int)) "orig positions" [ 2; 1; 0 ] (origs plan);
  check_bool "parts" true
    (parts plan = [ Store.Delta; Store.Old; Store.Old ])

let test_planner_constants_first () =
  let r = rule_of "q(X, Z) :- e(X, Y), f(Y, Z), g(c, Z)." in
  (* naive: g has a constant column, so it leads even with no pivot *)
  let plan = Planner.order ~pivot:(-1) r.Rule.body in
  Alcotest.(check (list string)) "order" [ "g"; "f"; "e" ] (preds plan);
  check_bool "all full" true (List.for_all (fun p -> p = Store.Full) (parts plan))

let test_planner_covers_pivots () =
  let r = rule_of "q(X, Z) :- e(X, Y), f(Y, Z)." in
  let plans = Planner.plans ~seminaive:true r in
  check_int "one plan per pivot" 2 (List.length plans);
  List.iteri
    (fun pivot plan ->
      check_int "plan is a permutation" 2 (List.length plan);
      check_bool "pivot literal reads delta" true
        (List.exists
           (fun (st : Planner.step) ->
             st.Planner.orig = pivot && st.Planner.part = Store.Delta)
           plan);
      check_bool "pivot goes first" true ((List.hd plan).Planner.orig = pivot))
    plans;
  check_int "naive is a single plan" 1 (List.length (Planner.plans ~seminaive:false r))

let test_planner_empty_body () =
  check_int "ordering an empty body" 0 (List.length (Planner.order ~pivot:(-1) []));
  let r = rule_of "q(1)." in
  (* a fact rule has no pivots, so semi-naive has no plans at all; the
     naive path keeps its single (empty) plan *)
  check_int "no semi-naive plans" 0 (List.length (Planner.plans ~seminaive:true r));
  check_bool "one empty naive plan" true (Planner.plans ~seminaive:false r = [ [] ]);
  check_int "no step bindings" 0 (List.length (Planner.step_bindings []))

let test_planner_all_constants () =
  let r = rule_of "q(X) :- f(X, c), e(a, b)." in
  (* e is fully constant (2 bound, 0 free): most bound, so it leads even
     from second position *)
  let plan = Planner.order ~pivot:(-1) r.Rule.body in
  Alcotest.(check (list string)) "fully-constant literal first" [ "e"; "f" ] (preds plan);
  (* but a pivot always overrides bound-ness: the delta literal leads *)
  let plan = Planner.order ~pivot:0 r.Rule.body in
  Alcotest.(check (list string)) "pivot overrides constants" [ "f"; "e" ] (preds plan);
  check_bool "pivot part" true ((List.hd plan).Planner.part = Store.Delta)

let test_planner_single_literal () =
  let r = rule_of "q(X) :- e(X, Y)." in
  match Planner.plans ~seminaive:true r with
  | [ [ st ] ] ->
      check_int "the only literal is the pivot" 0 st.Planner.orig;
      check_bool "and reads the delta" true (st.Planner.part = Store.Delta)
  | _ -> Alcotest.fail "one single-step plan expected"

let test_planner_tie_break () =
  (* e, f, g all score (0 bound, 1 free) at the start: the first original
     position wins the tie, deterministically *)
  let r = rule_of "q(X, Y) :- e(X), f(Y), g(X)." in
  let plan = Planner.order ~pivot:(-1) r.Rule.body in
  (* e first (tie on original position); then X is bound, so g (1 bound,
     0 free) beats f (0 bound, 1 free) *)
  Alcotest.(check (list string)) "stable tie then bound-ness" [ "e"; "g"; "f" ] (preds plan);
  (* repeated calls are stable *)
  check_bool "deterministic" true
    (preds (Planner.order ~pivot:(-1) r.Rule.body) = [ "e"; "g"; "f" ])

let test_planner_step_bindings () =
  let r = rule_of "q(X, Z) :- e(X, Y), f(Y, Z)." in
  let plan = Planner.order ~pivot:0 r.Rule.body in
  match Planner.step_bindings plan with
  | [ (b0, n0); (b1, n1) ] ->
      check_bool "nothing bound at step 0" true (Var.Set.is_empty b0);
      check_int "step 0 binds X and Y" 2 (Var.Set.cardinal n0);
      check_int "step 1 starts with X and Y bound" 2 (Var.Set.cardinal b1);
      check_int "step 1 binds Z" 1 (Var.Set.cardinal n1)
  | _ -> Alcotest.fail "two steps expected"

(* ----- engine statistics through the indexed path ----- *)

let flights_src =
  {|
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
#query cheaporshort.
|}

let singleleg_edb seed m =
  let rng = ref seed in
  let next () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng
  in
  List.init m (fun i ->
      let time = 30 + (next () mod 300) and cost = 20 + (next () mod 250) in
      Fact.ground "singleleg"
        [ Term.Sym (Printf.sprintf "c%d" i); Term.Sym (Printf.sprintf "c%d" ((i + 1) mod m));
          Term.Num (Rat.of_int time); Term.Num (Rat.of_int cost) ])

let test_engine_store_stats () =
  let p = parse flights_src in
  let edb = singleleg_edb 108 6 in
  let res = Engine.run ~max_iterations:5 p ~edb in
  let s = Engine.stats res in
  check_bool "index probes happened" true (s.Engine.index_probes > 0);
  check_bool "join probes skipped facts" true (s.Engine.facts_skipped > 0);
  check_bool "subsumption work avoided" true (s.Engine.subsumptions_avoided > 0);
  (* the seed path reports all-zero store counters *)
  let r0 = Engine.run ~indexed:false ~max_iterations:5 p ~edb in
  check_int "seed path: no probes" 0 (Engine.stats r0).Engine.index_probes;
  check_int "seed path: no skips" 0 (Engine.stats r0).Engine.facts_skipped

(* ----- cross-check: indexed engine == seed list-based path ----- *)

let all_preds res1 res2 =
  List.sort_uniq compare
    (List.map fst (Engine.all_facts res1) @ List.map fst (Engine.all_facts res2))

let same_fact_sets a b =
  List.for_all (fun f -> List.exists (fun g -> Fact.subsumes g f) b) a
  && List.for_all (fun f -> List.exists (fun g -> Fact.subsumes g f) a) b

let check_equivalent name res_idx res_seed =
  List.iter
    (fun pred ->
      let fi = Engine.facts_of res_idx pred and fs = Engine.facts_of res_seed pred in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s fact count" name pred)
        (List.length fs) (List.length fi);
      check_bool (Printf.sprintf "%s: %s fact sets equal" name pred) true
        (same_fact_sets fi fs))
    (all_preds res_idx res_seed);
  let si = Engine.stats res_idx and ss = Engine.stats res_seed in
  check_int (name ^ ": iterations agree") ss.Engine.iterations si.Engine.iterations;
  check_int (name ^ ": derivations agree") ss.Engine.derivations si.Engine.derivations;
  check_int (name ^ ": facts_added agree") ss.Engine.facts_added si.Engine.facts_added

let cross_check ?(max_iterations = 8) name src edb =
  let p = parse src in
  check_equivalent (name ^ " seminaive")
    (Engine.run ~max_iterations p ~edb)
    (Engine.run ~indexed:false ~max_iterations p ~edb);
  check_equivalent (name ^ " naive")
    (Engine.run_naive ~max_iterations p ~edb)
    (Engine.run_naive ~indexed:false ~max_iterations p ~edb)

(* every program under examples/programs/, with an EDB where one is needed *)
let programs_dir =
  (* runtest sandbox cwd is test/; dune exec runs from the project root *)
  List.find Sys.file_exists [ "../examples/programs"; "examples/programs" ]

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let extra_edb = function
  | "d1.cql" ->
      String.concat " "
        (List.concat
           (List.init 4 (fun i ->
                Printf.sprintf "b1(%d, %d)." i (100 * i)
                :: List.init 4 (fun j ->
                       Printf.sprintf "b2(%d, %d)." ((100 * i) + j) ((100 * i) + j + 1)))))
  | "ex61.cql" ->
      "u(20, 1). u(5, 2). u(40, 9). q1(20, 3). q1(40, 3). q2(4, 30). q3(3, 4, 7)."
  | _ -> ""

let test_cross_check_examples () =
  let files = Sys.readdir programs_dir in
  Array.sort compare files;
  let checked = ref 0 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".cql" && not (Filename.check_suffix file "_edb.cql")
      then begin
        let src = read_file (Filename.concat programs_dir file) in
        let edb_file =
          Filename.concat programs_dir (Filename.chop_suffix file ".cql" ^ "_edb.cql")
        in
        let edb_src = if Sys.file_exists edb_file then read_file edb_file else "" in
        let edb = edb_of (edb_src ^ "\n" ^ extra_edb file) in
        cross_check file src edb;
        incr checked
      end)
    files;
  check_bool "checked every example program" true (!checked >= 5)

(* randomized cross-checks: the indexed store must agree with the seed path
   on arbitrary ground EDBs, both for pure symbolic joins (transitive
   closure) and arithmetic joins (flights) *)

let tc_src = {|
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
#query path.
|}

let prop_tc_cross_check =
  QCheck.Test.make ~name:"indexed == seed on random graphs (tc)" ~count:30
    QCheck.(list_of_size (Gen.int_range 0 12) (pair (int_range 0 5) (int_range 0 5)))
    (fun edges ->
      let edb =
        List.map
          (fun (a, b) ->
            Fact.ground "edge"
              [ Term.Sym (Printf.sprintf "n%d" a); Term.Sym (Printf.sprintf "n%d" b) ])
          edges
      in
      let p = parse tc_src in
      let r1 = Engine.run p ~edb and r2 = Engine.run ~indexed:false p ~edb in
      List.length (Engine.facts_of r1 "path") = List.length (Engine.facts_of r2 "path")
      && same_fact_sets (Engine.facts_of r1 "path") (Engine.facts_of r2 "path")
      && (Engine.stats r1).Engine.derivations = (Engine.stats r2).Engine.derivations)

let prop_flights_cross_check =
  QCheck.Test.make ~name:"indexed == seed on random flight networks" ~count:8
    QCheck.(pair (int_range 1 1000) (int_range 2 5))
    (fun (seed, m) ->
      let edb = singleleg_edb seed m in
      let p = parse flights_src in
      let r1 = Engine.run ~max_iterations:5 p ~edb in
      let r2 = Engine.run ~indexed:false ~max_iterations:5 p ~edb in
      List.for_all
        (fun pred ->
          same_fact_sets (Engine.facts_of r1 pred) (Engine.facts_of r2 pred)
          && List.length (Engine.facts_of r1 pred) = List.length (Engine.facts_of r2 pred))
        [ "flight"; "cheaporshort" ]
      && (Engine.stats r1).Engine.derivations = (Engine.stats r2).Engine.derivations)

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ( "index",
        [
          Alcotest.test_case "indexed probe" `Quick test_probe_indexed;
          Alcotest.test_case "wildcard constraint facts" `Quick
            test_probe_wildcard_constraint_fact;
          Alcotest.test_case "partition promotion" `Quick test_partition_promotion;
        ] );
      ( "subsumption",
        [
          Alcotest.test_case "ground duplicate hash" `Quick test_ground_duplicate_hash;
          Alcotest.test_case "back subsumption" `Quick test_back_subsumption;
          Alcotest.test_case "avoided comparisons stat" `Quick test_subsumption_avoided_stat;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "derivation counts" `Quick test_counts;
          Alcotest.test_case "find_equal + delete" `Quick test_find_equal_and_delete;
          Alcotest.test_case "seed_delta" `Quick test_seed_delta;
        ] );
      ( "planner",
        [
          Alcotest.test_case "pivot first" `Quick test_planner_pivot_first;
          Alcotest.test_case "constants first" `Quick test_planner_constants_first;
          Alcotest.test_case "plans cover pivots" `Quick test_planner_covers_pivots;
          Alcotest.test_case "empty body" `Quick test_planner_empty_body;
          Alcotest.test_case "all-constant literals" `Quick test_planner_all_constants;
          Alcotest.test_case "single-literal pivot" `Quick test_planner_single_literal;
          Alcotest.test_case "tie-breaking stability" `Quick test_planner_tie_break;
          Alcotest.test_case "step bindings" `Quick test_planner_step_bindings;
        ] );
      ( "engine",
        [
          Alcotest.test_case "store stats exposed" `Quick test_engine_store_stats;
          Alcotest.test_case "cross-check example programs" `Slow test_cross_check_examples;
        ] );
      ("properties", qt [ prop_tc_cross_check; prop_flights_cross_check ]);
    ]
