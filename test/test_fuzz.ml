(* Tests for the differential fuzzing subsystem (Cql_gen): generator
   invariants as qcheck properties over seeds, fixed-seed determinism of the
   harness, zero-failure runs in both constraint modes, the injected-bug
   catch with its shrink bound, and counterexample round-tripping. *)

open Cql_datalog
module G = Cql_gen.Generate
module H = Cql_gen.Harness
module Rng = Cql_gen.Rng
module Decidable = Cql_core.Decidable

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- generator invariants, property-style over the seed space ----- *)

let seed_arb = QCheck.make ~print:string_of_int QCheck.Gen.(0 -- 1_000_000)

let prop_case_well_formed =
  QCheck.Test.make ~name:"generated cases are well-formed" ~count:150 seed_arb (fun seed ->
      let rng = Rng.create seed in
      let p, edb = G.case rng (G.default G.Decidable) in
      Program.check p = Ok ()
      && Program.is_range_restricted p
      && (match p.Program.query with Some q -> Program.is_derived p q | None -> false)
      && List.for_all Cql_eval.Fact.is_ground edb)

let prop_decidable_in_class =
  QCheck.Test.make ~name:"decidable mode stays in the Theorem 5.1 class" ~count:150 seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      let p, _ = G.case rng (G.default G.Decidable) in
      Decidable.in_class p)

let prop_linear_well_formed =
  QCheck.Test.make ~name:"linear mode is still range-restricted" ~count:150 seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      let p, _ = G.case rng (G.default G.Linear) in
      Program.check p = Ok () && Program.is_range_restricted p)

(* ----- fixed-seed determinism ----- *)

let test_determinism () =
  let snapshot () =
    let s = H.run ~seed:42 ~count:30 () in
    ( s.H.stats.H.cases,
      s.H.stats.H.evaluated,
      s.H.stats.H.checks,
      s.H.stats.H.facts_derived,
      s.H.failure = None )
  in
  let a = snapshot () and b = snapshot () in
  check_bool "same seed, same run" true (a = b);
  let rng1 = Rng.create 7 and rng2 = Rng.create 7 in
  check_bool "same seed, same program" true
    (Program.to_string (G.program rng1 (G.default G.Decidable))
    = Program.to_string (G.program rng2 (G.default G.Decidable)))

(* ----- zero-failure runs per mode ----- *)

let test_oracles_decidable () =
  let s = H.run ~seed:42 ~count:60 () in
  check_int "all cases generated" 60 s.H.stats.H.cases;
  check_bool "no failure" true (s.H.failure = None);
  check_bool "oracle checks happened" true (s.H.stats.H.checks > 0)

let test_oracles_linear () =
  let s = H.run ~config:(G.default G.Linear) ~seed:42 ~count:60 () in
  check_bool "no failure" true (s.H.failure = None);
  check_bool "some cases evaluated" true (s.H.stats.H.evaluated > 0)

let prop_int_well_formed =
  QCheck.Test.make ~name:"int mode is still range-restricted" ~count:150 seed_arb
    (fun seed ->
      let rng = Rng.create seed in
      let p, _ = G.case rng (G.default G.Int) in
      Program.check p = Ok () && Program.is_range_restricted p)

let test_oracles_int () =
  (* int mode runs every case under the ℤ domain (so the cache, parallel,
     interval and compiled differentials double as ℤ-transparency checks)
     plus the rational-relaxation coverage oracle *)
  let s = H.run ~config:(G.default G.Int) ~seed:42 ~count:40 () in
  check_bool "no failure" true (s.H.failure = None);
  check_bool "some cases evaluated" true (s.H.stats.H.evaluated > 0);
  check_bool "oracle checks happened" true (s.H.stats.H.checks > 0);
  check_bool "relaxation oracle is addressable" true
    (H.oracle_name H.Relaxation = "relaxation");
  (* the run restores the caller's domain *)
  check_bool "domain restored" true (Cql_constr.Cdomain.current () = Cql_constr.Cdomain.Q)

(* ----- the interval-tier transparency oracle ----- *)

let test_interval_tier_oracle () =
  (* the tier differential runs inside every check_case, so a clean run
     means zero tier-on/tier-off mismatches across the generated cases *)
  let s = H.run ~seed:7 ~count:40 () in
  check_bool "no failure" true (s.H.failure = None);
  check_bool "oracle checks happened" true (s.H.stats.H.checks > 0);
  (* the oracle name round-trips for --mode wiring and failure reports *)
  check_bool "interval oracle is addressable" true
    (H.oracle_name H.Tier = "interval");
  (* an explicit case checked with the tier pinned off also passes: the
     differential really compares two different code paths and restores the
     caller's tier state afterwards *)
  let rng = Rng.create 21 in
  let p, edb = G.case rng (G.default G.Decidable) in
  let prev = !Cql_constr.Interval.enabled in
  check_bool "case passes with the tier off" true
    (Cql_constr.Interval.with_tier false (fun () ->
         H.check_case ~mode:G.Decidable (H.new_stats ()) p edb)
    = None);
  check_bool "tier state restored" true (!Cql_constr.Interval.enabled = prev)

(* ----- the injected bug is caught and shrinks small ----- *)

let test_injected_bug_caught () =
  (* a slightly denser configuration reaches a multi-disjunct QRP constraint
     quickly; the broken propagation (definitions from a tightened cset,
     folds trusting the original) must lose an answer *)
  let config =
    { (G.default G.Decidable) with G.max_rules_per_pred = 3; G.max_body_lits = 3;
      G.max_edb_facts = 6 }
  in
  let s = H.run ~tamper:H.drop_disjuncts ~config ~seed:42 ~count:200 () in
  match s.H.failure with
  | None -> Alcotest.fail "injected bug was not caught"
  | Some f ->
      check_bool "caught by the answers oracle" true (f.H.oracle = H.Answers);
      check_bool "attributed to the tampered pipeline" true (f.H.pipeline = "qrp(tampered)");
      let rules = List.length f.H.program.Program.rules in
      check_bool "shrunk to at most 4 rules" true (rules <= 4);
      (* the shrunk case must still fail on replay with the same tamper *)
      check_bool "shrunk case still fails" true
        (H.check_case ~tamper:H.drop_disjuncts ~mode:G.Decidable (H.new_stats ()) f.H.program
           f.H.edb
        <> None)

(* ----- generator exhaustion is typed and recoverable ----- *)

let test_generate_exhausted () =
  (* seed 8 under the linear default deterministically produces an invalid
     draw, so a budget of one attempt must raise the typed exception ... *)
  (match G.case ~attempts:1 (Rng.create 8) (G.default G.Linear) with
  | exception G.Exhausted { attempts } -> check_int "attempts reported" 1 attempts
  | _ -> Alcotest.fail "expected Exhausted at attempts:1");
  (* ... while the default budget retries within the same stream and
     succeeds on that very seed *)
  let p, _ = G.case (Rng.create 8) (G.default G.Linear) in
  check_bool "default budget recovers" true (Program.check p = Ok ());
  match G.program ~attempts:1 (Rng.create 8) (G.default G.Linear) with
  | exception G.Exhausted _ -> ()
  | _ -> Alcotest.fail "program shares case's budget"

let test_exhausted_reseed_retry () =
  (* the harness's recovery discipline: on Exhausted, draw again from the
     next split substream.  Parent seed 0's first substream exhausts at
     attempts:1 and the next one succeeds, so one retry must do it. *)
  let rng = Rng.create 0 in
  let retries = ref 0 in
  let rec draw retries_left =
    let sub = Rng.split rng in
    match G.case ~attempts:1 sub (G.default G.Linear) with
    | case -> case
    | exception G.Exhausted _ when retries_left > 0 ->
        incr retries;
        draw (retries_left - 1)
  in
  let p, _ = draw 10 in
  check_int "recovered after one reseed" 1 !retries;
  check_bool "recovered case is well-formed" true (Program.check p = Ok ());
  (* the harness counts those retries; a fresh stats record starts clean *)
  check_int "fresh stats start at zero retries" 0 (H.new_stats ()).H.gen_retries

(* ----- the update oracle ----- *)

let test_update_oracle_passes () =
  let s = H.run_update ~seed:42 ~count:20 () in
  check_int "all cases generated" 20 s.H.stats.H.cases;
  check_bool "no failure" true (s.H.failure = None);
  check_bool "update checks happened" true (s.H.stats.H.checks > 0)

let test_update_oracle_determinism () =
  let snapshot () =
    let s = H.run_update ~seed:9 ~count:10 () in
    (s.H.stats.H.cases, s.H.stats.H.evaluated, s.H.stats.H.checks, s.H.failure = None)
  in
  check_bool "same seed, same run" true (snapshot () = snapshot ())

let test_gen_updates () =
  let module F = Cql_eval.Fact in
  let rng = Rng.create 5 in
  let _, edb = G.case rng { (G.default G.Decidable) with G.max_edb_facts = 12 } in
  let edb0, ops = H.gen_updates (Rng.split rng) edb in
  check_bool "some ops drawn" true (ops <> []);
  check_bool "initial database drawn from the generated pool" true
    (List.length edb0 <= List.length edb
    && List.for_all (fun f -> List.exists (fun g -> F.compare f g = 0) edb) edb0);
  (* every op's fact comes from the pool too — the sequence only ever moves
     facts between "present" and "insertable" (plus absent-retract no-ops) *)
  check_bool "ops range over the pool" true
    (List.for_all
       (fun op ->
         let f = match op with H.Insert f | H.Retract f -> f in
         List.exists (fun g -> F.compare f g = 0) edb)
       ops)

let test_update_case_explicit () =
  let p =
    Parser.program_of_string "r1: t(X, Y) :- e(X, Y).\nr2: t(X, Y) :- t(X, Z), e(Z, Y).\n#query t."
  in
  let f s = Cql_eval.Fact.of_fact_rule (Parser.rule_of_string s) in
  let edb = [ f "e(1, 2)."; f "e(2, 3)." ] in
  let ops =
    [
      H.Insert (f "e(3, 4).");
      H.Retract (f "e(1, 2).");
      H.Retract (f "e(9, 9).");
      (* absent: a no-op *)
      H.Insert (f "e(1, 2).");
      (* retract-then-reinsert *)
    ]
  in
  let st = H.new_stats () in
  check_bool "incremental view tracks from-scratch after every step" true
    (H.check_update_case st p edb ops = None);
  check_bool "steps were checked" true (st.H.checks > 0)

(* ----- counterexample round-trip ----- *)

let test_counterexample_roundtrip () =
  let rng = Rng.create 11 in
  let p, edb = G.case rng (G.default G.Decidable) in
  let failure =
    { H.oracle = H.Answers; pipeline = "qrp"; detail = "demo"; program = p; edb; updates = [] }
  in
  let summary = { H.seed = 11; count = 1; stats = H.new_stats (); failure = Some failure } in
  let doc = H.counterexample_to_string summary failure in
  let p', edb', updates' = H.parse_counterexample doc in
  check_int "no updates section round-trips to no ops" 0 (List.length updates');
  (* the parser freshens variable names; compare after prettification *)
  check_bool "program survives the round trip" true
    (Program.to_string (Program.prettify p) = Program.to_string (Program.prettify p'));
  check_int "edb size survives" (List.length edb) (List.length edb');
  check_bool "edb facts survive" true
    (List.for_all2 Cql_eval.Fact.equal
       (List.sort Cql_eval.Fact.compare edb)
       (List.sort Cql_eval.Fact.compare edb'))

let test_update_counterexample_roundtrip () =
  let rng = Rng.create 13 in
  let p, edb = G.case rng (G.default G.Decidable) in
  let f = List.hd edb in
  let updates = [ H.Insert f; H.Retract f; H.Insert (List.hd (List.rev edb)) ] in
  let failure =
    { H.oracle = H.Update; pipeline = "eval"; detail = "demo"; program = p; edb; updates }
  in
  let summary = { H.seed = 13; count = 1; stats = H.new_stats (); failure = Some failure } in
  let doc = H.counterexample_to_string summary failure in
  let p', edb', updates' = H.parse_counterexample doc in
  check_bool "program survives" true
    (Program.to_string (Program.prettify p) = Program.to_string (Program.prettify p'));
  check_int "edb size survives" (List.length edb) (List.length edb');
  check_bool "the op sequence survives in order" true
    (List.length updates = List.length updates'
    && List.for_all2
         (fun a b -> H.update_op_to_string a = H.update_op_to_string b)
         updates updates')

let () =
  let qt = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [
      ( "generator",
        qt
          [
            prop_case_well_formed; prop_decidable_in_class; prop_linear_well_formed;
            prop_int_well_formed;
          ] );
      ( "harness",
        [
          Alcotest.test_case "fixed-seed determinism" `Quick test_determinism;
          Alcotest.test_case "decidable mode, oracles pass" `Quick test_oracles_decidable;
          Alcotest.test_case "linear mode, oracles pass" `Quick test_oracles_linear;
          Alcotest.test_case "int mode, oracles pass" `Quick test_oracles_int;
          Alcotest.test_case "interval tier transparency" `Quick test_interval_tier_oracle;
          Alcotest.test_case "injected bug caught and shrunk" `Quick test_injected_bug_caught;
          Alcotest.test_case "typed generator exhaustion" `Quick test_generate_exhausted;
          Alcotest.test_case "reseeded retry recovers" `Quick test_exhausted_reseed_retry;
          Alcotest.test_case "counterexample round-trip" `Quick test_counterexample_roundtrip;
        ] );
      ( "update-oracle",
        [
          Alcotest.test_case "random update streams pass" `Quick test_update_oracle_passes;
          Alcotest.test_case "fixed-seed determinism" `Quick test_update_oracle_determinism;
          Alcotest.test_case "gen_updates invariants" `Quick test_gen_updates;
          Alcotest.test_case "explicit update case" `Quick test_update_case_explicit;
          Alcotest.test_case "update counterexample round-trip" `Quick
            test_update_counterexample_roundtrip;
        ] );
    ]
