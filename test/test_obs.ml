(* Tests for the tracing/metrics subsystem (Cql_obs): span nesting and
   parenting, counter deltas, NDJSON export, the allocation-free disabled
   path, and span coverage of the rewrite + evaluation pipelines. *)

open Cql_datalog
module Obs = Cql_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* every test starts from a clean, enabled tracer and leaves it disabled so
   the other suites (which run in separate processes, but also any later
   cases in this one) see the default-off state *)
let with_tracing f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    f

let find_event name =
  match List.find_opt (fun (e : Obs.event) -> e.Obs.name = name) (Obs.events ()) with
  | Some e -> e
  | None -> Alcotest.fail ("no event named " ^ name)

let events_named name =
  List.filter (fun (e : Obs.event) -> e.Obs.name = name) (Obs.events ())

(* ----- clock ----- *)

let test_monotonic_clock () =
  let t0 = Obs.monotonic_ns () in
  let t1 = Obs.monotonic_ns () in
  check_bool "monotonic" true (Int64.compare t1 t0 >= 0)

(* ----- spans ----- *)

let test_span_nesting () =
  with_tracing @@ fun () ->
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner_a" (fun () -> ()) ;
        Obs.span "inner_b" (fun () -> 21 * 2))
  in
  check_int "span returns the thunk's value" 42 r;
  let outer = find_event "outer" in
  let a = find_event "inner_a" in
  let b = find_event "inner_b" in
  check_int "inner_a parented to outer" outer.Obs.id a.Obs.parent;
  check_int "inner_b parented to outer" outer.Obs.id b.Obs.parent;
  check_int "outer is a root" 0 outer.Obs.parent;
  check_bool "children complete before the parent" true
    (List.for_all (fun (e : Obs.event) -> e.Obs.id > outer.Obs.id) [ a; b ]);
  check_bool "durations nest" true
    (Int64.compare outer.Obs.dur_ns a.Obs.dur_ns >= 0
    && Int64.compare outer.Obs.dur_ns b.Obs.dur_ns >= 0)

let test_span_exception () =
  with_tracing @@ fun () ->
  let raised =
    match Obs.span "boom" (fun () -> failwith "expected") with
    | exception Failure _ -> true
    | _ -> false
  in
  check_bool "exception propagates" true raised;
  let e = find_event "boom" in
  check_bool "event recorded despite the raise" true (e.Obs.name = "boom");
  (* the span stack must be clean: a new span is again a root *)
  Obs.span "after" (fun () -> ());
  check_int "stack unwound" 0 (find_event "after").Obs.parent

let test_fields () =
  with_tracing @@ fun () ->
  Obs.span "with_fields" (fun () ->
      Obs.add_field "answer" 42;
      Obs.add_field_str "tag" "x\"y");
  let e = find_event "with_fields" in
  check_bool "int field" true (List.assoc_opt "answer" e.Obs.fields = Some (Obs.Int 42));
  check_bool "str field" true (List.assoc_opt "tag" e.Obs.fields = Some (Obs.Str "x\"y"))

let test_counter_deltas () =
  with_tracing @@ fun () ->
  let c = Obs.counter "test.obs_delta" in
  Obs.set c 0;
  Obs.span "count3" (fun () ->
      Obs.incr c;
      Obs.add c 2);
  Obs.span "count0" (fun () -> ());
  let e3 = find_event "count3" in
  check_bool "delta attached" true
    (List.assoc_opt "test.obs_delta" e3.Obs.counter_deltas = Some 3);
  let e0 = find_event "count0" in
  check_bool "zero deltas omitted" true
    (List.assoc_opt "test.obs_delta" e0.Obs.counter_deltas = None);
  check_int "counter registry value" 3 (Obs.value c);
  check_bool "counter idempotent by name" true (Obs.counter "test.obs_delta" == c)

(* ----- disabled path ----- *)

let test_disabled_path () =
  Obs.set_enabled false;
  Obs.reset ();
  let r = Obs.span "ghost" (fun () -> 7) in
  check_int "span still runs the thunk" 7 r;
  Obs.add_field "ghost_field" 1;
  check_int "no events recorded" 0 (List.length (Obs.events ()));
  (* counters are live even with tracing off: Solver_stats depends on it *)
  let c = Obs.counter "test.obs_disabled" in
  Obs.incr c;
  check_int "counters count when disabled" 1 (Obs.value c)

(* ----- NDJSON export ----- *)

let test_ndjson () =
  with_tracing @@ fun () ->
  let c = Obs.counter "test.obs_json" in
  Obs.set c 0;
  Obs.span "parent \"quoted\"" (fun () ->
      Obs.incr c;
      Obs.span "child" (fun () -> Obs.add_field_str "note" "line1\nline2"));
  let lines =
    List.map Obs.event_to_json (Obs.events ())
  in
  check_int "one line per event" 2 (List.length lines);
  List.iter
    (fun l ->
      check_bool "line is a single JSON object" true
        (String.length l > 2
        && l.[0] = '{'
        && l.[String.length l - 1] = '}'
        && not (String.contains l '\n')))
    lines;
  let parent = find_event "parent \"quoted\"" in
  let pj = Obs.event_to_json parent in
  check_bool "quotes escaped" true
    (let sub = {|"name":"parent \"quoted\""|} in
     let n = String.length sub in
     let rec go i = i + n <= String.length pj && (String.sub pj i n = sub || go (i + 1)) in
     go 0);
  check_bool "root parent is null" true
    (let sub = {|"parent":null|} in
     let n = String.length sub in
     let rec go i = i + n <= String.length pj && (String.sub pj i n = sub || go (i + 1)) in
     go 0)

(* ----- summary ----- *)

let test_summary () =
  with_tracing @@ fun () ->
  Obs.span "s" (fun () -> ());
  Obs.span "s" (fun () -> ());
  Obs.span "t" (fun () -> ());
  let rows = Obs.summary () in
  check_int "two distinct names" 2 (List.length rows);
  let s = List.find (fun (r : Obs.summary_row) -> r.Obs.sr_name = "s") rows in
  check_int "s counted twice" 2 s.Obs.sr_count;
  check_bool "total >= max" true (Int64.compare s.Obs.sr_total_ns s.Obs.sr_max_ns >= 0)

(* ----- pipeline coverage ----- *)

let flights_src =
  {|
r1: cheap(S, D, C) :- flight(S, D, C), C <= 150.
r2: flight(S, D, C) :- leg(S, D, C), C > 0.
r3: flight(S, D, C) :- flight(S, X, C1), flight(X, D, C2), C = C1 + C2.
#query cheap.
|}

let test_rewrite_coverage () =
  with_tracing @@ fun () ->
  ignore (Cql_core.Rewrite.constraint_rewrite (Parser.program_of_string flights_src));
  let top = find_event "rewrite.constraint_rewrite" in
  check_int "constraint_rewrite is a root span" 0 top.Obs.parent;
  List.iter
    (fun name -> check_int (name ^ " nested under constraint_rewrite") top.Obs.id
        (find_event name).Obs.parent)
    [ "rewrite.pred_constraints"; "rewrite.qrp.gen"; "rewrite.qrp.propagate" ];
  let pred = find_event "rewrite.pred_constraints" in
  check_bool "pred fixpoint iterations spanned" true
    (List.for_all
       (fun (e : Obs.event) -> e.Obs.parent = pred.Obs.id)
       (events_named "pred.iteration")
    && events_named "pred.iteration" <> []);
  let qrp = find_event "rewrite.qrp.gen" in
  check_bool "qrp fixpoint iterations spanned" true
    (List.for_all
       (fun (e : Obs.event) -> e.Obs.parent = qrp.Obs.id)
       (events_named "qrp.iteration")
    && events_named "qrp.iteration" <> []);
  check_bool "iteration events carry the iteration number" true
    (List.for_all
       (fun (e : Obs.event) ->
         match List.assoc_opt "iteration" e.Obs.fields with
         | Some (Obs.Int i) -> i >= 1
         | _ -> false)
       (events_named "pred.iteration" @ events_named "qrp.iteration"));
  check_bool "fold/unfold steps spanned" true
    (events_named "qrp.unfold" <> [] && events_named "qrp.fold" <> [])

let test_engine_coverage () =
  with_tracing @@ fun () ->
  let p = Parser.program_of_string "p(X) :- e(X).\nq(X) :- p(X), X <= 2.\n#query q." in
  let edb =
    List.map Cql_eval.Fact.of_fact_rule (Parser.facts_of_string "e(1). e(2). e(3).")
  in
  ignore (Cql_eval.Engine.run p ~edb);
  let run = find_event "engine.run" in
  let iters = events_named "engine.iteration" in
  check_bool "iterations recorded" true (iters <> []);
  check_bool "iterations parented to the run" true
    (List.for_all (fun (e : Obs.event) -> e.Obs.parent = run.Obs.id) iters);
  check_bool "delta sizes recorded" true
    (List.for_all
       (fun (e : Obs.event) ->
         List.mem_assoc "delta_added" e.Obs.fields
         && List.mem_assoc "subsumption_hits" e.Obs.fields
         && List.mem_assoc "produced" e.Obs.fields)
       iters);
  (match List.assoc_opt "derivations" run.Obs.fields with
  | Some (Obs.Int d) -> check_bool "derivations positive" true (d > 0)
  | _ -> Alcotest.fail "engine.run has no derivations field");
  check_string "fixpoint field" "true"
    (match List.assoc_opt "fixpoint" run.Obs.fields with
    | Some (Obs.Str s) -> s
    | _ -> "missing")

let test_gmt_coverage () =
  with_tracing @@ fun () ->
  let src =
    {|
r1: p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).
r2: p(X, Y) :- u(X, Y).
r3: q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).
?- X > 10, p(X, Y).
|}
  in
  ignore (Cql_core.Gmt.pipeline ~query_adornment:"ff" (Parser.program_of_string src));
  let top = find_event "gmt.pipeline" in
  List.iter
    (fun name ->
      check_int (name ^ " under gmt.pipeline") top.Obs.id (find_event name).Obs.parent)
    [ "gmt.adorn_bcf"; "gmt.magic"; "gmt.fold_unfold"; "gmt.inline_seed" ]

let () =
  Alcotest.run "obs"
    [
      ( "core",
        [
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "fields" `Quick test_fields;
          Alcotest.test_case "counter deltas" `Quick test_counter_deltas;
          Alcotest.test_case "disabled path" `Quick test_disabled_path;
          Alcotest.test_case "ndjson export" `Quick test_ndjson;
          Alcotest.test_case "summary" `Quick test_summary;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "rewrite span coverage" `Quick test_rewrite_coverage;
          Alcotest.test_case "engine span coverage" `Quick test_engine_coverage;
          Alcotest.test_case "gmt span coverage" `Quick test_gmt_coverage;
        ] );
    ]
