(* Tests for the bottom-up evaluation engine: constraint facts, subsumption,
   relations, semi-naive and naive fixpoint evaluation. *)

open Cql_num
open Cql_constr
open Cql_datalog
open Cql_eval

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Parser.program_of_string
let facts = Parser.facts_of_string
let edb_of s = List.map Fact.of_fact_rule (facts s)

(* ----- facts ----- *)

let test_fact_ground () =
  let f = Fact.ground "edge" [ Term.Sym "a"; Term.Num (Rat.of_int 3) ] in
  check_bool "ground" true (Fact.is_ground f);
  check_bool "value" true (Fact.ground_value f 2 = Some (Rat.of_int 3));
  check_bool "sym has no value" true (Fact.ground_value f 1 = None);
  Alcotest.(check string) "print" "edge(a, 3)" (Fact.to_string f)

let test_fact_constraint () =
  let r = Parser.rule_of_string "p(X, Y; X <= Y, Y <= 4)." in
  let f = Fact.of_fact_rule r in
  check_bool "not ground" false (Fact.is_ground f);
  check_bool "no pinned value" true (Fact.ground_value f 1 = None);
  (* $1 <= $2 and $2 <= 4 hold *)
  let c = Fact.cstr f in
  check_bool "implies $1 <= 4" true
    (Conj.implies_atom c (Atom.le (Linexpr.var (Var.arg 1)) (Linexpr.of_int 4)))

let test_fact_unsat () =
  check_bool "unsat fact rejected" true
    (match Fact.of_fact_rule (Parser.rule_of_string "p(X; X <= 1, X >= 2).") with
    | exception Fact.Unsat -> true
    | _ -> false)

let test_fact_repeated_vars () =
  (* p(X, X) pins $1 = $2 *)
  let f = Fact.of_fact_rule (Parser.rule_of_string "p(X, X; X >= 1).") in
  check_bool "$1 = $2" true
    (Conj.implies_atom (Fact.cstr f) (Atom.eq (Linexpr.var (Var.arg 1)) (Linexpr.var (Var.arg 2))))

let test_subsumption () =
  let fa = Fact.of_fact_rule (Parser.rule_of_string "p(X; X <= 2).") in
  let fb = Fact.of_fact_rule (Parser.rule_of_string "p(X; X <= 4).") in
  check_bool "wider subsumes narrower" true (Fact.subsumes fb fa);
  check_bool "narrower does not subsume" false (Fact.subsumes fa fb);
  let g = Fact.ground "p" [ Term.Num Rat.one ] in
  check_bool "constraint fact subsumes ground instance" true (Fact.subsumes fb g);
  let s1 = Fact.ground "p" [ Term.Sym "a" ] in
  let s2 = Fact.ground "p" [ Term.Sym "b" ] in
  check_bool "different syms incomparable" false (Fact.subsumes s1 s2);
  check_bool "sym vs numeric incomparable" false (Fact.subsumes s1 g)

let test_relation () =
  let fa = Fact.of_fact_rule (Parser.rule_of_string "p(X; X <= 2).") in
  let fb = Fact.of_fact_rule (Parser.rule_of_string "p(X; X <= 4).") in
  let r = Relation.empty in
  let r = match Relation.insert r fb with `Added r -> r | `Subsumed -> Alcotest.fail "add" in
  check_bool "subsumed insert" true (Relation.insert r fa = `Subsumed);
  check_int "size" 1 (Relation.size r)

(* ----- evaluation: transitive closure over ground facts ----- *)

let tc_src = {|
path(X, Y) :- edge(X, Y).
path(X, Z) :- edge(X, Y), path(Y, Z).
#query path.
|}

let test_transitive_closure () =
  let p = parse tc_src in
  let edb = edb_of "edge(a, b). edge(b, c). edge(c, d)." in
  let res = Engine.run ~traced:true p ~edb in
  check_int "paths" 6 (List.length (Engine.facts_of res "path"));
  check_bool "fixpoint" true (Engine.stats res).Engine.reached_fixpoint;
  check_bool "all ground" true (Engine.all_ground res);
  (* naive agrees *)
  let res_naive = Engine.run_naive p ~edb in
  check_int "naive paths" 6 (List.length (Engine.facts_of res_naive "path"))

(* ----- evaluation: arithmetic (flights) ----- *)

let flights_src =
  {|
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
#query cheaporshort.
|}

let test_flights_arithmetic () =
  let p = parse flights_src in
  let edb =
    edb_of
      {|
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 230, 90).
|}
  in
  let res = Engine.run p ~edb in
  check_bool "ground only" true (Engine.all_ground res);
  let flights = Engine.facts_of res "flight" in
  check_int "three flights" 3 (List.length flights);
  (* the composite flight madison->seattle takes 50+230+30 = 310, costs 190 *)
  let composite =
    List.find
      (fun f -> Fact.ground_value f 3 = Some (Rat.of_int 310))
      flights
  in
  check_bool "cost 190" true (Fact.ground_value composite 4 = Some (Rat.of_int 190));
  (* it is neither cheap nor short, so cheaporshort has only the two legs *)
  check_int "cheaporshort" 2 (List.length (Engine.facts_of res "cheaporshort"))

let test_flights_pruning_edb () =
  (* nonpositive-time/cost singlelegs are filtered by r3's constraints *)
  let p = parse flights_src in
  let edb = edb_of "singleleg(a, b, 0, 10). singleleg(b, c, 10, -5). singleleg(c, d, 1, 1)." in
  let res = Engine.run p ~edb in
  check_int "one flight" 1 (List.length (Engine.facts_of res "flight"))

(* ----- evaluation: constraint facts & subsumption during evaluation ----- *)

let test_constraint_fact_evaluation () =
  let p = parse {|
q(X) :- p(X), X >= 1.
p(X) :- base(X; X <= 10).
#query q.
|} in
  (* base is a constraint fact supplied in the program itself (via EDB) *)
  let edb = edb_of "base(X; X <= 10)." in
  let res = Engine.run p ~edb in
  (match Engine.facts_of res "q" with
  | [ f ] ->
      check_bool "q constrained both sides" true
        (Conj.equiv (Fact.cstr f)
           (Conj.of_list
              [ Atom.ge (Linexpr.var (Var.arg 1)) (Linexpr.of_int 1);
                Atom.le (Linexpr.var (Var.arg 1)) (Linexpr.of_int 10) ]))
  | l -> Alcotest.failf "expected one q fact, got %d" (List.length l));
  check_bool "not ground" false (Engine.all_ground res)

let test_subsumption_during_evaluation () =
  (* p(X; X<=5) subsumes p(X; X<=3); only one stored *)
  let p = parse {|
p(X) :- a(X; X <= 5).
p(X) :- a(X; X <= 3).
#query p.
|} in
  let edb = edb_of "a(X; X <= 5)." in
  let res = Engine.run ~traced:true p ~edb in
  check_int "one p fact" 1 (List.length (Engine.facts_of res "p"));
  let subsumed = List.filter (fun (t : Engine.trace_entry) -> t.Engine.subsumed) (Engine.trace res) in
  check_int "one subsumed derivation" 1 (List.length subsumed)

(* ----- evaluation: non-termination budgets (backward fib, Table 1) ----- *)

let fib_src = {|
r1: fib(0, 1).
r2: fib(1, 1).
r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
#query fib.
|}

let test_fib_forward_style () =
  (* plain fib program diverges bottom-up; budget stops it *)
  let p = parse fib_src in
  let res = Engine.run ~max_iterations:6 p ~edb:[] in
  check_bool "budget hit" false (Engine.stats res).Engine.reached_fixpoint;
  let fibs = Engine.facts_of res "fib" in
  (* fib(4,5) must be among the computed facts after 6 iterations *)
  check_bool "fib(4,5) computed" true
    (List.exists
       (fun f -> Fact.ground_value f 1 = Some (Rat.of_int 4) && Fact.ground_value f 2 = Some (Rat.of_int 5))
       fibs)

let test_derivation_budget () =
  let p = parse fib_src in
  let res = Engine.run ~max_derivations:10 p ~edb:[] in
  check_bool "stopped by derivations" false (Engine.stats res).Engine.reached_fixpoint;
  check_bool "at most 10" true ((Engine.stats res).Engine.derivations <= 10)

(* budget exhaustion must be reported identically by the indexed and the
   seed list engine: [reached_fixpoint = false], the budget respected, and
   the partial results still available -- never a silent truncation *)
let test_budget_truncation_both_engines () =
  let diverging = parse "r1: p(0).\nr2: p(Y) :- p(X), Y = X + 1.\n#query p." in
  List.iter
    (fun indexed ->
      let tag = if indexed then "indexed" else "seed" in
      let by_iter = Engine.run ~indexed ~max_iterations:5 diverging ~edb:[] in
      let s = Engine.stats by_iter in
      check_bool (tag ^ ": iteration budget reported") false s.Engine.reached_fixpoint;
      check_bool (tag ^ ": iterations within budget") true (s.Engine.iterations <= 5);
      check_bool (tag ^ ": partial facts available") true
        (Engine.facts_of by_iter "p" <> []);
      let by_deriv = Engine.run ~indexed ~max_derivations:7 diverging ~edb:[] in
      let s = Engine.stats by_deriv in
      check_bool (tag ^ ": derivation budget reported") false s.Engine.reached_fixpoint;
      check_bool (tag ^ ": derivations within budget") true (s.Engine.derivations <= 7);
      check_bool (tag ^ ": partial facts under derivation budget") true
        (Engine.facts_of by_deriv "p" <> []);
      (* the naive strategy reports truncation the same way *)
      let naive = Engine.run_naive ~indexed ~max_iterations:4 diverging ~edb:[] in
      check_bool (tag ^ ": naive reports truncation") false
        (Engine.stats naive).Engine.reached_fixpoint;
      (* a terminating program under the same budgets still reports fixpoint *)
      let finite = parse "r1: q(1).\nr2: q(2).\n#query q." in
      let done_ = Engine.run ~indexed ~max_iterations:5 ~max_derivations:7 finite ~edb:[] in
      check_bool (tag ^ ": fixpoint when budgets suffice") true
        (Engine.stats done_).Engine.reached_fixpoint)
    [ true; false ];
  (* both engines truncate at the same point: same facts, same counters *)
  let ri = Engine.run ~max_iterations:5 diverging ~edb:[] in
  let rs = Engine.run ~indexed:false ~max_iterations:5 diverging ~edb:[] in
  check_int "same truncated fact count"
    (List.length (Engine.facts_of ri "p"))
    (List.length (Engine.facts_of rs "p"));
  check_int "same truncated derivation count" (Engine.stats ri).Engine.derivations
    (Engine.stats rs).Engine.derivations

(* ----- semi-naive vs naive cross-check ----- *)

let relations_equivalent res1 res2 preds =
  List.for_all
    (fun pred ->
      let f1 = Engine.facts_of res1 pred and f2 = Engine.facts_of res2 pred in
      List.for_all (fun f -> List.exists (fun g -> Fact.subsumes g f) f2) f1
      && List.for_all (fun f -> List.exists (fun g -> Fact.subsumes g f) f1) f2)
    preds

let test_seminaive_vs_naive () =
  let p = parse tc_src in
  let edb = edb_of "edge(a, b). edge(b, c). edge(c, a). edge(c, d)." in
  let r1 = Engine.run p ~edb in
  let r2 = Engine.run_naive p ~edb in
  check_bool "cyclic graph agrees" true (relations_equivalent r1 r2 [ "path" ]);
  let pf = parse flights_src in
  let edbf = edb_of "singleleg(a, b, 100, 60). singleleg(b, a, 90, 70). singleleg(b, c, 20, 20)." in
  let r3 = Engine.run ~max_iterations:8 pf ~edb:edbf in
  let r4 = Engine.run_naive ~max_iterations:8 pf ~edb:edbf in
  (* cyclic flights diverge (times grow unboundedly); compare the prefix *)
  check_bool "flights prefixes agree" true
    ((Engine.stats r3).Engine.reached_fixpoint = (Engine.stats r4).Engine.reached_fixpoint)

(* iteration counting: paths in a chain of length n need n iterations *)
let test_iteration_count () =
  let p = parse tc_src in
  let edb = edb_of "edge(a, b). edge(b, c). edge(c, d). edge(d, e)." in
  let res = Engine.run p ~edb in
  (* longest path a->e uses 4 edges: derived at iteration 4; fixpoint at 5 *)
  check_int "iterations" 5 (Engine.stats res).Engine.iterations;
  check_int "ten paths" 10 (List.length (Engine.facts_of res "path"))


(* ----- additional engine coverage ----- *)

let test_facts_only_program () =
  (* a program of constraint facts only reaches fixpoint at iteration 1 *)
  let p = parse "p(1, 2). p(X, Y; X <= Y). #query p." in
  let res = Engine.run ~traced:true p ~edb:[] in
  check_bool "fixpoint" true (Engine.stats res).Engine.reached_fixpoint;
  (* the ground fact is subsumed by the constraint fact *)
  check_int "one stored fact" 1 (List.length (Engine.facts_of res "p"))

let test_empty_program () =
  let p = Program.make [] in
  let res = Engine.run p ~edb:[] in
  check_int "no facts" 0 (Engine.total_facts res);
  check_bool "fixpoint immediately" true (Engine.stats res).Engine.reached_fixpoint

let test_duplicate_edb_dedup () =
  let p = parse "q(X) :- e(X). #query q." in
  let edb = edb_of "e(1). e(1). e(1)." in
  let res = Engine.run p ~edb in
  check_int "edb deduped" 1 (List.length (Engine.facts_of res "e"));
  check_int "one answer" 1 (List.length (Engine.facts_of res "q"))

let test_symbolic_in_arithmetic_prunes () =
  (* data feeding a symbol into an arithmetic position cannot derive *)
  let p = parse "q(X) :- e(X), X <= 3. #query q." in
  let edb = edb_of "e(apple). e(2)." in
  let res = Engine.run p ~edb in
  check_int "only numeric row" 1 (List.length (Engine.facts_of res "q"))

let test_repeated_vars_in_body () =
  (* p(X, X) only matches facts whose two columns are equal *)
  let p = parse "q(X) :- e(X, X). #query q." in
  let edb = edb_of "e(1, 1). e(1, 2). e(a, a). e(a, b)." in
  let res = Engine.run p ~edb in
  check_int "two diagonal matches" 2 (List.length (Engine.facts_of res "q"))

let test_constants_in_rule_body () =
  let p = parse "q(X) :- e(a, X, 3). #query q." in
  let edb = edb_of "e(a, u, 3). e(a, v, 4). e(b, w, 3)." in
  let res = Engine.run p ~edb in
  check_int "constant filters" 1 (List.length (Engine.facts_of res "q"))

let test_constraint_fact_join () =
  (* joining two constraint facts intersects their constraints *)
  let p = parse "q(X) :- lo(X), hi(X). #query q." in
  let edb = edb_of "lo(X; X >= 2). hi(X; X <= 5)." in
  let res = Engine.run p ~edb in
  (match Engine.facts_of res "q" with
  | [ f ] ->
      check_bool "interval [2,5]" true
        (Conj.equiv (Fact.cstr f)
           (Conj.of_list
              [ Atom.ge (Linexpr.var (Var.arg 1)) (Linexpr.of_int 2);
                Atom.le (Linexpr.var (Var.arg 1)) (Linexpr.of_int 5) ]))
  | l -> Alcotest.failf "expected 1 fact, got %d" (List.length l));
  (* disjoint intervals derive nothing *)
  let edb2 = edb_of "lo(X; X >= 7). hi(X; X <= 5)." in
  let res2 = Engine.run p ~edb:edb2 in
  check_int "disjoint join empty" 0 (List.length (Engine.facts_of res2 "q"))

let test_projection_in_heads () =
  (* head drops a column; the constraint on the dropped var is projected *)
  let p = parse "q(X) :- e(X, Y), X <= Y, Y <= 10. #query q." in
  let edb = edb_of "e(X, Y; Y >= 4)." in
  let res = Engine.run p ~edb in
  (match Engine.facts_of res "q" with
  | [ f ] ->
      (* exists Y. X <= Y <= 10 & Y >= 4  gives  X <= 10 *)
      check_bool "projected bound" true
        (Conj.equiv (Fact.cstr f)
           (Conj.of_list [ Atom.le (Linexpr.var (Var.arg 1)) (Linexpr.of_int 10) ]))
  | l -> Alcotest.failf "expected 1 fact, got %d" (List.length l))

let test_zero_arity_predicates () =
  let p = parse "go :- e(X), X >= 1.\nq(X) :- go, e(X). #query q." in
  let edb = edb_of "e(0). e(3)." in
  let res = Engine.run p ~edb in
  check_int "go derived once" 1 (List.length (Engine.facts_of res "go"));
  check_int "q has both rows" 2 (List.length (Engine.facts_of res "q"))


(* ----- provenance / derivation trees (Definition 2.2) ----- *)

let test_derivation_tree () =
  let p = parse flights_src in
  let edb =
    edb_of "singleleg(madison, chicago, 50, 100).\nsingleleg(chicago, seattle, 100, 80)."
  in
  let res = Engine.run p ~edb in
  (* the composite madison->seattle flight: 50+100+30 = 180, 100+80 = 180 *)
  let composite =
    List.find
      (fun f -> Fact.ground_value f 3 = Some (Rat.of_int 180))
      (Engine.facts_of res "flight")
  in
  (match Explain.tree res composite with
  | None -> Alcotest.fail "no derivation tree"
  | Some t ->
      check_bool "root rule r4" true (t.Explain.rule = "r4");
      check_int "two flight children" 2 (List.length t.Explain.children);
      check_int "tree depth" 3 (Explain.depth t);
      check_int "tree size" 5 (Explain.size t);
      (* leaves are EDB singleleg facts *)
      let rec leaves (n : Explain.t) =
        if n.Explain.children = [] then [ n ] else List.concat_map leaves n.Explain.children
      in
      List.iter
        (fun (l : Explain.t) ->
          check_bool "leaf is edb" true (l.Explain.rule = "edb");
          check_bool "leaf is singleleg" true (Fact.pred l.Explain.fact = "singleleg"))
        (leaves t));
  (* unknown facts have no tree *)
  check_bool "unknown fact" true (Explain.tree res (Fact.ground "flight" [ Term.Sym "x"; Term.Sym "y"; Term.Num Rat.one; Term.Num Rat.one ]) = None)

let test_matches_literal () =
  let f = Fact.ground "e" [ Term.Sym "a"; Term.Num (Rat.of_int 3) ] in
  let lit args = Literal.make "e" args in
  check_bool "exact" true (Fact.matches_literal (lit [ Term.sym "a"; Term.int 3 ]) f);
  check_bool "wrong sym" false (Fact.matches_literal (lit [ Term.sym "b"; Term.int 3 ]) f);
  check_bool "wrong num" false (Fact.matches_literal (lit [ Term.sym "a"; Term.int 4 ]) f);
  check_bool "vars always ok" true
    (Fact.matches_literal (lit [ Term.var (Var.fresh "X"); Term.var (Var.fresh "Y") ]) f);
  check_bool "arity mismatch" false (Fact.matches_literal (Literal.make "e" [ Term.int 3 ]) f);
  (* unpinned numeric position matches any numeric constant *)
  let cf = Fact.of_fact_rule (Parser.rule_of_string "e(a, X; X <= 9).") in
  check_bool "unpinned accepts constant" true
    (Fact.matches_literal (lit [ Term.sym "a"; Term.int 3 ]) cf)

(* ----- stratified evaluation ----- *)

let test_stratified_same_results () =
  let p = parse flights_src in
  let edb =
    edb_of
      {|
singleleg(madison, chicago, 50, 100).
singleleg(chicago, seattle, 100, 80).
singleleg(seattle, anchorage, 60, 40).
|}
  in
  let r1 = Engine.run p ~edb in
  let r2 = Engine.run_stratified p ~edb in
  List.iter
    (fun pred ->
      check_int (pred ^ " counts agree")
        (List.length (Engine.facts_of r1 pred))
        (List.length (Engine.facts_of r2 pred)))
    [ "flight"; "cheaporshort" ];
  check_bool "fixpoint" true (Engine.stats r2).Engine.reached_fixpoint;
  (* provenance survives stratification *)
  let ans = List.hd (Engine.facts_of r2 "cheaporshort") in
  check_bool "tree exists" true (Explain.tree r2 ans <> None)

let test_stratified_multi_scc () =
  let p = parse {|
top(X) :- mid(X), X <= 50.
mid(X) :- base(X).
mid(X) :- mid(Y), X = Y + 10, X <= 100.
base(X) :- e(X).
#query top.
|} in
  let edb = edb_of "e(5). e(95)." in
  let r1 = Engine.run p ~edb in
  let r2 = Engine.run_stratified p ~edb in
  check_int "same top facts" (List.length (Engine.facts_of r1 "top"))
    (List.length (Engine.facts_of r2 "top"));
  check_int "same mid facts" (List.length (Engine.facts_of r1 "mid"))
    (List.length (Engine.facts_of r2 "mid"));
  (* budget respected across strata *)
  let r3 = Engine.run_stratified ~max_derivations:5 p ~edb in
  check_bool "budget stops" false (Engine.stats r3).Engine.reached_fixpoint

(* the derivation budget carries over between sub-runs: each stratum's
   fixpoint starts from whatever the previous strata left.  The program has
   two single-predicate strata of exactly five derivations each, so the
   interesting budgets sit right on the boundary. *)

let budget_carry_src = {|
b(X) :- e(X).
a(X) :- b(X).
#query a.
|}

let budget_carry_edb = "e(1). e(2). e(3). e(4). e(5)."

let test_stratified_budget_boundary () =
  let p = parse budget_carry_src in
  let edb = edb_of budget_carry_edb in
  (* budget 5: exhausted exactly at the end of the first stratum.  The
     budgeted fifth derivation is counted but its fact is not added, and the
     second stratum is entered with nothing left, so it derives nothing. *)
  let r = Engine.run_stratified ~max_derivations:5 p ~edb in
  check_int "derivations stop at the budget" 5 (Engine.stats r).Engine.derivations;
  check_bool "not a fixpoint" false (Engine.stats r).Engine.reached_fixpoint;
  check_int "first stratum truncated" 4 (List.length (Engine.facts_of r "b"));
  check_int "second stratum starved" 0 (List.length (Engine.facts_of r "a"));
  (* budget 10: the first stratum completes (5 of 10), the second exhausts
     the remainder mid-run *)
  let r = Engine.run_stratified ~max_derivations:10 p ~edb in
  check_int "carry-over spent exactly" 10 (Engine.stats r).Engine.derivations;
  check_bool "still not a fixpoint" false (Engine.stats r).Engine.reached_fixpoint;
  check_int "first stratum complete" 5 (List.length (Engine.facts_of r "b"));
  check_int "second stratum truncated" 4 (List.length (Engine.facts_of r "a"));
  (* one more derivation of headroom and the whole program completes *)
  let r = Engine.run_stratified ~max_derivations:11 p ~edb in
  check_bool "fixpoint under budget 11" true (Engine.stats r).Engine.reached_fixpoint;
  check_int "all derivations performed" 10 (Engine.stats r).Engine.derivations;
  check_int "second stratum complete" 5 (List.length (Engine.facts_of r "a"));
  (* unbounded agrees with the generous budget *)
  let r' = Engine.run_stratified p ~edb in
  check_bool "unbounded fixpoint" true (Engine.stats r').Engine.reached_fixpoint;
  check_int "unbounded derivations" 10 (Engine.stats r').Engine.derivations

let test_stratified_budget_jobs_agree () =
  (* truncation point is deterministic and identical across worker counts *)
  let p = parse budget_carry_src in
  let edb = edb_of budget_carry_edb in
  let r1 = Engine.run_stratified ~jobs:1 ~max_derivations:7 p ~edb in
  let r4 = Engine.run_stratified ~jobs:4 ~max_derivations:7 p ~edb in
  check_int "same derivations" (Engine.stats r1).Engine.derivations
    (Engine.stats r4).Engine.derivations;
  check_bool "same fixpoint flag"
    (Engine.stats r1).Engine.reached_fixpoint
    (Engine.stats r4).Engine.reached_fixpoint;
  List.iter
    (fun pred ->
      check_int (pred ^ " counts agree")
        (List.length (Engine.facts_of r1 pred))
        (List.length (Engine.facts_of r4 pred)))
    [ "b"; "a" ];
  check_int "budget 7 truncates the second stratum" 1
    (List.length (Engine.facts_of r1 "a"))

(* ----- compiled register-frame execution vs the interpreter ----- *)

let compiled_flights_src =
  {|
r1: cheap(S, D, C) :- flight(S, D, C), C <= 150.
r2: flight(S, D, C) :- leg(S, D, C), C > 0.
r3: flight(S, D, C) :- flight(S, M, C1), leg(M, D, C2), C = C1 + C2.
#query cheap.
|}

(* acyclic leg network: the recursive flight rule reaches a fixpoint *)
let compiled_flights_edb =
  "leg(a, b, 40). leg(b, c, 70). leg(c, d, 90). leg(a, c, 130). leg(b, d, 60)."

let compiled_cf_src = "r1: q(X, Y) :- p(X, Y), r(Y), X <= Y.\n#query q."
let compiled_cf_edb = "p(X, Y; X >= 0, Y <= 5). p(2, 3). r(3). r(7)."

let fingerprint res =
  ( (Engine.stats res).Engine.derivations,
    (Engine.stats res).Engine.iterations,
    List.map
      (fun (pred, fs) -> (pred, List.map Fact.to_string fs))
      (List.sort compare (Engine.all_facts res)),
    List.map
      (fun (t : Engine.trace_entry) ->
        (t.Engine.iteration, t.Engine.rule_label, Fact.to_string t.Engine.fact,
         t.Engine.subsumed))
      (Engine.trace res) )

let test_compiled_matches_interpreter () =
  List.iter
    (fun (src, edb_src) ->
      let p = parse src in
      let edb = edb_of edb_src in
      let fp on =
        fingerprint
          (Compile.with_compile on (fun () ->
               Engine.run ~max_iterations:20 ~max_derivations:20_000 ~traced:true p ~edb))
      in
      check_bool "compiled == interpreted (facts, derivations, trace)" true (fp true = fp false))
    [ (compiled_flights_src, compiled_flights_edb); (compiled_cf_src, compiled_cf_edb) ]

let test_compiled_jobs_agree () =
  let p = parse compiled_flights_src in
  let edb = edb_of compiled_flights_edb in
  let fp on jobs =
    fingerprint
      (Compile.with_compile on (fun () ->
           Engine.run ~jobs ~max_iterations:20 ~max_derivations:20_000 p ~edb))
  in
  check_bool "compiled jobs=4 == interpreted jobs=1" true (fp true 4 = fp false 1);
  check_bool "compiled jobs=4 == compiled jobs=1" true (fp true 4 = fp true 1)

let test_compiled_counters () =
  let module Obs = Cql_obs.Obs in
  let programs = Obs.counter "engine.compile.programs_compiled" in
  let before = Obs.value programs in
  ignore
    (Compile.with_compile true (fun () ->
         Engine.run ~max_iterations:20 (parse compiled_flights_src)
           ~edb:(edb_of compiled_flights_edb)));
  check_bool "plans were compiled" true (Obs.value programs > before);
  let before = Obs.value programs in
  ignore
    (Compile.with_compile false (fun () ->
         Engine.run ~max_iterations:20 (parse compiled_flights_src)
           ~edb:(edb_of compiled_flights_edb)));
  check_int "disabled: nothing compiled" before (Obs.value programs)

let test_compiled_artifact_reuse () =
  (* force compilation on: artifact reuse is meaningless when disabled
     (e.g. under CQLOPT_NO_COMPILE=1 the engine must bypass the artifact,
     which is exactly why the hit below requires the toggle) *)
  Compile.with_compile true (fun () ->
      let module Obs = Cql_obs.Obs in
      let hits = Obs.counter "engine.compile.cache_hits" in
      let p = parse compiled_flights_src in
      let edb = edb_of compiled_flights_edb in
      let cp = Engine.compile_plans p in
      let h0 = Obs.value hits in
      let r1 = Engine.run ~max_iterations:20 ~compiled:cp p ~edb in
      check_bool "artifact hit" true (Obs.value hits > h0);
      let r2 = Engine.run ~max_iterations:20 p ~edb in
      check_bool "precompiled == fresh compile" true (fingerprint r1 = fingerprint r2);
      (* the artifact only applies to the exact program value it was built from *)
      let p' = parse compiled_flights_src in
      let h1 = Obs.value hits in
      let r3 = Engine.run ~max_iterations:20 ~compiled:cp p' ~edb in
      check_int "other program value: no hit" h1 (Obs.value hits);
      check_bool "and still correct" true (fingerprint r3 = fingerprint r2))

let () =
  Alcotest.run "eval"
    [
      ( "facts",
        [
          Alcotest.test_case "ground facts" `Quick test_fact_ground;
          Alcotest.test_case "constraint facts" `Quick test_fact_constraint;
          Alcotest.test_case "unsat rejected" `Quick test_fact_unsat;
          Alcotest.test_case "repeated vars" `Quick test_fact_repeated_vars;
          Alcotest.test_case "subsumption" `Quick test_subsumption;
          Alcotest.test_case "relations" `Quick test_relation;
        ] );
      ( "explain",
        [
          Alcotest.test_case "derivation tree" `Quick test_derivation_tree;
          Alcotest.test_case "matches_literal" `Quick test_matches_literal;
          Alcotest.test_case "stratified same results" `Quick test_stratified_same_results;
          Alcotest.test_case "stratified multi-SCC" `Quick test_stratified_multi_scc;
          Alcotest.test_case "stratified budget boundary" `Quick
            test_stratified_budget_boundary;
          Alcotest.test_case "stratified budget jobs agree" `Quick
            test_stratified_budget_jobs_agree;
        ] );
      ( "engine-extra",
        [
          Alcotest.test_case "facts-only program" `Quick test_facts_only_program;
          Alcotest.test_case "empty program" `Quick test_empty_program;
          Alcotest.test_case "duplicate EDB dedup" `Quick test_duplicate_edb_dedup;
          Alcotest.test_case "symbol in arithmetic prunes" `Quick test_symbolic_in_arithmetic_prunes;
          Alcotest.test_case "repeated body vars" `Quick test_repeated_vars_in_body;
          Alcotest.test_case "constants in body" `Quick test_constants_in_rule_body;
          Alcotest.test_case "constraint fact join" `Quick test_constraint_fact_join;
          Alcotest.test_case "head projection" `Quick test_projection_in_heads;
          Alcotest.test_case "zero-arity predicates" `Quick test_zero_arity_predicates;
        ] );
      ( "engine",
        [
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "flights arithmetic" `Quick test_flights_arithmetic;
          Alcotest.test_case "flights EDB pruning" `Quick test_flights_pruning_edb;
          Alcotest.test_case "constraint facts in evaluation" `Quick test_constraint_fact_evaluation;
          Alcotest.test_case "subsumption during evaluation" `Quick test_subsumption_during_evaluation;
          Alcotest.test_case "fib diverges, budget stops" `Quick test_fib_forward_style;
          Alcotest.test_case "derivation budget" `Quick test_derivation_budget;
          Alcotest.test_case "budget truncation both engines" `Quick
            test_budget_truncation_both_engines;
          Alcotest.test_case "semi-naive vs naive" `Quick test_seminaive_vs_naive;
          Alcotest.test_case "iteration counts" `Quick test_iteration_count;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "matches the interpreter" `Quick test_compiled_matches_interpreter;
          Alcotest.test_case "jobs agree" `Quick test_compiled_jobs_agree;
          Alcotest.test_case "compile counters" `Quick test_compiled_counters;
          Alcotest.test_case "precompiled artifact reuse" `Quick test_compiled_artifact_reuse;
        ] );
    ]
