(* Tests for the parallel evaluation layer: the domain pool, domain-safety
   of the interned constraint terms and memo caches, and jobs=1 vs jobs=N
   equivalence of the engine. *)

open Cql_num
open Cql_constr
open Cql_datalog
open Cql_eval
module Pool = Cql_par.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let parse = Parser.program_of_string
let edb_of s = List.map Fact.of_fact_rule (Parser.facts_of_string s)

(* ----- pool ----- *)

let test_pool_map () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check_int "jobs" 4 (Pool.jobs pool);
      let xs = Array.init 100 Fun.id in
      let ys = Pool.map pool (fun x -> x * x) xs in
      check_bool "squares in order" true (ys = Array.init 100 (fun i -> i * i));
      (* a pool is reusable across batches *)
      let zs = Pool.map pool string_of_int xs in
      check_bool "second batch" true (zs = Array.init 100 string_of_int))

let test_pool_sequential () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check_int "jobs clamped" 1 (Pool.jobs pool);
      let ys = Pool.map pool succ (Array.init 10 Fun.id) in
      check_bool "jobs=1 is Array.map" true (ys = Array.init 10 succ));
  (* jobs below 1 clamp to 1 rather than failing *)
  Pool.with_pool ~jobs:0 (fun pool -> check_int "jobs=0 clamped" 1 (Pool.jobs pool))

exception Boom of int

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let raised =
        match Pool.map pool (fun x -> if x = 37 then raise (Boom x) else x) (Array.init 64 Fun.id)
        with
        | _ -> None
        | exception Boom n -> Some n
      in
      check_bool "task exception re-raised in caller" true (raised = Some 37);
      (* the pool survives a failed batch *)
      let ys = Pool.map pool succ (Array.init 8 Fun.id) in
      check_bool "usable after failure" true (ys = Array.init 8 succ))

let test_pool_empty_and_tiny () =
  Pool.with_pool ~jobs:4 (fun pool ->
      check_bool "empty input" true (Pool.map pool succ [||] = [||]);
      check_bool "single task" true (Pool.map pool succ [| 41 |] = [| 42 |]))

(* ----- domain-safe interning ----- *)

(* four domains concurrently intern overlapping atoms and conjunctions;
   interning must hand every domain the same physical term for the same
   structure, with ids unique per structure *)
let test_interning_stress () =
  let build () =
    List.init 200 (fun k ->
        let a = Atom.le (Linexpr.var (Var.arg 1)) (Linexpr.of_int k) in
        let b = Atom.ge (Linexpr.var (Var.arg 2)) (Linexpr.of_int (k mod 17)) in
        (a, Conj.of_list [ a; b ]))
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn build) in
  let results = Array.map Domain.join domains in
  let reference = build () in
  Array.iter
    (fun r ->
      List.iter2
        (fun (a, c) (a', c') ->
          check_bool "atom interned across domains" true (a == a');
          check_bool "conj interned across domains" true (c == c'))
        reference r)
    results;
  (* atoms and conjunctions draw from separate id counters; within each
     space, distinct structures must have distinct ids *)
  let atom_ids = List.map (fun (a, _) -> Atom.id a) reference in
  let conj_ids = List.map (fun (_, c) -> Conj.id c) reference in
  check_int "atom ids unique per structure" (List.length atom_ids)
    (List.length (List.sort_uniq compare atom_ids));
  check_int "conj ids unique per structure" (List.length conj_ids)
    (List.length (List.sort_uniq compare conj_ids))

let test_fresh_vars_parallel () =
  (* Var.fresh from concurrent domains must never hand out a duplicate id *)
  let grab () = List.init 500 (fun _ -> Var.fresh "t") in
  let domains = Array.init 4 (fun _ -> Domain.spawn grab) in
  let vars = Array.to_list (Array.map Domain.join domains) @ [ grab () ] in
  let names = List.concat_map (List.map Var.name) vars in
  check_int "fresh names unique across domains" (List.length names)
    (List.length (List.sort_uniq String.compare names))

(* ----- memo caches under domains ----- *)

let test_memo_domain_isolation () =
  let c : (int, int) Memo.cache = Memo.create ~name:"test_par_isolation" in
  Memo.clear_all ();
  Memo.reset_stats ();
  let v1 = Memo.cached c 1 (fun () -> 10) in
  let v2 = Memo.cached c 1 (fun () -> 99) in
  check_int "miss then hit in main domain" 10 v1;
  check_int "hit returns memoized value" 10 v2;
  (* a fresh domain has its own empty table: it recomputes rather than
     seeing the main domain's entry *)
  let other = Domain.spawn (fun () -> Memo.cached c 1 (fun () -> 20)) in
  check_int "spawned domain recomputes" 20 (Domain.join other);
  (* ...while hit/miss counters aggregate across domains *)
  let s = List.find (fun s -> s.Memo.name = "test_par_isolation") (Memo.stats ()) in
  check_int "aggregated hits" 1 s.Memo.hits;
  check_int "aggregated misses" 2 s.Memo.misses

let test_memo_hit_rate_zero_calls () =
  (* a registered cache that was never queried must report 0.0, not nan *)
  let _c : (int, int) Memo.cache = Memo.create ~name:"test_par_untouched" in
  Memo.reset_stats ();
  let s = List.find (fun s -> s.Memo.name = "test_par_untouched") (Memo.stats ()) in
  check_int "no hits" 0 s.Memo.hits;
  check_int "no misses" 0 s.Memo.misses;
  check_bool "hit rate is 0.0 for zero calls" true (Memo.hit_rate s = 0.0);
  check_bool "hit rate is finite" true (Float.is_finite (Memo.hit_rate s))

let test_memo_results_agree_across_domains () =
  (* the decision procedures give the same answers from a worker domain *)
  let c = Conj.of_list [ Atom.le (Linexpr.var (Var.arg 1)) (Linexpr.of_int 2) ] in
  let a = Atom.le (Linexpr.var (Var.arg 1)) (Linexpr.of_int 5) in
  let here = Conj.implies_atom c a in
  let there = Domain.join (Domain.spawn (fun () -> Conj.implies_atom c a)) in
  check_bool "implies_atom agrees across domains" true (here = there && here = true)

(* ----- engine: jobs=1 vs jobs=N equivalence ----- *)

let flights_p =
  {|r1: reach(madison).
r2: reach(D) :- reach(S), flight(S, D, T, C), C <= 400.
r3: hops(D, N) :- reach(D), flight(S, D, T, C), hops(S, M), N = M + 1, N <= 6.
r4: hops(madison, 0).
#query reach.
|}

let flights_edb =
  edb_of
    {|flight(madison, chicago, 60, 80).
flight(chicago, newark, 110, 160).
flight(newark, boston, 50, 90).
flight(boston, madison, 190, 340).
flight(chicago, seattle, 230, 390).
flight(seattle, anchorage, 210, 420).
flight(newark, madison, 140, 170).
|}

let sorted_all res =
  List.map (fun (p, fs) -> (p, List.sort Fact.compare fs)) (List.sort compare (Engine.all_facts res))

let check_runs_agree name r1 rn =
  let s1 = Engine.stats r1 and sn = Engine.stats rn in
  check_int (name ^ ": iterations") s1.Engine.iterations sn.Engine.iterations;
  check_int (name ^ ": derivations") s1.Engine.derivations sn.Engine.derivations;
  check_int (name ^ ": facts_added") s1.Engine.facts_added sn.Engine.facts_added;
  check_bool (name ^ ": fixpoint") s1.Engine.reached_fixpoint sn.Engine.reached_fixpoint;
  check_bool (name ^ ": all facts equal") true
    (List.equal
       (fun (p, fs) (q, gs) -> p = q && List.equal Fact.equal fs gs)
       (sorted_all r1) (sorted_all rn))

let test_engine_parallel_equivalence () =
  let p = parse flights_p in
  let r1 = Engine.run ~jobs:1 p ~edb:flights_edb in
  let r4 = Engine.run ~jobs:4 p ~edb:flights_edb in
  check_bool "some answers" true (Engine.facts_of r1 "reach" <> []);
  check_runs_agree "flights" r1 r4

let test_engine_parallel_truncated () =
  (* budget truncation must cut at the identical derivation for any jobs,
     on a diverging program where the cut point is observable *)
  let p = parse "r1: p(0).\nr2: p(Y) :- p(X), Y = X + 1.\n#query p." in
  let r1 = Engine.run ~jobs:1 ~max_derivations:7 p ~edb:[] in
  let r4 = Engine.run ~jobs:4 ~max_derivations:7 p ~edb:[] in
  check_bool "truncated" false (Engine.stats r1).Engine.reached_fixpoint;
  check_runs_agree "truncated" r1 r4;
  let i1 = Engine.run ~jobs:1 ~max_iterations:4 p ~edb:[] in
  let i4 = Engine.run ~jobs:4 ~max_iterations:4 p ~edb:[] in
  check_runs_agree "iteration-capped" i1 i4

let test_engine_parallel_deterministic () =
  let p = parse flights_p in
  let runs = List.init 3 (fun _ -> Engine.run ~jobs:4 p ~edb:flights_edb) in
  match runs with
  | first :: rest -> List.iteri (fun i r -> check_runs_agree (Printf.sprintf "repeat %d" i) first r) rest
  | [] -> assert false

let test_engine_parallel_constraint_facts () =
  (* non-ground constraint facts exercise subsumption in the merge phase *)
  let p =
    parse
      {|r1: span(X; X >= 0, X <= 10).
r2: narrow(Y) :- span(Y), Y <= 3.
r3: narrow(Z; Z >= 5, Z <= 6) :- span(Z).
#query narrow.
|}
  in
  let r1 = Engine.run ~jobs:1 p ~edb:[] in
  let r4 = Engine.run ~jobs:4 p ~edb:[] in
  check_runs_agree "constraint facts" r1 r4

let test_engine_seed_backend_parallel () =
  let p = parse flights_p in
  let r1 = Engine.run ~indexed:false ~jobs:1 p ~edb:flights_edb in
  let r4 = Engine.run ~indexed:false ~jobs:4 p ~edb:flights_edb in
  check_runs_agree "seed backend" r1 r4

let test_default_jobs () =
  let restore = Engine.default_jobs () in
  Engine.set_default_jobs 3;
  check_int "set_default_jobs" 3 (Engine.default_jobs ());
  Engine.set_default_jobs 0;
  check_int "clamped to 1" 1 (Engine.default_jobs ());
  Engine.set_default_jobs restore

(* ----- independent jobs (the executor behind cqlserved) ----- *)

let test_submit_await () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let jobs = List.init 20 (fun i -> Pool.submit pool (fun () -> i * i)) in
      check_bool "all values" true
        (List.map Pool.await jobs = List.init 20 (fun i -> i * i));
      check_int "run = await . submit" 42 (Pool.run pool (fun () -> 42)))

let test_submit_concurrent () =
  (* two jobs that each wait for the other to start can only finish if they
     run on different workers at the same time *)
  Pool.with_pool ~jobs:3 (fun pool ->
      let started = Atomic.make 0 in
      let job () =
        Atomic.incr started;
        while Atomic.get started < 2 do
          Domain.cpu_relax ()
        done;
        Atomic.get started
      in
      let j1 = Pool.submit pool job and j2 = Pool.submit pool job in
      check_bool "both ran concurrently" true (Pool.await j1 = 2 && Pool.await j2 = 2))

let test_submit_exception () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let j = Pool.submit pool (fun () -> raise (Boom 7)) in
      let raised = match Pool.await j with _ -> None | exception Boom n -> Some n in
      check_bool "job exception re-raised in await" true (raised = Some 7);
      check_int "pool usable after a failed job" 5 (Pool.run pool (fun () -> 5)))

let test_submit_sequential () =
  Pool.with_pool ~jobs:1 (fun pool ->
      let ran = ref false in
      let j =
        Pool.submit pool (fun () ->
            ran := true;
            9)
      in
      check_bool "jobs=1 runs synchronously" true !ran;
      check_bool "already done" true (Pool.is_done j);
      check_int "value" 9 (Pool.await j))

let test_map_alongside_jobs () =
  (* a job parks the only worker domain; a map batch must still complete
     (the caller participates and batches take priority) *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let gate = Atomic.make false in
      let j =
        Pool.submit pool (fun () ->
            while not (Atomic.get gate) do
              Domain.cpu_relax ()
            done;
            1)
      in
      let ys = Pool.map pool succ (Array.init 50 Fun.id) in
      check_bool "batch completed while a job holds a worker" true
        (ys = Array.init 50 succ);
      Atomic.set gate true;
      check_int "job completes" 1 (Pool.await j))

let test_shutdown_drains () =
  (* queued-but-unstarted jobs are run in the caller during shutdown, so no
     await ever hangs *)
  let pool = Pool.create ~jobs:2 in
  let js = List.init 16 (fun i -> Pool.submit pool (fun () -> i)) in
  Pool.shutdown pool;
  check_bool "every await returns" true (List.map Pool.await js = List.init 16 Fun.id);
  check_bool "submit after shutdown rejected" true
    (match Pool.submit pool (fun () -> 0) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ----- concurrent independent fixpoints (the cqlserved execution model) ----- *)

(* two engine runs on two domains at once — as two server requests — must
   not observe each other through any process-global pipeline state *)
let test_concurrent_fixpoints () =
  let p = parse flights_p in
  let reference = Engine.run ~jobs:1 p ~edb:flights_edb in
  let domains =
    Array.init 2 (fun _ -> Domain.spawn (fun () -> Engine.run ~jobs:1 p ~edb:flights_edb))
  in
  Array.iteri
    (fun i r -> check_runs_agree (Printf.sprintf "domain %d" i) reference r)
    (Array.map Domain.join domains)

(* one request's scoped pivot budget must not leak into a concurrent
   request on another domain (the budget override is per-domain) *)
let test_pivot_limit_isolation () =
  (* needs one pivot per lower-bounded variable: 2 pivots, so budget 1 trips *)
  let atoms =
    [
      Atom.ge (Linexpr.var (Var.arg 1)) (Linexpr.of_int 1);
      Atom.ge (Linexpr.var (Var.arg 2)) (Linexpr.of_int 1);
      Atom.le (Linexpr.add (Linexpr.var (Var.arg 1)) (Linexpr.var (Var.arg 2)))
        (Linexpr.of_int 10);
    ]
  in
  let in_override = Atomic.make false in
  let release = Atomic.make false in
  let constrained =
    Domain.spawn (fun () ->
        Simplex.with_pivot_limit 1 (fun () ->
            let tripped =
              match Simplex.is_sat atoms with
              | _ -> false
              | exception Simplex.Pivot_limit _ -> true
            in
            Atomic.set in_override true;
            while not (Atomic.get release) do
              Domain.cpu_relax ()
            done;
            tripped))
  in
  (* solve here strictly while the other domain holds its budget-1 scope *)
  while not (Atomic.get in_override) do
    Domain.cpu_relax ()
  done;
  let unaffected = match Simplex.is_sat atoms with s -> s | exception _ -> false in
  Atomic.set release true;
  check_bool "override effective on its own domain" true (Domain.join constrained);
  check_bool "concurrent domain keeps the process default" true unaffected

(* qcheck: random rationals through the pool match sequential arithmetic *)
let test_pool_qcheck =
  QCheck.Test.make ~name:"pool map = Array.map" ~count:50
    QCheck.(array_of_size Gen.(int_range 0 40) (pair small_int small_int))
    (fun xs ->
      let f (a, b) = Rat.to_string (Rat.add (Rat.of_int a) (Rat.of_int b)) in
      Pool.with_pool ~jobs:3 (fun pool -> Pool.map pool f xs = Array.map f xs))

let () =
  Alcotest.run "cql_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map order + reuse" `Quick test_pool_map;
          Alcotest.test_case "jobs=1 sequential path" `Quick test_pool_sequential;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "empty and tiny batches" `Quick test_pool_empty_and_tiny;
          QCheck_alcotest.to_alcotest test_pool_qcheck;
        ] );
      ( "jobs",
        [
          Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "jobs run concurrently" `Quick test_submit_concurrent;
          Alcotest.test_case "exception through await" `Quick test_submit_exception;
          Alcotest.test_case "jobs=1 synchronous path" `Quick test_submit_sequential;
          Alcotest.test_case "map alongside parked job" `Quick test_map_alongside_jobs;
          Alcotest.test_case "shutdown drains the queue" `Quick test_shutdown_drains;
        ] );
      ( "reentrancy",
        [
          Alcotest.test_case "two concurrent fixpoints" `Quick test_concurrent_fixpoints;
          Alcotest.test_case "pivot-limit isolation" `Quick test_pivot_limit_isolation;
        ] );
      ( "interning",
        [
          Alcotest.test_case "4-domain stress" `Quick test_interning_stress;
          Alcotest.test_case "fresh vars unique" `Quick test_fresh_vars_parallel;
        ] );
      ( "memo",
        [
          Alcotest.test_case "per-domain isolation" `Quick test_memo_domain_isolation;
          Alcotest.test_case "hit rate of untouched cache" `Quick test_memo_hit_rate_zero_calls;
          Alcotest.test_case "agreement across domains" `Quick test_memo_results_agree_across_domains;
        ] );
      ( "engine",
        [
          Alcotest.test_case "jobs=1 vs jobs=4" `Quick test_engine_parallel_equivalence;
          Alcotest.test_case "budget truncation" `Quick test_engine_parallel_truncated;
          Alcotest.test_case "repeated jobs=4 determinism" `Quick test_engine_parallel_deterministic;
          Alcotest.test_case "constraint-fact subsumption" `Quick test_engine_parallel_constraint_facts;
          Alcotest.test_case "seed backend" `Quick test_engine_seed_backend_parallel;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
        ] );
    ]
