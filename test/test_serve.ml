(* Tests for the query service layer (lib/serve): the JSON codec, the
   length-prefixed framing, the compiled-plan cache, admission control, and
   the daemon itself end to end over a real Unix-domain socket. *)

module Json = Cql_serve.Json
module Protocol = Cql_serve.Protocol
module Plan_cache = Cql_serve.Plan_cache
module Admission = Cql_serve.Admission
module Server = Cql_serve.Server
module Client = Cql_serve.Client
module Obs = Cql_obs.Obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ----- JSON codec ----- *)

let roundtrip s =
  match Json.parse s with
  | Error msg -> Alcotest.failf "parse %S: %s" s msg
  | Ok j -> Json.to_string j

let test_json_roundtrip () =
  check_str "object" {|{"a": 1, "b": [true, null, -2.5], "c": "x"}|}
    (roundtrip {| { "a" :1, "b":[ true,null, -2.5 ] ,"c" : "x" } |});
  check_str "empty containers" {|{"a": [], "b": {}}|} (roundtrip {|{"a":[],"b":{}}|});
  check_str "negative int" "-42" (roundtrip "-42");
  check_str "exponent becomes float" "1500.0" (roundtrip "1.5e3");
  check_str "escapes" {|"a\"b\\c\nd"|} (roundtrip {|"a\"b\\c\nd"|})

let test_json_unicode () =
  (* é is two UTF-8 bytes; the surrogate pair 😀 is four *)
  (match Json.parse {|"café"|} with
  | Ok (Json.Str s) -> check_str "BMP escape" "caf\xc3\xa9" s
  | _ -> Alcotest.fail "BMP escape");
  (match Json.parse {|"😀"|} with
  | Ok (Json.Str s) -> check_str "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair");
  (* control characters print as \u escapes *)
  check_str "control chars escaped" {|"a\u0001b"|} (Json.to_string (Json.Str "a\x01b"))

let test_json_errors () =
  let fails s =
    match Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  in
  fails "";
  fails "{";
  fails {|{"a" 1}|};
  fails "[1,]";
  fails "truex";
  fails "1 2";
  (* trailing content *)
  fails {|"unterminated|};
  (* the error names the byte offset *)
  match Json.parse "[1, x]" with
  | Error msg -> check_bool "offset in message" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected error"

let test_json_accessors () =
  let j = Result.get_ok (Json.parse {|{"a": 7, "b": "x", "c": [1], "d": 2.0}|}) in
  check_bool "member hit" true (Json.member "a" j = Some (Json.Int 7));
  check_bool "member miss" true (Json.member "z" j = None);
  check_bool "to_int" true (Option.bind (Json.member "a" j) Json.to_int = Some 7);
  check_bool "to_int of integral float" true
    (Option.bind (Json.member "d" j) Json.to_int = Some 2);
  check_bool "to_str" true (Option.bind (Json.member "b" j) Json.to_str = Some "x");
  check_bool "to_list" true
    (Option.bind (Json.member "c" j) Json.to_list = Some [ Json.Int 1 ])

let test_json_float_printing () =
  (* shortest decimal that parses back to the same float — no %.12g
     truncation (0.1 +. 0.2 must not echo as 0.3) *)
  check_str "tenth" "0.1" (Json.to_string (Json.Float 0.1));
  check_str "sum of tenths keeps the ulp" "0.30000000000000004"
    (Json.to_string (Json.Float (0.1 +. 0.2)));
  check_bool "and is not 0.3" true
    (Json.to_string (Json.Float (0.1 +. 0.2)) <> Json.to_string (Json.Float 0.3));
  (* integral floats inside the safe range keep the "x.0" form *)
  check_str "integral float form" "3.0" (Json.to_string (Json.Float 3.0));
  check_str "negative integral" "-2.0" (Json.to_string (Json.Float (-2.0)));
  (* every float round-trips bit-exactly through print + parse *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Float f)) with
      | Ok (Json.Float g) ->
          check_bool (Printf.sprintf "roundtrip %h" f) true (Int64.bits_of_float g = Int64.bits_of_float f)
      | Ok (Json.Int i) ->
          (* huge integral floats may print in exponent-free integer form *)
          check_bool (Printf.sprintf "roundtrip %h as int" f) true (float_of_int i = f)
      | _ -> Alcotest.failf "roundtrip %h failed to parse" f)
    [
      0.1; 0.2; 0.1 +. 0.2; 1.5e3; 5e-324; 1.7976931348623157e308; 1e100;
      9007199254740992.0; 9.007199254740993e15; 1.0 /. 3.0; -0.001;
    ]

let test_json_int_bounds () =
  let two53 = 9007199254740992.0 in
  check_bool "Int passes through" true (Json.to_int_checked (Json.Int max_int) = Ok max_int);
  check_bool "integral float below 2^53" true
    (Json.to_int_checked (Json.Float (two53 -. 1.0)) = Ok 9007199254740991);
  check_bool "negative integral float below 2^53" true
    (Json.to_int_checked (Json.Float (-.two53 +. 1.0)) = Ok (-9007199254740991));
  (* at 2^53 doubles stop representing every integer: reject, don't round *)
  check_bool "2^53 rejected" true
    (Json.to_int_checked (Json.Float two53) = Error Json.Unsafe_integer);
  check_bool "-2^53 rejected" true
    (Json.to_int_checked (Json.Float (-.two53)) = Error Json.Unsafe_integer);
  check_bool "beyond 2^53 rejected" true
    (Json.to_int_checked (Json.Float 1e100) = Error Json.Unsafe_integer);
  check_bool "fractional rejected" true
    (Json.to_int_checked (Json.Float 2.5) = Error Json.Not_an_integer);
  check_bool "non-number rejected" true
    (Json.to_int_checked (Json.Str "7") = Error Json.Not_an_integer);
  (* the option squash loses only the reason *)
  check_bool "to_int squash ok" true (Json.to_int (Json.Float 7.0) = Some 7);
  check_bool "to_int squash err" true (Json.to_int (Json.Float two53) = None)

(* ----- framing ----- *)

let string_reader ?max_frame s =
  let pos = ref 0 in
  Protocol.reader ?max_frame (fun buf off len ->
      let n = min len (String.length s - !pos) in
      Bytes.blit_string s !pos buf off n;
      pos := !pos + n;
      n)

let test_frame_roundtrip () =
  let b = Buffer.create 64 in
  Protocol.write_frame b (Json.Obj [ ("op", Json.Str "ping") ]);
  Protocol.write_frame b (Json.Obj [ ("op", Json.Str "stats") ]);
  let r = string_reader (Buffer.contents b) in
  (match Protocol.read_frame r with
  | Ok payload -> check_bool "first frame" true (Json.parse payload = Ok (Json.Obj [ ("op", Json.Str "ping") ]))
  | Error _ -> Alcotest.fail "first frame");
  (match Protocol.read_frame r with
  | Ok payload -> check_bool "second frame" true (Json.parse payload = Ok (Json.Obj [ ("op", Json.Str "stats") ]))
  | Error _ -> Alcotest.fail "second frame");
  check_bool "clean EOF" true (Protocol.read_frame r = Error Protocol.Closed)

let test_frame_bad_header () =
  let r = string_reader "notanumber\n{}\n" in
  (match Protocol.read_frame r with
  | Error (Protocol.Bad_header _) -> ()
  | _ -> Alcotest.fail "expected Bad_header");
  (* a huge decimal that never terminates is rejected, not buffered forever *)
  let r = string_reader (String.make 64 '1') in
  match Protocol.read_frame r with
  | Error (Protocol.Bad_header _) -> ()
  | _ -> Alcotest.fail "expected Bad_header for an unterminated header"

let test_frame_truncated () =
  let r = string_reader "100\n{\"op\": \"ping\"}\n" in
  (match Protocol.read_frame r with
  | Error Protocol.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated (payload shorter than declared)");
  let r = string_reader "12" in
  match Protocol.read_frame r with
  | Error Protocol.Truncated -> ()
  | _ -> Alcotest.fail "expected Truncated (EOF inside header)"

let test_frame_too_large () =
  let b = Buffer.create 64 in
  Protocol.write_frame b (Json.Str (String.make 100 'x'));
  let r = string_reader ~max_frame:16 (Buffer.contents b) in
  match Protocol.read_frame r with
  | Error (Protocol.Too_large n) -> check_bool "declared length reported" true (n > 16)
  | _ -> Alcotest.fail "expected Too_large"

(* ----- request decoding ----- *)

let test_request_of_json () =
  let decode s = Protocol.request_of_json (Result.get_ok (Json.parse s)) in
  (match decode {|{"op": "eval", "program": "p(1)."}|} with
  | Ok (Protocol.Eval e) ->
      check_str "default tenant" "anon" e.tenant;
      check_str "default pipeline" "pred,qrp" e.pipeline;
      check_str "program" "p(1)." e.program;
      check_bool "no budgets" true (e.max_iterations = None && e.max_derivations = None)
  | _ -> Alcotest.fail "eval defaults");
  (match decode {|{"op": "eval", "program": "p.", "max_derivations": 9, "id": "r1"}|} with
  | Ok (Protocol.Eval e) ->
      check_bool "budget" true (e.max_derivations = Some 9);
      check_bool "id" true (e.id = Some "r1")
  | _ -> Alcotest.fail "eval fields");
  check_bool "ping" true (decode {|{"op": "ping"}|} = Ok (Protocol.Ping { id = None }));
  check_bool "unknown op rejected" true (Result.is_error (decode {|{"op": "nope"}|}));
  check_bool "missing program rejected" true (Result.is_error (decode {|{"op": "eval"}|}));
  check_bool "non-object rejected" true (Result.is_error (decode "[1]"));
  (match decode {|{"op": "materialize", "view": "v", "program": "p(1).", "tenant": "a"}|} with
  | Ok (Protocol.Materialize m) ->
      check_str "view name" "v" m.view;
      check_str "materialize tenant" "a" m.tenant;
      check_str "materialize pipeline default" "pred,qrp" m.pipeline
  | _ -> Alcotest.fail "materialize decoding");
  check_bool "materialize needs a view" true
    (Result.is_error (decode {|{"op": "materialize", "program": "p(1)."}|}));
  (match decode {|{"op": "retract", "view": "v", "facts": "p(1).", "max_iterations": 3}|} with
  | Ok (Protocol.Update u) ->
      check_bool "retract flag" true u.retract;
      check_str "update facts" "p(1)." u.facts;
      check_bool "update budget" true (u.max_iterations = Some 3)
  | _ -> Alcotest.fail "retract decoding");
  (match decode {|{"op": "insert", "view": "v", "facts": "p(2)."}|} with
  | Ok (Protocol.Update u) -> check_bool "insert flag" true (not u.retract)
  | _ -> Alcotest.fail "insert decoding");
  check_bool "insert needs facts" true
    (Result.is_error (decode {|{"op": "insert", "view": "v"}|}));
  (match decode {|{"op": "query", "view": "v"}|} with
  | Ok (Protocol.Query q) ->
      check_str "query view" "v" q.view;
      check_str "query default tenant" "anon" q.tenant
  | _ -> Alcotest.fail "query decoding");
  (* the constraint domain: absent means rationals, "int" selects ℤ *)
  (match decode {|{"op": "eval", "program": "p(1)."}|} with
  | Ok (Protocol.Eval e) -> check_bool "default domain" true (e.domain = Cql_constr.Cdomain.Q)
  | _ -> Alcotest.fail "eval default domain");
  (match decode {|{"op": "eval", "program": "p(1).", "domain": "int"}|} with
  | Ok (Protocol.Eval e) -> check_bool "int domain" true (e.domain = Cql_constr.Cdomain.Z)
  | _ -> Alcotest.fail "eval int domain");
  (match decode {|{"op": "materialize", "view": "v", "program": "p(1).", "domain": "rat"}|} with
  | Ok (Protocol.Materialize m) ->
      check_bool "materialize rat domain" true (m.domain = Cql_constr.Cdomain.Q)
  | _ -> Alcotest.fail "materialize domain");
  check_bool "unknown domain rejected" true
    (Result.is_error (decode {|{"op": "eval", "program": "p(1).", "domain": "mod7"}|}));
  check_bool "non-string domain rejected" true
    (Result.is_error (decode {|{"op": "eval", "program": "p(1).", "domain": 1}|}));
  (* the request builders emit the field only when it is given *)
  let built = Protocol.eval_request_json ~domain:Cql_constr.Cdomain.Z ~program:"p(1)." () in
  check_bool "builder emits domain" true
    (Json.member "domain" built = Some (Json.Str "int"));
  let built_default = Protocol.eval_request_json ~program:"p(1)." () in
  check_bool "builder omits default domain" true (Json.member "domain" built_default = None);
  match Protocol.request_of_json built with
  | Ok (Protocol.Eval e) -> check_bool "builder roundtrip" true (e.domain = Cql_constr.Cdomain.Z)
  | _ -> Alcotest.fail "builder roundtrip"

(* ----- plan cache ----- *)

let dummy_plan pipeline =
  let program = Cql_datalog.Parser.program_of_string "p(1)." in
  {
    Plan_cache.pipeline;
    program;
    programs = Cql_eval.Engine.compile_plans program;
    source_bytes = 5;
    rewrite_ns = 0L;
  }

let test_plan_cache_lru () =
  let c = Plan_cache.create ~max_entries:2 in
  let k p = Plan_cache.key ~pipeline:"none" ~domain:Cql_constr.Cdomain.Q ~source:p in
  check_bool "distinct sources, distinct keys" true (k "a" <> k "b");
  check_bool "pipeline part of the key" true
    (Plan_cache.key ~pipeline:"none" ~domain:Cql_constr.Cdomain.Q ~source:"a"
    <> Plan_cache.key ~pipeline:"optimal" ~domain:Cql_constr.Cdomain.Q ~source:"a");
  check_bool "domain part of the key" true
    (Plan_cache.key ~pipeline:"none" ~domain:Cql_constr.Cdomain.Q ~source:"a"
    <> Plan_cache.key ~pipeline:"none" ~domain:Cql_constr.Cdomain.Z ~source:"a");
  let s0 = Plan_cache.stats c in
  check_bool "cold miss" true (Plan_cache.find c (k "a") = None);
  Plan_cache.add c (k "a") (dummy_plan "none");
  check_bool "hit after add" true (Plan_cache.find c (k "a") <> None);
  Plan_cache.add c (k "b") (dummy_plan "none");
  (* touch a so b is the least recently used *)
  ignore (Plan_cache.find c (k "a"));
  Plan_cache.add c (k "c") (dummy_plan "none");
  check_int "capacity held" 2 (Plan_cache.size c);
  check_bool "LRU entry evicted" true (Plan_cache.find c (k "b") = None);
  check_bool "recently used entry kept" true (Plan_cache.find c (k "a") <> None);
  let s1 = Plan_cache.stats c in
  check_int "evictions counted" 1 (s1.Plan_cache.evictions - s0.Plan_cache.evictions);
  check_int "hits counted" 3 (s1.Plan_cache.hits - s0.Plan_cache.hits);
  check_int "misses counted" 2 (s1.Plan_cache.misses - s0.Plan_cache.misses)

(* ----- admission control ----- *)

let test_admission () =
  let adm =
    Admission.create
      {
        Admission.max_program_bytes = 100;
        max_inflight_per_tenant = 2;
        max_derivations = 1000;
        max_iterations = 10;
      }
  in
  let admit ?mi ?md ?(tenant = "t") bytes =
    Admission.admit adm ~tenant ~program_bytes:bytes ~max_iterations:mi ~max_derivations:md
  in
  (* rejections first: none of these occupy an inflight slot *)
  (match admit 101 with
  | Admission.Reject_oversized _ -> ()
  | _ -> Alcotest.fail "oversized program");
  (match admit ~md:1001 50 with
  | Admission.Reject_budget _ -> ()
  | _ -> Alcotest.fail "over-cap derivations");
  (match admit ~mi:11 50 with
  | Admission.Reject_budget _ -> ()
  | _ -> Alcotest.fail "over-cap iterations");
  (match admit 50 with
  | Admission.Admit { max_iterations; max_derivations } ->
      check_int "iterations default to the cap" 10 max_iterations;
      check_int "derivations default to the cap" 1000 max_derivations
  | _ -> Alcotest.fail "should admit");
  (match admit ~mi:5 ~md:99 50 with
  | Admission.Admit { max_iterations; max_derivations } ->
      check_int "requested iterations kept" 5 max_iterations;
      check_int "requested derivations kept" 99 max_derivations
  | _ -> Alcotest.fail "should admit under-cap budgets");
  (* two admitted and not released: the third concurrent request is busy *)
  (match admit 50 with
  | Admission.Reject_busy _ -> ()
  | _ -> Alcotest.fail "inflight cap");
  Admission.release adm ~tenant:"t";
  (match admit 50 with
  | Admission.Admit _ -> ()
  | _ -> Alcotest.fail "slot freed by release");
  (* other tenants have their own slots *)
  match admit ~tenant:"u" 50 with
  | Admission.Admit _ -> ()
  | _ -> Alcotest.fail "per-tenant isolation"

(* ----- the daemon end to end ----- *)

let test_socket name = Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "cql-test-%s-%d.sock" name (Unix.getpid ()))

let with_server ?(configure = Fun.id) name f =
  let socket = test_socket name in
  let t = Server.start (configure (Server.default_config ~socket_path:socket)) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Server.wait t)
    (fun () -> f socket t)

let with_client socket f =
  match Client.connect_retry socket with
  | Error msg -> Alcotest.failf "connect %s: %s" socket msg
  | Ok c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ex41_program =
  {|
r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
r2: p1(X, Y) :- b1(X, Y).
r3: p2(X) :- b2(X).
#query q.
|}

let ex41_edb = "b1(2, 1). b1(2, 4). b1(3, 3). b1(5, 1).\nb2(1). b2(2). b2(3). b2(4)."

let test_server_cache_miss_then_hit () =
  with_server "cache" (fun socket _ ->
      with_client socket (fun c ->
          let hits = Obs.counter "serve.plan_cache.hits" in
          let h0 = Obs.value hits in
          let r1 = Result.get_ok (Client.eval c ~edb:ex41_edb ~program:ex41_program ()) in
          check_bool "first response ok" true (Client.is_ok r1);
          check_bool "first is a miss" true
            (Option.bind (Json.member "cache" r1) Json.to_str = Some "miss");
          check_bool "rewrite timed on the miss" true
            (match Option.bind (Json.member "rewrite_ms" r1) Json.to_bool with
            | Some _ -> false
            | None -> Json.member "rewrite_ms" r1 <> None);
          let r2 = Result.get_ok (Client.eval c ~edb:ex41_edb ~program:ex41_program ()) in
          check_bool "second is a hit" true
            (Option.bind (Json.member "cache" r2) Json.to_str = Some "hit");
          (* the acceptance check: the repeat query skipped the rewrite,
             observable through the plan-cache hit counter *)
          check_int "plan-cache hit counter advanced" 1 (Obs.value hits - h0);
          check_bool "answers stable across hit and miss" true
            (Client.answers r1 = Client.answers r2);
          check_bool "some answers" true (Client.answers r1 <> [])))

let test_server_parse_error () =
  with_server "parse" (fun socket _ ->
      with_client socket (fun c ->
          let r = Result.get_ok (Client.eval c ~program:"q(X :- p(X)." ()) in
          check_bool "error response" true (not (Client.is_ok r));
          check_bool "structured kind" true (Client.error_kind r = Some "parse_error");
          let msg = Option.value (Client.error_message r) ~default:"" in
          (* the parser's token/position diagnostics survive the wire *)
          check_bool "message carries position info" true
            (String.length msg > 0
            && (let has sub =
                  let n = String.length sub in
                  let rec go i =
                    i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
                  in
                  go 0
                in
                has "line" || has "character" || has "token"));
          (* a bad EDB is a parse error too, and the connection survives *)
          let r = Result.get_ok (Client.eval c ~program:"q(1)." ~edb:"nope(" ()) in
          check_bool "edb parse error" true (Client.error_kind r = Some "parse_error");
          check_bool "connection still usable" true
            (Client.is_ok (Result.get_ok (Client.ping c)))))

let test_server_admission_and_budget () =
  with_server "limits"
    ~configure:(fun c ->
      {
        c with
        Server.limits =
          {
            Admission.max_program_bytes = 4096;
            max_inflight_per_tenant = 2;
            max_derivations = 1000;
            max_iterations = 50;
          };
      })
    (fun socket _ ->
      with_client socket (fun c ->
          (* asking for more than the server cap is rejected up front *)
          let r =
            Result.get_ok
              (Client.eval c ~max_derivations:100_000 ~program:"q(1).\n#query q." ())
          in
          check_bool "over-cap budget rejected" true (Client.error_kind r = Some "admission");
          (* a run the budget truncates is a budget error, not partial answers *)
          let recursive =
            "r1: t(X, Y) :- e(X, Y).\nr2: t(X, Y) :- t(X, Z), e(Z, Y).\n#query t."
          in
          let chain =
            String.concat " " (List.init 8 (fun i -> Printf.sprintf "e(%d, %d)." i (i + 1)))
          in
          let r =
            Result.get_ok
              (Client.eval c ~pipeline:"none" ~max_iterations:1 ~edb:chain ~program:recursive
                 ())
          in
          check_bool "truncated run is a budget error" true
            (Client.error_kind r = Some "budget");
          check_bool "no partial answers" true (Client.answers r = []);
          (* oversized program *)
          let big = "q(1)." ^ String.make 5000 ' ' in
          let r = Result.get_ok (Client.eval c ~program:big ()) in
          check_bool "oversized program rejected" true
            (Client.error_kind r = Some "oversized")))

let test_server_stats_and_queryless () =
  with_server "stats" (fun socket _ ->
      with_client socket (fun c ->
          check_bool "ping" true (Client.is_ok (Result.get_ok (Client.ping c)));
          (* a query-less program falls back to the identity pipeline *)
          let r = Result.get_ok (Client.eval c ~tenant:"alice" ~program:"p(1). p(2)." ()) in
          check_bool "queryless ok" true (Client.is_ok r);
          check_bool "pipeline recorded as none" true
            (Option.bind (Json.member "pipeline" r) Json.to_str = Some "none");
          let s = Result.get_ok (Client.stats c) in
          check_bool "stats ok" true (Client.is_ok s);
          let member path j =
            List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
          in
          check_bool "requests counted" true
            (match Option.bind (member [ "server"; "requests" ] s) Json.to_int with
            | Some n -> n >= 2
            | None -> false);
          check_bool "tenant row present" true
            (match Option.bind (member [ "tenants" ] s) Json.to_list with
            | Some rows ->
                List.exists
                  (fun row -> Option.bind (Json.member "tenant" row) Json.to_str = Some "alice")
                  rows
            | None -> false)))

let test_server_malformed_frames () =
  with_server "malformed" (fun socket _ ->
      (* raw socket: drive the framing layer directly *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let send s = ignore (Unix.write_substring fd s 0 (String.length s)) in
          let r = Protocol.reader (fun buf off len -> Unix.read fd buf off len) in
          (* garbage header: one malformed error response, then close *)
          send "notanumber\n";
          (match Protocol.read_frame r with
          | Ok payload ->
              let j = Result.get_ok (Json.parse payload) in
              check_bool "malformed frame reported" true
                (Option.bind (Json.member "error" j)
                   (fun e -> Option.bind (Json.member "kind" e) Json.to_str)
                = Some "malformed")
          | Error e -> Alcotest.failf "expected a response, got %s" (Protocol.frame_error_to_string e));
          check_bool "connection closed after bad header" true
            (Protocol.read_frame r = Error Protocol.Closed));
      (* unparseable JSON in a well-formed frame: structured error, stream keeps going *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let send s = ignore (Unix.write_substring fd s 0 (String.length s)) in
          let r = Protocol.reader (fun buf off len -> Unix.read fd buf off len) in
          let payload = "{\"op\": \"eval\",}\n" in
          send (Printf.sprintf "%d\n%s" (String.length payload) payload);
          (match Protocol.read_frame r with
          | Ok resp ->
              let j = Result.get_ok (Json.parse resp) in
              check_bool "bad JSON is a malformed response" true
                (Option.bind (Json.member "error" j)
                   (fun e -> Option.bind (Json.member "kind" e) Json.to_str)
                = Some "malformed")
          | Error e -> Alcotest.failf "expected a response, got %s" (Protocol.frame_error_to_string e));
          (* the same connection still answers a valid request *)
          let b = Buffer.create 64 in
          Protocol.write_frame b (Protocol.ping_request_json ());
          send (Buffer.contents b);
          match Protocol.read_frame r with
          | Ok resp ->
              let j = Result.get_ok (Json.parse resp) in
              check_bool "connection survives bad JSON" true
                (Option.bind (Json.member "status" j) Json.to_str = Some "ok")
          | Error e -> Alcotest.failf "expected pong, got %s" (Protocol.frame_error_to_string e)))

let test_server_oversized_frame () =
  with_server "bigframe"
    ~configure:(fun c -> { c with Server.max_frame_bytes = 256 })
    (fun socket _ ->
      with_client socket (fun c ->
          (* the whole frame blows the transport limit before admission sees it *)
          match Client.eval c ~program:(String.make 1024 ' ') () with
          | Ok r -> check_bool "oversized frame" true (Client.error_kind r = Some "oversized")
          | Error _ ->
              (* the server may close after the framing error before the
                 response is read; either way it must not crash *)
              ()))

let test_server_shutdown_drains () =
  let socket = test_socket "drain" in
  let t = Server.start (Server.default_config ~socket_path:socket) in
  with_client socket (fun c ->
      (* a request already on the wire when stop lands still gets answered *)
      let fd_response =
        let j = Result.get_ok (Client.eval c ~edb:ex41_edb ~program:ex41_program ()) in
        check_bool "pre-stop request ok" true (Client.is_ok j);
        Server.stop t;
        (* the next request races the drain: it must get either a normal
           answer or a structured shutting_down error, never a broken pipe *)
        match Client.eval c ~edb:ex41_edb ~program:ex41_program () with
        | Ok j -> Client.is_ok j || Client.error_kind j = Some "shutting_down"
        | Error _ -> true (* connection already drained and closed: also clean *)
      in
      check_bool "in-flight drain" true fd_response);
  Server.wait t;
  check_bool "socket unlinked after drain" false (Sys.file_exists socket);
  check_bool "new connections refused" true (Result.is_error (Client.connect socket))

let test_server_concurrent_clients () =
  with_server "concurrent" (fun socket _ ->
      let expected =
        with_client socket (fun c ->
            Client.answers (Result.get_ok (Client.eval c ~edb:ex41_edb ~program:ex41_program ())))
      in
      let domains =
        Array.init 4 (fun i ->
            Domain.spawn (fun () ->
                with_client socket (fun c ->
                    List.init 5 (fun _ ->
                        let r =
                          Result.get_ok
                            (Client.eval c
                               ~tenant:(Printf.sprintf "tenant%d" i)
                               ~edb:ex41_edb ~program:ex41_program ())
                        in
                        Client.is_ok r && Client.answers r = expected))))
      in
      Array.iter
        (fun d -> check_bool "every concurrent response correct" true
            (List.for_all Fun.id (Domain.join d)))
        domains)

(* ----- materialized views over the socket ----- *)

let tc_program = "r1: t(X, Y) :- e(X, Y).\nr2: t(X, Y) :- t(X, Z), e(Z, Y).\n#query t."

let test_server_view_lifecycle () =
  with_server "views" (fun socket _ ->
      with_client socket (fun c ->
          (* a view must be materialized before it can be updated or read *)
          let r = Result.get_ok (Client.query c ~view:"tc" ()) in
          check_bool "query before materialize" true
            (Client.error_kind r = Some "unknown_view");
          let r =
            Result.get_ok (Client.insert c ~view:"tc" ~facts:"e(9, 10)." ())
          in
          check_bool "insert before materialize" true
            (Client.error_kind r = Some "unknown_view");
          (* the oracle: after every update the view's answers must equal a
             fresh one-shot eval of the same program over the current EDB *)
          let edb = ref [ "e(0, 1)."; "e(1, 2)."; "e(2, 3)." ] in
          let scratch () =
            let r =
              Result.get_ok
                (Client.eval c ~pipeline:"none" ~edb:(String.concat " " !edb)
                   ~program:tc_program ())
            in
            check_bool "one-shot eval ok" true (Client.is_ok r);
            Client.answers r
          in
          let r =
            Result.get_ok
              (Client.materialize c ~view:"tc" ~pipeline:"none"
                 ~edb:(String.concat " " !edb) ~program:tc_program ())
          in
          check_bool "materialize ok" true (Client.is_ok r);
          check_bool "materialize answers = one-shot eval" true
            (Client.answers r = scratch ());
          (* interleave inserts, retractions, queries and plain evals *)
          edb := "e(3, 4)." :: !edb;
          let r = Result.get_ok (Client.insert c ~view:"tc" ~facts:"e(3, 4)." ()) in
          check_bool "insert ok" true (Client.is_ok r);
          check_bool "insert answers = one-shot eval" true (Client.answers r = scratch ());
          check_bool "insert reports maintenance stats" true
            (match Json.member "maintain" r with
            | Some (Json.Obj kvs) -> List.mem_assoc "inserted" kvs
            | _ -> false);
          edb := List.filter (fun f -> f <> "e(1, 2).") !edb;
          let r = Result.get_ok (Client.retract c ~view:"tc" ~facts:"e(1, 2)." ()) in
          check_bool "retract ok" true (Client.is_ok r);
          check_bool "retract answers = one-shot eval" true (Client.answers r = scratch ());
          let q = Result.get_ok (Client.query c ~view:"tc" ()) in
          check_bool "query ok" true (Client.is_ok q);
          check_bool "query answers = last update's" true
            (Client.answers q = Client.answers r);
          check_bool "query reports fixpoint" true
            (Option.bind (Json.member "fixpoint" q) Json.to_bool = Some true);
          (* views are tenant-scoped *)
          let r = Result.get_ok (Client.query c ~tenant:"other" ~view:"tc" ()) in
          check_bool "another tenant does not see the view" true
            (Client.error_kind r = Some "unknown_view");
          (* bad facts are a structured parse error, and the view survives *)
          let r = Result.get_ok (Client.insert c ~view:"tc" ~facts:"e(1," ()) in
          check_bool "malformed facts" true (Client.error_kind r = Some "parse_error");
          check_bool "view survives the parse error" true
            (Client.is_ok (Result.get_ok (Client.query c ~view:"tc" ())));
          (* the view cache shows up in stats *)
          let s = Result.get_ok (Client.stats c) in
          match Json.member "view_cache" s with
          | Some vc ->
              check_bool "view cached" true
                (match Option.bind (Json.member "entries" vc) Json.to_int with
                | Some n -> n >= 1
                | None -> false)
          | None -> Alcotest.fail "stats lacks view_cache"))

let test_server_maintenance_budget () =
  with_server "viewbudget" (fun socket _ ->
      with_client socket (fun c ->
          let chain n =
            String.concat " " (List.init n (fun i -> Printf.sprintf "e(%d, %d)." i (i + 1)))
          in
          let r =
            Result.get_ok
              (Client.materialize c ~view:"tc" ~pipeline:"none" ~edb:(chain 3)
                 ~program:tc_program ())
          in
          check_bool "materialize ok" true (Client.is_ok r);
          (* maintenance requests pass the same admission gate as evals:
             asking for more than the server cap is rejected up front *)
          let r =
            Result.get_ok
              (Client.insert c ~max_derivations:1_000_000 ~view:"tc" ~facts:"e(3, 4)." ())
          in
          check_bool "over-cap maintenance budget rejected" true
            (Client.error_kind r = Some "admission");
          check_bool "rejected op did not touch the view" true
            (Client.is_ok (Result.get_ok (Client.query c ~view:"tc" ())));
          (* a maintenance round truncated by its budget drops the view
             instead of serving an under-approximated fixpoint *)
          let r =
            Result.get_ok
              (Client.insert c ~max_iterations:1 ~view:"tc" ~facts:(chain 10) ())
          in
          check_bool "truncated maintenance is a budget error" true
            (Client.error_kind r = Some "budget");
          check_bool "budget message mentions the drop" true
            (match Client.error_message r with
            | Some m ->
                let has sub =
                  let n = String.length sub in
                  let rec go i =
                    i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
                  in
                  go 0
                in
                has "dropped"
            | None -> false);
          let r = Result.get_ok (Client.query c ~view:"tc" ()) in
          check_bool "truncated view was dropped" true
            (Client.error_kind r = Some "unknown_view");
          (* budgets on materialize itself: a truncated materialization is
             a budget error and nothing is cached *)
          let r =
            Result.get_ok
              (Client.materialize c ~view:"big" ~pipeline:"none" ~max_iterations:2
                 ~edb:(chain 10) ~program:tc_program ())
          in
          check_bool "truncated materialize is a budget error" true
            (Client.error_kind r = Some "budget");
          let r = Result.get_ok (Client.query c ~view:"big" ()) in
          check_bool "truncated materialize cached nothing" true
            (Client.error_kind r = Some "unknown_view")))

let () =
  Alcotest.run "cql_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "float printing" `Quick test_json_float_printing;
          Alcotest.test_case "integer bounds" `Quick test_json_int_bounds;
        ] );
      ( "framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "bad header" `Quick test_frame_bad_header;
          Alcotest.test_case "truncated" `Quick test_frame_truncated;
          Alcotest.test_case "too large" `Quick test_frame_too_large;
        ] );
      ( "requests", [ Alcotest.test_case "decoding" `Quick test_request_of_json ] );
      ( "plan-cache", [ Alcotest.test_case "LRU + counters" `Quick test_plan_cache_lru ] );
      ( "admission", [ Alcotest.test_case "verdicts" `Quick test_admission ] );
      ( "server",
        [
          Alcotest.test_case "cache miss then hit" `Quick test_server_cache_miss_then_hit;
          Alcotest.test_case "parse errors are structured" `Quick test_server_parse_error;
          Alcotest.test_case "admission + budget" `Quick test_server_admission_and_budget;
          Alcotest.test_case "stats + queryless" `Quick test_server_stats_and_queryless;
          Alcotest.test_case "malformed frames" `Quick test_server_malformed_frames;
          Alcotest.test_case "oversized frame" `Quick test_server_oversized_frame;
          Alcotest.test_case "shutdown drains in-flight" `Quick test_server_shutdown_drains;
          Alcotest.test_case "concurrent clients" `Quick test_server_concurrent_clients;
        ] );
      ( "views",
        [
          Alcotest.test_case "materialize/insert/retract/query" `Quick
            test_server_view_lifecycle;
          Alcotest.test_case "admission + budget on maintenance" `Quick
            test_server_maintenance_budget;
        ] );
    ]
