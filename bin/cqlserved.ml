(* cqlserved: the persistent multi-tenant query daemon.

   Listens on a Unix-domain socket for length-prefixed NDJSON eval/ping/
   stats requests (see lib/serve/protocol.mli), caches compiled plans by
   program digest, and runs each request's fixpoint as one job on a domain
   pool.  SIGTERM/SIGINT stop accepting, drain in-flight requests and exit
   cleanly. *)

open Cql_serve
open Cmdliner

let serve socket workers plan_cache_entries view_cache_entries max_program_kb max_inflight
    max_derivations max_iterations trace_json metrics =
  if trace_json <> None || metrics then Cql_obs.Obs.set_enabled true;
  let config =
    {
      Server.socket_path = socket;
      workers;
      limits =
        {
          Admission.max_program_bytes = max_program_kb * 1024;
          max_inflight_per_tenant = max_inflight;
          max_derivations;
          max_iterations;
        };
      plan_cache_entries;
      view_cache_entries;
      max_frame_bytes = Protocol.max_frame_default;
    }
  in
  let t =
    try Server.start config
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "cqlserved: cannot listen on %s: %s\n%!" socket (Unix.error_message e);
      exit 1
  in
  let on_signal _ = Server.stop t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Printf.eprintf "cqlserved: listening on %s (%d workers)\n%!" socket config.Server.workers;
  Server.wait t;
  Printf.eprintf "cqlserved: drained %d connections, exiting\n%!" (Server.connections_served t);
  (match trace_json with
  | None -> ()
  | Some "-" -> Cql_obs.Obs.write_ndjson stdout
  | Some path -> (
      match open_out path with
      | oc ->
          Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Cql_obs.Obs.write_ndjson oc)
      | exception Sys_error msg -> prerr_endline msg));
  if metrics then Format.eprintf "%a@?" Cql_obs.Obs.pp_summary ();
  0

let socket_arg =
  Arg.(value & opt string "cqlserved.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path to listen on (a stale file is replaced)")

let workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
         ~doc:"Concurrent connection handlers (worker domains)")

let plan_cache_arg =
  Arg.(value & opt int 256 & info [ "plan-cache" ] ~docv:"N"
         ~doc:"Maximum compiled plans kept in the LRU plan cache")

let view_cache_arg =
  Arg.(value & opt int 64 & info [ "view-cache" ] ~docv:"N"
         ~doc:"Maximum live materialized views kept per process (LRU; an evicted \
               view must be re-materialized before further insert/retract)")

let max_program_kb_arg =
  Arg.(value & opt int 1024 & info [ "max-program-kb" ] ~docv:"KB"
         ~doc:"Reject programs larger than this (admission control)")

let max_inflight_arg =
  Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N"
         ~doc:"Concurrent eval requests allowed per tenant")

let max_derivations_arg =
  Arg.(value & opt int 200_000 & info [ "max-derivations" ] ~docv:"N"
         ~doc:"Hard cap on any request's derivation budget; a request asking for \
               more is rejected, an absent budget defaults to the cap")

let max_iterations_arg =
  Arg.(value & opt int 200 & info [ "max-iterations" ] ~docv:"N"
         ~doc:"Hard cap on any request's iteration budget")

let trace_json_arg =
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE"
         ~doc:"Enable per-request tracing and write the span events as NDJSON to \
               $(docv) on shutdown ('-' = stdout)")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Enable tracing and print a per-phase summary to stderr on shutdown")

let () =
  let term =
    Term.(const serve $ socket_arg $ workers_arg $ plan_cache_arg $ view_cache_arg
          $ max_program_kb_arg $ max_inflight_arg $ max_derivations_arg $ max_iterations_arg
          $ trace_json_arg $ metrics_arg)
  in
  let info =
    Cmd.info "cqlserved" ~version:"1.0.0"
      ~doc:"Persistent multi-tenant CQL query service with a compiled-plan cache"
  in
  exit (Cmd.eval' (Cmd.v info term))
