(* cqlrepl: an interactive toplevel for CQL programs.

     $ dune exec bin/cqlrepl.exe [-- FILE...]
     cql> flight(madison, chicago, 50, 100).
     cql> cheap(S, D) :- flight(S, D, T, C), C <= 150.
     cql> ?- cheap(madison, D).
     cql> :rewrite
     cql> :help

   Clauses accumulate into the session program; queries evaluate against it
   with safety budgets (tune with :iterations / :derivations). *)

open Cql_datalog
open Cql_core

type state = {
  mutable program : Program.t;
  mutable explain : bool;
  mutable max_iterations : int;
  mutable max_derivations : int;
}

let initial_state () =
  { program = Program.make []; explain = false; max_iterations = 100; max_derivations = 100_000 }

let help_text =
  {|Commands:
  <rule>.               add a rule or fact to the session program
  ?- <body>.            evaluate a query against the session program
  :load FILE            add all clauses of FILE
  :list                 show the session program
  :analyze              infer predicate constraints (and QRP if #query set)
  :rewrite              run Constraint_rewrite and show the result
  :optimal              run the pred,qrp,mg pipeline and show the result
  :explain              toggle derivation trees on query answers
  :iterations N         set the evaluation iteration budget (current shown)
  :derivations N        set the evaluation derivation budget
  :clear                drop all session clauses
  :help                 this text
  :quit                 leave|}

let print_err msg = Printf.printf "error: %s\n%!" msg

let eval_query st (lits, cstr) =
  let p, q = Program.with_query_rule st.program lits cstr in
  match Program.check p with
  | Error msg -> print_err msg
  | Ok () ->
      let res =
        Cql_eval.Engine.run ~max_iterations:st.max_iterations
          ~max_derivations:st.max_derivations p ~edb:[]
      in
      (* deterministic order (predicate, then canonical fact compare) so
         output diffs cleanly regardless of derivation interleaving *)
      let answers = List.sort Cql_eval.Fact.compare (Cql_eval.Engine.facts_of res q) in
      let stats = Cql_eval.Engine.stats res in
      if answers = [] then
        Printf.printf "no%s\n"
          (if stats.Cql_eval.Engine.reached_fixpoint then ""
           else "  (budget exhausted before fixpoint: answers may be incomplete)")
      else begin
        List.iter
          (fun f ->
            Printf.printf "  %s\n" (Cql_eval.Fact.to_string f);
            if st.explain then
              match Cql_eval.Explain.tree res f with
              | Some t -> print_string (Cql_eval.Explain.to_string t)
              | None -> ())
          answers;
        if not stats.Cql_eval.Engine.reached_fixpoint then
          print_endline "  (budget exhausted before fixpoint: answers may be incomplete)"
      end;
      Printf.printf "%% %d iterations, %d derivations, %d facts\n"
        stats.Cql_eval.Engine.iterations stats.Cql_eval.Engine.derivations
        (Cql_eval.Engine.total_facts res);
      Printf.printf
        "%% store: %d indexed probes (%d hits, %d facts skipped), %d subsumption checks avoided\n%!"
        stats.Cql_eval.Engine.index_probes stats.Cql_eval.Engine.index_hits
        stats.Cql_eval.Engine.facts_skipped stats.Cql_eval.Engine.subsumptions_avoided

let add_source st src =
  match Parser.program_of_string src with
  | exception Parser.Error msg -> print_err msg
  | addition ->
      let merged =
        List.fold_left (fun p r -> Program.add_rule r p) st.program addition.Program.rules
      in
      let merged =
        match addition.Program.query with
        | Some q -> Program.set_query q merged
        | None -> merged
      in
      (match Program.check merged with
      | Ok () -> st.program <- merged
      | Error msg -> print_err msg)

let show_program st =
  if st.program.Program.rules = [] then print_endline "% empty program"
  else print_endline (Program.to_string (Program.prettify st.program))

let analyze st =
  let pres = Pred_constraints.gen st.program in
  Printf.printf "predicate constraints (converged=%b):\n" pres.Pred_constraints.converged;
  List.iter
    (fun (pred, c) -> Printf.printf "  %-16s %s\n" pred (Cql_constr.Cset.to_string c))
    pres.Pred_constraints.constraints;
  match st.program.Program.query with
  | None -> print_endline "% no #query set: skipping QRP constraints"
  | Some _ ->
      let p1 = Pred_constraints.propagate pres st.program in
      let qres = Qrp.gen p1 in
      Printf.printf "QRP constraints (converged=%b):\n" qres.Qrp.converged;
      List.iter
        (fun (pred, c) -> Printf.printf "  %-16s %s\n" pred (Cql_constr.Cset.to_string c))
        qres.Qrp.constraints

let rewrite_and_show st f =
  match st.program.Program.query with
  | None -> print_err "set a query predicate first (#query p.)"
  | Some _ -> (
      match f st.program with
      | exception Invalid_argument msg -> print_err msg
      | p' -> print_endline (Program.to_string (Program.prettify p')))

let load_file st path =
  match open_in path with
  | exception Sys_error msg -> print_err msg
  | ic ->
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      close_in ic;
      add_source st src;
      Printf.printf "%% loaded %s\n%!" path

let handle_command st line =
  let parts = String.split_on_char ' ' (String.trim line) in
  match List.filter (fun s -> s <> "") parts with
  | [ ":quit" ] | [ ":q" ] -> raise Exit
  | [ ":help" ] -> print_endline help_text
  | [ ":list" ] -> show_program st
  | [ ":clear" ] ->
      st.program <- Program.make [];
      print_endline "% cleared"
  | [ ":analyze" ] -> analyze st
  | [ ":rewrite" ] -> rewrite_and_show st (fun p -> fst (Rewrite.constraint_rewrite p))
  | [ ":optimal" ] ->
      rewrite_and_show st (fun p ->
          let q = Option.get p.Program.query in
          let ad = String.make (Program.arity p q) 'f' in
          fst (Rewrite.optimal ~adornment:ad p))
  | [ ":explain" ] ->
      st.explain <- not st.explain;
      Printf.printf "%% explain %s\n" (if st.explain then "on" else "off")
  | [ ":iterations" ] -> Printf.printf "%% iteration budget: %d\n" st.max_iterations
  | [ ":iterations"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> st.max_iterations <- n
      | _ -> print_err "expected a positive integer")
  | [ ":derivations" ] -> Printf.printf "%% derivation budget: %d\n" st.max_derivations
  | [ ":derivations"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> st.max_derivations <- n
      | _ -> print_err "expected a positive integer")
  | [ ":load"; path ] -> load_file st path
  | cmd :: _ -> print_err (Printf.sprintf "unknown command %s (:help for help)" cmd)
  | [] -> ()

(* queries need the parser's body grammar; reuse it by parsing the query as
   a one-clause program against a dummy context *)
let handle_query st line =
  match Parser.program_of_string line with
  | exception Parser.Error msg -> print_err msg
  | p -> (
      (* the parser turned ?- into a rule for a fresh query predicate *)
      match p.Program.query with
      | Some q ->
          let rules = Program.rules_defining p q in
          let body_and_cstr =
            List.map (fun (r : Rule.t) -> (r.Rule.body, r.Rule.cstr)) rules
          in
          List.iter (fun (lits, cstr) -> eval_query st (lits, cstr)) body_and_cstr
      | None -> print_err "malformed query")

let rec read_clause buf =
  (* keep reading lines until a clause-terminating '.' *)
  let line = read_line () in
  Buffer.add_string buf line;
  Buffer.add_char buf '\n';
  let s = String.trim (Buffer.contents buf) in
  if s = "" then ""
  else if String.length s > 0 && (s.[0] = ':' || s.[String.length s - 1] = '.') then s
  else begin
    print_string "...> ";
    read_clause buf
  end

let () =
  let st = initial_state () in
  Array.iteri (fun i arg -> if i > 0 then load_file st arg) Sys.argv;
  print_endline "cqlrepl: pushing constraint selections (:help for commands)";
  try
    while true do
      print_string "cql> ";
      match read_clause (Buffer.create 64) with
      | "" -> ()
      | s when s.[0] = ':' -> handle_command st s
      | s when String.length s >= 2 && String.sub s 0 2 = "?-" -> handle_query st s
      | s -> add_source st s
      | exception End_of_file -> raise Exit
    done
  with Exit -> print_endline "bye"
