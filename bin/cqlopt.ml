(* cqlopt: command-line front end for the constraint-pushing optimizer.

   Subcommands:
     analyze  - infer predicate constraints and QRP constraints
     rewrite  - apply a transformation pipeline and print the program
     eval     - bottom-up evaluation of a program against an EDB file
     fuzz     - differential fuzzing of every pipeline against oracles
     client   - send one request to a running cqlserved daemon
     bench    - service benchmarks (bench serve drives a daemon under load) *)

open Cql_datalog
open Cql_core
open Cmdliner

let read_program path =
  try Ok (Parser.program_of_file path) with
  | Parser.Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let read_file path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Ok src
  with Sys_error msg -> Error msg

(* a fact whose constraint is unsatisfiable in the current domain (e.g. one
   pinning a fractional value under --domain int) denotes the empty
   relation: drop it rather than crash *)
let fact_opt r =
  match Cql_eval.Fact.of_fact_rule r with
  | f -> Some f
  | exception Cql_eval.Fact.Unsat -> None

let read_edb = function
  | None -> Ok []
  | Some path -> (
      try
        let ic = open_in path in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        Ok (List.filter_map fact_opt (Parser.facts_of_string src))
      with
      | Parser.Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Sys_error msg -> Error msg)

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"CQL program file")

let max_iters_arg =
  Arg.(value & opt int 50 & info [ "max-iters" ] ~docv:"N"
         ~doc:"Iteration budget for the constraint-generation fixpoints")

let solver_stats_arg =
  Arg.(value & flag & info [ "solver-stats" ]
         ~doc:"After the run, print decision-procedure call counts and \
               memoization cache hit rates to stderr")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domains used by the evaluation engine (1 = exact sequential \
               path; 0 = auto: \\$CQLOPT_JOBS if set, else the runtime's \
               recommended domain count)")

(* [--jobs 0] (the default) defers to CQLOPT_JOBS when set — that is how CI
   exercises both paths — and otherwise asks the runtime *)
let apply_jobs n =
  if n > 0 then Cql_eval.Engine.set_default_jobs n
  else if Sys.getenv_opt "CQLOPT_JOBS" = None then
    Cql_eval.Engine.set_default_jobs (Cql_par.Pool.recommended_jobs ())

let domain_conv =
  Arg.enum [ ("rat", Cql_constr.Cdomain.Q); ("int", Cql_constr.Cdomain.Z) ]

let domain_arg =
  Arg.(value & opt domain_conv Cql_constr.Cdomain.Q & info [ "domain" ] ~docv:"D"
         ~doc:"Constraint domain: rat (the paper's rational setting, the default) \
               or int (decide every constraint exactly over the integers: \
               per-atom tightening, Omega-test elimination, branch-and-bound \
               fallback)")

let apply_domain d = Cql_constr.Cdomain.set_default d

let no_interval_arg =
  Arg.(value & flag & info [ "no-interval" ]
         ~doc:"Disable the interval fast tier in front of the exact decision \
               procedures, forcing every satisfiability/implication check \
               through simplex/Fourier-Motzkin (equivalent to setting \
               \\$CQLOPT_NO_INTERVAL)")

(* CQLOPT_NO_INTERVAL already disabled the tier at load time; the flag only
   ever turns it off, never back on *)
let apply_interval no_interval =
  if no_interval then Cql_constr.Interval.enabled := false

let no_compile_arg =
  Arg.(value & flag & info [ "no-compile" ]
         ~doc:"Disable register-frame join-plan compilation, running every \
               rule through the tuple-at-a-time substitution interpreter \
               (equivalent to setting \\$CQLOPT_NO_COMPILE)")

(* same one-way convention as --no-interval *)
let apply_compile no_compile =
  if no_compile then Cql_eval.Compile.enabled := false

let print_solver_stats flag =
  if flag then
    Format.eprintf "%a@?" Cql_constr.Solver_stats.pp (Cql_constr.Solver_stats.snapshot ())

(* ----- tracing (lib/obs) ----- *)

let trace_json_arg =
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE"
         ~doc:"Enable phase tracing and, when the command finishes, write the \
               recorded span events as NDJSON (one JSON object per line) to \
               $(docv), or to stdout for '-'")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Enable phase tracing and print a per-phase timing summary plus \
               all nonzero counters to stderr when the command finishes")

(* arm tracing before the work runs; CQLOPT_TRACE=1 arms it at load time
   without either flag *)
let apply_tracing trace_json metrics =
  if trace_json <> None || metrics then Cql_obs.Obs.set_enabled true

let emit_tracing trace_json metrics =
  (match trace_json with
  | None -> ()
  | Some "-" -> Cql_obs.Obs.write_ndjson stdout
  | Some path -> (
      match open_out path with
      | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Cql_obs.Obs.write_ndjson oc)
      | exception Sys_error msg -> prerr_endline msg));
  if metrics then Format.eprintf "%a@?" Cql_obs.Obs.pp_summary ()

(* ----- analyze ----- *)

let analyze_cmd =
  let run path max_iters =
    match read_program path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok p ->
        let pres = Pred_constraints.gen ~max_iters p in
        Printf.printf "Predicate constraints (converged=%b, %d iterations):\n"
          pres.Pred_constraints.converged pres.Pred_constraints.iterations;
        List.iter
          (fun (pred, c) -> Printf.printf "  %-20s %s\n" pred (Cql_constr.Cset.to_string c))
          pres.Pred_constraints.constraints;
        (match p.Program.query with
        | Some _ ->
            let p1 = Pred_constraints.propagate pres p in
            let qres = Qrp.gen ~max_iters p1 in
            Printf.printf "QRP constraints after pred propagation (converged=%b, %d iterations):\n"
              qres.Qrp.converged qres.Qrp.iterations;
            List.iter
              (fun (pred, c) -> Printf.printf "  %-20s %s\n" pred (Cql_constr.Cset.to_string c))
              qres.Qrp.constraints
        | None -> print_endline "No query predicate: skipping QRP constraints (#query p. sets one)");
        Printf.printf "Decidable class (Theorem 5.1): %b\n" (Decidable.in_class p);
        if Decidable.in_class p then
          Printf.printf "  iteration bound: %s\n"
            (Cql_num.Bigint.to_string (Decidable.iteration_bound p));
        0
  in
  let term = Term.(const run $ program_arg $ max_iters_arg) in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Infer minimum predicate constraints and QRP constraints for a program")
    term

(* ----- rewrite ----- *)

let parse_steps adornment constraint_magic s =
  let step_of = function
    | "pred" -> Ok Rewrite.Pred
    | "qrp" -> Ok Rewrite.Qrp
    | "mg" | "magic" -> Ok (Rewrite.Magic { adornment; constraint_magic })
    | "cmg" -> Ok (Rewrite.Magic { adornment; constraint_magic = true })
    | "mg-complete" -> Ok Rewrite.Magic_complete
    | other -> Error (Printf.sprintf "unknown step %S (use pred, qrp, mg, cmg, mg-complete)" other)
  in
  List.fold_left
    (fun acc name ->
      match (acc, step_of name) with
      | Ok steps, Ok s -> Ok (steps @ [ s ])
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e)
    (Ok [])
    (String.split_on_char ',' s)

let rewrite_cmd =
  let run path domain steps adornment no_cmagic gmt optimal max_iters inline_seed simplify
      solver_stats jobs no_interval no_compile trace_json metrics =
    apply_domain domain;
    apply_jobs jobs;
    apply_interval no_interval;
    apply_compile no_compile;
    apply_tracing trace_json metrics;
    let code =
    match read_program path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok p -> (
        let adornment =
          match (adornment, p.Program.query) with
          | Some a, _ -> a
          | None, Some q -> String.make (Program.arity p q) 'f'
          | None, None -> ""
        in
        let result =
          if gmt then
            try Ok (Gmt.pipeline ~query_adornment:adornment p)
            with Invalid_argument msg -> Error msg
          else if optimal then
            try Ok (fst (Rewrite.optimal ~max_iters ~adornment p))
            with Invalid_argument msg -> Error msg
          else
            match parse_steps adornment (not no_cmagic) steps with
            | Error msg -> Error msg
            | Ok steps -> (
                try Ok (fst (Rewrite.sequence ~max_iters steps p))
                with Invalid_argument msg -> Error msg)
        in
        match result with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok p' ->
            let p' = if inline_seed then Magic.inline_seed p' else p' in
            let p' = if simplify then Simplify.program p' else p' in
            print_endline (Program.to_string (Program.prettify p'));
            0)
    in
    print_solver_stats solver_stats;
    emit_tracing trace_json metrics;
    code
  in
  let steps =
    Arg.(value & opt string "pred,qrp" & info [ "steps" ] ~docv:"STEPS"
           ~doc:"Comma-separated pipeline: pred, qrp, mg, cmg, mg-complete")
  in
  let adornment =
    Arg.(value & opt (some string) None & info [ "adornment" ] ~docv:"AD"
           ~doc:"Query adornment for magic steps (default: all-free)")
  in
  let no_cmagic =
    Arg.(value & flag & info [ "no-constraint-magic" ]
           ~doc:"Drop constraints from magic rules (plain magic, rule mr1' of Section 1)")
  in
  let gmt = Arg.(value & flag & info [ "gmt" ] ~doc:"Run the GMT pipeline of Figure 2") in
  let optimal =
    Arg.(value & flag & info [ "optimal" ]
           ~doc:"Run the optimal sequence pred,qrp,mg of Theorem 7.10")
  in
  let inline_seed =
    Arg.(value & flag & info [ "inline-seed" ] ~doc:"Inline the all-free magic seed fact")
  in
  let simplify =
    Arg.(value & flag & info [ "simplify" ]
           ~doc:"Post-pass: drop redundant constraint atoms and subsumed rules")
  in
  let term =
    Term.(const run $ program_arg $ domain_arg $ steps $ adornment $ no_cmagic $ gmt $ optimal
          $ max_iters_arg $ inline_seed $ simplify $ solver_stats_arg $ jobs_arg
          $ no_interval_arg $ no_compile_arg $ trace_json_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "rewrite" ~doc:"Rewrite a program by pushing constraint selections") term

(* ----- eval ----- *)

let eval_cmd =
  let run path edb_path domain max_iterations max_derivations traced naive explain stratified
      solver_stats jobs no_interval no_compile trace_json metrics =
    apply_domain domain;
    apply_jobs jobs;
    apply_interval no_interval;
    apply_compile no_compile;
    apply_tracing trace_json metrics;
    let code =
    match read_program path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok p -> (
        match read_edb edb_path with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok edb ->
            let max_iterations = if max_iterations = 0 then None else Some max_iterations in
            let max_derivations = if max_derivations = 0 then None else Some max_derivations in
            let res =
              if naive then Cql_eval.Engine.run_naive ?max_iterations ?max_derivations p ~edb
              else if stratified then
                Cql_eval.Engine.run_stratified ?max_iterations ?max_derivations p ~edb
              else Cql_eval.Engine.run ?max_iterations ?max_derivations ~traced p ~edb
            in
            if traced then
              List.iter
                (fun (t : Cql_eval.Engine.trace_entry) ->
                  Printf.printf "iter %-3d %-10s %s%s\n" t.Cql_eval.Engine.iteration
                    t.Cql_eval.Engine.rule_label
                    (Cql_eval.Fact.to_string t.Cql_eval.Engine.fact)
                    (if t.Cql_eval.Engine.subsumed then "   [subsumed]" else ""))
                (Cql_eval.Engine.trace res);
            let s = Cql_eval.Engine.stats res in
            Printf.printf
              "iterations=%d derivations=%d facts=%d fixpoint=%b ground_only=%b\n"
              s.Cql_eval.Engine.iterations s.Cql_eval.Engine.derivations
              (Cql_eval.Engine.total_facts res) s.Cql_eval.Engine.reached_fixpoint
              (Cql_eval.Engine.all_ground res);
            (match p.Program.query with
            | Some q ->
                Printf.printf "answers (%s):\n" q;
                List.iter
                  (fun f ->
                    Printf.printf "  %s\n" (Cql_eval.Fact.to_string f);
                    if explain then
                      match Cql_eval.Explain.tree res f with
                      | Some t -> print_string (Cql_eval.Explain.to_string t)
                      | None -> ())
                  (* sorted (predicate, then canonical fact order) so output
                     diffs cleanly across jobs settings and runs *)
                  (List.sort Cql_eval.Fact.compare (Cql_eval.Engine.facts_of res q))
            | None -> ());
            0)
    in
    print_solver_stats solver_stats;
    emit_tracing trace_json metrics;
    code
  in
  let edb =
    Arg.(value & opt (some file) None & info [ "edb" ] ~docv:"FILE" ~doc:"EDB facts file")
  in
  let max_iterations =
    Arg.(value & opt int 0 & info [ "max-iterations" ] ~docv:"N"
           ~doc:"Stop after N iterations (0 = unlimited)")
  in
  let max_derivations =
    Arg.(value & opt int 0 & info [ "max-derivations" ] ~docv:"N"
           ~doc:"Stop after N derivations (0 = unlimited)")
  in
  let traced = Arg.(value & flag & info [ "trace" ] ~doc:"Print every derivation") in
  let naive = Arg.(value & flag & info [ "naive" ] ~doc:"Naive instead of semi-naive") in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print a derivation tree for each answer")
  in
  let stratified =
    Arg.(value & flag & info [ "stratified" ] ~doc:"Evaluate SCC by SCC (callees first)")
  in
  let term =
    Term.(const run $ program_arg $ edb $ domain_arg $ max_iterations $ max_derivations
          $ traced $ naive $ explain $ stratified $ solver_stats_arg $ jobs_arg
          $ no_interval_arg $ no_compile_arg $ trace_json_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "eval" ~doc:"Bottom-up evaluation of a CQL program") term

(* ----- fuzz ----- *)

let fuzz_cmd =
  let module H = Cql_gen.Harness in
  let module G = Cql_gen.Generate in
  let run seed count mode domain inject_bug replay out solver_stats jobs no_interval
      no_compile trace_json metrics =
    apply_domain domain;
    apply_jobs jobs;
    apply_interval no_interval;
    apply_compile no_compile;
    apply_tracing trace_json metrics;
    let code =
    match replay with
    | Some path -> (
        match read_file path with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok src -> (
            match H.parse_counterexample src with
            | exception Parser.Error msg ->
                Printf.eprintf "%s: %s\n" path msg;
                1
            | p, edb, updates -> (
                let result =
                  if updates = [] then
                    (* --mode int replays the case under ℤ; other modes are
                       inferred from the program *)
                    H.replay ?mode:(if mode = "int" then Some G.Int else None) p edb
                  else H.replay_update p edb updates
                in
                match result with
                | None ->
                    print_endline "replay: all oracles passed";
                    0
                | Some f ->
                    Printf.printf "replay: FAILURE oracle=%s pipeline=%s: %s\n"
                      (H.oracle_name f.H.oracle) f.H.pipeline f.H.detail;
                    1)))
    | None -> (
        let report (s : H.summary) =
          Format.printf "%a" H.pp_summary s;
          match s.H.failure with
          | None ->
              if inject_bug then begin
                print_endline "injected bug was NOT caught";
                1
              end
              else 0
          | Some f ->
              let doc = H.counterexample_to_string s f in
              let oc = open_out out in
              output_string oc doc;
              close_out oc;
              Printf.printf "counterexample (%d rules, %d facts, %d updates) written to %s\n"
                (List.length f.H.program.Program.rules)
                (List.length f.H.edb) (List.length f.H.updates) out;
              if inject_bug then begin
                print_endline "injected bug caught as intended";
                0
              end
              else 1
        in
        match mode with
        | "update" ->
            if inject_bug then begin
              prerr_endline "--inject-bug targets the rewrite oracles, not --mode update";
              1
            end
            else report (H.run_update ~seed ~count ())
        | _ -> (
            match G.mode_of_string mode with
            | None ->
                Printf.eprintf "unknown mode %S (use decidable, linear, int or update)\n" mode;
                1
            | Some m ->
                let config = G.default m in
                let tamper = if inject_bug then Some H.drop_disjuncts else None in
                report (H.run ?tamper ~config ~seed ~count ())))
    in
    print_solver_stats solver_stats;
    emit_tracing trace_json metrics;
    code
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed") in
  let count =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Number of cases to generate")
  in
  let mode =
    Arg.(value & opt string "decidable" & info [ "mode" ] ~docv:"MODE"
           ~doc:"Constraint mode: decidable (Theorem 5.1 class), linear (full fragment), \
                 int (integer domain: every oracle under Z plus the rational-relaxation \
                 coverage oracle) or update (incremental view maintenance vs from-scratch \
                 re-evaluation)")
  in
  let inject_bug =
    Arg.(value & flag & info [ "inject-bug" ]
           ~doc:"Demo: run an extra pipeline with a deliberately broken constraint \
                 propagation (folding with constraints the definitions no longer match); \
                 exits 0 iff the oracles catch it")
  in
  let replay =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-check a counterexample file instead of generating cases")
  in
  let out =
    Arg.(value & opt string "fuzz_counterexample.cql" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the shrunk counterexample on failure")
  in
  let term =
    Term.(const run $ seed $ count $ mode $ domain_arg $ inject_bug $ replay $ out
          $ solver_stats_arg $ jobs_arg $ no_interval_arg $ no_compile_arg $ trace_json_arg
          $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: generated programs through every pipeline and oracle")
    term

(* ----- client (cqlserved) ----- *)

let socket_arg =
  Arg.(value & opt string "cqlserved.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket of the cqlserved daemon")

let client_cmd =
  let module S = Cql_serve in
  let run socket path edb_path tenant pipeline domain max_iterations max_derivations op raw =
    let fail msg =
      prerr_endline msg;
      1
    in
    let print_response j =
      if raw then print_endline (S.Json.to_string j)
      else if S.Client.is_ok j then begin
        (match Option.bind (S.Json.member "cache" j) S.Json.to_str with
        | Some c -> Printf.eprintf "cache=%s\n%!" c
        | None -> ());
        List.iter print_endline (S.Client.answers j)
      end
      else
        Printf.eprintf "error (%s): %s\n"
          (Option.value (S.Client.error_kind j) ~default:"?")
          (Option.value (S.Client.error_message j) ~default:"");
      if S.Client.is_ok j then 0 else 1
    in
    match S.Client.connect socket with
    | Error msg -> fail msg
    | Ok client ->
        let code =
          Fun.protect
            ~finally:(fun () -> S.Client.close client)
            (fun () ->
              let response =
                match op with
                | "ping" -> S.Client.ping client
                | "stats" -> S.Client.stats client
                | "eval" -> (
                    match path with
                    | None -> Error "eval needs a PROGRAM file argument"
                    | Some path -> (
                        match read_file path with
                        | Error msg -> Error msg
                        | Ok program -> (
                            let edb =
                              match edb_path with None -> Ok "" | Some p -> read_file p
                            in
                            match edb with
                            | Error msg -> Error msg
                            | Ok edb ->
                                let opt n = if n = 0 then None else Some n in
                                S.Client.eval client ~tenant ~edb ~pipeline ~domain
                                  ?max_iterations:(opt max_iterations)
                                  ?max_derivations:(opt max_derivations) ~program ())))
                | other -> Error (Printf.sprintf "unknown op %S (use eval, ping, stats)" other)
              in
              match response with Error msg -> fail msg | Ok j -> print_response j)
        in
        code
  in
  let program =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"PROGRAM"
           ~doc:"CQL program file to evaluate (required for --op eval)")
  in
  let edb =
    Arg.(value & opt (some file) None & info [ "edb" ] ~docv:"FILE" ~doc:"EDB facts file")
  in
  let tenant =
    Arg.(value & opt string "cli" & info [ "tenant" ] ~docv:"NAME"
           ~doc:"Tenant name for admission control and per-tenant counters")
  in
  let pipeline =
    Arg.(value & opt string "pred,qrp" & info [ "pipeline" ] ~docv:"P"
           ~doc:"Server-side rewrite pipeline: none, pred,qrp or optimal")
  in
  let domain =
    Arg.(value & opt domain_conv Cql_constr.Cdomain.Q & info [ "domain" ] ~docv:"D"
           ~doc:"Constraint domain to request: rat (default) or int")
  in
  let max_iterations =
    Arg.(value & opt int 0 & info [ "max-iterations" ] ~docv:"N"
           ~doc:"Iteration budget to request (0 = server default)")
  in
  let max_derivations =
    Arg.(value & opt int 0 & info [ "max-derivations" ] ~docv:"N"
           ~doc:"Derivation budget to request (0 = server default)")
  in
  let op =
    Arg.(value & opt string "eval" & info [ "op" ] ~docv:"OP"
           ~doc:"Request to send: eval, ping or stats")
  in
  let raw =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the raw JSON response instead of answers")
  in
  let term =
    Term.(const run $ socket_arg $ program $ edb $ tenant $ pipeline $ domain
          $ max_iterations $ max_derivations $ op $ raw)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running cqlserved daemon and print the answers")
    term

(* ----- bench serve ----- *)

(* merge [experiments.<key>] into an existing BENCH_results.json (or start a
   fresh document), leaving every other experiment in place *)
let merge_bench_file path key payload =
  let module J = Cql_serve.Json in
  let upsert k v kvs =
    if List.mem_assoc k kvs then
      List.map (fun (k', v') -> if String.equal k' k then (k, v) else (k', v')) kvs
    else kvs @ [ (k, v) ]
  in
  let existing =
    if Sys.file_exists path then
      match read_file path with
      | Ok src -> ( match J.parse src with Ok (J.Obj kvs) -> kvs | _ -> [])
      | Error _ -> []
    else []
  in
  let existing =
    if existing = [] then [ ("schema", J.Str "cqlopt-bench-1") ] else existing
  in
  let experiments =
    match List.assoc_opt "experiments" existing with Some (J.Obj kvs) -> kvs | _ -> []
  in
  let doc = upsert "experiments" (J.Obj (upsert key payload experiments)) existing in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (J.Obj doc));
      output_char oc '\n')

let bench_serve_cmd =
  let module S = Cql_serve in
  let run socket clients requests warmup workers daemon daemon_trace out =
    let socket =
      if socket = "" then
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "cqlserved-bench-%d.sock" (Unix.getpid ()))
      else socket
    in
    (* the daemon: an explicit path, '-' for in-process, or (default) the
       cqlserved built next to this executable, else in-process *)
    let exe_dir = Filename.dirname Sys.executable_name in
    let daemon_path =
      match daemon with
      | "-" -> None
      | "" ->
          List.find_opt Sys.file_exists
            [ Filename.concat exe_dir "cqlserved.exe"; Filename.concat exe_dir "cqlserved" ]
      | path -> Some path
    in
    let daemon_desc, stop_daemon =
      match daemon_path with
      | Some path ->
          let argv = [ path; "--socket"; socket; "--workers"; string_of_int workers ] in
          let argv =
            match daemon_trace with
            | None -> argv
            | Some f -> argv @ [ "--trace-json"; f ]
          in
          let pid =
            Unix.create_process path (Array.of_list argv) Unix.stdin Unix.stderr Unix.stderr
          in
          ( Printf.sprintf "spawned %s (pid %d)" path pid,
            fun () ->
              (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
              match Unix.waitpid [] pid with
              | _, Unix.WEXITED 0 -> true
              | _ -> false )
      | None ->
          if daemon_trace <> None then Cql_obs.Obs.set_enabled true;
          let t = S.Server.start { (S.Server.default_config ~socket_path:socket) with workers } in
          ( "in-process",
            fun () ->
              S.Server.stop t;
              S.Server.wait t;
              (match daemon_trace with
              | None -> ()
              | Some f ->
                  let oc = open_out f in
                  Fun.protect
                    ~finally:(fun () -> close_out oc)
                    (fun () -> Cql_obs.Obs.write_ndjson oc));
              true )
    in
    Printf.eprintf "bench serve: daemon %s, socket %s\n%!" daemon_desc socket;
    match S.Loadgen.run ~socket ~clients ~requests_per_client:requests ~warmup () with
    | Error msg ->
        ignore (stop_daemon ());
        prerr_endline ("bench serve: " ^ msg);
        1
    | Ok r ->
        let clean = stop_daemon () in
        Printf.printf
          "clients=%d requests=%d ok=%d errors=%d cache_hits=%d answers_match=%b\n"
          r.S.Loadgen.clients r.S.Loadgen.total_requests r.S.Loadgen.ok r.S.Loadgen.errors
          r.S.Loadgen.cache_hits r.S.Loadgen.answers_match;
        Printf.printf "p50=%.2fms p95=%.2fms p99=%.2fms mean=%.2fms max=%.2fms\n"
          r.S.Loadgen.p50_ms r.S.Loadgen.p95_ms r.S.Loadgen.p99_ms r.S.Loadgen.mean_ms
          r.S.Loadgen.max_ms;
        if r.S.Loadgen.warmup_requests > 0 then
          Printf.printf "warmup: requests=%d errors=%d p50=%.2fms max=%.2fms (excluded above)\n"
            r.S.Loadgen.warmup_requests r.S.Loadgen.warmup_errors r.S.Loadgen.warmup_p50_ms
            r.S.Loadgen.warmup_max_ms;
        Printf.printf "throughput=%.1f req/s over %.2fs; clean_daemon_exit=%b\n"
          r.S.Loadgen.throughput_rps r.S.Loadgen.wall_s clean;
        let payload =
          match S.Loadgen.to_json r with
          | S.Json.Obj kvs ->
              S.Json.Obj
                (kvs
                @ [
                    ( "daemon",
                      S.Json.Str (if daemon_path = None then "in-process" else "spawned") );
                    ("clean_daemon_exit", S.Json.Bool clean);
                  ])
          | j -> j
        in
        merge_bench_file out "serve" payload;
        Printf.printf "merged experiments.serve into %s\n" out;
        if r.S.Loadgen.errors = 0 && r.S.Loadgen.answers_match && clean then 0 else 1
  in
  let socket =
    Arg.(value & opt string "" & info [ "socket" ] ~docv:"PATH"
           ~doc:"Socket path for the run (default: a fresh path under \\$TMPDIR)")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client domains")
  in
  let requests =
    Arg.(value & opt int 25 & info [ "requests" ] ~docv:"M" ~doc:"Requests per client")
  in
  let warmup =
    Arg.(value & opt int 0 & info [ "warmup" ] ~docv:"N"
           ~doc:"Warmup requests per client before measurement: absorbs the cold \
                 plan-compile outliers, which are reported separately from the \
                 steady-state percentiles")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc:"Daemon worker domains")
  in
  let daemon =
    Arg.(value & opt string "" & info [ "daemon" ] ~docv:"PATH"
           ~doc:"cqlserved executable to spawn (default: the one next to cqlopt; \
                 '-' = run the server in-process)")
  in
  let daemon_trace =
    Arg.(value & opt (some string) None & info [ "daemon-trace" ] ~docv:"FILE"
           ~doc:"Have the daemon write its per-request NDJSON trace to $(docv) on exit")
  in
  let out =
    Arg.(value & opt string "BENCH_results.json" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Benchmark results file to merge experiments.serve into")
  in
  let term =
    Term.(const run $ socket $ clients $ requests $ warmup $ workers $ daemon $ daemon_trace
          $ out)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Load-test cqlserved: N clients x M requests, latency percentiles and throughput")
    term

(* ----- bench incremental ----- *)

(* Example 1.1's flights program over a generated acyclic chain network: a
   single-leg retraction (and the re-insertion that undoes it) maintained
   incrementally, timed against re-evaluating the whole fixpoint from
   scratch on the same EDB. *)
let bench_incremental_cmd =
  let module J = Cql_serve.Json in
  let module Engine = Cql_eval.Engine in
  let module Fact = Cql_eval.Fact in
  let flights_src =
    "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n\
     r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n\
     r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.\n\
     r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),\n\
    \     T = T1 + T2 + 30, C = C1 + C2.\n\
     #query cheaporshort.\n"
  in
  let chain_edb legs =
    List.init legs (fun i ->
        Printf.sprintf "singleleg(city%d, city%d, %d, %d)." i (i + 1)
          (20 + ((i * 37) mod 120))
          (15 + ((i * 53) mod 140)))
    |> String.concat "\n"
  in
  let run legs updates out =
    let max_iterations = 1_000 and max_derivations = 5_000_000 in
    let p = Parser.program_of_string flights_src in
    let edb = List.map Fact.of_fact_rule (Parser.facts_of_string (chain_edb legs)) in
    let time f =
      let t0 = Cql_obs.Obs.monotonic_ns () in
      let r = f () in
      (r, Int64.to_float (Int64.sub (Cql_obs.Obs.monotonic_ns ()) t0) /. 1e6)
    in
    let scratch_answers edb =
      let res = Engine.run ~jobs:1 ~max_iterations ~max_derivations p ~edb in
      if not (Engine.stats res).Engine.reached_fixpoint then
        failwith "bench incremental: from-scratch run truncated (raise the budgets)";
      List.sort Fact.compare (Engine.answers res p)
    in
    let (vw, ms0), materialize_ms =
      time (fun () -> Engine.materialize ~jobs:1 ~max_iterations ~max_derivations p ~edb)
    in
    Fun.protect ~finally:(fun () -> Engine.close_view vw) @@ fun () ->
    if not ms0.Engine.m_complete then failwith "bench incremental: materialization truncated";
    let maintain_ms = ref [] and scratch_ms = ref [] in
    let answers_match = ref true in
    let check_step () =
      let answers, s_ms = time (fun () -> scratch_answers (Engine.view_edb vw)) in
      scratch_ms := s_ms :: !scratch_ms;
      if answers <> Engine.view_answers vw then answers_match := false
    in
    let leg_facts = Array.of_list edb in
    for step = 0 to updates - 1 do
      (* spread the retractions over the chain; middle legs delete the most *)
      let victim = leg_facts.(((step * 7) + 3) mod legs) in
      let ms_r, r_ms = time (fun () -> Engine.retract vw [ victim ]) in
      maintain_ms := r_ms :: !maintain_ms;
      if not ms_r.Engine.m_complete then failwith "bench incremental: retract truncated";
      check_step ();
      let ms_i, i_ms = time (fun () -> Engine.insert vw [ victim ]) in
      maintain_ms := i_ms :: !maintain_ms;
      if not ms_i.Engine.m_complete then failwith "bench incremental: insert truncated";
      check_step ()
    done;
    let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
    let p50 l =
      match List.sort compare l with [] -> 0.0 | s -> List.nth s (List.length s / 2)
    in
    let maintain = !maintain_ms and scratch = !scratch_ms in
    let speedup = if mean maintain > 0.0 then mean scratch /. mean maintain else 0.0 in
    let faster = mean maintain < mean scratch in
    Printf.printf "legs=%d updates=%d facts=%d answers_match=%b\n" legs updates
      (Engine.view_total vw) !answers_match;
    Printf.printf "materialize=%.2fms maintain: mean=%.3fms p50=%.3fms (%d ops)\n"
      materialize_ms (mean maintain) (p50 maintain) (List.length maintain);
    Printf.printf "from-scratch: mean=%.3fms p50=%.3fms; speedup=%.1fx faster=%b\n"
      (mean scratch) (p50 scratch) speedup faster;
    let payload =
      J.Obj
        [
          ("program", J.Str "flights (Example 1.1)");
          ("network", J.Str (Printf.sprintf "acyclic chain, %d legs" legs));
          ("updates", J.Int (List.length maintain));
          ("facts", J.Int (Engine.view_total vw));
          ("materialize_ms", J.Float materialize_ms);
          ("maintain_mean_ms", J.Float (mean maintain));
          ("maintain_p50_ms", J.Float (p50 maintain));
          ("scratch_mean_ms", J.Float (mean scratch));
          ("scratch_p50_ms", J.Float (p50 scratch));
          ("speedup", J.Float speedup);
          ("maintenance_faster", J.Bool faster);
          ("answers_match", J.Bool !answers_match);
        ]
    in
    merge_bench_file out "incremental" payload;
    Printf.printf "merged experiments.incremental into %s\n" out;
    if !answers_match && faster then 0 else 1
  in
  let legs =
    Arg.(value & opt int 48 & info [ "legs" ] ~docv:"N"
           ~doc:"Single-leg flights in the generated chain network")
  in
  let updates =
    Arg.(value & opt int 12 & info [ "updates" ] ~docv:"K"
           ~doc:"Retract/re-insert cycles (each timed against a from-scratch run)")
  in
  let out =
    Arg.(value & opt string "BENCH_results.json" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Benchmark results file to merge experiments.incremental into")
  in
  let term = Term.(const run $ legs $ updates $ out) in
  Cmd.v
    (Cmd.info "incremental"
       ~doc:"Update-stream benchmark: incremental view maintenance vs from-scratch \
             re-evaluation on the flights program")
    term

(* ----- bench int ----- *)

(* Two workloads whose constraints sit on the ℚ/ℤ boundary: meeting-slot
   scheduling (strict windows plus a scaled duration bound, 2E - 2S >= 3,
   that tightens to E - S >= 2 over the integers) and a flights variant
   with a divisibility-constrained voucher (3V in [10, 14] pins V = 4 over
   ℤ).  The integer-domain answers — of both the original program and its
   pred,qrp rewrite — are verified point-by-point against brute-force
   enumeration of the small integer grid; the rational run of the same
   workload provides the timing baseline. *)
let bench_int_cmd =
  let module J = Cql_serve.Json in
  let module Engine = Cql_eval.Engine in
  let module Fact = Cql_eval.Fact in
  let module Cdomain = Cql_constr.Cdomain in
  let module Stats = Cql_constr.Solver_stats in
  let module T = Cql_datalog.Term in
  let scheduling_src =
    "r1: slot(P1, P2, S, E) :- avail(P1, S, E), avail(P2, S, E).\n\
     r2: avail(P, S, E) :- calendar(P, LO, HI), S >= LO, E <= HI, S < E.\n\
     r3: good(P1, P2, S, E) :- slot(P1, P2, S, E), 2*E - 2*S >= 3, S <= 12.\n\
     #query good.\n"
  in
  let calendar = [ ("alice", 9, 12); ("alice", 14, 18); ("bob", 10, 16); ("carol", 8, 10) ] in
  let scheduling_edb =
    String.concat "\n"
      (List.map (fun (p, lo, hi) -> Printf.sprintf "calendar(%s, %d, %d)." p lo hi) calendar)
  in
  let scheduling_points =
    let persons = [ "alice"; "bob"; "carol" ] in
    let avail p s e =
      List.exists (fun (p', lo, hi) -> p' = p && s >= lo && e <= hi && s < e) calendar
    in
    List.concat_map
      (fun p1 ->
        List.concat_map
          (fun p2 ->
            List.concat_map
              (fun s ->
                List.map
                  (fun e ->
                    let expected =
                      avail p1 s e && avail p2 s e && (2 * e) - (2 * s) >= 3 && s <= 12
                    in
                    ( [ T.Sym p1; T.Sym p2; T.Num (Cql_num.Rat.of_int s);
                        T.Num (Cql_num.Rat.of_int e) ],
                      expected ))
                  (List.init 11 (fun i -> 8 + i)))
              (List.init 11 (fun i -> 8 + i)))
          persons)
      persons
  in
  let flights_src =
    "r1: reach(S, D, C) :- leg(S, D, C).\n\
     r2: reach(S, D, C) :- reach(S, M, C1), leg(M, D, C2), C = C1 + C2.\n\
     r3: voucher(V) :- 3*V >= 10, 3*V <= 14.\n\
     r4: deal(S, D, C, V) :- reach(S, D, C), voucher(V), C <= 5*V.\n\
     #query deal.\n"
  in
  let leg_costs = [ 7; 6; 9; 8; 5 ] in
  let city i = Printf.sprintf "c%d" i in
  let flights_edb =
    String.concat "\n"
      (List.mapi (fun i c -> Printf.sprintf "leg(%s, %s, %d)." (city i) (city (i + 1)) c)
         leg_costs)
  in
  let flights_points =
    let n = List.length leg_costs in
    let cost i j =
      (* contiguous chain: the only reach(ci, cj) cost is the segment sum *)
      List.fold_left ( + ) 0 (List.filteri (fun k _ -> k >= i && k < j) leg_costs)
    in
    let total = List.fold_left ( + ) 0 leg_costs in
    List.concat_map
      (fun i ->
        List.concat_map
          (fun j ->
            if j <= i then []
            else
              List.concat_map
                (fun c ->
                  List.map
                    (fun v ->
                      let expected =
                        c = cost i j && (3 * v) >= 10 && 3 * v <= 14 && c <= 5 * v
                      in
                      ( [ T.Sym (city i); T.Sym (city j);
                          T.Num (Cql_num.Rat.of_int c); T.Num (Cql_num.Rat.of_int v) ],
                        expected ))
                    (List.init 7 (fun v -> v)))
                (List.init (total + 2) (fun c -> c)))
          (List.init (n + 1) (fun j -> j)))
      (List.init (n + 1) (fun i -> i))
  in
  let run out =
    let time f =
      let t0 = Cql_obs.Obs.monotonic_ns () in
      let r = f () in
      (r, Int64.to_float (Int64.sub (Cql_obs.Obs.monotonic_ns ()) t0) /. 1e6)
    in
    let neutral f = Fact.make "x" f.Fact.args (Fact.cstr f) in
    let run_workload (name, src, edb_src, points) =
      let p = Parser.program_of_string src in
      let edb = List.filter_map fact_opt (Parser.facts_of_string edb_src) in
      let arity =
        match p.Program.query with Some q -> Program.arity p q | None -> assert false
      in
      let run_domain d =
        Cdomain.with_domain d @@ fun () ->
        Cql_constr.Memo.clear_all ();
        let p', rewrite_ms =
          time (fun () -> fst (Rewrite.sequence ~max_iters:50 [ Rewrite.Pred; Rewrite.Qrp ] p))
        in
        let res, eval_ms = time (fun () -> Engine.run ~jobs:1 p ~edb) in
        let res', eval_rw_ms = time (fun () -> Engine.run ~jobs:1 p' ~edb) in
        let answers r pr = List.sort Fact.compare (Engine.answers r pr) in
        (answers res p, answers res' p', rewrite_ms, eval_ms, eval_rw_ms,
         Engine.total_facts res')
      in
      let qa, qa_rw, q_rw_ms, q_ev_ms, q_evrw_ms, q_facts = run_domain Cdomain.Q in
      Stats.reset ();
      let za, za_rw, z_rw_ms, z_ev_ms, z_evrw_ms, z_facts = run_domain Cdomain.Z in
      let st = Stats.snapshot () in
      (* brute-force verification: membership of every integer grid point in
         the ℤ answers — original and rewritten — must match the enumerated
         expectation exactly (both verdict directions) *)
      let check answers =
        Cdomain.with_domain Cdomain.Z @@ fun () ->
        let nanswers =
          List.filter_map
            (fun f -> if Fact.arity f = arity then Some (neutral f) else None)
            answers
        in
        List.filter
          (fun (args, expected) ->
            let g = Fact.ground "x" args in
            List.exists (fun f -> Fact.subsumes f g) nanswers <> expected)
          points
      in
      let bad = check za and bad_rw = check za_rw in
      let ok = bad = [] && bad_rw = [] in
      Printf.printf
        "%s: grid=%d expected=%d bruteforce_match=%b (orig bad=%d, rewritten bad=%d)\n" name
        (List.length points)
        (List.length (List.filter snd points))
        ok (List.length bad) (List.length bad_rw);
      Printf.printf
        "  rat: rewrite=%.2fms eval=%.2fms eval(rw)=%.2fms answers=%d facts=%d\n" q_rw_ms
        q_ev_ms q_evrw_ms (List.length qa) q_facts;
      Printf.printf
        "  int: rewrite=%.2fms eval=%.2fms eval(rw)=%.2fms answers=%d facts=%d\n" z_rw_ms
        z_ev_ms z_evrw_ms (List.length za) z_facts;
      ignore qa_rw;
      let payload =
        J.Obj
          [
            ("grid_points", J.Int (List.length points));
            ("expected_points", J.Int (List.length (List.filter snd points)));
            ("bruteforce_match", J.Bool ok);
            ( "rat",
              J.Obj
                [
                  ("rewrite_ms", J.Float q_rw_ms);
                  ("eval_ms", J.Float q_ev_ms);
                  ("eval_rewritten_ms", J.Float q_evrw_ms);
                  ("answers", J.Int (List.length qa));
                  ("facts", J.Int q_facts);
                ] );
            ( "int",
              J.Obj
                [
                  ("rewrite_ms", J.Float z_rw_ms);
                  ("eval_ms", J.Float z_ev_ms);
                  ("eval_rewritten_ms", J.Float z_evrw_ms);
                  ("answers", J.Int (List.length za));
                  ("facts", J.Int z_facts);
                  ("sat_checks", J.Int st.Stats.int_sat_checks);
                  ("tightened_atoms", J.Int st.Stats.int_tightened_atoms);
                  ("omega_eliminations", J.Int st.Stats.int_omega_eliminations);
                  ("splinters", J.Int st.Stats.int_splinters);
                  ("bb_fallbacks", J.Int st.Stats.int_bb_fallbacks);
                  ("bb_nodes", J.Int st.Stats.int_bb_nodes);
                ] );
          ]
      in
      (ok, payload)
    in
    let sched_ok, sched = run_workload ("scheduling", scheduling_src, scheduling_edb,
                                        scheduling_points) in
    let fl_ok, fl =
      run_workload ("integer-flights", flights_src, flights_edb, flights_points)
    in
    merge_bench_file out "int"
      (J.Obj [ ("scheduling", sched); ("integer_flights", fl) ]);
    Printf.printf "merged experiments.int into %s\n" out;
    if sched_ok && fl_ok then 0 else 1
  in
  let out =
    Arg.(value & opt string "BENCH_results.json" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Benchmark results file to merge experiments.int into")
  in
  let term = Term.(const run $ out) in
  Cmd.v
    (Cmd.info "int"
       ~doc:"Integer-domain benchmark: scheduling and flights workloads under --domain int, \
             verified against brute-force small-domain enumeration")
    term

let bench_cmd =
  Cmd.group (Cmd.info "bench" ~doc:"Service benchmarks")
    [ bench_serve_cmd; bench_incremental_cmd; bench_int_cmd ]

let () =
  let doc = "Pushing constraint selections: CQL program optimizer (Srivastava & Ramakrishnan)" in
  let info = Cmd.info "cqlopt" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info [ analyze_cmd; rewrite_cmd; eval_cmd; fuzz_cmd; client_cmd; bench_cmd ]))
