(* cqlopt: command-line front end for the constraint-pushing optimizer.

   Subcommands:
     analyze  - infer predicate constraints and QRP constraints
     rewrite  - apply a transformation pipeline and print the program
     eval     - bottom-up evaluation of a program against an EDB file
     fuzz     - differential fuzzing of every pipeline against oracles *)

open Cql_datalog
open Cql_core
open Cmdliner

let read_program path =
  try Ok (Parser.program_of_file path) with
  | Parser.Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Sys_error msg -> Error msg

let read_file path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    Ok src
  with Sys_error msg -> Error msg

let read_edb = function
  | None -> Ok []
  | Some path -> (
      try
        let ic = open_in path in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        Ok (List.map Cql_eval.Fact.of_fact_rule (Parser.facts_of_string src))
      with
      | Parser.Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Sys_error msg -> Error msg)

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM" ~doc:"CQL program file")

let max_iters_arg =
  Arg.(value & opt int 50 & info [ "max-iters" ] ~docv:"N"
         ~doc:"Iteration budget for the constraint-generation fixpoints")

let solver_stats_arg =
  Arg.(value & flag & info [ "solver-stats" ]
         ~doc:"After the run, print decision-procedure call counts and \
               memoization cache hit rates to stderr")

let jobs_arg =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Domains used by the evaluation engine (1 = exact sequential \
               path; 0 = auto: \\$CQLOPT_JOBS if set, else the runtime's \
               recommended domain count)")

(* [--jobs 0] (the default) defers to CQLOPT_JOBS when set — that is how CI
   exercises both paths — and otherwise asks the runtime *)
let apply_jobs n =
  if n > 0 then Cql_eval.Engine.set_default_jobs n
  else if Sys.getenv_opt "CQLOPT_JOBS" = None then
    Cql_eval.Engine.set_default_jobs (Cql_par.Pool.recommended_jobs ())

let print_solver_stats flag =
  if flag then
    Format.eprintf "%a@?" Cql_constr.Solver_stats.pp (Cql_constr.Solver_stats.snapshot ())

(* ----- tracing (lib/obs) ----- *)

let trace_json_arg =
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE"
         ~doc:"Enable phase tracing and, when the command finishes, write the \
               recorded span events as NDJSON (one JSON object per line) to \
               $(docv), or to stdout for '-'")

let metrics_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Enable phase tracing and print a per-phase timing summary plus \
               all nonzero counters to stderr when the command finishes")

(* arm tracing before the work runs; CQLOPT_TRACE=1 arms it at load time
   without either flag *)
let apply_tracing trace_json metrics =
  if trace_json <> None || metrics then Cql_obs.Obs.set_enabled true

let emit_tracing trace_json metrics =
  (match trace_json with
  | None -> ()
  | Some "-" -> Cql_obs.Obs.write_ndjson stdout
  | Some path -> (
      match open_out path with
      | oc -> Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Cql_obs.Obs.write_ndjson oc)
      | exception Sys_error msg -> prerr_endline msg));
  if metrics then Format.eprintf "%a@?" Cql_obs.Obs.pp_summary ()

(* ----- analyze ----- *)

let analyze_cmd =
  let run path max_iters =
    match read_program path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok p ->
        let pres = Pred_constraints.gen ~max_iters p in
        Printf.printf "Predicate constraints (converged=%b, %d iterations):\n"
          pres.Pred_constraints.converged pres.Pred_constraints.iterations;
        List.iter
          (fun (pred, c) -> Printf.printf "  %-20s %s\n" pred (Cql_constr.Cset.to_string c))
          pres.Pred_constraints.constraints;
        (match p.Program.query with
        | Some _ ->
            let p1 = Pred_constraints.propagate pres p in
            let qres = Qrp.gen ~max_iters p1 in
            Printf.printf "QRP constraints after pred propagation (converged=%b, %d iterations):\n"
              qres.Qrp.converged qres.Qrp.iterations;
            List.iter
              (fun (pred, c) -> Printf.printf "  %-20s %s\n" pred (Cql_constr.Cset.to_string c))
              qres.Qrp.constraints
        | None -> print_endline "No query predicate: skipping QRP constraints (#query p. sets one)");
        Printf.printf "Decidable class (Theorem 5.1): %b\n" (Decidable.in_class p);
        if Decidable.in_class p then
          Printf.printf "  iteration bound: %s\n"
            (Cql_num.Bigint.to_string (Decidable.iteration_bound p));
        0
  in
  let term = Term.(const run $ program_arg $ max_iters_arg) in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Infer minimum predicate constraints and QRP constraints for a program")
    term

(* ----- rewrite ----- *)

let parse_steps adornment constraint_magic s =
  let step_of = function
    | "pred" -> Ok Rewrite.Pred
    | "qrp" -> Ok Rewrite.Qrp
    | "mg" | "magic" -> Ok (Rewrite.Magic { adornment; constraint_magic })
    | "cmg" -> Ok (Rewrite.Magic { adornment; constraint_magic = true })
    | "mg-complete" -> Ok Rewrite.Magic_complete
    | other -> Error (Printf.sprintf "unknown step %S (use pred, qrp, mg, cmg, mg-complete)" other)
  in
  List.fold_left
    (fun acc name ->
      match (acc, step_of name) with
      | Ok steps, Ok s -> Ok (steps @ [ s ])
      | (Error _ as e), _ -> e
      | _, (Error _ as e) -> e)
    (Ok [])
    (String.split_on_char ',' s)

let rewrite_cmd =
  let run path steps adornment no_cmagic gmt optimal max_iters inline_seed simplify
      solver_stats jobs trace_json metrics =
    apply_jobs jobs;
    apply_tracing trace_json metrics;
    let code =
    match read_program path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok p -> (
        let adornment =
          match (adornment, p.Program.query) with
          | Some a, _ -> a
          | None, Some q -> String.make (Program.arity p q) 'f'
          | None, None -> ""
        in
        let result =
          if gmt then
            try Ok (Gmt.pipeline ~query_adornment:adornment p)
            with Invalid_argument msg -> Error msg
          else if optimal then
            try Ok (fst (Rewrite.optimal ~max_iters ~adornment p))
            with Invalid_argument msg -> Error msg
          else
            match parse_steps adornment (not no_cmagic) steps with
            | Error msg -> Error msg
            | Ok steps -> (
                try Ok (fst (Rewrite.sequence ~max_iters steps p))
                with Invalid_argument msg -> Error msg)
        in
        match result with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok p' ->
            let p' = if inline_seed then Magic.inline_seed p' else p' in
            let p' = if simplify then Simplify.program p' else p' in
            print_endline (Program.to_string (Program.prettify p'));
            0)
    in
    print_solver_stats solver_stats;
    emit_tracing trace_json metrics;
    code
  in
  let steps =
    Arg.(value & opt string "pred,qrp" & info [ "steps" ] ~docv:"STEPS"
           ~doc:"Comma-separated pipeline: pred, qrp, mg, cmg, mg-complete")
  in
  let adornment =
    Arg.(value & opt (some string) None & info [ "adornment" ] ~docv:"AD"
           ~doc:"Query adornment for magic steps (default: all-free)")
  in
  let no_cmagic =
    Arg.(value & flag & info [ "no-constraint-magic" ]
           ~doc:"Drop constraints from magic rules (plain magic, rule mr1' of Section 1)")
  in
  let gmt = Arg.(value & flag & info [ "gmt" ] ~doc:"Run the GMT pipeline of Figure 2") in
  let optimal =
    Arg.(value & flag & info [ "optimal" ]
           ~doc:"Run the optimal sequence pred,qrp,mg of Theorem 7.10")
  in
  let inline_seed =
    Arg.(value & flag & info [ "inline-seed" ] ~doc:"Inline the all-free magic seed fact")
  in
  let simplify =
    Arg.(value & flag & info [ "simplify" ]
           ~doc:"Post-pass: drop redundant constraint atoms and subsumed rules")
  in
  let term =
    Term.(const run $ program_arg $ steps $ adornment $ no_cmagic $ gmt $ optimal
          $ max_iters_arg $ inline_seed $ simplify $ solver_stats_arg $ jobs_arg
          $ trace_json_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "rewrite" ~doc:"Rewrite a program by pushing constraint selections") term

(* ----- eval ----- *)

let eval_cmd =
  let run path edb_path max_iterations max_derivations traced naive explain stratified
      solver_stats jobs trace_json metrics =
    apply_jobs jobs;
    apply_tracing trace_json metrics;
    let code =
    match read_program path with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok p -> (
        match read_edb edb_path with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok edb ->
            let max_iterations = if max_iterations = 0 then None else Some max_iterations in
            let max_derivations = if max_derivations = 0 then None else Some max_derivations in
            let res =
              if naive then Cql_eval.Engine.run_naive ?max_iterations ?max_derivations p ~edb
              else if stratified then
                Cql_eval.Engine.run_stratified ?max_iterations ?max_derivations p ~edb
              else Cql_eval.Engine.run ?max_iterations ?max_derivations ~traced p ~edb
            in
            if traced then
              List.iter
                (fun (t : Cql_eval.Engine.trace_entry) ->
                  Printf.printf "iter %-3d %-10s %s%s\n" t.Cql_eval.Engine.iteration
                    t.Cql_eval.Engine.rule_label
                    (Cql_eval.Fact.to_string t.Cql_eval.Engine.fact)
                    (if t.Cql_eval.Engine.subsumed then "   [subsumed]" else ""))
                (Cql_eval.Engine.trace res);
            let s = Cql_eval.Engine.stats res in
            Printf.printf
              "iterations=%d derivations=%d facts=%d fixpoint=%b ground_only=%b\n"
              s.Cql_eval.Engine.iterations s.Cql_eval.Engine.derivations
              (Cql_eval.Engine.total_facts res) s.Cql_eval.Engine.reached_fixpoint
              (Cql_eval.Engine.all_ground res);
            (match p.Program.query with
            | Some q ->
                Printf.printf "answers (%s):\n" q;
                List.iter
                  (fun f ->
                    Printf.printf "  %s\n" (Cql_eval.Fact.to_string f);
                    if explain then
                      match Cql_eval.Explain.tree res f with
                      | Some t -> print_string (Cql_eval.Explain.to_string t)
                      | None -> ())
                  (* sorted (predicate, then canonical fact order) so output
                     diffs cleanly across jobs settings and runs *)
                  (List.sort Cql_eval.Fact.compare (Cql_eval.Engine.facts_of res q))
            | None -> ());
            0)
    in
    print_solver_stats solver_stats;
    emit_tracing trace_json metrics;
    code
  in
  let edb =
    Arg.(value & opt (some file) None & info [ "edb" ] ~docv:"FILE" ~doc:"EDB facts file")
  in
  let max_iterations =
    Arg.(value & opt int 0 & info [ "max-iterations" ] ~docv:"N"
           ~doc:"Stop after N iterations (0 = unlimited)")
  in
  let max_derivations =
    Arg.(value & opt int 0 & info [ "max-derivations" ] ~docv:"N"
           ~doc:"Stop after N derivations (0 = unlimited)")
  in
  let traced = Arg.(value & flag & info [ "trace" ] ~doc:"Print every derivation") in
  let naive = Arg.(value & flag & info [ "naive" ] ~doc:"Naive instead of semi-naive") in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print a derivation tree for each answer")
  in
  let stratified =
    Arg.(value & flag & info [ "stratified" ] ~doc:"Evaluate SCC by SCC (callees first)")
  in
  let term =
    Term.(const run $ program_arg $ edb $ max_iterations $ max_derivations $ traced $ naive
          $ explain $ stratified $ solver_stats_arg $ jobs_arg $ trace_json_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info "eval" ~doc:"Bottom-up evaluation of a CQL program") term

(* ----- fuzz ----- *)

let fuzz_cmd =
  let module H = Cql_gen.Harness in
  let module G = Cql_gen.Generate in
  let run seed count mode inject_bug replay out solver_stats jobs trace_json metrics =
    apply_jobs jobs;
    apply_tracing trace_json metrics;
    let code =
    match replay with
    | Some path -> (
        match read_file path with
        | Error msg ->
            prerr_endline msg;
            1
        | Ok src -> (
            match H.parse_counterexample src with
            | exception Parser.Error msg ->
                Printf.eprintf "%s: %s\n" path msg;
                1
            | p, edb -> (
                match H.replay p edb with
                | None ->
                    print_endline "replay: all oracles passed";
                    0
                | Some f ->
                    Printf.printf "replay: FAILURE oracle=%s pipeline=%s: %s\n"
                      (H.oracle_name f.H.oracle) f.H.pipeline f.H.detail;
                    1)))
    | None -> (
        match G.mode_of_string mode with
        | None ->
            Printf.eprintf "unknown mode %S (use decidable or linear)\n" mode;
            1
        | Some m -> (
            let config = G.default m in
            let tamper = if inject_bug then Some H.drop_disjuncts else None in
            let s = H.run ?tamper ~config ~seed ~count () in
            Format.printf "%a" H.pp_summary s;
            match s.H.failure with
            | None ->
                if inject_bug then begin
                  print_endline "injected bug was NOT caught";
                  1
                end
                else 0
            | Some f ->
                let doc = H.counterexample_to_string s f in
                let oc = open_out out in
                output_string oc doc;
                close_out oc;
                Printf.printf "counterexample (%d rules, %d facts) written to %s\n"
                  (List.length f.H.program.Program.rules)
                  (List.length f.H.edb) out;
                if inject_bug then begin
                  print_endline "injected bug caught as intended";
                  0
                end
                else 1))
    in
    print_solver_stats solver_stats;
    emit_tracing trace_json metrics;
    code
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed") in
  let count =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Number of cases to generate")
  in
  let mode =
    Arg.(value & opt string "decidable" & info [ "mode" ] ~docv:"MODE"
           ~doc:"Constraint mode: decidable (Theorem 5.1 class) or linear (full fragment)")
  in
  let inject_bug =
    Arg.(value & flag & info [ "inject-bug" ]
           ~doc:"Demo: run an extra pipeline with a deliberately broken constraint \
                 propagation (folding with constraints the definitions no longer match); \
                 exits 0 iff the oracles catch it")
  in
  let replay =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Re-check a counterexample file instead of generating cases")
  in
  let out =
    Arg.(value & opt string "fuzz_counterexample.cql" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the shrunk counterexample on failure")
  in
  let term =
    Term.(const run $ seed $ count $ mode $ inject_bug $ replay $ out $ solver_stats_arg
          $ jobs_arg $ trace_json_arg $ metrics_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: generated programs through every pipeline and oracle")
    term

let () =
  let doc = "Pushing constraint selections: CQL program optimizer (Srivastava & Ramakrishnan)" in
  let info = Cmd.info "cqlopt" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ analyze_cmd; rewrite_cmd; eval_cmd; fuzz_cmd ]))
