open Cql_constr

type t = Term.t Var.Map.t

exception Type_error of string

let empty = Var.Map.empty
let is_empty = Var.Map.is_empty
let bindings = Var.Map.bindings
let of_bindings l = Var.Map.of_seq (List.to_seq l)
let find v s = Var.Map.find_opt v s

let rec resolve s (t : Term.t) =
  match t with
  | Term.C _ -> t
  | Term.V v -> (
      match Var.Map.find_opt v s with
      | None -> t
      | Some t' -> if Term.equal t t' then t else resolve s t')

(* The substitution primitives are written against an environment function
   [lookup : Var.t -> Term.t] returning the fully-resolved binding of a
   variable (the variable itself when unbound).  The map-based entry points
   below are thin wrappers over [resolve]; the compiled execution engine
   supplies a register-file lookup instead — both go through the exact same
   code, so the two execution modes cannot drift apart. *)

let apply_term_env ~lookup (t : Term.t) =
  match t with Term.C _ -> t | Term.V v -> lookup v

let apply_literal_env ~lookup (l : Literal.t) =
  { l with Literal.args = List.map (apply_term_env ~lookup) l.Literal.args }

let apply_linexpr_env ~lookup e =
  Var.Set.fold
    (fun v acc ->
      match (lookup v : Term.t) with
      | Term.V v' -> if Var.equal v v' then acc else Linexpr.subst v (Linexpr.var v') acc
      | Term.C (Term.Num q) -> Linexpr.subst v (Linexpr.const q) acc
      | Term.C (Term.Sym sym) ->
          raise
            (Type_error
               (Printf.sprintf "symbolic constant %s substituted into an arithmetic constraint"
                  sym)))
    (Linexpr.vars e) e

(* An atom some of whose variables resolve to symbolic constants cannot be
   substituted numerically.  The one well-typed shape is an equality between
   two positions ([k·x − k·y = 0], produced by rewrites from repeated
   variables); with both sides symbolic it is decided by symbol identity.
   Any other mix of a symbol with arithmetic is unsatisfiable: a symbol
   never equals, or compares with, a number. *)
let apply_atom_env ~lookup (a : Atom.t) : Atom.t list =
  let syms =
    Var.Set.fold
      (fun v acc ->
        match (lookup v : Term.t) with
        | Term.C (Term.Sym sym) -> (v, sym) :: acc
        | _ -> acc)
      (Linexpr.vars a.Atom.expr) []
  in
  match syms with
  | [] -> [ Atom.make (apply_linexpr_env ~lookup a.Atom.expr) a.Atom.op ]
  | [ (x, s1); (y, s2) ] when a.Atom.op = Atom.Eq ->
      let open Cql_num in
      let k = Linexpr.coeff x a.Atom.expr in
      let rest =
        Linexpr.sub a.Atom.expr
          (Linexpr.add (Linexpr.term k x) (Linexpr.term (Rat.neg k) y))
      in
      if
        Rat.equal (Linexpr.coeff y a.Atom.expr) (Rat.neg k)
        && Linexpr.is_const rest
        && Rat.is_zero (Linexpr.constant rest)
      then if s1 = s2 then [] else [ Atom.ff ]
      else [ Atom.ff ]
  | _ -> [ Atom.ff ]

let apply_conj_env ~lookup c =
  Conj.of_list (List.concat_map (apply_atom_env ~lookup) (Conj.to_list c))

let lookup_of s v = resolve s (Term.V v)

let apply_term s t = resolve s t
let apply_literal s l = apply_literal_env ~lookup:(lookup_of s) l
let apply_linexpr s e = apply_linexpr_env ~lookup:(lookup_of s) e
let apply_conj s c = apply_conj_env ~lookup:(lookup_of s) c

(* union-find style flat unification: bind the representative var *)
let unify_terms s t1 t2 =
  let t1 = resolve s t1 and t2 = resolve s t2 in
  match (t1, t2) with
  | Term.V v1, Term.V v2 -> if Var.equal v1 v2 then Some s else Some (Var.Map.add v1 t2 s)
  | Term.V v, (Term.C _ as c) | (Term.C _ as c), Term.V v -> Some (Var.Map.add v c s)
  | Term.C c1, Term.C c2 -> if Term.equal_const c1 c2 then Some s else None

let unify_under s (l1 : Literal.t) (l2 : Literal.t) =
  if l1.Literal.pred <> l2.Literal.pred then None
  else if List.length l1.Literal.args <> List.length l2.Literal.args then None
  else
    List.fold_left2
      (fun acc t1 t2 -> match acc with None -> None | Some s -> unify_terms s t1 t2)
      (Some s) l1.Literal.args l2.Literal.args

let unify l1 l2 = unify_under empty l1 l2

let renaming_of vars ~suffix =
  Var.Set.fold (fun v acc -> Var.Map.add v (Term.var (Var.fresh (Var.name v ^ suffix))) acc)
    vars empty

let pp fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       (fun fmt (v, t) -> Format.fprintf fmt "%a -> %a" Var.pp v Term.pp t))
    (bindings s)
