open Cql_num
open Cql_constr

exception Error of string

(* ----- lexer ----- *)

type token =
  | IDENT of string (* lowercase identifier: predicate or symbolic constant *)
  | VAR of string (* uppercase or _ identifier: variable *)
  | NUM of Rat.t
  | LPAREN
  | RPAREN
  | COMMA
  | PERIOD
  | SEMI
  | COLON
  | IF (* :- *)
  | QUERY (* ?- *)
  | HASHQUERY (* #query *)
  | PLUS
  | MINUS
  | STAR
  | OP_LE
  | OP_LT
  | OP_GE
  | OP_GT
  | OP_EQ
  | EOF

type lexer = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let lex_error lx msg =
  raise (Error (Printf.sprintf "line %d, column %d: %s" lx.line lx.col msg))

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '%' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | _ -> ()

let lex_ident lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  (* a '.' is part of the number only when followed by a digit, so rule
     terminators after numerals lex correctly *)
  (match (peek_char lx, peek_char2 lx) with
  | Some '.', Some c when is_digit c ->
      advance lx;
      while (match peek_char lx with Some c -> is_digit c | None -> false) do
        advance lx
      done
  | _ -> ());
  Rat.of_string (String.sub lx.src start (lx.pos - start))

let next_token lx =
  skip_ws lx;
  match peek_char lx with
  | None -> EOF
  | Some c when is_digit c -> NUM (lex_number lx)
  | Some c when is_lower c -> IDENT (lex_ident lx)
  | Some c when is_upper c -> VAR (lex_ident lx)
  | Some '#' ->
      advance lx;
      let word = lex_ident lx in
      if word = "query" then HASHQUERY else lex_error lx (Printf.sprintf "unknown directive #%s" word)
  | Some '(' ->
      advance lx;
      LPAREN
  | Some ')' ->
      advance lx;
      RPAREN
  | Some ',' ->
      advance lx;
      COMMA
  | Some ';' ->
      advance lx;
      SEMI
  | Some '.' ->
      advance lx;
      PERIOD
  | Some '+' ->
      advance lx;
      PLUS
  | Some '-' ->
      advance lx;
      MINUS
  | Some '*' ->
      advance lx;
      STAR
  | Some ':' ->
      advance lx;
      if peek_char lx = Some '-' then begin
        advance lx;
        IF
      end
      else COLON
  | Some '?' ->
      advance lx;
      if peek_char lx = Some '-' then begin
        advance lx;
        QUERY
      end
      else lex_error lx "expected '-' after '?'"
  | Some '<' ->
      advance lx;
      if peek_char lx = Some '=' then begin
        advance lx;
        OP_LE
      end
      else OP_LT
  | Some '>' ->
      advance lx;
      if peek_char lx = Some '=' then begin
        advance lx;
        OP_GE
      end
      else OP_GT
  | Some '=' ->
      advance lx;
      OP_EQ
  | Some c -> lex_error lx (Printf.sprintf "unexpected character %C" c)

(* ----- parser state: one-token lookahead ----- *)

type parser_state = { lx : lexer; mutable tok : token }

let init src =
  let lx = { src; pos = 0; line = 1; col = 1 } in
  let st = { lx; tok = EOF } in
  st.tok <- next_token lx;
  st

let parse_error st msg =
  raise (Error (Printf.sprintf "line %d, column %d: %s" st.lx.line st.lx.col msg))

let describe_token = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | VAR s -> Printf.sprintf "variable %S" s
  | NUM q -> Format.asprintf "number %a" Rat.pp q
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | PERIOD -> "'.'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | IF -> "':-'"
  | QUERY -> "'?-'"
  | HASHQUERY -> "'#query'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | OP_LE -> "'<='"
  | OP_LT -> "'<'"
  | OP_GE -> "'>='"
  | OP_GT -> "'>'"
  | OP_EQ -> "'='"
  | EOF -> "end of input"

let parse_error_got st msg =
  parse_error st (Printf.sprintf "expected %s, got %s" msg (describe_token st.tok))

let bump st = st.tok <- next_token st.lx
let expect st tok msg = if st.tok = tok then bump st else parse_error_got st msg

(* Variables are scoped per clause: same name = same variable within a
   clause, but clauses are renamed apart from each other. *)
type clause_ctx = {
  mutable env : (string * Var.t) list;
  mutable eqs : Atom.t list; (* equality constraints from flattened args *)
}

let lookup_var ctx name =
  match List.assoc_opt name ctx.env with
  | Some v -> v
  | None ->
      let v = Var.fresh name in
      ctx.env <- (name, v) :: ctx.env;
      v

(* expression grammar: expr := term (('+'|'-') term)* ;
   term := factor ('*' factor)* with at most one variable per product *)
let rec parse_expr st ctx =
  let e = ref (parse_term st ctx) in
  let rec loop () =
    match st.tok with
    | PLUS ->
        bump st;
        e := Linexpr.add !e (parse_term st ctx);
        loop ()
    | MINUS ->
        bump st;
        e := Linexpr.sub !e (parse_term st ctx);
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_term st ctx =
  let e = ref (parse_factor st ctx) in
  let rec loop () =
    match st.tok with
    | STAR ->
        bump st;
        let f = parse_factor st ctx in
        (if Linexpr.is_const !e then e := Linexpr.scale (Linexpr.constant !e) f
         else if Linexpr.is_const f then e := Linexpr.scale (Linexpr.constant f) !e
         else parse_error st "nonlinear product of two variables");
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_factor st ctx =
  match st.tok with
  | NUM q ->
      bump st;
      (* allow rationals written as fractions in constraints: 1/2 lexes as
         NUM 1, '/' is not a token -- keep it simple: decimals only *)
      Linexpr.const q
  | VAR name ->
      bump st;
      Linexpr.var (lookup_var ctx name)
  | MINUS ->
      bump st;
      Linexpr.neg (parse_factor st ctx)
  | LPAREN ->
      bump st;
      let e = parse_expr st ctx in
      expect st RPAREN "')'";
      e
  | IDENT s -> parse_error st (Printf.sprintf "symbolic constant %s in arithmetic expression" s)
  | _ -> parse_error_got st "an arithmetic expression"

let parse_constraint st ctx =
  let e1 = parse_expr st ctx in
  let mk =
    match st.tok with
    | OP_LE -> Atom.le
    | OP_LT -> Atom.lt
    | OP_GE -> Atom.ge
    | OP_GT -> Atom.gt
    | OP_EQ -> Atom.eq
    | _ -> parse_error_got st "a comparison operator (one of <=, <, >=, >, =)"
  in
  bump st;
  let e2 = parse_expr st ctx in
  mk e1 e2

(* a literal argument: symbolic constant, or an expression flattened to a
   variable/constant plus equality constraints *)
let parse_arg st ctx =
  match st.tok with
  | IDENT s ->
      bump st;
      Term.sym s
  | _ ->
      let e = parse_expr st ctx in
      let terms = Linexpr.terms e in
      let c = Linexpr.constant e in
      (match terms with
      | [] -> Term.num c
      | [ (v, k) ] when Rat.equal k Rat.one && Rat.is_zero c -> Term.var v
      | _ ->
          let v = Var.fresh "E" in
          ctx.eqs <- Atom.eq (Linexpr.var v) e :: ctx.eqs;
          Term.var v)

let parse_literal st ctx =
  match st.tok with
  | IDENT pred ->
      bump st;
      if st.tok <> LPAREN then (Literal.make pred [], [])
      else begin
        bump st;
        let args = ref [ parse_arg st ctx ] in
        while st.tok = COMMA do
          bump st;
          args := parse_arg st ctx :: !args
        done;
        (* optional trailing constraints for constraint facts: p(X; X <= 3) *)
        let cstrs = ref [] in
        if st.tok = SEMI then begin
          bump st;
          cstrs := [ parse_constraint st ctx ];
          while st.tok = COMMA do
            bump st;
            cstrs := parse_constraint st ctx :: !cstrs
          done
        end;
        expect st RPAREN "')'";
        (Literal.make pred (List.rev !args), List.rev !cstrs)
      end
  | _ -> parse_error_got st "a predicate name"

(* body := (literal | constraint) list; returns literals and constraints *)
let parse_body st ctx =
  let lits = ref [] and atoms = ref [] in
  let item () =
    match st.tok with
    | IDENT _ ->
        let l, cs = parse_literal st ctx in
        lits := l :: !lits;
        atoms := List.rev_append cs !atoms
    | _ -> atoms := parse_constraint st ctx :: !atoms
  in
  item ();
  while st.tok = COMMA do
    bump st;
    item ()
  done;
  (List.rev !lits, List.rev !atoms)

type clause = Clause_rule of Rule.t | Clause_query of Literal.t list * Conj.t | Clause_setq of string

let parse_clause st =
  let ctx = { env = []; eqs = [] } in
  match st.tok with
  | QUERY ->
      bump st;
      let lits, atoms = parse_body st ctx in
      expect st PERIOD "'.'";
      Clause_query (lits, Conj.of_list (atoms @ ctx.eqs))
  | HASHQUERY ->
      bump st;
      let name =
        match st.tok with
        | IDENT s ->
            bump st;
            s
        | _ -> parse_error_got st "a predicate name after #query"
      in
      expect st PERIOD "'.'";
      Clause_setq name
  | _ ->
      (* optional label: IDENT ':' not followed by '-' *)
      let label =
        match st.tok with
        | IDENT s ->
            (* lookahead: save state is hard; instead parse the literal and
               check for COLON only when no '(' followed. Simpler: peek via
               lexer clone *)
            let saved_pos = st.lx.pos and saved_line = st.lx.line and saved_col = st.lx.col in
            let saved_tok = st.tok in
            bump st;
            if st.tok = COLON then begin
              bump st;
              s
            end
            else begin
              st.lx.pos <- saved_pos;
              st.lx.line <- saved_line;
              st.lx.col <- saved_col;
              st.tok <- saved_tok;
              ""
            end
        | _ -> ""
      in
      let head, head_cstrs = parse_literal st ctx in
      let body_lits, body_atoms =
        if st.tok = IF then begin
          bump st;
          parse_body st ctx
        end
        else ([], [])
      in
      expect st PERIOD "'.'";
      Clause_rule
        (Rule.make ~label head body_lits (Conj.of_list (head_cstrs @ body_atoms @ ctx.eqs)))

let parse_program st =
  let rules = ref [] and query = ref None and pending_query = ref None in
  while st.tok <> EOF do
    match parse_clause st with
    | Clause_rule r -> rules := r :: !rules
    | Clause_setq q -> query := Some q
    | Clause_query (lits, cstr) -> pending_query := Some (lits, cstr)
  done;
  let p = Program.make ?query:!query (List.rev !rules) in
  match !pending_query with
  | None -> p
  | Some (lits, cstr) -> fst (Program.with_query_rule p lits cstr)

let program_of_string src = parse_program (init src)

let program_of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  program_of_string src

let rule_of_string src =
  match parse_clause (init src) with
  | Clause_rule r -> r
  | Clause_query _ | Clause_setq _ -> raise (Error "expected a rule, got a query")

let facts_of_string src =
  let p = program_of_string src in
  List.map
    (fun (r : Rule.t) ->
      if not (Rule.is_fact r) then
        raise (Error (Printf.sprintf "EDB clause has body literals: %s" (Rule.to_string r)));
      r)
    p.Program.rules
