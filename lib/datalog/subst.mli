(** Substitutions over flat terms, and most-general unifiers.

    Because rules are normalized (arguments are variables or constants),
    unification is the simple flat case: a most general unifier binds
    variables to variables or constants.  Substituting a numeric constant
    into an arithmetic constraint is meaningful; substituting a *symbolic*
    constant into one raises {!Type_error} (such resolvents only arise from
    ill-typed programs). *)

open Cql_constr

type t
(** A finite map from variables to terms, idempotent on its domain. *)

exception Type_error of string

val empty : t
val is_empty : t -> bool
val bindings : t -> (Var.t * Term.t) list
val of_bindings : (Var.t * Term.t) list -> t
(** Unchecked construction; callers must ensure idempotence. *)

val find : Var.t -> t -> Term.t option

val resolve : t -> Term.t -> Term.t
(** Chase a term through the substitution to its representative: a constant,
    or the final unbound variable of the binding chain. *)

val apply_term : t -> Term.t -> Term.t
val apply_literal : t -> Literal.t -> Literal.t

val apply_linexpr : t -> Linexpr.t -> Linexpr.t
(** @raise Type_error when a variable is bound to a symbolic constant. *)

val apply_conj : t -> Conj.t -> Conj.t
(** @raise Type_error when a variable is bound to a symbolic constant. *)

(** {2 Environment-based substitution}

    The same substitution primitives over an abstract environment
    [lookup : Var.t -> Term.t] that must return the {e fully-resolved}
    binding of a variable (the variable itself when unbound).  The map-based
    functions above are wrappers over these with [lookup = resolve]; the
    compiled join-plan executor supplies a register-file lookup instead, so
    both execution modes share one substitution semantics. *)

val apply_term_env : lookup:(Var.t -> Term.t) -> Term.t -> Term.t
val apply_literal_env : lookup:(Var.t -> Term.t) -> Literal.t -> Literal.t

val apply_linexpr_env : lookup:(Var.t -> Term.t) -> Linexpr.t -> Linexpr.t
(** @raise Type_error when a variable resolves to a symbolic constant. *)

val apply_atom_env : lookup:(Var.t -> Term.t) -> Atom.t -> Atom.t list
val apply_conj_env : lookup:(Var.t -> Term.t) -> Conj.t -> Conj.t
(** @raise Type_error when a variable resolves to a symbolic constant. *)

val unify : Literal.t -> Literal.t -> t option
(** Most general unifier of two literals, or [None] when they do not unify
    (different predicate, arity, or clashing constants). *)

val unify_terms : t -> Term.t -> Term.t -> t option
(** Unify two terms under an existing substitution (both are resolved
    first); the building block of {!unify_under}. *)

val unify_under : t -> Literal.t -> Literal.t -> t option
(** Extend an existing substitution. *)

val renaming_of : Var.Set.t -> suffix:string -> t
(** A substitution renaming each variable in the set to a fresh variable
    (used to rename rules apart). *)

val pp : Format.formatter -> t -> unit
