open Cql_num

(* A sound box abstraction of a conjunction's solution set.  Verdicts are
   only ever True/False when the box proves the exact answer, so the tier
   is result-transparent: callers get the simplex/FM boolean, just cheaper.
   Everything else is Unknown and falls through. *)

type verdict = True | False | Unknown

let disabled_by_env =
  match Sys.getenv_opt "CQLOPT_NO_INTERVAL" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let enabled = ref (not disabled_by_env)

let with_tier on f =
  let prev = !enabled in
  enabled := on;
  Fun.protect ~finally:(fun () -> enabled := prev) f

(* ----- the domain ----- *)

(* one side of an interval: a finite rational endpoint, open or closed;
   [None] at the interval level means unbounded on that side *)
type bnd = { v : Rat.t; strict : bool }
type itv = { lo : bnd option; hi : bnd option }

let top = { lo = None; hi = None }

let itv_is_empty i =
  match (i.lo, i.hi) with
  | Some l, Some h ->
      let c = Rat.compare l.v h.v in
      c > 0 || (c = 0 && (l.strict || h.strict))
  | _ -> false

(* tighter of two like-sided bounds; on a value tie the open one wins *)
let max_lo a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some l1, Some l2 ->
      let c = Rat.compare l1.v l2.v in
      if c > 0 then a
      else if c < 0 then b
      else Some { l1 with strict = l1.strict || l2.strict }

let min_hi a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some h1, Some h2 ->
      let c = Rat.compare h1.v h2.v in
      if c < 0 then a
      else if c > 0 then b
      else Some { h1 with strict = h1.strict || h2.strict }

let meet i j = { lo = max_lo i.lo j.lo; hi = min_hi i.hi j.hi }

let bnd_eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x.strict = y.strict && Rat.equal x.v y.v
  | _ -> false

let itv_eq i j = bnd_eq i.lo j.lo && bnd_eq i.hi j.hi

(* environment: absent variables are unconstrained (⊤) *)
type env = itv Var.Map.t

let find env x = match Var.Map.find_opt x env with Some i -> i | None -> top
let env_is_empty env = Var.Map.exists (fun _ i -> itv_is_empty i) env

(* ----- interval arithmetic over linear expressions ----- *)

(* [bound_expr ~upper env e] is a sound upper (resp. lower) bound of [e]
   over the box, or [None] when unbounded on that side; [except] skips one
   variable's term (the residual used by one-unknown propagation). *)
let bound_expr ~upper ?except env (e : Linexpr.t) =
  List.fold_left
    (fun acc (x, c) ->
      match acc with
      | None -> None
      | Some b -> (
          if match except with Some y -> Var.id x = Var.id y | None -> false then acc
          else
            let i = find env x in
            (* the upper bound of c·x uses hi(x) for c>0, lo(x) for c<0 *)
            let side = if Rat.sign c > 0 = upper then i.hi else i.lo in
            match side with
            | None -> None
            | Some s ->
                (* unit coefficients dominate in practice; skip the rational
                   multiply (a gcd normalization over bigints) when we can *)
                let cs =
                  if Rat.equal c Rat.one then s.v
                  else if Rat.equal c Rat.minus_one then Rat.neg s.v
                  else Rat.mul c s.v
                in
                let v = if Rat.is_zero b.v then cs else Rat.add b.v cs in
                Some { v; strict = b.strict || s.strict }))
    (Some { v = Linexpr.constant e; strict = false })
    (Linexpr.terms e)

(* does the box entail the atom, i.e. does every box point satisfy it? *)
let entails env (a : Atom.t) =
  match a.Atom.op with
  | Atom.Le -> (
      match bound_expr ~upper:true env a.Atom.expr with
      | Some u -> Rat.sign u.v <= 0
      | None -> false)
  | Atom.Lt -> (
      match bound_expr ~upper:true env a.Atom.expr with
      | Some u -> Rat.sign u.v < 0 || (u.strict && Rat.sign u.v = 0)
      | None -> false)
  | Atom.Eq -> (
      (* the whole box must sit at e = 0 exactly *)
      match
        (bound_expr ~upper:true env a.Atom.expr, bound_expr ~upper:false env a.Atom.expr)
      with
      | Some u, Some l -> (not u.strict) && (not l.strict) && Rat.is_zero u.v && Rat.is_zero l.v
      | _ -> false)

(* ----- bound propagation ----- *)

(* In integer mode every candidate bound rounds to a closed integer
   endpoint: non-integral values floor/ceil inward, integral-but-strict
   bounds step by one.  The rounded box still contains every integer
   solution (rounding only discards fractional points), and a nonempty box
   whose finite sides are all closed integers always contains an integer
   point — so both False and True verdicts stay exact over ℤ. *)
let zround_hi (b : bnd) =
  if Rat.is_integer b.v then
    if b.strict then { v = Rat.sub b.v Rat.one; strict = false } else b
  else { v = Rat.of_bigint (Zsolve.floor_rat b.v); strict = false }

let zround_lo (b : bnd) =
  if Rat.is_integer b.v then
    if b.strict then { v = Rat.add b.v Rat.one; strict = false } else b
  else { v = Rat.of_bigint (Zsolve.ceil_rat b.v); strict = false }

(* one-unknown propagation of [e ⋈ 0] (⋈ strict or not): for each term
   c·x, the rest of the expression has lower bound L over the box, so
   c·x ≤ -L (strict when the atom or L is), i.e. x gains an upper bound
   for c > 0 and a lower bound for c < 0 *)
let propagate_ineq ~z ~strict e (env, changed) =
  List.fold_left
    (fun (env, changed) (x, c) ->
      match bound_expr ~upper:false ~except:x env e with
      | None -> (env, changed)
      | Some l ->
          let v =
            if Rat.equal c Rat.one then Rat.neg l.v
            else if Rat.equal c Rat.minus_one then l.v
            else Rat.div (Rat.neg l.v) c
          in
          let upper = Rat.sign c > 0 in
          let cand = { v; strict = strict || l.strict } in
          let cand = Some (if z then (if upper then zround_hi cand else zround_lo cand) else cand) in
          let old = find env x in
          let tightened =
            if upper then { old with hi = min_hi old.hi cand }
            else { old with lo = max_lo old.lo cand }
          in
          if itv_eq tightened old then (env, changed)
          else (Var.Map.add x tightened env, true))
    (env, changed) (Linexpr.terms e)

let propagate_atom ~z acc (a : Atom.t) =
  match a.Atom.op with
  | Atom.Le -> propagate_ineq ~z ~strict:false a.Atom.expr acc
  | Atom.Lt -> propagate_ineq ~z ~strict:true a.Atom.expr acc
  | Atom.Eq ->
      (* e = 0 propagates as e ≤ 0 and -e ≤ 0 *)
      acc
      |> propagate_ineq ~z ~strict:false a.Atom.expr
      |> propagate_ineq ~z ~strict:false (Linexpr.neg a.Atom.expr)

(* a small pass cap: each pass only tightens, so stopping early loses
   precision (more Unknowns), never soundness *)
let max_passes = 4

let build ?(init = Var.Map.empty) atoms =
  let z = Cdomain.is_z () in
  (* bounds only flow between variables through multi-term atoms; without
     any, the first pass (direct bounds) is already the fixpoint *)
  let multi =
    List.exists
      (fun (a : Atom.t) ->
        match Linexpr.terms a.Atom.expr with _ :: _ :: _ -> true | _ -> false)
      atoms
  in
  let rec go env pass =
    let env, changed = List.fold_left (propagate_atom ~z) (env, false) atoms in
    if env_is_empty env then env (* already conclusive *)
    else if multi && changed && pass < max_passes then go env (pass + 1)
    else env
  in
  go init 1

(* ----- memoized environments and verdicts ----- *)

let env_memo : (int, env) Memo.cache = Memo.create ~name:"interval_env"

(* integer-mode boxes are rounded differently, so the domain tag rides in
   the cache key's low bit — same discipline as the Conj memo tables *)
let env_of ~id atoms =
  Memo.cached env_memo ((id lsl 1) lor Cdomain.tag ()) (fun () ->
      Solver_stats.count_interval_env_build ();
      build atoms)

(* abstract satisfiability of an atom list over a (pre-built) box *)
let sat_env env atoms =
  if env_is_empty env then False
  else if List.for_all (entails env) atoms then True
  else Unknown

let sat ~id atoms = match atoms with [] -> True | _ -> sat_env (env_of ~id atoms) atoms

let implies_atom ~id atoms (a : Atom.t) =
  let env = env_of ~id atoms in
  if env_is_empty env then True
  else if entails env a then True
  else
    (* c ⊨ a  iff  every disjunct of ¬a is unsatisfiable with c; seed the
       refinement with c's memoized box *)
    let verdict_neg na =
      let all = na :: atoms in
      sat_env (build ~init:env all) all
    in
    let vs = List.map verdict_neg (Atom.negate a) in
    if List.exists (fun v -> v = True) vs then False
    else if List.for_all (fun v -> v = False) vs then True
    else Unknown

let implies ~id atoms datoms =
  let env = env_of ~id atoms in
  if env_is_empty env then True
  else if List.for_all (entails env) datoms then True
  else Unknown

let disjoint ~id1 atoms1 ~id2 atoms2 =
  let e1 = env_of ~id:id1 atoms1 in
  let e2 = env_of ~id:id2 atoms2 in
  env_is_empty e1 || env_is_empty e2
  || Var.Map.exists
       (fun x i1 ->
         match Var.Map.find_opt x e2 with
         | Some i2 -> itv_is_empty (meet i1 i2)
         | None -> false)
       e1
