(** Observability counters for the constraint decision procedures.

    Raw counters record every entry into a decision procedure regardless of
    caching (so cache-on and cache-off runs of the same workload report the
    same [*_checks] numbers), while {!Memo} contributes per-cache hit/miss
    statistics at {!snapshot} time.  Counters are process-global; {!reset}
    before a workload to attribute numbers to it.

    The cells are registered in the {!Cql_obs.Obs} counter registry (names
    prefixed ["solver."]), so traced spans carry their deltas and
    [cqlopt --metrics] reports them without going through {!snapshot}. *)

(** {1 Increment hooks (used by [Conj], [Cset] and [Simplex])} *)

val count_sat_check : unit -> unit
val count_implies_check : unit -> unit
val count_implies_atom_check : unit -> unit
val count_cset_implies_check : unit -> unit
val count_project_call : unit -> unit

val count_simplex_run : unit -> unit
(** One complete simplex solve (a cache miss of {!Conj.is_sat}, or a direct
    {!Simplex.is_sat} call). *)

val count_simplex_pivot : unit -> unit
val count_fm_elimination : unit -> unit
(** One Fourier–Motzkin variable elimination (the inequality-combination
    branch of {!Conj.eliminate}; equality substitutions are not counted). *)

val count_pivot_limit : unit -> unit
(** One simplex solve abandoned because it hit its pivot budget
    ({!Simplex.Pivot_limit}); {!Conj.is_sat} counts these when it falls back
    to Fourier–Motzkin. *)

(** {2 Interval fast tier ({!Interval})} *)

val count_interval_env_build : unit -> unit
(** One interval environment actually constructed by bound propagation (a
    miss of the ["interval_env"] cache). *)

val count_interval_sat_hit : unit -> unit
(** One {!Conj.is_sat} query decided by the interval tier (either verdict)
    without reaching the memoized exact procedure. *)

val count_interval_implies_hit : unit -> unit
(** One {!Conj.implies} / {!Conj.implies_atom} query decided by the
    interval tier. *)

val count_interval_disjoint_hit : unit -> unit
(** One pairwise implication skipped ({!Cset} prune) or one
    {!Cset.conj_implies} answered early on interval box-disjointness. *)

val count_interval_bail : unit -> unit
(** One query where the tier ran but returned Unknown, falling through to
    the exact procedure. *)

(** {2 Integer domain ({!Zsolve})} *)

val count_int_sat_check : unit -> unit
(** One entry into the exact integer satisfiability procedure. *)

val count_int_tightened_atom : unit -> unit
(** One atom actually changed by integer tightening (strict bound closed,
    coefficient gcd divided out, or a gcd-infeasible equality refuted). *)

val count_int_omega_elimination : unit -> unit
(** One Omega-test variable elimination (equality substitution, mod-trick
    rewrite, or a dark-shadow inequality projection). *)

val count_int_splinter : unit -> unit
(** One splinter branch tried after a dark-shadow refutation. *)

val count_int_bb_fallback : unit -> unit
(** One satisfiability query handed to branch-and-bound after the Omega
    elimination budget ran out. *)

val count_int_bb_node : unit -> unit
(** One branch-and-bound node solved (one simplex relaxation). *)

(** {1 Snapshots} *)

type t = {
  sat_checks : int;  (** {!Conj.is_sat} entries *)
  implies_checks : int;  (** {!Conj.implies} entries *)
  implies_atom_checks : int;  (** {!Conj.implies_atom} entries *)
  cset_implies_checks : int;  (** {!Cset.conj_implies} entries *)
  project_calls : int;  (** {!Conj.project} entries *)
  simplex_runs : int;
  simplex_pivots : int;
  fm_eliminations : int;
  pivot_limit_hits : int;  (** simplex solves abandoned at the pivot budget *)
  interval_env_builds : int;  (** interval environments constructed *)
  interval_sat_hits : int;  (** is_sat decided by the interval tier *)
  interval_implies_hits : int;  (** implies/implies_atom decided by the tier *)
  interval_disjoint_hits : int;  (** cset work pruned by box-disjointness *)
  interval_bails : int;  (** tier ran but fell through to the exact tier *)
  int_sat_checks : int;  (** {!Zsolve.is_sat} entries *)
  int_tightened_atoms : int;  (** atoms changed by integer tightening *)
  int_omega_eliminations : int;  (** Omega-test eliminations performed *)
  int_splinters : int;  (** splinter branches tried *)
  int_bb_fallbacks : int;  (** queries handed to branch-and-bound *)
  int_bb_nodes : int;  (** branch-and-bound nodes solved *)
  caches : Memo.table_stats list;
}

val reset : unit -> unit
(** Zero the raw counters and every cache's hit/miss counters. *)

val snapshot : unit -> t
val total_hits : t -> int
val total_misses : t -> int

val hit_rate : t -> float
(** Hits over lookups across all caches; [0.0] when nothing was looked up. *)

val pp : Format.formatter -> t -> unit
