open Cql_num

(* A conjunction is an interned node wrapping its sorted, duplicate-free atom
   list.  Hash-consing makes equality physical and gives every canonical
   conjunction a unique integer id; the decision procedures below are
   memoized in id-keyed caches (see Memo), with raw entry counts recorded in
   Solver_stats. *)
type t = { atoms : Atom.t list; id : int; hash : int }

module WT = Weak.Make (struct
  type nonrec t = t

  (* atoms are themselves interned, so element-wise physical equality
     decides list equality *)
  let equal a b = try List.for_all2 ( == ) a.atoms b.atoms with Invalid_argument _ -> false
  let hash c = c.hash
end)

(* The weak hashset is striped by hash so worker domains interning in
   parallel rarely contend; ids come from one atomic counter, so they stay
   globally unique and monotonic regardless of which stripe allocates. *)
let stripes = 16 (* power of two: stripe index is a mask of the hash *)
let tables = Array.init stripes (fun _ -> WT.create 512)
let locks = Array.init stripes (fun _ -> Mutex.create ())
let counter = Atomic.make 0

let intern atoms =
  let h = List.fold_left (fun acc a -> ((acc * 65599) lxor Atom.id a) land max_int) 17 atoms in
  let probe = { atoms; id = -1; hash = h } in
  let i = h land (stripes - 1) in
  let m = locks.(i) in
  Mutex.lock m;
  let c =
    match WT.find_opt tables.(i) probe with
    | Some c -> c
    | None ->
        let c = { probe with id = Atomic.fetch_and_add counter 1 + 1 } in
        WT.add tables.(i) c;
        c
  in
  Mutex.unlock m;
  c

let tt : t = intern []
let ff : t = intern [ Atom.ff ]

(* interning makes the syntactic-ff test physical *)
let is_ff_syntactic c = c == ff

(* Normalize a raw atom list: evaluate variable-free atoms, sort, dedup;
   any false atom collapses the whole conjunction to [ff]. *)
let of_list atoms =
  let exception False in
  try
    let kept =
      List.filter
        (fun a ->
          match Atom.truth a with
          | Some true -> false
          | Some false -> raise False
          | None -> true)
        atoms
    in
    intern (List.sort_uniq Atom.compare kept)
  with False -> ff

let singleton a = of_list [ a ]
let add a c = of_list (a :: c.atoms)

let and_ a b =
  if a == b || b == tt then a
  else if a == tt then b
  else of_list (List.rev_append a.atoms b.atoms)

let to_list c = c.atoms
let is_tt c = c == tt
let size c = List.length c.atoms

let vars c =
  List.fold_left (fun acc a -> Var.Set.union acc (Atom.vars a)) Var.Set.empty c.atoms

let id c = c.id
let hash c = c.hash

(* ----- caches ----- *)

let sat_memo : (int, bool) Memo.cache = Memo.create ~name:"conj_is_sat"
let implies_atom_memo : (int * int, bool) Memo.cache = Memo.create ~name:"conj_implies_atom"
let implies_memo : (int * int, bool) Memo.cache = Memo.create ~name:"conj_implies"
let project_memo : (int * int list, t) Memo.cache = Memo.create ~name:"conj_project"
let simplify_memo : (int, t) Memo.cache = Memo.create ~name:"conj_simplify"
let ztighten_memo : (int, t) Memo.cache = Memo.create ~name:"conj_ztighten"

(* Verdicts differ between the rational and the integer domain ([2·X = 1]
   is Q-sat, Z-unsat), so every memo key carries the active domain in its
   low bit.  Ids stay well under 62 bits, the shift never overflows. *)
let dkey id = (id lsl 1) lor Cdomain.tag ()

(* The integer-tightened form of a conjunction: equivalent over ℤ,
   generally strictly stronger over ℚ.  Tightening is per-atom and
   domain-independent as a rewrite, so the cache key is the plain id. *)
let ztighten (c : t) : t =
  if c == tt || is_ff_syntactic c then c
  else
    Memo.cached ztighten_memo c.id (fun () ->
        let atoms' = List.map Zsolve.tighten_atom c.atoms in
        if List.for_all2 ( == ) atoms' c.atoms then c else of_list atoms')

(* ----- variable elimination ----- *)

(* Eliminate [x] from a normalized conjunction.  If an equality mentions
   [x], solve it for [x] and substitute; otherwise Fourier-Motzkin. *)
let eliminate x (c : t) : t =
  if is_ff_syntactic c then c
  else
    let mentions, rest = List.partition (Atom.mem x) c.atoms in
    if mentions = [] then c
    else
      let eq_opt = List.find_opt (fun (a : Atom.t) -> a.Atom.op = Atom.Eq) mentions in
      match eq_opt with
      | Some eqa ->
          (* expr = a*x + r = 0  =>  x = -r/a *)
          let a = Linexpr.coeff x eqa.Atom.expr in
          let r = Linexpr.sub eqa.Atom.expr (Linexpr.term a x) in
          let repl = Linexpr.scale (Rat.neg (Rat.inv a)) r in
          let others = List.filter (fun a' -> not (Atom.equal a' eqa)) mentions in
          of_list (rest @ List.map (Atom.subst x repl) others)
      | None ->
          Solver_stats.count_fm_elimination ();
          (* all atoms mentioning x are inequalities e op 0 with op in {Le,Lt} *)
          let uppers, lowers =
            List.partition
              (fun (a : Atom.t) -> Rat.sign (Linexpr.coeff x a.Atom.expr) > 0)
              mentions
          in
          (* upper: a*x + r op 0, a>0  =>  x op -r/a ; bound expr = -r/a
             lower: a*x + r op 0, a<0  =>  x op' -r/a with op' flipped to >=/>,
             i.e. -r/a op x. *)
          let bound (a : Atom.t) =
            let k = Linexpr.coeff x a.Atom.expr in
            let r = Linexpr.sub a.Atom.expr (Linexpr.term k x) in
            (Linexpr.scale (Rat.neg (Rat.inv k)) r, a.Atom.op)
          in
          let combined =
            List.concat_map
              (fun lo ->
                let lo_e, lo_op = bound lo in
                List.map
                  (fun up ->
                    let up_e, up_op = bound up in
                    let op = if lo_op = Atom.Lt || up_op = Atom.Lt then Atom.Lt else Atom.Le in
                    (* lower bound <= upper bound *)
                    Atom.make (Linexpr.sub lo_e up_e) op)
                  uppers)
              lowers
          in
          (* Over ℤ the real shadow is an over-approximation either way, but
             the surviving variables are integer-valued, so rounding each
             combined atom's constant through its coefficient gcd is sound
             and strictly tightens the projection. *)
          let combined =
            if Cdomain.is_z () then List.map Zsolve.tighten_atom combined else combined
          in
          of_list (rest @ combined)

let project_uncached ~keep (c : t) : t =
  let rec go c =
    if is_ff_syntactic c then c
    else
      let to_elim = Var.Set.diff (vars c) keep in
      if Var.Set.is_empty to_elim then c
      else begin
        (* heuristics: prefer a variable constrained by an equality (cheap
           substitution), else the one minimizing the Fourier-Motzkin blowup *)
        let with_eq =
          Var.Set.filter
            (fun x ->
              List.exists
                (fun (a : Atom.t) -> a.Atom.op = Atom.Eq && Atom.mem x a)
                c.atoms)
            to_elim
        in
        let x =
          if not (Var.Set.is_empty with_eq) then Var.Set.min_elt with_eq
          else
            let cost x =
              let pos, neg =
                List.fold_left
                  (fun (p, n) (a : Atom.t) ->
                    let s = Rat.sign (Linexpr.coeff x a.Atom.expr) in
                    if s > 0 then (p + 1, n) else if s < 0 then (p, n + 1) else (p, n))
                  (0, 0) c.atoms
              in
              (pos * neg) - (pos + neg)
            in
            fst
              (Var.Set.fold
                 (fun x (best, bc) ->
                   let cx = cost x in
                   if cx < bc then (x, cx) else (best, bc))
                 to_elim
                 (Var.Set.min_elt to_elim, max_int))
        in
        go (eliminate x c)
      end
  in
  go c

let project ~keep (c : t) : t =
  Solver_stats.count_project_call ();
  if is_ff_syntactic c || c == tt then c
  else
    let cvars = vars c in
    if Var.Set.subset cvars keep then c
    else
      (* the result depends only on keep ∩ vars c, so canonicalize the key *)
      let key = (dkey c.id, List.map Var.id (Var.Set.elements (Var.Set.inter keep cvars))) in
      Memo.cached project_memo key (fun () -> project_uncached ~keep c)

(* satisfiability via the simplex backend (cross-checked against full
   Fourier-Motzkin elimination by the property tests); projection remains
   the eliminator's job.  If a solve blows its pivot budget we record the
   hit and decide by eliminating every variable: the conjunction is
   satisfiable iff full Fourier-Motzkin projection does not reach ff. *)
let is_sat c =
  Solver_stats.count_sat_check ();
  if is_ff_syntactic c then false
  else if c == tt then true
  else
    let z = Cdomain.is_z () in
    (* in integer mode the whole query runs on the tightened form: the
       rewrite is an equivalence over ℤ and sharpens every later tier
       (tightening alone refutes parity-infeasible equalities) *)
    let c = if z then ztighten c else c in
    if is_ff_syntactic c then false
    else if c == tt then true
    else
      Memo.cached sat_memo (dkey c.id) (fun () ->
          let exact () =
            if z then Zsolve.is_sat c.atoms
            else
              try Simplex.is_sat c.atoms
              with Simplex.Pivot_limit _ ->
                Solver_stats.count_pivot_limit ();
                not (is_ff_syntactic (project_uncached ~keep:Var.Set.empty c))
          in
          if not !Interval.enabled then exact ()
          else
            (* abstract tier ahead of the exact backend: interval verdicts
               equal the exact answer (integer-rounded boxes in Z mode), so
               a hit skips the exact procedures; either way the boolean
               lands in the memo, so warm repeats are lookups *)
            match Interval.sat ~id:c.id c.atoms with
            | Interval.False ->
                Solver_stats.count_interval_sat_hit ();
                false
            | Interval.True ->
                Solver_stats.count_interval_sat_hit ();
                true
            | Interval.Unknown ->
                Solver_stats.count_interval_bail ();
                exact ())

let eval_at env c =
  let rec go = function
    | [] -> Some true
    | a :: rest -> (
        match Atom.eval_at env a with
        | Some true -> go rest
        | Some false -> Some false
        | None -> None)
  in
  go c.atoms

let implies_atom c a =
  Solver_stats.count_implies_atom_check ();
  if is_ff_syntactic c then true
  else
    match Atom.truth a with
    | Some b -> b || not (is_sat c)
    | None ->
        if List.memq a c.atoms then true (* syntactic subset fast path *)
        else
          Memo.cached implies_atom_memo (dkey c.id, Atom.id a) (fun () ->
              let exact () =
                List.for_all (fun na -> not (is_sat (add na c))) (Atom.negate a)
              in
              if not !Interval.enabled then exact ()
              else
                match Interval.implies_atom ~id:c.id c.atoms a with
                | Interval.True ->
                    Solver_stats.count_interval_implies_hit ();
                    true
                | Interval.False ->
                    Solver_stats.count_interval_implies_hit ();
                    false
                | Interval.Unknown ->
                    Solver_stats.count_interval_bail ();
                    exact ())

let implies c d =
  Solver_stats.count_implies_check ();
  if c == d || d == tt then true
  else if is_ff_syntactic c then true
  else
    Memo.cached implies_memo (dkey c.id, d.id) (fun () ->
        if
          !Interval.enabled
          && Interval.implies ~id:c.id c.atoms d.atoms = Interval.True
        then begin
          (* the left box entails every right atom (or is empty); refutations
             are found per-atom by the fall-through path below *)
          Solver_stats.count_interval_implies_hit ();
          true
        end
        else List.for_all (implies_atom c) d.atoms)

let equiv c d = implies c d && implies d c

let simplify c =
  if c == tt || is_ff_syntactic c then c
  else
    (* integer mode simplifies the tightened form: equivalent over ℤ, and
       the closed bounds give the redundancy checks more to work with *)
    let c = if Cdomain.is_z () then ztighten c else c in
    if c == tt || is_ff_syntactic c then c
    else
    Memo.cached simplify_memo (dkey c.id) (fun () ->
        if not (is_sat c) then ff
        else
          (* drop atoms implied by the remaining ones; iterate front to back *)
          let rec go acc = function
            | [] -> List.rev acc
            | a :: rest ->
                let others = of_list (List.rev_append acc rest) in
                if implies_atom others a then go acc rest else go (a :: acc) rest
          in
          of_list (go [] c.atoms))

let subst x repl c = of_list (List.map (Atom.subst x repl) c.atoms)
let rename f c = of_list (List.map (Atom.rename f) c.atoms)

(* structural order on the canonical atom lists — stable across runs and
   independent of interning order (which would vary with workload) *)
let compare a b = if a == b then 0 else List.compare Atom.compare a.atoms b.atoms
let equal a b = a == b

let pp fmt c =
  match c.atoms with
  | [] -> Format.pp_print_string fmt "true"
  | atoms ->
      if is_ff_syntactic c then Format.pp_print_string fmt "false"
      else
        Format.pp_print_list
          ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " & ")
          Atom.pp fmt atoms

let to_string c = Format.asprintf "%a" pp c
