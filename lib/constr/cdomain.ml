type t = Q | Z

(* same two-level scheme as the simplex pivot budget: an atomic process
   default plus a per-domain DLS override, so one request's scoped domain
   can never leak into a concurrent one *)
let process_default = Atomic.make Q

let override : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let set_default d = Atomic.set process_default d

let current () =
  match !(Domain.DLS.get override) with Some d -> d | None -> Atomic.get process_default

let is_z () = current () = Z
let tag () = match current () with Q -> 0 | Z -> 1

let with_domain d f =
  let cell = Domain.DLS.get override in
  let prev = !cell in
  cell := Some d;
  Fun.protect ~finally:(fun () -> cell := prev) f

let of_string = function
  | "q" | "rat" | "rational" -> Some Q
  | "z" | "int" | "integer" -> Some Z
  | _ -> None

let to_string = function Q -> "rat" | Z -> "int"
