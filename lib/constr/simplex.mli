(** An independent decision procedure for conjunctions of linear arithmetic
    constraints: exact general simplex in the style of Dutertre–de Moura
    (SMT's Simplex for DPLL(T)), over rationals extended with an
    infinitesimal to handle strict inequalities.

    This is deliberately a *second* implementation of satisfiability — the
    Fourier–Motzkin eliminator in {!Conj} is the reference used for
    projection — so the two can cross-check each other (see the property
    tests), and because simplex is usually faster on pure satisfiability
    queries, which dominate the rewriting procedures' work. *)

(** Rationals extended with a positive infinitesimal: [a + b·ε], ordered
    lexicographically.  [x < c] is represented as [x ≤ c - ε]. *)
module Qeps : sig
  type t = { re : Cql_num.Rat.t; eps : Cql_num.Rat.t }

  val of_rat : Cql_num.Rat.t -> t
  val zero : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : Cql_num.Rat.t -> t -> t
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

exception Pivot_limit of { pivots : int }
(** Raised by {!is_sat}/{!solve} when a solve exhausts its pivot budget
    without reaching a verdict.  The first half of the budget uses a
    largest-violation heuristic, the second half pure Bland's rule (which
    cannot cycle), so the exception only fires on genuinely oversized
    tableaus — callers should fall back to another procedure rather than
    retry (see {!Conj.is_sat}). *)

val default_pivot_limit : int

val set_pivot_limit : int -> unit
(** Set the process-wide default per-solve pivot budget (clamped to at
    least [1]).  Intended for CLI/daemon configuration at startup — for
    scoped use see {!with_pivot_limit}. *)

val with_pivot_limit : int -> (unit -> 'a) -> 'a
(** [with_pivot_limit n f] runs [f] with the budget set to [n] {e for the
    calling domain only}, restoring the previous value afterwards (also on
    exceptions).  Concurrent solves on other domains keep their own budget,
    so one request's scoped budget can never leak into another — but note
    that worker domains spawned inside [f] (e.g. [Engine.run ~jobs]) start
    from the process default, not the caller's override. *)

val is_sat : Atom.t list -> bool
(** Exact satisfiability of the conjunction of the atoms, over the reals;
    agrees with {!Conj.is_sat} (which uses it as its satisfiability
    backend).  @raise Pivot_limit when the pivot budget is exhausted. *)

val solve : Atom.t list -> (Var.t * Qeps.t) list option
(** A satisfying assignment (over the extended field; any sufficiently
    small positive ε makes it real-valued), or [None] when unsatisfiable.
    Variables not mentioned map to zero.
    @raise Pivot_limit when the pivot budget is exhausted. *)
