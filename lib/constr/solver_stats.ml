(* Counters are registered in the Cql_obs registry, so every traced span
   automatically carries the delta of each decision-procedure counter over
   its extent, and `cqlopt --metrics` reports them alongside span timings.
   The cells are [Atomic.t] underneath: concurrent decision-procedure calls
   from worker domains during a parallel evaluation round count exactly; the
   sequential cost is one fetch-and-add per counted event. *)

module Obs = Cql_obs.Obs

let sat_checks = Obs.counter "solver.sat_checks"
let implies_checks = Obs.counter "solver.implies_checks"
let implies_atom_checks = Obs.counter "solver.implies_atom_checks"
let cset_implies_checks = Obs.counter "solver.cset_implies_checks"
let project_calls = Obs.counter "solver.project_calls"
let simplex_runs = Obs.counter "solver.simplex_runs"
let simplex_pivots = Obs.counter "solver.simplex_pivots"
let fm_eliminations = Obs.counter "solver.fm_eliminations"
let pivot_limit_hits = Obs.counter "solver.pivot_limit_hits"
let interval_env_builds = Obs.counter "solver.interval.env_builds"
let interval_sat_hits = Obs.counter "solver.interval.sat_hits"
let interval_implies_hits = Obs.counter "solver.interval.implies_hits"
let interval_disjoint_hits = Obs.counter "solver.interval.disjoint_hits"
let interval_bails = Obs.counter "solver.interval.bails"
let int_sat_checks = Obs.counter "solver.int.sat_checks"
let int_tightened_atoms = Obs.counter "solver.int.tightened_atoms"
let int_omega_eliminations = Obs.counter "solver.int.omega_eliminations"
let int_splinters = Obs.counter "solver.int.splinters"
let int_bb_fallbacks = Obs.counter "solver.int.bb_fallbacks"
let int_bb_nodes = Obs.counter "solver.int.bb_nodes"

let count_sat_check () = Obs.incr sat_checks
let count_implies_check () = Obs.incr implies_checks
let count_implies_atom_check () = Obs.incr implies_atom_checks
let count_cset_implies_check () = Obs.incr cset_implies_checks
let count_project_call () = Obs.incr project_calls
let count_simplex_run () = Obs.incr simplex_runs
let count_simplex_pivot () = Obs.incr simplex_pivots
let count_fm_elimination () = Obs.incr fm_eliminations
let count_pivot_limit () = Obs.incr pivot_limit_hits
let count_interval_env_build () = Obs.incr interval_env_builds
let count_interval_sat_hit () = Obs.incr interval_sat_hits
let count_interval_implies_hit () = Obs.incr interval_implies_hits
let count_interval_disjoint_hit () = Obs.incr interval_disjoint_hits
let count_interval_bail () = Obs.incr interval_bails
let count_int_sat_check () = Obs.incr int_sat_checks
let count_int_tightened_atom () = Obs.incr int_tightened_atoms
let count_int_omega_elimination () = Obs.incr int_omega_eliminations
let count_int_splinter () = Obs.incr int_splinters
let count_int_bb_fallback () = Obs.incr int_bb_fallbacks
let count_int_bb_node () = Obs.incr int_bb_nodes

type t = {
  sat_checks : int;
  implies_checks : int;
  implies_atom_checks : int;
  cset_implies_checks : int;
  project_calls : int;
  simplex_runs : int;
  simplex_pivots : int;
  fm_eliminations : int;
  pivot_limit_hits : int;
  interval_env_builds : int;
  interval_sat_hits : int;
  interval_implies_hits : int;
  interval_disjoint_hits : int;
  interval_bails : int;
  int_sat_checks : int;
  int_tightened_atoms : int;
  int_omega_eliminations : int;
  int_splinters : int;
  int_bb_fallbacks : int;
  int_bb_nodes : int;
  caches : Memo.table_stats list;
}

let reset () =
  Obs.set sat_checks 0;
  Obs.set implies_checks 0;
  Obs.set implies_atom_checks 0;
  Obs.set cset_implies_checks 0;
  Obs.set project_calls 0;
  Obs.set simplex_runs 0;
  Obs.set simplex_pivots 0;
  Obs.set fm_eliminations 0;
  Obs.set pivot_limit_hits 0;
  Obs.set interval_env_builds 0;
  Obs.set interval_sat_hits 0;
  Obs.set interval_implies_hits 0;
  Obs.set interval_disjoint_hits 0;
  Obs.set interval_bails 0;
  Obs.set int_sat_checks 0;
  Obs.set int_tightened_atoms 0;
  Obs.set int_omega_eliminations 0;
  Obs.set int_splinters 0;
  Obs.set int_bb_fallbacks 0;
  Obs.set int_bb_nodes 0;
  Memo.reset_stats ()

let snapshot () =
  {
    sat_checks = Obs.value sat_checks;
    implies_checks = Obs.value implies_checks;
    implies_atom_checks = Obs.value implies_atom_checks;
    cset_implies_checks = Obs.value cset_implies_checks;
    project_calls = Obs.value project_calls;
    simplex_runs = Obs.value simplex_runs;
    simplex_pivots = Obs.value simplex_pivots;
    fm_eliminations = Obs.value fm_eliminations;
    pivot_limit_hits = Obs.value pivot_limit_hits;
    interval_env_builds = Obs.value interval_env_builds;
    interval_sat_hits = Obs.value interval_sat_hits;
    interval_implies_hits = Obs.value interval_implies_hits;
    interval_disjoint_hits = Obs.value interval_disjoint_hits;
    interval_bails = Obs.value interval_bails;
    int_sat_checks = Obs.value int_sat_checks;
    int_tightened_atoms = Obs.value int_tightened_atoms;
    int_omega_eliminations = Obs.value int_omega_eliminations;
    int_splinters = Obs.value int_splinters;
    int_bb_fallbacks = Obs.value int_bb_fallbacks;
    int_bb_nodes = Obs.value int_bb_nodes;
    caches = Memo.stats ();
  }

let total_hits s =
  List.fold_left (fun acc (c : Memo.table_stats) -> acc + c.Memo.hits) 0 s.caches

let total_misses s =
  List.fold_left (fun acc (c : Memo.table_stats) -> acc + c.Memo.misses) 0 s.caches

let hit_rate s =
  let h = total_hits s and m = total_misses s in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let pp fmt s =
  Format.fprintf fmt
    "solver: sat_checks=%d implies=%d implies_atom=%d cset_implies=%d project=%d@\n"
    s.sat_checks s.implies_checks s.implies_atom_checks s.cset_implies_checks s.project_calls;
  Format.fprintf fmt
    "solver: simplex_runs=%d simplex_pivots=%d fm_eliminations=%d pivot_limit_hits=%d@\n"
    s.simplex_runs s.simplex_pivots s.fm_eliminations s.pivot_limit_hits;
  Format.fprintf fmt
    "solver: interval env_builds=%d sat_hits=%d implies_hits=%d disjoint_hits=%d bails=%d@\n"
    s.interval_env_builds s.interval_sat_hits s.interval_implies_hits s.interval_disjoint_hits
    s.interval_bails;
  Format.fprintf fmt
    "solver: int sat_checks=%d tightened=%d omega_eliminations=%d splinters=%d bb_fallbacks=%d \
     bb_nodes=%d@\n"
    s.int_sat_checks s.int_tightened_atoms s.int_omega_eliminations s.int_splinters
    s.int_bb_fallbacks s.int_bb_nodes;
  List.iter
    (fun (c : Memo.table_stats) ->
      Format.fprintf fmt "cache : %-16s hits=%-8d misses=%-8d entries=%-7d hit_rate=%.3f@\n"
        c.Memo.name c.Memo.hits c.Memo.misses c.Memo.entries (Memo.hit_rate c))
    s.caches;
  Format.fprintf fmt "cache : overall hit_rate=%.3f (%d hits / %d lookups)@\n" (hit_rate s)
    (total_hits s)
    (total_hits s + total_misses s)
