(* Counters are [Atomic.t] so concurrent decision-procedure calls from
   worker domains during a parallel evaluation round count exactly; the
   sequential cost is one fetch-and-add per counted event. *)

let sat_checks = Atomic.make 0
let implies_checks = Atomic.make 0
let implies_atom_checks = Atomic.make 0
let cset_implies_checks = Atomic.make 0
let project_calls = Atomic.make 0
let simplex_runs = Atomic.make 0
let simplex_pivots = Atomic.make 0
let fm_eliminations = Atomic.make 0

let count_sat_check () = Atomic.incr sat_checks
let count_implies_check () = Atomic.incr implies_checks
let count_implies_atom_check () = Atomic.incr implies_atom_checks
let count_cset_implies_check () = Atomic.incr cset_implies_checks
let count_project_call () = Atomic.incr project_calls
let count_simplex_run () = Atomic.incr simplex_runs
let count_simplex_pivot () = Atomic.incr simplex_pivots
let count_fm_elimination () = Atomic.incr fm_eliminations

type t = {
  sat_checks : int;
  implies_checks : int;
  implies_atom_checks : int;
  cset_implies_checks : int;
  project_calls : int;
  simplex_runs : int;
  simplex_pivots : int;
  fm_eliminations : int;
  caches : Memo.table_stats list;
}

let reset () =
  Atomic.set sat_checks 0;
  Atomic.set implies_checks 0;
  Atomic.set implies_atom_checks 0;
  Atomic.set cset_implies_checks 0;
  Atomic.set project_calls 0;
  Atomic.set simplex_runs 0;
  Atomic.set simplex_pivots 0;
  Atomic.set fm_eliminations 0;
  Memo.reset_stats ()

let snapshot () =
  {
    sat_checks = Atomic.get sat_checks;
    implies_checks = Atomic.get implies_checks;
    implies_atom_checks = Atomic.get implies_atom_checks;
    cset_implies_checks = Atomic.get cset_implies_checks;
    project_calls = Atomic.get project_calls;
    simplex_runs = Atomic.get simplex_runs;
    simplex_pivots = Atomic.get simplex_pivots;
    fm_eliminations = Atomic.get fm_eliminations;
    caches = Memo.stats ();
  }

let total_hits s =
  List.fold_left (fun acc (c : Memo.table_stats) -> acc + c.Memo.hits) 0 s.caches

let total_misses s =
  List.fold_left (fun acc (c : Memo.table_stats) -> acc + c.Memo.misses) 0 s.caches

let hit_rate s =
  let h = total_hits s and m = total_misses s in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let pp fmt s =
  Format.fprintf fmt
    "solver: sat_checks=%d implies=%d implies_atom=%d cset_implies=%d project=%d@\n"
    s.sat_checks s.implies_checks s.implies_atom_checks s.cset_implies_checks s.project_calls;
  Format.fprintf fmt "solver: simplex_runs=%d simplex_pivots=%d fm_eliminations=%d@\n"
    s.simplex_runs s.simplex_pivots s.fm_eliminations;
  List.iter
    (fun (c : Memo.table_stats) ->
      Format.fprintf fmt "cache : %-16s hits=%-8d misses=%-8d entries=%-7d hit_rate=%.3f@\n"
        c.Memo.name c.Memo.hits c.Memo.misses c.Memo.entries (Memo.hit_rate c))
    s.caches;
  Format.fprintf fmt "cache : overall hit_rate=%.3f (%d hits / %d lookups)@\n" (hit_rate s)
    (total_hits s)
    (total_hits s + total_misses s)
