(** Conjunctions of linear arithmetic atoms, with a complete decision
    procedure for the linear fragment over the reals.

    Satisfiability, projection (existential quantifier elimination) and
    implication are decided exactly by Gaussian elimination on equalities
    plus Fourier–Motzkin elimination on inequalities — the operations that
    the paper's Theorems 4.2, 4.5 and 4.7 require to "be done exactly"
    (citing Lassez–Maher [8] and Tarski [15]).

    A conjunction is a sorted, duplicate-free list of atoms; trivially-true
    atoms are dropped and a detected contradiction is represented by the
    single atom {!Atom.ff}.

    Conjunctions are hash-consed: every canonical atom list is interned in a
    weak table, so {!equal} is physical equality and {!id} is a unique
    integer.  The decision procedures ({!is_sat}, {!implies},
    {!implies_atom}, {!project}, {!simplify}) are memoized in id-keyed
    caches registered with {!Memo}; raw call counts are recorded in
    {!Solver_stats}. *)

type t

(** {1 Construction} *)

val tt : t
(** The empty (true) conjunction. *)

val ff : t
(** A canonical unsatisfiable conjunction. *)

val of_list : Atom.t list -> t
val singleton : Atom.t -> t
val add : Atom.t -> t -> t
val and_ : t -> t -> t
val to_list : t -> Atom.t list

(** {1 Classification} *)

val is_tt : t -> bool
(** Syntactically empty (note: a satisfiable-everywhere conjunction that is
    not syntactically empty exists only transiently; {!simplify} empties
    it). *)

val size : t -> int
val vars : t -> Var.Set.t

val id : t -> int
(** Unique interning id (never reused across the process lifetime); keys the
    memoization caches. *)

val hash : t -> int
(** O(1) precomputed hash, consistent with {!equal}. *)

(** {1 Decision procedures} *)

val is_sat : t -> bool
(** Exact satisfiability over the active {!Cdomain}: over the reals
    (simplex, Fourier–Motzkin fallback) when it is {!Cdomain.Q}, over the
    integers ({!ztighten}, then {!Zsolve}) when it is {!Cdomain.Z}.  Memo
    entries are keyed by domain, so flipping the domain never serves a
    stale verdict. *)

val ztighten : t -> t
(** The integer-tightened form: every atom run through
    {!Zsolve.tighten_atom}.  Equivalent over ℤ, generally strictly
    stronger over ℚ; the identity on conjunctions with nothing to
    tighten.  Used by the Z branch of the decision procedures and exposed
    for the tier-transparency property tests. *)

val project : keep:Var.Set.t -> t -> t
(** [project ~keep c] is the strongest conjunction over [keep] implied by
    [c]: existential elimination of all other variables (Gauss +
    Fourier–Motzkin).  Unsatisfiability is preserved. *)

val eliminate : Var.t -> t -> t
(** Eliminate a single variable. *)

val eval_at : (Var.t -> Cql_num.Rat.t option) -> t -> bool option
(** Evaluate at a (partial) point: [Some b] when every atom evaluates. *)

val implies_atom : t -> Atom.t -> bool
(** [implies_atom c a] decides [c ⊨ a] by refutation. *)

val implies : t -> t -> bool
(** [implies c d] decides [c ⊨ d].  An unsatisfiable [c] implies
    everything. *)

val equiv : t -> t -> bool

val simplify : t -> t
(** Remove redundant atoms (atoms implied by the rest) and collapse
    unsatisfiable conjunctions to {!ff}.  Semantics-preserving. *)

(** {1 Substitution} *)

val subst : Var.t -> Linexpr.t -> t -> t
val rename : (Var.t -> Var.t) -> t -> t

(** {1 Comparison and printing} *)

val compare : t -> t -> int
(** Structural order on the canonical atom lists — stable across runs,
    independent of interning order. *)

val equal : t -> t -> bool
(** Physical equality, equivalent to structural equality of the canonical
    form by interning (implies logical equivalence of the atom sets, but two
    equivalent conjunctions may differ structurally unless simplified). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
