open Cql_num

type t = { coeffs : Rat.t Var.Map.t; const : Rat.t }

let zero = { coeffs = Var.Map.empty; const = Rat.zero }
let const c = { coeffs = Var.Map.empty; const = c }
let of_int n = const (Rat.of_int n)

let norm_coeffs m = Var.Map.filter (fun _ c -> not (Rat.is_zero c)) m

let term a x =
  if Rat.is_zero a then zero else { coeffs = Var.Map.singleton x a; const = Rat.zero }

let var x = term Rat.one x

let add a b =
  let coeffs =
    Var.Map.union
      (fun _ c1 c2 ->
        let c = Rat.add c1 c2 in
        if Rat.is_zero c then None else Some c)
      a.coeffs b.coeffs
  in
  { coeffs; const = Rat.add a.const b.const }

let scale k e =
  if Rat.is_zero k then zero
  else { coeffs = Var.Map.map (Rat.mul k) e.coeffs; const = Rat.mul k e.const }

let neg e = scale Rat.minus_one e
let sub a b = add a (neg b)

let of_terms ts c =
  List.fold_left (fun acc (a, x) -> add acc (term a x)) (const c) ts

let coeff x e = match Var.Map.find_opt x e.coeffs with Some c -> c | None -> Rat.zero
let constant e = e.const
let vars e = Var.Map.fold (fun x _ acc -> Var.Set.add x acc) e.coeffs Var.Set.empty
let is_const e = Var.Map.is_empty e.coeffs
let terms e = Var.Map.bindings e.coeffs

let subst x repl e =
  let c = coeff x e in
  if Rat.is_zero c then e
  else
    let without = { e with coeffs = Var.Map.remove x e.coeffs } in
    add without (scale c repl)

let rename f e =
  let coeffs =
    Var.Map.fold
      (fun x c acc ->
        let y = f x in
        match Var.Map.find_opt y acc with
        | None -> Var.Map.add y c acc
        | Some c' -> Var.Map.add y (Rat.add c c') acc)
      e.coeffs Var.Map.empty
  in
  { e with coeffs = norm_coeffs coeffs }

let integerize e =
  if Var.Map.is_empty e.coeffs && Rat.is_zero e.const then zero
  else begin
    (* common denominator, then gcd of integer numerators *)
    let dens =
      Var.Map.fold (fun _ c acc -> Bigint.lcm acc (Rat.den c)) e.coeffs (Rat.den e.const)
    in
    let scaled = scale (Rat.of_bigint dens) e in
    let g =
      Var.Map.fold
        (fun _ c acc -> Bigint.gcd acc (Bigint.abs (Rat.num c)))
        scaled.coeffs
        (Bigint.abs (Rat.num scaled.const))
    in
    if Bigint.is_zero g || Bigint.is_one g then scaled
    else scale (Rat.inv (Rat.of_bigint g)) scaled
  end

let compare a b =
  let c = Rat.compare a.const b.const in
  if c <> 0 then c else Var.Map.compare Rat.compare a.coeffs b.coeffs

let equal a b = compare a b = 0

let hash e =
  Var.Map.fold
    (fun x c acc -> ((acc * 65599) lxor ((Var.id x * 31) + Rat.hash c)) land max_int)
    e.coeffs (Rat.hash e.const)

let pp fmt e =
  let open Format in
  let first = ref true in
  let pp_term x c =
    let c_abs = Rat.abs c in
    if !first then begin
      first := false;
      if Rat.sign c < 0 then pp_print_string fmt "-"
    end
    else if Rat.sign c < 0 then pp_print_string fmt " - "
    else pp_print_string fmt " + ";
    if not (Rat.equal c_abs Rat.one) then fprintf fmt "%a*" Rat.pp c_abs;
    Var.pp fmt x
  in
  Var.Map.iter (fun x c -> pp_term x c) e.coeffs;
  if not (Rat.is_zero e.const) || !first then begin
    if !first then Rat.pp fmt e.const
    else if Rat.sign e.const < 0 then fprintf fmt " - %a" Rat.pp (Rat.abs e.const)
    else fprintf fmt " + %a" Rat.pp e.const
  end

let to_string e = Format.asprintf "%a" pp e
