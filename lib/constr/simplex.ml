open Cql_num

module Qeps = struct
  type t = { re : Rat.t; eps : Rat.t }

  let of_rat q = { re = q; eps = Rat.zero }
  let zero = of_rat Rat.zero
  let add a b = { re = Rat.add a.re b.re; eps = Rat.add a.eps b.eps }
  let sub a b = { re = Rat.sub a.re b.re; eps = Rat.sub a.eps b.eps }
  let scale k a = { re = Rat.mul k a.re; eps = Rat.mul k a.eps }

  let compare a b =
    let c = Rat.compare a.re b.re in
    if c <> 0 then c else Rat.compare a.eps b.eps

  let pp fmt a =
    if Rat.is_zero a.eps then Rat.pp fmt a.re
    else Format.fprintf fmt "%a%s%a*eps" Rat.pp a.re
           (if Rat.sign a.eps >= 0 then "+" else "")
           Rat.pp a.eps
end

module IntMap = Map.Make (Int)

type tableau = {
  mutable rows : Rat.t IntMap.t IntMap.t; (* basic var -> sparse row over nonbasics *)
  beta : Qeps.t array;
  lower : Qeps.t option array;
  upper : Qeps.t option array;
}

(* Dutertre-de Moura "AssertUpper/AssertLower" merged into initial bounds;
   we only ever solve a full conjunction at once. *)

let pivot_and_update t xb xn v =
  Solver_stats.count_simplex_pivot ();
  let row_b = IntMap.find xb t.rows in
  let a = IntMap.find xn row_b in
  let theta = Qeps.scale (Rat.inv a) (Qeps.sub v t.beta.(xb)) in
  t.beta.(xb) <- v;
  t.beta.(xn) <- Qeps.add t.beta.(xn) theta;
  IntMap.iter
    (fun xk row ->
      if xk <> xb then
        match IntMap.find_opt xn row with
        | Some ak -> t.beta.(xk) <- Qeps.add t.beta.(xk) (Qeps.scale ak theta)
        | None -> ())
    t.rows;
  (* pivot: xn becomes basic with row derived from xb's *)
  let inv_a = Rat.inv a in
  let row_n =
    IntMap.fold
      (fun i ci acc ->
        if i = xn then acc
        else
          let c = Rat.neg (Rat.mul ci inv_a) in
          if Rat.is_zero c then acc else IntMap.add i c acc)
      row_b
      (IntMap.singleton xb inv_a)
  in
  let rows = IntMap.remove xb t.rows in
  let rows =
    IntMap.map
      (fun row ->
        match IntMap.find_opt xn row with
        | None -> row
        | Some ak ->
            let row = IntMap.remove xn row in
            IntMap.union
              (fun _ c1 c2 ->
                let c = Rat.add c1 c2 in
                if Rat.is_zero c then None else Some c)
              row
              (IntMap.map (Rat.mul ak) row_n))
      rows
  in
  t.rows <- IntMap.add xn row_n rows

let below_lower t x = match t.lower.(x) with Some l -> Qeps.compare t.beta.(x) l < 0 | None -> false
let above_upper t x = match t.upper.(x) with Some u -> Qeps.compare t.beta.(x) u > 0 | None -> false
let can_increase t x = match t.upper.(x) with Some u -> Qeps.compare t.beta.(x) u < 0 | None -> true
let can_decrease t x = match t.lower.(x) with Some l -> Qeps.compare t.beta.(x) l > 0 | None -> true

(* ----- pivot budget ----- *)

exception Pivot_limit of { pivots : int }

let default_pivot_limit = 200_000

(* The budget is a process-wide atomic default plus a per-domain override:
   [with_pivot_limit] in one request (domain) must not change the budget a
   concurrent request observes, so the scoped form only ever touches the
   calling domain's cell. *)
let process_pivot_limit = Atomic.make default_pivot_limit

let pivot_limit_override : int option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_pivot_limit n = Atomic.set process_pivot_limit (max 1 n)

let current_pivot_limit () =
  match !(Domain.DLS.get pivot_limit_override) with
  | Some n -> n
  | None -> Atomic.get process_pivot_limit

let with_pivot_limit n f =
  let cell = Domain.DLS.get pivot_limit_override in
  let prev = !cell in
  cell := Some (max 1 n);
  Fun.protect ~finally:(fun () -> cell := prev) f

(* how far a violating basic variable is outside its bound *)
let violation t x = function
  | `Low -> Qeps.sub (Option.get t.lower.(x)) t.beta.(x)
  | `High -> Qeps.sub t.beta.(x) (Option.get t.upper.(x))

let suitable_dir dir a t xn =
  match dir with
  | `Low -> (Rat.sign a > 0 && can_increase t xn) || (Rat.sign a < 0 && can_decrease t xn)
  | `High -> (Rat.sign a < 0 && can_increase t xn) || (Rat.sign a > 0 && can_decrease t xn)

(* Pivot selection runs in two regimes.  The first [limit/2] pivots use a
   largest-violation heuristic (pick the basic variable furthest outside its
   bounds, enter on the suitable nonbasic with the largest |coefficient|),
   which converges fastest in practice but — unlike Bland's rule — can cycle
   on degenerate tableaus.  Past that threshold the solver switches to pure
   Bland's rule (smallest violating basic index, smallest suitable nonbasic
   index), which provably terminates.  The hard budget is a backstop for
   pathological sizes: exhausting it raises {!Pivot_limit} so a caller can
   fall back to another procedure instead of spinning. *)
let check t =
  let limit = current_pivot_limit () in
  let bland_after = limit / 2 in
  let pivots = ref 0 in
  let rec go () =
    let bland = !pivots >= bland_after in
    let violating =
      IntMap.fold
        (fun xb _ acc ->
          let dir =
            if below_lower t xb then Some `Low
            else if above_upper t xb then Some `High
            else None
          in
          match (dir, acc) with
          | None, _ -> acc
          | Some d, None -> Some (xb, d)
          | Some _, Some _ when bland -> acc (* keep the smallest index *)
          | Some d, Some (xb', d') ->
              if Qeps.compare (violation t xb d) (violation t xb' d') > 0 then Some (xb, d)
              else acc)
        t.rows None
    in
    match violating with
    | None -> true
    | Some (xb, dir) ->
        let row = IntMap.find xb t.rows in
        let suitable =
          IntMap.fold
            (fun xn a acc ->
              if not (suitable_dir dir a t xn) then acc
              else
                match acc with
                | None -> Some (xn, a)
                | Some _ when bland -> acc (* keep the smallest index *)
                | Some (_, a') -> if Rat.compare (Rat.abs a) (Rat.abs a') > 0 then Some (xn, a) else acc)
            row None
        in
        (match suitable with
        | None -> false
        | Some (xn, _) ->
            if !pivots >= limit then raise (Pivot_limit { pivots = !pivots });
            incr pivots;
            let target =
              match dir with
              | `Low -> Option.get t.lower.(xb)
              | `High -> Option.get t.upper.(xb)
            in
            pivot_and_update t xb xn target;
            go ())
  in
  go ()

let build (atoms : Atom.t list) =
  (* index original variables *)
  let var_ids = Hashtbl.create 16 in
  let n_orig = ref 0 in
  List.iter
    (fun a ->
      Var.Set.iter
        (fun v ->
          if not (Hashtbl.mem var_ids v) then begin
            Hashtbl.add var_ids v !n_orig;
            incr n_orig
          end)
        (Atom.vars a))
    atoms;
  (* one slack per distinct variable part *)
  let slack_ids : (Linexpr.t * int) list ref = ref [] in
  let n = ref !n_orig in
  let exception Trivially_false in
  let constraints = ref [] in
  (* (slack id or `Const, bound kind) per atom *)
  try
    List.iter
      (fun (a : Atom.t) ->
        let e = a.Atom.expr in
        let cst = Linexpr.constant e in
        let varpart = Linexpr.sub e (Linexpr.const cst) in
        if Linexpr.is_const varpart then begin
          (* constant atom: decide immediately *)
          let holds =
            match a.Atom.op with
            | Atom.Le -> Rat.sign cst <= 0
            | Atom.Lt -> Rat.sign cst < 0
            | Atom.Eq -> Rat.sign cst = 0
          in
          if not holds then raise Trivially_false
        end
        else begin
          let sid =
            match
              List.find_opt (fun (vp, _) -> Linexpr.compare vp varpart = 0) !slack_ids
            with
            | Some (_, id) -> id
            | None ->
                let id = !n in
                incr n;
                slack_ids := (varpart, id) :: !slack_ids;
                id
          in
          constraints := (sid, a.Atom.op, Rat.neg cst) :: !constraints
        end)
      atoms;
    let total = !n in
    let t =
      {
        rows = IntMap.empty;
        beta = Array.make total Qeps.zero;
        lower = Array.make total None;
        upper = Array.make total None;
      }
    in
    (* tableau rows: slack = variable part *)
    List.iter
      (fun (vp, sid) ->
        let row =
          List.fold_left
            (fun acc (v, k) -> IntMap.add (Hashtbl.find var_ids v) k acc)
            IntMap.empty (Linexpr.terms vp)
        in
        t.rows <- IntMap.add sid row t.rows)
      !slack_ids;
    (* bounds from atoms: s op bound *)
    let tighten_upper x (b : Qeps.t) =
      match t.upper.(x) with
      | Some u when Qeps.compare u b <= 0 -> ()
      | _ -> t.upper.(x) <- Some b
    and tighten_lower x (b : Qeps.t) =
      match t.lower.(x) with
      | Some l when Qeps.compare l b >= 0 -> ()
      | _ -> t.lower.(x) <- Some b
    in
    List.iter
      (fun (sid, op, bound) ->
        match op with
        | Atom.Le -> tighten_upper sid (Qeps.of_rat bound)
        | Atom.Lt -> tighten_upper sid { Qeps.re = bound; eps = Rat.minus_one }
        | Atom.Eq ->
            tighten_upper sid (Qeps.of_rat bound);
            tighten_lower sid (Qeps.of_rat bound))
      !constraints;
    (* a slack may end up with lower > upper: immediately unsat *)
    let bounds_ok =
      Array.for_all
        (fun i -> i)
        (Array.init total (fun x ->
             match (t.lower.(x), t.upper.(x)) with
             | Some l, Some u -> Qeps.compare l u <= 0
             | _ -> true))
    in
    if bounds_ok then Some (t, var_ids) else None
  with Trivially_false -> None

let solve c =
  Solver_stats.count_simplex_run ();
  match build c with
  | None -> None
  | Some (t, var_ids) ->
      if check t then
        Some (Hashtbl.fold (fun v id acc -> (v, t.beta.(id)) :: acc) var_ids [])
      else None

let is_sat c = solve c <> None
