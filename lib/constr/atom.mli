(** Single linear arithmetic constraints (Definition 2.1 of the paper).

    An atom is a normalized comparison [e ⋈ 0] with [⋈ ∈ {≤, <, =}]; the
    source forms [e1 ≥ e2] and [e1 > e2] are represented by negating the
    expression.  Expressions are {!Linexpr.integerize}d on construction so
    equal constraints have equal representations (for equalities the leading
    coefficient is made positive). *)

type op = Le | Lt | Eq

type t = private { expr : Linexpr.t; op : op; id : int; hash : int }
(** The constraint [expr op 0].  Atoms are hash-consed: {!make} interns the
    normalized atom in a weak table, so structurally equal atoms are
    physically equal and [id] is a unique (never reused) integer keying the
    memoization caches. *)

(** {1 Construction} *)

val make : Linexpr.t -> op -> t
(** [make e op] is the normalized atom [e op 0]. *)

val le : Linexpr.t -> Linexpr.t -> t
(** [le e1 e2] is [e1 ≤ e2]. *)

val lt : Linexpr.t -> Linexpr.t -> t
val ge : Linexpr.t -> Linexpr.t -> t
val gt : Linexpr.t -> Linexpr.t -> t
val eq : Linexpr.t -> Linexpr.t -> t

val tt : t
(** A trivially true atom ([0 = 0]). *)

val ff : t
(** A trivially false atom ([0 < 0]). *)

(** {1 Classification} *)

val truth : t -> bool option
(** [Some b] when the atom has no variables and evaluates to [b];
    [None] otherwise. *)

val vars : t -> Var.Set.t
val mem : Var.t -> t -> bool

(** {1 Logic} *)

val negate : t -> t list
(** The negation as a disjunction of atoms: [¬(e ≤ 0) = (-e < 0)],
    [¬(e < 0) = (-e ≤ 0)], and [¬(e = 0) = (e < 0) ∨ (-e < 0)]. *)

val eval_at : (Var.t -> Cql_num.Rat.t option) -> t -> bool option
(** [eval_at env a] evaluates the atom when [env] supplies a value for every
    variable; [None] when some variable is unvalued. *)

(** {1 Substitution} *)

val subst : Var.t -> Linexpr.t -> t -> t
val rename : (Var.t -> Var.t) -> t -> t

(** {1 Comparison and printing} *)

val compare : t -> t -> int
(** Structural order (operator, then expression) — the canonical atom order
    inside conjunctions, independent of interning order. *)

val equal : t -> t -> bool
(** Physical equality; equivalent to structural equality by interning. *)

val id : t -> int
(** Unique interning id (never reused across the process lifetime). *)

val hash : t -> int
(** Structural hash, consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
