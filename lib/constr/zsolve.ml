open Cql_num

(* ----- floor arithmetic ----- *)

(* Bigint.divmod truncates toward zero; the integer procedures need floor
   division (divisors here are always strictly positive) *)
let fdiv a b =
  let q, r = Bigint.divmod a b in
  if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let floor_rat q = fdiv (Rat.num q) (Rat.den q)
let ceil_rat q = Bigint.neg (floor_rat (Rat.neg q))

(* symmetric modulus: [smod a m ≡ a (mod m)] with the representative in
   [[-m/2, m/2)]; for [m = |a|+1] it maps [a] to [-sign a], a unit *)
let smod a m =
  let r = Bigint.sub a (Bigint.mul m (fdiv a m)) in
  if Bigint.compare (Bigint.add r r) m >= 0 then Bigint.sub r m else r

(* ----- per-atom tightening ----- *)

(* Atom expressions are integerized: integer coefficients and constant,
   jointly coprime.  Over ℤ, with g = gcd of the variable coefficients:
   - [t + c < 0]  ≡  [t ≤ -c - 1]  (strict bounds close),
   - [t ≤ b]      ≡  [t/g ≤ ⌊b/g⌋] (constants round through the gcd),
   - [t + c = 0] with [g ∤ c] has no integer solution.  Coprimality means
     [g > 1] always fails to divide [c], so such equalities refute. *)
let tighten_atom (a : Atom.t) =
  match Linexpr.terms a.Atom.expr with
  | [] -> a (* ground: truth is domain-independent *)
  | terms -> (
      let g =
        List.fold_left (fun acc (_, c) -> Bigint.gcd acc (Rat.num c)) Bigint.zero terms
      in
      let c = Rat.num (Linexpr.constant a.Atom.expr) in
      match a.Atom.op with
      | Atom.Eq ->
          if Bigint.is_one g || Bigint.is_zero (Bigint.rem c g) then a
          else begin
            Solver_stats.count_int_tightened_atom ();
            Atom.ff
          end
      | Atom.Le | Atom.Lt ->
          if Bigint.is_one g && a.Atom.op = Atom.Le then a
          else begin
            let b =
              if a.Atom.op = Atom.Lt then Bigint.sub (Bigint.neg c) Bigint.one
              else Bigint.neg c
            in
            let b' = fdiv b g in
            let e' =
              Linexpr.of_terms
                (List.map
                   (fun (x, cf) -> (Rat.of_bigint (Bigint.div (Rat.num cf) g), x))
                   terms)
                (Rat.neg (Rat.of_bigint b'))
            in
            let a' = Atom.make e' Atom.Le in
            if not (Atom.equal a' a) then Solver_stats.count_int_tightened_atom ();
            a'
          end)

(* ----- Omega-test elimination ----- *)

exception Unsat_exn
exception Budget

let default_budget = 2000

(* tighten every atom and evaluate the ground ones *)
let normalize atoms =
  List.filter_map
    (fun a ->
      let a = tighten_atom a in
      match Atom.truth a with
      | Some true -> None
      | Some false -> raise Unsat_exn
      | None -> Some a)
    atoms

let spend budget =
  decr budget;
  if !budget < 0 then raise Budget

let conj_vars atoms =
  List.fold_left (fun s a -> Var.Set.union s (Atom.vars a)) Var.Set.empty atoms

(* Eliminate one equality.  A unit coefficient solves exactly; otherwise
   Pugh's symmetric-modulus rewrite: with m = |a_k| + 1 the residue of a_k
   is a unit, so the auxiliary equality

     Σ smod(a_i, m)·x_i + smod(c, m) + m·σ = 0     (σ fresh)

   is implied over ℤ by the original one and solves exactly for x_k.
   Substituting everywhere — including into the original equality, whose
   coefficients all become divisible by m and are normalized away by
   [Atom.make]'s integerize — shrinks the coefficients each round. *)
let solve_equality atoms (eq : Atom.t) =
  let terms = Linexpr.terms eq.Atom.expr in
  let xk, ak =
    match terms with
    | [] -> assert false
    | (x0, c0) :: rest ->
        List.fold_left
          (fun (bx, bc) (x, c) ->
            if Rat.compare (Rat.abs c) (Rat.abs bc) < 0 then (x, c) else (bx, bc))
          (x0, c0) rest
  in
  if Bigint.is_one (Bigint.abs (Rat.num ak)) then
    let rest_e = Linexpr.sub eq.Atom.expr (Linexpr.term ak xk) in
    let repl = Linexpr.scale (Rat.neg (Rat.inv ak)) rest_e in
    List.filter_map
      (fun a -> if Atom.equal a eq then None else Some (Atom.subst xk repl a))
      atoms
  else begin
    let m = Bigint.add (Bigint.abs (Rat.num ak)) Bigint.one in
    let sigma = Var.fresh "omega" in
    let n_expr =
      List.fold_left
        (fun acc (x, c) ->
          Linexpr.add acc (Linexpr.term (Rat.of_bigint (smod (Rat.num c) m)) x))
        (Linexpr.add
           (Linexpr.const (Rat.of_bigint (smod (Rat.num (Linexpr.constant eq.Atom.expr)) m)))
           (Linexpr.term (Rat.of_bigint m) sigma))
        terms
    in
    (* coefficient of x_k in the auxiliary equality is -sign(a_k) *)
    let ck = Linexpr.coeff xk n_expr in
    let rest_e = Linexpr.sub n_expr (Linexpr.term ck xk) in
    let repl = Linexpr.scale (Rat.neg (Rat.inv ck)) rest_e in
    List.map (Atom.subst xk repl) atoms
  end

(* Shadow of a (lower, upper) pair around x: from a·x ≥ r and c·x ≤ u
   (a, c > 0) derive c·r - a·u + δ ≤ 0, with δ = 0 for the real shadow and
   δ = (a-1)(c-1) for the dark shadow (whose satisfiability guarantees an
   integer x between the bounds). *)
let shadow ~dark (a, rl) (c, uu) =
  let e = Linexpr.sub (Linexpr.scale c rl) (Linexpr.scale a uu) in
  let e =
    if dark then
      Linexpr.add e (Linexpr.const (Rat.mul (Rat.sub a Rat.one) (Rat.sub c Rat.one)))
    else e
  in
  Atom.make e Atom.Le

(* Choose the variable to eliminate: prefer one whose elimination is exact
   (every bound on one side has a unit coefficient, so real = dark shadow),
   then minimize the Fourier-Motzkin-style pair blowup. *)
let pick_var atoms vars =
  Var.Set.fold
    (fun x best ->
      let pos = ref 0
      and neg = ref 0
      and max_pos = ref Bigint.zero
      and max_neg = ref Bigint.zero in
      List.iter
        (fun (a : Atom.t) ->
          let k = Linexpr.coeff x a.Atom.expr in
          let s = Rat.sign k in
          if s > 0 then begin
            incr pos;
            max_pos := Bigint.max !max_pos (Rat.num k)
          end
          else if s < 0 then begin
            incr neg;
            max_neg := Bigint.max !max_neg (Bigint.neg (Rat.num k))
          end)
        atoms;
      let exact =
        Bigint.compare !max_pos Bigint.one <= 0 || Bigint.compare !max_neg Bigint.one <= 0
      in
      let cost = (!pos * !neg) - (!pos + !neg) in
      match best with
      | Some (_, bexact, bcost) when (bexact && not exact) || (bexact = exact && bcost <= cost)
        ->
          best
      | _ -> Some (x, exact, cost))
    vars None

let rec zsat budget atoms0 =
  match normalize atoms0 with
  | exception Unsat_exn -> false
  | [] -> true
  | atoms -> (
      match List.find_opt (fun (a : Atom.t) -> a.Atom.op = Atom.Eq) atoms with
      | Some eq ->
          spend budget;
          Solver_stats.count_int_omega_elimination ();
          zsat budget (solve_equality atoms eq)
      | None -> (
          (* only (tightened, non-ground) Le atoms remain *)
          match pick_var atoms (conj_vars atoms) with
          | None -> true
          | Some (x, exact, _) ->
              let mentions, rest = List.partition (Atom.mem x) atoms in
              let lowers, uppers =
                List.partition
                  (fun (a : Atom.t) -> Rat.sign (Linexpr.coeff x a.Atom.expr) < 0)
                  mentions
              in
              if lowers = [] || uppers = [] then begin
                (* x is bounded on at most one side: any sufficiently extreme
                   integer satisfies the mentions, so they project away *)
                spend budget;
                Solver_stats.count_int_omega_elimination ();
                zsat budget rest
              end
              else begin
                spend budget;
                Solver_stats.count_int_omega_elimination ();
                let lower_bound (a : Atom.t) =
                  let k = Linexpr.coeff x a.Atom.expr in
                  (Rat.neg k, Linexpr.sub a.Atom.expr (Linexpr.term k x))
                in
                let upper_bound (a : Atom.t) =
                  let k = Linexpr.coeff x a.Atom.expr in
                  (k, Linexpr.neg (Linexpr.sub a.Atom.expr (Linexpr.term k x)))
                in
                let lbs = List.map lower_bound lowers
                and ubs = List.map upper_bound uppers in
                let pairs ~dark =
                  List.concat_map (fun lb -> List.map (shadow ~dark lb) ubs) lbs
                in
                if exact then zsat budget (rest @ pairs ~dark:false)
                else if zsat budget (rest @ pairs ~dark:true) then true
                else
                  (* the dark shadow refuted: any remaining solution hugs a
                     non-unit lower bound, so try the splinter equalities
                     a·x = r + i for the bounded splinter range *)
                  let cmax =
                    List.fold_left (fun m (c, _) -> Bigint.max m (Rat.num c)) Bigint.one ubs
                  in
                  List.exists
                    (fun (a, rl) ->
                      let ab = Rat.num a in
                      if Bigint.compare ab Bigint.one <= 0 then false
                      else
                        let imax =
                          fdiv (Bigint.sub (Bigint.mul ab cmax) (Bigint.add ab cmax)) cmax
                        in
                        let rec try_i i =
                          if Bigint.compare i imax > 0 then false
                          else begin
                            Solver_stats.count_int_splinter ();
                            spend budget;
                            let eqa =
                              Atom.make
                                (Linexpr.sub (Linexpr.term a x)
                                   (Linexpr.add rl (Linexpr.const (Rat.of_bigint i))))
                                Atom.Eq
                            in
                            zsat budget (eqa :: atoms) || try_i (Bigint.add i Bigint.one)
                          end
                        in
                        try_i Bigint.zero)
                    lbs
              end))

(* ----- branch-and-bound fallback ----- *)

(* Complete without a budget: every variable is clamped to the von zur
   Gathen-Sieveking solution bound (a satisfiable integer system has a
   solution with |x_j| ≤ (n+1)·Δ, Δ ≤ r!·amax^r, r = min(vars, rows)), and
   every branch shrinks one variable's integer range by at least one, so
   the tree is finite.  Relaxation models come from Simplex.solve; their
   [re] parts satisfy all Le/Eq atoms (the ε components only order strict
   bounds, and tightening leaves none). *)
let bb_is_sat atoms0 =
  Solver_stats.count_int_bb_fallback ();
  match normalize atoms0 with
  | exception Unsat_exn -> false
  | [] -> true
  | atoms ->
      let vars = Var.Set.elements (conj_vars atoms) in
      let n = List.length vars in
      let rows =
        List.fold_left
          (fun acc (a : Atom.t) -> acc + (if a.Atom.op = Atom.Eq then 2 else 1))
          0 atoms
      in
      let amax =
        List.fold_left
          (fun acc (a : Atom.t) ->
            let acc = Bigint.max acc (Bigint.abs (Rat.num (Linexpr.constant a.Atom.expr))) in
            List.fold_left
              (fun acc (_, c) -> Bigint.max acc (Bigint.abs (Rat.num c)))
              acc (Linexpr.terms a.Atom.expr))
          Bigint.one atoms
      in
      let r = min n rows in
      let big_m =
        let fact = ref Bigint.one in
        for i = 2 to r do
          fact := Bigint.mul !fact (Bigint.of_int i)
        done;
        Bigint.mul (Bigint.of_int (n + 1)) (Bigint.mul !fact (Bigint.pow amax r))
      in
      let le_atom v k =
        Atom.make (Linexpr.sub (Linexpr.var v) (Linexpr.const (Rat.of_bigint k))) Atom.Le
      in
      let ge_atom v k =
        Atom.make (Linexpr.sub (Linexpr.const (Rat.of_bigint k)) (Linexpr.var v)) Atom.Le
      in
      let ranges =
        List.fold_left
          (fun m v -> Var.Map.add v (Bigint.neg big_m, big_m) m)
          Var.Map.empty vars
      in
      let clamp =
        List.concat_map (fun v -> [ le_atom v big_m; ge_atom v (Bigint.neg big_m) ]) vars
      in
      let rec node atoms ranges =
        Solver_stats.count_int_bb_node ();
        let branch v k =
          (* left: v ≤ k, right: v ≥ k+1; both strictly shrink v's range *)
          let lo, hi = Var.Map.find v ranges in
          let left () =
            Bigint.compare k lo >= 0
            && node (le_atom v k :: atoms) (Var.Map.add v (lo, Bigint.min hi k) ranges)
          in
          let right () =
            let k1 = Bigint.add k Bigint.one in
            Bigint.compare k1 hi <= 0
            && node (ge_atom v k1 :: atoms) (Var.Map.add v (Bigint.max lo k1, hi) ranges)
          in
          left () || right ()
        in
        match Simplex.solve atoms with
        | None -> false
        | Some model -> (
            let value v =
              match List.assoc_opt v model with
              | Some q -> q.Simplex.Qeps.re
              | None -> Rat.zero
            in
            match List.find_opt (fun v -> not (Rat.is_integer (value v))) vars with
            | None -> true
            | Some v -> branch v (floor_rat (value v)))
        | exception Simplex.Pivot_limit _ ->
            Solver_stats.count_pivot_limit ();
            (* no relaxation verdict: bisect the widest remaining range *)
            let v, (lo, hi) =
              List.fold_left
                (fun ((_, (blo, bhi)) as best) v ->
                  let lo, hi = Var.Map.find v ranges in
                  if Bigint.compare (Bigint.sub hi lo) (Bigint.sub bhi blo) > 0 then
                    (v, (lo, hi))
                  else best)
                (List.hd vars, Var.Map.find (List.hd vars) ranges)
                (List.tl vars)
            in
            if Bigint.compare lo hi >= 0 then
              (* every variable is pinned: decide by direct evaluation *)
              let env v = Some (Rat.of_bigint (fst (Var.Map.find v ranges))) in
              List.for_all (fun a -> Atom.eval_at env a = Some true) atoms
            else branch v (fdiv (Bigint.add lo hi) (Bigint.of_int 2))
      in
      node (clamp @ atoms) ranges

(* ----- entry points ----- *)

let is_sat atoms =
  Solver_stats.count_int_sat_check ();
  let budget = ref default_budget in
  try zsat budget atoms with Budget -> bb_is_sat atoms

let is_sat_bb atoms =
  Solver_stats.count_int_sat_check ();
  bb_is_sat atoms
