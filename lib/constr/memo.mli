(** Registry of the memoization caches used by the decision procedures
    ({!Conj.is_sat}, {!Conj.implies}, {!Conj.project}, {!Cset.conj_implies}).

    Caches are keyed by hash-cons ids ({!Conj.id} / {!Atom.id}), which are
    allocated from a monotonic counter and never reused — so a stale entry
    left behind by {!clear_all} or by the weak tables collecting a term can
    never be observed by a later lookup.  Memoization caches {e results
    only}; disabling them ({!enabled} := false, or {!with_caches}) changes
    nothing but speed, and the fuzz harness's cache oracle checks exactly
    that. *)

val enabled : bool ref
(** When [false], every cache is bypassed (no lookups, no insertions, no
    hit/miss accounting).  Interning itself is always on — it is the term
    representation, not an optimization that can drift. *)

val max_entries : int ref
(** Per-cache bound; a cache reaching it is dropped wholesale. *)

type table
(** Handle to one registered cache. *)

val register : name:string -> clear:(unit -> unit) -> size:(unit -> int) -> table
val hit : table -> unit
val miss : table -> unit

val cached : table -> ('k, 'v) Hashtbl.t -> 'k -> (unit -> 'v) -> 'v
(** [cached t tbl key compute] looks [key] up in [tbl], computing and
    storing on a miss; bypasses the table entirely when {!enabled} is
    [false]. *)

type table_stats = { name : string; hits : int; misses : int; entries : int }

val stats : unit -> table_stats list
(** Per-cache counters, in registration order. *)

val clear_all : unit -> unit
(** Drop every cache's entries (hit/miss counters survive).  Call between
    independent workloads — e.g. the fuzz harness clears caches around each
    cache-oracle run. *)

val reset_stats : unit -> unit
(** Zero every cache's hit/miss counters. *)

val with_caches : bool -> (unit -> 'a) -> 'a
(** [with_caches on f] runs [f] with caching forced on or off and a fresh
    cache state on both entry and exit, restoring the previous {!enabled}
    flag afterwards (exception-safe). *)
