(** Registry of the memoization caches used by the decision procedures
    ({!Conj.is_sat}, {!Conj.implies}, {!Conj.project}, {!Cset.conj_implies}).

    Caches are keyed by hash-cons ids ({!Conj.id} / {!Atom.id}), which are
    allocated from a monotonic counter and never reused — so a stale entry
    left behind by {!clear_all} or by the weak tables collecting a term can
    never be observed by a later lookup.  Memoization caches {e results
    only}; disabling them ({!enabled} := false, or {!with_caches}) changes
    nothing but speed, and the fuzz harness's cache oracle checks exactly
    that.

    Storage is per-domain via [Domain.DLS]: each domain owns a private
    table per cache, so parallel evaluation rounds memoize without locks.
    Hit/miss counters are atomic and aggregate exactly across domains;
    {!stats}' [entries] field is the calling domain's view. *)

val enabled : bool ref
(** When [false], every cache is bypassed (no lookups, no insertions, no
    hit/miss accounting).  Interning itself is always on — it is the term
    representation, not an optimization that can drift.  Toggle only from
    sequential phases (it is a plain flag read racily by workers). *)

val max_entries : int ref
(** Per-domain, per-cache bound; a table reaching it is dropped wholesale. *)

type ('k, 'v) cache
(** One registered cache: per-domain tables from ['k] to ['v]. *)

val create : name:string -> ('k, 'v) cache
(** Register a cache.  Call once, at module initialization, from the main
    domain. *)

val cached : ('k, 'v) cache -> 'k -> (unit -> 'v) -> 'v
(** [cached c key compute] looks [key] up in the calling domain's table,
    computing and storing on a miss; bypasses the table entirely when
    {!enabled} is [false]. *)

type table_stats = { name : string; hits : int; misses : int; entries : int }

val stats : unit -> table_stats list
(** Per-cache counters, in registration order.  Hits/misses are summed
    across all domains; [entries] counts the calling domain's table. *)

val hit_rate : table_stats -> float
(** Hits over total lookups, and [0.0] (not nan) for a cache that was
    registered but never queried. *)

val clear_all : unit -> unit
(** Drop every cache's entries in every domain (hit/miss counters
    survive).  The calling domain's tables empty immediately; other
    domains drop theirs at their next access.  Call between independent
    workloads — e.g. the fuzz harness clears caches around each
    cache-oracle run. *)

val reset_stats : unit -> unit
(** Zero every cache's hit/miss counters. *)

val with_caches : bool -> (unit -> 'a) -> 'a
(** [with_caches on f] runs [f] with caching forced on or off and a fresh
    cache state on both entry and exit, restoring the previous {!enabled}
    flag afterwards (exception-safe). *)
