(** Interval-abstraction fast tier in front of the exact decision
    procedures (ROADMAP item 3).

    A per-variable interval domain over the rationals: each variable gets a
    closed/open lower and upper bound (or ±∞), and an environment is derived
    from a conjunction's atoms by bound propagation — direct bounds from
    univariate atoms, plus one-unknown propagation through multi-variable
    atoms, iterated to a fixpoint under a small pass cap.  The environment
    is a sound {e over}-approximation of the conjunction's solution set, so

    - an empty interval proves the conjunction unsatisfiable,
    - a box over which every atom holds proves it satisfiable,
    - box-disjointness on any shared variable proves two conjunctions
      mutually exclusive,

    and all three verdicts agree exactly with what the simplex/FM tier
    would answer.  Anything the box cannot decide is {!Unknown} and the
    caller falls through to the exact procedures unchanged — the tier is
    result-transparent by construction (the fuzz harness's tier oracle
    checks exactly that).

    Environments are memoized per conjunction id in a {!Memo} cache
    (["interval_env"]), so they obey the same epoch clearing and
    per-domain storage as the exact-tier caches.  The tier can be disabled
    for a scope with {!with_tier} or for the whole process with the
    [CQLOPT_NO_INTERVAL] environment variable. *)

type verdict = True | False | Unknown
(** Three-valued answer of the abstract tier.  [True]/[False] are exact
    (equal to the simplex/FM answer); [Unknown] means the box has no
    opinion and the exact tier must decide. *)

val enabled : bool ref
(** Master switch, [true] unless [CQLOPT_NO_INTERVAL] is set (to anything
    but [""] or ["0"]) at load time.  Callers skip the tier entirely when
    [false].  Toggle only from sequential phases. *)

val with_tier : bool -> (unit -> 'a) -> 'a
(** [with_tier on f] runs [f] with the tier forced on or off, restoring
    the previous {!enabled} value afterwards (exception-safe). *)

val sat : id:int -> Atom.t list -> verdict
(** Satisfiability of the conjunction with interned id [id] and the given
    canonical atom list: [False] iff propagation empties some interval,
    [True] iff the box is nonempty and every atom is entailed by it. *)

val implies_atom : id:int -> Atom.t list -> Atom.t -> verdict
(** Does the conjunction imply the atom?  [True] when the box entails the
    atom (or is empty), or when every disjunct of the atom's negation is
    interval-unsatisfiable in conjunction with the atoms; [False] when some
    negated disjunct is interval-{e satisfiable} with them (an easy
    refutation). *)

val implies : id:int -> Atom.t list -> Atom.t list -> verdict
(** Conjunction-level entailment: [True] when the left box is empty or
    entails every atom on the right; never [False] (per-atom refutation is
    {!implies_atom}'s job on the fall-through path). *)

val disjoint : id1:int -> Atom.t list -> id2:int -> Atom.t list -> bool
(** [true] when the two boxes have provably empty intersection (some
    variable's intervals do not meet, or either box is empty) — then the
    conjunctions share no solutions.  [false] means "maybe compatible". *)
