(** The constraint interpretation domain in force: rationals (the paper's
    setting, the default) or integers.

    The flag follows the same two-level discipline as the simplex pivot
    budget: a process-wide default set at CLI/daemon startup, plus a
    per-domain scoped override for individual requests ({!with_domain}).
    Worker domains spawned inside a scope start from the process default,
    so fan-out sites must capture {!current} and re-enter the scope on each
    task (see [Engine.produce_round]).

    The decision procedures read the flag through {!current}; memoization
    caches salt their keys with {!tag} so a rational verdict is never
    served to an integer query or vice versa. *)

type t = Q | Z

val current : unit -> t
(** The domain in force on the calling (OCaml) domain. *)

val is_z : unit -> bool

val tag : unit -> int
(** [0] for {!Q}, [1] for {!Z} — mixed into memo-cache keys as the low bit
    ([(id lsl 1) lor tag]). *)

val set_default : t -> unit
(** Set the process-wide default (CLI/daemon startup). *)

val with_domain : t -> (unit -> 'a) -> 'a
(** [with_domain d f] runs [f] under domain [d] {e for the calling OCaml
    domain only}, restoring the previous setting afterwards (also on
    exceptions). *)

val of_string : string -> t option
(** ["rat"]/["q"] ↦ {!Q}, ["int"]/["z"] ↦ {!Z}. *)

val to_string : t -> string
