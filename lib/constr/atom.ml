open Cql_num

type op = Le | Lt | Eq

type t = { expr : Linexpr.t; op : op; id : int; hash : int }

(* hash-consing: one interned node per normalized (expr, op), so equality is
   physical and [id]s key the memoization caches in O(1) *)
module WT = Weak.Make (struct
  type nonrec t = t

  let equal a b = a.op = b.op && Linexpr.equal a.expr b.expr
  let hash a = a.hash
end)

(* The weak hashset is striped by hash so worker domains interning in
   parallel rarely contend; ids come from one atomic counter, so they stay
   globally unique and monotonic regardless of which stripe allocates. *)
let stripes = 16 (* power of two: stripe index is a mask of the hash *)
let tables = Array.init stripes (fun _ -> WT.create 256)
let locks = Array.init stripes (fun _ -> Mutex.create ())
let counter = Atomic.make 0

let struct_hash e op =
  let tag = match op with Le -> 3 | Lt -> 5 | Eq -> 7 in
  ((Linexpr.hash e * 31) + tag) land max_int

let intern e op =
  let h = struct_hash e op in
  let probe = { expr = e; op; id = -1; hash = h } in
  let i = h land (stripes - 1) in
  let m = locks.(i) in
  Mutex.lock m;
  let a =
    match WT.find_opt tables.(i) probe with
    | Some a -> a
    | None ->
        let a = { probe with id = Atomic.fetch_and_add counter 1 + 1 } in
        WT.add tables.(i) a;
        a
  in
  Mutex.unlock m;
  a

let make e op =
  let e = Linexpr.integerize e in
  match op with
  | Eq ->
      (* canonical sign for equalities: first nonzero coefficient positive *)
      let e =
        match Linexpr.terms e with
        | (_, c) :: _ when Rat.sign c < 0 -> Linexpr.neg e
        | [] when Rat.sign (Linexpr.constant e) < 0 -> Linexpr.neg e
        | _ -> e
      in
      intern e op
  | Le | Lt -> intern e op

let le e1 e2 = make (Linexpr.sub e1 e2) Le
let lt e1 e2 = make (Linexpr.sub e1 e2) Lt
let ge e1 e2 = make (Linexpr.sub e2 e1) Le
let gt e1 e2 = make (Linexpr.sub e2 e1) Lt
let eq e1 e2 = make (Linexpr.sub e1 e2) Eq

let tt = make Linexpr.zero Eq
let ff = make Linexpr.zero Lt

let truth a =
  if Linexpr.is_const a.expr then
    let c = Rat.sign (Linexpr.constant a.expr) in
    Some (match a.op with Le -> c <= 0 | Lt -> c < 0 | Eq -> c = 0)
  else None

let vars a = Linexpr.vars a.expr
let mem x a = not (Rat.is_zero (Linexpr.coeff x a.expr))

let negate a =
  match a.op with
  | Le -> [ make (Linexpr.neg a.expr) Lt ]
  | Lt -> [ make (Linexpr.neg a.expr) Le ]
  | Eq -> [ make a.expr Lt; make (Linexpr.neg a.expr) Lt ]

let eval_at env a =
  let exception Unvalued in
  try
    let v =
      List.fold_left
        (fun acc (x, c) ->
          match env x with
          | Some q -> Rat.add acc (Rat.mul c q)
          | None -> raise Unvalued)
        (Linexpr.constant a.expr) (Linexpr.terms a.expr)
    in
    Some (match a.op with Le -> Rat.sign v <= 0 | Lt -> Rat.sign v < 0 | Eq -> Rat.sign v = 0)
  with Unvalued -> None

let subst x repl a = make (Linexpr.subst x repl a.expr) a.op
let rename f a = make (Linexpr.rename f a.expr) a.op

(* structural order (op, then expression) so the canonical atom order inside
   conjunctions is independent of interning order; physically-equal atoms
   short-circuit *)
let compare a b =
  if a == b then 0
  else
    let c = Stdlib.compare a.op b.op in
    if c <> 0 then c else Linexpr.compare a.expr b.expr

let equal a b = a == b
let id a = a.id
let hash a = a.hash

let op_string = function Le -> "<=" | Lt -> "<" | Eq -> "="

(* Print with positive terms on the left where possible, e.g. "X - Y <= 4"
   rather than "X - Y - 4 <= 0": we split out the constant. *)
let pp fmt a =
  let c = Linexpr.constant a.expr in
  let lhs = Linexpr.sub a.expr (Linexpr.const c) in
  Format.fprintf fmt "%a %s %a" Linexpr.pp lhs (op_string a.op) Rat.pp (Rat.neg c)

let to_string a = Format.asprintf "%a" pp a
