type t = Conj.t list (* satisfiable disjuncts, sorted, deduped *)

let ff : t = []
let tt : t = [ Conj.tt ]

let of_disjuncts ds =
  let sat = List.filter Conj.is_sat ds in
  List.sort_uniq Conj.compare sat

let of_conj c = of_disjuncts [ c ]
let disjuncts cs = cs
let is_ff cs = cs = []
let is_tt cs = List.exists Conj.is_tt cs
let num_disjuncts = List.length
let vars cs = List.fold_left (fun acc d -> Var.Set.union acc (Conj.vars d)) Var.Set.empty cs

(* interval box-disjointness between two disjuncts; [false] = maybe
   compatible (tier off, or the boxes overlap) *)
let interval_disjoint d d' =
  !Interval.enabled
  && Interval.disjoint ~id1:(Conj.id d) (Conj.to_list d) ~id2:(Conj.id d') (Conj.to_list d')

(* prune disjuncts subsumed by another disjunct; with zero or one disjunct
   there is nothing to subsume, so skip the quadratic pass entirely *)
let prune cs =
  match cs with
  | [] | [ _ ] -> cs
  | _ ->
      let rec go acc = function
        | [] -> List.rev acc
        | d :: rest ->
            let subsumed_by d' =
              (not (Conj.equal d d'))
              &&
              (* prune's inputs are satisfiable disjuncts, so a disjoint
                 pair can never subsume: skip the implication outright *)
              if interval_disjoint d d' then begin
                Solver_stats.count_interval_disjoint_hit ();
                false
              end
              else Conj.implies d d'
            in
            if List.exists subsumed_by rest || List.exists subsumed_by acc then go acc rest
            else go (d :: acc) rest
      in
      (* dedup first so identical disjuncts don't mutually subsume *)
      go [] (List.sort_uniq Conj.compare cs)

let or_ a b = prune (of_disjuncts (a @ b))

let and_ a b =
  prune (of_disjuncts (List.concat_map (fun da -> List.map (Conj.and_ da) b) a))

let and_conj c cs = and_ (of_conj c) cs

let negate_conj d =
  (* ¬(a1 & ... & an) = ¬a1 | ... | ¬an, each ¬ai a small disjunction *)
  of_disjuncts
    (List.concat_map (fun a -> List.map Conj.singleton (Atom.negate a)) (Conj.to_list d))

let conj_implies_memo : (int * int list, bool) Memo.cache = Memo.create ~name:"cset_conj_implies"

let conj_implies d (cs : t) =
  (* d ⊨ cs  iff  d ∧ ¬E1 ∧ ... ∧ ¬Ek is unsatisfiable *)
  Solver_stats.count_cset_implies_check ();
  if List.memq d cs then true (* d is itself a disjunct *)
  else if not (Conj.is_sat d) then true
  else
    match cs with
    | [] -> false (* d is satisfiable, cs denotes the empty set *)
    | [ e ] -> Conj.implies d e
    | _ ->
        Memo.cached conj_implies_memo
          (* same low-bit domain tag as the Conj caches: the residue is
             emptiness-checked over the active domain *)
          ((Conj.id d lsl 1) lor Cdomain.tag (), List.map Conj.id cs)
          (fun () ->
            if List.for_all (interval_disjoint d) cs then begin
              (* d is satisfiable yet box-disjoint from every disjunct, so
                 some point of d escapes cs: no need to build the DNF residue
                 (the false still lands in the memo for warm repeats) *)
              Solver_stats.count_interval_disjoint_hit ();
              false
            end
            else
              let residue =
                List.fold_left
                  (fun residue e ->
                    if residue = [] then []
                    else
                      let neg = negate_conj e in
                      List.concat_map
                        (fun r -> List.filter Conj.is_sat (List.map (Conj.and_ r) neg))
                        residue)
                  [ d ] cs
              in
              residue = [])

(* interned disjuncts in canonical order: id-equal lists denote the same
   set, so physical element-wise equality is a sound fast path *)
let same_disjuncts (a : t) (b : t) =
  a == b || (try List.for_all2 (fun x y -> Conj.equal x y) a b with Invalid_argument _ -> false)

let implies c1 c2 = same_disjuncts c1 c2 || List.for_all (fun d -> conj_implies d c2) c1
let equiv a b = same_disjuncts a b || (implies a b && implies b a)

let project ~keep cs = of_disjuncts (List.map (Conj.project ~keep) cs)
let rename f cs = of_disjuncts (List.map (Conj.rename f) cs)
let simplify cs = prune (of_disjuncts (List.map Conj.simplify cs))

let disjointify cs =
  (* fold disjuncts in, splitting each new one against everything kept so
     far: pieces of d disjoint from all previous disjuncts *)
  let split_against piece prev =
    (* piece ∧ ¬prev as a list of satisfiable conjunctions *)
    List.filter Conj.is_sat (List.map (Conj.and_ piece) (negate_conj prev))
  in
  List.fold_left
    (fun acc d ->
      let pieces =
        List.fold_left
          (fun pieces prev -> List.concat_map (fun p -> split_against p prev) pieces)
          [ d ] acc
      in
      acc @ List.map Conj.simplify pieces)
    [] cs
  |> of_disjuncts

let weaken_to_one cs =
  match cs with
  | [] -> Conj.ff
  | first :: rest ->
      (* candidate atoms: those of the first disjunct; keep the ones every
         other disjunct implies *)
      let shared =
        List.filter
          (fun a -> List.for_all (fun d -> Conj.implies_atom d a) rest)
          (Conj.to_list first)
      in
      Conj.simplify (Conj.of_list shared)

let compare = List.compare Conj.compare
let equal a b = compare a b = 0

let pp fmt cs =
  match cs with
  | [] -> Format.pp_print_string fmt "false"
  | ds ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "  |  ")
        (fun fmt d -> Format.fprintf fmt "(%a)" Conj.pp d)
        fmt ds

let to_string cs = Format.asprintf "%a" pp cs
