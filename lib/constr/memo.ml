(* Global registry of the decision-procedure result caches.

   Each cache is keyed by hash-cons ids (never by the terms themselves), so
   caches do not retain constraint terms and a cleared or collected term can
   never alias a live entry: ids are allocated from a monotonic counter and
   never reused.

   Storage is per-domain ([Domain.DLS]): every domain lazily materializes
   its own Hashtbl for each cache, so lookups and insertions during a
   parallel evaluation round need no locking and never observe a torn
   table.  [clear_all] bumps a per-cache epoch; a domain whose local table
   is from an older epoch drops it on its next access.  Hit/miss counters
   are [Atomic.t] and therefore aggregate exactly across domains, while
   [entries] in {!stats} reports the calling domain's table only. *)

let enabled = ref true
let max_entries = ref 65_536

type entry = {
  name : string;
  clear : unit -> unit;
  size : unit -> int;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

type ('k, 'v) cache = {
  e : entry;
  epoch : int Atomic.t;
  slot : (int ref * ('k, 'v) Hashtbl.t) Domain.DLS.key;
}

let tables : entry list ref = ref []

(* Fetch the calling domain's table, dropping it first if a [clear_all]
   has bumped the epoch since this domain last looked. *)
let local_table c =
  let seen, tbl = Domain.DLS.get c.slot in
  let now = Atomic.get c.epoch in
  if !seen <> now then begin
    Hashtbl.reset tbl;
    seen := now
  end;
  tbl

let create ~name =
  let epoch = Atomic.make 0 in
  let slot = Domain.DLS.new_key (fun () -> (ref (Atomic.get epoch), Hashtbl.create 1024)) in
  let rec c = { e; epoch; slot }
  and e =
    {
      name;
      (* bumping the epoch invalidates every domain's table lazily; resetting
         the caller's own table eagerly keeps [stats] coherent right after a
         clear *)
      clear =
        (fun () ->
          Atomic.incr epoch;
          ignore (local_table c));
      size = (fun () -> Hashtbl.length (local_table c));
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }
  in
  tables := e :: !tables;
  c

let cached c key compute =
  if not !enabled then compute ()
  else
    let tbl = local_table c in
    match Hashtbl.find_opt tbl key with
    | Some v ->
        Atomic.incr c.e.hits;
        v
    | None ->
        Atomic.incr c.e.misses;
        let v = compute () in
        (* bounded: a full cache is dropped wholesale rather than evicted
           entry-by-entry — the workloads are fixpoints that re-ask the same
           questions, so a periodic cold restart costs little *)
        if Hashtbl.length tbl >= !max_entries then Hashtbl.reset tbl;
        Hashtbl.add tbl key v;
        v

type table_stats = { name : string; hits : int; misses : int; entries : int }

let stats () =
  List.rev_map
    (fun (e : entry) ->
      { name = e.name; hits = Atomic.get e.hits; misses = Atomic.get e.misses; entries = e.size () })
    !tables

let hit_rate (s : table_stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear_all () = List.iter (fun (e : entry) -> e.clear ()) !tables

let reset_stats () =
  List.iter
    (fun (e : entry) ->
      Atomic.set e.hits 0;
      Atomic.set e.misses 0)
    !tables

let with_caches on f =
  let prev = !enabled in
  clear_all ();
  enabled := on;
  Fun.protect
    ~finally:(fun () ->
      enabled := prev;
      clear_all ())
    f
