(* Global registry of the decision-procedure result caches.

   Each cache is a plain Hashtbl keyed by hash-cons ids (never by the terms
   themselves), so caches do not retain constraint terms and a cleared or
   collected term can never alias a live entry: ids are allocated from a
   monotonic counter and never reused. *)

let enabled = ref true
let max_entries = ref 65_536

type table = {
  name : string;
  clear : unit -> unit;
  size : unit -> int;
  mutable hits : int;
  mutable misses : int;
}

let tables : table list ref = ref []

let register ~name ~clear ~size =
  let t = { name; clear; size; hits = 0; misses = 0 } in
  tables := t :: !tables;
  t

let hit t = t.hits <- t.hits + 1
let miss t = t.misses <- t.misses + 1

type table_stats = { name : string; hits : int; misses : int; entries : int }

let stats () =
  List.rev_map
    (fun (t : table) -> { name = t.name; hits = t.hits; misses = t.misses; entries = t.size () })
    !tables

let clear_all () = List.iter (fun t -> t.clear ()) !tables

let reset_stats () =
  List.iter
    (fun (t : table) ->
      t.hits <- 0;
      t.misses <- 0)
    !tables

let cached t tbl key compute =
  if not !enabled then compute ()
  else
    match Hashtbl.find_opt tbl key with
    | Some v ->
        hit t;
        v
    | None ->
        miss t;
        let v = compute () in
        (* bounded: a full cache is dropped wholesale rather than evicted
           entry-by-entry — the workloads are fixpoints that re-ask the same
           questions, so a periodic cold restart costs little *)
        if Hashtbl.length tbl >= !max_entries then Hashtbl.reset tbl;
        Hashtbl.add tbl key v;
        v

let with_caches on f =
  let prev = !enabled in
  clear_all ();
  enabled := on;
  Fun.protect
    ~finally:(fun () ->
      enabled := prev;
      clear_all ())
    f
