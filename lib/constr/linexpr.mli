(** Linear expressions [a1·X1 + … + an·Xn + c] with exact rational
    coefficients.

    The representation keeps no zero coefficients, so two expressions are
    numerically equal iff {!compare} returns [0]. *)

open Cql_num

type t

(** {1 Construction} *)

val zero : t
val const : Rat.t -> t
val of_int : int -> t
val var : Var.t -> t

val term : Rat.t -> Var.t -> t
(** [term a x] is the monomial [a·x]. *)

val of_terms : (Rat.t * Var.t) list -> Rat.t -> t
(** [of_terms [(a1,x1);…] c] builds [a1·x1 + … + c], merging duplicates. *)

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t

(** {1 Accessors} *)

val coeff : Var.t -> t -> Rat.t
(** Zero when the variable does not occur. *)

val constant : t -> Rat.t
val vars : t -> Var.Set.t
val is_const : t -> bool

val terms : t -> (Var.t * Rat.t) list
(** Variable/coefficient pairs in increasing variable order. *)

(** {1 Substitution} *)

val subst : Var.t -> t -> t -> t
(** [subst x e t] replaces [x] by the expression [e] in [t]. *)

val rename : (Var.t -> Var.t) -> t -> t
(** Apply a variable renaming.  The renaming must be injective on the
    variables of the expression or coefficients will merge. *)

(** {1 Normalization helpers} *)

val integerize : t -> t
(** Scale by a positive rational so all coefficients and the constant are
    coprime integers (the canonical representative of the positive ray of the
    expression).  Zero maps to zero. *)

(** {1 Comparison and printing} *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, consistent with {!equal} (used by the {!Atom} interning
    table). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
