(** Exact satisfiability of linear constraint conjunctions over the
    integers.

    The rational procedures ({!Simplex}, the Fourier–Motzkin eliminator in
    {!Conj}) are sound but incomplete over ℤ: [2·X = 2·Y + 1] is
    rationally satisfiable but has no integer solution.  This module
    decides the integer question exactly, in three layers:

    {ol
    {- {b Tightening} ({!tighten_atom}): strict bounds close
       ([e < 0] ↦ [e + 1 ≤ 0]), inequality constants round through the
       coefficient gcd ([a·x ≤ b] ↦ [x ≤ ⌊b/a⌋]), and equalities whose
       coefficient gcd does not divide the constant refute outright.
       Tightening is an equivalence over ℤ, so it runs in front of every
       other procedure (including the interval tier).}
    {- {b Omega-test elimination}: equalities are eliminated by exact
       substitution (unit coefficient) or Pugh's symmetric-modulus rewrite;
       inequalities by dark-shadow projection with splinter equalities when
       the dark shadow refutes.  Exact, but the splinter fan-out is bounded
       by an elimination budget.}
    {- {b Branch-and-bound} over {!Simplex.solve} as the completeness
       fallback when the budget runs out: variables are clamped to the
       von zur Gathen–Sieveking solution bound, so branching on fractional
       relaxation values (or bisecting on a pivot-limit bail) always
       terminates.}}

    Callers normally go through {!Conj.is_sat} with {!Cdomain} set to [Z];
    the direct entry points exist for the property tests and the fuzz
    harness's omega-vs-branch-and-bound cross-check. *)

val tighten_atom : Atom.t -> Atom.t
(** The strongest atom with the same integer solutions derivable per-atom
    (see above).  Idempotent; returns the argument physically unchanged
    when nothing tightens.  Ground atoms are returned as-is (their truth
    does not depend on the domain). *)

val is_sat : Atom.t list -> bool
(** Exact integer satisfiability of the conjunction: Omega-test
    elimination, falling back to branch-and-bound when the elimination
    budget is exhausted. *)

val is_sat_bb : Atom.t list -> bool
(** Branch-and-bound only (no Omega elimination) — kept as an independent
    second implementation so the fuzz harness can cross-check the two. *)

val floor_rat : Cql_num.Rat.t -> Cql_num.Bigint.t
val ceil_rat : Cql_num.Rat.t -> Cql_num.Bigint.t

val default_budget : int
(** Omega eliminations + splinter branches allowed per {!is_sat} query
    before handing over to branch-and-bound. *)
