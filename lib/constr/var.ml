type t = { id : int; name : string; argi : int (* i for the canonical $i, else 0 *) }

(* the argument index is decided by the name, so it is parsed once at
   construction: [arg_index] sits on per-candidate paths of the evaluator
   (fact pinning, subsumption environments) where re-parsing the name
   string each call shows up in profiles *)
let argi_of_name n =
  if String.length n >= 2 && n.[0] = '$' then
    match int_of_string_opt (String.sub n 1 (String.length n - 1)) with
    | Some i when i >= 1 -> i
    | _ -> 0
  else 0

let table : (string, t) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let counter = Atomic.make 0

(* Interning is mutexed (named variables are rare and mostly created at
   parse time on the main domain); the counter is atomic because [fresh]
   is on the hot path of every worker domain during parallel evaluation. *)
let mk name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None ->
        let v = { id = Atomic.fetch_and_add counter 1 + 1; name; argi = argi_of_name name } in
        Hashtbl.add table name v;
        v
  in
  Mutex.unlock lock;
  v

(* Fresh variables are NOT interned: the evaluation engine creates them per
   candidate derivation, and interning would retain them all in [table] for
   the life of the process.  The counter keeps their names unique among
   fresh variables; primes keep the names parseable by the CQL lexer. *)
let fresh base =
  let id = Atomic.fetch_and_add counter 1 + 1 in
  let name = Printf.sprintf "%s'%d" base id in
  { id; name; argi = argi_of_name name }

(* [$1]..[$32] cover every predicate arity in practice; resolving them once
   skips the sprintf + mutex + hashtable round-trip of [mk] on the head-
   construction path of every derivation *)
let arg_cache = Array.init 32 (fun i -> mk (Printf.sprintf "$%d" (i + 1)))

let arg i =
  if i < 1 then invalid_arg "Var.arg: positions are 1-based";
  if i <= 32 then arg_cache.(i - 1) else mk (Printf.sprintf "$%d" i)

let arg_index v = if v.argi >= 1 then Some v.argi else None

let name v = v.name
let id v = v.id
let compare a b = Stdlib.compare a.id b.id
let equal a b = a.id = b.id
let hash v = v.id
let pp fmt v = Format.pp_print_string fmt v.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
