(** Structured tracing and metrics for the rewrite/evaluation pipeline.

    Spans measure phases on the monotonic clock and nest per domain; atomic
    counters unify the solver statistics with the trace (every event carries
    the counter deltas over its extent); events export as NDJSON, one JSON
    object per line.

    The disabled path — the default unless [set_enabled true] ran or the
    [CQLOPT_TRACE] environment variable is set to a non-empty value other
    than [0]/[false] — costs a single [Atomic.get] per entry point and
    allocates nothing, so instrumentation can stay on the hot pipeline
    permanently. *)

val monotonic_ns : unit -> int64
(** Nanoseconds on the monotonic clock (arbitrary epoch; differences are
    meaningful, absolute values are not). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Counters}

    Registered process-wide by name; [counter] returns the existing cell
    when the name is already taken, so libraries can share counters without
    coordinating.  All operations are atomic and domain-safe. *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : counter -> int -> unit

val counters : unit -> (string * int) list
(** Current value of every registered counter, sorted by name. *)

(** {1 Spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracing is enabled, records an event
    with [f]'s wall-clock extent, the calling domain's innermost open span
    as parent, any fields attached while the span was open, and the delta
    of every registered counter over the extent.  The event is recorded
    even when [f] raises (and the exception is re-raised).  When tracing is
    disabled this is [f ()] after one atomic load. *)

val add_field : string -> int -> unit
(** Attach an integer field to the calling domain's innermost open span;
    no-op when tracing is disabled or no span is open. *)

val add_field_str : string -> string -> unit

(** {1 Events} *)

type field = Int of int | Str of string

type event = {
  id : int;  (** unique, monotonic across the process *)
  parent : int;  (** enclosing span's id; [0] for a root span *)
  name : string;
  domain : int;  (** domain the span ran on *)
  start_ns : int64;
  dur_ns : int64;
  fields : (string * field) list;  (** in attachment order *)
  counter_deltas : (string * int) list;  (** nonzero counter deltas *)
}

val events : unit -> event list
(** Completed events in completion order. *)

val reset : unit -> unit
(** Drop all recorded events (counters keep their values). *)

val dropped_events : unit -> int
(** Events discarded because the buffer hit the backstop size. *)

val event_to_json : event -> string
(** One JSON object, no trailing newline. *)

val write_ndjson : out_channel -> unit
(** Every recorded event as NDJSON: one [event_to_json] line per event. *)

(** {1 Summary} *)

type summary_row = {
  sr_name : string;
  sr_count : int;
  sr_total_ns : int64;
  sr_max_ns : int64;
}

val summary : unit -> summary_row list
(** Events aggregated by span name, heaviest total first. *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable table of {!summary} plus all nonzero counters. *)
