/* Monotonic clock for the tracing subsystem.
 *
 * CLOCK_MONOTONIC never jumps backwards under NTP slews or wall-clock
 * adjustments, which is what span durations need; the OCaml stdlib only
 * exposes wall time (Unix.gettimeofday) and CPU time (Sys.time), so this
 * one-function stub keeps lib/obs dependency-free. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value caml_obs_monotonic_ns(value unit)
{
    LARGE_INTEGER freq, now;
    QueryPerformanceFrequency(&freq);
    QueryPerformanceCounter(&now);
    return caml_copy_int64(
        (int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>

CAMLprim value caml_obs_monotonic_ns(value unit)
{
    struct timespec ts;
#if defined(CLOCK_MONOTONIC)
    clock_gettime(CLOCK_MONOTONIC, &ts);
#else
    clock_gettime(CLOCK_REALTIME, &ts);
#endif
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 +
                           (int64_t)ts.tv_nsec);
}

#endif
