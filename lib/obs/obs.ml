(* Structured tracing and metrics.

   Design constraints (see DESIGN.md §11):

   - Dependency-free: the only native code is a one-function monotonic-clock
     stub; no opam packages.
   - Disabled is free: every entry point first reads one [Atomic.t] flag and
     returns to the caller's code without allocating.  Tracing is off unless
     [set_enabled true] ran (the [CQLOPT_TRACE] environment variable arms it
     at startup), so the jobs>1 evaluation hot path is unaffected.
   - Domain-safe: span stacks live in [Domain.DLS], so nesting is tracked
     per domain; completed events are appended to one global buffer under a
     mutex (spans close at phase granularity, never per derivation, so the
     lock is uncontended in practice); counters are [Atomic.t].

   A span event records its id, its parent's id (per-domain nesting), the
   monotonic start and duration in nanoseconds, the domain it ran on, any
   integer/string fields attached with [add_field] while it was open, and
   the delta of every registered counter over its extent.  Counter deltas
   are observational: with jobs>1 the work of worker domains is attributed
   to whichever spans are open while they run. *)

external monotonic_ns : unit -> int64 = "caml_obs_monotonic_ns"

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* ----- counters ----- *)

type counter = { c_name : string; cell : int Atomic.t }

let registry_mu = Mutex.create ()
let registry : counter list ref = ref []

let counter name =
  Mutex.lock registry_mu;
  let c =
    match List.find_opt (fun c -> c.c_name = name) !registry with
    | Some c -> c
    | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        registry := c :: !registry;
        c
  in
  Mutex.unlock registry_mu;
  c

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell
let set c n = Atomic.set c.cell n

let counters () =
  List.sort compare (List.map (fun c -> (c.c_name, Atomic.get c.cell)) !registry)

(* ----- spans and events ----- *)

type field = Int of int | Str of string

type event = {
  id : int;
  parent : int; (* 0 = no parent (root span of its domain) *)
  name : string;
  domain : int;
  start_ns : int64;
  dur_ns : int64;
  fields : (string * field) list;
  counter_deltas : (string * int) list; (* nonzero deltas over the span *)
}

type open_span = {
  os_id : int;
  os_name : string;
  os_parent : int;
  os_start : int64;
  mutable os_fields : (string * field) list; (* newest first *)
  os_csnap : (counter * int) list;
}

let span_ids = Atomic.make 0
let stack_key : open_span list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let events_mu = Mutex.create ()
let events_rev : event list ref = ref []
let n_events = ref 0

(* backstop so an unboundedly long traced run cannot grow without limit;
   dropped events are counted and reported in the summary *)
let max_events = ref 1_000_000
let dropped = Atomic.make 0

let record ev =
  Mutex.lock events_mu;
  if !n_events < !max_events then begin
    events_rev := ev :: !events_rev;
    Stdlib.incr n_events
  end
  else Atomic.incr dropped;
  Mutex.unlock events_mu

let reset () =
  Mutex.lock events_mu;
  events_rev := [];
  n_events := 0;
  Mutex.unlock events_mu;
  Atomic.set dropped 0

let events () =
  Mutex.lock events_mu;
  let evs = List.rev !events_rev in
  Mutex.unlock events_mu;
  evs

let dropped_events () = Atomic.get dropped

let add_field name v =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | os :: _ -> os.os_fields <- (name, Int v) :: os.os_fields

let add_field_str name v =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | os :: _ -> os.os_fields <- (name, Str v) :: os.os_fields

let span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> 0 | os :: _ -> os.os_id in
    let csnap = List.map (fun c -> (c, Atomic.get c.cell)) !registry in
    let os =
      {
        os_id = Atomic.fetch_and_add span_ids 1 + 1;
        os_name = name;
        os_parent = parent;
        os_start = monotonic_ns ();
        os_fields = [];
        os_csnap = csnap;
      }
    in
    stack := os :: !stack;
    let finish () =
      let stop = monotonic_ns () in
      stack := List.filter (fun o -> o != os) !stack;
      let deltas =
        List.filter_map
          (fun (c, v0) ->
            let d = Atomic.get c.cell - v0 in
            if d = 0 then None else Some (c.c_name, d))
          os.os_csnap
      in
      record
        {
          id = os.os_id;
          parent = os.os_parent;
          name = os.os_name;
          domain = (Domain.self () :> int);
          start_ns = os.os_start;
          dur_ns = Int64.sub stop os.os_start;
          fields = List.rev os.os_fields;
          counter_deltas = deltas;
        }
    in
    Fun.protect ~finally:finish f
  end

(* ----- NDJSON export ----- *)

let escape b s =
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let event_to_json (ev : event) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"name\":\"";
  escape b ev.name;
  Buffer.add_string b "\",\"id\":";
  Buffer.add_string b (string_of_int ev.id);
  Buffer.add_string b ",\"parent\":";
  Buffer.add_string b (if ev.parent = 0 then "null" else string_of_int ev.parent);
  Buffer.add_string b ",\"domain\":";
  Buffer.add_string b (string_of_int ev.domain);
  Printf.bprintf b ",\"start_ns\":%Ld,\"dur_ns\":%Ld" ev.start_ns ev.dur_ns;
  Buffer.add_string b ",\"fields\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\":";
      match v with
      | Int n -> Buffer.add_string b (string_of_int n)
      | Str s ->
          Buffer.add_char b '"';
          escape b s;
          Buffer.add_char b '"')
    ev.fields;
  Buffer.add_string b "},\"counters\":{";
  List.iteri
    (fun i (k, d) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      escape b k;
      Buffer.add_string b "\":";
      Buffer.add_string b (string_of_int d))
    ev.counter_deltas;
  Buffer.add_string b "}}";
  Buffer.contents b

let write_ndjson oc =
  List.iter
    (fun ev ->
      output_string oc (event_to_json ev);
      output_char oc '\n')
    (events ())

(* ----- summary ----- *)

type summary_row = {
  sr_name : string;
  sr_count : int;
  sr_total_ns : int64;
  sr_max_ns : int64;
}

let summary () =
  let tbl : (string, summary_row ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun ev ->
      match Hashtbl.find_opt tbl ev.name with
      | Some r ->
          r :=
            {
              !r with
              sr_count = !r.sr_count + 1;
              sr_total_ns = Int64.add !r.sr_total_ns ev.dur_ns;
              sr_max_ns = (if ev.dur_ns > !r.sr_max_ns then ev.dur_ns else !r.sr_max_ns);
            }
      | None ->
          Hashtbl.add tbl ev.name
            (ref { sr_name = ev.name; sr_count = 1; sr_total_ns = ev.dur_ns; sr_max_ns = ev.dur_ns });
          order := ev.name :: !order)
    (events ());
  List.sort
    (fun a b -> Int64.compare b.sr_total_ns a.sr_total_ns)
    (List.rev_map (fun name -> !(Hashtbl.find tbl name)) !order)

let ms ns = Int64.to_float ns /. 1e6

let pp_summary fmt () =
  let rows = summary () in
  if rows = [] then Format.fprintf fmt "obs: no spans recorded (tracing off?)@\n"
  else begin
    Format.fprintf fmt "obs: %-32s %8s %12s %12s %12s@\n" "span" "count" "total ms" "mean us"
      "max us";
    List.iter
      (fun r ->
        Format.fprintf fmt "obs: %-32s %8d %12.3f %12.1f %12.1f@\n" r.sr_name r.sr_count
          (ms r.sr_total_ns)
          (Int64.to_float r.sr_total_ns /. 1e3 /. float_of_int r.sr_count)
          (Int64.to_float r.sr_max_ns /. 1e3))
      rows;
    let d = dropped_events () in
    if d > 0 then Format.fprintf fmt "obs: %d events dropped (max_events backstop)@\n" d
  end;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  if cs <> [] then begin
    Format.fprintf fmt "obs: counters:@\n";
    List.iter (fun (name, v) -> Format.fprintf fmt "obs:   %-34s %d@\n" name v) cs
  end

(* Arm tracing from the environment so `CQLOPT_TRACE=1 dune runtest` (the CI
   tracing pass) exercises the instrumented paths without code changes. *)
let () =
  match Sys.getenv_opt "CQLOPT_TRACE" with
  | Some ("" | "0" | "false") | None -> ()
  | Some _ -> set_enabled true
