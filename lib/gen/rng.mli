(** A small deterministic PRNG (splitmix64) for the fuzzing subsystem.

    The generator must be reproducible across runs and OCaml versions —
    [cqlopt fuzz --seed 42] has to generate the same programs everywhere,
    and a counterexample's seed must replay — so we do not use [Random]
    (whose algorithm changed between OCaml releases) but our own splitmix64
    stream. *)

type t

val create : int -> t
(** A fresh stream seeded with the given integer. *)

val split : t -> t
(** An independent stream derived from the current state (advances the
    parent).  Used to give each generated test case its own substream so
    shrinking or skipping one case does not perturb the next. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on an empty list. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** Pick with integer weights (all weights positive). *)
