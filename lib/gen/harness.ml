open Cql_num
open Cql_constr
open Cql_datalog
open Cql_eval
module F = Fact
module Rw = Cql_core.Rewrite
module Qrp = Cql_core.Qrp
module Foldunfold = Cql_core.Foldunfold
module Pred_constraints = Cql_core.Pred_constraints
module Decidable = Cql_core.Decidable
module Adorn = Cql_core.Adorn
module Gmt = Cql_core.Gmt

type oracle =
  | Answers
  | Indexing
  | Solver
  | Monotone
  | Bound
  | Cache
  | Parallel
  | Update
  | Tier
  | Compiled
  | Relaxation

let oracle_name = function
  | Answers -> "answers"
  | Indexing -> "indexing"
  | Solver -> "solver"
  | Monotone -> "monotone"
  | Bound -> "bound"
  | Cache -> "cache"
  | Parallel -> "parallel"
  | Update -> "update"
  | Tier -> "interval"
  | Compiled -> "compiled"
  | Relaxation -> "relaxation"

let oracle_of_name = function
  | "answers" -> Answers
  | "indexing" -> Indexing
  | "solver" -> Solver
  | "monotone" -> Monotone
  | "bound" -> Bound
  | "cache" -> Cache
  | "parallel" -> Parallel
  | "update" -> Update
  | "interval" -> Tier
  | "compiled" -> Compiled
  | "relaxation" -> Relaxation
  | s -> invalid_arg ("Harness.oracle_of_name: " ^ s)

type update_op = Insert of F.t | Retract of F.t

let update_op_to_string = function
  | Insert f -> "+ " ^ F.to_string f
  | Retract f -> "- " ^ F.to_string f

type failure = {
  oracle : oracle;
  pipeline : string;
  detail : string;
  program : Program.t;
  edb : F.t list;
  updates : update_op list; (* empty except for the update oracle *)
}

type stats = {
  mutable cases : int;
  mutable evaluated : int;
  mutable checks : int;
  mutable rewrites_skipped : int;
  mutable runs_truncated : int;
  mutable facts_derived : int;
  mutable gen_retries : int;
}

let new_stats () =
  {
    cases = 0;
    evaluated = 0;
    checks = 0;
    rewrites_skipped = 0;
    runs_truncated = 0;
    facts_derived = 0;
    gen_retries = 0;
  }

(* ----- fact-set comparison ----- *)

(* rewriting renames predicates (p', p_ff, …), so facts are compared under a
   neutral predicate name *)
let neutral f = F.make "x" f.F.args (F.cstr f)

let covered fs f = List.exists (fun g -> F.subsumes (neutral g) (neutral f)) fs

let first_uncovered fs gs = List.find_opt (fun f -> not (covered gs f)) fs

(* map a rewritten predicate name back to the original predicate it refines:
   strip adornments ([p_bf]), primes ([p']), and reject magic ([m_p]) and
   supplementary ([s_k_p]) predicates, which denote new relations *)
let rec root_name orig name =
  if List.mem name orig then Some name
  else if String.length name > 2 && String.sub name 0 2 = "m_" then None
  else if String.length name > 2 && String.sub name 0 2 = "s_" then None
  else
    match Adorn.split_adorned name with
    | Some (base, _) when base <> name -> root_name orig base
    | _ ->
        let n = String.length name in
        if n > 1 && name.[n - 1] = '\'' then root_name orig (String.sub name 0 (n - 1))
        else None

(* ----- the independent satisfiability pair (oracle 3) ----- *)

(* Fourier-Motzkin satisfiability: eliminate every variable; the projection
   onto no variables is tt iff the conjunction is satisfiable *)
let fm_sat c = Conj.is_tt (Conj.project ~keep:Var.Set.empty c)

let simplex_sat c = Simplex.is_sat (Conj.to_list c)

(* ----- the memoization differential (oracle 6) ----- *)

(* Run the heaviest rewrite (the pred/qrp constraint_rewrite fixpoint) and an
   evaluation of its output twice — decision-procedure caches enabled and
   disabled, each from a fresh cache state — and require a bit-identical
   rewritten program and identical answers.  Memoization may only ever
   change speed, never a result. *)
let check_cache_differential ~max_iterations ~max_derivations ~max_iters st p edb =
  let run_with on =
    Memo.with_caches on (fun () ->
        match Rw.constraint_rewrite ~max_iters p with
        | exception (Invalid_argument _ | Failure _) -> None
        | p', _ ->
            let res = Engine.run ~max_iterations ~max_derivations p' ~edb in
            Some
              ( p',
                List.sort F.compare (Engine.answers res p'),
                (Engine.stats res).Engine.reached_fixpoint ))
  in
  match (run_with true, run_with false) with
  | None, None -> None
  | Some (p1, a1, f1), Some (p2, a2, f2) ->
      (* modulo renaming: the rewrite draws fresh variables from a global
         counter, so the two runs produce alpha-equivalent programs *)
      if not (Program.equal_mod_renaming p1 p2) then
        Some
          (Printf.sprintf
             "constraint_rewrite output differs with caches on vs off:\n--- on ---\n%s\n--- off ---\n%s"
             (Program.to_string p1) (Program.to_string p2))
      else if f1 <> f2 || not (List.equal F.equal a1 a2) then
        Some "evaluation answers differ with caches on vs off"
      else begin
        st.checks <- st.checks + 1;
        None
      end
  | _ -> Some "constraint_rewrite applicability differs with caches on vs off"

(* ----- the parallel differential (oracle 7) ----- *)

(* Run the heaviest rewrite and an evaluation of its output with [jobs=1]
   (the exact sequential path) and [jobs=4] (domain-pool fan-out), each from
   a fresh cache state, and require alpha-equivalent rewritten programs,
   identical sorted answers, identical derivation counts and identical
   fixpoint status.  Parallelism may only ever change speed, never a
   result. *)
let check_parallel_differential ~max_iterations ~max_derivations ~max_iters st p edb =
  let run_with jobs =
    Memo.clear_all ();
    match Rw.constraint_rewrite ~max_iters p with
    | exception (Invalid_argument _ | Failure _) -> None
    | p', _ ->
        let res = Engine.run ~jobs ~max_iterations ~max_derivations p' ~edb in
        Some
          ( p',
            List.sort F.compare (Engine.answers res p'),
            (Engine.stats res).Engine.derivations,
            (Engine.stats res).Engine.reached_fixpoint )
  in
  match (run_with 1, run_with 4) with
  | None, None -> None
  | Some (p1, a1, d1, f1), Some (p4, a4, d4, f4) ->
      if not (Program.equal_mod_renaming p1 p4) then
        Some "constraint_rewrite output differs between jobs=1 and jobs=4"
      else if d1 <> d4 then
        Some (Printf.sprintf "derivation counts differ (jobs=1: %d, jobs=4: %d)" d1 d4)
      else if f1 <> f4 || not (List.equal F.equal a1 a4) then
        Some "evaluation answers differ between jobs=1 and jobs=4"
      else begin
        st.checks <- st.checks + 1;
        None
      end
  | _ -> Some "constraint_rewrite applicability differs between jobs=1 and jobs=4"

(* ----- the interval-tier differential (oracle 9) ----- *)

(* Run the heaviest rewrite and an evaluation of its output with the
   interval fast tier enabled and disabled, each from a fresh cache state,
   and require an alpha-equivalent rewritten program, identical sorted
   answers and identical fixpoint status.  The abstract tier may only ever
   change which procedure answers a query, never the answer. *)
let check_interval_differential ~max_iterations ~max_derivations ~max_iters st p edb =
  let run_with on =
    Interval.with_tier on (fun () ->
        Memo.clear_all ();
        match Rw.constraint_rewrite ~max_iters p with
        | exception (Invalid_argument _ | Failure _) -> None
        | p', _ ->
            let res = Engine.run ~max_iterations ~max_derivations p' ~edb in
            Some
              ( p',
                List.sort F.compare (Engine.answers res p'),
                (Engine.stats res).Engine.reached_fixpoint ))
  in
  match (run_with true, run_with false) with
  | None, None -> None
  | Some (p1, a1, f1), Some (p2, a2, f2) ->
      if not (Program.equal_mod_renaming p1 p2) then
        Some
          (Printf.sprintf
             "constraint_rewrite output differs with the interval tier on vs off:\n\
              --- on ---\n\
              %s\n\
              --- off ---\n\
              %s"
             (Program.to_string p1) (Program.to_string p2))
      else if f1 <> f2 || not (List.equal F.equal a1 a2) then
        Some "evaluation answers differ with the interval tier on vs off"
      else begin
        st.checks <- st.checks + 1;
        None
      end
  | _ -> Some "constraint_rewrite applicability differs with the interval tier on vs off"

(* ----- the compiled-execution differential (oracle 10) ----- *)

(* Run the heaviest rewrite and an evaluation of its output with join-plan
   compilation enabled (register-frame programs) and disabled (the
   tuple-at-a-time substitution interpreter), each from a fresh cache state,
   and require an alpha-equivalent rewritten program, identical sorted
   answers, identical derivation counts and identical fixpoint status.
   Compilation may only ever change how a join executes, never what it
   derives. *)
let check_compiled_differential ~max_iterations ~max_derivations ~max_iters st p edb =
  let run_with on =
    Compile.with_compile on (fun () ->
        Memo.clear_all ();
        match Rw.constraint_rewrite ~max_iters p with
        | exception (Invalid_argument _ | Failure _) -> None
        | p', _ ->
            let res = Engine.run ~max_iterations ~max_derivations p' ~edb in
            Some
              ( p',
                List.sort F.compare (Engine.answers res p'),
                (Engine.stats res).Engine.derivations,
                (Engine.stats res).Engine.reached_fixpoint ))
  in
  match (run_with true, run_with false) with
  | None, None -> None
  | Some (p1, a1, d1, f1), Some (p2, a2, d2, f2) ->
      if not (Program.equal_mod_renaming p1 p2) then
        Some "constraint_rewrite output differs with compilation on vs off"
      else if d1 <> d2 then
        Some
          (Printf.sprintf "derivation counts differ (compiled: %d, interpreted: %d)" d1 d2)
      else if f1 <> f2 || not (List.equal F.equal a1 a2) then
        Some "evaluation answers differ between compiled and interpreted execution"
      else begin
        st.checks <- st.checks + 1;
        None
      end
  | _ -> Some "constraint_rewrite applicability differs with compilation on vs off"

(* ----- pipelines ----- *)

let pipelines ~max_iters ?tamper (p : Program.t) =
  match p.Program.query with
  | None -> []
  | Some q ->
      let ad = String.make (Program.arity p q) 'f' in
      let mg = Rw.Magic { adornment = ad; constraint_magic = true } in
      let plain_mg = Rw.Magic { adornment = ad; constraint_magic = false } in
      let seq steps p = fst (Rw.sequence ~max_iters steps p) in
      let base =
        [
          ("pred", seq [ Rw.Pred ]);
          ("qrp", seq [ Rw.Qrp ]);
          ("pred,qrp", seq [ Rw.Pred; Rw.Qrp ]);
          ("qrp,pred", seq [ Rw.Qrp; Rw.Pred ]);
          ("constraint_rewrite", fun p -> fst (Rw.constraint_rewrite ~max_iters p));
          ("mg", seq [ mg ]);
          ("mg-plain", seq [ plain_mg ]);
          ("mg-complete", seq [ Rw.Magic_complete ]);
          ("pred,qrp,mg", seq [ Rw.Pred; Rw.Qrp; mg ]);
          ("mg,qrp", seq [ mg; Rw.Qrp ]);
          ("optimal", fun p -> fst (Rw.optimal ~max_iters ~adornment:ad p));
          ("gmt", fun p -> Gmt.pipeline ~query_adornment:ad p);
        ]
      in
      (* The injected bug: a QRP propagation whose definition rules are
         built from a transformed (e.g. unsoundly tightened) constraint set
         while folding still trusts the original — what a broken
         Cset.disjointify / weaken_to_one inside constraint bounding would
         produce.  (Tampering the result fed to Qrp.propagate itself is not
         enough: propagate uses one cset consistently for both priming and
         the fold check, so a tightened cset just folds fewer call sites and
         stays sound.) *)
      let tampered t p =
        let p1, _ = Pred_constraints.gen_prop ~max_iters p in
        let res = Qrp.gen ~max_iters p1 in
        let query = p1.Program.query in
        let to_prime =
          List.filter
            (fun (pred, cs) ->
              Some pred <> query && (not (Cset.is_tt cs)) && not (Cset.is_ff cs))
            res.Qrp.constraints
        in
        let primed_rules =
          List.concat_map
            (fun (pred, cs) ->
              let primed = Qrp.primed_name ~suffix:"'" pred in
              let arity = Program.arity p1 pred in
              let defs = Foldunfold.definition ~primed ~orig:pred ~arity (t cs) in
              let orig_rules = Program.rules_defining p1 pred in
              List.concat_map
                (fun (def : Rule.t) ->
                  Foldunfold.unfold_literal ~defs:orig_rules def (List.hd def.Rule.body))
                defs)
            to_prime
        in
        let fold_all r =
          List.fold_left
            (fun r (pred, cs) ->
              let primed = Qrp.primed_name ~suffix:"'" pred in
              match Foldunfold.fold_occurrences ~primed ~orig:pred cs r with
              | Some r' -> r'
              | None -> r)
            r to_prime
        in
        let rules = List.map fold_all (p1.Program.rules @ primed_rules) in
        Program.dedup_rules (Program.restrict_reachable { p1 with Program.rules })
      in
      match tamper with
      | None -> base
      | Some t -> base @ [ ("qrp(tampered)", tampered t) ]

let drop_disjuncts cs =
  match Cset.disjuncts cs with [] -> cs | d :: _ -> Cset.of_conj d

(* ----- oracles ----- *)

let same_engine_results name res_idx res_seed =
  let preds =
    List.sort_uniq compare
      (List.map fst (Engine.all_facts res_idx) @ List.map fst (Engine.all_facts res_seed))
  in
  let bad_pred =
    List.find_opt
      (fun pred ->
        let fi = Engine.facts_of res_idx pred and fs = Engine.facts_of res_seed pred in
        List.length fi <> List.length fs
        || first_uncovered fi fs <> None
        || first_uncovered fs fi <> None)
      preds
  in
  match bad_pred with
  | Some pred -> Some (Printf.sprintf "%s: fact sets differ on %s" name pred)
  | None ->
      let di = (Engine.stats res_idx).Engine.derivations
      and ds = (Engine.stats res_seed).Engine.derivations in
      if di <> ds then
        Some (Printf.sprintf "%s: derivation counts differ (indexed %d, seed %d)" name di ds)
      else None

let check_solver_pool st pool =
  if Cdomain.is_z () then
    (* FM-over-ℚ and the simplex legitimately disagree with the integer
       verdict ([2X = 1] is Q-sat, Z-unsat), so under ℤ the cross-check
       pairs the two independent exact procedures: Omega-style elimination
       against branch-and-bound over the rational relaxation *)
    let zsat c = Zsolve.is_sat (Conj.to_list c) in
    let zbb c = Zsolve.is_sat_bb (Conj.to_list c) in
    let bad =
      List.find_opt
        (fun c ->
          let agree = zsat c = zbb c in
          if agree then st.checks <- st.checks + 1;
          not agree)
        pool
    in
    Option.map
      (fun c ->
        Printf.sprintf "Omega elimination says %b, branch-and-bound says %b on: %s" (zsat c)
          (zbb c) (Conj.to_string c))
      bad
  else
    let bad =
      List.find_opt
        (fun c ->
          let agree = fm_sat c = simplex_sat c in
          if agree then st.checks <- st.checks + 1;
          not agree)
        pool
    in
    Option.map
      (fun c ->
        Printf.sprintf "Fourier-Motzkin says %b, simplex says %b on: %s" (fm_sat c)
          (simplex_sat c) (Conj.to_string c))
      bad

let check_bound ~max_bound_iters st p =
  if not (Decidable.in_class p) then
    Some "generated program left the Theorem 5.1 decidable class"
  else
    let bound = Decidable.iteration_bound p in
    let limit =
      match Bigint.to_int_opt bound with
      | Some b when b < max_bound_iters -> b
      | _ -> max_bound_iters
    in
    let pres = Pred_constraints.gen ~max_iters:limit p in
    let qres = Qrp.gen ~max_iters:limit p in
    let within iters = Bigint.compare (Bigint.of_int iters) bound <= 0 in
    if
      pres.Pred_constraints.converged
      && qres.Qrp.converged
      && within pres.Pred_constraints.iterations
      && within qres.Qrp.iterations
    then begin
      st.checks <- st.checks + 1;
      None
    end
    else
      Some
        (Printf.sprintf
           "constraint generation exceeded the Theorem 5.1 bound %s (pred: %d iters, \
            converged %b; qrp: %d iters, converged %b; cap %d)"
           (Bigint.to_string bound) pres.Pred_constraints.iterations
           pres.Pred_constraints.converged qres.Qrp.iterations qres.Qrp.converged limit)

(* ----- the rational-relaxation oracle (oracle 11, int mode) ----- *)

(* ℤ ⊂ ℚ: any answer derivable under the integer domain is derivable under
   the rational one, so every Z answer must be covered by the Q answers.
   One direction only — FM projection over ℤ computes the real shadow, an
   over-approximation, so Q answers with no integer witness are expected.
   Coverage is judged in Q mode (the covering constraint is a ℚ statement).
   Skipped when either run truncates. *)
let check_relaxation ~max_iterations ~max_derivations st p edb =
  let run_in dom =
    Cdomain.with_domain dom (fun () ->
        Memo.clear_all ();
        let res = Engine.run ~max_iterations ~max_derivations p ~edb in
        if (Engine.stats res).Engine.reached_fixpoint then
          Some (List.sort F.compare (Engine.answers res p))
        else None)
  in
  match (run_in Cdomain.Z, run_in Cdomain.Q) with
  | Some za, Some qa -> (
      match Cdomain.with_domain Cdomain.Q (fun () -> first_uncovered za qa) with
      | Some f ->
          Some
            (Printf.sprintf
               "integer-domain answer %s is not covered by any rational-domain answer"
               (F.to_string f))
      | None ->
          st.checks <- st.checks + 1;
          None)
  | _ ->
      st.runs_truncated <- st.runs_truncated + 1;
      None

let check_case ?tamper ?(max_iterations = 25) ?(max_derivations = 20_000) ?(max_iters = 20)
    ~mode st p edb =
  (* Int-mode cases run every oracle under the integer domain, so the
     cache/parallel/interval/compiled differentials double as ℤ
     transparency checks; the relaxation oracle below is the only one that
     crosses domains on purpose. *)
  (if mode = Generate.Int then Cdomain.with_domain Cdomain.Z else fun k -> k ()) @@ fun () ->
  st.cases <- st.cases + 1;
  let fail oracle pipeline detail =
    Some { oracle; pipeline; detail; program = p; edb; updates = [] }
  in
  let res0 = Engine.run ~max_iterations ~max_derivations p ~edb in
  if not (Engine.stats res0).Engine.reached_fixpoint then begin
    (* a truncated baseline cannot anchor equivalence; skip the case *)
    st.runs_truncated <- st.runs_truncated + 1;
    None
  end
  else begin
    st.evaluated <- st.evaluated + 1;
    st.facts_derived <- st.facts_derived + Engine.total_idb_facts res0 ~edb;
    let res0_seed = Engine.run ~indexed:false ~max_iterations ~max_derivations p ~edb in
    match same_engine_results "original" res0 res0_seed with
    | Some detail -> fail Indexing "eval" detail
    | None -> (
        st.checks <- st.checks + 1;
        let bound_failure =
          if mode = Generate.Decidable then check_bound ~max_bound_iters:300 st p else None
        in
        match bound_failure with
        | Some detail -> fail Bound "analyze" detail
        | None -> (
            match
              check_cache_differential ~max_iterations ~max_derivations ~max_iters st p edb
            with
            | Some detail -> fail Cache "constraint_rewrite" detail
            | None -> (
            match
              check_parallel_differential ~max_iterations ~max_derivations ~max_iters st p edb
            with
            | Some detail -> fail Parallel "eval" detail
            | None -> (
            match
              check_interval_differential ~max_iterations ~max_derivations ~max_iters st p edb
            with
            | Some detail -> fail Tier "constraint_rewrite" detail
            | None -> (
            match
              check_compiled_differential ~max_iterations ~max_derivations ~max_iters st p edb
            with
            | Some detail -> fail Compiled "eval" detail
            | None -> (
            let relaxation_failure =
              if mode = Generate.Int then
                check_relaxation ~max_iterations ~max_derivations st p edb
              else None
            in
            match relaxation_failure with
            | Some detail -> fail Relaxation "eval" detail
            | None -> (
            let orig_preds = Program.predicates p in
            let orig_facts pred = Engine.facts_of res0 pred in
            let answers0 = Engine.answers res0 p in
            let solver_pool = ref [] in
            let add_conjs (prog : Program.t) =
              List.iter (fun (r : Rule.t) -> solver_pool := r.Rule.cstr :: !solver_pool)
                prog.Program.rules
            in
            add_conjs p;
            List.iter
              (fun (_, fs) -> List.iter (fun f -> solver_pool := F.cstr f :: !solver_pool) fs)
              (Engine.all_facts res0);
            (* run one pipeline; None = all its oracles passed or skipped *)
            let check_pipeline (name, rw) =
              match rw p with
              | exception (Invalid_argument _ | Failure _) ->
                  st.rewrites_skipped <- st.rewrites_skipped + 1;
                  None
              | p' -> (
                  add_conjs p';
                  let res' = Engine.run ~max_iterations ~max_derivations p' ~edb in
                  if not (Engine.stats res').Engine.reached_fixpoint then begin
                    st.runs_truncated <- st.runs_truncated + 1;
                    None
                  end
                  else
                    let res'_seed =
                      Engine.run ~indexed:false ~max_iterations ~max_derivations p' ~edb
                    in
                    match same_engine_results name res' res'_seed with
                    | Some detail -> fail Indexing name detail
                    | None ->
                    st.checks <- st.checks + 1;
                    let arity_ok =
                      match (p.Program.query, p'.Program.query) with
                      | Some q, Some q' -> (
                          try Program.arity p q = Program.arity p' q'
                          with Not_found -> false)
                      | _ -> false
                    in
                    if not arity_ok then begin
                      st.rewrites_skipped <- st.rewrites_skipped + 1;
                      None
                    end
                    else
                      let answers' = Engine.answers res' p' in
                      match first_uncovered answers0 answers' with
                      | Some f ->
                          fail Answers name
                            (Printf.sprintf "answer %s of the original program is lost"
                               (F.to_string f))
                      | None -> (
                          match first_uncovered answers' answers0 with
                          | Some f ->
                              fail Answers name
                                (Printf.sprintf "extra answer %s not derivable originally"
                                   (F.to_string f))
                          | None ->
                              st.checks <- st.checks + 1;
                              (* monotonicity: rewritten facts refine original
                                 relations *)
                              let bad =
                                List.find_map
                                  (fun (pred', facts') ->
                                    match root_name orig_preds pred' with
                                    | None -> None
                                    | Some op ->
                                        if
                                          facts' <> []
                                          && F.arity (List.hd facts')
                                             <> Program.arity p op
                                        then None
                                        else
                                          Option.map
                                            (fun f ->
                                              Printf.sprintf
                                                "%s derives %s, not subsumed by any \
                                                 original %s fact"
                                                pred' (F.to_string f) op)
                                            (first_uncovered facts' (orig_facts op)))
                                  (Engine.all_facts res')
                              in
                              (match bad with
                              | Some detail -> fail Monotone name detail
                              | None ->
                                  st.checks <- st.checks + 1;
                                  None)))
            in
            match List.find_map check_pipeline (pipelines ~max_iters ?tamper p) with
            | Some _ as f -> f
            | None -> (
                match check_solver_pool st !solver_pool with
                | Some detail -> fail Solver "solver" detail
                | None -> None))))))))
  end

(* ----- shrinking ----- *)

let valid (p : Program.t) =
  Program.check p = Ok ()
  && Program.is_range_restricted p
  && match p.Program.query with Some q -> Program.is_derived p q | None -> false

let remove_nth n l = List.filteri (fun i _ -> i <> n) l

(* all one-step reductions of a case, smallest-effect last so whole rules
   and facts go first *)
let reductions (p : Program.t) edb =
  let query = p.Program.query in
  let mk rules = Program.make ?query rules in
  let drop_rule =
    List.init (List.length p.Program.rules) (fun i -> (mk (remove_nth i p.Program.rules), edb))
  in
  let drop_fact = List.init (List.length edb) (fun i -> (p, remove_nth i edb)) in
  let map_rule i f =
    mk (List.mapi (fun j r -> if j = i then f r else r) p.Program.rules)
  in
  let drop_lit =
    List.concat
      (List.mapi
         (fun i (r : Rule.t) ->
           List.init (List.length r.Rule.body) (fun j ->
               ( map_rule i (fun r ->
                     Rule.make ~label:r.Rule.label r.Rule.head (remove_nth j r.Rule.body)
                       r.Rule.cstr),
                 edb )))
         p.Program.rules)
  in
  let drop_atom =
    List.concat
      (List.mapi
         (fun i (r : Rule.t) ->
           let atoms = Conj.to_list r.Rule.cstr in
           List.init (List.length atoms) (fun j ->
               ( map_rule i (fun r ->
                     Rule.make ~label:r.Rule.label r.Rule.head r.Rule.body
                       (Conj.of_list (remove_nth j atoms))),
                 edb )))
         p.Program.rules)
  in
  List.filter (fun (p', _) -> valid p') (drop_rule @ drop_fact @ drop_lit @ drop_atom)

let shrink ?tamper ?max_iterations ?max_derivations ?max_iters ~mode (f0 : failure) =
  let budget = ref 400 in
  let still_fails p edb =
    if !budget <= 0 then None
    else begin
      decr budget;
      check_case ?tamper ?max_iterations ?max_derivations ?max_iters ~mode (new_stats ()) p
        edb
    end
  in
  let rec go (f : failure) =
    let next =
      List.find_map
        (fun (p', edb') ->
          match still_fails p' edb' with Some f' -> Some f' | None -> None)
        (reductions f.program f.edb)
    in
    match next with Some f' when !budget > 0 -> go f' | _ -> f
  in
  go f0

(* ----- top-level runs ----- *)

type summary = { seed : int; count : int; stats : stats; failure : failure option }

let run ?tamper ?config ?max_iterations ?max_derivations ?max_iters ~seed ~count () =
  let config = match config with Some c -> c | None -> Generate.default Generate.Decidable in
  let rng = Rng.create seed in
  let st = new_stats () in
  (* Tight configs can exhaust Generate.case's rejection sampling; retry
     with the next substream instead of dying, but bound the retries so a
     config that can never produce a program still terminates. *)
  let generate () =
    let rec draw retries_left =
      let case_rng = Rng.split rng in
      match Generate.case case_rng config with
      | case -> case
      | exception Generate.Exhausted _ when retries_left > 0 ->
          st.gen_retries <- st.gen_retries + 1;
          draw (retries_left - 1)
    in
    draw 10
  in
  let rec go i =
    if i >= count then None
    else
      (* each case gets its own substream so a change in how one case is
         consumed does not shift every later case *)
      let p, edb = generate () in
      match
        check_case ?tamper ?max_iterations ?max_derivations ?max_iters ~mode:config.Generate.mode
          st p edb
      with
      | None -> go (i + 1)
      | Some f ->
          Some (shrink ?tamper ?max_iterations ?max_derivations ?max_iters ~mode:config.Generate.mode f)
  in
  { seed; count; stats = st; failure = go 0 }

let replay ?mode p edb =
  let mode =
    match mode with
    | Some m -> m
    | None -> if Decidable.in_class p then Generate.Decidable else Generate.Linear
  in
  check_case ~mode (new_stats ()) p edb

(* ----- the update-oracle differential (oracle 8) ----- *)

(* Apply a random insert/retract sequence to a materialized view and, after
   every step, compare it against a from-scratch re-evaluation of the
   current EDB multiset: sorted answers, the full per-predicate fact state,
   per-fact support counts and fixpoint convergence must all agree, and the
   plain engine must agree on the answers.  Generated programs are
   range-restricted, so every derived fact is ground and support counts are
   arrival-order independent — incremental maintenance must reproduce them
   exactly. *)

let sorted_all_facts fs = List.sort compare (List.map (fun (p, l) -> (p, List.sort F.compare l)) fs)

let view_state vw =
  List.filter (fun (_, l) -> l <> []) (Engine.view_all_facts vw)

let diff_state name a b =
  if a <> b then Some (name ^ ": incremental and from-scratch state differ") else None

let check_update_case ?(max_iterations = 25) ?(max_derivations = 20_000) st p (edb0 : F.t list)
    (ops : update_op list) =
  st.cases <- st.cases + 1;
  let fail detail =
    Some { oracle = Update; pipeline = "maintain"; detail; program = p; edb = edb0; updates = ops }
  in
  let vw, mst0 = Engine.materialize ~max_iterations ~max_derivations p ~edb:edb0 in
  Fun.protect ~finally:(fun () -> Engine.close_view vw) @@ fun () ->
  (* one differential check of the live view against fresh evaluations *)
  let compare_now what =
    let edb_now = Engine.view_edb vw in
    let sv, sst = Engine.materialize ~jobs:1 ~max_iterations ~max_derivations p ~edb:edb_now in
    Fun.protect ~finally:(fun () -> Engine.close_view sv) @@ fun () ->
    if not sst.Engine.m_complete then `Truncated
    else begin
      let failure =
        if not (Engine.view_complete vw) then
          Some (what ^ ": incremental maintenance lost fixpoint convergence")
        else if
          not (List.equal F.equal (Engine.view_answers vw) (Engine.view_answers sv))
        then Some (what ^ ": incremental and from-scratch answers differ")
        else
          match
            diff_state what
              (sorted_all_facts (view_state vw))
              (sorted_all_facts (view_state sv))
          with
          | Some d -> Some d
          | None ->
              if Engine.view_counts vw <> Engine.view_counts sv then
                Some (what ^ ": incremental and from-scratch support counts differ")
              else begin
                (* anchor to the plain engine: same answers *)
                let r = Engine.run ~jobs:1 ~max_iterations ~max_derivations p ~edb:edb_now in
                if not (Engine.stats r).Engine.reached_fixpoint then ()
                else if
                  not
                    (List.equal F.equal
                       (List.sort F.compare (Engine.answers r p))
                       (Engine.view_answers vw))
                then raise Exit;
                None
              end
      in
      match failure with
      | Some d -> `Fail d
      | None ->
          st.checks <- st.checks + 1;
          `Ok
    end
  in
  let compare_now what =
    try compare_now what
    with Exit -> `Fail (what ^ ": view answers differ from Engine.run answers")
  in
  if not mst0.Engine.m_complete then begin
    st.runs_truncated <- st.runs_truncated + 1;
    None
  end
  else begin
    st.evaluated <- st.evaluated + 1;
    st.facts_derived <- st.facts_derived + (Engine.view_total vw - List.length edb0);
    match compare_now "materialize" with
    | `Truncated ->
        st.runs_truncated <- st.runs_truncated + 1;
        None
    | `Fail d -> fail d
    | `Ok ->
        let rec steps i = function
          | [] -> None
          | op :: rest -> (
              let what =
                Printf.sprintf "step %d (%s)" i (update_op_to_string op)
              in
              let mst =
                match op with
                | Insert f -> Engine.insert vw [ f ]
                | Retract f -> Engine.retract vw [ f ]
              in
              if not mst.Engine.m_complete then begin
                st.runs_truncated <- st.runs_truncated + 1;
                None
              end
              else
                match compare_now what with
                | `Truncated ->
                    st.runs_truncated <- st.runs_truncated + 1;
                    None
                | `Fail d -> fail d
                | `Ok -> steps (i + 1) rest)
        in
        steps 1 ops
  end

let replay_update p edb ops = check_update_case (new_stats ()) p edb ops

(* random update sequence over a generated EDB: part of the database is
   held back as an insert pool, retracted facts return to the pool (so
   retract-then-reinsert sequences occur), and a small fraction of
   retractions name absent facts (counted no-ops) *)
let rec remove_first f = function
  | [] -> []
  | g :: rest -> if F.compare f g = 0 then rest else g :: remove_first f rest

let gen_updates rng edb =
  let initial, pool = List.partition (fun _ -> Rng.chance rng 0.55) edb in
  let present = ref initial and absent = ref pool in
  let n = 3 + Rng.int rng 10 in
  let ops = ref [] in
  for _ = 1 to n do
    let do_insert =
      match (!present, !absent) with
      | _, [] -> false
      | [], _ -> true
      | _ -> Rng.chance rng 0.55
    in
    if do_insert then begin
      let f = Rng.pick rng !absent in
      absent := remove_first f !absent;
      present := f :: !present;
      ops := Insert f :: !ops
    end
    else if !present = [] then () (* empty database and empty pool: no-op *)
    else if !absent <> [] && Rng.chance rng 0.15 then
      ops := Retract (Rng.pick rng !absent) :: !ops
    else begin
      let f = Rng.pick rng !present in
      present := remove_first f !present;
      absent := f :: !absent;
      ops := Retract f :: !ops
    end
  done;
  (initial, List.rev !ops)

(* greedy shrinking of an update failure: drop individual ops first (the
   sequence usually minimizes to one or two), then shrink the program and
   initial EDB with the shared reductions *)
let shrink_update ?max_iterations ?max_derivations (f0 : failure) =
  let budget = ref 400 in
  let still_fails p edb ops =
    if !budget <= 0 then None
    else begin
      decr budget;
      check_update_case ?max_iterations ?max_derivations (new_stats ()) p edb ops
    end
  in
  let rec go (f : failure) =
    let drop_op =
      List.init (List.length f.updates) (fun i -> (f.program, f.edb, remove_nth i f.updates))
    in
    let prog_reds =
      List.map (fun (p', edb') -> (p', edb', f.updates)) (reductions f.program f.edb)
    in
    let next =
      List.find_map (fun (p', edb', ops') -> still_fails p' edb' ops') (drop_op @ prog_reds)
    in
    match next with Some f' when !budget > 0 -> go f' | _ -> f
  in
  go f0

let run_update ?config ?max_iterations ?max_derivations ~seed ~count () =
  let config =
    match config with
    | Some c -> c
    | None ->
        (* a deeper EDB pool than the rewrite-oracle default, so update
           sequences have facts left to insert *)
        let c = Generate.default Generate.Decidable in
        { c with Generate.max_edb_facts = c.Generate.max_edb_facts * 2 }
  in
  let rng = Rng.create seed in
  let st = new_stats () in
  let generate () =
    let rec draw retries_left =
      let case_rng = Rng.split rng in
      match Generate.case case_rng config with
      | case -> case
      | exception Generate.Exhausted _ when retries_left > 0 ->
          st.gen_retries <- st.gen_retries + 1;
          draw (retries_left - 1)
    in
    draw 10
  in
  let rec go i =
    if i >= count then None
    else
      let p, edb = generate () in
      let initial, ops = gen_updates (Rng.split rng) edb in
      match check_update_case ?max_iterations ?max_derivations st p initial ops with
      | None -> go (i + 1)
      | Some f -> Some (shrink_update ?max_iterations ?max_derivations f)
  in
  { seed; count; stats = st; failure = go 0 }

(* ----- counterexample rendering ----- *)

let edb_marker = "% --- edb ---"
let updates_marker = "% --- updates ---"

let fact_to_rule f =
  let n = F.arity f in
  if F.is_ground f then
    let args =
      List.init n (fun i ->
          match f.F.args.(i) with
          | F.Psym s -> Term.sym s
          | F.Pvar -> (
              match F.ground_value f (i + 1) with
              | Some v -> Term.num v
              | None -> assert false))
    in
    Rule.fact (Literal.make (F.pred f) args) Conj.tt
  else
    let var i = Var.mk (Printf.sprintf "V%d" i) in
    let args =
      List.init n (fun i ->
          match f.F.args.(i) with
          | F.Psym s -> Term.sym s
          | F.Pvar -> Term.var (var (i + 1)))
    in
    let ren v = match Var.arg_index v with Some i -> var i | None -> v in
    Rule.fact (Literal.make (F.pred f) args) (Conj.rename ren (F.cstr f))

let counterexample_to_string (s : summary) (f : failure) =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%% cqlopt fuzz counterexample (seed=%d, count=%d)\n" s.seed s.count;
  Printf.bprintf b "%% oracle=%s pipeline=%s\n" (oracle_name f.oracle) f.pipeline;
  Printf.bprintf b "%% %s\n" f.detail;
  Buffer.add_string b (Program.to_string f.program);
  Buffer.add_char b '\n';
  Buffer.add_string b edb_marker;
  Buffer.add_char b '\n';
  List.iter (fun fact -> Printf.bprintf b "%s\n" (Rule.to_string (fact_to_rule fact))) f.edb;
  if f.updates <> [] then begin
    Buffer.add_string b updates_marker;
    Buffer.add_char b '\n';
    List.iter
      (fun op ->
        let sign, fact = match op with Insert f -> ("+", f) | Retract f -> ("-", f) in
        Printf.bprintf b "%s %s\n" sign (Rule.to_string (fact_to_rule fact)))
      f.updates
  end;
  Buffer.contents b

let parse_counterexample src =
  let split_on marker src =
    match
      let lines = String.split_on_char '\n' src in
      let rec split acc = function
        | [] -> None
        | l :: rest when String.trim l = marker ->
            Some (String.concat "\n" (List.rev acc), String.concat "\n" rest)
        | l :: rest -> split (l :: acc) rest
      in
      split [] lines
    with
    | Some (a, b) -> (a, b)
    | None -> (src, "")
  in
  let prog_part, rest = split_on edb_marker src in
  let edb_part, updates_part = split_on updates_marker rest in
  let p = Parser.program_of_string prog_part in
  let edb = List.map F.of_fact_rule (Parser.facts_of_string edb_part) in
  let updates =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if String.length line < 2 || line.[0] = '%' then None
        else
          let clause = String.trim (String.sub line 1 (String.length line - 1)) in
          let fact () =
            match Parser.facts_of_string clause with
            | [ r ] -> F.of_fact_rule r
            | _ -> failwith ("malformed update line: " ^ line)
          in
          match line.[0] with
          | '+' -> Some (Insert (fact ()))
          | '-' -> Some (Retract (fact ()))
          | _ -> failwith ("malformed update line: " ^ line))
      (String.split_on_char '\n' updates_part)
  in
  (p, edb, updates)

let _ = oracle_of_name

let pp_summary fmt (s : summary) =
  let st = s.stats in
  Format.fprintf fmt
    "fuzz: seed=%d cases=%d evaluated=%d oracle_checks=%d skipped_rewrites=%d \
     truncated_runs=%d gen_retries=%d mean_idb_facts=%.1f@."
    s.seed st.cases st.evaluated st.checks st.rewrites_skipped st.runs_truncated st.gen_retries
    (if st.evaluated = 0 then 0.0
     else float_of_int st.facts_derived /. float_of_int st.evaluated);
  match s.failure with
  | None -> Format.fprintf fmt "all oracles passed@."
  | Some f ->
      Format.fprintf fmt "FAILURE oracle=%s pipeline=%s: %s@." (oracle_name f.oracle)
        f.pipeline f.detail
