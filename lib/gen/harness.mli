(** Differential fuzzing harness: run generated (program, query, EDB) cases
    through every rewrite pipeline and check the equivalence oracles.

    Eleven oracles guard the paper's claims and the implementation:

    + {b Answers} — query-answer equivalence: the rewritten program computes
      exactly the original's query answers (Theorems 4.7/4.8, 6.2, 7.10),
      compared as fact sets under subsumption (exact on the ground answers
      range-restricted programs produce).
    + {b Indexing} — the indexed relation store and the seed list-based
      engine ([~indexed:false]) agree on every fact set and on the
      derivation count.
    + {b Solver} — Fourier–Motzkin elimination and the exact simplex agree
      on the satisfiability of every constraint conjunction the run touches
      (rule constraints of every program variant, derived fact constraints).
    + {b Monotone} — the rewritten program derives, for each original
      predicate, a subset of the original program's facts (constraint
      pushing only ever {e shrinks} the computed relations; magic and
      supplementary predicates are new and exempt).
    + {b Bound} — on decidable-class inputs (Theorem 5.1) the
      constraint-generation fixpoints converge within the iteration bound.
    + {b Cache} — the decision-procedure memoization caches ({!Cql_constr.Memo})
      never change a result: the [constraint_rewrite] output and the answers
      of its evaluation are identical with caches enabled and disabled, each
      run starting from a fresh cache state.
    + {b Parallel} — the domain-pool evaluator never changes a result: the
      [constraint_rewrite] output (mod renaming), the sorted answers of its
      evaluation, the derivation count and the fixpoint status are identical
      between [jobs=1] (the exact sequential path) and [jobs=4], each run
      starting from a fresh cache state.
    + {b Update} — incremental view maintenance never changes a result: a
      random insert/retract sequence applied to a materialized view
      ({!Cql_eval.Engine.materialize}) leaves, after {e every} step, exactly
      the sorted answers, per-predicate fact state, per-fact support counts
      and fixpoint status of a from-scratch re-evaluation of the current
      EDB multiset ({!run_update}, [--mode update]).
    + {b Tier} — the interval fast tier ({!Cql_constr.Interval}) never
      changes a result: the [constraint_rewrite] output (mod renaming), the
      sorted answers of its evaluation and the fixpoint status are identical
      with the tier enabled and disabled, each run starting from a fresh
      cache state (reported as ["interval"]).
    + {b Compiled} — register-frame join-plan compilation
      ({!Cql_eval.Compile}) never changes a result: the [constraint_rewrite]
      output (mod renaming), the sorted answers of its evaluation, the
      derivation count and the fixpoint status are identical with
      compilation enabled and disabled (the tuple-at-a-time substitution
      interpreter), each run starting from a fresh cache state (reported as
      ["compiled"]).
    + {b Relaxation} — integer-mode only ([--mode int]): ℤ ⊂ ℚ, so every
      answer the integer-domain evaluation derives must be covered by the
      rational-domain answers of the same program (one-directional — the
      real-shadow FM projection over-approximates, so the converse is
      expected to fail).  Integer-mode cases additionally run {e all} the
      differential oracles above under {!Cql_constr.Cdomain.Z}, which makes
      the interval-tier differential a ℤ tier-transparency check, and swap
      the {b Solver} pair to the two independent exact ℤ procedures (Omega
      elimination vs. branch-and-bound over the rational relaxation).

    On failure the harness shrinks the case — dropping rules, EDB facts,
    update ops, body literals and constraint atoms while the failure
    persists and the program stays well-formed — and renders the minimal
    counterexample as a replayable [.cql] file
    ({!counterexample_to_string} / {!parse_counterexample}). *)

open Cql_constr
open Cql_datalog

type oracle =
  | Answers
  | Indexing
  | Solver
  | Monotone
  | Bound
  | Cache
  | Parallel
  | Update
  | Tier
  | Compiled
  | Relaxation

val oracle_name : oracle -> string

type update_op = Insert of Cql_eval.Fact.t | Retract of Cql_eval.Fact.t

val update_op_to_string : update_op -> string

type failure = {
  oracle : oracle;
  pipeline : string;  (** e.g. ["pred,qrp,mg"]; ["eval"] for engine oracles *)
  detail : string;
  program : Program.t;
  edb : Cql_eval.Fact.t list;
  updates : update_op list;  (** empty except for the update oracle *)
}

type stats = {
  mutable cases : int;  (** generated cases *)
  mutable evaluated : int;  (** cases whose original run reached fixpoint *)
  mutable checks : int;  (** individual oracle checks passed *)
  mutable rewrites_skipped : int;
      (** pipelines not applicable to a case (e.g. non-groundable GMT) *)
  mutable runs_truncated : int;  (** evaluations stopped by a budget *)
  mutable facts_derived : int;  (** IDB facts over all original runs *)
  mutable gen_retries : int;
      (** {!Generate.Exhausted} recoveries: generation retried on a fresh
          RNG substream *)
}

val new_stats : unit -> stats

val check_case :
  ?tamper:(Cset.t -> Cset.t) ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  ?max_iters:int ->
  mode:Generate.mode ->
  stats ->
  Program.t ->
  Cql_eval.Fact.t list ->
  failure option
(** Run one case through every pipeline and oracle; [None] when all checks
    pass.  [tamper] injects a bug: an extra ["qrp(tampered)"] pipeline runs
    a QRP propagation whose definition rules are built from each inferred
    constraint set transformed by the given function while folding still
    trusts the untransformed set (e.g. dropping all but one disjunct — the
    over-tight pushed constraint the oracles must catch).  [max_iterations] /
    [max_derivations] are evaluation budgets (defaults 25 / 20000);
    [max_iters] bounds the rewrite fixpoints (default 20). *)

val shrink :
  ?tamper:(Cset.t -> Cset.t) ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  ?max_iters:int ->
  mode:Generate.mode ->
  failure ->
  failure
(** Greedily minimize a failing case: re-run {!check_case} on candidates
    with one rule / EDB fact / body literal / constraint atom removed and
    keep any reduction that still fails (bounded number of re-checks). *)

type summary = {
  seed : int;
  count : int;
  stats : stats;
  failure : failure option;  (** the first failure, already shrunk *)
}

val run :
  ?tamper:(Cset.t -> Cset.t) ->
  ?config:Generate.config ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  ?max_iters:int ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** Generate and check [count] cases from the given seed, stopping at (and
    shrinking) the first failure.  [config] defaults to
    [Generate.default Decidable].  When a case's generation raises
    {!Generate.Exhausted} the harness retries on the next RNG substream
    (counted in [stats.gen_retries], bounded per case). *)

val replay : ?mode:Generate.mode -> Program.t -> Cql_eval.Fact.t list -> failure option
(** Re-check a single case (e.g. a parsed counterexample).  When [mode] is
    omitted it is inferred with {!Cql_core.Decidable.in_class} (which can
    only distinguish [Decidable] from [Linear] — pass [Int] explicitly to
    replay an integer-domain counterexample under ℤ). *)

val check_update_case :
  ?max_iterations:int ->
  ?max_derivations:int ->
  stats ->
  Program.t ->
  Cql_eval.Fact.t list ->
  update_op list ->
  failure option
(** The update oracle on one explicit case: materialize the program over the
    initial EDB, apply the ops one at a time, and after every step require
    the view to agree with a from-scratch re-evaluation of the current EDB
    multiset on sorted answers, full fact state, per-fact support counts and
    fixpoint status (and with {!Cql_eval.Engine.run} on the answers).  Cases
    where any evaluation hits a budget are skipped ([runs_truncated]). *)

val replay_update :
  Program.t -> Cql_eval.Fact.t list -> update_op list -> failure option
(** Re-check a parsed update counterexample. *)

val gen_updates : Rng.t -> Cql_eval.Fact.t list -> Cql_eval.Fact.t list * update_op list
(** Split a generated EDB into an initial database and an insert pool and
    draw a random update sequence: inserts from the pool, retractions of
    present facts (which return to the pool, so retract-then-reinsert
    occurs) and occasional retractions of absent facts. *)

val shrink_update : ?max_iterations:int -> ?max_derivations:int -> failure -> failure
(** Greedy minimization for update failures: drop individual ops first,
    then apply the shared program/EDB reductions. *)

val run_update :
  ?config:Generate.config ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  seed:int ->
  count:int ->
  unit ->
  summary
(** [--mode update]: generate [count] cases (default config: decidable mode
    with a doubled EDB pool), apply {!gen_updates} sequences incrementally
    and check the update oracle after every step, stopping at (and
    shrinking) the first failure. *)

val drop_disjuncts : Cset.t -> Cset.t
(** The canonical injected bug for tests: keep only the first disjunct of a
    constraint set (an unsoundly tightened constraint — what a rewrite that
    "bounds disjuncts to one" without {!Cset.weaken_to_one}'s weakening, or
    a broken {!Cset.disjointify}, would produce). *)

val counterexample_to_string : summary -> failure -> string
(** A replayable [.cql] document: header comments, the program (with
    [#query]), a [% --- edb ---] marker, the EDB facts as clauses, and —
    for update failures — a [% --- updates ---] marker followed by one
    [+ fact.] / [- fact.] line per op. *)

val parse_counterexample : string -> Program.t * Cql_eval.Fact.t list * update_op list
(** Inverse of {!counterexample_to_string} (the op list is empty for
    counterexamples of the other oracles).
    @raise Cql_datalog.Parser.Error on malformed input. *)

val pp_summary : Format.formatter -> summary -> unit
