(* splitmix64: a tiny, fast, well-distributed PRNG with a trivially
   splittable state (Steele, Lea & Flood, OOPSLA 2014).  All arithmetic is
   on Int64 so the stream is identical on every platform. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let bool t = Int64.logand (next t) 1L = 1L

let chance t p =
  let v = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int v /. float_of_int (1 lsl 53) < p

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let pick_weighted t wl =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 wl in
  if total <= 0 then invalid_arg "Rng.pick_weighted: weights must be positive";
  let n = int t total in
  let rec go n = function
    | [] -> invalid_arg "Rng.pick_weighted: empty list"
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go n wl
