(** Seeded random generation of well-formed CQL programs and finite EDBs.

    Generated programs respect every invariant the rewriting procedures
    assume: rules are in normal form (arguments are variables or constants),
    every rule is range-restricted (head variables grounded by body literals
    or single-unknown equality constraints, footnote 8), recursion is
    stratified (a predicate's rules use only predicates of lower strata plus
    the predicate itself), and each derived predicate has a non-recursive
    base rule.  Argument positions are typed numeric or symbolic at
    predicate-creation time so constraints only ever touch numeric
    variables and EDB facts are well-typed.

    Three constraint modes:

    - {!Decidable}: constraints restricted to the decidable class of
      Theorem 5.1 — [X op Y] / [X op c] with [op ∈ {≤, <, ≥, >}], no
      arithmetic — so [Decidable.in_class] holds by construction and the
      Theorem 5.1 iteration-bound oracle applies.
    - {!Linear}: the full linear fragment — scaled variables, sums,
      equality-defined head arguments ([H = X + Y]) — which can make
      bottom-up evaluation diverge (backward-Fibonacci style); the harness
      runs these under budgets.
    - {!Int}: linear atoms biased toward the places ℚ and ℤ verdicts
      diverge — non-unit coefficients ([2X ≤ 7] tightens to [X ≤ 3]),
      strict bounds (which close over ℤ), and divisibility traps
      ([2X = 2Y + 1], Q-sat but Z-unsat).  The harness evaluates these
      cases under {!Cql_constr.Cdomain.Z}. *)

open Cql_datalog

type mode = Decidable | Linear | Int

val mode_of_string : string -> mode option
val mode_to_string : mode -> string

type config = {
  mode : mode;
  edb_preds : int;  (** database predicates (at least 1) *)
  idb_preds : int;  (** derived predicates (at least 1) *)
  max_arity : int;
  max_rules_per_pred : int;
  max_body_lits : int;
  max_constraint_atoms : int;
  max_edb_facts : int;  (** facts per database predicate *)
  const_range : int;  (** numeric constants drawn from [0, const_range] *)
  recursion : bool;
}

val default : mode -> config

exception Exhausted of { attempts : int }
(** {!case} draws candidate programs and keeps only those passing the
    well-formedness filters; [Exhausted] is raised when a run of [attempts]
    consecutive candidates all failed (possible for tight configs, e.g.
    [Decidable] mode with [max_constraint_atoms] large relative to arity).
    Callers with a seed stream should retry with a fresh split — see
    {!Harness.run}. *)

val case : ?attempts:int -> Rng.t -> config -> Program.t * Cql_eval.Fact.t list
(** A random (program, EDB) pair.  The program has a query predicate set,
    passes {!Program.check} and {!Program.is_range_restricted}; the EDB
    facts are ground, one batch per database predicate occurring in the
    program.  In [Decidable] mode the program is in the Theorem 5.1 class.
    @raise Exhausted after [attempts] (default 20, clamped to at least 1)
    failed draws. *)

val program : ?attempts:int -> Rng.t -> config -> Program.t
(** Just the program part of {!case}.  @raise Exhausted as {!case}. *)
