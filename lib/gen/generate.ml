open Cql_num
open Cql_constr
open Cql_datalog

type mode = Decidable | Linear | Int

let mode_of_string = function
  | "decidable" -> Some Decidable
  | "linear" -> Some Linear
  | "int" -> Some Int
  | _ -> None

let mode_to_string = function Decidable -> "decidable" | Linear -> "linear" | Int -> "int"

type config = {
  mode : mode;
  edb_preds : int;
  idb_preds : int;
  max_arity : int;
  max_rules_per_pred : int;
  max_body_lits : int;
  max_constraint_atoms : int;
  max_edb_facts : int;
  const_range : int;
  recursion : bool;
}

let default mode =
  {
    mode;
    edb_preds = 2;
    idb_preds = 3;
    max_arity = 2;
    max_rules_per_pred = 2;
    max_body_lits = 2;
    max_constraint_atoms = 2;
    max_edb_facts = 4;
    const_range = 8;
    recursion = true;
  }

(* argument positions are typed at predicate creation: true = numeric,
   false = symbolic.  EDB facts and rule arguments respect the typing, so
   constraints only ever reach numeric variables. *)
type psig = { name : string; types : bool array }

let symbols = [ "a"; "b"; "c"; "d" ]

let gen_sig rng prefix i max_arity =
  let arity = 1 + Rng.int rng max_arity in
  {
    name = Printf.sprintf "%s%d" prefix i;
    types = Array.init arity (fun _ -> Rng.chance rng 0.7);
  }

let gen_const rng cfg numeric =
  if numeric then Term.int (Rng.int rng (cfg.const_range + 1))
  else Term.sym (Rng.pick rng symbols)

(* ----- constraint atoms ----- *)

let op_of rng =
  Rng.pick rng [ Atom.le; Atom.lt; Atom.ge; Atom.gt ]

let decidable_atom rng cfg numvars =
  (* X op Y or X op c: exactly the Theorem 5.1 class *)
  let x = Linexpr.var (Rng.pick rng numvars) in
  let rhs =
    if Rng.bool rng && List.length numvars > 1 then Linexpr.var (Rng.pick rng numvars)
    else Linexpr.of_int (Rng.int rng (cfg.const_range + 1))
  in
  (op_of rng) x rhs

let linear_atom rng cfg numvars =
  let v () = Linexpr.var (Rng.pick rng numvars) in
  let c () = Linexpr.of_int (Rng.int rng (cfg.const_range + 1)) in
  match Rng.int rng 4 with
  | 0 -> decidable_atom rng cfg numvars
  | 1 ->
      (* a·X op Y + c *)
      let a = Rat.of_int (2 + Rng.int rng 2) in
      (op_of rng) (Linexpr.scale a (v ())) (Linexpr.add (v ()) (c ()))
  | 2 ->
      (* X op Y + Z *)
      (op_of rng) (v ()) (Linexpr.add (v ()) (v ()))
  | _ ->
      (* X = Y + c (an equality between existing variables) *)
      Atom.eq (v ()) (Linexpr.add (v ()) (c ()))

(* integer-mode atoms stress exactly the places Q and ℤ verdicts diverge:
   non-unit coefficients (bounds that tighten through the gcd, equalities
   that need Omega elimination), strict bounds (which close over ℤ), and
   occasional divisibility traps like [2X = 2Y + 1] that are Q-sat but
   Z-unsat *)
let int_atom rng cfg numvars =
  let v () = Linexpr.var (Rng.pick rng numvars) in
  let c () = Linexpr.of_int (Rng.int rng (cfg.const_range + 1)) in
  let a () = Rat.of_int (2 + Rng.int rng 2) in
  match Rng.int rng 5 with
  | 0 -> decidable_atom rng cfg numvars
  | 1 ->
      (* a·X op c: the bound tightens to ⌊c/a⌋ / ⌈c/a⌉ over ℤ *)
      (op_of rng) (Linexpr.scale (a ()) (v ())) (c ())
  | 2 ->
      (* a·X op Y + c: non-unit coefficient for elimination *)
      (op_of rng) (Linexpr.scale (a ()) (v ())) (Linexpr.add (v ()) (c ()))
  | 3 ->
      (* X < Y + c: strict bounds step to X ≤ Y + c − 1 *)
      Atom.lt (v ()) (Linexpr.add (v ()) (c ()))
  | _ ->
      (* a·X = a·Y + c: satisfiable over ℤ iff a divides c *)
      let k = a () in
      Atom.eq (Linexpr.scale k (v ())) (Linexpr.add (Linexpr.scale k (v ())) (c ()))

(* ----- rules ----- *)

(* state threaded while building one rule's body *)
type rule_env = {
  mutable vars : (Var.t * bool) list;  (* variable, numeric? *)
  mutable counter : int;
}

let fresh_var env numeric =
  env.counter <- env.counter + 1;
  let v = Var.mk (Printf.sprintf "X%d" env.counter) in
  env.vars <- (v, numeric) :: env.vars;
  v

let vars_of_type env numeric =
  List.filter_map (fun (v, ty) -> if ty = numeric then Some v else None) env.vars

let gen_arg rng cfg env numeric =
  if Rng.chance rng 0.15 then gen_const rng cfg numeric
  else
    let pool = vars_of_type env numeric in
    if pool <> [] && Rng.chance rng 0.55 then Term.var (Rng.pick rng pool)
    else Term.var (fresh_var env numeric)

let gen_literal rng cfg env (s : psig) =
  Literal.make s.name (Array.to_list (Array.map (gen_arg rng cfg env) s.types))

(* head arguments must be grounded: drawn from body/defined variables of the
   right type, or constants — this keeps every rule range-restricted. *)
let gen_head rng cfg env (s : psig) =
  let arg numeric =
    let pool = vars_of_type env numeric in
    if pool <> [] && not (Rng.chance rng 0.15) then Term.var (Rng.pick rng pool)
    else gen_const rng cfg numeric
  in
  Literal.make s.name (Array.to_list (Array.map arg s.types))

let gen_rule rng cfg ~label ~head_sig ~body_sigs ~allow_rec =
  let env = { vars = []; counter = 0 } in
  let nlits = 1 + Rng.int rng cfg.max_body_lits in
  let body =
    List.init nlits (fun i ->
        let s =
          if allow_rec && i = nlits - 1 && Rng.chance rng 0.6 then head_sig
          else Rng.pick rng body_sigs
        in
        gen_literal rng cfg env s)
  in
  let numvars () = vars_of_type env true in
  let atoms = ref [] in
  let natoms = Rng.int rng (cfg.max_constraint_atoms + 1) in
  for _ = 1 to natoms do
    match numvars () with
    | [] -> ()
    | nv ->
        let a =
          match cfg.mode with
          | Decidable -> decidable_atom rng cfg nv
          | Linear -> linear_atom rng cfg nv
          | Int -> int_atom rng cfg nv
        in
        atoms := a :: !atoms
  done;
  (* Linear mode only: occasionally define a fresh head variable by an
     equality over body variables (fib-style arithmetic heads; grounded via
     the single-unknown-equality closure of Rule.grounded_vars) *)
  (if (cfg.mode = Linear || cfg.mode = Int) && Rng.chance rng 0.4 then
     match numvars () with
     | [] -> ()
     | nv ->
         let h = fresh_var env true in
         let rhs =
           if Rng.bool rng && List.length nv > 1 then
             Linexpr.add (Linexpr.var (Rng.pick rng nv)) (Linexpr.var (Rng.pick rng nv))
           else
             Linexpr.add
               (Linexpr.var (Rng.pick rng nv))
               (Linexpr.of_int (Rng.int rng (cfg.const_range + 1)))
         in
         atoms := Atom.eq (Linexpr.var h) rhs :: !atoms);
  let head = gen_head rng cfg env head_sig in
  let cstr = Conj.of_list !atoms in
  (* an unsatisfiable conjunction collapses to the constant atom [0 < 0],
     which is outside the Theorem 5.1 class; keep decidable-mode rules
     in-class (the rule would never fire anyway) *)
  let cstr = if cfg.mode = Decidable && not (Conj.is_sat cstr) then Conj.tt else cstr in
  Rule.make ~label head body cstr

(* ----- programs ----- *)

let gen_program rng cfg =
  let edb_sigs = List.init cfg.edb_preds (fun i -> gen_sig rng "e" (i + 1) cfg.max_arity) in
  let idb_sigs = List.init cfg.idb_preds (fun i -> gen_sig rng "p" (i + 1) cfg.max_arity) in
  let label_counter = ref 0 in
  let label () =
    incr label_counter;
    Printf.sprintf "r%d" !label_counter
  in
  let rules =
    List.concat
      (List.mapi
         (fun i head_sig ->
           (* stratification by construction: bodies use EDB predicates,
              derived predicates of strictly lower strata, and (recursive
              rules only) the head predicate itself *)
           let lower = edb_sigs @ List.filteri (fun j _ -> j < i) idb_sigs in
           let nrules = 1 + Rng.int rng cfg.max_rules_per_pred in
           List.init nrules (fun k ->
               let allow_rec = cfg.recursion && k > 0 && Rng.chance rng 0.6 in
               gen_rule rng cfg ~label:(label ()) ~head_sig ~body_sigs:lower ~allow_rec))
         idb_sigs)
  in
  let query = (List.nth idb_sigs (cfg.idb_preds - 1)).name in
  (Program.make ~query rules, edb_sigs)

let gen_edb rng cfg p edb_sigs =
  let used = Program.edb p in
  List.concat_map
    (fun (s : psig) ->
      if not (List.mem s.name used) then []
      else
        let n = 1 + Rng.int rng cfg.max_edb_facts in
        List.init n (fun _ ->
            Cql_eval.Fact.ground s.name
              (Array.to_list
                 (Array.map
                    (fun numeric ->
                      if numeric then Term.Num (Rat.of_int (Rng.int rng (cfg.const_range + 1)))
                      else Term.Sym (Rng.pick rng symbols))
                    s.types))))
    edb_sigs

exception Exhausted of { attempts : int }

let case ?(attempts = 20) rng cfg =
  let rec attempt n =
    if n = 0 then raise (Exhausted { attempts });
    let p, edb_sigs = gen_program rng cfg in
    match Program.check p with
    | Ok ()
      when Program.is_range_restricted p
           && (cfg.mode <> Decidable || Cql_core.Decidable.in_class p) ->
        (p, gen_edb rng cfg p edb_sigs)
    | _ -> attempt (n - 1)
  in
  attempt (max 1 attempts)

let program ?attempts rng cfg = fst (case ?attempts rng cfg)
