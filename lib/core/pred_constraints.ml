open Cql_constr
open Cql_datalog

module StringMap = Map.Make (String)

type result = { constraints : (string * Cset.t) list; iterations : int; converged : bool }

let find r pred =
  match List.assoc_opt pred r.constraints with Some c -> c | None -> Cset.tt

(* all ways to pick one disjunct per body literal *)
let rec disjunct_choices = function
  | [] -> [ [] ]
  | (lit, cset) :: rest ->
      let tails = disjunct_choices rest in
      List.concat_map
        (fun d -> List.map (fun tail -> (lit, d) :: tail) tails)
        (Cset.disjuncts cset)

let single_step (p : Program.t) (current : string -> Cset.t) : (string * Cset.t) list =
  let acc = ref StringMap.empty in
  let add pred cset =
    let prev = match StringMap.find_opt pred !acc with Some c -> c | None -> Cset.ff in
    acc := StringMap.add pred (Cset.or_ prev cset) !acc
  in
  List.iter
    (fun (r : Rule.t) ->
      let body_csets = List.map (fun (l : Literal.t) -> (l, current l.Literal.pred)) r.Rule.body in
      List.iter
        (fun choice ->
          let combined =
            List.fold_left
              (fun c (lit, d) -> Conj.and_ c (Ptol_ltop.ptol_conj lit d))
              r.Rule.cstr choice
          in
          if Conj.is_sat combined then
            let head_c = Ptol_ltop.ltop_conj r.Rule.head combined in
            add r.Rule.head.Literal.pred (Cset.of_conj head_c))
        (disjunct_choices body_csets))
    p.Program.rules;
  StringMap.bindings !acc

let gen ?(max_iters = 50) ?(edb_constraints = []) (p : Program.t) : result =
  let derived = Program.derived p in
  let lookup_edb name =
    match List.assoc_opt name edb_constraints with Some c -> c | None -> Cset.tt
  in
  let state = ref StringMap.empty in
  List.iter (fun d -> state := StringMap.add d Cset.ff !state) derived;
  let current name =
    match StringMap.find_opt name !state with Some c -> c | None -> lookup_edb name
  in
  let rec iterate i =
    if i > max_iters then (i - 1, false)
    else begin
      let changed =
        Cql_obs.Obs.span "pred.iteration" @@ fun () ->
        Cql_obs.Obs.add_field "iteration" i;
        let inferred = single_step p current in
        let changed = ref false in
        List.iter
          (fun (pred, c2) ->
            let c1 = current pred in
            if not (Cset.implies c2 c1) then begin
              changed := true;
              state := StringMap.add pred (Cset.or_ c1 c2) !state
            end)
          inferred;
        !changed
      in
      if changed then iterate (i + 1) else (i, true)
    end
  in
  let iterations, converged = iterate 1 in
  Cql_obs.Obs.add_field "iterations" iterations;
  Cql_obs.Obs.add_field_str "converged" (string_of_bool converged);
  let constraints =
    if converged then
      StringMap.bindings !state
      @ List.filter (fun (n, _) -> not (StringMap.mem n !state)) edb_constraints
    else
      (* sound fallback: true for every derived predicate (Section 4.2) *)
      List.map (fun d -> (d, Cset.tt)) derived @ edb_constraints
  in
  { constraints; iterations; converged }

let propagate (res : result) (p : Program.t) : Program.t =
  let rules =
    List.concat_map
      (fun (r : Rule.t) ->
        let body_csets =
          List.map (fun (l : Literal.t) -> (l, find res l.Literal.pred)) r.Rule.body
        in
        let copies =
          List.filter_map
            (fun choice ->
              let extra =
                List.fold_left
                  (fun c (lit, d) -> Conj.and_ c (Ptol_ltop.ptol_conj lit d))
                  Conj.tt choice
              in
              let cstr = Conj.and_ r.Rule.cstr extra in
              if Conj.is_sat cstr then Some { r with Rule.cstr } else None)
            (disjunct_choices body_csets)
        in
        match copies with
        | [] ->
            (* a rule whose body constraints became unsatisfiable derives
               nothing; drop it *)
            []
        | [ only ] -> [ only ]
        | many -> List.mapi (fun i c -> Rule.relabel (Printf.sprintf "%s_%d" r.Rule.label (i + 1)) c) many)
      p.Program.rules
  in
  { p with Program.rules }

let gen_prop ?max_iters ?edb_constraints p =
  let res = gen ?max_iters ?edb_constraints p in
  (propagate res p, res)
