open Cql_constr
open Cql_datalog

let definition ~primed ~orig ~arity cset =
  List.mapi
    (fun i disjunct ->
      let head = Literal.fresh_args primed arity in
      let body = [ { head with Literal.pred = orig } ] in
      let cstr = Ptol_ltop.ptol_conj head disjunct in
      Rule.make ~label:(Printf.sprintf "def_%s_%d" primed (i + 1)) head body cstr)
    (Cset.disjuncts cset)

(* remove the first occurrence (physical equality is enough: callers pass a
   literal taken from the body) *)
let remove_first lit body =
  let rec go acc = function
    | [] -> List.rev acc
    | l :: rest -> if l == lit then List.rev_append acc rest else go (l :: acc) rest
  in
  go [] body

let unfold_literal ~defs (r : Rule.t) (lit : Literal.t) : Rule.t list =
  List.filter_map
    (fun def ->
      let def = Rule.rename_apart def in
      match Subst.unify lit def.Rule.head with
      | None -> None
      | Some theta ->
          let body = remove_first lit r.Rule.body @ def.Rule.body in
          let cstr = Conj.and_ r.Rule.cstr def.Rule.cstr in
          (* a variable unified with a symbolic constant cannot appear in the
             numeric constraint; project it away — the same sound weakening
             as [Ptol_ltop.ptol_conj] — instead of dropping the resolvent
             (which would treat a satisfiable symbolic binding as false) *)
          let sym_bound =
            Var.Set.filter
              (fun v ->
                match Subst.apply_term theta (Term.V v) with
                | Term.C (Term.Sym _) -> true
                | _ -> false)
              (Conj.vars cstr)
          in
          let cstr =
            if Var.Set.is_empty sym_bound then cstr
            else Conj.project ~keep:(Var.Set.diff (Conj.vars cstr) sym_bound) cstr
          in
          let resolvent =
            Rule.apply theta (Rule.make ~label:r.Rule.label r.Rule.head body cstr)
          in
          if Conj.is_sat resolvent.Rule.cstr then Some resolvent else None)
    defs

let unfold_pred ~defs ~pred (r : Rule.t) : Rule.t list =
  let rec go (r : Rule.t) =
    match List.find_opt (fun (l : Literal.t) -> l.Literal.pred = pred) r.Rule.body with
    | None -> [ r ]
    | Some lit -> List.concat_map go (unfold_literal ~defs r lit)
  in
  go r

let fold_occurrences ?(check = true) ~primed ~orig cset (r : Rule.t) : Rule.t option =
  let ok = ref true in
  let body =
    List.map
      (fun (l : Literal.t) ->
        if l.Literal.pred <> orig then l
        else begin
          if check then begin
            let required = Ptol_ltop.ptol l cset in
            if not (Cset.conj_implies r.Rule.cstr required) then ok := false
          end;
          { l with Literal.pred = primed }
        end)
      r.Rule.body
  in
  if !ok then Some { r with Rule.body } else None
