open Cql_constr
open Cql_datalog

let magic_name pred = "m_" ^ pred

let is_magic pred = String.length pred > 2 && String.sub pred 0 2 = "m_"

(* constraints carried by a magic rule: the projection of the source rule's
   constraints onto the magic rule's variables (Section 7.2) *)
let magic_constraints (cstr : Conj.t) (lits : Literal.t list) =
  let keep =
    List.fold_left (fun acc l -> Var.Set.union acc (Literal.vars l)) Var.Set.empty lits
  in
  Conj.simplify (Conj.project ~keep cstr)

let templates_general ~magic_head (p : Program.t) : Program.t =
  let query =
    match p.Program.query with
    | Some q -> q
    | None -> invalid_arg "Magic: no query predicate"
  in
  let derived = Program.derived p in
  let rules = ref [] in
  let emit r = rules := r :: !rules in
  (* seed: a magic fact for the query predicate over fresh variables.  The
     query predicate can be absent entirely (every rule mentioning it deleted
     as unsatisfiable by an earlier rewrite); then there is nothing to seed
     and the query correctly computes no answers. *)
  (match Program.arity p query with
  | exception Not_found -> ()
  | n -> emit (Rule.fact ~label:"seed" (magic_head (Literal.fresh_args query n)) Conj.tt));
  List.iter
    (fun (r : Rule.t) ->
      let m_head_lit = magic_head r.Rule.head in
      (* modified original rule: guard with the head's magic literal *)
      emit
        { r with Rule.body = m_head_lit :: r.Rule.body };
      (* one magic rule per derived body literal, left-to-right sips: the
         magic literal of the head plus all body literals to the left *)
      let rec walk before = function
        | [] -> ()
        | (lit : Literal.t) :: rest ->
            if List.mem lit.Literal.pred derived then begin
              let body = m_head_lit :: List.rev before in
              let mhead = magic_head lit in
              let cstr = magic_constraints r.Rule.cstr (mhead :: body) in
              emit
                (Rule.make
                   ~label:("m" ^ r.Rule.label ^ "_" ^ string_of_int (List.length before + 1))
                   mhead body cstr)
            end;
            walk (lit :: before) rest
      in
      walk [] r.Rule.body)
    p.Program.rules;
  { Program.rules = List.rev !rules; Program.query = Some query }

let inline_seed (p : Program.t) : Program.t =
  match
    List.find_opt
      (fun (r : Rule.t) -> r.Rule.label = "seed" && Rule.is_fact r && Conj.is_tt r.Rule.cstr)
      p.Program.rules
  with
  | None -> p
  | Some seed ->
      let sname = seed.Rule.head.Literal.pred in
      let only_seed =
        List.for_all
          (fun (r : Rule.t) -> r.Rule.head.Literal.pred <> sname || r == seed)
          p.Program.rules
      in
      if not only_seed then p
      else
        let rules =
          List.filter_map
            (fun (r : Rule.t) ->
              if r == seed then None
              else
                Some
                  {
                    r with
                    Rule.body =
                      List.filter (fun (l : Literal.t) -> l.Literal.pred <> sname) r.Rule.body;
                  })
            p.Program.rules
        in
        { p with Program.rules = rules }

let templates_with_head ~magic_head p = templates_general ~magic_head p

let templates_complete (p : Program.t) : Program.t =
  let magic_head (l : Literal.t) = { l with Literal.pred = magic_name l.Literal.pred } in
  templates_general ~magic_head p

let templates_bf ?(constraint_magic = true) (p : Program.t) : Program.t =
  List.iter
    (fun d ->
      if Adorn.split_adorned d = None then
        invalid_arg (Printf.sprintf "Magic.templates_bf: predicate %s is not adorned" d))
    (Program.derived p);
  let magic_head (l : Literal.t) =
    match Adorn.split_adorned l.Literal.pred with
    | None -> invalid_arg (Printf.sprintf "Magic.templates_bf: %s is not adorned" l.Literal.pred)
    | Some (_, ad) ->
        Literal.make (magic_name l.Literal.pred) (Adorn.bound_args ad l.Literal.args)
  in
  let out = templates_general ~magic_head p in
  if constraint_magic then out
  else
    (* plain magic: drop the constraints of magic rules entirely (the
       paper's second option in Section 1, rule mr1') *)
    Program.map_rules
      (fun (r : Rule.t) ->
        if is_magic r.Rule.head.Literal.pred && r.Rule.label <> "seed" then
          { r with Rule.cstr = Conj.tt }
        else r)
      out
