open Cql_constr
open Cql_datalog

let split_bcf name =
  match String.rindex_opt name '_' with
  | None -> None
  | Some i ->
      let base = String.sub name 0 i in
      let ad = String.sub name (i + 1) (String.length name - i - 1) in
      if base <> "" && ad <> "" && String.for_all (fun c -> c = 'b' || c = 'c' || c = 'f') ad
      then Some (base, ad)
      else None

(* ----- bcf adornment ----- *)

(* extend (ground, conditioned) with single-unknown constraint atoms: an
   equality over ground variables grounds the unknown; any other constraint
   conditions it *)
let close_ground_cond (cstr : Conj.t) (g, c) =
  let rec go g c =
    let changed = ref false in
    let g = ref g and c = ref c in
    List.iter
      (fun (a : Atom.t) ->
        let known = Var.Set.union !g !c in
        let unknown = Var.Set.diff (Atom.vars a) known in
        if Var.Set.cardinal unknown = 1 then begin
          let v = Var.Set.choose unknown in
          if a.Atom.op = Atom.Eq && Var.Set.subset (Var.Set.diff (Atom.vars a) !g) (Var.Set.singleton v)
          then begin
            g := Var.Set.add v !g;
            changed := true
          end
          else if not (Var.Set.mem v !c) then begin
            c := Var.Set.add v !c;
            changed := true
          end
        end)
      (Conj.to_list cstr);
    if !changed then go !g !c else (!g, !c)
  in
  go g c

let adorn_rule_bcf derived (r : Rule.t) (head_ad : string) =
  let classify ad_char vars_at =
    List.concat
      (List.mapi
         (fun i t ->
           match t with
           | Term.V v when head_ad.[i] = ad_char -> [ v ]
           | _ -> [])
         vars_at)
  in
  let g0 = Var.Set.of_list (classify 'b' r.Rule.head.Literal.args) in
  let c0 = Var.Set.of_list (classify 'c' r.Rule.head.Literal.args) in
  let g, c = close_ground_cond r.Rule.cstr (g0, c0) in
  let ground = ref g and cond = ref c in
  let requested = ref [] in
  let body =
    List.map
      (fun (l : Literal.t) ->
        let l' =
          if List.mem l.Literal.pred derived then begin
            let ad =
              String.init (Literal.arity l) (fun i ->
                  match List.nth l.Literal.args i with
                  | Term.C _ -> 'b'
                  | Term.V v ->
                      if Var.Set.mem v !ground then 'b'
                      else if Var.Set.mem v !cond then 'c'
                      else 'f')
            in
            requested := (l.Literal.pred, ad) :: !requested;
            { l with Literal.pred = l.Literal.pred ^ "_" ^ ad }
          end
          else l
        in
        let g', c' =
          close_ground_cond r.Rule.cstr
            (Var.Set.union !ground (Literal.vars l), Var.Set.diff !cond (Literal.vars l))
        in
        ground := g';
        cond := c';
        l')
      r.Rule.body
  in
  let head = { r.Rule.head with Literal.pred = r.Rule.head.Literal.pred ^ "_" ^ head_ad } in
  ({ r with Rule.head; Rule.body }, List.rev !requested)

let adorn_bcf ~query_adornment (p : Program.t) : Program.t =
  let query =
    match p.Program.query with
    | Some q -> q
    | None -> invalid_arg "Gmt.adorn_bcf: no query predicate"
  in
  let derived = Program.derived p in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec process (pred, ad) =
    if not (Hashtbl.mem seen (pred, ad)) then begin
      Hashtbl.add seen (pred, ad) ();
      List.iter
        (fun r ->
          let r', requested = adorn_rule_bcf derived r ad in
          out := r' :: !out;
          List.iter process requested)
        (Program.rules_defining p pred)
    end
  in
  process (query, query_adornment);
  Program.make ~query:(query ^ "_" ^ query_adornment) (List.rev !out)

(* ----- groundability and grounding subgoals ----- *)

let conditioned_head_vars (r : Rule.t) =
  match split_bcf r.Rule.head.Literal.pred with
  | None -> Var.Set.empty
  | Some (_, ad) ->
      List.fold_left
        (fun acc (i, t) ->
          match t with
          | Term.V v when i < String.length ad && ad.[i] = 'c' -> Var.Set.add v acc
          | _ -> acc)
        Var.Set.empty
        (List.mapi (fun i t -> (i, t)) r.Rule.head.Literal.args)

let grounding_subgoals g (r : Rule.t) =
  let head_pred = r.Rule.head.Literal.pred in
  let chvars = conditioned_head_vars r in
  let gk_lits =
    List.filter
      (fun (l : Literal.t) ->
        (not (Magic.is_magic l.Literal.pred))
        && (not (Depgraph.recursive_with g head_pred l.Literal.pred))
        && not (Var.Set.is_empty (Var.Set.inter (Literal.vars l) chvars)))
      r.Rule.body
  in
  let gk_vars =
    List.fold_left (fun acc l -> Var.Set.union acc (Literal.vars l)) Var.Set.empty gk_lits
  in
  let gk_cstr =
    Conj.of_list
      (List.filter (fun a -> Var.Set.subset (Atom.vars a) gk_vars) (Conj.to_list r.Rule.cstr))
  in
  (gk_lits, gk_cstr)

let groundable (p : Program.t) =
  let g = Depgraph.of_program p in
  List.for_all
    (fun (r : Rule.t) ->
      let chvars = conditioned_head_vars r in
      let gk_lits, _ = grounding_subgoals g r in
      let covered =
        List.fold_left (fun acc l -> Var.Set.union acc (Literal.vars l)) Var.Set.empty gk_lits
      in
      Var.Set.subset chvars covered)
    p.Program.rules

(* ----- magic with grounding sips ----- *)

let reorder_grounding_sips (p : Program.t) =
  let g = Depgraph.of_program p in
  Program.map_rules
    (fun (r : Rule.t) ->
      if Var.Set.is_empty (conditioned_head_vars r) then r
      else
        let gk_lits, _ = grounding_subgoals g r in
        let is_gk l = List.exists (fun l' -> l' == l) gk_lits in
        let gk, rest = List.partition is_gk r.Rule.body in
        { r with Rule.body = gk @ rest })
    p

let magic (p : Program.t) : Program.t =
  let p = reorder_grounding_sips p in
  (* reuse the generic template engine with magic heads keeping b and c
     positions *)
  let magic_head (l : Literal.t) =
    match split_bcf l.Literal.pred with
    | None -> invalid_arg (Printf.sprintf "Gmt.magic: %s is not bcf-adorned" l.Literal.pred)
    | Some (_, ad) ->
        let args = List.filteri (fun i _ -> ad.[i] = 'b' || ad.[i] = 'c') l.Literal.args in
        Literal.make (Magic.magic_name l.Literal.pred) args
  in
  Magic.templates_with_head ~magic_head p

(* ----- the grounding step as fold/unfold (Section 6.2) ----- *)

(* one-way matching: only pattern variables may bind *)
let rec match_term (m : Term.t Var.Map.t) (pat : Term.t) (tgt : Term.t) =
  match pat with
  | Term.C c -> ( match tgt with Term.C c' when Term.equal_const c c' -> Some m | _ -> None)
  | Term.V v -> (
      match Var.Map.find_opt v m with
      | Some bound -> if Term.equal bound tgt then Some m else None
      | None -> Some (Var.Map.add v tgt m))

and match_literal m (pat : Literal.t) (tgt : Literal.t) =
  if pat.Literal.pred <> tgt.Literal.pred then None
  else if List.length pat.Literal.args <> List.length tgt.Literal.args then None
  else
    List.fold_left2
      (fun acc p t -> match acc with None -> None | Some m -> match_term m p t)
      (Some m) pat.Literal.args tgt.Literal.args

type defn = {
  s_lit : Literal.t;
  m_lit : Literal.t;
  gk_lits : Literal.t list;
  gk_cstr : Conj.t;
  defn_rule : Rule.t;
}

(* fold a definition into a rule: find a body occurrence of the magic
   literal plus instances of the grounding subgoals, and replace them by the
   supplementary literal *)
let try_fold (d : defn) (r : Rule.t) : Rule.t option =
  let rec find_occ seen = function
    | [] -> None
    | (occ : Literal.t) :: rest ->
        if occ.Literal.pred = d.m_lit.Literal.pred then
          match match_literal Var.Map.empty d.m_lit occ with
          | Some m -> (
              match match_gks m [] d.gk_lits (List.rev_append seen rest) with
              | Some (m, used) -> Some (occ, used, m)
              | None -> find_occ (occ :: seen) rest)
          | None -> find_occ (occ :: seen) rest
        else find_occ (occ :: seen) rest
  and match_gks m used gks available =
    match gks with
    | [] -> Some (m, used)
    | gk :: gks_rest ->
        let rec try_candidates seen = function
          | [] -> None
          | (cand : Literal.t) :: cands -> (
              match match_literal m gk cand with
              | Some m' -> (
                  match
                    match_gks m' (cand :: used) gks_rest (List.rev_append seen cands)
                  with
                  | Some res -> Some res
                  | None -> try_candidates (cand :: seen) cands)
              | None -> try_candidates (cand :: seen) cands)
        in
        try_candidates [] available
  in
  match find_occ [] r.Rule.body with
  | None -> None
  | Some (occ, used_gks, m) ->
      let subst = Subst.of_bindings (Var.Map.bindings m) in
      let s_inst = Subst.apply_literal subst d.s_lit in
      (* replace the magic occurrence by the supplementary literal; drop the
         matched grounding subgoals and their associated constraints *)
      let body =
        List.filter_map
          (fun (l : Literal.t) ->
            if l == occ then Some s_inst
            else if List.exists (fun u -> u == l) used_gks then None
            else Some l)
          r.Rule.body
      in
      let gk_atoms =
        match Subst.apply_conj subst d.gk_cstr with
        | c -> Conj.to_list c
        | exception Subst.Type_error _ -> []
      in
      let cstr =
        Conj.of_list
          (List.filter
             (fun a -> not (List.exists (Atom.equal a) gk_atoms))
             (Conj.to_list r.Rule.cstr))
      in
      Some { r with Rule.body; Rule.cstr }

let mentions_any preds (r : Rule.t) =
  List.exists (fun (l : Literal.t) -> List.mem l.Literal.pred preds) r.Rule.body

let ground_fold_unfold ~adorned (pmg : Program.t) : Program.t =
  let g = Depgraph.of_program adorned in
  let derived = Program.derived adorned in
  let sccs =
    List.filter
      (fun scc -> List.exists (fun pred -> List.mem pred derived) scc)
      (Depgraph.sccs_top_down g)
  in
  let rules = ref pmg.Program.rules in
  List.iter
    (fun scc ->
      let cpreds =
        List.filter
          (fun pred ->
            List.mem pred derived
            && match split_bcf pred with Some (_, ad) -> String.contains ad 'c' | None -> false)
          scc
      in
      if cpreds <> [] then begin
        let mnames = List.map Magic.magic_name cpreds in
        (* classify current rules *)
        let r_p, rest =
          List.partition
            (fun (r : Rule.t) -> List.mem r.Rule.head.Literal.pred cpreds)
            !rules
        in
        let m_defs, rest =
          List.partition (fun (r : Rule.t) -> List.mem r.Rule.head.Literal.pred mnames) rest
        in
        let r_m_lower, untouched =
          List.partition
            (fun (r : Rule.t) ->
              Magic.is_magic r.Rule.head.Literal.pred && mentions_any mnames r)
            rest
        in
        (* definition step: one supplementary predicate per rule of a
           conditioned predicate *)
        let defns =
          List.mapi
            (fun k (r : Rule.t) ->
              match r.Rule.body with
              | (m_lit : Literal.t) :: body_rest when List.mem m_lit.Literal.pred mnames ->
                  let gk_lits, gk_cstr =
                    grounding_subgoals g
                      { r with Rule.body = body_rest; Rule.head = r.Rule.head }
                  in
                  (* head pred of the adorned rule for recursion checks uses
                     the adorned name, which r retains *)
                  let nk_lits = List.filter (fun l -> not (List.memq l gk_lits)) body_rest in
                  let gk_vars =
                    List.fold_left
                      (fun acc l -> Var.Set.union acc (Literal.vars l))
                      (Literal.vars m_lit) gk_lits
                  in
                  let later_vars =
                    List.fold_left
                      (fun acc l -> Var.Set.union acc (Literal.vars l))
                      (Literal.vars r.Rule.head) nk_lits
                  in
                  let later_vars =
                    List.fold_left
                      (fun acc a ->
                        if List.exists (Atom.equal a) (Conj.to_list gk_cstr) then acc
                        else Var.Set.union acc (Atom.vars a))
                      later_vars (Conj.to_list r.Rule.cstr)
                  in
                  let s_args = Var.Set.elements (Var.Set.inter gk_vars later_vars) in
                  let s_name =
                    Printf.sprintf "s_%d_%s" (k + 1) r.Rule.head.Literal.pred
                  in
                  let s_lit = Literal.of_vars s_name s_args in
                  let defn_rule =
                    Rule.make ~label:("def_" ^ s_name) s_lit (m_lit :: gk_lits) gk_cstr
                  in
                  Some ({ s_lit; m_lit; gk_lits; gk_cstr; defn_rule }, r)
              | _ -> None)
            r_p
        in
        let defns_ok = List.filter_map (fun x -> x) defns in
        let plain_rp =
          (* rules without a leading conditioned magic guard are left alone *)
          List.filter
            (fun (r : Rule.t) ->
              not (List.exists (fun (_, r') -> r' == r) defns_ok))
            r_p
        in
        (* unfold step: resolve the magic occurrence of each definition rule
           and each lower magic rule against the rules defining the magic
           predicates (one level) *)
        let unfold_once (r : Rule.t) =
          match
            List.find_opt
              (fun (l : Literal.t) -> List.mem l.Literal.pred mnames)
              r.Rule.body
          with
          | None -> [ r ]
          | Some occ -> Foldunfold.unfold_literal ~defs:m_defs r occ
        in
        let r_unf =
          List.concat_map unfold_once (List.map (fun (d, _) -> d.defn_rule) defns_ok)
          @ List.concat_map unfold_once r_m_lower
        in
        let r_mg_unf, r_clean = List.partition (mentions_any mnames) r_unf in
        (* fold step *)
        let ds = List.map fst defns_ok in
        let fold_rule (r : Rule.t) =
          let rec go r = function
            | [] -> r
            | d :: rest -> (
                match try_fold d r with Some r' -> go r' ds | None -> go r rest)
          in
          if mentions_any mnames r then go r ds else r
        in
        let folded_rp =
          List.map
            (fun (d, (r : Rule.t)) ->
              (* by construction the rule's own definition folds exactly *)
              match try_fold d r with Some r' -> r' | None -> fold_rule r)
            defns_ok
        in
        let folded_unf = List.map fold_rule r_mg_unf in
        rules := untouched @ plain_rp @ folded_rp @ folded_unf @ r_clean
      end)
    sccs;
  { pmg with Program.rules = !rules }

let pipeline ~query_adornment (p : Program.t) : Program.t =
  let module Obs = Cql_obs.Obs in
  Obs.span "gmt.pipeline" @@ fun () ->
  let adorned = Obs.span "gmt.adorn_bcf" (fun () -> adorn_bcf ~query_adornment p) in
  if not (groundable adorned) then
    invalid_arg "Gmt.pipeline: the adorned program is not groundable (Definition 6.1)";
  let pmg = Obs.span "gmt.magic" (fun () -> magic adorned) in
  let folded = Obs.span "gmt.fold_unfold" (fun () -> ground_fold_unfold ~adorned pmg) in
  Obs.span "gmt.inline_seed" (fun () -> Magic.inline_seed folded)
