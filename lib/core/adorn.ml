open Cql_constr
open Cql_datalog

type adornment = string

let adorned_name pred ad = pred ^ "_" ^ ad

let split_adorned name =
  match String.rindex_opt name '_' with
  | None -> None
  | Some i ->
      let base = String.sub name 0 i in
      let ad = String.sub name (i + 1) (String.length name - i - 1) in
      if base <> "" && ad <> "" && String.for_all (fun c -> c = 'b' || c = 'f') ad then
        Some (base, ad)
      else None

let all_free n = String.make n 'f'
let all_bound n = String.make n 'b'

let bound_args ad args =
  if String.length ad <> List.length args then
    invalid_arg "Adorn.bound_args: adornment/arity mismatch";
  List.filteri (fun i _ -> ad.[i] = 'b') args

let literal_adornment ~bound (l : Literal.t) =
  String.init (Literal.arity l) (fun i ->
      match List.nth l.Literal.args i with
      | Term.C _ -> 'b'
      | Term.V v -> if Var.Set.mem v bound then 'b' else 'f')

(* ground-variable closure: bound head vars + vars of processed literals,
   closed under equality constraints with one unknown *)
let close_ground (cstr : Conj.t) vars =
  let rec go g =
    let grow =
      List.fold_left
        (fun acc (a : Atom.t) ->
          if a.Atom.op <> Atom.Eq then acc
          else
            let unknown = Var.Set.diff (Atom.vars a) g in
            if Var.Set.cardinal unknown = 1 then Var.Set.union acc unknown else acc)
        Var.Set.empty (Conj.to_list cstr)
    in
    if Var.Set.subset grow g then g else go (Var.Set.union g grow)
  in
  go vars

let adorn_rule derived (r : Rule.t) (head_ad : adornment) : Rule.t * (string * adornment) list
    =
  let head_bound =
    List.concat
      (List.mapi
         (fun i t ->
           match t with Term.V v when head_ad.[i] = 'b' -> [ v ] | _ -> [])
         r.Rule.head.Literal.args)
  in
  let bound = ref (close_ground r.Rule.cstr (Var.Set.of_list head_bound)) in
  let requested = ref [] in
  let body =
    List.map
      (fun (l : Literal.t) ->
        let l' =
          if List.mem l.Literal.pred derived then begin
            let ad = literal_adornment ~bound:!bound l in
            requested := (l.Literal.pred, ad) :: !requested;
            { l with Literal.pred = adorned_name l.Literal.pred ad }
          end
          else l
        in
        bound := close_ground r.Rule.cstr (Var.Set.union !bound (Literal.vars l));
        l')
      r.Rule.body
  in
  let head = { r.Rule.head with Literal.pred = adorned_name r.Rule.head.Literal.pred head_ad } in
  ({ r with Rule.head; Rule.body }, List.rev !requested)

let program ~query_adornment (p : Program.t) : Program.t =
  let query =
    match p.Program.query with
    | Some q -> q
    | None -> invalid_arg "Adorn.program: no query predicate"
  in
  (match Program.arity p query with
  | exception Not_found ->
      (* the query predicate occurs nowhere (e.g. every rule mentioning it
         was deleted as unsatisfiable by an earlier rewrite): nothing to
         adorn, the result below is the empty program *)
      ()
  | n ->
      if String.length query_adornment <> n then
        invalid_arg "Adorn.program: adornment length does not match query arity");
  let derived = Program.derived p in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec process (pred, ad) =
    if not (Hashtbl.mem seen (pred, ad)) then begin
      Hashtbl.add seen (pred, ad) ();
      List.iter
        (fun r ->
          let r', requested = adorn_rule derived r ad in
          out := r' :: !out;
          List.iter process requested)
        (Program.rules_defining p pred)
    end
  in
  process (query, query_adornment);
  Program.make ~query:(adorned_name query query_adornment) (List.rev !out)
