open Cql_constr
open Cql_datalog

module StringMap = Map.Make (String)

type result = { constraints : (string * Cset.t) list; iterations : int; converged : bool }

let find r pred =
  match List.assoc_opt pred r.constraints with Some c -> c | None -> Cset.tt

let literal_constraint ~head_ptol ~rule_cstr (lit : Literal.t) =
  Ptol_ltop.ltop_conj lit (Conj.and_ head_ptol rule_cstr)

(* the Balbin-style inference keeps only syntactically local atoms *)
let literal_constraint_syntactic ~head_ptol ~rule_cstr (lit : Literal.t) =
  let lit_vars = Literal.vars lit in
  let local c =
    Conj.of_list
      (List.filter (fun a -> Var.Set.subset (Atom.vars a) lit_vars) (Conj.to_list c))
  in
  Ptol_ltop.ltop_conj lit (Conj.and_ (local head_ptol) (local rule_cstr))

let gen_with ~literal_constraint ?(max_iters = 50) (p : Program.t) : result =
  let query =
    match p.Program.query with
    | Some q -> q
    | None -> invalid_arg "Qrp.gen: program has no query predicate"
  in
  let derived = Program.derived p in
  let state = ref StringMap.empty in
  List.iter
    (fun d -> state := StringMap.add d (if d = query then Cset.tt else Cset.ff) !state)
    derived;
  let current name =
    match StringMap.find_opt name !state with Some c -> c | None -> Cset.tt
  in
  let step () =
    (* C2: disjunction of LTOPs of literal constraints inferred this pass *)
    let c2 = ref StringMap.empty in
    let add pred c =
      if StringMap.mem pred !state then begin
        let prev = match StringMap.find_opt pred !c2 with Some x -> x | None -> Cset.ff in
        c2 := StringMap.add pred (Cset.or_ prev (Cset.of_conj c)) !c2
      end
    in
    List.iter
      (fun (r : Rule.t) ->
        let head_cset = current r.Rule.head.Literal.pred in
        List.iter
          (fun d ->
            let head_ptol = Ptol_ltop.ptol_conj r.Rule.head d in
            if Conj.is_sat (Conj.and_ head_ptol r.Rule.cstr) then
              List.iter
                (fun (lit : Literal.t) ->
                  add lit.Literal.pred
                    (literal_constraint ~head_ptol ~rule_cstr:r.Rule.cstr lit))
                r.Rule.body)
          (Cset.disjuncts head_cset))
      p.Program.rules;
    !c2
  in
  let rec iterate i =
    if i > max_iters then (i - 1, false)
    else begin
      let changed =
        Cql_obs.Obs.span "qrp.iteration" @@ fun () ->
        Cql_obs.Obs.add_field "iteration" i;
        let c2 = step () in
        let changed = ref false in
        StringMap.iter
          (fun pred c2p ->
            let c1 = current pred in
            if not (Cset.implies c2p c1) then begin
              changed := true;
              state := StringMap.add pred (Cset.or_ c1 c2p) !state
            end)
          c2;
        !changed
      in
      if changed then iterate (i + 1) else (i, true)
    end
  in
  let iterations, converged = iterate 1 in
  Cql_obs.Obs.add_field "iterations" iterations;
  Cql_obs.Obs.add_field_str "converged" (string_of_bool converged);
  let constraints =
    if converged then StringMap.bindings !state
    else List.map (fun d -> (d, Cset.tt)) derived
  in
  { constraints; iterations; converged }

let gen ?max_iters p = gen_with ~literal_constraint ?max_iters p

let gen_syntactic ?max_iters p =
  gen_with ~literal_constraint:literal_constraint_syntactic ?max_iters p

(* keep adorned names parseable: flight_bbff primes to flight'_bbff *)
let primed_name ~suffix name =
  match Adorn.split_adorned name with
  | Some (base, ad) -> Adorn.adorned_name (base ^ suffix) ad
  | None -> name ^ suffix

let propagate ?(primed_suffix = "'") (res : result) (p : Program.t) : Program.t =
  let query = p.Program.query in
  let to_prime =
    List.filter
      (fun (pred, cset) ->
        Some pred <> query && (not (Cset.is_tt cset)) && not (Cset.is_ff cset))
      res.constraints
  in
  (* 1+2: definition steps, then unfold the definition of p into the rules
     defining p' *)
  let primed_rules =
    Cql_obs.Obs.span "qrp.unfold" @@ fun () ->
    Cql_obs.Obs.add_field "predicates" (List.length to_prime);
    List.concat_map
      (fun (pred, cset) ->
        let primed = primed_name ~suffix:primed_suffix pred in
        let arity = Program.arity p pred in
        let defs = Foldunfold.definition ~primed ~orig:pred ~arity cset in
        let orig_rules = Program.rules_defining p pred in
        List.concat
          (List.mapi
             (fun j def ->
               (* unfold against one original rule at a time so each
                  resolvent can carry that rule's label *)
               List.concat_map
                 (fun (orig : Rule.t) ->
                   List.map
                     (Rule.relabel
                        (Printf.sprintf "%s%s%d" orig.Rule.label primed_suffix (j + 1)))
                     (Foldunfold.unfold_literal ~defs:[ orig ] def (List.hd def.Rule.body)))
                 orig_rules)
             defs))
      to_prime
  in
  (* 3: fold p into p' in every rule (new primed rules and surviving
     original rules alike) *)
  let fold_all (r : Rule.t) =
    List.fold_left
      (fun r (pred, cset) ->
        let primed = primed_name ~suffix:primed_suffix pred in
        match Foldunfold.fold_occurrences ~primed ~orig:pred cset r with
        | Some r' -> r'
        | None -> r (* fold condition failed: keep the unfolded occurrence *))
      r to_prime
  in
  let all_rules =
    Cql_obs.Obs.span "qrp.fold" (fun () ->
        List.map fold_all (p.Program.rules @ primed_rules))
  in
  let p' = { p with Program.rules = all_rules } in
  Program.dedup_rules (Program.restrict_reachable p')

let gen_prop ?max_iters p =
  let res = gen ?max_iters p in
  (propagate res p, res)
