open Cql_datalog
module Obs = Cql_obs.Obs

type step =
  | Pred
  | Qrp
  | Magic of { adornment : string; constraint_magic : bool }
  | Magic_complete

type report = {
  pred_constraints : Pred_constraints.result option;
  qrp_constraints : Qrp.result option;
}

let empty_report = { pred_constraints = None; qrp_constraints = None }

let is_adorned (p : Program.t) =
  match p.Program.query with
  | Some q -> Adorn.split_adorned q <> None
  | None -> false

let apply_step ?max_iters ?edb_constraints (p, report) = function
  | Pred ->
      let p', res =
        Obs.span "rewrite.pred_constraints" (fun () ->
            Pred_constraints.gen_prop ?max_iters ?edb_constraints p)
      in
      (p', { report with pred_constraints = Some res })
  | Qrp ->
      let res = Obs.span "rewrite.qrp.gen" (fun () -> Qrp.gen ?max_iters p) in
      let p' = Obs.span "rewrite.qrp.propagate" (fun () -> Qrp.propagate res p) in
      (p', { report with qrp_constraints = Some res })
  | Magic { adornment; constraint_magic } ->
      Obs.span "rewrite.magic" (fun () ->
          let adorned =
            if is_adorned p then p else Adorn.program ~query_adornment:adornment p
          in
          (Magic.templates_bf ~constraint_magic adorned, report))
  | Magic_complete ->
      Obs.span "rewrite.magic_complete" (fun () -> (Magic.templates_complete p, report))

let sequence ?max_iters ?edb_constraints steps p =
  List.fold_left (apply_step ?max_iters ?edb_constraints) (p, empty_report) steps

let constraint_rewrite ?max_iters ?edb_constraints (p : Program.t) =
  Obs.span "rewrite.constraint_rewrite" @@ fun () ->
  let q =
    match p.Program.query with
    | Some q -> q
    | None -> invalid_arg "Rewrite.constraint_rewrite: no query predicate"
  in
  Obs.add_field "rules" (List.length p.Program.rules);
  (* auxiliary query rule q1(X̄) :- q(X̄) so that q itself gets a QRP
     constraint inferred from its uses (Section 4.5) *)
  let aux_body = Literal.fresh_args q (Program.arity p q) in
  let p1, aux = Program.with_query_rule p [ aux_body ] Cql_constr.Conj.tt in
  let p2, pres =
    Obs.span "rewrite.pred_constraints" (fun () ->
        Pred_constraints.gen_prop ?max_iters ?edb_constraints p1)
  in
  let qres = Obs.span "rewrite.qrp.gen" (fun () -> Qrp.gen ?max_iters p2) in
  let p3 = Obs.span "rewrite.qrp.propagate" (fun () -> Qrp.propagate qres p2) in
  (* delete the auxiliary rules and restore the query predicate's name *)
  let rules =
    List.filter (fun (r : Rule.t) -> r.Rule.head.Literal.pred <> aux) p3.Program.rules
  in
  let primed = Qrp.primed_name ~suffix:"'" q in
  let p4 = Program.make ~query:q rules in
  let p4 =
    if Program.is_derived p4 primed && not (Program.is_derived p4 q) then
      Program.set_query q (Program.rename_predicate ~old_name:primed ~new_name:q p4)
    else if Program.is_derived p4 primed then Program.set_query primed p4
    else p4
  in
  (p4, { pred_constraints = Some pres; qrp_constraints = Some qres })

let optimal ?max_iters ?edb_constraints ~adornment p =
  let adorned = if is_adorned p then p else Adorn.program ~query_adornment:adornment p in
  let p1, report = constraint_rewrite ?max_iters ?edb_constraints adorned in
  (Obs.span "rewrite.magic" (fun () -> Magic.templates_bf ~constraint_magic:true p1), report)

let balbin ?max_iters ~adornment p =
  let adorned = if is_adorned p then p else Adorn.program ~query_adornment:adornment p in
  let res = Obs.span "rewrite.qrp.gen" (fun () -> Qrp.gen_syntactic ?max_iters adorned) in
  let p1 = Obs.span "rewrite.qrp.propagate" (fun () -> Qrp.propagate res adorned) in
  let p2 = Obs.span "rewrite.magic" (fun () -> Magic.templates_bf ~constraint_magic:true p1) in
  (p2, { empty_report with qrp_constraints = Some res })
