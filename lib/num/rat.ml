(* Canonical fractions: den > 0, gcd (|num|, den) = 1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let make num den =
  if B.is_zero den then raise Division_by_zero;
  let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
  if B.is_zero num then { num = B.zero; den = B.one }
  else
    let g = B.gcd num den in
    if B.is_one g then { num; den } else { num = B.div num g; den = B.div den g }

let of_bigint n = { num = n; den = B.one }
let of_int n = of_bigint (B.of_int n)
let of_ints a b = make (B.of_int a) (B.of_int b)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let num x = x.num
let den x = x.den
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num
let is_integer x = B.is_one x.den

(* integers (den = 1) dominate evaluator arithmetic: comparing, adding and
   multiplying them must not pay for cross-multiplication or reduction —
   the canonical forms below are exactly what the general path produces *)
let compare a b =
  if B.is_one a.den && B.is_one b.den then B.compare a.num b.num
  else B.compare (B.mul a.num b.den) (B.mul b.num a.den)
let equal a b = B.equal a.num b.num && B.equal a.den b.den
let hash x = (B.hash x.num * 65599) lxor B.hash x.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }

let add a b =
  if B.is_one a.den && B.is_one b.den then { num = B.add a.num b.num; den = B.one }
  else make (B.add (B.mul a.num b.den) (B.mul b.num a.den)) (B.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  if B.is_one a.den && B.is_one b.den then { num = B.mul a.num b.num; den = B.one }
  else make (B.mul a.num b.num) (B.mul a.den b.den)

let inv x =
  if is_zero x then raise Division_by_zero;
  make x.den x.num

let div a b = mul a (inv b)

let to_string x =
  if is_integer x then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
      let n = B.of_string (String.sub s 0 i) in
      let d = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      make n d
  | None -> (
      match String.index_opt s '.' with
      | None -> of_bigint (B.of_string s)
      | Some i ->
          let int_part = String.sub s 0 i in
          let frac = String.sub s (i + 1) (String.length s - i - 1) in
          if String.length frac = 0 then invalid_arg "Rat.of_string: trailing dot";
          let negative = String.length int_part > 0 && int_part.[0] = '-' in
          let whole =
            if String.length int_part = 0 || int_part = "-" || int_part = "+" then B.zero
            else B.of_string int_part
          in
          let digits = B.of_string frac in
          let scale = B.pow (B.of_int 10) (String.length frac) in
          let frac_part = make digits scale in
          let frac_part = if negative then neg frac_part else frac_part in
          add (of_bigint whole) frac_part)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
