(* Sign-magnitude arbitrary-precision integers.
   mag is little-endian in base 2^30 with no leading zero limb;
   sign is 0 exactly when mag is empty. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ----- magnitude helpers ----- *)

let mag_normalize a =
  let n = Array.length a in
  let rec top i = if i >= 0 && a.(i) = 0 then top (i - 1) else i in
  let t = top (n - 1) in
  if t = n - 1 then a else Array.sub a 0 (t + 1)

let mag_is_zero a = Array.length a = 0

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  mag_normalize r

(* requires a >= b *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj <= (2^30-1)^2 < 2^60; adding r and carry stays below 2^62 *)
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    mag_normalize r
  end

let mag_bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else
    let top = a.(n - 1) in
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + bits top 0

let mag_get_bit a i =
  let limb = i / base_bits and off = i mod base_bits in
  if limb >= Array.length a then 0 else (a.(limb) lsr off) land 1

(* Magnitudes of at most two limbs fit a nonnegative 60-bit native int:
   the workhorse fast path for division and gcd (almost every value the
   evaluator touches is a small constant or a reduced fraction of one). *)
let mag_small a =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some ((a.(1) lsl base_bits) lor a.(0))
  | _ -> None

let mag_of_small v =
  if v = 0 then [||] else if v < base then [| v |] else [| v land mask; v lsr base_bits |]

(* small ops: d must satisfy 0 < d < 2^31 *)
let mag_divmod_small a d =
  let n = Array.length a in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (mag_normalize q, !rem)

(* Binary long division on magnitudes: returns (quotient, remainder). *)
let rec mag_divmod a b =
  if mag_is_zero b then raise Division_by_zero;
  match (mag_small a, mag_small b) with
  | Some x, Some y -> (mag_of_small (x / y), mag_of_small (x mod y))
  | _ ->
      if Array.length b = 1 then
        let q, r = mag_divmod_small a b.(0) in
        (q, mag_of_small r)
      else mag_divmod_large a b

and mag_divmod_large a b =
  let cmp = mag_compare a b in
  if cmp < 0 then ([||], a)
  else if cmp = 0 then ([| 1 |], [||])
  else begin
    let abits = mag_bit_length a in
    let la = Array.length a in
    let q = Array.make la 0 in
    (* remainder buffer: enough limbs for b plus one *)
    let rlen = Array.length b + 1 in
    let r = Array.make (rlen + 1) 0 in
    let shift_in bit =
      (* r := (r << 1) | bit *)
      let carry = ref bit in
      for i = 0 to rlen do
        let v = (r.(i) lsl 1) lor !carry in
        r.(i) <- v land mask;
        carry := v lsr base_bits
      done
    in
    let r_ge_b () =
      let rec go i =
        if i < 0 then true
        else
          let rv = if i <= rlen then r.(i) else 0
          and bv = if i < Array.length b then b.(i) else 0 in
          if rv <> bv then rv > bv else go (i - 1)
      in
      go rlen
    in
    let r_sub_b () =
      let borrow = ref 0 in
      for i = 0 to rlen do
        let bv = if i < Array.length b then b.(i) else 0 in
        let s = r.(i) - bv - !borrow in
        if s < 0 then begin
          r.(i) <- s + base;
          borrow := 1
        end else begin
          r.(i) <- s;
          borrow := 0
        end
      done
    in
    for i = abits - 1 downto 0 do
      shift_in (mag_get_bit a i);
      if r_ge_b () then begin
        r_sub_b ();
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    (mag_normalize q, mag_normalize (Array.sub r 0 (rlen + 1)))
  end


let mag_mul_small_add a m add =
  let n = Array.length a in
  let r = Array.make (n + 2) 0 in
  let carry = ref add in
  for i = 0 to n - 1 do
    let s = (a.(i) * m) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  let i = ref n in
  while !carry <> 0 do
    r.(!i) <- !carry land mask;
    carry := !carry lsr base_bits;
    incr i
  done;
  mag_normalize r

(* ----- signed layer ----- *)

let make sign mag =
  let mag = mag_normalize mag in
  if mag_is_zero mag then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n > 0 then 1 else -1 in
    (* min_int negation overflows; go through three limbs of abs value *)
    let v = if n = Stdlib.min_int then n else Stdlib.abs n in
    let v0 = v land mask
    and v1 = (v lsr base_bits) land mask
    and v2 = (v lsr (2 * base_bits)) land 7 in
    make sign [| v0; v1; v2 |]
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0
let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0

(* [is_one] guards the reduction in [Rat.make] on every arithmetic result,
   so it must not pay for a generic magnitude comparison *)
let is_one x = x.sign = 1 && Array.length x.mag = 1 && Stdlib.( = ) x.mag.(0) 1
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash x = Array.fold_left (fun h l -> (h * 1000003) lxor l) x.sign x.mag

(* signed value from a native int with |v| < 2^60 *)
let of_small_signed v =
  if v = 0 then zero
  else if v > 0 then { sign = 1; mag = mag_of_small v }
  else { sign = -1; mag = mag_of_small (-v) }

(* single-limb magnitude as a native int, for the add/mul fast paths below
   (two-limb sums could carry past what [mag_of_small] represents) *)
let mag_small1 a =
  match Array.length a with 0 -> Some 0 | 1 -> Some a.(0) | _ -> None

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else
    match (mag_small1 a.mag, mag_small1 b.mag) with
    | Some x, Some y ->
        (* |x|, |y| < 2^30: the signed sum is exact in a native int *)
        of_small_signed ((a.sign * x) + (b.sign * y))
    | _ ->
        if a.sign = b.sign then { sign = a.sign; mag = mag_add a.mag b.mag }
        else
          let c = mag_compare a.mag b.mag in
          if c = 0 then zero
          else if c > 0 then { sign = a.sign; mag = mag_sub a.mag b.mag }
          else { sign = b.sign; mag = mag_sub b.mag a.mag }

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else
    match (mag_small1 a.mag, mag_small1 b.mag) with
    | Some x, Some y ->
        (* x*y < 2^60 fits [mag_of_small] *)
        { sign = a.sign * b.sign; mag = mag_of_small (x * y) }
    | _ -> { sign = a.sign * b.sign; mag = mag_mul a.mag b.mag }

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mag_divmod a.mag b.mag in
  (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd_small x y = if y = 0 then x else gcd_small y (x mod y)

let rec gcd_mag a b =
  if mag_is_zero b then a
  else
    match (mag_small a, mag_small b) with
    | Some x, Some y -> mag_of_small (gcd_small x y)
    | _ -> gcd_mag b (snd (mag_divmod a b))

let gcd a b = make 1 (gcd_mag a.mag b.mag)

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero
  else
    let g = gcd a b in
    abs (mul (div a g) b)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
  in
  go one x n

let to_int_opt x =
  (* valid when |x| <= max_int (also accept min_int exactly) *)
  let n = Array.length x.mag in
  if n = 0 then Some 0
  else if n > 3 then None
  else begin
    let v0 = x.mag.(0)
    and v1 = if n > 1 then x.mag.(1) else 0
    and v2 = if n > 2 then x.mag.(2) else 0 in
    if v2 > 4 then None
    else if v2 = 4 then
      (* magnitude 2^62 fits only as min_int *)
      if v1 = 0 && v0 = 0 && x.sign < 0 then Some Stdlib.min_int else None
    else
      let v = (v2 lsl (2 * base_bits)) lor (v1 lsl base_bits) lor v0 in
      Some (if x.sign < 0 then -v else v)
  end

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: out of native int range"

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec chunks mag acc =
      if mag_is_zero mag then acc
      else
        let q, r = mag_divmod_small mag 1_000_000_000 in
        chunks q (r :: acc)
    in
    (match chunks x.mag [] with
    | [] -> assert false
    | first :: rest ->
        if x.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let mag = ref [||] in
  let i = ref start in
  while !i < len do
    let stop = Stdlib.min len (!i + 9) in
    let chunk_len = stop - !i in
    let chunk = ref 0 in
    for j = !i to stop - 1 do
      match s.[j] with
      | '0' .. '9' -> chunk := (!chunk * 10) + (Char.code s.[j] - Char.code '0')
      | c -> invalid_arg (Printf.sprintf "Bigint.of_string: bad character %C" c)
    done;
    let scale =
      let rec p acc k = if k = 0 then acc else p (acc * 10) (k - 1) in
      p 1 chunk_len
    in
    mag := mag_mul_small_add !mag scale !chunk;
    i := stop
  done;
  make sign !mag

let pp fmt x = Format.pp_print_string fmt (to_string x)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
