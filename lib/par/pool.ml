type batch = {
  run : int -> unit;  (* run task [i]; must not raise *)
  n : int;
  next : int Atomic.t;  (* shared claim cursor *)
  chunk : int;
  left : int Atomic.t;  (* tasks not yet finished *)
}

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t;  (* signalled when work is published or on stop *)
  done_ : Condition.t;  (* signalled when a batch fully drains *)
  mutable batch : batch option;
  mutable generation : int;
  queue : (unit -> unit) Queue.t;  (* independent submitted jobs *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

type 'a job = {
  jm : Mutex.t;
  jc : Condition.t;
  mutable result : 'a outcome option;  (* [None] while the job is pending *)
}

let recommended_jobs () = Domain.recommended_domain_count ()

(* Claim chunks of tasks off [b.next] until the cursor passes [b.n].
   Decrementing [b.left] by the number of tasks actually run lets the
   last finisher detect completion and wake the caller. *)
let drain t b =
  let rec loop () =
    let lo = Atomic.fetch_and_add b.next b.chunk in
    if lo < b.n then begin
      let hi = min b.n (lo + b.chunk) in
      for i = lo to hi - 1 do
        b.run i
      done;
      let remaining = Atomic.fetch_and_add b.left (lo - hi) + (lo - hi) in
      if remaining = 0 then begin
        Mutex.lock t.m;
        Condition.broadcast t.done_;
        Mutex.unlock t.m
      end;
      loop ()
    end
  in
  loop ()

(* Run one submitted job closure.  The closure owns its exceptions (it
   stores them into the job cell), so a raise here is a bug. *)
let run_job f = f ()

(* Workers serve two kinds of work: [map] batches (all workers cooperate on
   one batch, signalled by a generation bump) and independent submitted jobs
   (each popped and run by a single worker).  Batches take priority so a
   parallel evaluation round is never starved by queued jobs. *)
let worker t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.m;
    while (not t.stop) && t.generation = !seen && Queue.is_empty t.queue do
      Condition.wait t.work t.m
    done;
    if t.stop then Mutex.unlock t.m
    else if t.generation <> !seen then begin
      seen := t.generation;
      let b = t.batch in
      Mutex.unlock t.m;
      (match b with Some b -> drain t b | None -> ());
      loop ()
    end
    else begin
      let f = Queue.pop t.queue in
      Mutex.unlock t.m;
      run_job f;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      batch = None;
      generation = 0;
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let map t f xs =
  let n = Array.length xs in
  if t.stop then invalid_arg "Pool.map: pool is shut down";
  if t.jobs <= 1 || n <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let failure = Atomic.make None in
    let run i =
      if Atomic.get failure = None then
        match f xs.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            (* first failure wins; later tasks are skipped, not run *)
            ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    let chunk = max 1 (n / (t.jobs * 4)) in
    let b = { run; n; next = Atomic.make 0; chunk; left = Atomic.make n } in
    Mutex.lock t.m;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    (* the caller participates as the jobs-th worker *)
    drain t b;
    Mutex.lock t.m;
    while Atomic.get b.left > 0 do
      Condition.wait t.done_ t.m
    done;
    t.batch <- None;
    Mutex.unlock t.m;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function
            | Some v -> v
            | None -> assert false (* only reachable after a failure *))
          results
  end

(* ----- independent jobs ----- *)

let fulfill j outcome =
  Mutex.lock j.jm;
  j.result <- Some outcome;
  Condition.broadcast j.jc;
  Mutex.unlock j.jm

let submit t f =
  if t.stop then invalid_arg "Pool.submit: pool is shut down";
  let j = { jm = Mutex.create (); jc = Condition.create (); result = None } in
  let closure () =
    match f () with
    | v -> fulfill j (Value v)
    | exception e -> fulfill j (Raised (e, Printexc.get_raw_backtrace ()))
  in
  if t.jobs <= 1 then run_job closure
  else begin
    Mutex.lock t.m;
    Queue.push closure t.queue;
    Condition.broadcast t.work;
    Mutex.unlock t.m
  end;
  j

let is_done j =
  Mutex.lock j.jm;
  let r = j.result <> None in
  Mutex.unlock j.jm;
  r

let await j =
  Mutex.lock j.jm;
  while j.result = None do
    Condition.wait j.jc j.jm
  done;
  let r = j.result in
  Mutex.unlock j.jm;
  match r with
  | Some (Value v) -> v
  | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None -> assert false

let run t f = await (submit t f)

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- [];
    (* a worker that had already popped a job finished it before joining;
       jobs still queued run here so no [await] is left hanging *)
    let rec drain_queue () =
      match Queue.pop t.queue with
      | f ->
          run_job f;
          drain_queue ()
      | exception Queue.Empty -> ()
    in
    drain_queue ()
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
