(** A small, dependency-free domain pool for fork/join parallelism.

    [create ~jobs] spawns [jobs - 1] worker domains once; every subsequent
    {!map} fans an array of independent tasks out across the workers plus
    the calling domain, with chunked work stealing from a shared cursor.
    Task results come back in task order, so a deterministic decomposition
    stays deterministic after the parallel phase.  The first exception a
    task raises is re-raised in the caller (with its backtrace) after the
    batch drains; remaining unstarted tasks are skipped.

    With [jobs = 1] no domains are spawned and {!map} degrades to
    [Array.map] — the exact sequential path, with no synchronization.

    Batches must not be nested: a task must not call {!map} on the pool
    that is running it (worker domains only drain the current batch). *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] total workers ([jobs - 1] new domains;
    the caller is the remaining worker). *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] computes [Array.map f xs] with the tasks distributed
    over the pool.  Results are in input order.  Re-raises the first task
    exception after the batch completes. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  The pool must be idle; using
    it afterwards raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, exception-safely. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the runtime's estimate of how
    many domains this machine runs well. *)
