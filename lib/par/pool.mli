(** A small, dependency-free domain pool for fork/join parallelism and
    independent concurrent jobs.

    [create ~jobs] spawns [jobs - 1] worker domains once.  Two kinds of work
    run on them:

    {ul
    {- {!map} fans an array of independent tasks out across the workers plus
       the calling domain, with chunked work stealing from a shared cursor.
       Task results come back in task order, so a deterministic decomposition
       stays deterministic after the parallel phase.  The first exception a
       task raises is re-raised in the caller (with its backtrace) after the
       batch drains; remaining unstarted tasks are skipped.}
    {- {!submit} enqueues a single independent job — e.g. one request's
       entire fixpoint in a server — that any one worker picks up; multiple
       domains may submit concurrently and each {!await}s its own result.
       Batches take priority over queued jobs, so an evaluation round fanned
       out with {!map} is never starved by a deep request queue.}}

    With [jobs = 1] no domains are spawned, {!map} degrades to [Array.map]
    and {!submit} runs the job synchronously — the exact sequential path,
    with no synchronization.

    Batches must not be nested: a task must not call {!map} on the pool that
    is running it (worker domains only drain the current batch).  Likewise a
    submitted job must not {!await} another job on the same pool — with all
    workers busy awaiting, no worker is left to run the awaited jobs. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] total workers ([jobs - 1] new domains;
    the caller is the remaining worker). *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] computes [Array.map f xs] with the tasks distributed
    over the pool.  Results are in input order.  Re-raises the first task
    exception after the batch completes. *)

(** {1 Independent jobs} *)

type 'a job

val submit : t -> (unit -> 'a) -> 'a job
(** [submit pool f] enqueues [f] to run on one worker domain and returns a
    handle to pass to {!await}.  Jobs submitted from different domains run
    concurrently (up to [jobs - 1] at a time).  With [jobs = 1] the job runs
    synchronously in the caller before [submit] returns. *)

val is_done : 'a job -> bool
(** Whether the job has finished (with a value or an exception); never
    blocks. *)

val await : 'a job -> 'a
(** Block until the job finishes; return its value or re-raise its
    exception (with the backtrace captured on the worker). *)

val run : t -> (unit -> 'a) -> 'a
(** [run pool f] is [await (submit pool f)]. *)

val shutdown : t -> unit
(** Terminate and join the worker domains; jobs still queued but unstarted
    are run in the caller so every {!await} returns.  No {!map} may be in
    flight; using the pool afterwards raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, exception-safely. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], the runtime's estimate of how
    many domains this machine runs well. *)
