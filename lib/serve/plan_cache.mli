(** The compiled-plan cache: rewritten programs interned by source digest.

    The expensive, reusable artifact of this engine is the constraint-pushing
    rewrite (pred/QRP/magic), not the fixpoint — so the service caches the
    {e rewritten} {!Cql_datalog.Program.t} keyed by a digest of the pipeline
    name and the program source text.  A repeat tenant (same program, same
    pipeline) skips the rewrite entirely; hash-consed constraint terms make
    the cached plans cheap to retain and share across worker domains (the
    plan is immutable once built).

    Lookups and insertions are mutex-protected; the rewrite itself runs
    outside the lock, so two concurrent first requests for the same key may
    both compute the plan — the second insert wins, which is harmless
    because compilation is deterministic.

    Hits, misses and evictions are exposed as lib/obs counters
    ([serve.plan_cache.hits] / [.misses] / [.evictions]), so per-request
    trace spans carry the cache outcome and tests can assert that a warm
    repeat query skipped the pipeline. *)

open Cql_datalog

type plan = {
  pipeline : string;  (** the pipeline actually applied *)
  program : Program.t;  (** rewritten, ready to evaluate *)
  programs : Cql_eval.Engine.compiled;
      (** register-frame programs for every (rule, pivot) join plan of
          [program] — warm requests skip the join compile as well as the
          rewrite (see {!Cql_eval.Engine.compile_plans}) *)
  source_bytes : int;
  rewrite_ns : int64;  (** wall time the rewrite cost on the miss *)
}

type t

val create : max_entries:int -> t
(** LRU-evicting cache of at most [max 1 max_entries] plans. *)

val key : pipeline:string -> domain:Cql_constr.Cdomain.t -> source:string -> string
(** Digest of pipeline, constraint domain and program source: rewrite
    verdicts (and hence plans) are domain-dependent, so Q and Z
    compilations of the same source never share an entry. *)

val find : t -> string -> plan option
(** [Some] counts a hit, [None] a miss, in the Obs counters. *)

val add : t -> string -> plan -> unit
val size : t -> int

type stats = { entries : int; hits : int; misses : int; evictions : int }

val stats : t -> stats
(** Counter values are process-wide (all caches share the Obs cells). *)
