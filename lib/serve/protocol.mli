(** The cqlserved wire protocol: length-prefixed NDJSON frames.

    Every message — request or response — is one JSON object on one line,
    preceded by its byte length in ASCII decimal and a newline:

    {v
    <length>\n{"op": "eval", "program": "...", ...}\n
    v}

    The length covers the JSON payload including its trailing newline, so a
    stream of frames is also valid NDJSON with interleaved count lines, and
    a reader never needs to scan for message boundaries inside program text.

    {1 Requests}

    {ul
    {- [{"op": "eval", "program": SRC, "edb": SRC, "tenant": T, "pipeline":
       P, "domain": D, "max_iterations": N, "max_derivations": N, "id":
       ID}] — compile (plan-cache keyed by digest of [pipeline] + [domain]
       + [program]), evaluate, and answer.  Only [program] is required;
       [pipeline] is one of ["none"], ["pred,qrp"] (default) or
       ["optimal"]; [domain] is ["rat"] (default) or ["int"] and selects
       the constraint interpretation (integer mode decides constraints
       exactly over ℤ).}
    {- [{"op": "materialize", "view": NAME, "program": SRC, "edb": SRC,
       ...}] — evaluate once and keep a live incremental view, keyed by
       tenant and [NAME] in the view cache alongside the plan cache; the
       budgets become the view's per-operation maintenance defaults.
       Re-materializing an existing name replaces the view.}
    {- [{"op": "insert", "view": NAME, "facts": SRC, ...}] /
       [{"op": "retract", ...}] — incrementally maintain the named view
       under the given EDB facts and answer with the updated query answers
       (a poor man's subscription: every update response carries the new
       result).  A maintenance round truncated by its budget drops the view
       (its contents would under-approximate the fixpoint) and answers
       [budget].}
    {- [{"op": "query", "view": NAME}] — the view's current answers,
       without re-evaluating anything.}
    {- [{"op": "ping"}] — liveness probe.}
    {- [{"op": "stats"}] — server, plan-cache, view-cache and per-tenant
       counters.}}

    {1 Responses}

    [{"status": "ok", ...}] or [{"status": "error", "error": {"kind": K,
    "message": M}}] with [kind] one of [malformed], [parse_error],
    [oversized], [admission], [budget], [unknown_view], [shutting_down],
    [internal].  The request [id], when given, is echoed. *)

type request =
  | Eval of {
      id : string option;
      tenant : string;  (** ["anon"] when absent *)
      program : string;
      edb : string;  (** facts source; [""] when absent *)
      pipeline : string;
      domain : Cql_constr.Cdomain.t;
          (** constraint domain from the optional ["domain"] field
              (["rat"]/["int"]); {!Cql_constr.Cdomain.Q} when absent *)
      max_iterations : int option;
      max_derivations : int option;
    }
  | Materialize of {
      id : string option;
      tenant : string;
      view : string;  (** cache key, scoped to the tenant *)
      program : string;
      edb : string;
      pipeline : string;
      domain : Cql_constr.Cdomain.t;
          (** the view is materialized {e and maintained} under this
              domain; updates need not (and cannot) restate it *)
      max_iterations : int option;
      max_derivations : int option;
    }
  | Update of {
      id : string option;
      tenant : string;
      view : string;
      retract : bool;  (** [false] = op was ["insert"] *)
      facts : string;  (** facts source, parsed like an [edb] field *)
      max_iterations : int option;
      max_derivations : int option;
    }
  | Query of { id : string option; tenant : string; view : string }
  | Ping of { id : string option }
  | Stats of { id : string option }

type error_kind =
  | Malformed  (** unparseable frame or JSON, unknown op, bad field type *)
  | Parse_error  (** CQL program/EDB syntax error (token/position message) *)
  | Oversized  (** frame or program over the configured byte limits *)
  | Admission  (** rejected by admission control *)
  | Budget  (** evaluation stopped by an iteration/derivation budget *)
  | Unknown_view  (** no such view for this tenant (never made, or evicted) *)
  | Shutting_down
  | Internal

val error_kind_to_string : error_kind -> string

val request_of_json : Json.t -> (request, string) result
(** Validate a decoded frame; the error is a message for a [Malformed]
    response. *)

val eval_request_json :
  ?id:string ->
  ?tenant:string ->
  ?edb:string ->
  ?pipeline:string ->
  ?domain:Cql_constr.Cdomain.t ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  program:string ->
  unit ->
  Json.t

val materialize_request_json :
  ?id:string ->
  ?tenant:string ->
  ?edb:string ->
  ?pipeline:string ->
  ?domain:Cql_constr.Cdomain.t ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  view:string ->
  program:string ->
  unit ->
  Json.t

val update_request_json :
  ?id:string ->
  ?tenant:string ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  retract:bool ->
  view:string ->
  facts:string ->
  unit ->
  Json.t

val query_request_json : ?id:string -> ?tenant:string -> view:string -> unit -> Json.t
val ping_request_json : ?id:string -> unit -> Json.t
val stats_request_json : ?id:string -> unit -> Json.t

val error_response : ?id:string -> error_kind -> string -> Json.t
val ok_response : ?id:string -> (string * Json.t) list -> Json.t

(** {1 Framing} *)

val max_frame_default : int
(** 4 MiB. *)

val write_frame : Buffer.t -> Json.t -> unit
(** Append one frame (length line + payload + newline). *)

type frame_error =
  | Closed  (** EOF at a frame boundary: clean end of stream *)
  | Truncated  (** EOF inside a header or payload *)
  | Bad_header of string  (** header line is not a plain decimal length *)
  | Too_large of int  (** declared length exceeds the reader's limit *)

val frame_error_to_string : frame_error -> string

type reader

val reader : ?max_frame:int -> (bytes -> int -> int -> int) -> reader
(** [reader read] wraps a [read buf off len] function ([0] = EOF, e.g.
    [Unix.read fd]) with the buffering needed to split frames. *)

val read_frame : reader -> (string, frame_error) result
(** The next frame's payload (JSON text).  After any [Error] other than
    {!Closed} the stream position is unreliable; close the connection. *)
