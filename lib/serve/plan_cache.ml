open Cql_datalog
module Obs = Cql_obs.Obs

type plan = {
  pipeline : string;
  program : Program.t;
  programs : Cql_eval.Engine.compiled;
  source_bytes : int;
  rewrite_ns : int64;
}

type slot = { plan : plan; mutable last_used : int }

type t = {
  m : Mutex.t;
  table : (string, slot) Hashtbl.t;
  max_entries : int;
  mutable tick : int;
}

let hits = Obs.counter "serve.plan_cache.hits"
let misses = Obs.counter "serve.plan_cache.misses"
let evictions = Obs.counter "serve.plan_cache.evictions"

let create ~max_entries =
  { m = Mutex.create (); table = Hashtbl.create 64; max_entries = max 1 max_entries; tick = 0 }

(* the domain participates in the key: a Z-mode compilation is planned from
   Z-mode rewrite verdicts, so it must never be replayed for a Q request *)
let key ~pipeline ~domain ~source =
  Digest.to_hex
    (Digest.string (pipeline ^ "\x00" ^ Cql_constr.Cdomain.to_string domain ^ "\x00" ^ source))

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some slot ->
          t.tick <- t.tick + 1;
          slot.last_used <- t.tick;
          Obs.incr hits;
          Some slot.plan
      | None ->
          Obs.incr misses;
          None)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k slot acc ->
        match acc with
        | Some (_, best) when best <= slot.last_used -> acc
        | _ -> Some (k, slot.last_used))
      t.table None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      Obs.incr evictions
  | None -> ()

let add t k plan =
  locked t (fun () ->
      if not (Hashtbl.mem t.table k) then begin
        if Hashtbl.length t.table >= t.max_entries then evict_lru t;
        t.tick <- t.tick + 1;
        Hashtbl.add t.table k { plan; last_used = t.tick }
      end)

let size t = locked t (fun () -> Hashtbl.length t.table)

type stats = { entries : int; hits : int; misses : int; evictions : int }

let stats t =
  {
    entries = size t;
    hits = Obs.value hits;
    misses = Obs.value misses;
    evictions = Obs.value evictions;
  }
