(** Admission control: per-tenant accounting over the engine's existing
    budget mechanisms.

    A request is admitted when (a) its program fits the byte limit, (b) its
    tenant is under the concurrent-request cap, and (c) it does not ask for
    more derivations or iterations than the server is willing to spend.
    Admitted requests get an {e effective} budget — the requested budget
    clamped to the server caps — which the engine already knows how to
    enforce ([max_derivations]/[max_iterations] truncation), so a runaway
    program costs at most one capped fixpoint.

    Per-tenant served/rejected totals are lib/obs counters
    ([serve.tenant.<name>.served] / [.rejected]) and therefore show up in
    traces and [stats] responses without extra plumbing. *)

type limits = {
  max_program_bytes : int;  (** reject larger program sources as oversized *)
  max_inflight_per_tenant : int;  (** concurrent eval requests per tenant *)
  max_derivations : int;  (** hard cap on any request's derivation budget *)
  max_iterations : int;  (** hard cap on any request's iteration budget *)
}

val default_limits : limits
(** 1 MiB programs, 4 in-flight per tenant, 200_000 derivations,
    200 iterations. *)

type t

val create : limits -> t
val limits : t -> limits

type verdict =
  | Admit of { max_iterations : int; max_derivations : int }
      (** effective budgets: requested clamped to the caps *)
  | Reject_oversized of string
  | Reject_busy of string  (** tenant at the in-flight cap *)
  | Reject_budget of string  (** asked for more than the server cap *)

val admit :
  t ->
  tenant:string ->
  program_bytes:int ->
  max_iterations:int option ->
  max_derivations:int option ->
  verdict
(** On [Admit] the tenant's in-flight count has been taken; pair with
    {!release} (exception-safely) when the request finishes.  A request
    whose explicit budget exceeds the server cap is rejected rather than
    silently clamped — the caller asked for work the server refuses to do —
    while an absent budget defaults to the cap. *)

val release : t -> tenant:string -> unit

type tenant_stats = { tenant : string; inflight : int; served : int; rejected : int }

val tenants : t -> tenant_stats list
(** Sorted by tenant name. *)
