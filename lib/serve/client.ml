type t = { fd : Unix.file_descr; r : Protocol.reader; out : Buffer.t }

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
      let read buf off len =
        match Unix.read fd buf off len with
        | n -> n
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
      in
      Ok { fd; r = Protocol.reader read; out = Buffer.create 1024 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

let connect_retry ?(attempts = 50) ?(delay = 0.1) path =
  let rec go n =
    match connect path with
    | Ok c -> Ok c
    | Error _ when n > 1 ->
        Unix.sleepf delay;
        go (n - 1)
    | Error _ as e -> e
  in
  go (max 1 attempts)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let request t j =
  match
    Buffer.clear t.out;
    Protocol.write_frame t.out j;
    write_all t.fd (Buffer.to_bytes t.out)
  with
  | exception Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)
  | () -> (
      match Protocol.read_frame t.r with
      | Error e -> Error (Protocol.frame_error_to_string e)
      | Ok payload -> (
          match Json.parse payload with
          | Ok j -> Ok j
          | Error msg -> Error ("bad response: " ^ msg)))

let eval t ?id ?tenant ?edb ?pipeline ?domain ?max_iterations ?max_derivations ~program () =
  request t
    (Protocol.eval_request_json ?id ?tenant ?edb ?pipeline ?domain ?max_iterations
       ?max_derivations ~program ())

let materialize t ?id ?tenant ?edb ?pipeline ?domain ?max_iterations ?max_derivations ~view
    ~program () =
  request t
    (Protocol.materialize_request_json ?id ?tenant ?edb ?pipeline ?domain ?max_iterations
       ?max_derivations ~view ~program ())

let insert t ?id ?tenant ?max_iterations ?max_derivations ~view ~facts () =
  request t
    (Protocol.update_request_json ?id ?tenant ?max_iterations ?max_derivations ~retract:false
       ~view ~facts ())

let retract t ?id ?tenant ?max_iterations ?max_derivations ~view ~facts () =
  request t
    (Protocol.update_request_json ?id ?tenant ?max_iterations ?max_derivations ~retract:true
       ~view ~facts ())

let query t ?id ?tenant ~view () = request t (Protocol.query_request_json ?id ?tenant ~view ())
let ping t = request t (Protocol.ping_request_json ())
let stats t = request t (Protocol.stats_request_json ())

let is_ok j = Json.member "status" j |> Option.map (fun s -> s = Json.Str "ok") |> Option.value ~default:false

let error_kind j =
  match Json.member "error" j with
  | Some e -> Option.bind (Json.member "kind" e) Json.to_str
  | None -> None

let error_message j =
  match Json.member "error" j with
  | Some e -> Option.bind (Json.member "message" e) Json.to_str
  | None -> None

let answers j =
  match Option.bind (Json.member "answers" j) Json.to_list with
  | Some items -> List.filter_map Json.to_str items
  | None -> []
