(** Load generator for cqlserved: N concurrent client domains × M requests
    each, over a mix of programs, reporting latency percentiles and
    throughput (the [cqlopt bench serve] backend and the
    [experiments.serve] source for BENCH_results.json).

    Before driving load it computes, for every workload, the answers a
    one-shot in-process evaluation produces (same pipeline, same budgets),
    and every response is checked against them — so the report's
    [answers_match] asserts end-to-end that the service returns exactly
    what [cqlopt eval] would. *)

type workload = {
  name : string;
  program : string;  (** CQL source *)
  edb : string;  (** facts source *)
  pipeline : string;
}

val default_workloads : workload list
(** Three mixed tenants: the paper's flights program, the D.1 ordering
    example and Example 4.1, with small synthetic EDBs. *)

type result = {
  clients : int;
  requests_per_client : int;
  total_requests : int;
  ok : int;
  errors : int;
  cache_hits : int;
  answers_match : bool;  (** every ok response matched its one-shot answers *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  wall_s : float;
  throughput_rps : float;
  warmup_per_client : int;
  warmup_requests : int;  (** clients × warmup (not in [total_requests]) *)
  warmup_errors : int;
  warmup_p50_ms : float;
  warmup_max_ms : float;
      (** warmup latencies carry the cold rewrite + join-compile cost;
          they are excluded from the measured percentiles above *)
  workload_names : string list;
  server_stats : Json.t;  (** the server's [stats] response after the run *)
}

val run :
  socket:string ->
  clients:int ->
  requests_per_client:int ->
  ?warmup:int ->
  ?workloads:workload list ->
  unit ->
  (result, string) Stdlib.result
(** Drive a server already listening on [socket].  Each client keeps one
    connection and issues its requests back to back; latency is measured
    per request on the monotonic clock.  [warmup] (default 0) extra
    requests per client run first and are tallied separately — they absorb
    the cold plan-compile outliers so p50/p95/p99 report the steady state.
    [Error] when no client could connect. *)

val to_json : result -> Json.t
(** The [experiments.serve] payload. *)
