(** LRU cache of live materialized views ({!Cql_eval.Engine.view}), keyed by
    tenant and view name — the incremental sibling of {!Plan_cache}.

    Unlike compiled plans, views are stateful and must be maintained under a
    lock: each entry carries its own mutex, and {!with_view} runs the caller
    holding only that per-view mutex, so maintenance on one view never
    blocks lookups or updates on another.  Replacement (re-materializing an
    existing name), LRU eviction and {!remove} all close the displaced view
    ({!Cql_eval.Engine.close_view}), after waiting for any in-flight
    operation on it.

    Hits/misses/evictions are lib/obs counters ([serve.view_cache.*]) and
    appear in [stats] responses like the plan cache's. *)

type t

val create : max_entries:int -> t
val key : tenant:string -> view:string -> string

val add : t -> tenant:string -> view:string -> Cql_eval.Engine.view -> unit
(** Insert (or replace) the named view; closes the replaced view and, at
    capacity, the least-recently-used one. *)

val with_view : t -> tenant:string -> view:string -> (Cql_eval.Engine.view -> 'a) -> 'a option
(** Run the function holding the view's mutex; [None] when the tenant has
    no such view (counted as a miss). *)

val remove : t -> tenant:string -> view:string -> bool
(** Drop and close the named view (e.g. after a maintenance round was
    truncated by its budget); [false] when absent. *)

val size : t -> int

type stats = { entries : int; hits : int; misses : int; evictions : int }

val stats : t -> stats
