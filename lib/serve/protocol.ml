module Cdomain = Cql_constr.Cdomain

type request =
  | Eval of {
      id : string option;
      tenant : string;
      program : string;
      edb : string;
      pipeline : string;
      domain : Cdomain.t;
      max_iterations : int option;
      max_derivations : int option;
    }
  | Materialize of {
      id : string option;
      tenant : string;
      view : string;
      program : string;
      edb : string;
      pipeline : string;
      domain : Cdomain.t;
      max_iterations : int option;
      max_derivations : int option;
    }
  | Update of {
      id : string option;
      tenant : string;
      view : string;
      retract : bool;
      facts : string;
      max_iterations : int option;
      max_derivations : int option;
    }
  | Query of { id : string option; tenant : string; view : string }
  | Ping of { id : string option }
  | Stats of { id : string option }

type error_kind =
  | Malformed
  | Parse_error
  | Oversized
  | Admission
  | Budget
  | Unknown_view
  | Shutting_down
  | Internal

let error_kind_to_string = function
  | Malformed -> "malformed"
  | Parse_error -> "parse_error"
  | Oversized -> "oversized"
  | Admission -> "admission"
  | Budget -> "budget"
  | Unknown_view -> "unknown_view"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

(* ----- request decoding ----- *)

let opt_field name conv j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S has the wrong type" name))

(* integer fields go through the checked conversion so an out-of-safe-range
   float reports what is wrong with it, not a generic type error *)
let int_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_int_checked v with
      | Ok x -> Ok (Some x)
      | Error Json.Unsafe_integer ->
          Error (Printf.sprintf "field %S is outside the 2^53 safe integer range" name)
      | Error Json.Not_an_integer ->
          Error (Printf.sprintf "field %S has the wrong type" name))

(* optional "domain" field: absent means rational, the paper's setting *)
let domain_field j =
  match opt_field "domain" Json.to_str j with
  | Error _ as e -> e
  | Ok None -> Ok Cdomain.Q
  | Ok (Some s) -> (
      match Cdomain.of_string s with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "field \"domain\" must be \"rat\" or \"int\", got %S" s))

let request_of_json j =
  let ( let* ) = Result.bind in
  match Json.member "op" j with
  | None -> Error "missing \"op\" field"
  | Some op -> (
      match Json.to_str op with
      | None -> Error "\"op\" must be a string"
      | Some op -> (
          let* id = opt_field "id" Json.to_str j in
          let str_field name =
            match Json.member name j with
            | None -> Error (Printf.sprintf "%s request is missing %S" op name)
            | Some v -> (
                match Json.to_str v with
                | Some s -> Ok s
                | None -> Error (Printf.sprintf "%S must be a string" name))
          in
          match op with
          | "ping" -> Ok (Ping { id })
          | "stats" -> Ok (Stats { id })
          | "eval" ->
              let* program = str_field "program" in
              let* tenant = opt_field "tenant" Json.to_str j in
              let* edb = opt_field "edb" Json.to_str j in
              let* pipeline = opt_field "pipeline" Json.to_str j in
              let* domain = domain_field j in
              let* max_iterations = int_field "max_iterations" j in
              let* max_derivations = int_field "max_derivations" j in
              Ok
                (Eval
                   {
                     id;
                     tenant = Option.value tenant ~default:"anon";
                     program;
                     edb = Option.value edb ~default:"";
                     pipeline = Option.value pipeline ~default:"pred,qrp";
                     domain;
                     max_iterations;
                     max_derivations;
                   })
          | "materialize" ->
              let* view = str_field "view" in
              let* program = str_field "program" in
              let* tenant = opt_field "tenant" Json.to_str j in
              let* edb = opt_field "edb" Json.to_str j in
              let* pipeline = opt_field "pipeline" Json.to_str j in
              let* domain = domain_field j in
              let* max_iterations = int_field "max_iterations" j in
              let* max_derivations = int_field "max_derivations" j in
              Ok
                (Materialize
                   {
                     id;
                     tenant = Option.value tenant ~default:"anon";
                     view;
                     program;
                     edb = Option.value edb ~default:"";
                     pipeline = Option.value pipeline ~default:"pred,qrp";
                     domain;
                     max_iterations;
                     max_derivations;
                   })
          | "insert" | "retract" ->
              let* view = str_field "view" in
              let* facts = str_field "facts" in
              let* tenant = opt_field "tenant" Json.to_str j in
              let* max_iterations = int_field "max_iterations" j in
              let* max_derivations = int_field "max_derivations" j in
              Ok
                (Update
                   {
                     id;
                     tenant = Option.value tenant ~default:"anon";
                     view;
                     retract = op = "retract";
                     facts;
                     max_iterations;
                     max_derivations;
                   })
          | "query" ->
              let* view = str_field "view" in
              let* tenant = opt_field "tenant" Json.to_str j in
              Ok (Query { id; tenant = Option.value tenant ~default:"anon"; view })
          | op ->
              Error
                (Printf.sprintf
                   "unknown op %S (use eval, materialize, insert, retract, query, ping or stats)"
                   op)))

(* ----- request/response building ----- *)

let with_id id fields =
  match id with None -> fields | Some id -> ("id", Json.Str id) :: fields

let opt name conv v fields = match v with None -> fields | Some v -> (name, conv v) :: fields

let eval_request_json ?id ?tenant ?edb ?pipeline ?domain ?max_iterations ?max_derivations
    ~program () =
  Json.Obj
    (with_id id
       ([ ("op", Json.Str "eval"); ("program", Json.Str program) ]
       |> opt "tenant" (fun s -> Json.Str s) tenant
       |> opt "edb" (fun s -> Json.Str s) edb
       |> opt "pipeline" (fun s -> Json.Str s) pipeline
       |> opt "domain" (fun d -> Json.Str (Cdomain.to_string d)) domain
       |> opt "max_iterations" (fun i -> Json.Int i) max_iterations
       |> opt "max_derivations" (fun i -> Json.Int i) max_derivations))

let materialize_request_json ?id ?tenant ?edb ?pipeline ?domain ?max_iterations ?max_derivations
    ~view ~program () =
  Json.Obj
    (with_id id
       ([
          ("op", Json.Str "materialize"); ("view", Json.Str view); ("program", Json.Str program);
        ]
       |> opt "tenant" (fun s -> Json.Str s) tenant
       |> opt "edb" (fun s -> Json.Str s) edb
       |> opt "pipeline" (fun s -> Json.Str s) pipeline
       |> opt "domain" (fun d -> Json.Str (Cdomain.to_string d)) domain
       |> opt "max_iterations" (fun i -> Json.Int i) max_iterations
       |> opt "max_derivations" (fun i -> Json.Int i) max_derivations))

let update_request_json ?id ?tenant ?max_iterations ?max_derivations ~retract ~view ~facts () =
  Json.Obj
    (with_id id
       ([
          ("op", Json.Str (if retract then "retract" else "insert"));
          ("view", Json.Str view);
          ("facts", Json.Str facts);
        ]
       |> opt "tenant" (fun s -> Json.Str s) tenant
       |> opt "max_iterations" (fun i -> Json.Int i) max_iterations
       |> opt "max_derivations" (fun i -> Json.Int i) max_derivations))

let query_request_json ?id ?tenant ~view () =
  Json.Obj
    (with_id id
       ([ ("op", Json.Str "query"); ("view", Json.Str view) ]
       |> opt "tenant" (fun s -> Json.Str s) tenant))

let ping_request_json ?id () = Json.Obj (with_id id [ ("op", Json.Str "ping") ])
let stats_request_json ?id () = Json.Obj (with_id id [ ("op", Json.Str "stats") ])

let error_response ?id kind message =
  Json.Obj
    (with_id id
       [
         ("status", Json.Str "error");
         ( "error",
           Json.Obj
             [
               ("kind", Json.Str (error_kind_to_string kind)); ("message", Json.Str message);
             ] );
       ])

let ok_response ?id fields = Json.Obj (with_id id (("status", Json.Str "ok") :: fields))

(* ----- framing ----- *)

let max_frame_default = 4 * 1024 * 1024

let write_frame b j =
  let payload = Buffer.create 256 in
  Json.to_buffer payload j;
  Buffer.add_char payload '\n';
  Buffer.add_string b (string_of_int (Buffer.length payload));
  Buffer.add_char b '\n';
  Buffer.add_buffer b payload

type frame_error = Closed | Truncated | Bad_header of string | Too_large of int

let frame_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Bad_header h -> Printf.sprintf "malformed frame header %S (expected a decimal length)" h
  | Too_large n -> Printf.sprintf "frame of %d bytes exceeds the limit" n

type reader = {
  read : bytes -> int -> int -> int;
  max_frame : int;
  chunk : Bytes.t;
  mutable buf : Bytes.t;  (* buffered unconsumed input *)
  mutable len : int;
}

let reader ?(max_frame = max_frame_default) read =
  { read; max_frame; chunk = Bytes.create 65536; buf = Bytes.create 65536; len = 0 }

let refill r =
  let n = r.read r.chunk 0 (Bytes.length r.chunk) in
  if n > 0 then begin
    if r.len + n > Bytes.length r.buf then begin
      let grown = Bytes.create (max (r.len + n) (2 * Bytes.length r.buf)) in
      Bytes.blit r.buf 0 grown 0 r.len;
      r.buf <- grown
    end;
    Bytes.blit r.chunk 0 r.buf r.len n;
    r.len <- r.len + n
  end;
  n

let consume r n =
  Bytes.blit r.buf n r.buf 0 (r.len - n);
  r.len <- r.len - n

(* the header is tiny; cap the scan so a stream that never sends '\n'
   cannot grow the buffer unboundedly *)
let max_header = 20

let read_frame r =
  let rec header_end () =
    match Bytes.index_from_opt r.buf 0 '\n' with
    | Some i when i < r.len -> Some i
    | _ ->
        if r.len > max_header then None
        else if refill r = 0 then None
        else header_end ()
  in
  if r.len = 0 && refill r = 0 then Error Closed
  else
    match header_end () with
    | None ->
        if r.len = 0 then Error Closed
          (* no newline within the scan cap: garbage, not a short read *)
        else if r.len > max_header then
          Error (Bad_header (Bytes.sub_string r.buf 0 max_header))
        else Error Truncated
    | Some nl -> (
        let line = Bytes.sub_string r.buf 0 nl in
        match int_of_string_opt (String.trim line) with
        | None -> Error (Bad_header line)
        | Some len when len < 0 -> Error (Bad_header line)
        | Some len when len > r.max_frame -> Error (Too_large len)
        | Some len ->
            let rec fill () =
              if r.len >= nl + 1 + len then begin
                let payload = Bytes.sub_string r.buf (nl + 1) len in
                consume r (nl + 1 + len);
                Ok payload
              end
              else if refill r = 0 then Error Truncated
              else fill ()
            in
            fill ())
