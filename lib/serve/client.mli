(** Blocking client for the cqlserved protocol (one connection, requests
    answered in order).  Used by [cqlopt client], the load generator and the
    tests. *)

type t

val connect : string -> (t, string) result
(** Connect to a Unix-domain socket path. *)

val connect_retry : ?attempts:int -> ?delay:float -> string -> (t, string) result
(** Retry [connect] (default 50 × 0.1s) — for racing a daemon that is still
    binding its socket. *)

val close : t -> unit

val request : t -> Json.t -> (Json.t, string) result
(** Send one frame and block for the response frame. *)

val eval :
  t ->
  ?id:string ->
  ?tenant:string ->
  ?edb:string ->
  ?pipeline:string ->
  ?domain:Cql_constr.Cdomain.t ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  program:string ->
  unit ->
  (Json.t, string) result

val materialize :
  t ->
  ?id:string ->
  ?tenant:string ->
  ?edb:string ->
  ?pipeline:string ->
  ?domain:Cql_constr.Cdomain.t ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  view:string ->
  program:string ->
  unit ->
  (Json.t, string) result

val insert :
  t ->
  ?id:string ->
  ?tenant:string ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  view:string ->
  facts:string ->
  unit ->
  (Json.t, string) result

val retract :
  t ->
  ?id:string ->
  ?tenant:string ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  view:string ->
  facts:string ->
  unit ->
  (Json.t, string) result

val query : t -> ?id:string -> ?tenant:string -> view:string -> unit -> (Json.t, string) result
val ping : t -> (Json.t, string) result
val stats : t -> (Json.t, string) result

(** {1 Response helpers} *)

val is_ok : Json.t -> bool
val error_kind : Json.t -> string option
(** [Some kind] when the response is an error. *)

val error_message : Json.t -> string option
val answers : Json.t -> string list
(** The ["answers"] strings of an ok eval response (empty otherwise). *)
