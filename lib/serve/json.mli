(** A minimal JSON value type with a parser and printer.

    The toolchain deliberately has no JSON dependency (lib/serve is
    dependency-free like lib/par and lib/obs), so the wire protocol, the
    plan-service responses and the BENCH_results.json merge all go through
    this module.  It covers the whole of JSON except that numbers are split
    into [Int] (exact 63-bit integers) and [Float] (everything else), and
    [\uXXXX] escapes outside the BMP are decoded per UTF-16 surrogate
    half. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document; the error names the byte offset.  Trailing
    whitespace is allowed, trailing content is an error. *)

val to_string : t -> string
(** Compact form, no newlines; strings escaped per RFC 8259 ([\uXXXX] for
    control characters). *)

val to_buffer : Buffer.t -> t -> unit

(** {1 Accessors} — shallow, total helpers for picking requests apart. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on other
    constructors. *)

val to_str : t -> string option

type int_error =
  | Not_an_integer  (** not a number, or a float with a fractional part *)
  | Unsafe_integer
      (** an integral float at or beyond 2^53, where doubles no longer
          represent every integer — converting would silently round *)

val to_int_checked : t -> (int, int_error) result
(** [Ok] for [Int] and for integral [Float]s strictly inside the 2^53 safe
    range; lossy conversions are rejected with {!Unsafe_integer}. *)

val to_int : t -> int option
(** [to_int_checked] squashed to an option. *)

val to_bool : t -> bool option
val to_list : t -> t list option
