module Obs = Cql_obs.Obs
module Engine = Cql_eval.Engine

type entry = {
  view : Engine.view;
  vm : Mutex.t;  (* serializes maintenance on this one view *)
  mutable last_used : int;
}

type t = {
  m : Mutex.t;
  table : (string, entry) Hashtbl.t;
  max_entries : int;
  mutable tick : int;
}

let hits = Obs.counter "serve.view_cache.hits"
let misses = Obs.counter "serve.view_cache.misses"
let evictions = Obs.counter "serve.view_cache.evictions"

let create ~max_entries =
  { m = Mutex.create (); table = Hashtbl.create 16; max_entries = max 1 max_entries; tick = 0 }

(* views are tenant-scoped; '\x00' cannot occur in either component *)
let key ~tenant ~view = tenant ^ "\x00" ^ view

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Close after the entry is unreachable from the table, waiting on its
   mutex so an in-flight maintenance op finishes first.  [close_view] on a
   view another thread already closed raises; swallow it — the pool is
   released either way. *)
let close_entry e =
  Mutex.lock e.vm;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock e.vm)
    (fun () -> try Engine.close_view e.view with Invalid_argument _ -> ())

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, _, best) when best <= e.last_used -> acc
        | _ -> Some (k, e, e.last_used))
      t.table None
  in
  match victim with
  | Some (k, e, _) ->
      Hashtbl.remove t.table k;
      Obs.incr evictions;
      Some e
  | None -> None

let add t ~tenant ~view:name view =
  let k = key ~tenant ~view:name in
  let displaced =
    locked t (fun () ->
        let replaced = Hashtbl.find_opt t.table k in
        if replaced <> None then Hashtbl.remove t.table k;
        let evicted =
          if Hashtbl.length t.table >= t.max_entries then evict_lru t else None
        in
        t.tick <- t.tick + 1;
        Hashtbl.add t.table k { view; vm = Mutex.create (); last_used = t.tick };
        List.filter_map Fun.id [ replaced; evicted ])
  in
  List.iter close_entry displaced

(* Look up under the table lock, then run [f] holding only the per-view
   mutex, so concurrent requests on other views (and cache lookups) are
   never blocked behind one view's maintenance round. *)
let with_view t ~tenant ~view:name f =
  let k = key ~tenant ~view:name in
  let entry =
    locked t (fun () ->
        match Hashtbl.find_opt t.table k with
        | Some e ->
            t.tick <- t.tick + 1;
            e.last_used <- t.tick;
            Obs.incr hits;
            Some e
        | None ->
            Obs.incr misses;
            None)
  in
  match entry with
  | None -> None
  | Some e ->
      Mutex.lock e.vm;
      Some (Fun.protect ~finally:(fun () -> Mutex.unlock e.vm) (fun () -> f e.view))

let remove t ~tenant ~view:name =
  let k = key ~tenant ~view:name in
  match locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          Hashtbl.remove t.table k;
          Some e
      | None -> None)
  with
  | Some e ->
      close_entry e;
      true
  | None -> false

let size t = locked t (fun () -> Hashtbl.length t.table)

type stats = { entries : int; hits : int; misses : int; evictions : int }

let stats t =
  {
    entries = size t;
    hits = Obs.value hits;
    misses = Obs.value misses;
    evictions = Obs.value evictions;
  }
