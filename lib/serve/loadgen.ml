open Cql_datalog
module Obs = Cql_obs.Obs
module Engine = Cql_eval.Engine
module Fact = Cql_eval.Fact

type workload = { name : string; program : string; edb : string; pipeline : string }

let flights_program =
  {|
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                          T = T1 + T2 + 30, C = C1 + C2.
#query cheaporshort.
|}

let flights_edb =
  {|
singleleg(c0, c1, 45, 30). singleleg(c1, c2, 120, 95). singleleg(c2, c3, 70, 60).
singleleg(c3, c4, 200, 40). singleleg(c4, c5, 35, 110). singleleg(c5, c0, 90, 25).
|}

let d1_program =
  {|
r1: q(X, Y) :- a1(X, Y), X <= 4.
r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).
r3: a2(X, Y) :- b2(X, Y).
r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).
#query q.
|}

let d1_edb =
  {|
b1(1, 100). b1(3, 200). b1(7, 300).
b2(100, 101). b2(101, 102). b2(102, 103).
b2(200, 201). b2(201, 202).
b2(300, 301).
|}

let ex41_program =
  {|
r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.
r2: p1(X, Y) :- b1(X, Y).
r3: p2(X) :- b2(X).
#query q.
|}

let ex41_edb =
  {|
b1(2, 1). b1(2, 4). b1(3, 3). b1(5, 1). b1(4, 2). b1(1, 1).
b2(1). b2(2). b2(3). b2(4). b2(9).
|}

let default_workloads =
  [
    { name = "flights"; program = flights_program; edb = flights_edb; pipeline = "pred,qrp" };
    { name = "d1"; program = d1_program; edb = d1_edb; pipeline = "pred,qrp" };
    { name = "ex41"; program = ex41_program; edb = ex41_edb; pipeline = "optimal" };
  ]

type result = {
  clients : int;
  requests_per_client : int;
  total_requests : int;
  ok : int;
  errors : int;
  cache_hits : int;
  answers_match : bool;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  wall_s : float;
  throughput_rps : float;
  warmup_per_client : int;
  warmup_requests : int;
  warmup_errors : int;
  warmup_p50_ms : float;
  warmup_max_ms : float;
  workload_names : string list;
  server_stats : Json.t;
}

(* one-shot reference answers: the same compile + evaluate the server does,
   in this process, with the default admission budgets *)
let oneshot_answers (w : workload) =
  let p = Parser.program_of_string w.program in
  let edb = List.map Fact.of_fact_rule (Parser.facts_of_string w.edb) in
  let prog =
    match w.pipeline with
    | "none" -> p
    | _ when p.Program.query = None -> p
    | "pred,qrp" -> fst (Cql_core.Rewrite.constraint_rewrite p)
    | "optimal" ->
        let q = Option.get p.Program.query in
        fst (Cql_core.Rewrite.optimal ~adornment:(String.make (Program.arity p q) 'f') p)
    | other -> invalid_arg ("unknown pipeline " ^ other)
  in
  let res = Engine.run ~jobs:1 ~max_iterations:200 ~max_derivations:200_000 prog ~edb in
  List.map Fact.to_string (List.sort Fact.compare (Engine.answers res prog))

type client_tally = {
  mutable c_ok : int;
  mutable c_errors : int;
  mutable c_hits : int;
  mutable c_match : bool;
  mutable c_lat_ns : int64 list;
  mutable c_warm_errors : int;
  mutable c_warm_ns : int64 list;
}

let drive_client ~socket ~requests ~warmup ~workloads ~expected idx =
  let tally =
    {
      c_ok = 0;
      c_errors = 0;
      c_hits = 0;
      c_match = true;
      c_lat_ns = [];
      c_warm_errors = 0;
      c_warm_ns = [];
    }
  in
  match Client.connect_retry socket with
  | Error _ ->
      tally.c_errors <- requests;
      tally.c_warm_errors <- warmup;
      tally.c_match <- false;
      tally
  | Ok client ->
      let nw = Array.length workloads in
      let one i =
        let w = workloads.((idx + i) mod nw) in
        let t0 = Obs.monotonic_ns () in
        let resp =
          Client.eval client ~tenant:(Printf.sprintf "client%d" idx) ~edb:w.edb
            ~pipeline:w.pipeline ~program:w.program ()
        in
        let dt = Int64.sub (Obs.monotonic_ns ()) t0 in
        (w, resp, dt)
      in
      (* warmup requests populate the plan cache; their latencies (cold
         rewrite + join-compile outliers) are tallied separately so the
         measured percentiles reflect the steady state *)
      for i = 0 to warmup - 1 do
        let _, resp, dt = one i in
        tally.c_warm_ns <- dt :: tally.c_warm_ns;
        match resp with
        | Ok j when Client.is_ok j ->
            if Client.answers j <> expected.((idx + i) mod nw) then tally.c_match <- false
        | Ok _ | Error _ -> tally.c_warm_errors <- tally.c_warm_errors + 1
      done;
      for i = 0 to requests - 1 do
        let _, resp, dt = one i in
        tally.c_lat_ns <- dt :: tally.c_lat_ns;
        match resp with
        | Ok j when Client.is_ok j ->
            tally.c_ok <- tally.c_ok + 1;
            (match Option.bind (Json.member "cache" j) Json.to_str with
            | Some "hit" -> tally.c_hits <- tally.c_hits + 1
            | _ -> ());
            if Client.answers j <> expected.((idx + i) mod nw) then tally.c_match <- false
        | Ok _ | Error _ -> tally.c_errors <- tally.c_errors + 1
      done;
      Client.close client;
      tally

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = min (n - 1) (p * n / 100) in
    Int64.to_float sorted.(i) /. 1e6

let run ~socket ~clients ~requests_per_client ?(warmup = 0) ?(workloads = default_workloads) () =
  let clients = max 1 clients in
  let warmup = max 0 warmup in
  let workloads = Array.of_list workloads in
  if Array.length workloads = 0 then invalid_arg "Loadgen.run: no workloads";
  let expected = Array.map oneshot_answers workloads in
  (* fail fast (and leave a clear error) when nothing is listening *)
  match Client.connect_retry socket with
  | Error msg -> Error msg
  | Ok probe -> (
      let probe_ok = Result.is_ok (Client.ping probe) in
      if not probe_ok then begin
        Client.close probe;
        Error "server did not answer a ping"
      end
      else begin
        let t0 = Obs.monotonic_ns () in
        let domains =
          List.init clients (fun idx ->
              Domain.spawn (fun () ->
                  drive_client ~socket ~requests:requests_per_client ~warmup ~workloads
                    ~expected idx))
        in
        let tallies = List.map Domain.join domains in
        let wall_s = Int64.to_float (Int64.sub (Obs.monotonic_ns ()) t0) /. 1e9 in
        let stats_json =
          match Client.stats probe with Ok j -> j | Error msg -> Json.Str ("error: " ^ msg)
        in
        Client.close probe;
        let lats =
          List.concat_map (fun t -> t.c_lat_ns) tallies |> Array.of_list
        in
        Array.sort Int64.compare lats;
        let warm_lats =
          List.concat_map (fun t -> t.c_warm_ns) tallies |> Array.of_list
        in
        Array.sort Int64.compare warm_lats;
        let total = clients * requests_per_client in
        let sum = Array.fold_left (fun acc l -> Int64.add acc l) 0L lats in
        Ok
          {
            clients;
            requests_per_client;
            total_requests = total;
            ok = List.fold_left (fun acc t -> acc + t.c_ok) 0 tallies;
            errors = List.fold_left (fun acc t -> acc + t.c_errors) 0 tallies;
            cache_hits = List.fold_left (fun acc t -> acc + t.c_hits) 0 tallies;
            answers_match = List.for_all (fun t -> t.c_match) tallies;
            p50_ms = percentile lats 50;
            p95_ms = percentile lats 95;
            p99_ms = percentile lats 99;
            mean_ms =
              (if Array.length lats = 0 then 0.0
               else Int64.to_float sum /. 1e6 /. float_of_int (Array.length lats));
            max_ms =
              (if Array.length lats = 0 then 0.0
               else Int64.to_float lats.(Array.length lats - 1) /. 1e6);
            wall_s;
            throughput_rps = (if wall_s > 0.0 then float_of_int total /. wall_s else 0.0);
            warmup_per_client = warmup;
            warmup_requests = clients * warmup;
            warmup_errors = List.fold_left (fun acc t -> acc + t.c_warm_errors) 0 tallies;
            warmup_p50_ms = percentile warm_lats 50;
            warmup_max_ms =
              (if Array.length warm_lats = 0 then 0.0
               else Int64.to_float warm_lats.(Array.length warm_lats - 1) /. 1e6);
            workload_names = Array.to_list (Array.map (fun w -> w.name) workloads);
            server_stats = stats_json;
          }
      end)

let to_json r =
  Json.Obj
    [
      ("clients", Json.Int r.clients);
      ("requests_per_client", Json.Int r.requests_per_client);
      ("total_requests", Json.Int r.total_requests);
      ("ok", Json.Int r.ok);
      ("errors", Json.Int r.errors);
      ("cache_hits", Json.Int r.cache_hits);
      ("answers_match_oneshot", Json.Bool r.answers_match);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("mean_ms", Json.Float r.mean_ms);
      ("max_ms", Json.Float r.max_ms);
      ("wall_seconds", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("warmup_per_client", Json.Int r.warmup_per_client);
      ("warmup_requests", Json.Int r.warmup_requests);
      ("warmup_errors", Json.Int r.warmup_errors);
      ("warmup_p50_ms", Json.Float r.warmup_p50_ms);
      ("warmup_max_ms", Json.Float r.warmup_max_ms);
      ("workloads", Json.List (List.map (fun n -> Json.Str n) r.workload_names));
      ("server_stats", r.server_stats);
    ]
