open Cql_datalog
open Cql_core
module Obs = Cql_obs.Obs
module Pool = Cql_par.Pool
module Engine = Cql_eval.Engine
module Fact = Cql_eval.Fact
module Cdomain = Cql_constr.Cdomain

type config = {
  socket_path : string;
  workers : int;
  limits : Admission.limits;
  plan_cache_entries : int;
  view_cache_entries : int;
  max_frame_bytes : int;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 4;
    limits = Admission.default_limits;
    plan_cache_entries = 256;
    view_cache_entries = 64;
    max_frame_bytes = Protocol.max_frame_default;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  pool : Pool.t;
  cache : Plan_cache.t;
  views : View_cache.t;
  adm : Admission.t;
  stop_flag : bool Atomic.t;
  served : int Atomic.t;  (* connections accepted *)
  requests : Obs.counter;
  errors : Obs.counter;
  started_ns : int64;
  mutable accept_domain : unit Domain.t option;
}

let stopping t = Atomic.get t.stop_flag
let stop t = Atomic.set t.stop_flag true
let connections_served t = Atomic.get t.served

(* ----- compilation ----- *)

let compile ~pipeline (p : Program.t) =
  match pipeline with
  | "none" -> Ok p
  | "pred,qrp" -> (
      try Ok (fst (Rewrite.constraint_rewrite p))
      with Invalid_argument msg -> Error (Protocol.Internal, "rewrite failed: " ^ msg))
  | "optimal" -> (
      let q = Option.get p.Program.query in
      let adornment = String.make (Program.arity p q) 'f' in
      try Ok (fst (Rewrite.optimal ~adornment p))
      with Invalid_argument msg -> Error (Protocol.Internal, "rewrite failed: " ^ msg))
  | other ->
      Error
        ( Protocol.Malformed,
          Printf.sprintf "unknown pipeline %S (use none, pred,qrp or optimal)" other )

let ms_of_ns ns = Int64.to_float ns /. 1e6

(* An unsatisfiable fact denotes the empty relation, so it contributes
   nothing to any fixpoint: drop it instead of letting [Fact.Unsat] escape.
   Under ["domain": "int"] this is the normal fate of a fact pinning a
   position to a non-integral value. *)
let fact_opt r = match Fact.of_fact_rule r with f -> Some f | exception Fact.Unsat -> None

(* plan-cache lookup shared by eval and materialize; the caller has already
   entered the request's constraint domain (rewrite verdicts depend on it,
   and the key separates the domains) *)
let compiled_plan t ~pipeline ~domain ~source p =
  let key = Plan_cache.key ~pipeline ~domain ~source in
  match Plan_cache.find t.cache key with
  | Some plan -> (true, Ok plan)
  | None -> (
      let t0 = Obs.monotonic_ns () in
      match compile ~pipeline p with
      | Error e -> (false, Error e)
      | Ok prog ->
          let plan =
            {
              Plan_cache.pipeline;
              program = prog;
              (* join plans compile once here, at rewrite time: warm
                 requests reuse the register-frame programs as well *)
              programs = Engine.compile_plans prog;
              source_bytes = String.length source;
              rewrite_ns = Int64.sub (Obs.monotonic_ns ()) t0;
            }
          in
          Plan_cache.add t.cache key plan;
          (false, Ok plan))

(* ----- eval ----- *)

let handle_eval t ?id ~tenant ~program ~edb ~pipeline ~domain ~max_iterations ~max_derivations
    () =
  Obs.add_field_str "tenant" tenant;
  Obs.add_field_str "domain" (Cdomain.to_string domain);
  let err kind msg =
    Obs.incr t.errors;
    Obs.add_field_str "status" (Protocol.error_kind_to_string kind);
    Protocol.error_response ?id kind msg
  in
  match
    Admission.admit t.adm ~tenant
      ~program_bytes:(String.length program)
      ~max_iterations ~max_derivations
  with
  | Admission.Reject_oversized msg -> err Protocol.Oversized msg
  | Admission.Reject_busy msg | Admission.Reject_budget msg -> err Protocol.Admission msg
  | Admission.Admit { max_iterations; max_derivations } -> (
      Fun.protect ~finally:(fun () -> Admission.release t.adm ~tenant) @@ fun () ->
      (* the request's domain scopes everything with solver contact: EDB
         admission, rewrite, compilation and the run itself *)
      Cdomain.with_domain domain @@ fun () ->
      match Parser.program_of_string program with
      | exception Parser.Error msg -> err Protocol.Parse_error msg
      | p -> (
          match List.filter_map fact_opt (Parser.facts_of_string edb) with
          | exception Parser.Error msg -> err Protocol.Parse_error ("edb: " ^ msg)
          | edb -> (
              (* without a query predicate there is nothing to push; the
                 effective pipeline is recorded in the response *)
              let pipeline = if p.Program.query = None then "none" else pipeline in
              let cached, plan = compiled_plan t ~pipeline ~domain ~source:program p in
              match plan with
              | Error (kind, msg) -> err kind msg
              | Ok plan -> (
                  Obs.add_field_str "cache" (if cached then "hit" else "miss");
                  let t0 = Obs.monotonic_ns () in
                  match
                    Engine.run ~jobs:1 ~max_iterations ~max_derivations
                      ~compiled:plan.Plan_cache.programs plan.Plan_cache.program ~edb
                  with
                  | exception e -> err Protocol.Internal (Printexc.to_string e)
                  | res ->
                      let eval_ns = Int64.sub (Obs.monotonic_ns ()) t0 in
                      let s = Engine.stats res in
                      if not s.Engine.reached_fixpoint then
                        err Protocol.Budget
                          (Printf.sprintf
                             "evaluation truncated by its budget after %d iterations / %d \
                              derivations"
                             s.Engine.iterations s.Engine.derivations)
                      else begin
                        let answers =
                          List.sort Fact.compare (Engine.answers res plan.Plan_cache.program)
                        in
                        Obs.add_field_str "status" "ok";
                        Obs.add_field "answers" (List.length answers);
                        Protocol.ok_response ?id
                          [
                            ("tenant", Json.Str tenant);
                            ("cache", Json.Str (if cached then "hit" else "miss"));
                            ("pipeline", Json.Str plan.Plan_cache.pipeline);
                            ("domain", Json.Str (Cdomain.to_string domain));
                            ( "query",
                              match plan.Plan_cache.program.Program.query with
                              | Some q -> Json.Str q
                              | None -> Json.Null );
                            ( "answers",
                              Json.List (List.map (fun f -> Json.Str (Fact.to_string f)) answers)
                            );
                            ( "stats",
                              Json.Obj
                                [
                                  ("iterations", Json.Int s.Engine.iterations);
                                  ("derivations", Json.Int s.Engine.derivations);
                                  ("facts", Json.Int (Engine.total_facts res));
                                  ("fixpoint", Json.Bool s.Engine.reached_fixpoint);
                                ] );
                            ( "rewrite_ms",
                              Json.Float (if cached then 0.0 else ms_of_ns plan.Plan_cache.rewrite_ns)
                            );
                            ("eval_ms", Json.Float (ms_of_ns eval_ns));
                          ]
                      end))))

(* ----- materialized views ----- *)

let maintain_json (ms : Engine.maintain_stats) =
  Json.Obj
    [
      ("batch", Json.Int ms.Engine.m_batch);
      ("inserted", Json.Int ms.Engine.m_inserted);
      ("retracted", Json.Int ms.Engine.m_retracted);
      ("noops", Json.Int ms.Engine.m_noops);
      ("derivations", Json.Int ms.Engine.m_derivations);
      ("over_deleted", Json.Int ms.Engine.m_over_deleted);
      ("rederived", Json.Int ms.Engine.m_rederived);
      ("resurrected", Json.Int ms.Engine.m_resurrected);
      ("deleted", Json.Int ms.Engine.m_deleted);
      ("iterations", Json.Int ms.Engine.m_iterations);
      ("fixpoint", Json.Bool ms.Engine.m_complete);
    ]

let answers_json answers = Json.List (List.map (fun f -> Json.Str (Fact.to_string f)) answers)

let handle_materialize t ?id ~tenant ~view:name ~program ~edb ~pipeline ~domain ~max_iterations
    ~max_derivations () =
  Obs.add_field_str "tenant" tenant;
  Obs.add_field_str "view" name;
  Obs.add_field_str "domain" (Cdomain.to_string domain);
  let err kind msg =
    Obs.incr t.errors;
    Obs.add_field_str "status" (Protocol.error_kind_to_string kind);
    Protocol.error_response ?id kind msg
  in
  match
    Admission.admit t.adm ~tenant
      ~program_bytes:(String.length program + String.length edb)
      ~max_iterations ~max_derivations
  with
  | Admission.Reject_oversized msg -> err Protocol.Oversized msg
  | Admission.Reject_busy msg | Admission.Reject_budget msg -> err Protocol.Admission msg
  | Admission.Admit { max_iterations; max_derivations } -> (
      Fun.protect ~finally:(fun () -> Admission.release t.adm ~tenant) @@ fun () ->
      (* the view is materialized under the request's domain and remembers
         it: later insert/retract maintenance re-enters it automatically *)
      Cdomain.with_domain domain @@ fun () ->
      match Parser.program_of_string program with
      | exception Parser.Error msg -> err Protocol.Parse_error msg
      | p -> (
          match List.filter_map fact_opt (Parser.facts_of_string edb) with
          | exception Parser.Error msg -> err Protocol.Parse_error ("edb: " ^ msg)
          | edb -> (
              let pipeline = if p.Program.query = None then "none" else pipeline in
              let cached, plan = compiled_plan t ~pipeline ~domain ~source:program p in
              match plan with
              | Error (kind, msg) -> err kind msg
              | Ok plan -> (
                  Obs.add_field_str "cache" (if cached then "hit" else "miss");
                  let t0 = Obs.monotonic_ns () in
                  match
                    Engine.materialize ~jobs:1 ~max_iterations ~max_derivations
                      ~compiled:plan.Plan_cache.programs plan.Plan_cache.program ~edb
                  with
                  | exception e -> err Protocol.Internal (Printexc.to_string e)
                  | vw, ms ->
                      let eval_ns = Int64.sub (Obs.monotonic_ns ()) t0 in
                      if not ms.Engine.m_complete then begin
                        Engine.close_view vw;
                        err Protocol.Budget
                          (Printf.sprintf
                             "materialization truncated by its budget after %d iterations / %d \
                              derivations; the view was not cached"
                             ms.Engine.m_iterations ms.Engine.m_derivations)
                      end
                      else begin
                        let answers = Engine.view_answers vw in
                        let total = Engine.view_total vw in
                        View_cache.add t.views ~tenant ~view:name vw;
                        Obs.add_field_str "status" "ok";
                        Obs.add_field "answers" (List.length answers);
                        Protocol.ok_response ?id
                          [
                            ("tenant", Json.Str tenant);
                            ("view", Json.Str name);
                            ("cache", Json.Str (if cached then "hit" else "miss"));
                            ("pipeline", Json.Str plan.Plan_cache.pipeline);
                            ("domain", Json.Str (Cdomain.to_string domain));
                            ( "query",
                              match plan.Plan_cache.program.Program.query with
                              | Some q -> Json.Str q
                              | None -> Json.Null );
                            ("answers", answers_json answers);
                            ("facts", Json.Int total);
                            ("maintain", maintain_json ms);
                            ( "rewrite_ms",
                              Json.Float
                                (if cached then 0.0 else ms_of_ns plan.Plan_cache.rewrite_ns) );
                            ("eval_ms", Json.Float (ms_of_ns eval_ns));
                          ]
                      end))))

let handle_update t ?id ~tenant ~view:name ~retract ~facts ~max_iterations ~max_derivations () =
  Obs.add_field_str "tenant" tenant;
  Obs.add_field_str "view" name;
  let err kind msg =
    Obs.incr t.errors;
    Obs.add_field_str "status" (Protocol.error_kind_to_string kind);
    Protocol.error_response ?id kind msg
  in
  (* maintenance goes through the same admission gate as evaluation: the
     tenant pays an in-flight slot and the effective budgets bound the
     delta/re-derivation rounds exactly as they bound a fresh fixpoint *)
  match
    Admission.admit t.adm ~tenant ~program_bytes:(String.length facts) ~max_iterations
      ~max_derivations
  with
  | Admission.Reject_oversized msg -> err Protocol.Oversized msg
  | Admission.Reject_busy msg | Admission.Reject_budget msg -> err Protocol.Admission msg
  | Admission.Admit { max_iterations; max_derivations } -> (
      Fun.protect ~finally:(fun () -> Admission.release t.adm ~tenant) @@ fun () ->
      let t0 = Obs.monotonic_ns () in
      let result =
        View_cache.with_view t.views ~tenant ~view:name (fun vw ->
            (* fact admission must use the view's domain: a Z-mode view
               rejects (drops) facts pinning non-integral values exactly as
               its original materialization would have *)
            Cdomain.with_domain (Engine.view_domain vw) @@ fun () ->
            match List.filter_map fact_opt (Parser.facts_of_string facts) with
            | exception Parser.Error msg -> Error (Protocol.Parse_error, "facts: " ^ msg)
            | fs -> (
                let op = if retract then Engine.retract else Engine.insert in
                match op ~max_iterations ~max_derivations vw fs with
                | exception Invalid_argument msg -> Error (Protocol.Internal, msg)
                | ms ->
                    if not ms.Engine.m_complete then
                      Error
                        ( Protocol.Budget,
                          Printf.sprintf
                            "maintenance truncated by its budget after %d iterations / %d \
                             derivations"
                            ms.Engine.m_iterations ms.Engine.m_derivations )
                    else Ok (ms, Engine.view_answers vw, Engine.view_total vw)))
      in
      match result with
      | None ->
          err Protocol.Unknown_view
            (Printf.sprintf
               "tenant %S has no view %S (materialize it first; it may have been evicted)"
               tenant name)
      | Some (Error (Protocol.Budget, msg)) ->
          (* a truncated view under-approximates its fixpoint; drop it
             rather than serve silently stale answers *)
          ignore (View_cache.remove t.views ~tenant ~view:name);
          err Protocol.Budget (msg ^ "; the view has been dropped")
      | Some (Error (kind, msg)) -> err kind msg
      | Some (Ok (ms, answers, total)) ->
          Obs.add_field_str "status" "ok";
          Obs.add_field "answers" (List.length answers);
          Protocol.ok_response ?id
            [
              ("tenant", Json.Str tenant);
              ("view", Json.Str name);
              ("op", Json.Str (if retract then "retract" else "insert"));
              ("answers", answers_json answers);
              ("facts", Json.Int total);
              ("maintain", maintain_json ms);
              ("eval_ms", Json.Float (ms_of_ns (Int64.sub (Obs.monotonic_ns ()) t0)));
            ])

let handle_query t ?id ~tenant ~view:name () =
  Obs.add_field_str "tenant" tenant;
  Obs.add_field_str "view" name;
  match
    View_cache.with_view t.views ~tenant ~view:name (fun vw ->
        ( Engine.view_answers vw,
          Engine.view_total vw,
          List.length (Engine.view_edb vw),
          Engine.view_complete vw,
          Engine.view_domain vw ))
  with
  | None ->
      Obs.incr t.errors;
      Obs.add_field_str "status" "unknown_view";
      Protocol.error_response ?id Protocol.Unknown_view
        (Printf.sprintf "tenant %S has no view %S" tenant name)
  | Some (answers, total, edb_facts, complete, domain) ->
      Obs.add_field_str "status" "ok";
      Obs.add_field "answers" (List.length answers);
      Protocol.ok_response ?id
        [
          ("tenant", Json.Str tenant);
          ("view", Json.Str name);
          ("domain", Json.Str (Cdomain.to_string domain));
          ("answers", answers_json answers);
          ("facts", Json.Int total);
          ("edb_facts", Json.Int edb_facts);
          ("fixpoint", Json.Bool complete);
        ]

(* ----- stats ----- *)

let stats_response t ?id () =
  let c = Plan_cache.stats t.cache in
  Protocol.ok_response ?id
    [
      ( "server",
        Json.Obj
          [
            ("workers", Json.Int t.config.workers);
            ("connections_served", Json.Int (Atomic.get t.served));
            ("requests", Json.Int (Obs.value t.requests));
            ("errors", Json.Int (Obs.value t.errors));
            ( "uptime_ms",
              Json.Float (ms_of_ns (Int64.sub (Obs.monotonic_ns ()) t.started_ns)) );
          ] );
      ( "plan_cache",
        Json.Obj
          [
            ("entries", Json.Int c.Plan_cache.entries);
            ("hits", Json.Int c.Plan_cache.hits);
            ("misses", Json.Int c.Plan_cache.misses);
            ("evictions", Json.Int c.Plan_cache.evictions);
          ] );
      ( "view_cache",
        (let v = View_cache.stats t.views in
         Json.Obj
           [
             ("entries", Json.Int v.View_cache.entries);
             ("hits", Json.Int v.View_cache.hits);
             ("misses", Json.Int v.View_cache.misses);
             ("evictions", Json.Int v.View_cache.evictions);
           ]) );
      ( "tenants",
        Json.List
          (List.map
             (fun (s : Admission.tenant_stats) ->
               Json.Obj
                 [
                   ("tenant", Json.Str s.Admission.tenant);
                   ("inflight", Json.Int s.Admission.inflight);
                   ("served", Json.Int s.Admission.served);
                   ("rejected", Json.Int s.Admission.rejected);
                 ])
             (Admission.tenants t.adm)) );
    ]

(* ----- dispatch ----- *)

let respond t payload =
  Obs.span "serve.request" @@ fun () ->
  Obs.incr t.requests;
  let malformed msg =
    Obs.incr t.errors;
    Obs.add_field_str "status" "malformed";
    Protocol.error_response Protocol.Malformed msg
  in
  match Json.parse payload with
  | Error msg -> malformed msg
  | Ok j -> (
      match Protocol.request_of_json j with
      | Error msg -> malformed msg
      | Ok (Protocol.Ping { id }) ->
          Obs.add_field_str "status" "ok";
          Protocol.ok_response ?id [ ("pong", Json.Bool true) ]
      | Ok (Protocol.Stats { id }) ->
          Obs.add_field_str "status" "ok";
          stats_response t ?id ()
      | Ok (Protocol.Eval e) ->
          if stopping t then begin
            Obs.incr t.errors;
            Protocol.error_response ?id:e.id Protocol.Shutting_down
              "server is shutting down; no new evaluations"
          end
          else
            handle_eval t ?id:e.id ~tenant:e.tenant ~program:e.program ~edb:e.edb
              ~pipeline:e.pipeline ~domain:e.domain ~max_iterations:e.max_iterations
              ~max_derivations:e.max_derivations ()
      | Ok (Protocol.Materialize m) ->
          if stopping t then begin
            Obs.incr t.errors;
            Protocol.error_response ?id:m.id Protocol.Shutting_down
              "server is shutting down; no new evaluations"
          end
          else
            handle_materialize t ?id:m.id ~tenant:m.tenant ~view:m.view ~program:m.program
              ~edb:m.edb ~pipeline:m.pipeline ~domain:m.domain ~max_iterations:m.max_iterations
              ~max_derivations:m.max_derivations ()
      | Ok (Protocol.Update u) ->
          if stopping t then begin
            Obs.incr t.errors;
            Protocol.error_response ?id:u.id Protocol.Shutting_down
              "server is shutting down; no new evaluations"
          end
          else
            handle_update t ?id:u.id ~tenant:u.tenant ~view:u.view ~retract:u.retract
              ~facts:u.facts ~max_iterations:u.max_iterations
              ~max_derivations:u.max_derivations ()
      | Ok (Protocol.Query q) ->
          (* read-only and cheap: allowed even while draining *)
          handle_query t ?id:q.id ~tenant:q.tenant ~view:q.view ())

(* ----- connection plumbing ----- *)

exception Client_gone

let write_all fd bytes =
  let n = Bytes.length bytes in
  let rec go off =
    if off < n then
      match Unix.write fd bytes off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Client_gone
  in
  go 0

(* Blocking read that wakes up at a stop request: poll with a short select
   so a drained server closes idle connections at the next quiet moment,
   while data already in flight keeps being served. *)
let read_with_stop t fd buf off len =
  let rec go () =
    match Unix.select [ fd ] [] [] 0.15 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | [], _, _ -> if stopping t then 0 else go ()
    | _ -> (
        match Unix.read fd buf off len with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0)
  in
  go ()

let handle_connection t fd =
  let r = Protocol.reader ~max_frame:t.config.max_frame_bytes (read_with_stop t fd) in
  let out = Buffer.create 1024 in
  let send j =
    Buffer.clear out;
    Protocol.write_frame out j;
    write_all fd (Buffer.to_bytes out)
  in
  let frame_err kind (e : Protocol.frame_error) =
    Obs.incr t.errors;
    send (Protocol.error_response kind (Protocol.frame_error_to_string e))
  in
  let rec loop () =
    match Protocol.read_frame r with
    | Error Protocol.Closed | Error Protocol.Truncated -> ()
    | Error (Protocol.Bad_header _ as e) -> frame_err Protocol.Malformed e
    | Error (Protocol.Too_large _ as e) -> frame_err Protocol.Oversized e
    | Ok payload ->
        send (respond t payload);
        loop ()
  in
  (try loop () with
  | Client_gone -> ()
  | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ----- accept loop ----- *)

let accept_loop t =
  let conns = ref [] in
  let rec go () =
    if not (stopping t) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.15 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | fd, _ ->
              Atomic.incr t.served;
              conns := Pool.submit t.pool (fun () -> handle_connection t fd) :: !conns;
              (* keep the tracking list from growing with connection count *)
              if List.length !conns > 64 then
                conns := List.filter (fun j -> not (Pool.is_done j)) !conns));
      go ()
    end
  in
  go ();
  (* drain: every accepted connection finishes its in-flight requests *)
  List.iter Pool.await !conns;
  Pool.shutdown t.pool;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.config.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

(* ----- lifecycle ----- *)

let start config =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      config = { config with workers = max 1 config.workers };
      listen_fd;
      (* [workers] domains run connection jobs; the accept domain only
         submits, so it is not counted as a pool worker *)
      pool = Pool.create ~jobs:(max 1 config.workers + 1);
      cache = Plan_cache.create ~max_entries:config.plan_cache_entries;
      views = View_cache.create ~max_entries:config.view_cache_entries;
      adm = Admission.create config.limits;
      stop_flag = Atomic.make false;
      served = Atomic.make 0;
      requests = Obs.counter "serve.requests";
      errors = Obs.counter "serve.errors";
      started_ns = Obs.monotonic_ns ();
      accept_domain = None;
    }
  in
  t.accept_domain <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let wait t =
  match t.accept_domain with
  | Some d ->
      Domain.join d;
      t.accept_domain <- None
  | None -> ()
