module Obs = Cql_obs.Obs

type limits = {
  max_program_bytes : int;
  max_inflight_per_tenant : int;
  max_derivations : int;
  max_iterations : int;
}

let default_limits =
  {
    max_program_bytes = 1024 * 1024;
    max_inflight_per_tenant = 4;
    max_derivations = 200_000;
    max_iterations = 200;
  }

type tenant_state = { mutable inflight : int; served : Obs.counter; rejected : Obs.counter }

type t = { limits : limits; m : Mutex.t; table : (string, tenant_state) Hashtbl.t }

let create limits = { limits; m = Mutex.create (); table = Hashtbl.create 16 }
let limits t = t.limits

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* [Obs.counter] returns the existing cell when the name is registered, so
   re-creating a tenant state after a restart keeps its process totals *)
let state t tenant =
  match Hashtbl.find_opt t.table tenant with
  | Some s -> s
  | None ->
      let s =
        {
          inflight = 0;
          served = Obs.counter (Printf.sprintf "serve.tenant.%s.served" tenant);
          rejected = Obs.counter (Printf.sprintf "serve.tenant.%s.rejected" tenant);
        }
      in
      Hashtbl.add t.table tenant s;
      s

type verdict =
  | Admit of { max_iterations : int; max_derivations : int }
  | Reject_oversized of string
  | Reject_busy of string
  | Reject_budget of string

let admit t ~tenant ~program_bytes ~max_iterations ~max_derivations =
  locked t (fun () ->
      let s = state t tenant in
      let l = t.limits in
      let reject mk msg =
        Obs.incr s.rejected;
        mk msg
      in
      if program_bytes > l.max_program_bytes then
        reject
          (fun m -> Reject_oversized m)
          (Printf.sprintf "program of %d bytes exceeds the %d-byte limit" program_bytes
             l.max_program_bytes)
      else if s.inflight >= l.max_inflight_per_tenant then
        reject
          (fun m -> Reject_busy m)
          (Printf.sprintf "tenant %S already has %d requests in flight" tenant s.inflight)
      else
        let over name asked cap =
          reject
            (fun m -> Reject_budget m)
            (Printf.sprintf "requested %s budget %d exceeds the server cap %d" name asked cap)
        in
        match (max_iterations, max_derivations) with
        | Some it, _ when it > l.max_iterations -> over "iteration" it l.max_iterations
        | _, Some d when d > l.max_derivations -> over "derivation" d l.max_derivations
        | _ ->
            s.inflight <- s.inflight + 1;
            Obs.incr s.served;
            Admit
              {
                max_iterations = Option.value max_iterations ~default:l.max_iterations;
                max_derivations = Option.value max_derivations ~default:l.max_derivations;
              })

let release t ~tenant =
  locked t (fun () ->
      let s = state t tenant in
      s.inflight <- max 0 (s.inflight - 1))

type tenant_stats = { tenant : string; inflight : int; served : int; rejected : int }

let tenants t =
  locked t (fun () ->
      Hashtbl.fold
        (fun tenant (s : tenant_state) acc ->
          {
            tenant;
            inflight = s.inflight;
            served = Obs.value s.served;
            rejected = Obs.value s.rejected;
          }
          :: acc)
        t.table [])
  |> List.sort (fun a b -> compare a.tenant b.tenant)
