(** The cqlserved daemon core: a persistent multi-tenant query service over
    a Unix-domain socket.

    Architecture (all dependency-free, in the style of lib/par and lib/obs):

    {ul
    {- One accept domain owns the listening socket.  Each accepted
       connection becomes one independent job on a {!Cql_par.Pool} executor
       ({!Cql_par.Pool.submit}), so up to [workers] connections are served
       concurrently, each request running its fixpoint sequentially
       ([~jobs:1]) on its worker domain — one fixpoint per request task,
       not one pooled run per process.}
    {- Requests and responses are length-prefixed NDJSON frames
       ({!Protocol}).  CQL syntax errors come back as structured
       [parse_error] responses carrying the parser's token/position
       message; malformed frames and JSON come back as [malformed].}
    {- Compiled plans (the constraint-pushing rewrite of a program) are
       interned in a {!Plan_cache} keyed by source digest: a warm repeat
       query skips the rewrite pipeline entirely, observable through the
       [serve.plan_cache.hits] counter and the response's ["cache"] field.}
    {- [materialize] keeps the evaluated program alive as an incremental
       view ({!Cql_eval.Engine.materialize}) in a {!View_cache} keyed by
       tenant and view name, alongside the plan cache; [insert]/[retract]
       then maintain its fixpoint in place and answer with the updated
       query answers, and [query] reads it without evaluating anything.}
    {- {!Admission} rejects oversized programs, over-parallel tenants and
       over-budget requests before any work happens; admitted requests run
       under the engine's derivation/iteration budgets and a run that is
       truncated by its budget returns a [budget] error rather than a
       silently partial answer.  Maintenance requests pass the same gate,
       and a truncated maintenance round additionally {e drops} the view —
       its contents would under-approximate the fixpoint.}
    {- Every request runs inside an [Obs] span ([serve.request] with
       tenant/op/cache/status fields), so [--trace-json] gives per-request
       NDJSON traces with solver-counter deltas attached.}}

    Shutdown ({!stop}, or SIGTERM/SIGINT in the daemon binary) stops
    accepting, lets every connection finish the requests already submitted
    (idle connections are closed at the next quiet moment), then joins the
    workers.  In-flight evaluations always get their responses. *)

type config = {
  socket_path : string;
  workers : int;  (** concurrent connection handlers (clamped to >= 1) *)
  limits : Admission.limits;
  plan_cache_entries : int;
  view_cache_entries : int;  (** live materialized views kept (LRU) *)
  max_frame_bytes : int;
}

val default_config : socket_path:string -> config
(** 4 workers, {!Admission.default_limits}, 256 cached plans, 64 live
    views, 4 MiB frames. *)

type t

val start : config -> t
(** Bind the socket (unlinking a stale file first), spawn the accept domain
    and the worker pool, and return immediately.  Ignores SIGPIPE
    process-wide (a client hanging up mid-response must not kill the
    daemon). *)

val stop : t -> unit
(** Request shutdown; safe to call from a signal handler (it only flips an
    atomic). *)

val stopping : t -> bool

val wait : t -> unit
(** Block until the accept domain has drained and everything is joined;
    the socket file is unlinked.  [stop] must be called (by anyone) for
    this to return. *)

val connections_served : t -> int

(** {1 Request handling} — exposed for tests; the daemon drives it through
    the socket. *)

val respond : t -> string -> Json.t
(** Decode one frame payload, dispatch, and build the response (inside the
    [serve.request] span). *)
