type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ----- printing ----- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* integral floats inside the 2^53 safe range keep the "x.0" form so
         readers can tell them from Int; everything else gets the shortest
         decimal that parses back to the same float — %.12g silently
         truncates (0.1 +. 0.2 would echo as 0.3) *)
      if Float.is_integer f && Float.abs f < 9007199254740992.0 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else
        let s15 = Printf.sprintf "%.15g" f in
        if float_of_string s15 = f then Buffer.add_string b s15
        else
          let s16 = Printf.sprintf "%.16g" f in
          if float_of_string s16 = f then Buffer.add_string b s16
          else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s -> escape_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ", ";
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          escape_string b k;
          Buffer.add_string b ": ";
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ----- parsing ----- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          let c = s.[!pos] in
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              let cp = try hex4 () with Failure _ -> fail "bad \\u escape" in
              let cp =
                (* a high surrogate must be followed by \uXXXX low surrogate *)
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = try hex4 () with Failure _ -> fail "bad \\u escape" in
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else cp
              in
              add_utf8 b cp
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () = match peek () with Some ('0' .. '9') -> true | _ -> false in
    if not (is_digit ()) then fail "expected a digit";
    while is_digit () do
      advance ()
    done;
    let fractional = ref false in
    if peek () = Some '.' then begin
      fractional := true;
      advance ();
      if not (is_digit ()) then fail "expected a digit after '.'";
      while is_digit () do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        fractional := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then fail "expected an exponent digit";
        while is_digit () do
          advance ()
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let items = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            items := (k, v) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !items)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing content after the document";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "JSON error at byte %d: %s" at msg)

(* ----- accessors ----- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_str = function Str s -> Some s | _ -> None

type int_error = Not_an_integer | Unsafe_integer

(* Doubles lose integer precision from 2^53 up (9007199254740993 parses to
   the float 9007199254740992.), so accepting the old 1e15 bound silently
   corrupted large ids.  Only the safe range converts; integral floats
   beyond it are a distinct, reportable error. *)
let to_int_checked = function
  | Int i -> Ok i
  | Float f when Float.is_integer f && Float.abs f < 9007199254740992.0 -> Ok (int_of_float f)
  | Float f when Float.is_integer f -> Error Unsafe_integer
  | _ -> Error Not_an_integer

let to_int j = Result.to_option (to_int_checked j)

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
