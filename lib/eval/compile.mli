(** Compiled join plans: register-frame execution of planner plans.

    Each [(rule, pivot)] plan from {!Cql_store.Planner} is compiled once per
    run into a flat program: every body literal becomes an array of
    per-argument {e actions} ([Check_const], [Check_reg], [Bind_reg])
    resolved against the plan's binding order at compile time, and the probe
    literal for each step is rebuilt from constants and register reads.
    Rule variables live in a mutable register frame overwritten per
    candidate; the fresh variables that non-ground facts introduce are bound
    in a side substitution through the interpreter's own
    {!Cql_datalog.Subst.unify_terms}, so the compiled executor and the
    tuple-at-a-time interpreter enumerate identical derivations in identical
    order — subsumption, provenance, budgets, delta partitioning and every
    [--jobs] value are bit-for-bit equivalent.

    [CQLOPT_NO_COMPILE=1] (or [--no-compile]) disables compilation, falling
    back to the interpreter.  Counters: [engine.compile.programs_compiled],
    [engine.compile.ops], [engine.compile.frame_width] (and
    [engine.compile.cache_hits] in the engine, for precompiled programs). *)

open Cql_constr
open Cql_datalog
module Store = Cql_store.Store
module Planner = Cql_store.Planner

val enabled : bool ref
(** Whether the engine compiles plans (default: true unless
    [CQLOPT_NO_COMPILE] is set to a non-empty, non-["0"] value). *)

val with_compile : bool -> (unit -> 'a) -> 'a
(** Run a thunk with compilation forced on or off, restoring the previous
    setting afterwards (used by the differential fuzz oracle). *)

val fact_literal : Fact.t -> Literal.t * Conj.t
(** Instantiate a stored fact as a body-literal match target: pinned numeric
    positions become constants, unpinned ones fresh variables carrying the
    renamed residual constraint. *)

val derive_head_env :
  lookup:(Var.t -> Term.t) -> Rule.t -> Conj.t -> Fact.t option
(** Finish one candidate derivation over an environment: conjoin the rule's
    constraint with the body constraint, instantiate via [lookup]
    (fully-resolved terms, as {!Subst.apply_conj_env} expects), check
    satisfiability and project onto the head fact.  The interpreter's
    [derive_head] is this with a substitution lookup. *)

type code
(** A compiled (rule, plan) program. *)

val compile : Rule.t -> Planner.plan -> code

val ops : code -> int
(** Total per-argument actions across the program's steps. *)

val frame_width : code -> int
(** Registers in the frame (distinct body variables). *)

val exec :
  code ->
  iter_cands:
    (Store.partition ->
    pred:string ->
    arity:int ->
    int list ->
    Term.const list ->
    (Fact.t -> unit) ->
    unit) ->
  emit:(Fact.t -> Fact.t list -> unit) ->
  unit
(** Enumerate every derivation of the program against the store.
    [iter_cands part ~pred ~arity positions key k] must push the candidate
    facts of predicate [pred] agreeing with the constants [key] on the bound
    columns [positions] (ascending; empty means scan) in the backend's
    enumeration order — the columns are exactly what [Store.bound_columns]
    would extract from the resolved probe literal.  Candidates only need
    the arity guard: every other [matches_literal] condition is re-checked
    by the step's compiled actions.  [emit fact used] receives each derived
    head fact with the body facts it used, in original body-literal
    order. *)

val exec_seeded :
  code ->
  seed:Fact.t ->
  iter_cands:
    (Store.partition ->
    pred:string ->
    arity:int ->
    int list ->
    Term.const list ->
    (Fact.t -> unit) ->
    unit) ->
  emit:(Fact.t -> Fact.t list -> unit) ->
  unit
(** Like {!exec} with the first step's candidate fixed to [seed] — the
    parallel task path, where the first join step's fan-out is sliced into
    per-task chunks. *)
