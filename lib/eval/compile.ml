open Cql_num
open Cql_constr
open Cql_datalog
module Store = Cql_store.Store
module Planner = Cql_store.Planner
module Obs = Cql_obs.Obs

(* Compiled join plans: each (rule, pivot) plan from the planner is turned
   once per run into a register-frame program.  Every body literal becomes a
   precomputed per-argument action list — check a constant, check a register
   bound by an earlier occurrence, or bind a register — resolved against the
   plan's binding order at compile time, so the inner candidate loop runs no
   [Subst.unify_under] closure dispatch and builds no substitution maps for
   ground facts.  Head construction and the rule's constraint conjunction
   are instantiated by direct register reads.

   Transparency: enumeration visits the same candidates in the same order as
   the interpreter (probe keys are exactly the bound columns
   [Store.bound_columns] extracts from the literal [Subst.apply_literal]
   would have built), and the per-position actions are the
   interpreter's [Subst.unify_terms] calls specialized by binding time.
   Rule variables live in the register frame; bindings of the fresh
   variables that non-ground facts introduce go to a side substitution
   through the very same [Subst.unify_terms] — so derivations, their order,
   subsumption, provenance, budget truncation and every [--jobs] value are
   bit-for-bit identical to the interpreter. *)

let disabled_by_env =
  match Sys.getenv_opt "CQLOPT_NO_COMPILE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let enabled = ref (not disabled_by_env)

let with_compile on f =
  let prev = !enabled in
  enabled := on;
  Fun.protect ~finally:(fun () -> enabled := prev) f

let ctr_programs = Obs.counter "engine.compile.programs_compiled"
let ctr_ops = Obs.counter "engine.compile.ops"
let ctr_frame = Obs.counter "engine.compile.frame_width"

(* ----- fact instantiation (moved from the engine) ----- *)

(* instantiate a stored fact as a literal: pinned numeric positions become
   constants (so ground workloads never touch the solver), the rest become
   fresh variables carrying the renamed residual constraints *)
let fact_literal (f : Fact.t) : Literal.t * Conj.t =
  let n = Fact.arity f in
  let fresh = Array.make n None in
  let args =
    List.init n (fun i ->
        match f.Fact.args.(i) with
        | Fact.Psym s -> Term.sym s
        | Fact.Pvar -> (
            match f.Fact.pinned.(i) with
            | Some q -> Term.num q
            | None ->
                let v = Var.fresh "F" in
                fresh.(i) <- Some v;
                Term.var v))
  in
  let residual =
    if Array.for_all (fun o -> o = None) fresh then Conj.tt
    else begin
      (* substitute pinned values, rename the remaining canonical vars *)
      let c =
        Array.to_list f.Fact.pinned
        |> List.mapi (fun i q -> (i, q))
        |> List.fold_left
             (fun c (i, q) ->
               match q with
               | Some q when f.Fact.args.(i) = Fact.Pvar ->
                   Conj.subst (Var.arg (i + 1)) (Linexpr.const q) c
               | _ -> c)
             (Fact.cstr f)
      in
      let ren v =
        match Var.arg_index v with
        | Some i when i >= 1 && i <= n -> (
            match fresh.(i - 1) with Some fv -> fv | None -> v)
        | _ -> v
      in
      Conj.rename ren c
    end
  in
  (Literal.make (Fact.pred f) args, residual)

(* ----- head derivation over an environment ----- *)

(* finish one candidate derivation: instantiate the combined constraint,
   check satisfiability, project onto the head fact.  [lookup] must return
   fully-resolved terms (see Subst.apply_*_env); the interpreter passes a
   substitution resolve, the executor below a register read. *)
let derive_from_combined ~lookup (rule : Rule.t) combined : Fact.t option =
  try
    let combined = Subst.apply_conj_env ~lookup combined in
    if not (Conj.is_sat combined) then None
    else begin
      (* build the head fact over canonical $i variables *)
      let head = Subst.apply_literal_env ~lookup rule.Rule.head in
      let n = Literal.arity head in
      let args = Array.make n Fact.Pvar in
      let atoms = ref (Conj.to_list combined) in
      List.iteri
        (fun i t ->
          let ai = Var.arg (i + 1) in
          match (t : Term.t) with
          | Term.C (Term.Sym s) -> args.(i) <- Fact.Psym s
          | Term.C (Term.Num q) ->
              atoms := Atom.eq (Linexpr.var ai) (Linexpr.const q) :: !atoms
          | Term.V v -> atoms := Atom.eq (Linexpr.var ai) (Linexpr.var v) :: !atoms)
        head.Literal.args;
      match Fact.make head.Literal.pred args (Conj.of_list !atoms) with
      | f -> Some f
      | exception Fact.Unsat -> None
    end
  with Subst.Type_error _ -> None (* symbolic constant met an arithmetic constraint *)

let derive_head_env ~lookup (rule : Rule.t) body_cstr : Fact.t option =
  derive_from_combined ~lookup rule (Conj.and_ rule.Rule.cstr body_cstr)

(* Fast leaf for a combined constraint that evaluated to true under a fully
   numeric environment: the instantiated conjunction is [tt] (every atom is
   variable-free and true, so [Conj.of_list] drops them all), satisfiability
   is trivial, and the head fact carries only the position-pinning
   equalities — exactly what [derive_from_combined] would build, minus the
   substitution and solver work. *)
let build_head_fast ~lookup (rule : Rule.t) : Fact.t option =
  let head = rule.Rule.head in
  let n = Literal.arity head in
  let args = Array.make n Fact.Pvar in
  let atoms = ref [] in
  List.iteri
    (fun i t ->
      let ai = Var.arg (i + 1) in
      let t = match (t : Term.t) with Term.V v -> lookup v | _ -> t in
      match (t : Term.t) with
      | Term.C (Term.Sym s) -> args.(i) <- Fact.Psym s
      | Term.C (Term.Num q) -> atoms := Atom.eq (Linexpr.var ai) (Linexpr.const q) :: !atoms
      | Term.V v -> atoms := Atom.eq (Linexpr.var ai) (Linexpr.var v) :: !atoms)
    head.Literal.args;
  match Fact.make head.Literal.pred args (Conj.of_list !atoms) with
  | f -> Some f
  | exception Fact.Unsat -> None

(* ----- the op set ----- *)

(* one action per argument position of a body literal, fixed at compile
   time from the plan's binding order *)
type action =
  | Check_const of Term.const  (* argument is a constant: fact must agree *)
  | Check_reg of int  (* variable bound earlier: fact must unify with the register *)
  | Bind_reg of int  (* first occurrence: write the fact's value to the register *)

(* sources of the probe's bound columns: positions holding a compile-time
   constant or an earlier-bound variable's register.  Never-bound positions
   are omitted — they can contribute no index key. *)
type probe_src = PS_const of int * Term.const | PS_reg of int * int

(* sources of the head fact's positions, resolved against the final
   register assignment: a constant, a body-bound variable's register, or a
   variable no body literal binds (constraint-computed or universal) *)
type hsrc = H_const of Term.const | H_reg of int | H_var of Var.t

type cstep = {
  c_lit : Literal.t;  (* the original body literal (predicate, shape) *)
  c_arity : int;
  c_orig : int;  (* original body position, for used-fact ordering *)
  c_part : Store.partition;
  c_actions : action array;
  c_probe : probe_src array;
}

type code = {
  c_rule : Rule.t;
  c_steps : cstep array;
  c_used_perm : int array;  (* step indices sorted by original position *)
  c_nregs : int;
  c_reg_of : int Var.Map.t;  (* rule variable -> register *)
  c_head : hsrc array;  (* head argument layout *)
}

let ops code =
  Array.fold_left (fun acc s -> acc + Array.length s.c_actions) 0 code.c_steps

let frame_width code = code.c_nregs

(* ----- compilation ----- *)

let compile (rule : Rule.t) (plan : Planner.plan) : code =
  let reg_of = ref Var.Map.empty in
  let nregs = ref 0 in
  let compile_step (step : Planner.step) (bound_before, _newly) =
    (* probe columns use the bindings available when the step starts; a
       position neither constant nor bound before the step is dropped here,
       exactly as [Store.bound_columns] would skip the variable it still
       holds in the resolved literal *)
    let probe =
      List.concat
        (List.mapi
           (fun i (t : Term.t) ->
             match t with
             | Term.C c -> [ PS_const (i, c) ]
             | Term.V v ->
                 if Var.Set.mem v bound_before then
                   [ PS_reg (i, Var.Map.find v !reg_of) ]
                 else [])
           step.Planner.lit.Literal.args)
    in
    (* actions additionally see variables bound left-to-right within the
       step: the second occurrence of a repeated variable checks the
       register the first occurrence just wrote *)
    let seen = ref Var.Set.empty in
    let actions =
      List.map
        (fun (t : Term.t) ->
          match t with
          | Term.C c -> Check_const c
          | Term.V v ->
              if Var.Set.mem v bound_before || Var.Set.mem v !seen then
                Check_reg (Var.Map.find v !reg_of)
              else begin
                let r = !nregs in
                incr nregs;
                reg_of := Var.Map.add v r !reg_of;
                seen := Var.Set.add v !seen;
                Bind_reg r
              end)
        step.Planner.lit.Literal.args
    in
    {
      c_lit = step.Planner.lit;
      c_arity = Literal.arity step.Planner.lit;
      c_orig = step.Planner.orig;
      c_part = step.Planner.part;
      c_actions = Array.of_list actions;
      c_probe = Array.of_list probe;
    }
  in
  let steps =
    Array.of_list (List.map2 compile_step plan (Planner.step_bindings plan))
  in
  let perm = Array.init (Array.length steps) Fun.id in
  Array.sort (fun a b -> compare steps.(a).c_orig steps.(b).c_orig) perm;
  (* head layout against the final register assignment (every body variable
     is registered by now) *)
  let head_src =
    Array.of_list
      (List.map
         (fun (t : Term.t) ->
           match t with
           | Term.C c -> H_const c
           | Term.V v -> (
               match Var.Map.find_opt v !reg_of with
               | Some r -> H_reg r
               | None -> H_var v))
         rule.Rule.head.Literal.args)
  in
  let code =
    {
      c_rule = rule;
      c_steps = steps;
      c_used_perm = perm;
      c_nregs = !nregs;
      c_reg_of = !reg_of;
      c_head = head_src;
    }
  in
  Obs.incr ctr_programs;
  Obs.add ctr_ops (ops code);
  Obs.add ctr_frame code.c_nregs;
  code

(* ----- equation-chain solving at the leaf ----- *)

(* The classification of a rule variable at the leaf: bound to a number,
   bound to a symbol, or not bound by any body literal (a head computed by
   constraint arithmetic, e.g. [T = T1 + T2 + 30]). *)
type binding = B_num of Rat.t | B_sym | B_free

(* Solve the combined constraint's equational definitions of the free
   variables: an [=] atom whose terms contain exactly one free variable and
   otherwise only numbers forces that variable's value, and iterating to a
   fixpoint resolves triangular chains ([X = Y + 1, Y = Z + Z, ...]).  A
   forced value holds in {e every} satisfying assignment, so once all atoms
   evaluate under the extended environment that evaluation decides
   satisfiability exactly; if any atom stays undecided (symbol-bound or
   genuinely underdetermined variables) the caller falls back to the
   generic substitution + solver path.  Returns [None] when no variable
   was solved. *)
let solve_eq_chain classify atoms =
  let solved = ref Var.Map.empty in
  let value v =
    match Var.Map.find_opt v !solved with
    | Some _ as q -> q
    | None -> ( match classify v with B_num q -> Some q | B_sym | B_free -> None)
  in
  let solve_atom (a : Atom.t) =
    if a.Atom.op = Atom.Eq then begin
      let sum = ref (Linexpr.constant a.Atom.expr) in
      let unknown = ref None in
      let stuck = ref false in
      List.iter
        (fun (v, k) ->
          match value v with
          | Some q -> sum := Rat.add !sum (Rat.mul k q)
          | None -> (
              match (classify v, !unknown) with
              | B_free, None -> unknown := Some (v, k)
              | _ -> stuck := true))
        (Linexpr.terms a.Atom.expr);
      match (!stuck, !unknown) with
      | false, Some (v, k) -> solved := Var.Map.add v (Rat.neg (Rat.div !sum k)) !solved
      | _ -> ()
    end
  in
  let rec fix budget =
    let before = Var.Map.cardinal !solved in
    List.iter solve_atom atoms;
    if Var.Map.cardinal !solved > before && budget > 0 then fix (budget - 1)
  in
  fix (List.length atoms);
  if Var.Map.is_empty !solved then None else Some (value, !solved)

(* ----- execution ----- *)

let dummy_term = Term.C (Term.Sym "")
let dummy_fact = Fact.ground "" []

(* the fact's constant at a position of a ground fact *)
let fact_const_term (f : Fact.t) i : Term.t =
  match f.Fact.args.(i) with
  | Fact.Psym s -> Term.sym s
  | Fact.Pvar -> (
      match f.Fact.pinned.(i) with
      | Some q -> Term.num q
      | None -> assert false (* ground facts pin every numeric position *))

(* does a ground fact's position agree with a constant?  The [unify_terms]
   constant/constant case without building the fact-side term *)
let const_matches (c : Term.const) (f : Fact.t) i =
  match (c, f.Fact.args.(i)) with
  | Term.Sym s1, Fact.Psym s2 -> String.equal s1 s2
  | Term.Num q1, Fact.Pvar -> (
      match f.Fact.pinned.(i) with Some q2 -> Rat.equal q1 q2 | None -> false)
  | Term.Num _, Fact.Psym _ | Term.Sym _, Fact.Pvar -> false

type frame = { regs : Term.t array; chosen : Fact.t array }

let make_frame code =
  {
    regs = Array.make code.c_nregs dummy_term;
    (* every slot is written before any read: a step stores its candidate
       before descending, and the leaf only runs once all steps have *)
    chosen = Array.make (Array.length code.c_steps) dummy_fact;
  }

(* Apply one step's actions to a candidate fact.  Returns the updated side
   substitution (fresh-variable bindings) and body constraint, or [None] on
   a failed check.  Registers are overwritten in place: enumeration is a
   depth-first walk, so any later read of a register is dominated by the
   write of the current candidate. *)
let apply_fact (fr : frame) (st : cstep) f side cstr =
  let nargs = Array.length st.c_actions in
  if Fact.is_ground f then begin
    (* every position is a constant and the residual is [tt]: actions run
       as direct comparisons, no literal or substitution is built *)
    let rec go i side =
      if i = nargs then Some (side, cstr)
      else
        match st.c_actions.(i) with
        | Check_const c -> if const_matches c f i then go (i + 1) side else None
        | Check_reg r -> (
            match Subst.resolve side fr.regs.(r) with
            | Term.C c -> if const_matches c f i then go (i + 1) side else None
            | Term.V _ as t -> (
                (* register chain ends at an unbound fresh variable: bind it *)
                match Subst.unify_terms side t (fact_const_term f i) with
                | Some side' -> go (i + 1) side'
                | None -> None))
        | Bind_reg r ->
            fr.regs.(r) <- fact_const_term f i;
            go (i + 1) side
    in
    go 0 side
  end
  else begin
    let flit, fcstr = fact_literal f in
    let fargs = Array.of_list flit.Literal.args in
    let rec go i side =
      if i = nargs then Some (side, Conj.and_ cstr fcstr)
      else
        let fa = fargs.(i) in
        match st.c_actions.(i) with
        | Check_const c -> (
            match Subst.unify_terms side (Term.C c) fa with
            | Some side' -> go (i + 1) side'
            | None -> None)
        | Check_reg r -> (
            match Subst.unify_terms side fr.regs.(r) fa with
            | Some side' -> go (i + 1) side'
            | None -> None)
        | Bind_reg r ->
            fr.regs.(r) <- Subst.resolve side fa;
            go (i + 1) side
    in
    go 0 side
  end

(* the probe's bound columns, exactly [Store.bound_columns] over the
   resolved literal [Subst.apply_literal theta lit]: compile-time constants
   plus register reads that resolve to constants, ascending positions — a
   register chain ending at an unbound fresh variable contributes nothing,
   as the still-variable position of the resolved literal would not *)
let probe_cols (fr : frame) (st : cstep) side =
  let ps = st.c_probe in
  let n = Array.length ps in
  let rec go j =
    if j = n then ([], [])
    else
      match ps.(j) with
      | PS_const (i, c) ->
          let rest_p, rest_k = go (j + 1) in
          (i :: rest_p, c :: rest_k)
      | PS_reg (i, r) -> (
          match Subst.resolve side fr.regs.(r) with
          | Term.C c ->
              let rest_p, rest_k = go (j + 1) in
              (i :: rest_p, c :: rest_k)
          | Term.V _ -> go (j + 1))
  in
  go 0

let dummy_const = Term.Sym ""

let run_from (code : code) (fr : frame) ~iter_cands ~emit start side0 cstr0 =
  let nsteps = Array.length code.c_steps in
  let rule = code.c_rule in
  let hpred = rule.Rule.head.Literal.pred in
  let leaf side cstr =
    let lookup v =
      match Var.Map.find_opt v code.c_reg_of with
      | Some r -> Subst.resolve side fr.regs.(r)
      | None -> Subst.resolve side (Term.V v)
    in
    let combined = Conj.and_ rule.Rule.cstr cstr in
    (* all-constant head off the precomputed layout, ending in the
       canonicalization-free [Fact.of_consts]; [value] supplies values the
       equation-chain solver forced for otherwise-unbound variables.
       Returns [None] only when some head position stays a variable — the
       caller then builds the non-ground fact generically. *)
    (* [Fact.of_consts] skips the solver, so in integer mode a non-integral
       numeric head constant must not take this path: over ℤ the pin
       [$i = q] is unsatisfiable, which [Fact.make] on the generic path
       detects.  Bailing to [None] keeps the compiled executor bit-for-bit
       with the interpreter. *)
    let const_ok =
      if Cdomain.is_z () then function Term.Num q -> Rat.is_integer q | Term.Sym _ -> true
      else fun _ -> true
    in
    let head_consts value =
      let hs = code.c_head in
      let n = Array.length hs in
      let consts = Array.make n dummy_const in
      let rec go i =
        if i = n then Some (Fact.of_consts hpred consts)
        else
          let t =
            match hs.(i) with
            | H_const c -> Term.C c
            | H_reg r -> Subst.resolve side fr.regs.(r)
            | H_var v -> Subst.resolve side (Term.V v)
          in
          match t with
          | Term.C c ->
              if const_ok c then begin
                consts.(i) <- c;
                go (i + 1)
              end
              else None
          | Term.V v -> (
              match value v with
              | Some q when const_ok (Term.Num q) ->
                  consts.(i) <- Term.Num q;
                  go (i + 1)
              | Some _ | None -> None)
      in
      go 0
    in
    let head =
      (* evaluate the combined constraint directly off the registers; only
         an undecided atom (unbound or symbolic variable) pays for the
         generic substitution + solver path *)
      let env v =
        match (lookup v : Term.t) with Term.C (Term.Num q) -> Some q | _ -> None
      in
      match Conj.eval_at env combined with
      | Some false -> None
      | Some true -> (
          match head_consts (fun _ -> None) with
          | Some _ as f -> f
          | None -> build_head_fast ~lookup rule)
      | None -> (
          (* some variable is not bound by the body literals; solve the
             arithmetic chain off the registers before paying for generic
             substitution, interning and the solver *)
          let classify v =
            match (lookup v : Term.t) with
            | Term.C (Term.Num q) -> B_num q
            | Term.C (Term.Sym _) -> B_sym
            | Term.V _ -> B_free
          in
          match solve_eq_chain classify (Conj.to_list combined) with
          | Some (_, solved)
            when Cdomain.is_z () && Var.Map.exists (fun _ q -> not (Rat.is_integer q)) solved ->
              (* a forced value holds in every satisfying assignment, so a
                 non-integral one proves the combined constraint has no
                 integer solution — exactly what the generic path's
                 [Conj.is_sat] would conclude *)
              None
          | Some (value, _) -> (
              match Conj.eval_at value combined with
              | Some false -> None
              | Some true -> (
                  match head_consts value with
                  | Some _ as f -> f
                  | None ->
                      let lookup v =
                        match value v with
                        | Some q -> Term.C (Term.Num q)
                        | None -> lookup v
                      in
                      build_head_fast ~lookup rule)
              | None -> derive_from_combined ~lookup rule combined)
          | None -> derive_from_combined ~lookup rule combined)
    in
    match head with
    | None -> ()
    | Some f ->
        let used =
          Array.fold_right (fun i acc -> fr.chosen.(i) :: acc) code.c_used_perm []
        in
        emit f used
  in
  let rec step_loop si side cstr =
    if si = nsteps then leaf side cstr
    else begin
      let st = code.c_steps.(si) in
      let positions, key = probe_cols fr st side in
      iter_cands st.c_part ~pred:st.c_lit.Literal.pred ~arity:st.c_arity positions key
        (fun f ->
          match apply_fact fr st f side cstr with
          | None -> ()
          | Some (side', cstr') ->
              fr.chosen.(si) <- f;
              step_loop (si + 1) side' cstr')
    end
  in
  step_loop start side0 cstr0

let exec (code : code) ~iter_cands ~emit =
  let fr = make_frame code in
  run_from code fr ~iter_cands ~emit 0 Subst.empty Conj.tt

(* parallel-task entry: step 0's candidate is fixed (the task's slice of
   the first join step's fan-out); mirrors the interpreter's seeded path *)
let exec_seeded (code : code) ~seed ~iter_cands ~emit =
  let fr = make_frame code in
  match code.c_steps with
  | [||] -> ()
  | steps -> (
      match apply_fact fr steps.(0) seed Subst.empty Conj.tt with
      | None -> ()
      | Some (side, cstr) ->
          fr.chosen.(0) <- seed;
          run_from code fr ~iter_cands ~emit 1 side cstr)
