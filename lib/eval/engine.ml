open Cql_constr
open Cql_datalog
module Store = Cql_store.Store
module Planner = Cql_store.Planner
module Pool = Cql_par.Pool
module Obs = Cql_obs.Obs

module StringMap = Map.Make (String)

(* ----- parallelism degree ----- *)

let default_jobs_ref : int option ref = ref None
let set_default_jobs n = default_jobs_ref := Some (max 1 n)

let default_jobs () =
  match !default_jobs_ref with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "CQLOPT_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
      | None -> 1)

type trace_entry = { iteration : int; rule_label : string; fact : Fact.t; subsumed : bool }

type stats = {
  iterations : int;
  derivations : int;
  facts_added : int;
  reached_fixpoint : bool;
  index_probes : int;
  index_hits : int;
  facts_skipped : int;
  subsumptions_avoided : int;
}

module FactMap = Map.Make (Fact)

type result = {
  facts : Fact.t list StringMap.t; (* final live facts per predicate, oldest first *)
  stats : stats;
  trace_rev : trace_entry list;
  provenance : (string * Fact.t list) FactMap.t;
      (* first derivation of each fact: rule label + the facts it used *)
}

let stats r = r.stats
let trace r = List.rev r.trace_rev

let facts_of r pred = match StringMap.find_opt pred r.facts with None -> [] | Some l -> l
let all_facts r = StringMap.fold (fun p l acc -> (p, l) :: acc) r.facts []
let total_facts r = StringMap.fold (fun _ l acc -> acc + List.length l) r.facts 0
let total_idb_facts r ~edb = total_facts r - List.length edb

let answers r (p : Program.t) =
  match p.Program.query with None -> [] | Some q -> facts_of r q

let provenance r f = FactMap.find_opt f r.provenance

let all_ground r = StringMap.for_all (fun _ l -> List.for_all Fact.is_ground l) r.facts

(* ----- rule application ----- *)

(* fact instantiation lives with the compiled executor (both paths share
   it); kept under its old name for the interpreter code below *)
let fact_literal = Compile.fact_literal

(* finish one candidate derivation: apply the substitution, check
   satisfiability, project onto the head fact.  The shared implementation
   takes an environment; the interpreter's environment is a substitution
   resolve, the compiled executor's a register read — one code path, so the
   two modes cannot diverge. *)
let derive_head (rule : Rule.t) theta body_cstr : Fact.t option =
  Compile.derive_head_env
    ~lookup:(fun v -> Subst.resolve theta (Term.V v))
    rule body_cstr

(* one candidate derivation from explicitly chosen facts (used for fact
   rules and by tests) *)
let try_derive (rule : Rule.t) (choices : Fact.t list) : Fact.t option =
  let rec go theta cstr body choices =
    match (body, choices) with
    | [], [] -> derive_head rule theta cstr
    | lit :: brest, fact :: frest -> (
        let flit, fcstr = fact_literal fact in
        match Subst.unify_under theta lit flit with
        | None -> None
        | Some theta' -> go theta' (Conj.and_ cstr fcstr) brest frest)
    | _ -> invalid_arg "try_derive: body/choices length mismatch"
  in
  go Subst.empty Conj.tt rule.Rule.body choices

(* ----- storage backends ----- *)

(* The fixpoint loop is generic over how facts are stored and probed.  The
   indexed backend (default) keeps facts in the Cql_store relation store and
   probes hash indexes on the columns the current substitution binds; the
   seed backend reproduces the original per-predicate association lists and
   linear scans, and exists as the reference for cross-checking. *)
type backend = {
  bk_add : int -> Fact.t -> unit;
      (* store a non-subsumed fact (tagged with the iteration that made it) *)
  bk_known : Fact.t -> bool; (* is the fact subsumed by a stored one? *)
  bk_cands : Store.partition -> Subst.t -> Literal.t -> Fact.t list;
      (* candidate facts for a body literal, pre-filtered by matches_literal *)
  bk_iter_cands :
    Store.partition ->
    pred:string ->
    arity:int ->
    int list ->
    Term.const list ->
    (Fact.t -> unit) ->
    unit;
      (* same candidates keyed directly on the resolved bound columns,
         pushed to a callback without materializing a list or building the
         resolved literal (the compiled executor) *)
  bk_advance : unit -> unit; (* iteration boundary *)
  bk_plan : seminaive:bool -> Rule.t -> Planner.plan list;
  bk_snapshot : unit -> Fact.t list StringMap.t; (* live facts, oldest first *)
  bk_stats : unit -> int * int * int * int;
      (* index probes, index hits, facts skipped, subsumptions avoided *)
  bk_freeze : unit -> unit; (* enter read-only mode for a parallel match phase *)
  bk_thaw : unit -> unit;
}

let indexed_backend_of store =
  {
    bk_add = (fun _iter f -> Store.add store f);
    bk_known = (fun f -> Store.known_subsumes store f);
    bk_cands =
      (fun part theta lit ->
        (* resolving first turns bound variables into constants, giving the
           index more columns to key on *)
        let rlit = Subst.apply_literal theta lit in
        List.filter (fun f -> Fact.matches_literal rlit f) (Store.probe store part rlit));
    bk_iter_cands =
      (fun part ~pred ~arity positions key k ->
        (* no [matches_literal] pre-filter: the compiled step's actions
           perform exactly those checks (constants via [const_matches],
           pins via unification), so candidates failing it die in
           [Compile.apply_fact] — only the arity guard has no action
           counterpart *)
        Store.iter_probe_cols store part pred positions key (fun f ->
            if Fact.arity f = arity then k f));
    bk_advance = (fun () -> Store.advance store);
    bk_plan = (fun ~seminaive r -> Planner.plans ~seminaive r);
    bk_snapshot =
      (fun () ->
        List.fold_left
          (fun acc (pred, fs) -> StringMap.add pred fs acc)
          StringMap.empty (Store.all_facts store));
    bk_stats =
      (fun () ->
        let s = Store.stats store in
        ( s.Store.indexed_probes,
          s.Store.index_hits,
          s.Store.facts_skipped,
          s.Store.subsumption_avoided ));
    bk_freeze = (fun () -> Store.freeze store);
    bk_thaw = (fun () -> Store.thaw store);
  }

let indexed_backend () = indexed_backend_of (Store.create ())

(* the seed engine's storage: per-predicate assoc lists of (fact, iteration
   tag), linear subsumption scans, body literals evaluated in program order *)
let seed_backend () =
  let store = ref StringMap.empty in
  let cur_iter = ref 0 in
  let store_find pred =
    match StringMap.find_opt pred !store with Some l -> l | None -> []
  in
  let range = function
    | Store.Old -> (0, !cur_iter - 2)
    | Store.Delta -> (!cur_iter - 1, !cur_iter - 1)
    | Store.Full -> (0, !cur_iter - 1)
  in
  let cands part (lit : Literal.t) =
    let min_iter, max_iter = range part in
    List.filter_map
      (fun (f, it) ->
        if it >= min_iter && it <= max_iter && Fact.matches_literal lit f then Some f
        else None)
      (store_find lit.Literal.pred)
  in
  {
    bk_add =
      (fun iter f ->
        let l =
          List.filter (fun (g, _) -> not (Fact.subsumes f g)) (store_find (Fact.pred f))
        in
        store := StringMap.add (Fact.pred f) ((f, iter) :: l) !store);
    bk_known =
      (fun f -> List.exists (fun (g, _) -> Fact.subsumes g f) (store_find (Fact.pred f)));
    bk_cands = (fun part _theta lit -> cands part lit);
    bk_iter_cands =
      (fun part ~pred ~arity _positions _key k ->
        (* linear scan, no index to key; like the indexed backend, only the
           arity guard is needed ahead of the compiled actions *)
        let min_iter, max_iter = range part in
        List.iter
          (fun (f, it) ->
            if it >= min_iter && it <= max_iter && Fact.arity f = arity then k f)
          (store_find pred));
    bk_advance = (fun () -> incr cur_iter);
    bk_plan =
      (fun ~seminaive r ->
        (* original body order; only the partition assignment varies *)
        let n = List.length r.Rule.body in
        let plan pivot =
          List.mapi
            (fun i lit -> { Planner.lit; orig = i; part = Planner.part_of ~pivot i })
            r.Rule.body
        in
        if seminaive then List.init n plan else [ plan (-1) ]);
    bk_snapshot =
      (fun () -> StringMap.map (fun l -> List.rev_map fst l) !store);
    bk_stats = (fun () -> (0, 0, 0, 0));
    (* the seed store is an immutable map behind a ref: reads from worker
       domains race only with the sequential merge phase, which the pool's
       batch handoff already orders *)
    bk_freeze = (fun () -> ());
    bk_thaw = (fun () -> ());
  }

(* ----- evaluation loops ----- *)

type budget = { mutable deriv_left : int }

exception Budget_exhausted

(* enumerate combinations along a plan with incremental unification: failed
   joins are pruned before the cross-product expands *)
let rec choose_combos bk (steps : Planner.plan) theta cstr used k =
  match steps with
  | [] ->
      let used = List.sort (fun (a, _) (b, _) -> compare a b) used in
      k theta cstr (List.map snd used)
  | step :: rest ->
      List.iter
        (fun f ->
          let flit, fcstr = fact_literal f in
          match Subst.unify_under theta step.Planner.lit flit with
          | None -> ()
          | Some theta' ->
              choose_combos bk rest theta' (Conj.and_ cstr fcstr)
                ((step.Planner.orig, f) :: used) k)
        (bk.bk_cands step.Planner.part theta step.Planner.lit)

(* One parallel task: a slice of a rule-plan's first-step candidates.  Tasks
   are built in the exact order the sequential loop would enumerate them, and
   each task emits its derivations in enumeration order, so concatenating
   task outputs in task order reproduces the sequential production list —
   the merge phase then behaves identically (same facts, same provenance,
   same trace, same budget-truncation point). *)
type task = {
  tk_rule : Rule.t;
  tk_rest : Planner.plan; (* plan minus the first step *)
  tk_step0 : Planner.step option; (* None for an empty plan *)
  tk_cands : Fact.t list; (* this task's slice of the first step's candidates *)
  tk_code : Compile.code option; (* compiled program for the whole plan *)
}

let run_task bk (tk : task) =
  let out = ref [] in
  (match tk.tk_code with
  | Some code -> (
      let emit f used = out := (tk.tk_rule.Rule.label, f, used) :: !out in
      match tk.tk_step0 with
      | None -> Compile.exec code ~iter_cands:bk.bk_iter_cands ~emit
      | Some _ ->
          List.iter
            (fun f -> Compile.exec_seeded code ~seed:f ~iter_cands:bk.bk_iter_cands ~emit)
            tk.tk_cands)
  | None -> (
      let emit theta cstr used =
        match derive_head tk.tk_rule theta cstr with
        | None -> ()
        | Some f -> out := (tk.tk_rule.Rule.label, f, used) :: !out
      in
      match tk.tk_step0 with
      | None -> choose_combos bk tk.tk_rest Subst.empty Conj.tt [] emit
      | Some step0 ->
          List.iter
            (fun f ->
              let flit, fcstr = fact_literal f in
              match Subst.unify_under Subst.empty step0.Planner.lit flit with
              | None -> ()
              | Some theta ->
                  choose_combos bk tk.tk_rest theta fcstr [ (step0.Planner.orig, f) ] emit)
            tk.tk_cands));
  (* forward (enumeration) order, ready for in-order concatenation *)
  List.rev !out

(* Slice every rule-plan into tasks: the first join step's candidate list is
   what semi-naive iteration fans out over (the delta pivot is placed first
   by the planner), cut into [jobs * 4] chunks for load balance. *)
let tasks_of_iteration bk jobs rule_plans =
  let tasks = ref [] in
  List.iter
    (fun ((r : Rule.t), plans) ->
      List.iter
        (fun (plan, code) ->
          match plan with
          | [] ->
              tasks :=
                { tk_rule = r; tk_rest = []; tk_step0 = None; tk_cands = []; tk_code = code }
                :: !tasks
          | step0 :: rest ->
              let cands = bk.bk_cands step0.Planner.part Subst.empty step0.Planner.lit in
              let n = List.length cands in
              if n = 0 then ()
              else begin
                let chunk = max 1 ((n + (jobs * 4) - 1) / (jobs * 4)) in
                let rec cut cands =
                  match cands with
                  | [] -> ()
                  | _ ->
                      let rec take k acc rest =
                        if k = 0 then (List.rev acc, rest)
                        else
                          match rest with
                          | [] -> (List.rev acc, [])
                          | x :: tl -> take (k - 1) (x :: acc) tl
                      in
                      let slice, rest' = take chunk [] cands in
                      tasks :=
                        {
                          tk_rule = r;
                          tk_rest = rest;
                          tk_step0 = Some step0;
                          tk_cands = slice;
                          tk_code = code;
                        }
                        :: !tasks;
                      cut rest'
                in
                cut cands
              end)
        plans)
    rule_plans;
  Array.of_list (List.rev !tasks)

(* One match/join phase over every rule plan.  With a pool the store is
   frozen and the candidate fan-out runs on worker domains; either way the
   returned production list is in the exact sequential enumeration order,
   so the (sequential) merge that follows behaves identically. *)
let produce_round bk pool jobs rule_plans =
  match pool with
  | None ->
      (* exact sequential path: no task slicing, no synchronization *)
      let produced = ref [] in
      List.iter
        (fun ((r : Rule.t), plans) ->
          List.iter
            (fun (plan, code) ->
              match code with
              | Some code ->
                  Compile.exec code ~iter_cands:bk.bk_iter_cands ~emit:(fun f used ->
                      produced := (r.Rule.label, f, used) :: !produced)
              | None ->
                  choose_combos bk plan Subst.empty Conj.tt [] (fun theta cstr used ->
                      match derive_head r theta cstr with
                      | None -> ()
                      | Some f -> produced := (r.Rule.label, f, used) :: !produced))
            plans)
        rule_plans;
      List.rev !produced
  | Some pool ->
      (* workers only read the store (frozen for the phase) and emit into
         per-task buffers; concatenation in task order reproduces the
         sequential production order exactly *)
      bk.bk_freeze ();
      (* the constraint domain is domain-local state: capture the caller's
         choice and re-establish it on every worker, so a Z-mode run keeps
         Z-mode solver verdicts on all [--jobs] paths *)
      let cdom = Cdomain.current () in
      let outs =
        Fun.protect
          ~finally:(fun () -> bk.bk_thaw ())
          (fun () ->
            let tasks = tasks_of_iteration bk jobs rule_plans in
            Obs.add_field "tasks" (Array.length tasks);
            Pool.map pool (fun t -> Cdomain.with_domain cdom (fun () -> run_task bk t)) tasks)
      in
      List.concat (Array.to_list outs)

(* A precompiled plan set for one program: built once (e.g. by the plan
   cache) and reused across runs so warm requests skip both planning and
   compilation.  [cp_for] is compared physically — the artifact only applies
   to the exact program value it was built from. *)
type compiled = {
  cp_for : Program.t;
  cp_plans : (Rule.t * (Planner.plan * Compile.code option) list) list;
}

let ctr_cache_hits = Obs.counter "engine.compile.cache_hits"

let compile_plans (p : Program.t) : compiled =
  let _, body_rules = List.partition Rule.is_fact p.Program.rules in
  {
    cp_for = p;
    cp_plans =
      List.map
        (fun (r : Rule.t) ->
          ( r,
            List.map
              (fun pl ->
                (pl, if !Compile.enabled then Some (Compile.compile r pl) else None))
              (Planner.plans ~seminaive:true r) ))
        body_rules;
  }

let run_loop ~seminaive ~indexed ?jobs ?max_iterations ?max_derivations ?(traced = false)
    ?compiled (p : Program.t) ~(edb : Fact.t list) =
  Obs.span "engine.run" @@ fun () ->
  let jobs = match jobs with Some n -> max 1 n | None -> default_jobs () in
  if Obs.enabled () then begin
    Obs.add_field "jobs" jobs;
    Obs.add_field "rules" (List.length p.Program.rules);
    Obs.add_field "edb_facts" (List.length edb);
    Obs.add_field_str "mode" (if seminaive then "seminaive" else "naive")
  end;
  let bk = if indexed then indexed_backend () else seed_backend () in
  let budget = { deriv_left = (match max_derivations with Some n -> n | None -> max_int) } in
  let provenance = ref FactMap.empty in
  let trace_rev = ref [] in
  let derivations = ref 0 in
  let facts_added = ref 0 in
  let add_fact iter f =
    (* back-subsumption: drop stored facts the new fact subsumes; safe for
       semi-naive completeness because the new fact enters the delta *)
    bk.bk_add iter f;
    incr facts_added
  in
  let record iter label f subsumed =
    incr derivations;
    if traced then trace_rev := { iteration = iter; rule_label = label; fact = f; subsumed } :: !trace_rev;
    budget.deriv_left <- budget.deriv_left - 1;
    if budget.deriv_left <= 0 then raise Budget_exhausted
  in
  let remember label f used =
    if not (FactMap.mem f !provenance) then
      provenance := FactMap.add f (label, used) !provenance
  in
  (* iteration 0: EDB facts (untraced) + fact rules *)
  List.iter
    (fun f ->
      if not (bk.bk_known f) then begin
        add_fact 0 f;
        remember "edb" f []
      end)
    edb;
  let fact_rules, body_rules = List.partition Rule.is_fact p.Program.rules in
  List.iter
    (fun (r : Rule.t) ->
      match try_derive r [] with
      | None -> ()
      | Some f ->
          let subsumed = bk.bk_known f in
          record 0 r.Rule.label f subsumed;
          if not subsumed then begin
            add_fact 0 f;
            remember r.Rule.label f []
          end)
    fact_rules;
  (* join plans are computed once per rule, not per iteration — and, for the
     indexed backend, compiled to register-frame programs (the seed backend
     stays the pure reference interpreter).  A precompiled artifact for this
     exact program skips both phases. *)
  let compile_maybe r pl =
    if indexed && !Compile.enabled then Some (Compile.compile r pl) else None
  in
  let rule_plans =
    match compiled with
    | Some cp when cp.cp_for == p && seminaive && indexed && !Compile.enabled ->
        Obs.incr ctr_cache_hits;
        cp.cp_plans
    | _ ->
        List.map
          (fun r -> (r, List.map (fun pl -> (pl, compile_maybe r pl)) (bk.bk_plan ~seminaive r)))
          body_rules
  in
  let iterations = ref 0 in
  let fixpoint = ref false in
  let result () =
    if Obs.enabled () then begin
      Obs.add_field "iterations" !iterations;
      Obs.add_field "derivations" !derivations;
      Obs.add_field "facts_added" !facts_added;
      Obs.add_field_str "fixpoint" (string_of_bool !fixpoint)
    end;
    let index_probes, index_hits, facts_skipped, subsumptions_avoided = bk.bk_stats () in
    {
      facts = bk.bk_snapshot ();
      provenance = !provenance;
      stats =
        {
          iterations = !iterations;
          derivations = !derivations;
          facts_added = !facts_added;
          reached_fixpoint = !fixpoint;
          index_probes;
          index_hits;
          facts_skipped;
          subsumptions_avoided;
        };
      trace_rev = !trace_rev;
    }
  in
  (* With [jobs > 1] the match/join work of each iteration fans out over a
     domain pool; the merge phase below stays sequential either way, so the
     two paths produce identical results (see [run_task]). *)
  let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
  let produce () = produce_round bk pool jobs rule_plans in
  Fun.protect
    ~finally:(fun () -> match pool with Some p -> Pool.shutdown p | None -> ())
    (fun () ->
      try
        let continue_ = ref true in
        while !continue_ do
          let iter = !iterations + 1 in
          (match max_iterations with
          | Some cap when iter > cap ->
              continue_ := false;
              raise Exit
          | _ -> ());
          iterations := iter;
          let any_added =
            Obs.span "engine.iteration" @@ fun () ->
            Obs.add_field "iteration" iter;
            bk.bk_advance ();
            let produced = produce () in
            let added = ref 0 and subsumed_hits = ref 0 in
            (* [record] may raise Budget_exhausted mid-merge; the span still
               records (with the fields attached so far) and re-raises *)
            List.iter
              (fun (label, f, used) ->
                let subsumed = bk.bk_known f in
                if subsumed then incr subsumed_hits;
                record iter label f subsumed;
                if not subsumed then begin
                  add_fact iter f;
                  remember label f used;
                  incr added
                end)
              produced;
            if Obs.enabled () then begin
              Obs.add_field "produced" (List.length produced);
              Obs.add_field "delta_added" !added;
              Obs.add_field "subsumption_hits" !subsumed_hits
            end;
            !added > 0
          in
          if not any_added then begin
            fixpoint := true;
            continue_ := false
          end
        done;
        result ()
      with
      | Exit -> result ()
      | Budget_exhausted -> result ())

let run ?(indexed = true) ?jobs ?max_iterations ?max_derivations ?traced ?compiled p ~edb =
  run_loop ~seminaive:true ~indexed ?jobs ?max_iterations ?max_derivations ?traced ?compiled p
    ~edb

let run_naive ?(indexed = true) ?jobs ?max_iterations ?max_derivations p ~edb =
  run_loop ~seminaive:false ~indexed ?jobs ?max_iterations ?max_derivations ~traced:false p ~edb

(* SCC-stratified evaluation: process the predicate dependency graph
   callees-first, running the semi-naive loop once per stratum with all
   earlier facts as input.  Same fixpoint; each stratum's rules only ever
   see fully-computed lower strata, so no wasted re-derivation across strata. *)
let run_stratified ?(indexed = true) ?jobs ?max_iterations ?max_derivations (p : Program.t) ~edb =
  Obs.span "engine.run_stratified" @@ fun () ->
  let g = Depgraph.of_program p in
  let derived = Program.derived p in
  let sccs =
    List.filter (fun scc -> List.exists (fun x -> List.mem x derived) scc) (Depgraph.sccs g)
  in
  Obs.add_field "strata" (List.length sccs);
  let deriv_budget = ref (match max_derivations with Some n -> n | None -> max_int) in
  let facts = ref edb in
  let derivations = ref 0 and facts_added = ref 0 and iterations = ref 0 in
  let index_probes = ref 0
  and index_hits = ref 0
  and facts_skipped = ref 0
  and subsumptions_avoided = ref 0 in
  let fixpoint = ref true in
  let provs = ref [] in
  let last = ref None in
  List.iter
    (fun scc ->
      if !deriv_budget > 0 then begin
        let rules =
          List.filter
            (fun (r : Rule.t) -> List.mem r.Rule.head.Literal.pred scc)
            p.Program.rules
        in
        let sub = { p with Program.rules } in
        let res =
          run_loop ~seminaive:true ~indexed ?jobs ?max_iterations
            ~max_derivations:!deriv_budget ~traced:false sub ~edb:!facts
        in
        deriv_budget := !deriv_budget - res.stats.derivations;
        derivations := !derivations + res.stats.derivations;
        facts_added := !facts_added + res.stats.facts_added - List.length !facts;
        iterations := max !iterations res.stats.iterations;
        index_probes := !index_probes + res.stats.index_probes;
        index_hits := !index_hits + res.stats.index_hits;
        facts_skipped := !facts_skipped + res.stats.facts_skipped;
        subsumptions_avoided := !subsumptions_avoided + res.stats.subsumptions_avoided;
        if not res.stats.reached_fixpoint then fixpoint := false;
        provs := res.provenance :: !provs;
        facts := List.concat_map snd (all_facts res);
        last := Some res
      end
      else fixpoint := false)
    sccs;
  match !last with
  | None -> run ~indexed ?jobs ?max_iterations ?max_derivations p ~edb
  | Some res ->
      (* merge provenance, preferring the stratum that really derived a
         fact over a later stratum seeing it as input *)
      let provenance =
        List.fold_left
          (fun acc m ->
            FactMap.union (fun _ a b -> if fst a = "edb" then Some b else Some a) acc m)
          FactMap.empty (List.rev !provs)
      in
      {
        res with
        provenance;
        stats =
          {
            iterations = !iterations;
            derivations = !derivations;
            facts_added = !facts_added + List.length edb;
            reached_fixpoint = !fixpoint;
            index_probes = !index_probes;
            index_hits = !index_hits;
            facts_skipped = !facts_skipped;
            subsumptions_avoided = !subsumptions_avoided;
          };
      }

(* ----- incremental view maintenance ----- *)

(* A materialized view keeps the fixpoint of one program alive across EDB
   changes.  Insertions are ordinary semi-naive rounds seeded from the new
   facts (the pending partition becomes the delta at the first boundary).
   Deletions are DRed: over-delete everything transitively supported by the
   retracted facts, then re-derive the over-deleted facts that still have
   support from the surviving part of the store.

   The twist relative to textbook DRed is the support graph: every rule
   firing {head; label; body facts} is recorded, so both phases of deletion
   are pure graph walks — no joins, no solver calls — and facts outside the
   deleted cone are never re-proved.  Per-fact support counts (EDB
   multiplicity + live firings, kept in lib/store) fall out of the graph
   and are what the update-oracle fuzz mode cross-checks against a
   from-scratch run.

   Constraint subsumption needs one extra piece of state: a fact can be
   dropped on arrival (or killed by back-subsumption) because a live fact
   covers it.  Such facts are remembered in [vw_covered]; when a retraction
   removes the last cover of a still-supported covered fact, it resurrects
   through a normal insertion round. *)

type firing = {
  fr_label : string;
  fr_head : Fact.t;
  fr_body : Fact.t list; (* in body-literal order; [] for fact rules *)
  mutable fr_dead : bool;
}

type maintain_stats = {
  m_op : string;
  m_batch : int;
  m_inserted : int; (* EDB facts newly stored (not dups/covered) *)
  m_retracted : int; (* EDB occurrences removed *)
  m_noops : int; (* retractions of absent facts / duplicate inserts *)
  m_derivations : int; (* rule firings merged during the rounds *)
  m_over_deleted : int; (* facts provisionally deleted by DRed *)
  m_rederived : int; (* over-deleted facts rescued by re-derivation *)
  m_resurrected : int; (* covered facts revived by a dying cover *)
  m_deleted : int; (* facts physically removed *)
  m_iterations : int;
  m_complete : bool; (* rounds reached fixpoint within the budget *)
}

type view = {
  vw_program : Program.t;
  vw_store : Store.t;
  vw_bk : backend;
  vw_rule_plans : (Rule.t * (Planner.plan * Compile.code option) list) list;
  vw_fact_rules : Rule.t list;
  vw_pool : Pool.t option;
  vw_jobs : int;
  vw_domain : Cdomain.t;  (* constraint domain captured at materialize *)
  vw_max_iterations : int option;
  vw_max_derivations : int option;
  mutable vw_edb : Fact.t list; (* EDB multiset, newest first *)
  mutable vw_supports : firing list FactMap.t; (* head fact -> firings *)
  mutable vw_uses : firing list FactMap.t; (* body fact -> firings *)
  mutable vw_covered : unit FactMap.t; (* subsumed or back-subsumed facts *)
  mutable vw_complete : bool; (* no maintenance round was ever truncated *)
  mutable vw_closed : bool;
}

let ctr_inserted = Obs.counter "engine.maintain.inserted"
let ctr_retracted = Obs.counter "engine.maintain.retracted"
let ctr_over_deleted = Obs.counter "engine.maintain.over_deleted"
let ctr_rederived = Obs.counter "engine.maintain.rederived"

let check_open vw who = if vw.vw_closed then invalid_arg (who ^ ": view is closed")
let edb_mult vw f = List.length (List.filter (fun g -> Fact.compare g f = 0) vw.vw_edb)

let live_firings vw f =
  match FactMap.find_opt f vw.vw_supports with
  | None -> []
  | Some l -> List.filter (fun fr -> not fr.fr_dead) l

(* a fact's support: EDB multiplicity plus live firings producing it *)
let support vw f = edb_mult vw f + List.length (live_firings vw f)

let dedup_facts fs =
  List.fold_left (fun acc f -> if FactMap.mem f acc then acc else FactMap.add f () acc) FactMap.empty fs
  |> FactMap.bindings |> List.map fst

(* Record a firing unless a structurally identical live one exists (a
   resurrected fact re-enumerates joins that were already recorded while it
   was live the first time).  Returns whether the firing was new. *)
let add_firing vw label head body =
  let same fr =
    fr.fr_label = label
    && (not fr.fr_dead)
    && List.length fr.fr_body = List.length body
    && List.for_all2 (fun a b -> Fact.compare a b = 0) fr.fr_body body
  in
  let existing = match FactMap.find_opt head vw.vw_supports with None -> [] | Some l -> l in
  if List.exists same existing then false
  else begin
    let fr = { fr_label = label; fr_head = head; fr_body = body; fr_dead = false } in
    vw.vw_supports <- FactMap.add head (fr :: existing) vw.vw_supports;
    List.iter
      (fun b ->
        let l = match FactMap.find_opt b vw.vw_uses with None -> [] | Some l -> l in
        vw.vw_uses <- FactMap.add b (fr :: l) vw.vw_uses)
      (dedup_facts body);
    true
  end

(* drop every dead firing (and every entry of vanished facts) from the maps *)
let compact_graph vw gone =
  let prune l = List.filter (fun fr -> not fr.fr_dead) l in
  let sweep m =
    FactMap.filter_map
      (fun f l ->
        if FactMap.mem f gone then None
        else match prune l with [] -> None | l -> Some l)
      m
  in
  vw.vw_supports <- sweep vw.vw_supports;
  vw.vw_uses <- sweep vw.vw_uses

(* mutable accumulator threaded through one maintenance operation *)
type mstate = {
  mutable s_inserted : int;
  mutable s_retracted : int;
  mutable s_noops : int;
  mutable s_derivations : int;
  mutable s_over_deleted : int;
  mutable s_rederived : int;
  mutable s_resurrected : int;
  mutable s_deleted : int;
  mutable s_iterations : int;
  mutable s_deriv_left : int;
}

let spend ms = 
  ms.s_derivations <- ms.s_derivations + 1;
  ms.s_deriv_left <- ms.s_deriv_left - 1;
  if ms.s_deriv_left <= 0 then raise Budget_exhausted

(* Merge one round's productions into the view: structural duplicates bump
   the stored fact's count (a new support), covered arrivals are remembered
   for possible resurrection, genuinely new facts enter the pending
   partition.  Returns how many facts were added. *)
let view_merge vw ms produced =
  let added = ref 0 in
  List.iter
    (fun (label, f, used) ->
      spend ms;
      match Store.find_equal vw.vw_store f with
      | Some g -> if add_firing vw label g used then Store.bump_count vw.vw_store g
      | None ->
          if Store.known_subsumes vw.vw_store f then begin
            ignore (add_firing vw label f used);
            vw.vw_covered <- FactMap.add f () vw.vw_covered
          end
          else begin
            let killed = Store.add_reporting vw.vw_store f in
            List.iter (fun k -> vw.vw_covered <- FactMap.add k () vw.vw_covered) killed;
            ignore (add_firing vw label f used);
            Store.set_count vw.vw_store f (support vw f);
            incr added
          end)
    produced;
  !added

(* Semi-naive rounds until fixpoint: whatever sits in the pending partition
   becomes the delta at the first boundary.  Raises Exit / Budget_exhausted
   on truncation (callers convert that into m_complete = false). *)
let view_rounds vw ms ~max_iterations =
  let continue_ = ref true in
  while !continue_ do
    let iter = ms.s_iterations + 1 in
    (match max_iterations with Some cap when iter > cap -> raise Exit | _ -> ());
    ms.s_iterations <- iter;
    vw.vw_bk.bk_advance ();
    let produced = produce_round vw.vw_bk vw.vw_pool vw.vw_jobs vw.vw_rule_plans in
    if view_merge vw ms produced = 0 then continue_ := false
  done

(* one EDB insertion, before the rounds run *)
let insert_edb vw ms f =
  vw.vw_edb <- f :: vw.vw_edb;
  match Store.find_equal vw.vw_store f with
  | Some g ->
      (* already live: one more support *)
      Store.bump_count vw.vw_store g;
      ms.s_noops <- ms.s_noops + 1
  | None ->
      if Store.known_subsumes vw.vw_store f then begin
        vw.vw_covered <- FactMap.add f () vw.vw_covered;
        ms.s_noops <- ms.s_noops + 1
      end
      else begin
        let killed = Store.add_reporting vw.vw_store f in
        List.iter (fun k -> vw.vw_covered <- FactMap.add k () vw.vw_covered) killed;
        Store.set_count vw.vw_store f (support vw f);
        ms.s_inserted <- ms.s_inserted + 1
      end

(* DRed on the support graph.  [gone_seeds] are facts that ceased to exist
   without ever being live (dropped covered facts); [live_seeds] are live
   facts whose EDB support vanished.  Every firing reachable from a seed is
   provisionally killed and every live head it supported provisionally
   deleted; the re-derivation pass then revives firings whose bodies
   survived and rescues their heads.  Returns the facts actually removed. *)
let dred vw ms ~live_seeds ~gone_seeds =
  let d = ref FactMap.empty in
  let killed = ref [] in
  let queue = Queue.create () in
  List.iter
    (fun f ->
      if not (FactMap.mem f !d) then begin
        d := FactMap.add f () !d;
        Queue.add f queue
      end)
    live_seeds;
  List.iter (fun f -> Queue.add f queue) gone_seeds;
  while not (Queue.is_empty queue) do
    let f = Queue.pop queue in
    List.iter
      (fun fr ->
        if not fr.fr_dead then begin
          fr.fr_dead <- true;
          killed := fr :: !killed;
          let h = fr.fr_head in
          if Store.mem_equal vw.vw_store h && not (FactMap.mem h !d) then begin
            d := FactMap.add h () !d;
            Queue.add h queue
          end
        end)
      (match FactMap.find_opt f vw.vw_uses with None -> [] | Some l -> l)
  done;
  let gone0 =
    List.fold_left (fun acc f -> FactMap.add f () acc) FactMap.empty gone_seeds
  in
  ms.s_over_deleted <- ms.s_over_deleted + FactMap.cardinal !d;
  (* re-derivation: a fact in D survives if it has EDB support or a live
     firing; a killed firing revives once none of its body facts is still
     provisionally deleted (or gone for good).  Iterate to fixpoint. *)
  let r = ref FactMap.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    FactMap.iter
      (fun f () ->
        if
          (not (FactMap.mem f !r))
          && (edb_mult vw f > 0 || live_firings vw f <> [])
        then begin
          r := FactMap.add f () !r;
          changed := true
        end)
      !d;
    List.iter
      (fun fr ->
        if fr.fr_dead then begin
          let body_ok b =
            (not (FactMap.mem b gone0))
            && ((not (FactMap.mem b !d)) || FactMap.mem b !r)
          in
          if List.for_all body_ok fr.fr_body then begin
            fr.fr_dead <- false;
            changed := true
          end
        end)
      !killed
  done;
  let deleted =
    FactMap.fold (fun f () acc -> if FactMap.mem f !r then acc else f :: acc) !d []
  in
  ms.s_rederived <- ms.s_rederived + FactMap.cardinal !r;
  ms.s_deleted <- ms.s_deleted + List.length deleted;
  (* physical deletion, then recount the survivors *)
  List.iter (fun f -> ignore (Store.delete vw.vw_store f)) deleted;
  let all_gone =
    List.fold_left (fun acc f -> FactMap.add f () acc) gone0 deleted
  in
  compact_graph vw all_gone;
  FactMap.iter
    (fun f () ->
      if FactMap.mem f !r then Store.set_count vw.vw_store f (support vw f))
    !d;
  (deleted, all_gone)

(* After deletions, covered facts whose cover died either resurrect (still
   supported) or vanish (cascading into another DRed pass). *)
let covered_sweep vw =
  let resurrect = ref [] and gone = ref [] in
  FactMap.iter
    (fun c () ->
      if not (Store.known_subsumes vw.vw_store c) then
        if support vw c > 0 then resurrect := c :: !resurrect else gone := c :: !gone)
    vw.vw_covered;
  List.iter
    (fun c -> vw.vw_covered <- FactMap.remove c vw.vw_covered)
    (!resurrect @ !gone);
  (!resurrect, !gone)

let finish_op vw ms ~op ~batch ~complete =
  if not complete then vw.vw_complete <- false;
  Obs.add ctr_inserted ms.s_inserted;
  Obs.add ctr_retracted ms.s_retracted;
  Obs.add ctr_over_deleted ms.s_over_deleted;
  Obs.add ctr_rederived ms.s_rederived;
  if Obs.enabled () then begin
    Obs.add_field "batch" batch;
    Obs.add_field "inserted" ms.s_inserted;
    Obs.add_field "retracted" ms.s_retracted;
    Obs.add_field "over_deleted" ms.s_over_deleted;
    Obs.add_field "rederived" ms.s_rederived;
    Obs.add_field "resurrected" ms.s_resurrected;
    Obs.add_field "derivations" ms.s_derivations;
    Obs.add_field "iterations" ms.s_iterations;
    Obs.add_field_str "complete" (string_of_bool complete)
  end;
  {
    m_op = op;
    m_batch = batch;
    m_inserted = ms.s_inserted;
    m_retracted = ms.s_retracted;
    m_noops = ms.s_noops;
    m_derivations = ms.s_derivations;
    m_over_deleted = ms.s_over_deleted;
    m_rederived = ms.s_rederived;
    m_resurrected = ms.s_resurrected;
    m_deleted = ms.s_deleted;
    m_iterations = ms.s_iterations;
    m_complete = complete;
  }

let mstate_create ~max_derivations =
  {
    s_inserted = 0;
    s_retracted = 0;
    s_noops = 0;
    s_derivations = 0;
    s_over_deleted = 0;
    s_rederived = 0;
    s_resurrected = 0;
    s_deleted = 0;
    s_iterations = 0;
    s_deriv_left = (match max_derivations with Some n -> n | None -> max_int);
  }

let insert ?max_iterations ?max_derivations vw facts =
  check_open vw "Engine.insert";
  (* maintenance must re-derive under the same constraint domain the view
     was materialized with, whatever the ambient domain of the caller *)
  Cdomain.with_domain vw.vw_domain @@ fun () ->
  Obs.span "engine.maintain" @@ fun () ->
  Obs.add_field_str "op" "insert";
  let max_iterations =
    match max_iterations with Some _ as m -> m | None -> vw.vw_max_iterations
  in
  let max_derivations =
    match max_derivations with Some _ as m -> m | None -> vw.vw_max_derivations
  in
  let ms = mstate_create ~max_derivations in
  let complete =
    try
      List.iter (insert_edb vw ms) facts;
      view_rounds vw ms ~max_iterations;
      true
    with Exit | Budget_exhausted -> false
  in
  finish_op vw ms ~op:"insert" ~batch:(List.length facts) ~complete

let retract ?max_iterations ?max_derivations vw facts =
  check_open vw "Engine.retract";
  Cdomain.with_domain vw.vw_domain @@ fun () ->
  Obs.span "engine.maintain" @@ fun () ->
  Obs.add_field_str "op" "retract";
  let max_iterations =
    match max_iterations with Some _ as m -> m | None -> vw.vw_max_iterations
  in
  let max_derivations =
    match max_derivations with Some _ as m -> m | None -> vw.vw_max_derivations
  in
  let ms = mstate_create ~max_derivations in
  let live_seeds = ref [] and gone_seeds = ref [] in
  List.iter
    (fun f ->
      let rec remove_one = function
        | [] -> None
        | g :: rest when Fact.compare g f = 0 -> Some rest
        | g :: rest -> Option.map (fun l -> g :: l) (remove_one rest)
      in
      match remove_one vw.vw_edb with
      | None -> ms.s_noops <- ms.s_noops + 1 (* not an EDB fact: nothing to do *)
      | Some edb' ->
          vw.vw_edb <- edb';
          ms.s_retracted <- ms.s_retracted + 1;
          if Store.mem_equal vw.vw_store f then
            if edb_mult vw f = 0 then
              (* last EDB occurrence: over-delete even when firings remain —
                 the remaining support may be a derivation cycle *)
              live_seeds := f :: !live_seeds
            else Store.set_count vw.vw_store f (support vw f)
          else if
            (* covered (or never-stored) fact: no store change, but if this
               was its last support its joins must cascade *)
            FactMap.mem f vw.vw_covered && support vw f = 0
          then begin
            vw.vw_covered <- FactMap.remove f vw.vw_covered;
            gone_seeds := f :: !gone_seeds
          end)
    facts;
  let complete =
    try
      let live = ref (dedup_facts !live_seeds) and gone = ref !gone_seeds in
      let continue_ = ref (!live <> [] || !gone <> []) in
      while !continue_ do
        let _, _ = dred vw ms ~live_seeds:!live ~gone_seeds:!gone in
        let resurrect, vanished = covered_sweep vw in
        ms.s_resurrected <- ms.s_resurrected + List.length resurrect;
        if resurrect <> [] then begin
          List.iter
            (fun c ->
              let killed = Store.add_reporting vw.vw_store c in
              List.iter (fun k -> vw.vw_covered <- FactMap.add k () vw.vw_covered) killed;
              Store.set_count vw.vw_store c (support vw c))
            resurrect;
          view_rounds vw ms ~max_iterations
        end;
        live := [];
        gone := vanished;
        continue_ := vanished <> []
      done;
      true
    with Exit | Budget_exhausted -> false
  in
  finish_op vw ms ~op:"retract" ~batch:(List.length facts) ~complete

let materialize ?jobs ?max_iterations ?max_derivations ?compiled (p : Program.t) ~edb =
  Obs.span "engine.maintain" @@ fun () ->
  Obs.add_field_str "op" "materialize";
  let jobs = match jobs with Some n -> max 1 n | None -> default_jobs () in
  let store = Store.create () in
  let bk = indexed_backend_of store in
  let fact_rules, body_rules = List.partition Rule.is_fact p.Program.rules in
  let rule_plans =
    match compiled with
    | Some cp when cp.cp_for == p && !Compile.enabled ->
        Obs.incr ctr_cache_hits;
        cp.cp_plans
    | _ ->
        List.map
          (fun (r : Rule.t) ->
            ( r,
              List.map
                (fun pl ->
                  (pl, if !Compile.enabled then Some (Compile.compile r pl) else None))
                (bk.bk_plan ~seminaive:true r) ))
          body_rules
  in
  let vw =
    {
      vw_program = p;
      vw_store = store;
      vw_bk = bk;
      vw_rule_plans = rule_plans;
      vw_fact_rules = fact_rules;
      vw_pool = (if jobs > 1 then Some (Pool.create ~jobs) else None);
      vw_jobs = jobs;
      vw_domain = Cdomain.current ();
      vw_max_iterations = max_iterations;
      vw_max_derivations = max_derivations;
      vw_edb = [];
      vw_supports = FactMap.empty;
      vw_uses = FactMap.empty;
      vw_covered = FactMap.empty;
      vw_complete = true;
      vw_closed = false;
    }
  in
  let ms = mstate_create ~max_derivations in
  let complete =
    try
      List.iter (insert_edb vw ms) edb;
      (* bodyless rules fire once, as firings with no body: never deleted *)
      List.iter
        (fun (r : Rule.t) ->
          match try_derive r [] with
          | None -> ()
          | Some f -> ignore (view_merge vw ms [ (r.Rule.label, f, []) ]))
        fact_rules;
      view_rounds vw ms ~max_iterations;
      true
    with Exit | Budget_exhausted -> false
  in
  let stats = finish_op vw ms ~op:"materialize" ~batch:(List.length edb) ~complete in
  (vw, stats)

let close_view vw =
  if not vw.vw_closed then begin
    vw.vw_closed <- true;
    match vw.vw_pool with Some p -> Pool.shutdown p | None -> ()
  end

(* ----- view accessors ----- *)

let view_program vw = vw.vw_program
let view_complete vw = vw.vw_complete
let view_edb vw = List.rev vw.vw_edb
let view_jobs vw = vw.vw_jobs
let view_domain vw = vw.vw_domain

let view_facts_of vw pred = Store.facts vw.vw_store pred

let view_all_facts vw =
  List.sort compare
    (List.map (fun (p, fs) -> (p, List.sort Fact.compare fs)) (Store.all_facts vw.vw_store))

let view_answers vw =
  match vw.vw_program.Program.query with
  | None -> []
  | Some q -> List.sort Fact.compare (view_facts_of vw q)

let view_counts vw =
  List.sort compare
    (List.filter (fun (_, l) -> l <> []) (Store.counted_facts vw.vw_store))

let view_total vw = Store.total vw.vw_store
