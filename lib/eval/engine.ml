open Cql_constr
open Cql_datalog
module Store = Cql_store.Store
module Planner = Cql_store.Planner
module Pool = Cql_par.Pool
module Obs = Cql_obs.Obs

module StringMap = Map.Make (String)

(* ----- parallelism degree ----- *)

let default_jobs_ref : int option ref = ref None
let set_default_jobs n = default_jobs_ref := Some (max 1 n)

let default_jobs () =
  match !default_jobs_ref with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "CQLOPT_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
      | None -> 1)

type trace_entry = { iteration : int; rule_label : string; fact : Fact.t; subsumed : bool }

type stats = {
  iterations : int;
  derivations : int;
  facts_added : int;
  reached_fixpoint : bool;
  index_probes : int;
  index_hits : int;
  facts_skipped : int;
  subsumptions_avoided : int;
}

module FactMap = Map.Make (Fact)

type result = {
  facts : Fact.t list StringMap.t; (* final live facts per predicate, oldest first *)
  stats : stats;
  trace_rev : trace_entry list;
  provenance : (string * Fact.t list) FactMap.t;
      (* first derivation of each fact: rule label + the facts it used *)
}

let stats r = r.stats
let trace r = List.rev r.trace_rev

let facts_of r pred = match StringMap.find_opt pred r.facts with None -> [] | Some l -> l
let all_facts r = StringMap.fold (fun p l acc -> (p, l) :: acc) r.facts []
let total_facts r = StringMap.fold (fun _ l acc -> acc + List.length l) r.facts 0
let total_idb_facts r ~edb = total_facts r - List.length edb

let answers r (p : Program.t) =
  match p.Program.query with None -> [] | Some q -> facts_of r q

let provenance r f = FactMap.find_opt f r.provenance

let all_ground r = StringMap.for_all (fun _ l -> List.for_all Fact.is_ground l) r.facts

(* ----- rule application ----- *)

(* instantiate a stored fact as a literal: pinned numeric positions become
   constants (so ground workloads never touch the solver), the rest become
   fresh variables carrying the renamed residual constraints *)
let fact_literal (f : Fact.t) : Literal.t * Conj.t =
  let n = Fact.arity f in
  let fresh = Array.make n None in
  let args =
    List.init n (fun i ->
        match f.Fact.args.(i) with
        | Fact.Psym s -> Term.sym s
        | Fact.Pvar -> (
            match f.Fact.pinned.(i) with
            | Some q -> Term.num q
            | None ->
                let v = Var.fresh "F" in
                fresh.(i) <- Some v;
                Term.var v))
  in
  let residual =
    if Array.for_all (fun o -> o = None) fresh then Conj.tt
    else begin
      (* substitute pinned values, rename the remaining canonical vars *)
      let c =
        Array.to_list f.Fact.pinned
        |> List.mapi (fun i q -> (i, q))
        |> List.fold_left
             (fun c (i, q) ->
               match q with
               | Some q when f.Fact.args.(i) = Fact.Pvar ->
                   Conj.subst (Var.arg (i + 1)) (Linexpr.const q) c
               | _ -> c)
             (Fact.cstr f)
      in
      let ren v =
        match Var.arg_index v with
        | Some i when i >= 1 && i <= n -> (
            match fresh.(i - 1) with Some fv -> fv | None -> v)
        | _ -> v
      in
      Conj.rename ren c
    end
  in
  (Literal.make (Fact.pred f) args, residual)

(* finish one candidate derivation: apply the substitution, check
   satisfiability, project onto the head fact *)
let derive_head (rule : Rule.t) theta body_cstr : Fact.t option =
  try
    let combined = Subst.apply_conj theta (Conj.and_ rule.Rule.cstr body_cstr) in
    if not (Conj.is_sat combined) then None
    else begin
      (* build the head fact over canonical $i variables *)
      let head = Subst.apply_literal theta rule.Rule.head in
      let n = Literal.arity head in
      let args = Array.make n Fact.Pvar in
      let atoms = ref (Conj.to_list combined) in
      List.iteri
        (fun i t ->
          let ai = Var.arg (i + 1) in
          match t with
          | Term.C (Term.Sym s) -> args.(i) <- Fact.Psym s
          | Term.C (Term.Num q) ->
              atoms := Atom.eq (Linexpr.var ai) (Linexpr.const q) :: !atoms
          | Term.V v -> atoms := Atom.eq (Linexpr.var ai) (Linexpr.var v) :: !atoms)
        head.Literal.args;
      match Fact.make head.Literal.pred args (Conj.of_list !atoms) with
      | f -> Some f
      | exception Fact.Unsat -> None
    end
  with Subst.Type_error _ -> None (* symbolic constant met an arithmetic constraint *)

(* one candidate derivation from explicitly chosen facts (used for fact
   rules and by tests) *)
let try_derive (rule : Rule.t) (choices : Fact.t list) : Fact.t option =
  let rec go theta cstr body choices =
    match (body, choices) with
    | [], [] -> derive_head rule theta cstr
    | lit :: brest, fact :: frest -> (
        let flit, fcstr = fact_literal fact in
        match Subst.unify_under theta lit flit with
        | None -> None
        | Some theta' -> go theta' (Conj.and_ cstr fcstr) brest frest)
    | _ -> invalid_arg "try_derive: body/choices length mismatch"
  in
  go Subst.empty Conj.tt rule.Rule.body choices

(* ----- storage backends ----- *)

(* The fixpoint loop is generic over how facts are stored and probed.  The
   indexed backend (default) keeps facts in the Cql_store relation store and
   probes hash indexes on the columns the current substitution binds; the
   seed backend reproduces the original per-predicate association lists and
   linear scans, and exists as the reference for cross-checking. *)
type backend = {
  bk_add : int -> Fact.t -> unit;
      (* store a non-subsumed fact (tagged with the iteration that made it) *)
  bk_known : Fact.t -> bool; (* is the fact subsumed by a stored one? *)
  bk_cands : Store.partition -> Subst.t -> Literal.t -> Fact.t list;
      (* candidate facts for a body literal, pre-filtered by matches_literal *)
  bk_advance : unit -> unit; (* iteration boundary *)
  bk_plan : seminaive:bool -> Rule.t -> Planner.plan list;
  bk_snapshot : unit -> Fact.t list StringMap.t; (* live facts, oldest first *)
  bk_stats : unit -> int * int * int * int;
      (* index probes, index hits, facts skipped, subsumptions avoided *)
  bk_freeze : unit -> unit; (* enter read-only mode for a parallel match phase *)
  bk_thaw : unit -> unit;
}

let indexed_backend () =
  let store = Store.create () in
  {
    bk_add = (fun _iter f -> Store.add store f);
    bk_known = (fun f -> Store.known_subsumes store f);
    bk_cands =
      (fun part theta lit ->
        (* resolving first turns bound variables into constants, giving the
           index more columns to key on *)
        let rlit = Subst.apply_literal theta lit in
        List.filter (fun f -> Fact.matches_literal rlit f) (Store.probe store part rlit));
    bk_advance = (fun () -> Store.advance store);
    bk_plan = (fun ~seminaive r -> Planner.plans ~seminaive r);
    bk_snapshot =
      (fun () ->
        List.fold_left
          (fun acc (pred, fs) -> StringMap.add pred fs acc)
          StringMap.empty (Store.all_facts store));
    bk_stats =
      (fun () ->
        let s = Store.stats store in
        ( s.Store.indexed_probes,
          s.Store.index_hits,
          s.Store.facts_skipped,
          s.Store.subsumption_avoided ));
    bk_freeze = (fun () -> Store.freeze store);
    bk_thaw = (fun () -> Store.thaw store);
  }

(* the seed engine's storage: per-predicate assoc lists of (fact, iteration
   tag), linear subsumption scans, body literals evaluated in program order *)
let seed_backend () =
  let store = ref StringMap.empty in
  let cur_iter = ref 0 in
  let store_find pred =
    match StringMap.find_opt pred !store with Some l -> l | None -> []
  in
  let range = function
    | Store.Old -> (0, !cur_iter - 2)
    | Store.Delta -> (!cur_iter - 1, !cur_iter - 1)
    | Store.Full -> (0, !cur_iter - 1)
  in
  {
    bk_add =
      (fun iter f ->
        let l =
          List.filter (fun (g, _) -> not (Fact.subsumes f g)) (store_find (Fact.pred f))
        in
        store := StringMap.add (Fact.pred f) ((f, iter) :: l) !store);
    bk_known =
      (fun f -> List.exists (fun (g, _) -> Fact.subsumes g f) (store_find (Fact.pred f)));
    bk_cands =
      (fun part _theta lit ->
        let min_iter, max_iter = range part in
        List.filter_map
          (fun (f, it) ->
            if it >= min_iter && it <= max_iter && Fact.matches_literal lit f then Some f
            else None)
          (store_find lit.Literal.pred));
    bk_advance = (fun () -> incr cur_iter);
    bk_plan =
      (fun ~seminaive r ->
        (* original body order; only the partition assignment varies *)
        let n = List.length r.Rule.body in
        let plan pivot =
          List.mapi
            (fun i lit -> { Planner.lit; orig = i; part = Planner.part_of ~pivot i })
            r.Rule.body
        in
        if seminaive then List.init n plan else [ plan (-1) ]);
    bk_snapshot =
      (fun () -> StringMap.map (fun l -> List.rev_map fst l) !store);
    bk_stats = (fun () -> (0, 0, 0, 0));
    (* the seed store is an immutable map behind a ref: reads from worker
       domains race only with the sequential merge phase, which the pool's
       batch handoff already orders *)
    bk_freeze = (fun () -> ());
    bk_thaw = (fun () -> ());
  }

(* ----- evaluation loops ----- *)

type budget = { mutable deriv_left : int }

exception Budget_exhausted

(* enumerate combinations along a plan with incremental unification: failed
   joins are pruned before the cross-product expands *)
let rec choose_combos bk (steps : Planner.plan) theta cstr used k =
  match steps with
  | [] ->
      let used = List.sort (fun (a, _) (b, _) -> compare a b) used in
      k theta cstr (List.map snd used)
  | step :: rest ->
      List.iter
        (fun f ->
          let flit, fcstr = fact_literal f in
          match Subst.unify_under theta step.Planner.lit flit with
          | None -> ()
          | Some theta' ->
              choose_combos bk rest theta' (Conj.and_ cstr fcstr)
                ((step.Planner.orig, f) :: used) k)
        (bk.bk_cands step.Planner.part theta step.Planner.lit)

(* One parallel task: a slice of a rule-plan's first-step candidates.  Tasks
   are built in the exact order the sequential loop would enumerate them, and
   each task emits its derivations in enumeration order, so concatenating
   task outputs in task order reproduces the sequential production list —
   the merge phase then behaves identically (same facts, same provenance,
   same trace, same budget-truncation point). *)
type task = {
  tk_rule : Rule.t;
  tk_rest : Planner.plan; (* plan minus the first step *)
  tk_step0 : Planner.step option; (* None for an empty plan *)
  tk_cands : Fact.t list; (* this task's slice of the first step's candidates *)
}

let run_task bk (tk : task) =
  let out = ref [] in
  let emit theta cstr used =
    match derive_head tk.tk_rule theta cstr with
    | None -> ()
    | Some f -> out := (tk.tk_rule.Rule.label, f, used) :: !out
  in
  (match tk.tk_step0 with
  | None -> choose_combos bk tk.tk_rest Subst.empty Conj.tt [] emit
  | Some step0 ->
      List.iter
        (fun f ->
          let flit, fcstr = fact_literal f in
          match Subst.unify_under Subst.empty step0.Planner.lit flit with
          | None -> ()
          | Some theta ->
              choose_combos bk tk.tk_rest theta fcstr [ (step0.Planner.orig, f) ] emit)
        tk.tk_cands);
  (* forward (enumeration) order, ready for in-order concatenation *)
  List.rev !out

(* Slice every rule-plan into tasks: the first join step's candidate list is
   what semi-naive iteration fans out over (the delta pivot is placed first
   by the planner), cut into [jobs * 4] chunks for load balance. *)
let tasks_of_iteration bk jobs rule_plans =
  let tasks = ref [] in
  List.iter
    (fun ((r : Rule.t), plans) ->
      List.iter
        (fun plan ->
          match plan with
          | [] -> tasks := { tk_rule = r; tk_rest = []; tk_step0 = None; tk_cands = [] } :: !tasks
          | step0 :: rest ->
              let cands = bk.bk_cands step0.Planner.part Subst.empty step0.Planner.lit in
              let n = List.length cands in
              if n = 0 then ()
              else begin
                let chunk = max 1 ((n + (jobs * 4) - 1) / (jobs * 4)) in
                let rec cut cands =
                  match cands with
                  | [] -> ()
                  | _ ->
                      let rec take k acc rest =
                        if k = 0 then (List.rev acc, rest)
                        else
                          match rest with
                          | [] -> (List.rev acc, [])
                          | x :: tl -> take (k - 1) (x :: acc) tl
                      in
                      let slice, rest' = take chunk [] cands in
                      tasks :=
                        { tk_rule = r; tk_rest = rest; tk_step0 = Some step0; tk_cands = slice }
                        :: !tasks;
                      cut rest'
                in
                cut cands
              end)
        plans)
    rule_plans;
  Array.of_list (List.rev !tasks)

let run_loop ~seminaive ~indexed ?jobs ?max_iterations ?max_derivations ?(traced = false)
    (p : Program.t) ~(edb : Fact.t list) =
  Obs.span "engine.run" @@ fun () ->
  let jobs = match jobs with Some n -> max 1 n | None -> default_jobs () in
  if Obs.enabled () then begin
    Obs.add_field "jobs" jobs;
    Obs.add_field "rules" (List.length p.Program.rules);
    Obs.add_field "edb_facts" (List.length edb);
    Obs.add_field_str "mode" (if seminaive then "seminaive" else "naive")
  end;
  let bk = if indexed then indexed_backend () else seed_backend () in
  let budget = { deriv_left = (match max_derivations with Some n -> n | None -> max_int) } in
  let provenance = ref FactMap.empty in
  let trace_rev = ref [] in
  let derivations = ref 0 in
  let facts_added = ref 0 in
  let add_fact iter f =
    (* back-subsumption: drop stored facts the new fact subsumes; safe for
       semi-naive completeness because the new fact enters the delta *)
    bk.bk_add iter f;
    incr facts_added
  in
  let record iter label f subsumed =
    incr derivations;
    if traced then trace_rev := { iteration = iter; rule_label = label; fact = f; subsumed } :: !trace_rev;
    budget.deriv_left <- budget.deriv_left - 1;
    if budget.deriv_left <= 0 then raise Budget_exhausted
  in
  let remember label f used =
    if not (FactMap.mem f !provenance) then
      provenance := FactMap.add f (label, used) !provenance
  in
  (* iteration 0: EDB facts (untraced) + fact rules *)
  List.iter
    (fun f ->
      if not (bk.bk_known f) then begin
        add_fact 0 f;
        remember "edb" f []
      end)
    edb;
  let fact_rules, body_rules = List.partition Rule.is_fact p.Program.rules in
  List.iter
    (fun (r : Rule.t) ->
      match try_derive r [] with
      | None -> ()
      | Some f ->
          let subsumed = bk.bk_known f in
          record 0 r.Rule.label f subsumed;
          if not subsumed then begin
            add_fact 0 f;
            remember r.Rule.label f []
          end)
    fact_rules;
  (* join plans are computed once per rule, not per iteration *)
  let rule_plans = List.map (fun r -> (r, bk.bk_plan ~seminaive r)) body_rules in
  let iterations = ref 0 in
  let fixpoint = ref false in
  let result () =
    if Obs.enabled () then begin
      Obs.add_field "iterations" !iterations;
      Obs.add_field "derivations" !derivations;
      Obs.add_field "facts_added" !facts_added;
      Obs.add_field_str "fixpoint" (string_of_bool !fixpoint)
    end;
    let index_probes, index_hits, facts_skipped, subsumptions_avoided = bk.bk_stats () in
    {
      facts = bk.bk_snapshot ();
      provenance = !provenance;
      stats =
        {
          iterations = !iterations;
          derivations = !derivations;
          facts_added = !facts_added;
          reached_fixpoint = !fixpoint;
          index_probes;
          index_hits;
          facts_skipped;
          subsumptions_avoided;
        };
      trace_rev = !trace_rev;
    }
  in
  (* With [jobs > 1] the match/join work of each iteration fans out over a
     domain pool; the merge phase below stays sequential either way, so the
     two paths produce identical results (see [run_task]). *)
  let pool = if jobs > 1 then Some (Pool.create ~jobs) else None in
  let produce () =
    match pool with
    | None ->
        (* exact sequential path: no task slicing, no synchronization *)
        let produced = ref [] in
        List.iter
          (fun ((r : Rule.t), plans) ->
            List.iter
              (fun plan ->
                choose_combos bk plan Subst.empty Conj.tt [] (fun theta cstr used ->
                    match derive_head r theta cstr with
                    | None -> ()
                    | Some f -> produced := (r.Rule.label, f, used) :: !produced))
              plans)
          rule_plans;
        List.rev !produced
    | Some pool ->
        (* workers only read the store (frozen for the phase) and emit into
           per-task buffers; concatenation in task order reproduces the
           sequential production order exactly *)
        bk.bk_freeze ();
        let outs =
          Fun.protect
            ~finally:(fun () -> bk.bk_thaw ())
            (fun () ->
              let tasks = tasks_of_iteration bk jobs rule_plans in
              Obs.add_field "tasks" (Array.length tasks);
              Pool.map pool (run_task bk) tasks)
        in
        List.concat (Array.to_list outs)
  in
  Fun.protect
    ~finally:(fun () -> match pool with Some p -> Pool.shutdown p | None -> ())
    (fun () ->
      try
        let continue_ = ref true in
        while !continue_ do
          let iter = !iterations + 1 in
          (match max_iterations with
          | Some cap when iter > cap ->
              continue_ := false;
              raise Exit
          | _ -> ());
          iterations := iter;
          let any_added =
            Obs.span "engine.iteration" @@ fun () ->
            Obs.add_field "iteration" iter;
            bk.bk_advance ();
            let produced = produce () in
            let added = ref 0 and subsumed_hits = ref 0 in
            (* [record] may raise Budget_exhausted mid-merge; the span still
               records (with the fields attached so far) and re-raises *)
            List.iter
              (fun (label, f, used) ->
                let subsumed = bk.bk_known f in
                if subsumed then incr subsumed_hits;
                record iter label f subsumed;
                if not subsumed then begin
                  add_fact iter f;
                  remember label f used;
                  incr added
                end)
              produced;
            if Obs.enabled () then begin
              Obs.add_field "produced" (List.length produced);
              Obs.add_field "delta_added" !added;
              Obs.add_field "subsumption_hits" !subsumed_hits
            end;
            !added > 0
          in
          if not any_added then begin
            fixpoint := true;
            continue_ := false
          end
        done;
        result ()
      with
      | Exit -> result ()
      | Budget_exhausted -> result ())

let run ?(indexed = true) ?jobs ?max_iterations ?max_derivations ?traced p ~edb =
  run_loop ~seminaive:true ~indexed ?jobs ?max_iterations ?max_derivations ?traced p ~edb

let run_naive ?(indexed = true) ?jobs ?max_iterations ?max_derivations p ~edb =
  run_loop ~seminaive:false ~indexed ?jobs ?max_iterations ?max_derivations ~traced:false p ~edb

(* SCC-stratified evaluation: process the predicate dependency graph
   callees-first, running the semi-naive loop once per stratum with all
   earlier facts as input.  Same fixpoint; each stratum's rules only ever
   see fully-computed lower strata, so no wasted re-derivation across strata. *)
let run_stratified ?(indexed = true) ?jobs ?max_iterations ?max_derivations (p : Program.t) ~edb =
  Obs.span "engine.run_stratified" @@ fun () ->
  let g = Depgraph.of_program p in
  let derived = Program.derived p in
  let sccs =
    List.filter (fun scc -> List.exists (fun x -> List.mem x derived) scc) (Depgraph.sccs g)
  in
  Obs.add_field "strata" (List.length sccs);
  let deriv_budget = ref (match max_derivations with Some n -> n | None -> max_int) in
  let facts = ref edb in
  let derivations = ref 0 and facts_added = ref 0 and iterations = ref 0 in
  let index_probes = ref 0
  and index_hits = ref 0
  and facts_skipped = ref 0
  and subsumptions_avoided = ref 0 in
  let fixpoint = ref true in
  let provs = ref [] in
  let last = ref None in
  List.iter
    (fun scc ->
      if !deriv_budget > 0 then begin
        let rules =
          List.filter
            (fun (r : Rule.t) -> List.mem r.Rule.head.Literal.pred scc)
            p.Program.rules
        in
        let sub = { p with Program.rules } in
        let res =
          run_loop ~seminaive:true ~indexed ?jobs ?max_iterations
            ~max_derivations:!deriv_budget ~traced:false sub ~edb:!facts
        in
        deriv_budget := !deriv_budget - res.stats.derivations;
        derivations := !derivations + res.stats.derivations;
        facts_added := !facts_added + res.stats.facts_added - List.length !facts;
        iterations := max !iterations res.stats.iterations;
        index_probes := !index_probes + res.stats.index_probes;
        index_hits := !index_hits + res.stats.index_hits;
        facts_skipped := !facts_skipped + res.stats.facts_skipped;
        subsumptions_avoided := !subsumptions_avoided + res.stats.subsumptions_avoided;
        if not res.stats.reached_fixpoint then fixpoint := false;
        provs := res.provenance :: !provs;
        facts := List.concat_map snd (all_facts res);
        last := Some res
      end
      else fixpoint := false)
    sccs;
  match !last with
  | None -> run ~indexed ?jobs ?max_iterations ?max_derivations p ~edb
  | Some res ->
      (* merge provenance, preferring the stratum that really derived a
         fact over a later stratum seeing it as input *)
      let provenance =
        List.fold_left
          (fun acc m ->
            FactMap.union (fun _ a b -> if fst a = "edb" then Some b else Some a) acc m)
          FactMap.empty (List.rev !provs)
      in
      {
        res with
        provenance;
        stats =
          {
            iterations = !iterations;
            derivations = !derivations;
            facts_added = !facts_added + List.length edb;
            reached_fixpoint = !fixpoint;
            index_probes = !index_probes;
            index_hits = !index_hits;
            facts_skipped = !facts_skipped;
            subsumptions_avoided = !subsumptions_avoided;
          };
      }
