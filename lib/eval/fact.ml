(* Compatibility re-export: constraint facts now live in the storage layer
   (Cql_store) so both the relation store and the evaluation engine can use
   them without a dependency cycle.  [Cql_eval.Fact] remains the public
   path. *)
include Cql_store.Fact
