(** Bottom-up fixpoint evaluation of CQL programs (Section 2).

    The engine implements rule application over constraint facts exactly as
    the paper describes: choose a fact for each body literal, conjoin the
    facts' constraints with the rule's constraints, check satisfiability,
    and eliminate the non-head variables by projection.  Newly derived facts
    subsumed by known facts are discarded.

    Both naive and semi-naive evaluation are provided; semi-naive requires
    each derivation to use at least one fact from the previous iteration's
    delta, giving the iteration-by-iteration behaviour of the paper's
    Tables 1 and 2.  Budgets allow safely running the *non-terminating*
    evaluations the paper exhibits (Table 1).

    Facts live in the indexed relation store ({!Cql_store.Store}): hash
    indexes on the argument columns each probe binds, old/delta/full
    partitions for semi-naive evaluation, and pattern-bucketed subsumption
    checks.  Rule bodies are reordered once per rule by the join planner's
    bound-ness heuristic ({!Cql_store.Planner}).  Passing [~indexed:false]
    selects the seed list-based storage path instead — same answers, linear
    scans — kept as the reference implementation for cross-checking.

    {b Parallelism.}  With [~jobs:n] (n > 1) each semi-naive iteration fans
    the (rule-plan × first-step-candidate-chunk) match/join tasks out over a
    domain pool ({!Cql_par.Pool}): workers probe the frozen, read-only store
    and emit candidate derivations into per-task buffers, and a sequential
    merge phase then performs subsumption, provenance and delta construction
    in the exact order the sequential engine would have — so results
    (facts, derivation counts, trace, provenance, budget truncation) are
    identical for every [jobs] value.  [~jobs:1] is the unmodified
    sequential code path. *)

open Cql_datalog

val set_default_jobs : int -> unit
(** Set the parallelism degree used when [?jobs] is not passed (clamped to
    at least 1).  Until called, the default is the [CQLOPT_JOBS]
    environment variable if it parses as a positive integer, else 1. *)

val default_jobs : unit -> int

type trace_entry = {
  iteration : int;
  rule_label : string;
  fact : Fact.t;
  subsumed : bool;  (** discarded because a known fact subsumes it *)
}

type stats = {
  iterations : int;  (** number of the last iteration executed *)
  derivations : int;  (** successful rule applications, incl. subsumed *)
  facts_added : int;
  reached_fixpoint : bool;  (** false when a budget stopped the run *)
  index_probes : int;  (** store probes answered from a hash index *)
  index_hits : int;  (** candidate facts returned by indexed probes *)
  facts_skipped : int;
      (** partition facts indexed probes never had to consider *)
  subsumptions_avoided : int;
      (** stored facts subsumption checks skipped thanks to the
          pattern/ground indexes (all zero with [~indexed:false]) *)
}

type result

val stats : result -> stats
val trace : result -> trace_entry list
(** In derivation order; empty unless the run was traced. *)

val facts_of : result -> string -> Fact.t list
val all_facts : result -> (string * Fact.t list) list
val total_facts : result -> int
(** Number of stored (non-subsumed) facts, EDB included. *)

val total_idb_facts : result -> edb:Fact.t list -> int
(** Stored facts minus the EDB input size. *)

val answers : result -> Program.t -> Fact.t list
(** Facts of the program's query predicate (empty when no query is set). *)

val provenance : result -> Fact.t -> (string * Fact.t list) option
(** The first derivation recorded for a stored fact: the rule label
    (["edb"] for database facts) and the facts its body literals used.
    [None] for facts never stored (e.g. subsumed on arrival). *)

type compiled
(** Precompiled register-frame programs for every (rule, pivot) plan of one
    program (see {!Cql_eval.Compile}).  Built once with {!compile_plans} and
    passed back to {!run}/{!materialize} so warm evaluations skip both
    planning and compilation; applies only to the exact program value it was
    built from (physical equality). *)

val compile_plans : Program.t -> compiled
(** Plan and compile every body rule of the program (semi-naive plans, as
    {!run} uses).  With compilation disabled ([CQLOPT_NO_COMPILE] /
    {!Compile.enabled}[ = false]) the artifact carries interpreter-only
    plans, preserving the fallback. *)

val run :
  ?indexed:bool ->
  ?jobs:int ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  ?traced:bool ->
  ?compiled:compiled ->
  Program.t ->
  edb:Fact.t list ->
  result
(** Semi-naive evaluation.  Iteration 0 loads the EDB and fires the
    program's fact rules; subsequent iterations are delta-driven.
    [indexed] (default [true]) selects the indexed relation store and join
    planner; [~indexed:false] runs the seed list-based reference path.
    With the indexed backend each (rule, pivot) plan is compiled once into
    a register-frame program ({!Cql_eval.Compile}) — same derivations in
    the same order, without the per-candidate substitution interpretation;
    set [CQLOPT_NO_COMPILE=1] (or [--no-compile]) to force the interpreter.
    [compiled] supplies a precompiled artifact for this exact program
    (physical equality), skipping planning and compilation entirely.
    [jobs] (default {!default_jobs}) is the number of domains evaluating
    each iteration's match phase; results are identical for every value. *)

val run_naive :
  ?indexed:bool ->
  ?jobs:int ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  Program.t ->
  edb:Fact.t list ->
  result
(** Naive evaluation (every rule against the full database each iteration);
    used to cross-check the semi-naive engine. *)

val run_stratified :
  ?indexed:bool ->
  ?jobs:int ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  Program.t ->
  edb:Fact.t list ->
  result
(** SCC-stratified semi-naive evaluation: strongly connected components of
    the predicate dependency graph are computed callees-first, each with one
    semi-naive fixpoint over fully-computed lower strata.  Computes the same
    facts as {!run}; [iterations] reports the maximum per-stratum iteration
    count and no trace is recorded. *)

val all_ground : result -> bool
(** Every stored fact is ground (the property Theorems 4.4/4.6 preserve). *)

(** {1 Incremental view maintenance}

    {!materialize} evaluates a program once and returns a live handle;
    {!insert} and {!retract} then maintain the fixpoint under EDB changes
    without re-evaluating from scratch.  Insertions run ordinary semi-naive
    delta rounds seeded from the new facts (on the view's domain pool when
    [jobs > 1]).  Retractions are DRed over a recorded support graph:
    every rule firing (head, label, body facts) is kept, so over-deletion
    and re-derivation are pure graph walks and facts outside the deleted
    cone are never re-proved.  Per-fact support counts (EDB multiplicity +
    live firings) live in the store ({!Cql_store.Store.counted_facts}).

    Constraint subsumption interacts with deletion through the covered set:
    facts dropped on arrival (or killed by back-subsumption) because a live
    fact covers them are remembered, and retracting their last cover
    resurrects the ones that still have support.

    Results are identical for every [jobs] value, exactly as for {!run}. *)

type view

type maintain_stats = {
  m_op : string;  (** ["materialize"], ["insert"] or ["retract"] *)
  m_batch : int;  (** facts in the request batch *)
  m_inserted : int;  (** EDB facts newly stored (not duplicates/covered) *)
  m_retracted : int;  (** EDB occurrences removed *)
  m_noops : int;  (** duplicate inserts and retractions of absent facts *)
  m_derivations : int;  (** rule firings merged during the rounds *)
  m_over_deleted : int;  (** facts provisionally deleted by DRed *)
  m_rederived : int;  (** over-deleted facts rescued by re-derivation *)
  m_resurrected : int;  (** covered facts revived by a dying cover *)
  m_deleted : int;  (** facts physically removed *)
  m_iterations : int;
  m_complete : bool;  (** the rounds reached fixpoint within the budget *)
}

val materialize :
  ?jobs:int ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  ?compiled:compiled ->
  Program.t ->
  edb:Fact.t list ->
  view * maintain_stats
(** Evaluate the program to fixpoint and return a live view.  The budgets
    become the view's per-operation defaults.  When truncated
    ([m_complete = false]) the view's contents are a sound under-
    approximation and {!view_complete} turns false.  [compiled] as for
    {!run}: a precompiled plan artifact for this exact program. *)

val insert :
  ?max_iterations:int -> ?max_derivations:int -> view -> Fact.t list -> maintain_stats
(** Add EDB facts and restore the fixpoint with semi-naive delta rounds.
    Structural duplicates only bump the stored fact's support count. *)

val retract :
  ?max_iterations:int -> ?max_derivations:int -> view -> Fact.t list -> maintain_stats
(** Remove one EDB occurrence per given fact (absent facts are counted in
    [m_noops]) and restore the fixpoint: DRed over-deletion, re-derivation
    from surviving support, then resurrection of covered facts whose last
    cover died. *)

val close_view : view -> unit
(** Release the view's domain pool.  Further maintenance raises
    [Invalid_argument]; accessors keep working. *)

val view_program : view -> Program.t
val view_complete : view -> bool
(** False once any maintenance round was truncated by a budget; the view's
    contents may then under-approximate the fixpoint. *)

val view_edb : view -> Fact.t list
(** The current EDB multiset, oldest first. *)

val view_jobs : view -> int

val view_domain : view -> Cql_constr.Cdomain.t
(** The constraint domain captured when the view was materialized; every
    {!insert}/{!retract} re-derives under it regardless of the caller's
    ambient domain. *)

val view_facts_of : view -> string -> Fact.t list
val view_all_facts : view -> (string * Fact.t list) list
(** Sorted by predicate, facts sorted by {!Fact.compare}. *)

val view_answers : view -> Fact.t list
(** Query-predicate facts, sorted by {!Fact.compare}. *)

val view_counts : view -> (string * (Fact.t * int) list) list
(** Per-fact support counts (EDB multiplicity + live rule firings), sorted;
    predicates with no live facts are omitted. *)

val view_total : view -> int
