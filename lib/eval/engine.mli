(** Bottom-up fixpoint evaluation of CQL programs (Section 2).

    The engine implements rule application over constraint facts exactly as
    the paper describes: choose a fact for each body literal, conjoin the
    facts' constraints with the rule's constraints, check satisfiability,
    and eliminate the non-head variables by projection.  Newly derived facts
    subsumed by known facts are discarded.

    Both naive and semi-naive evaluation are provided; semi-naive requires
    each derivation to use at least one fact from the previous iteration's
    delta, giving the iteration-by-iteration behaviour of the paper's
    Tables 1 and 2.  Budgets allow safely running the *non-terminating*
    evaluations the paper exhibits (Table 1).

    Facts live in the indexed relation store ({!Cql_store.Store}): hash
    indexes on the argument columns each probe binds, old/delta/full
    partitions for semi-naive evaluation, and pattern-bucketed subsumption
    checks.  Rule bodies are reordered once per rule by the join planner's
    bound-ness heuristic ({!Cql_store.Planner}).  Passing [~indexed:false]
    selects the seed list-based storage path instead — same answers, linear
    scans — kept as the reference implementation for cross-checking.

    {b Parallelism.}  With [~jobs:n] (n > 1) each semi-naive iteration fans
    the (rule-plan × first-step-candidate-chunk) match/join tasks out over a
    domain pool ({!Cql_par.Pool}): workers probe the frozen, read-only store
    and emit candidate derivations into per-task buffers, and a sequential
    merge phase then performs subsumption, provenance and delta construction
    in the exact order the sequential engine would have — so results
    (facts, derivation counts, trace, provenance, budget truncation) are
    identical for every [jobs] value.  [~jobs:1] is the unmodified
    sequential code path. *)

open Cql_datalog

val set_default_jobs : int -> unit
(** Set the parallelism degree used when [?jobs] is not passed (clamped to
    at least 1).  Until called, the default is the [CQLOPT_JOBS]
    environment variable if it parses as a positive integer, else 1. *)

val default_jobs : unit -> int

type trace_entry = {
  iteration : int;
  rule_label : string;
  fact : Fact.t;
  subsumed : bool;  (** discarded because a known fact subsumes it *)
}

type stats = {
  iterations : int;  (** number of the last iteration executed *)
  derivations : int;  (** successful rule applications, incl. subsumed *)
  facts_added : int;
  reached_fixpoint : bool;  (** false when a budget stopped the run *)
  index_probes : int;  (** store probes answered from a hash index *)
  index_hits : int;  (** candidate facts returned by indexed probes *)
  facts_skipped : int;
      (** partition facts indexed probes never had to consider *)
  subsumptions_avoided : int;
      (** stored facts subsumption checks skipped thanks to the
          pattern/ground indexes (all zero with [~indexed:false]) *)
}

type result

val stats : result -> stats
val trace : result -> trace_entry list
(** In derivation order; empty unless the run was traced. *)

val facts_of : result -> string -> Fact.t list
val all_facts : result -> (string * Fact.t list) list
val total_facts : result -> int
(** Number of stored (non-subsumed) facts, EDB included. *)

val total_idb_facts : result -> edb:Fact.t list -> int
(** Stored facts minus the EDB input size. *)

val answers : result -> Program.t -> Fact.t list
(** Facts of the program's query predicate (empty when no query is set). *)

val provenance : result -> Fact.t -> (string * Fact.t list) option
(** The first derivation recorded for a stored fact: the rule label
    (["edb"] for database facts) and the facts its body literals used.
    [None] for facts never stored (e.g. subsumed on arrival). *)

val run :
  ?indexed:bool ->
  ?jobs:int ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  ?traced:bool ->
  Program.t ->
  edb:Fact.t list ->
  result
(** Semi-naive evaluation.  Iteration 0 loads the EDB and fires the
    program's fact rules; subsequent iterations are delta-driven.
    [indexed] (default [true]) selects the indexed relation store and join
    planner; [~indexed:false] runs the seed list-based reference path.
    [jobs] (default {!default_jobs}) is the number of domains evaluating
    each iteration's match phase; results are identical for every value. *)

val run_naive :
  ?indexed:bool ->
  ?jobs:int ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  Program.t ->
  edb:Fact.t list ->
  result
(** Naive evaluation (every rule against the full database each iteration);
    used to cross-check the semi-naive engine. *)

val run_stratified :
  ?indexed:bool ->
  ?jobs:int ->
  ?max_iterations:int ->
  ?max_derivations:int ->
  Program.t ->
  edb:Fact.t list ->
  result
(** SCC-stratified semi-naive evaluation: strongly connected components of
    the predicate dependency graph are computed callees-first, each with one
    semi-naive fixpoint over fully-computed lower strata.  Computes the same
    facts as {!run}; [iterations] reports the maximum per-stratum iteration
    count and no trace is recorded. *)

val all_ground : result -> bool
(** Every stored fact is ground (the property Theorems 4.4/4.6 preserve). *)
