(** One predicate's fact table: semi-naive partitions, lazy hash indexes on
    probed column sets, and pattern-bucketed subsumption checking.

    Facts live in three partitions mirroring semi-naive evaluation: [Old]
    (facts from iterations before the previous one), [Delta] (the previous
    iteration's new facts) and a pending buffer of facts added during the
    current iteration.  {!advance} promotes delta into old and pending into
    delta at each iteration boundary, updating old's indexes incrementally.

    Subsumption candidates are bucketed by symbolic pattern (only facts with
    identical [Psym]/[Pvar] layouts are comparable) and fully-pinned facts
    are additionally hashed by their value tuple, so duplicate ground facts
    are detected without a single solver call.

    {b Concurrency.}  A table is single-writer: all mutation ({!insert},
    {!advance}, {!back_subsume}) happens on one domain in the sequential
    phases of evaluation.  During a parallel match phase the table must be
    {!freeze}-d: worker domains may then call {!probe} and {!scan}
    concurrently (lazy index construction synchronizes internally) while
    any mutation raises [Invalid_argument], enforcing the read-only
    contract. *)

type cell = Index.cell = { fact : Fact.t; mutable live : bool; mutable part : int }

type partition = Old | Delta | Full  (** [Full] = [Old] + [Delta]. *)

type t

val create : unit -> t

val insert : t -> Fact.t -> unit
(** Append to the pending partition (no subsumption checking here). *)

val known_subsumes : t -> Fact.t -> bool * int
(** [(subsumed, comparisons)]: is the fact subsumed by a live stored fact,
    and how many {!Fact.subsumes} calls the check performed. *)

val back_subsume : t -> Fact.t -> int * Fact.t list
(** Mark live stored facts subsumed by the new fact dead; returns the number
    of comparisons performed and the facts that were killed (their counts
    are dropped — only live facts carry counts). *)

val find_equal : t -> Fact.t -> Fact.t option
(** The live stored fact structurally equal to the argument
    ([Fact.compare] = 0), if any. *)

val mem_equal : t -> Fact.t -> bool

val delete : t -> Fact.t -> bool
(** Retire the live cell structurally equal to the fact (and its count).
    Returns whether such a cell existed. *)

val set_count : t -> Fact.t -> int -> unit
(** Set a fact's derivation count; [n <= 0] removes the entry. *)

val bump_count : ?by:int -> t -> Fact.t -> unit

val count : t -> Fact.t -> int
(** A fact's derivation count (0 when untracked). *)

val drop_count : t -> Fact.t -> unit

val counted_facts : t -> (Fact.t * int) list
(** All tracked counts in {!Fact.compare} order. *)

val advance : t -> unit
(** Iteration boundary: old ∪= delta, delta ← pending, pending ← ∅. *)

val freeze : t -> unit
(** Enter read-only mode: mutation raises until {!thaw}.  Probing stays
    legal from any domain. *)

val thaw : t -> unit
(** Leave read-only mode (call from the mutating domain only). *)

val probe : t -> partition -> int list -> Cql_datalog.Term.const list -> Fact.t list
(** [probe t part positions key]: live facts of [part] agreeing with [key]
    on the 0-based [positions], plus facts with unpinned indexed columns.
    A sound over-approximation of the matching facts. *)

val scan : t -> partition -> Fact.t list
(** All live facts of a partition, newest first. *)

val iter_probe :
  t -> partition -> int list -> Cql_datalog.Term.const list -> (Fact.t -> unit) -> int
(** Like {!probe}, but pushes each candidate to the callback in the exact
    order {!probe} would list them, allocating no result list.  Returns the
    number of facts visited. *)

val iter_scan : t -> partition -> (Fact.t -> unit) -> int
(** Like {!scan}, pushed to a callback; returns the number of facts. *)

val facts : t -> Fact.t list
(** All live facts (any partition), oldest first. *)

val live_total : t -> int
val part_count : t -> partition -> int
