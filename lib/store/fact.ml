open Cql_num
open Cql_constr
open Cql_datalog

type pos = Psym of string | Pvar

type t = {
  pred : string;
  args : pos array;
  cstr : Conj.t;
  pinned : Rat.t option array; (* cached per-position ground values *)
}

exception Unsat

let numeric_vars args =
  let s = ref Var.Set.empty in
  Array.iteri (fun i p -> match p with Pvar -> s := Var.Set.add (Var.arg (i + 1)) !s | Psym _ -> ()) args;
  !s

(* extract the value a simplified conjunction pins a variable to, if any *)
let pinned_value cstr v =
  let rec find = function
    | [] -> None
    | (a : Atom.t) :: rest ->
        if a.Atom.op = Atom.Eq && Atom.mem v a then begin
          let k = Linexpr.coeff v a.Atom.expr in
          let r = Linexpr.sub a.Atom.expr (Linexpr.term k v) in
          if Linexpr.is_const r then Some (Rat.neg (Rat.div (Linexpr.constant r) k))
          else find rest
        end
        else find rest
  in
  find (Conj.to_list cstr)

let compute_pinned args cstr =
  Array.mapi
    (fun i p ->
      match p with
      | Psym _ -> None
      | Pvar -> (
          let v = Var.arg (i + 1) in
          match pinned_value cstr v with
          | Some q -> Some q
          | None ->
              (* an equality may pin it only after projecting the others out *)
              pinned_value (Conj.project ~keep:(Var.Set.singleton v) cstr) v))
    args

let make pred args cstr =
  let keep = numeric_vars args in
  let c = Conj.simplify (Conj.project ~keep cstr) in
  if not (Conj.is_sat c) then raise Unsat;
  { pred; args; cstr = c; pinned = compute_pinned args c }

(* Ground fast path: every position is a symbol or a known numeric value.
   [make] over the pin conjunction would return its canonicalization
   unchanged — [project] keeps every variable (none falls outside [keep]),
   [simplify] drops nothing (each pin binds a distinct [$i], so no atom is
   implied by the others) and the conjunction is trivially satisfiable — so
   the canonical representation is built directly, skipping the solver
   memo lookups and the per-position pin extraction of [compute_pinned]. *)
let of_consts pred (consts : Term.const array) =
  let n = Array.length consts in
  let args = Array.make n Pvar in
  let pinned = Array.make n None in
  let atoms = ref [] in
  for i = 0 to n - 1 do
    match consts.(i) with
    | Term.Sym s -> args.(i) <- Psym s
    | Term.Num q ->
        pinned.(i) <- Some q;
        atoms := Atom.eq (Linexpr.var (Var.arg (i + 1))) (Linexpr.const q) :: !atoms
  done;
  { pred; args; cstr = Conj.of_list !atoms; pinned }

let ground pred consts =
  let args = Array.make (List.length consts) Pvar in
  let atoms = ref [] in
  List.iteri
    (fun i c ->
      match c with
      | Term.Sym s -> args.(i) <- Psym s
      | Term.Num q ->
          args.(i) <- Pvar;
          atoms := Atom.eq (Linexpr.var (Var.arg (i + 1))) (Linexpr.const q) :: !atoms)
    consts;
  make pred args (Conj.of_list !atoms)

let of_fact_rule (r : Rule.t) =
  if r.Rule.body <> [] then invalid_arg "Fact.of_fact_rule: rule has body literals";
  let head = r.Rule.head in
  let n = Literal.arity head in
  let args = Array.make n Pvar in
  (* bind each head term to $i; repeated variables become $i = $j *)
  let atoms = ref (Conj.to_list r.Rule.cstr) in
  let seen : (Var.t * int) list ref = ref [] in
  List.iteri
    (fun i t ->
      let ai = Var.arg (i + 1) in
      match t with
      | Term.C (Term.Sym s) -> args.(i) <- Psym s
      | Term.C (Term.Num q) -> atoms := Atom.eq (Linexpr.var ai) (Linexpr.const q) :: !atoms
      | Term.V v -> (
          match List.assoc_opt v !seen with
          | Some j ->
              atoms := Atom.eq (Linexpr.var ai) (Linexpr.var (Var.arg j)) :: !atoms
          | None ->
              seen := (v, i + 1) :: !seen;
              atoms := Atom.eq (Linexpr.var ai) (Linexpr.var v) :: !atoms))
    head.Literal.args;
  make head.Literal.pred args (Conj.of_list !atoms)

let pred f = f.pred
let arity f = Array.length f.args
let cstr f = f.cstr

let ground_value f i = f.pinned.(i - 1)

let is_ground f =
  let ok = ref true in
  Array.iteri
    (fun i p -> match p with Psym _ -> () | Pvar -> if f.pinned.(i) = None then ok := false)
    f.args;
  !ok

let same_pattern a b =
  a.pred = b.pred
  && Array.length a.args = Array.length b.args
  && Array.for_all2 (fun x y ->
         match (x, y) with
         | Psym s1, Psym s2 -> s1 = s2
         | Pvar, Pvar -> true
         | Psym _, Pvar | Pvar, Psym _ -> false)
       a.args b.args

(* cheap pre-filter: can this fact possibly unify with the literal?
   Constant literal arguments must match the fact's symbolic pattern and
   pinned values.  A [Pvar] position not pinned to a number can still cover
   a symbolic constant — either as a universal wildcard ([$i] absent from
   the constraint) or through a position-equality over symbol-bound
   positions, which unification decides exactly — so only a numeric pin
   rejects a symbol here.  (Repeated variables are left to real
   unification.) *)
let matches_literal (l : Literal.t) f =
  Array.length f.args = Literal.arity l
  && begin
       let ok i t =
         match (t, f.args.(i)) with
         | Term.C (Term.Sym s), Psym s' -> s = s'
         | Term.C (Term.Sym _), Pvar -> f.pinned.(i) = None
         | Term.C (Term.Num _), Psym _ -> false
         | Term.C (Term.Num q), Pvar -> (
             match f.pinned.(i) with Some v -> Rat.equal v q | None -> true)
         | Term.V _, _ -> true
       in
       List.for_all Fun.id (List.mapi ok l.Literal.args)
     end

let all_pinned f =
  Array.for_all2
    (fun p v -> match p with Psym _ -> true | Pvar -> v <> None)
    f.args f.pinned

let subsumes general specific =
  same_pattern general specific
  && (general.cstr == specific.cstr (* interned: identical constraints *)
     ||
     if all_pinned specific then
       (* evaluate the general constraint at the specific point: no solver *)
       let env v =
         match Var.arg_index v with
         | Some i when i >= 1 && i <= Array.length specific.pinned -> specific.pinned.(i - 1)
         | _ -> None
       in
       match Conj.eval_at env general.cstr with
       | Some b -> b
       | None -> Conj.implies specific.cstr general.cstr
     else Conj.implies specific.cstr general.cstr)

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let c =
      Stdlib.compare
        (Array.to_list (Array.map (function Psym s -> Some s | Pvar -> None) a.args))
        (Array.to_list (Array.map (function Psym s -> Some s | Pvar -> None) b.args))
    in
    if c <> 0 then c else Conj.compare a.cstr b.cstr

let equal a b = compare a b = 0

let pp fmt f =
  let n = Array.length f.args in
  let pinned = Array.make n None in
  for i = 1 to n do
    pinned.(i - 1) <- ground_value f i
  done;
  (* residual constraints: those not expressed by pinned positions *)
  let residual =
    List.filter
      (fun (a : Atom.t) ->
        not
          (Var.Set.for_all
             (fun v ->
               match Var.arg_index v with
               | Some i when i <= n -> pinned.(i - 1) <> None
               | _ -> false)
             (Atom.vars a)))
      (Conj.to_list f.cstr)
  in
  let pp_arg fmt i =
    match f.args.(i) with
    | Psym s -> Format.pp_print_string fmt s
    | Pvar -> (
        match pinned.(i) with
        | Some q -> Rat.pp fmt q
        | None -> Var.pp fmt (Var.arg (i + 1)))
  in
  Format.fprintf fmt "%s(" f.pred;
  for i = 0 to n - 1 do
    if i > 0 then Format.pp_print_string fmt ", ";
    pp_arg fmt i
  done;
  if residual <> [] then
    Format.fprintf fmt "; %a"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") Atom.pp)
      residual;
  Format.pp_print_string fmt ")"

let to_string f = Format.asprintf "%a" pp f
