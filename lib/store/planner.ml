open Cql_constr
open Cql_datalog

type step = { lit : Literal.t; orig : int; part : Store.partition }

type plan = step list

(* which store partition a body literal reads, given the semi-naive pivot
   (the literal forced to use the previous iteration's delta); literals
   before the pivot in the *original* body read old, later ones read full —
   this depends on the original position, never on the evaluation order, so
   reordering keeps the union over pivots exactly covering each combination
   once *)
let part_of ~pivot i : Store.partition =
  if pivot < 0 then Full else if i < pivot then Old else if i = pivot then Delta else Full

(* bound-ness score under the variables bound so far: (bound args, free
   args).  More bound arguments mean a more selective index probe; fewer
   free arguments mean a smaller result to carry forward. *)
let score bound (l : Literal.t) =
  List.fold_left
    (fun (b, f) t ->
      match t with
      | Term.C _ -> (b + 1, f)
      | Term.V v -> if Var.Set.mem v bound then (b + 1, f) else (b, f + 1))
    (0, 0) l.Literal.args

(* greedy most-bound-first ordering: repeatedly pick the literal with the
   most bound arguments (constants or variables bound by already-placed
   literals), tie-breaking on fewer free arguments then original position.
   With a pivot, the delta literal goes first — the delta is the smallest
   partition and seeds the bindings for everything else. *)
let order ~pivot (body : Literal.t list) : plan =
  let items = List.mapi (fun i l -> (i, l)) body in
  let first, rest =
    if pivot >= 0 then
      ( List.filter (fun (i, _) -> i = pivot) items,
        List.filter (fun (i, _) -> i <> pivot) items )
    else ([], items)
  in
  let bound = ref Var.Set.empty in
  let place (i, l) =
    bound := Var.Set.union !bound (Literal.vars l);
    { lit = l; orig = i; part = part_of ~pivot i }
  in
  let placed = List.map place first in
  let rec pick acc = function
    | [] -> List.rev acc
    | remaining ->
        let best =
          List.fold_left
            (fun best (i, l) ->
              let b, f = score !bound l in
              match best with
              | Some (_, _, bb, bf) when (bb, -bf) >= (b, -f) -> best
              | _ -> Some (i, l, b, f))
            None remaining
        in
        let bi, bl, _, _ = match best with Some (i, l, b, f) -> (i, l, b, f) | None -> assert false in
        pick (place (bi, bl) :: acc) (List.filter (fun (i, _) -> i <> bi) remaining)
  in
  placed @ pick [] rest

(* All evaluation plans for one rule, computed once: one per pivot for
   semi-naive evaluation, a single all-full plan for naive. *)
let plans ~seminaive (r : Rule.t) : plan list =
  let n = List.length r.Rule.body in
  if seminaive then List.init n (fun pivot -> order ~pivot r.Rule.body)
  else [ order ~pivot:(-1) r.Rule.body ]

(* per-step binding metadata, for compiling a plan: which variables earlier
   steps have bound when a step starts, and which the step binds first *)
let step_bindings (p : plan) : (Var.Set.t * Var.Set.t) list =
  let rec go bound = function
    | [] -> []
    | s :: rest ->
        let vs = Literal.vars s.lit in
        (bound, Var.Set.diff vs bound) :: go (Var.Set.union bound vs) rest
  in
  go Var.Set.empty p
