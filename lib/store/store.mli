(** The indexed relation store: one {!Table} per predicate plus counters.

    This replaces the evaluation engine's per-predicate association lists.
    Probes for a body literal with at least one constant argument (after
    applying the current substitution) are answered from a hash index on the
    bound columns; subsumption checks only compare facts with the same
    symbolic pattern, with duplicate ground facts detected by hash lookup.
    The counters expose how much work indexing saved.

    {b Concurrency.}  The store is single-writer.  During a parallel match
    phase, {!freeze} it: worker domains may then {!probe} concurrently (the
    per-table lazy indexes synchronize internally) while {!add}/{!advance}
    raise, enforcing read-only sharing for the round.  {!stats} counters
    are plain (non-atomic) ints: concurrent probes may lose increments, so
    under [jobs > 1] they are approximate — acceptable for observability,
    never used for control flow. *)

open Cql_datalog

type partition = Table.partition = Old | Delta | Full

type stats = {
  mutable probes : int;  (** candidate lookups issued by the engine *)
  mutable indexed_probes : int;  (** probes answered from a hash index *)
  mutable index_hits : int;  (** facts returned by indexed probes *)
  mutable scans : int;  (** probes with no bound column: full partition scans *)
  mutable scanned_facts : int;  (** facts returned by scans *)
  mutable facts_skipped : int;
      (** partition facts an indexed probe did not have to consider *)
  mutable subsumption_checks : int;
  mutable subsumption_compared : int;  (** {!Fact.subsumes} calls performed *)
  mutable subsumption_avoided : int;
      (** stored facts skipped by the pattern/ground subsumption indexes *)
}

type t

val create : unit -> t
val stats : t -> stats

val known_subsumes : t -> Fact.t -> bool
(** Is the fact subsumed by a live stored fact? *)

val add : t -> Fact.t -> unit
(** Insert a non-subsumed fact: drops stored facts it subsumes, then appends
    it to the pending partition. *)

val add_reporting : t -> Fact.t -> Fact.t list
(** Like {!add}, but returns the stored facts the newcomer back-subsumed
    (killed), so a maintenance layer can remember them as covered. *)

val find_equal : t -> Fact.t -> Fact.t option
(** The live stored fact structurally equal to the argument, if any. *)

val mem_equal : t -> Fact.t -> bool

val delete : t -> Fact.t -> bool
(** Retire the live fact structurally equal to the argument (and its
    derivation count).  Returns whether it existed. *)

val set_count : t -> Fact.t -> int -> unit
(** Set a fact's derivation count; [n <= 0] removes the entry. *)

val bump_count : ?by:int -> t -> Fact.t -> unit
val count : t -> Fact.t -> int
val drop_count : t -> Fact.t -> unit

val counted_facts : t -> (string * (Fact.t * int) list) list
(** Per predicate, all tracked derivation counts in {!Fact.compare} order. *)

val advance : t -> unit
(** Iteration boundary on every table: old ∪= delta, delta ← pending. *)

val seed_delta : t -> Fact.t list -> unit
(** Make [facts] the delta partition: the current delta retires into old,
    then the seeds are added and promoted in one extra boundary.  Sets up
    the store for a semi-naive maintenance round driven by the new facts. *)

val freeze : t -> unit
(** Enter read-only mode on every table (see {!Table.freeze}). *)

val thaw : t -> unit
(** Leave read-only mode on every table. *)

val probe : t -> partition -> Literal.t -> Fact.t list
(** Candidate facts for a body literal {e already resolved} under the
    current substitution.  A sound over-approximation: callers still filter
    with {!Fact.matches_literal} and unification. *)

val iter_probe_cols :
  t -> partition -> string -> int list -> Term.const list -> (Fact.t -> unit) -> unit
(** [iter_probe_cols s part pred positions key k]: like {!probe} on a
    resolved literal of predicate [pred] whose bound columns are [positions]
    (ascending) with constants [key], but pushes each candidate to the
    callback (same facts, same order) without materializing a list; the
    stats counters advance exactly as for {!probe}.  Empty [positions]
    scans the partition.  The callback must not mutate the store. *)

val facts : t -> string -> Fact.t list
(** Live facts of a predicate, oldest first. *)

val all_facts : t -> (string * Fact.t list) list
val total : t -> int
