(** Constraint facts [p(x̄; C)] — the values bottom-up evaluation computes
    (Section 2 of the paper).

    A fact maps each argument position to either a symbolic constant or the
    canonical numeric variable [$i], with a conjunction [C] over the [$i]
    constraining the numeric positions.  A ground numeric fact is the special
    case where [C] pins every numeric position to a value.  A constraint fact
    finitely represents the (potentially infinite) set of ground facts
    satisfying [C]. *)

open Cql_num
open Cql_constr
open Cql_datalog

type pos = Psym of string | Pvar  (** position [i] holds the variable [$i] *)

type t = private {
  pred : string;
  args : pos array;
  cstr : Conj.t;
  pinned : Rat.t option array;
      (** cached ground value per position, when the constraints pin one *)
}

exception Unsat
(** Raised by constructors when the constraint part is unsatisfiable (such a
    fact denotes no ground facts and must not be built). *)

val make : string -> pos array -> Conj.t -> t
(** [make pred args c] canonicalizes [c] (projects it onto the [$i] of
    numeric positions and simplifies).
    @raise Unsat if [c] is unsatisfiable. *)

val ground : string -> Term.const list -> t
(** A ground fact from constants. *)

val of_consts : string -> Term.const array -> t
(** [ground] without the canonicalization round-trip: builds the pin
    conjunction directly (on which {!make}'s projection and simplification
    are provably the identity), so no solver memo is consulted.  The hot
    constructor of the compiled executor's all-constant head path. *)

val of_fact_rule : Rule.t -> t
(** Convert a bodyless rule [p(t̄) :- C.] into a fact, e.g. parsed EDB
    clauses.
    @raise Unsat when [C] is unsatisfiable.
    @raise Invalid_argument when the rule has body literals. *)

val pred : t -> string
val arity : t -> int
val cstr : t -> Conj.t

val is_ground : t -> bool
(** Every numeric position is pinned to a single value. *)

val ground_value : t -> int -> Rat.t option
(** The value of numeric position [i] (1-based) when pinned. *)

val matches_literal : Literal.t -> t -> bool
(** Cheap necessary condition for the fact to unify with the literal:
    constant arguments agree with the symbolic pattern and pinned values.
    Used by the engine to prune candidates before unification. *)

val subsumes : t -> t -> bool
(** [subsumes general specific]: every ground instance of [specific] is an
    instance of [general].  Requires identical symbolic pattern. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints ground values where pinned, e.g. [m_fib(N1, 5; N1 > 0)] style:
    [m_fib($1, 5; $1 > 0)]. *)

val to_string : t -> string
