open Cql_datalog

type partition = Table.partition = Old | Delta | Full

type stats = {
  mutable probes : int;
  mutable indexed_probes : int;
  mutable index_hits : int;
  mutable scans : int;
  mutable scanned_facts : int;
  mutable facts_skipped : int;
  mutable subsumption_checks : int;
  mutable subsumption_compared : int;
  mutable subsumption_avoided : int;
}

let zero_stats () =
  {
    probes = 0;
    indexed_probes = 0;
    index_hits = 0;
    scans = 0;
    scanned_facts = 0;
    facts_skipped = 0;
    subsumption_checks = 0;
    subsumption_compared = 0;
    subsumption_avoided = 0;
  }

type t = { tables : (string, Table.t) Hashtbl.t; stats : stats }

let create () = { tables = Hashtbl.create 32; stats = zero_stats () }
let stats s = s.stats

let table s pred =
  match Hashtbl.find_opt s.tables pred with
  | Some t -> t
  | None ->
      let t = Table.create () in
      Hashtbl.add s.tables pred t;
      t

let find_table s pred = Hashtbl.find_opt s.tables pred

let known_subsumes s f =
  let st = s.stats in
  st.subsumption_checks <- st.subsumption_checks + 1;
  match find_table s (Fact.pred f) with
  | None -> false
  | Some t ->
      let hit, compared = Table.known_subsumes t f in
      st.subsumption_compared <- st.subsumption_compared + compared;
      st.subsumption_avoided <- st.subsumption_avoided + (Table.live_total t - compared);
      hit

(* add a fact known not to be subsumed: back-subsumption first, then into
   the pending partition (it becomes delta at the next advance); the facts
   the newcomer killed are reported for maintenance bookkeeping *)
let add_reporting s f =
  let t = table s (Fact.pred f) in
  let compared, killed = Table.back_subsume t f in
  s.stats.subsumption_compared <- s.stats.subsumption_compared + compared;
  Table.insert t f;
  killed

let add s f = ignore (add_reporting s f)

let find_equal s f =
  match find_table s (Fact.pred f) with None -> None | Some t -> Table.find_equal t f

let mem_equal s f =
  match find_table s (Fact.pred f) with None -> false | Some t -> Table.mem_equal t f

let delete s f =
  match find_table s (Fact.pred f) with None -> false | Some t -> Table.delete t f

let set_count s f n = Table.set_count (table s (Fact.pred f)) f n
let bump_count ?by s f = Table.bump_count ?by (table s (Fact.pred f)) f

let count s f =
  match find_table s (Fact.pred f) with None -> 0 | Some t -> Table.count t f

let drop_count s f =
  match find_table s (Fact.pred f) with None -> () | Some t -> Table.drop_count t f

let counted_facts s =
  Hashtbl.fold (fun pred t acc -> (pred, Table.counted_facts t) :: acc) s.tables []

let advance s = Hashtbl.iter (fun _ t -> Table.advance t) s.tables

(* Delta seeding: make [facts] the delta partition in one step — the
   current delta retires into old and each seed lands in pending before a
   second boundary promotes it.  This is exactly the store state a
   semi-naive maintenance round wants before its first match phase. *)
let seed_delta s facts =
  advance s;
  List.iter (add s) facts;
  advance s
let freeze s = Hashtbl.iter (fun _ t -> Table.freeze t) s.tables
let thaw s = Hashtbl.iter (fun _ t -> Table.thaw t) s.tables

(* bound columns of a resolved literal: constants give index keys *)
let bound_columns (l : Literal.t) =
  let rec go i = function
    | [] -> ([], [])
    | Term.C c :: rest ->
        let ps, ks = go (i + 1) rest in
        (i :: ps, c :: ks)
    | Term.V _ :: rest -> go (i + 1) rest
  in
  go 0 l.Literal.args

(* [probe s part lit]: candidate facts for a body literal already resolved
   under the current substitution.  With at least one constant argument the
   per-predicate hash index on those columns answers the probe; otherwise
   the partition is scanned (the seed engine's behaviour for every probe). *)
let probe s part (lit : Literal.t) =
  let st = s.stats in
  st.probes <- st.probes + 1;
  match find_table s lit.Literal.pred with
  | None -> []
  | Some t -> (
      match bound_columns lit with
      | [], _ ->
          st.scans <- st.scans + 1;
          let fs = Table.scan t part in
          st.scanned_facts <- st.scanned_facts + List.length fs;
          fs
      | positions, key ->
          st.indexed_probes <- st.indexed_probes + 1;
          let fs = Table.probe t part positions key in
          let n = List.length fs in
          st.index_hits <- st.index_hits + n;
          st.facts_skipped <- st.facts_skipped + (Table.part_count t part - n);
          fs)

(* iteration twin of [probe], keyed directly on resolved columns: same
   candidates, same order, same stats accounting, no result list and no
   literal to build — the compiled executor precomputes which positions can
   be bound and hands over exactly what [bound_columns] would extract *)
let iter_probe_cols s part pred positions key k =
  let st = s.stats in
  st.probes <- st.probes + 1;
  match find_table s pred with
  | None -> ()
  | Some t -> (
      match positions with
      | [] ->
          st.scans <- st.scans + 1;
          let n = Table.iter_scan t part k in
          st.scanned_facts <- st.scanned_facts + n
      | _ ->
          st.indexed_probes <- st.indexed_probes + 1;
          let n = Table.iter_probe t part positions key k in
          st.index_hits <- st.index_hits + n;
          st.facts_skipped <- st.facts_skipped + (Table.part_count t part - n))

let facts s pred = match find_table s pred with None -> [] | Some t -> Table.facts t

let all_facts s =
  Hashtbl.fold (fun pred t acc -> (pred, Table.facts t) :: acc) s.tables []

let total s = Hashtbl.fold (fun _ t acc -> acc + Table.live_total t) s.tables 0
