(** Join planning: reorder a rule body by a bound-ness heuristic so the
    engine probes indexes instead of enumerating cross-products.

    Each plan is computed once per rule (per semi-naive pivot).  The pivot
    literal — the one reading the previous iteration's delta — is placed
    first; the remaining literals are placed greedily, most bound arguments
    first (constants, or variables bound by already-placed literals), ties
    broken by fewer free arguments and then original position.  A literal's
    store partition depends only on its {e original} body position, so
    reordering preserves exactly the semi-naive coverage of combinations. *)

open Cql_datalog

type step = {
  lit : Literal.t;  (** the body literal to solve at this step *)
  orig : int;  (** its 0-based position in the original body *)
  part : Store.partition;  (** which partition it reads under this pivot *)
}

type plan = step list

val part_of : pivot:int -> int -> Store.partition
(** Partition for original position [i] under [pivot] ([-1] = naive: full). *)

val order : pivot:int -> Literal.t list -> plan
(** One evaluation order for the body under the given pivot. *)

val plans : seminaive:bool -> Rule.t -> plan list
(** Every plan the engine needs for one rule: one per pivot when
    semi-naive, a single full-partition plan when naive. *)

val step_bindings : plan -> (Cql_constr.Var.Set.t * Cql_constr.Var.Set.t) list
(** Per step, in plan order: [(bound_before, newly_bound)] — the variables
    bound by earlier steps when this step starts, and the ones this step
    binds for the first time.  The input a plan compiler needs to turn each
    argument into a constant check, a register check or a register bind. *)
