open Cql_num
open Cql_datalog

(* A stored fact with a liveness flag: back-subsumption marks cells dead
   instead of rebuilding every index that mentions them.  [part] tracks the
   cell's current partition so the store can keep live counts per partition
   without rescanning. *)
type cell = { fact : Fact.t; mutable live : bool; mutable part : int }

module Key = struct
  type t = Term.const list

  let equal = List.equal Term.equal_const

  let hash k =
    List.fold_left
      (fun acc c ->
        let h = match c with Term.Sym s -> Hashtbl.hash s | Term.Num q -> Rat.hash q in
        (acc * 65599) lxor h)
      17 k
end

module KeyTbl = Hashtbl.Make (Key)

type t = {
  positions : int list; (* 0-based argument columns, ascending *)
  buckets : cell list ref KeyTbl.t;
  mutable wild : cell list;
      (* cells not ground on every indexed column: returned by every probe,
         filtered by [Fact.matches_literal] downstream *)
}

let positions idx = idx.positions
let create positions = { positions; buckets = KeyTbl.create 64; wild = [] }

(* the fact's key on [positions]: [None] when some column is neither a
   symbol nor pinned to a single numeric value *)
let key_of_fact positions (f : Fact.t) : Term.const list option =
  let rec go = function
    | [] -> Some []
    | i :: rest -> (
        match f.Fact.args.(i) with
        | Fact.Psym s -> Option.map (fun k -> Term.Sym s :: k) (go rest)
        | Fact.Pvar -> (
            match f.Fact.pinned.(i) with
            | Some q -> Option.map (fun k -> Term.Num q :: k) (go rest)
            | None -> None))
  in
  go positions

let add idx cell =
  match key_of_fact idx.positions cell.fact with
  | Some key -> (
      match KeyTbl.find_opt idx.buckets key with
      | Some l -> l := cell :: !l
      | None -> KeyTbl.add idx.buckets key (ref [ cell ]))
  | None -> idx.wild <- cell :: idx.wild

let of_cells positions cells =
  let idx = create positions in
  (* cells arrive newest-first; keep bucket lists newest-first too *)
  List.iter (fun c -> add idx c) (List.rev cells);
  idx

(* all cells that can possibly carry the probed key: the exact bucket plus
   the wildcard cells (which a later matches_literal check filters) *)
let probe idx key =
  let bucket = match KeyTbl.find_opt idx.buckets key with Some l -> !l | None -> [] in
  (bucket, idx.wild)
