(** Hash indexes over bound argument columns of a fact table.

    An index on columns [positions] buckets every fact that is ground on all
    of those columns (a symbolic constant, or a numeric position pinned to a
    single value) under the tuple of those values.  Facts with an unpinned
    constraint variable on an indexed column go to a wildcard list that every
    probe also returns, so constraint facts such as
    [flight(a, b, T, C; T <= 240)] are never missed — probing is a sound
    over-approximation refined by {!Fact.matches_literal} downstream. *)

open Cql_datalog

type cell = { fact : Fact.t; mutable live : bool; mutable part : int }
(** A stored fact; [live = false] marks cells removed by back-subsumption,
    [part] is the partition tag maintained by the table. *)

type t

val positions : t -> int list
(** The indexed 0-based columns, ascending. *)

val create : int list -> t

val add : t -> cell -> unit
(** Route the cell into its bucket (or the wildcard list). *)

val of_cells : int list -> cell list -> t
(** Build an index over a newest-first cell list. *)

val probe : t -> Term.const list -> cell list * cell list
(** [probe idx key] is [(bucket, wildcard)]: the cells whose indexed columns
    equal [key], plus the cells indexable on no key.  Dead cells are not
    filtered here. *)
