open Cql_num

type cell = Index.cell = { fact : Fact.t; mutable live : bool; mutable part : int }

type partition = Old | Delta | Full

(* partition tags carried by cells *)
let p_old = 0
let p_delta = 1
let p_pending = 2

(* subsumption can only relate facts with the same symbolic pattern
   (Fact.same_pattern), so candidates are bucketed by it *)
type pattern = string option array

type sbucket = {
  mutable ground_cells : cell list; (* every numeric position pinned *)
  mutable general : cell list; (* carries a residual constraint *)
}

module GroundKey = struct
  type t = pattern * Rat.t option array

  let equal (p1, v1) (p2, v2) =
    Array.length p1 = Array.length p2
    && p1 = p2
    && Array.for_all2
         (fun a b ->
           match (a, b) with
           | None, None -> true
           | Some x, Some y -> Rat.equal x y
           | _ -> false)
         v1 v2

  let hash (p, v) =
    Array.fold_left
      (fun acc o -> (acc * 65599) lxor (match o with Some q -> Rat.hash q | None -> 7))
      (Hashtbl.hash p) v
end

module GroundTbl = Hashtbl.Make (GroundKey)
module FactMap = Map.Make (Fact)

type t = {
  (* partitions, newest-first; dead cells are filtered on read *)
  mutable old_cells : cell list;
  mutable delta_cells : cell list;
  mutable pending_cells : cell list;
  mutable all_rev : cell list; (* insertion order (newest first), for listing *)
  mutable live_counts : int array; (* live cells per partition tag *)
  (* join indexes, created lazily per probed column set.  The lists are
     atomic so a worker domain probing during a frozen (read-only) round
     either sees a fully-built index or builds one under [lock] — a plain
     mutable field would publish the index's internal Hashtbl without
     synchronization, which the OCaml memory model does not allow. *)
  old_indexes : Index.t list Atomic.t;
  delta_indexes : Index.t list Atomic.t;
  lock : Mutex.t; (* serializes lazy index construction *)
  mutable frozen : bool; (* read-only mode during a parallel match phase *)
  (* subsumption indexes over every live cell *)
  ground : cell GroundTbl.t; (* fully-pinned facts by (pattern, values) *)
  patterns : (pattern, sbucket) Hashtbl.t;
  mutable counts : int FactMap.t; (* per-fact derivation counts (maintenance) *)
}

let create () =
  {
    old_cells = [];
    delta_cells = [];
    pending_cells = [];
    all_rev = [];
    live_counts = Array.make 3 0;
    old_indexes = Atomic.make [];
    delta_indexes = Atomic.make [];
    lock = Mutex.create ();
    frozen = false;
    ground = GroundTbl.create 64;
    patterns = Hashtbl.create 16;
    counts = FactMap.empty;
  }

let pattern_of (f : Fact.t) : pattern =
  Array.map (function Fact.Psym s -> Some s | Fact.Pvar -> None) f.Fact.args

let ground_key (f : Fact.t) = (pattern_of f, f.Fact.pinned)

let sbucket_of t pat =
  match Hashtbl.find_opt t.patterns pat with
  | Some b -> b
  | None ->
      let b = { ground_cells = []; general = [] } in
      Hashtbl.add t.patterns pat b;
      b

let live_total t = t.live_counts.(p_old) + t.live_counts.(p_delta) + t.live_counts.(p_pending)

let part_count t = function
  | Old -> t.live_counts.(p_old)
  | Delta -> t.live_counts.(p_delta)
  | Full -> t.live_counts.(p_old) + t.live_counts.(p_delta)

let kill t c =
  if c.live then begin
    c.live <- false;
    t.live_counts.(c.part) <- t.live_counts.(c.part) - 1
  end

(* ----- derivation counts -----

   Incremental maintenance keeps, per live fact, the number of supports it
   has (EDB multiplicity plus rule firings producing exactly it).  The map
   is keyed by structural fact identity (Fact.compare), so two facts count
   together exactly when retraction treats them as the same fact. *)

let set_count t f n =
  if n <= 0 then t.counts <- FactMap.remove f t.counts
  else t.counts <- FactMap.add f n t.counts

let bump_count ?(by = 1) t f =
  t.counts <-
    FactMap.update f (fun c -> Some (by + Option.value c ~default:0)) t.counts

let count t f = Option.value (FactMap.find_opt f t.counts) ~default:0
let drop_count t f = t.counts <- FactMap.remove f t.counts
let counted_facts t = FactMap.bindings t.counts

(* ----- insertion & subsumption ----- *)

let freeze t = t.frozen <- true
let thaw t = t.frozen <- false
let check_mutable t who = if t.frozen then invalid_arg (who ^ ": table is frozen")

let insert t f =
  check_mutable t "Table.insert";
  let c = { fact = f; live = true; part = p_pending } in
  t.pending_cells <- c :: t.pending_cells;
  t.all_rev <- c :: t.all_rev;
  t.live_counts.(p_pending) <- t.live_counts.(p_pending) + 1;
  let b = sbucket_of t (pattern_of f) in
  if Fact.is_ground f then begin
    b.ground_cells <- c :: b.ground_cells;
    GroundTbl.replace t.ground (ground_key f) c
  end
  else b.general <- c :: b.general

(* [known_subsumes t f] is [(hit, comparisons)]: is [f] subsumed by a live
   stored fact, and how many Fact.subsumes calls it took to decide.  Only
   same-pattern facts are candidates; a fully-pinned [f] checks the ground
   hash first (a pinned general fact subsumes it only if their constraints
   agree at [f]'s point, which the general scan still covers). *)
let known_subsumes t f =
  match Hashtbl.find_opt t.patterns (pattern_of f) with
  | None -> (false, 0)
  | Some b ->
      let cmp = ref 0 in
      let scan l =
        List.exists
          (fun c ->
            c.live
            &&
            (incr cmp;
             Fact.subsumes c.fact f))
          l
      in
      if Fact.is_ground f then
        match GroundTbl.find_opt t.ground (ground_key f) with
        | Some c when c.live -> (true, 0)
        | _ ->
            let hit = scan b.general in
            (hit, !cmp)
      else begin
        (* a fully-pinned fact can also subsume a syntactically unpinned
           one whose constraint happens to imply the point *)
        let hit = scan b.general || scan b.ground_cells in
        (hit, !cmp)
      end

(* Drop live facts the new fact subsumes (back-subsumption).  A fully
   pinned [f] denotes a single point: the only ground fact it could
   subsume is its duplicate, which [known_subsumes] already rejected, so
   only general cells need scanning.  Killed facts are reported so a
   maintenance layer can remember them as covered (and lose their counts:
   only live facts are counted). *)
let back_subsume t f =
  check_mutable t "Table.back_subsume";
  match Hashtbl.find_opt t.patterns (pattern_of f) with
  | None -> (0, [])
  | Some b ->
      let cmp = ref 0 in
      let killed = ref [] in
      let kill_in l =
        List.iter
          (fun c ->
            if c.live then begin
              incr cmp;
              if Fact.subsumes f c.fact then begin
                kill t c;
                drop_count t c.fact;
                killed := c.fact :: !killed
              end
            end)
          l
      in
      kill_in b.general;
      if not (Fact.is_ground f) then kill_in b.ground_cells;
      (!cmp, !killed)

(* ----- structural lookup & deletion ----- *)

let find_cell_equal t f =
  match Hashtbl.find_opt t.patterns (pattern_of f) with
  | None -> None
  | Some b ->
      let scan l = List.find_opt (fun c -> c.live && Fact.compare c.fact f = 0) l in
      if Fact.is_ground f then
        match GroundTbl.find_opt t.ground (ground_key f) with
        | Some c when c.live && Fact.compare c.fact f = 0 -> Some c
        | _ -> scan b.ground_cells
      else scan b.general

let find_equal t f = Option.map (fun c -> c.fact) (find_cell_equal t f)
let mem_equal t f = Option.is_some (find_cell_equal t f)

(* Physically retire the live cell structurally equal to [f] (dead cells
   are filtered by every read path, so killing suffices; the ground hash
   entry is refreshed in case another live duplicate remains). *)
let delete t f =
  check_mutable t "Table.delete";
  match find_cell_equal t f with
  | None -> false
  | Some c ->
      kill t c;
      drop_count t c.fact;
      if Fact.is_ground f then begin
        let key = ground_key f in
        (match GroundTbl.find_opt t.ground key with
        | Some c' when not c'.live -> GroundTbl.remove t.ground key
        | _ -> ());
        match
          List.find_opt
            (fun c2 -> c2.live && Fact.compare c2.fact f = 0)
            (sbucket_of t (pattern_of f)).ground_cells
        with
        | Some c2 -> GroundTbl.replace t.ground key c2
        | None -> ()
      end;
      true

(* ----- partitions ----- *)

(* End of iteration: delta joins old (updating old's indexes incrementally),
   pending becomes the next delta.  Delta indexes are rebuilt lazily since
   the partition's contents just changed wholesale. *)
let advance t =
  check_mutable t "Table.advance";
  let promoted = List.filter (fun c -> c.live) t.delta_cells in
  List.iter (fun c -> c.part <- p_old) promoted;
  List.iter (fun idx -> List.iter (fun c -> Index.add idx c) promoted) (Atomic.get t.old_indexes);
  t.old_cells <- promoted @ t.old_cells;
  t.live_counts.(p_old) <- t.live_counts.(p_old) + List.length promoted;
  let delta = List.filter (fun c -> c.live) t.pending_cells in
  List.iter (fun c -> c.part <- p_delta) delta;
  t.delta_cells <- delta;
  t.live_counts.(p_delta) <- List.length delta;
  t.pending_cells <- [];
  t.live_counts.(p_pending) <- 0;
  Atomic.set t.delta_indexes []

(* ----- probing ----- *)

(* Double-checked: the fast path reads the atomic list without locking;
   on a miss the index is built and published under [t.lock], so at most
   one domain builds a given index and others see it only once complete. *)
let get_index t cells indexes positions =
  let find l = List.find_opt (fun i -> Index.positions i = positions) l in
  match find (Atomic.get indexes) with
  | Some idx -> idx
  | None ->
      Mutex.lock t.lock;
      let idx =
        match find (Atomic.get indexes) with
        | Some idx -> idx
        | None ->
            let idx = Index.of_cells positions cells in
            Atomic.set indexes (idx :: Atomic.get indexes);
            idx
      in
      Mutex.unlock t.lock;
      idx

let probe_one t which positions key =
  let idx =
    match which with
    | `Old -> get_index t t.old_cells t.old_indexes positions
    | `Delta -> get_index t t.delta_cells t.delta_indexes positions
  in
  let bucket, wild = Index.probe idx key in
  List.filter_map (fun c -> if c.live then Some c.fact else None) (bucket @ wild)

(* indexed probe: facts agreeing with [key] on [positions] (plus wildcard
   cells), newest partitions first *)
let probe t part positions key =
  match part with
  | Old -> probe_one t `Old positions key
  | Delta -> probe_one t `Delta positions key
  | Full -> probe_one t `Delta positions key @ probe_one t `Old positions key

(* unindexed scan of a whole partition, newest-first (the seed engine's
   enumeration order) *)
let scan t part =
  let live l = List.filter_map (fun c -> if c.live then Some c.fact else None) l in
  match part with
  | Old -> live t.old_cells
  | Delta -> live t.delta_cells
  | Full -> live t.delta_cells @ live t.old_cells

(* Iteration twins of [probe]/[scan]: same candidates in the same order,
   but pushed to a callback instead of materialized into a list, so the
   compiled executor's inner loop allocates nothing per probe.  Both return
   the number of live facts visited (the stats the list versions feed). *)

let iter_probe_one t which positions key k =
  let idx =
    match which with
    | `Old -> get_index t t.old_cells t.old_indexes positions
    | `Delta -> get_index t t.delta_cells t.delta_indexes positions
  in
  let bucket, wild = Index.probe idx key in
  let n = ref 0 in
  let visit l =
    List.iter
      (fun c ->
        if c.live then begin
          incr n;
          k c.fact
        end)
      l
  in
  visit bucket;
  visit wild;
  !n

let iter_probe t part positions key k =
  match part with
  | Old -> iter_probe_one t `Old positions key k
  | Delta -> iter_probe_one t `Delta positions key k
  | Full ->
      (* delta first, then old — matching [probe]'s concatenation order
         (and OCaml's right-to-left [+] would visit them backwards) *)
      let d = iter_probe_one t `Delta positions key k in
      d + iter_probe_one t `Old positions key k

let iter_scan t part k =
  let visit l =
    List.fold_left
      (fun n c ->
        if c.live then begin
          k c.fact;
          n + 1
        end
        else n)
      0 l
  in
  match part with
  | Old -> visit t.old_cells
  | Delta -> visit t.delta_cells
  | Full ->
      let d = visit t.delta_cells in
      d + visit t.old_cells

(* ----- listing ----- *)

let facts t =
  List.rev (List.filter_map (fun c -> if c.live then Some c.fact else None) t.all_rev)
